// Packet representation shared by the SwitchML data path and the baseline
// transports.
//
// Wire-size accounting follows the paper (§3.4, §5.5): a SwitchML update
// packet carrying k=32 32-bit elements is 180 bytes on the wire
// (Ethernet 14 + IPv4 20 + UDP 8 + SwitchML 10 + 128 payload), and the
// MTU-sized variant carrying 366 elements is 1516 bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/int_telemetry.hpp"

namespace switchml::net {

using NodeId = std::uint32_t;
constexpr NodeId kBroadcast = 0xFFFFFFFF;

enum class PacketKind : std::uint8_t {
  SmlUpdate,       // worker -> switch model-update piece (Algorithm 2/4)
  SmlResult,       // switch -> worker aggregated piece (multicast or unicast)
  SmlSyncQuery,    // worker -> switch slot-state probe (recovery escalation)
  SmlSyncResponse, // switch -> worker slot-state snapshot (epoch, counts, seen)
  SmlRescue,       // worker -> switch re-contribution of a completed phase
  Segment,         // reliable byte-stream data segment (baselines)
  Ack,             // reliable byte-stream cumulative acknowledgment
  Raw,             // anything else
};

// Fixed header sizes in bytes (Ethernet + IPv4 + L4 + app header).
constexpr std::uint32_t kSmlHeaderBytes = 52;   // 14 + 20 + 8 + 10
constexpr std::uint32_t kSegmentHeaderBytes = 54; // 14 + 20 + 20 (TCP-like)
constexpr std::uint32_t kAckWireBytes = 64;     // minimum Ethernet frame

// Which host channel model carried (or will carry) a packet. The reference
// implementation ships two transports: the DPDK/UDP datapath (per-packet
// software cost, 180-byte packets) and RDMA UC (message-level work queues,
// NIC-side segmentation, loss left to SwitchML's own slot protocol). The
// kind is stamped on every SwitchML packet by its sender so wire accounting
// and the switch's echoes stay consistent end to end.
enum class TransportKind : std::uint8_t { kUdp, kRdmaUc };

// RDMA-UC (RoCEv2) framing: the NIC segments one message into path-MTU
// chunks, each framed as Eth 14 + IPv4 20 + UDP 8 + BTH 12 + ICRC 4. The
// 10-byte SwitchML header rides once per message, in front of the payload.
constexpr std::uint32_t kRdmaMtuBytes = 4096;
constexpr std::uint32_t kRdmaSegmentHeaderBytes = 58;
constexpr std::uint32_t kRdmaAppHeaderBytes = 10;

// Messages this large keep the RDMA channel wire-bound at 100 Gbps (the
// paper's RDMA prototype aggregates 1024-element messages).
constexpr std::uint32_t kRdmaElemsPerMessage = 1024;

#ifdef SWITCHML_DEFAULT_TRANSPORT_RDMA
constexpr TransportKind kDefaultTransport = TransportKind::kRdmaUc;
#else
constexpr TransportKind kDefaultTransport = TransportKind::kUdp;
#endif

// "No claim at this version" marker for SmlSyncResponse's sync_off fields.
constexpr std::uint64_t kNoClaimOff = ~0ull;

// Default SwitchML payload geometry (§3.4): k = 32 elements per packet.
constexpr std::uint32_t kDefaultElemsPerPacket = 32;
// MTU-sized variant (§5.5): 366 elements in a 1516-byte frame.
constexpr std::uint32_t kMtuElemsPerPacket = 366;

struct Packet {
  PacketKind kind = PacketKind::Raw;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint8_t job = 0; // multi-tenant pool selector (§6)
  // Channel model that framed this packet; determines wire_bytes() for the
  // SwitchML kinds. Like int_mode it is transport metadata, outside the
  // end-to-end checksum. The switch copies it onto results and sync replies
  // so the return path is framed like the request path.
  TransportKind transport = TransportKind::kUdp;

  // --- SwitchML header (SmlUpdate / SmlResult) ---
  std::uint16_t wid = 0;  // worker id
  std::uint8_t ver = 0;   // single-bit pool version (Algorithm 3/4)
  std::uint32_t idx = 0;  // aggregator slot index
  std::uint64_t off = 0;  // element offset into the model update
  // Switch incarnation number, bumped by every dataplane restart and stamped
  // on every result/sync packet the switch emits. Rides otherwise-unused bits
  // of the 10-byte SwitchML header, so it does not change wire_bytes().
  std::uint32_t epoch = 0;

  // --- SmlSyncResponse payload: the switch's view of one slot -------------
  // Per-version mod-n counter, the offset of the version's current claim
  // (kNoClaimOff when count == 0), and the querying worker's seen bits
  // (bit 0 = version 0, bit 1 = version 1).
  std::uint32_t sync_count0 = 0;
  std::uint32_t sync_count1 = 0;
  std::uint64_t sync_off0 = 0;
  std::uint64_t sync_off1 = 0;
  std::uint8_t sync_seen = 0;

  // --- reliable transport header (Segment / Ack) ---
  std::uint32_t stream = 0;
  std::uint64_t seq = 0;     // first payload byte (Segment) / cumulative ack (Ack)
  std::uint32_t seg_len = 0; // payload bytes carried by a Segment

  // --- payload accounting ---
  std::uint32_t elem_count = 0; // vector elements carried (SmlUpdate/SmlResult)
  std::uint8_t elem_bytes = 4;  // wire bytes per element (4 = int32, 2 = fp16)

  // Optional real data. Empty in timing-only runs, where only the size
  // accounting above matters.
  std::vector<std::int32_t> values; // SwitchML integer payload
  std::vector<float> fvalues;       // baseline float payload

  // --- in-band telemetry (SmlUpdate / SmlResult / SmlRescue) --------------
  // inttel::kMode*: off (default), phantom (stamped, zero wire bytes), or
  // on-wire (stamped, honestly charged below). The stack is the encoded
  // shim + hop records; hops append via inttel::append_record. Both fields
  // are excluded from the checksum — INT metadata mutates at every hop, so
  // (like a real INT deployment's hop-by-hop headers) it sits outside the
  // end-to-end integrity check.
  std::uint8_t int_mode = inttel::kModeOff;
  std::vector<std::uint8_t> int_stack;

  // Wire bytes the telemetry stack adds: zero unless compiled in, in on-wire
  // mode, and non-empty.
  [[nodiscard]] std::uint32_t int_wire_bytes() const {
    if constexpr (!inttel::kCompiledIn) return 0;
    if (int_mode != inttel::kModeOnWire) return 0;
    return inttel::stack_wire_bytes(int_stack);
  }

  // §3.4: "A simple checksum can be used to detect corruption and discard
  // corrupted packets." seal() computes it over the header + payload at the
  // sender; verify() recomputes at the receiver. Wire corruption (bit flips
  // injected by Link::set_corrupt_filter) makes verify() fail, and the
  // receiver treats the packet as lost.
  std::uint32_t checksum = 0;
  void seal() { checksum = compute_checksum(); }
  [[nodiscard]] bool verify() const { return checksum == compute_checksum(); }

  [[nodiscard]] std::uint32_t wire_bytes() const;

private:
  [[nodiscard]] std::uint32_t compute_checksum() const;
};

const char* to_string(PacketKind k);

} // namespace switchml::net
