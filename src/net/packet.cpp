#include "net/packet.hpp"

#include <algorithm>

namespace switchml::net {

namespace {
// RDMA-UC message framing: SwitchML header + payload + telemetry as ONE
// message, segmented by the NIC into path-MTU chunks that each pay the
// RoCE per-segment framing. INT still composes: on-wire telemetry grows
// the message (and can spill it into one more segment), exactly as the
// UDP path charges it inside the packet.
std::uint32_t rdma_message_wire_bytes(std::uint32_t payload) {
  const std::uint32_t nseg = (payload + kRdmaMtuBytes - 1) / kRdmaMtuBytes;
  return payload + std::max<std::uint32_t>(nseg, 1) * kRdmaSegmentHeaderBytes;
}
} // namespace

std::uint32_t Packet::wire_bytes() const {
  switch (kind) {
    case PacketKind::SmlUpdate:
    case PacketKind::SmlResult:
    case PacketKind::SmlRescue:
      if (transport == TransportKind::kRdmaUc)
        return rdma_message_wire_bytes(kRdmaAppHeaderBytes + elem_count * elem_bytes +
                                       int_wire_bytes());
      return kSmlHeaderBytes + elem_count * elem_bytes + int_wire_bytes();
    case PacketKind::SmlSyncQuery:
    case PacketKind::SmlSyncResponse:
      // Headers only. UDP: minimum Ethernet frame; RDMA: a one-segment
      // message carrying just the SwitchML header.
      if (transport == TransportKind::kRdmaUc)
        return rdma_message_wire_bytes(kRdmaAppHeaderBytes);
      return kAckWireBytes;
    case PacketKind::Segment:
      return kSegmentHeaderBytes + seg_len;
    case PacketKind::Ack:
      return kAckWireBytes;
    case PacketKind::Raw:
      return std::max<std::uint32_t>(kAckWireBytes, kSegmentHeaderBytes + seg_len);
  }
  return kAckWireBytes;
}

std::uint32_t Packet::compute_checksum() const {
  // FNV-1a over the protocol-relevant header fields and the payload.
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint32_t>(v & 0xFF);
      h *= 16777619u;
      v >>= 8;
    }
  };
  mix(static_cast<std::uint64_t>(kind));
  mix(wid);
  mix(ver);
  mix(idx);
  mix(off);
  mix(job);
  mix(elem_count);
  mix(epoch);
  mix(sync_count0);
  mix(sync_count1);
  mix(sync_off0);
  mix(sync_off1);
  mix(sync_seen);
  for (std::int32_t v : values) mix(static_cast<std::uint32_t>(v));
  return h;
}

const char* to_string(PacketKind k) {
  switch (k) {
    case PacketKind::SmlUpdate: return "SmlUpdate";
    case PacketKind::SmlResult: return "SmlResult";
    case PacketKind::SmlSyncQuery: return "SmlSyncQuery";
    case PacketKind::SmlSyncResponse: return "SmlSyncResponse";
    case PacketKind::SmlRescue: return "SmlRescue";
    case PacketKind::Segment: return "Segment";
    case PacketKind::Ack: return "Ack";
    case PacketKind::Raw: return "Raw";
  }
  return "?";
}

} // namespace switchml::net
