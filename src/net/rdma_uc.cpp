#include "net/rdma_uc.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace switchml::net {

namespace {
// Message payload as the NIC sees it: SwitchML header + elements + on-wire
// telemetry. Sync queries/responses are header-only messages.
std::uint32_t payload_of(const Packet& p) {
  switch (p.kind) {
    case PacketKind::SmlUpdate:
    case PacketKind::SmlResult:
    case PacketKind::SmlRescue:
      return kRdmaAppHeaderBytes + p.elem_count * p.elem_bytes + p.int_wire_bytes();
    default:
      return kRdmaAppHeaderBytes;
  }
}
} // namespace

RdmaUcChannel::RdmaUcChannel(sim::Simulation& simulation, std::string name, NodeId owner,
                             HostNic& nic, const RdmaUcParams& params)
    : sim_(simulation), name_(std::move(name)), owner_(owner), nic_(nic), params_(params) {
  if (params.doorbell_batch < 1)
    throw std::invalid_argument("RdmaUcChannel: doorbell_batch must be >= 1");
  busy_.assign(static_cast<std::size_t>(nic_.cores()), 0);
  if (auto* reg = MetricsRegistry::current()) {
    const std::string p = name_ + ".rdma.";
    reg->add_counter(p + "wqes_posted", [this] { return counters_.wqes_posted; });
    reg->add_counter(p + "doorbells", [this] { return counters_.doorbells; });
    reg->add_counter(p + "cqes_polled", [this] { return counters_.cqes_polled; });
    reg->add_counter(p + "wire_segments", [this] { return counters_.wire_segments; });
    reg->add_counter(p + "payload_bytes", [this] { return counters_.payload_bytes; });
  }
}

std::uint32_t RdmaUcChannel::segments_of(const Packet& p) const {
  const std::uint32_t payload = payload_of(p);
  return std::max<std::uint32_t>(1, (payload + kRdmaMtuBytes - 1) / kRdmaMtuBytes);
}

Time RdmaUcChannel::occupy(int lane, Time cost) {
  // Same shape as HostNic::occupy, with the host's straggler slowdown applied
  // to the CPU cost (cost-neutral at exactly 1.0, like the NIC model).
  if (nic_.slowdown() != 1.0)
    cost = static_cast<Time>(static_cast<double>(cost) * nic_.slowdown());
  auto& b = busy_.at(static_cast<std::size_t>(lane));
  const Time start = std::max(sim_.now(), b);
  b = start + cost;
  total_busy_ += cost;
  return b;
}

Time RdmaUcChannel::tx_ready(int lane, const Packet& p) {
  const std::uint32_t nseg = segments_of(p);
  ++counters_.wqes_posted;
  counters_.wire_segments += nseg;
  counters_.payload_bytes += payload_of(p);
  if (++posts_since_doorbell_ >= static_cast<std::uint64_t>(params_.doorbell_batch)) {
    posts_since_doorbell_ = 0;
    ++counters_.doorbells;
  }
  // One WQE per message, doorbell amortized over the posting batch; the NIC
  // does the segmentation, so no per-byte (or per-segment) CPU term.
  const Time cost = static_cast<Time>(static_cast<double>(params_.wqe_post) +
                                      static_cast<double>(params_.doorbell) /
                                          static_cast<double>(params_.doorbell_batch));
  const Time wire = occupy(lane, cost) + params_.tx_latency;
  trace::emit(trace::kCatTransport, sim_.now(), owner_, "wqe_post", {"lane", lane},
              {"segs", nseg}, {"bytes", p.wire_bytes()});
  return wire;
}

void RdmaUcChannel::rx_process(int lane, const Packet& p, sim::EventFn deliver) {
  ++counters_.cqes_polled;
  trace::emit(trace::kCatTransport, sim_.now(), owner_, "cqe", {"lane", lane},
              {"segs", segments_of(p)}, {"bytes", p.wire_bytes()});
  const Time done = occupy(lane, params_.cqe_poll);
  sim_.schedule_at(done + params_.rx_latency, std::move(deliver));
}

std::unique_ptr<Channel> make_channel(sim::Simulation& simulation, const std::string& name,
                                      NodeId owner, TransportKind kind, HostNic& nic,
                                      const RdmaUcParams& rdma) {
  if (kind == TransportKind::kRdmaUc)
    return std::make_unique<RdmaUcChannel>(simulation, name, owner, nic, rdma);
  return std::make_unique<UdpChannel>(nic);
}

} // namespace switchml::net
