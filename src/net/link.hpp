// Full-duplex point-to-point link with per-direction rate, propagation delay,
// finite drop-tail queue, and an optional Bernoulli loss process (used for
// the paper's §5.5 packet-loss experiments).
//
// The serialization model keeps exactly one simulator event per delivered
// packet: queue occupancy is tracked lazily with a deque of in-flight
// serialization records drained on each send. Deliveries are keyed by a
// per-direction sequence number so mid-run mutations can retarget them:
// `set_rate` re-plans every unfinished serialization (bits already clocked
// out at the old rate stay out) and `set_down` kills everything undelivered —
// a downed link delivers nothing, ever, for its down interval.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "common/histogram.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/trace.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace switchml::net {

struct LinkConfig {
  BitsPerSecond rate = gbps(10);
  Time propagation = nsec(500);
  std::int64_t queue_limit_bytes = 2 * kMiB;
  double loss_prob = 0.0;
};

// Two-state Gilbert-Elliott loss process: per packet the chain first moves
// (good->bad with p_enter, bad->good with p_exit), then the packet is dropped
// with the current state's loss probability. The stationary loss rate is
// loss_bad * p_enter / (p_enter + p_exit) + loss_good * p_exit / (p_enter +
// p_exit) — matched-average comparisons against the Bernoulli process are how
// fault_sweep shows burstiness (not just rate) drives RTO stalls.
struct BurstLossConfig {
  double p_enter = 0.0;   // good -> bad transition probability per packet
  double p_exit = 0.1;    // bad -> good transition probability per packet
  double loss_good = 0.0; // drop probability in the good state
  double loss_bad = 0.5;  // drop probability in the bad state
};

class Link {
public:
  struct Counters {
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t delivered_packets = 0;
    std::uint64_t dropped_queue = 0;
    std::uint64_t dropped_loss = 0;
    std::uint64_t dropped_down = 0;  // sent into (or in flight across) a downed link
    std::uint64_t dropped_burst = 0; // Gilbert-Elliott burst-loss drops
    std::uint64_t burst_entries = 0; // good->bad transitions of the burst chain
  };

  Link(sim::Simulation& simulation, const LinkConfig& config, Node& end_a, int port_a,
       Node& end_b, int port_b, std::uint64_t seed);

  // Transmits `p` from `sender` (which must be one of the two endpoints).
  // `earliest_start` lets upstream processing (NIC cores, switch pipeline)
  // delay the moment the packet reaches the port without an extra event.
  void send_from(const Node& sender, Packet&& p, Time earliest_start = 0);

  [[nodiscard]] const Counters& counters_from(const Node& sender) const;

  // O(1) egress queue depth of the direction leaving `sender`: drains the
  // lazy in-flight ledger up to now, then reads the running totals (the same
  // ledger send_from maintains — no recompute). Registered as the
  // per-direction "queue_bytes"/"queue_pkts" gauges.
  [[nodiscard]] std::int64_t queue_depth_bytes(const Node& sender);
  [[nodiscard]] std::int64_t queue_depth_pkts(const Node& sender);

  [[nodiscard]] const LinkConfig& config() const { return config_; }
  void set_loss_prob(double p) { config_.loss_prob = p; }

  // Changes the link rate mid-run (congestion & straggler experiments, §6
  // "Lack of congestion control"). Every unfinished serialization is
  // re-planned at the new rate: bits already clocked out at the old rate stay
  // out, the remainder continues at the new rate, and queued packets chain
  // after the re-planned finish times. Starts never move earlier than
  // originally planned; finishes (and deliveries) may. Throws for rate <= 0 —
  // a dead link is set_down(), not rate 0.
  void set_rate(BitsPerSecond rate);

  // Administrative link state (fault injection). Taking the link down drops
  // every packet currently serializing or propagating, in both directions,
  // and everything sent while down: the down interval delivers zero packets.
  // Bringing it back up resumes normal service from an idle port.
  void set_down();
  void set_up();
  [[nodiscard]] bool is_down() const { return down_; }

  // Enables/disables the Gilbert-Elliott burst-loss process on both
  // directions (applied on top of the Bernoulli process). Each direction's
  // chain draws from its own RNG stream, so enabling bursts never perturbs
  // the Bernoulli loss draws.
  void set_burst_loss(const BurstLossConfig& cfg);
  void clear_burst_loss() { burst_.reset(); }
  [[nodiscard]] bool burst_loss_enabled() const { return burst_.has_value(); }

  // Deterministic loss injection for tests and trace replay (e.g. the
  // Appendix A execution): returns true to drop the packet. Applied in
  // addition to the Bernoulli loss process.
  using DropFilter = std::function<bool(const Node& sender, const Packet& p)>;
  void set_drop_filter(DropFilter f) { drop_filter_ = std::move(f); }

  // Bit-error injection: when the filter matches, a payload (or header) bit
  // is flipped in flight, so the receiver's checksum verification fails
  // (§3.4). The packet is still delivered — detection is the receiver's job.
  void set_corrupt_filter(DropFilter f) { corrupt_filter_ = std::move(f); }
  // Random bit-error rate per packet (applied like the loss process).
  void set_corrupt_prob(double p) { corrupt_prob_ = p; }

  // Attaches a tracer that records every TX/drop/corrupt/deliver event on
  // this link (shared by both directions).
  void set_tracer(Tracer* t) { tracer_ = t; }

  [[nodiscard]] Node& peer_of(const Node& n);

private:
  // One serialization occupying the port: [start, finish) at the rate in
  // force when it was (last) planned.
  struct InFlight {
    std::uint64_t seq = 0;
    Time start = 0;
    Time finish = 0;
    std::int64_t bytes = 0;
  };
  // One delivery the simulator holds an event for. `deliver_at` is
  // authoritative: set_rate may move it after the event was scheduled, and
  // the event that pops re-checks it (rescheduling itself if it fired early,
  // ignoring itself if the entry is gone — killed by set_down or already
  // delivered by a rescheduled twin).
  struct PendingDelivery {
    std::uint64_t seq = 0;
    Time deliver_at = 0;
    Packet pkt;
  };

  struct Direction {
    Direction(Node* to, int to_port, sim::Rng rng)
        : to(to), to_port(to_port), rng(std::move(rng)) {}
    Node* to;
    int to_port;
    Time busy_until = 0;
    std::int64_t backlog_bytes = 0;
    std::deque<InFlight> in_flight;
    std::deque<PendingDelivery> pending;
    std::uint64_t next_seq = 0;
    bool burst_bad = false;                // Gilbert-Elliott chain state
    std::optional<sim::Rng> burst_rng;     // own stream; absent until bursts enabled
    Counters counters;
    sim::Rng rng;
    // Time each packet waited behind earlier serializations before its own
    // began (0 when the port was idle) — the queueing-delay distribution.
    Histogram queue_wait_ns;
  };

  Direction& direction_from(const Node& sender);
  [[nodiscard]] const Node& from_of(const Direction& dir) const;
  void drain(Direction& dir);
  void stamp_int(const Node& sender, Direction& dir, Packet& p, Time earliest_start);
  void transmit(const Node& sender, Direction& dir, Packet&& p, Time earliest_start);
  void deliver_event(Direction& dir, std::uint64_t seq);
  void replan(Direction& dir, BitsPerSecond old_rate);
  static void corrupt(Packet& p);
  void trace(TraceEventKind kind, const Node& from, const Node& to, const Packet& p);

  DropFilter drop_filter_;
  DropFilter corrupt_filter_;
  double corrupt_prob_ = 0.0;
  Tracer* tracer_ = nullptr;
  std::optional<BurstLossConfig> burst_;
  bool down_ = false;

  sim::Simulation& sim_;
  LinkConfig config_;
  std::uint64_t seed_;
  Node* end_a_;
  Node* end_b_;
  Direction a_to_b_;
  Direction b_to_a_;
};

} // namespace switchml::net
