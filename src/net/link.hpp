// Full-duplex point-to-point link with per-direction rate, propagation delay,
// finite drop-tail queue, and an optional Bernoulli loss process (used for
// the paper's §5.5 packet-loss experiments).
//
// The serialization model keeps exactly one simulator event per delivered
// packet: queue occupancy is tracked lazily with a deque of
// (serialization-finish-time, bytes) records drained on each send.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "common/histogram.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/trace.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace switchml::net {

struct LinkConfig {
  BitsPerSecond rate = gbps(10);
  Time propagation = nsec(500);
  std::int64_t queue_limit_bytes = 2 * kMiB;
  double loss_prob = 0.0;
};

class Link {
public:
  struct Counters {
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t delivered_packets = 0;
    std::uint64_t dropped_queue = 0;
    std::uint64_t dropped_loss = 0;
  };

  Link(sim::Simulation& simulation, const LinkConfig& config, Node& end_a, int port_a,
       Node& end_b, int port_b, std::uint64_t seed);

  // Transmits `p` from `sender` (which must be one of the two endpoints).
  // `earliest_start` lets upstream processing (NIC cores, switch pipeline)
  // delay the moment the packet reaches the port without an extra event.
  void send_from(const Node& sender, Packet&& p, Time earliest_start = 0);

  [[nodiscard]] const Counters& counters_from(const Node& sender) const;
  [[nodiscard]] const LinkConfig& config() const { return config_; }
  void set_loss_prob(double p) { config_.loss_prob = p; }
  // Degrades/changes the link rate mid-run (congestion & straggler
  // experiments, §6 "Lack of congestion control").
  void set_rate(BitsPerSecond rate) { config_.rate = rate; }

  // Deterministic loss injection for tests and trace replay (e.g. the
  // Appendix A execution): returns true to drop the packet. Applied in
  // addition to the Bernoulli loss process.
  using DropFilter = std::function<bool(const Node& sender, const Packet& p)>;
  void set_drop_filter(DropFilter f) { drop_filter_ = std::move(f); }

  // Bit-error injection: when the filter matches, a payload (or header) bit
  // is flipped in flight, so the receiver's checksum verification fails
  // (§3.4). The packet is still delivered — detection is the receiver's job.
  void set_corrupt_filter(DropFilter f) { corrupt_filter_ = std::move(f); }
  // Random bit-error rate per packet (applied like the loss process).
  void set_corrupt_prob(double p) { corrupt_prob_ = p; }

  // Attaches a tracer that records every TX/drop/corrupt/deliver event on
  // this link (shared by both directions).
  void set_tracer(Tracer* t) { tracer_ = t; }

  [[nodiscard]] Node& peer_of(const Node& n);

private:
  struct Direction {
    Node* to = nullptr;
    int to_port = 0;
    Time busy_until = 0;
    std::int64_t backlog_bytes = 0;
    std::deque<std::pair<Time, std::int64_t>> in_flight; // (finish, bytes)
    Counters counters;
    sim::Rng rng;
    // Time each packet waited behind earlier serializations before its own
    // began (0 when the port was idle) — the queueing-delay distribution.
    Histogram queue_wait_ns;
  };

  Direction& direction_from(const Node& sender);
  void transmit(const Node& sender, Direction& dir, Packet&& p, Time earliest_start);
  static void corrupt(Packet& p);
  void trace(TraceEventKind kind, const Node& from, const Node& to, const Packet& p);

  DropFilter drop_filter_;
  DropFilter corrupt_filter_;
  double corrupt_prob_ = 0.0;
  Tracer* tracer_ = nullptr;

  sim::Simulation& sim_;
  LinkConfig config_;
  Node* end_a_;
  Node* end_b_;
  Direction a_to_b_;
  Direction b_to_a_;
};

} // namespace switchml::net
