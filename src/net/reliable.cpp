#include "net/reliable.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/attribution.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace switchml::net {

namespace {
// Stream ids are sparse (per-collective bases of 1M/2M), so the attribution
// slot key masks down to a dense index; streams open concurrently on one host
// have nearby sequential ids and never collide within the mask.
constexpr std::uint32_t stream_slot(std::uint32_t stream) { return stream & 0xFFFu; }
} // namespace

// ---------------------------------------------------------------- TransportHost

TransportHost::TransportHost(sim::Simulation& simulation, NodeId id, std::string name,
                             const NicConfig& nic)
    : Node(simulation, id, std::move(name)), nic_(simulation, nic) {
  if (auto* reg = MetricsRegistry::current()) {
    const std::string p = this->name() + ".transport.";
    reg->add_counter(p + "segments_sent", [this] { return transport_counters_.segments_sent; });
    reg->add_counter(p + "retransmissions",
                     [this] { return transport_counters_.retransmissions; });
    reg->add_counter(p + "timeouts", [this] { return transport_counters_.timeouts; });
    reg->add_counter(p + "fast_retransmits",
                     [this] { return transport_counters_.fast_retransmits; });
    reg->add_histogram(p + "rtt_ns", &rtt_ns_);
    reg->add_histogram(p + "retx_recovery_ns", &retx_recovery_ns_);
  }
}

void TransportHost::transmit(Packet&& p) {
  if (uplink_ == nullptr) throw std::logic_error(name() + ": transmit without uplink");
  const int core = static_cast<int>(p.stream % static_cast<std::uint32_t>(nic_.cores()));
  const Time ready = nic_.tx_ready(core, p.wire_bytes());
  uplink_->send_from(*this, std::move(p), ready);
}

void TransportHost::receive(Packet&& p, int /*port*/) {
  const int core = static_cast<int>(p.stream % static_cast<std::uint32_t>(nic_.cores()));
  // Move the packet into the deferred delivery; demux runs after the RX core
  // has "processed" it.
  auto shared = std::make_shared<Packet>(std::move(p));
  nic_.rx_process(core, shared->wire_bytes(), [this, shared]() {
    Packet& pkt = *shared;
    if (pkt.kind == PacketKind::Segment) {
      auto it = receivers_.find(pkt.stream);
      if (it != receivers_.end()) it->second->on_segment(std::move(pkt));
    } else if (pkt.kind == PacketKind::Ack) {
      auto it = senders_.find(pkt.stream);
      if (it != senders_.end()) it->second->on_ack(pkt);
    } else {
      SML_LOG(Warn) << name() << ": unexpected packet kind " << to_string(pkt.kind);
    }
  });
}

// ---------------------------------------------------------------- ReliableSender

ReliableSender::ReliableSender(TransportHost& host, NodeId dst, std::uint32_t stream,
                               const TransportProfile& profile,
                               std::function<void()> on_complete)
    : host_(host),
      dst_(dst),
      stream_(stream),
      profile_(profile),
      on_complete_(std::move(on_complete)),
      rto_(profile.rto_initial) {
  host_.register_sender(stream_, this);
}

ReliableSender::~ReliableSender() {
  timer_.cancel();
  host_.unregister_sender(stream_);
}

void ReliableSender::start(std::int64_t total_bytes, std::span<const float> data) {
  if (total_bytes <= 0) throw std::invalid_argument("ReliableSender::start: empty transfer");
  if (!data.empty() && static_cast<std::int64_t>(data.size()) * 4 != total_bytes)
    throw std::invalid_argument("ReliableSender::start: data size mismatch");
  total_ = total_bytes;
  data_ = data;
  snd_una_ = 0;
  snd_nxt_ = 0;
  snd_max_ = 0;
  probe_end_ = -1;
  retx_since_ = -1;
  // Persistent connection: cwnd starts at the cap and only shrinks on loss.
  cwnd_ = profile_.window_bytes;
  ssthresh_ = profile_.window_bytes;
  // Baseline-transport attribution: one span per stream on the sender's node,
  // split into healthy flight (kProp) and loss-recovery episodes (kRtoStall)
  // — the same episode boundaries retx_recovery_ns already measures.
  attr::open(host_.id(), stream_slot(stream_), stream_, host_.simulation().now());
  attr::transition(host_.id(), stream_slot(stream_), attr::Component::kProp,
                   host_.simulation().now());
  pump();
}

void ReliableSender::send_segment(std::int64_t seq) {
  const std::int64_t len = std::min<std::int64_t>(profile_.mss, total_ - seq);
  Packet p;
  p.kind = PacketKind::Segment;
  p.src = host_.id();
  p.dst = dst_;
  p.stream = stream_;
  p.seq = static_cast<std::uint64_t>(seq);
  p.seg_len = static_cast<std::uint32_t>(len);
  if (!data_.empty()) {
    const std::size_t first = static_cast<std::size_t>(seq / 4);
    const std::size_t count = static_cast<std::size_t>(len / 4);
    p.fvalues.assign(data_.begin() + static_cast<std::ptrdiff_t>(first),
                     data_.begin() + static_cast<std::ptrdiff_t>(first + count));
  }
  ++counters_.segments_sent;
  ++host_.transport_counters().segments_sent;
  if (seq < snd_max_) {
    // The single place retransmissions are counted: a byte below the
    // high-water mark is actually going on the wire again. (The RTO handler
    // used to credit the whole outstanding window up front, but go-back-N
    // with the collapsed cwnd only resends one MSS per round-trip.)
    ++counters_.retransmissions;
    ++host_.transport_counters().retransmissions;
  }
  trace::emit(trace::kCatTransport, host_.simulation().now(), host_.id(),
              seq < snd_max_ ? "seg_retx" : "seg_send", {"stream", stream_},
              {"seq", seq}, {"len", len});
  if (seq < snd_max_) {
    probe_end_ = -1; // Karn: an ACK past the probe may now be for a resend
  } else if (probe_end_ < 0) {
    probe_end_ = seq + len;
    probe_sent_at_ = host_.simulation().now();
  }
  snd_max_ = std::max(snd_max_, seq + len);
  host_.transmit(std::move(p));
}

void ReliableSender::pump() {
  const std::int64_t window =
      profile_.congestion_control ? std::min(cwnd_, profile_.window_bytes)
                                  : profile_.window_bytes;
  const std::int64_t limit = std::min(total_, snd_una_ + window);
  while (snd_nxt_ < limit) {
    send_segment(snd_nxt_);
    snd_nxt_ += std::min<std::int64_t>(profile_.mss, total_ - snd_nxt_);
  }
  if (snd_una_ < total_) arm_rto();
}

void ReliableSender::arm_rto() {
  timer_.cancel();
  timer_ = host_.simulation().schedule_timer(rto_, [this] { on_timeout(); });
}

void ReliableSender::on_timeout() {
  if (done()) return;
  ++counters_.timeouts;
  ++host_.transport_counters().timeouts;
  trace::emit(trace::kCatTransport, host_.simulation().now(), host_.id(), "rto",
              {"stream", stream_}, {"snd_una", snd_una_}, {"snd_nxt", snd_nxt_});
  if (retx_since_ < 0) {
    retx_since_ = host_.simulation().now();
    attr::transition(host_.id(), stream_slot(stream_), attr::Component::kRtoStall,
                     retx_since_);
  }
  snd_nxt_ = snd_una_; // go-back-N
  if (profile_.congestion_control) {
    // RTO is a serious congestion signal: collapse to one segment and
    // slow-start back up to half the pre-loss window.
    ssthresh_ = std::max<std::int64_t>(cwnd_ / 2, 2 * profile_.mss);
    cwnd_ = profile_.mss;
    in_fast_recovery_ = false;
  }
  rto_ = std::min<Time>(static_cast<Time>(static_cast<double>(rto_) * profile_.rto_backoff),
                        profile_.rto_max);
  pump();
}

void ReliableSender::rtt_sample(Time sample) {
  // Jacobson/Karels: SRTT <- SRTT + (R - SRTT)/8, RTTVAR <- RTTVAR +
  // (|R - SRTT| - RTTVAR)/4. Samples are already Karn-filtered upstream (one
  // probe per window, invalidated by any retransmission).
  const double r = static_cast<double>(sample);
  if (!have_rtt_) {
    srtt_ = r;
    rttvar_ = r / 2.0;
    have_rtt_ = true;
  } else {
    const double err = r - srtt_;
    srtt_ += err / 8.0;
    rttvar_ += (std::abs(err) - rttvar_) / 4.0;
  }
}

Time ReliableSender::base_rto() const {
  if (!profile_.adaptive_rto || !have_rtt_) return profile_.rto_initial;
  const auto rto = static_cast<Time>(srtt_ + 4.0 * rttvar_);
  return std::clamp(rto, profile_.rto_min, profile_.rto_max);
}

void ReliableSender::on_ack(const Packet& ack) {
  const auto acked = static_cast<std::int64_t>(ack.seq);
  if (acked > snd_una_) {
    const Time now = host_.simulation().now();
    if (probe_end_ >= 0 && acked >= probe_end_) {
      host_.rtt_hist().record(now - probe_sent_at_);
      if (profile_.adaptive_rto) rtt_sample(now - probe_sent_at_);
      probe_end_ = -1;
    }
    if (retx_since_ >= 0) {
      host_.retx_recovery_hist().record(now - retx_since_);
      retx_since_ = -1;
      attr::transition(host_.id(), stream_slot(stream_), attr::Component::kProp, now);
    }
    const std::int64_t newly_acked = acked - snd_una_;
    snd_una_ = acked;
    dupacks_ = 0;
    in_fast_recovery_ = false;
    // Forward progress clears any RTO backoff. Legacy mode resets to the
    // fixed initial; adaptive mode re-bases on the live SRTT/RTTVAR estimate
    // (the bug this replaces: the estimator's samples were recorded but the
    // RTO never consulted them).
    rto_ = base_rto();
    if (profile_.congestion_control && cwnd_ < profile_.window_bytes) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += newly_acked; // slow start
      } else {
        // Congestion avoidance: ~one MSS per cwnd's worth of ACKed data.
        cwnd_ += std::max<std::int64_t>(1, profile_.mss * profile_.mss / cwnd_);
      }
      cwnd_ = std::min(cwnd_, profile_.window_bytes);
    }
    if (snd_una_ >= total_) {
      timer_.cancel();
      attr::close(host_.id(), stream_slot(stream_), now);
      if (on_complete_) on_complete_();
      return;
    }
    pump();
  } else {
    if (++dupacks_ == profile_.dupack_threshold && !in_fast_recovery_) {
      // Fast retransmit: the receiver buffers out-of-order data, so only the
      // missing segment needs to be resent. Further duplicate ACKs for the
      // same hole are ignored until it is repaired (fast recovery).
      ++counters_.fast_retransmits;
      ++host_.transport_counters().fast_retransmits;
      in_fast_recovery_ = true;
      dupacks_ = 0;
      if (retx_since_ < 0) {
        retx_since_ = host_.simulation().now();
        attr::transition(host_.id(), stream_slot(stream_), attr::Component::kRtoStall,
                         retx_since_);
      }
      if (profile_.congestion_control) {
        // Multiplicative decrease.
        ssthresh_ = std::max<std::int64_t>(cwnd_ / 2, 2 * profile_.mss);
        cwnd_ = ssthresh_;
      }
      send_segment(snd_una_);
      arm_rto();
    }
  }
}

// -------------------------------------------------------------- ReliableReceiver

ReliableReceiver::ReliableReceiver(TransportHost& host, NodeId src, std::uint32_t stream,
                                   std::int64_t total_bytes, ChunkHandler on_chunk,
                                   std::function<void()> on_complete)
    : host_(host),
      src_(src),
      stream_(stream),
      total_(total_bytes),
      on_chunk_(std::move(on_chunk)),
      on_complete_(std::move(on_complete)) {
  host_.register_receiver(stream_, this);
}

ReliableReceiver::~ReliableReceiver() { host_.unregister_receiver(stream_); }

void ReliableReceiver::send_ack() {
  Packet ack;
  ack.kind = PacketKind::Ack;
  ack.src = host_.id();
  ack.dst = src_;
  ack.stream = stream_;
  ack.seq = static_cast<std::uint64_t>(rcv_nxt_);
  trace::emit(trace::kCatTransport, host_.simulation().now(), host_.id(), "ack",
              {"stream", stream_}, {"rcv_nxt", rcv_nxt_});
  host_.transmit(std::move(ack));
}

void ReliableReceiver::deliver(const Packet& p) {
  rcv_nxt_ = static_cast<std::int64_t>(p.seq) + p.seg_len;
  if (on_chunk_) on_chunk_(p.seq, p.seg_len, p.fvalues);
}

void ReliableReceiver::on_segment(Packet&& p) {
  const auto seq = static_cast<std::int64_t>(p.seq);
  if (seq == rcv_nxt_) {
    deliver(p);
    // Drain any buffered continuation.
    auto it = ooo_.find(rcv_nxt_);
    while (it != ooo_.end()) {
      deliver(it->second);
      ooo_.erase(it);
      it = ooo_.find(rcv_nxt_);
    }
    send_ack();
    if (rcv_nxt_ >= total_ && !completed_) {
      completed_ = true;
      if (on_complete_) on_complete_();
    }
  } else if (seq > rcv_nxt_) {
    // Hole: buffer for reassembly (SACK-like) and emit a duplicate ACK so
    // the sender can fast-retransmit the missing segment.
    ooo_.emplace(seq, std::move(p));
    send_ack();
  } else {
    // Stale retransmission of already-delivered data: re-ack.
    send_ack();
  }
}

} // namespace switchml::net
