#include "net/nic.hpp"

#include <algorithm>
#include <stdexcept>

namespace switchml::net {

HostNic::HostNic(sim::Simulation& simulation, const NicConfig& config)
    : sim_(simulation), config_(config) {
  if (config.cores < 1) throw std::invalid_argument("HostNic: cores must be >= 1");
  if (config.batch_size < 1) throw std::invalid_argument("HostNic: batch_size must be >= 1");
  busy_.assign(static_cast<std::size_t>(config.cores), 0);
}

void HostNic::set_slowdown(double factor) {
  if (factor <= 0.0) throw std::invalid_argument("HostNic::set_slowdown: factor must be > 0");
  slowdown_ = factor;
}

Time HostNic::effective_cost(Time per_packet, double per_byte, std::int64_t bytes) const {
  // The amortized batch term is computed in double alongside per_byte:
  // per_batch_overhead / batch_size on Time was integer division, silently
  // dropping the sub-ns remainder whenever the overhead is not a multiple of
  // the batch size (e.g. 1000ns/16 charged 62, not 62.5).
  const Time base =
      per_packet + static_cast<Time>(per_byte * static_cast<double>(bytes) +
                                     static_cast<double>(config_.per_batch_overhead) /
                                         static_cast<double>(config_.batch_size));
  if (slowdown_ == 1.0) return base;
  return static_cast<Time>(static_cast<double>(base) * slowdown_);
}

Time HostNic::occupy(int core, Time cost) {
  auto& b = busy_.at(static_cast<std::size_t>(core));
  const Time start = std::max(sim_.now(), b);
  b = start + cost;
  total_busy_ += cost;
  return b;
}

Time HostNic::tx_ready(int core, std::int64_t wire_bytes) {
  return occupy(core, effective_cost(config_.per_packet_tx, config_.per_byte_tx, wire_bytes)) +
         config_.tx_latency;
}

void HostNic::rx_process(int core, std::int64_t wire_bytes, sim::EventFn deliver) {
  const Time done =
      occupy(core, effective_cost(config_.per_packet_rx, config_.per_byte_rx, wire_bytes));
  sim_.schedule_at(done + config_.rx_latency, std::move(deliver));
}

} // namespace switchml::net
