#include "net/l2switch.hpp"

#include <stdexcept>

namespace switchml::net {

void L2Switch::attach(int port, Link& link) {
  links_[port] = &link;
  routes_[link.peer_of(*this).id()] = port;
}

void L2Switch::add_multicast_group(std::uint32_t group, std::vector<int> ports) {
  mcast_[group] = std::move(ports);
}

int L2Switch::port_of(NodeId dst) const {
  auto it = routes_.find(dst);
  if (it == routes_.end()) throw std::runtime_error(name() + ": no route to node " + std::to_string(dst));
  return it->second;
}

Link* L2Switch::link_at(int port) const {
  auto it = links_.find(port);
  return it == links_.end() ? nullptr : it->second;
}

void L2Switch::forward(Packet&& p) {
  Link* link = links_.at(port_of(p.dst));
  link->send_from(*this, std::move(p), sim_.now() + pipeline_latency_);
}

void L2Switch::multicast(std::uint32_t group, const Packet& p) {
  auto it = mcast_.find(group);
  if (it == mcast_.end()) throw std::runtime_error(name() + ": unknown multicast group");
  const Time ready = sim_.now() + pipeline_latency_;
  for (int port : it->second) {
    Packet copy = p;
    Link* link = links_.at(port);
    copy.dst = link->peer_of(*this).id();
    link->send_from(*this, std::move(copy), ready);
  }
}

void L2Switch::receive(Packet&& p, int /*port*/) { forward(std::move(p)); }

} // namespace switchml::net
