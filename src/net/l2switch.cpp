#include "net/l2switch.hpp"

#include <stdexcept>

namespace switchml::net {

void L2Switch::attach(int port, Link& link) {
  links_[port] = &link;
  routes_[link.peer_of(*this).id()] = port;
}

void L2Switch::add_multicast_group(std::uint32_t group, std::vector<int> ports) {
  mcast_[group] = std::move(ports);
}

int L2Switch::port_of(NodeId dst) const {
  auto it = routes_.find(dst);
  if (it == routes_.end()) throw std::runtime_error(name() + ": no route to node " + std::to_string(dst));
  return it->second;
}

Link* L2Switch::link_at(int port) const {
  auto it = links_.find(port);
  return it == links_.end() ? nullptr : it->second;
}

void L2Switch::stamp_int(Packet& p, Link& egress) {
  if constexpr (!inttel::kCompiledIn) {
    (void)p;
    (void)egress;
    return;
  }
  const bool stampable = p.kind == PacketKind::SmlUpdate || p.kind == PacketKind::SmlResult ||
                         p.kind == PacketKind::SmlRescue;
  if (p.int_mode == inttel::kModeOff || !stampable) return;
  if (inttel::last_hop_id(p.int_stack) == id()) return; // subclass already stamped
  inttel::IntHopRecord rec;
  rec.hop_id = id();
  rec.next_hop = p.dst;
  rec.hop_latency_ns = static_cast<std::uint32_t>(pipeline_latency_);
  const std::int64_t qb = egress.queue_depth_bytes(*this);
  const std::int64_t qp = egress.queue_depth_pkts(*this);
  rec.queue_bytes = qb > 0xFFFFFFFFll ? 0xFFFFFFFFu : static_cast<std::uint32_t>(qb);
  rec.queue_pkts = qp > 0xFFFFll ? 0xFFFFu : static_cast<std::uint16_t>(qp);
  rec.flags = inttel::kHopFlagL2;
  inttel::append_record(p.int_stack, rec);
}

void L2Switch::forward(Packet&& p) {
  Link* link = links_.at(port_of(p.dst));
  stamp_int(p, *link);
  link->send_from(*this, std::move(p), sim_.now() + pipeline_latency_);
}

void L2Switch::multicast(std::uint32_t group, const Packet& p) {
  auto it = mcast_.find(group);
  if (it == mcast_.end()) throw std::runtime_error(name() + ": unknown multicast group");
  const Time ready = sim_.now() + pipeline_latency_;
  for (int port : it->second) {
    Packet copy = p;
    Link* link = links_.at(port);
    copy.dst = link->peer_of(*this).id();
    stamp_int(copy, *link);
    link->send_from(*this, std::move(copy), ready);
  }
}

void L2Switch::receive(Packet&& p, int /*port*/) { forward(std::move(p)); }

} // namespace switchml::net
