// Baseline L2 switch: destination-based forwarding plus multicast groups,
// with a constant dataplane pipeline latency. The SwitchML switch composes
// this for its non-aggregation traffic and for the traffic-manager multicast.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"

namespace switchml::net {

class L2Switch : public Node {
public:
  L2Switch(sim::Simulation& simulation, NodeId id, std::string name,
           Time pipeline_latency = nsec(400))
      : Node(simulation, id, std::move(name)), pipeline_latency_(pipeline_latency) {}

  // Wires `link` to switch port `port`. The link's other endpoint's node id
  // is learned into the forwarding table.
  void attach(int port, Link& link);

  void add_multicast_group(std::uint32_t group, std::vector<int> ports);

  void receive(Packet&& p, int port) override;

  // Unicast toward `dst` (used by subclasses).
  void forward(Packet&& p);
  // Replicate to all ports of `group` (traffic-manager multicast).
  void multicast(std::uint32_t group, const Packet& p);

  [[nodiscard]] Time pipeline_latency() const { return pipeline_latency_; }
  [[nodiscard]] int port_of(NodeId dst) const;
  [[nodiscard]] Link* link_at(int port) const;
  // The member ports of `group`, in the order they were registered (the
  // fabric registers them in local-worker-index order). nullptr if unknown.
  [[nodiscard]] const std::vector<int>* multicast_ports(std::uint32_t group) const {
    auto it = mcast_.find(group);
    return it == mcast_.end() ? nullptr : &it->second;
  }

protected:
  // Pushes this switch's INT pipeline record (kHopFlagL2: pipeline latency +
  // egress queue depth) onto an INT-carrying data packet. No-op when the top
  // record was already stamped by this node (the aggregation subclass pushes
  // its richer record itself).
  void stamp_int(Packet& p, Link& egress);

private:
  Time pipeline_latency_;
  std::unordered_map<int, Link*> links_;
  std::unordered_map<NodeId, int> routes_;
  std::unordered_map<std::uint32_t, std::vector<int>> mcast_;
};

} // namespace switchml::net
