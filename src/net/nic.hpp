// Host NIC + CPU-core model.
//
// The paper's worker runs a DPDK run-to-completion loop on several cores
// (§4, Appendix B: 4 cores, Flow Director steering by slot index, batches of
// 32 packets). We model each core as a busy-until time: every transmitted or
// received packet occupies its owning core for a fixed per-packet cost, with
// a per-batch overhead amortized over the batch size. Core contention is what
// produces (a) the RTT growth with pool size seen in Fig 2 and (b) the
// below-line-rate behaviour at 100 Gbps with only 4 cores (§5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "sim/simulation.hpp"

namespace switchml::net {

struct NicConfig {
  int cores = 4;
  Time per_packet_tx = nsec(45);  // CPU cost to build + enqueue one packet
  Time per_packet_rx = nsec(45);  // CPU cost to process one received packet
  double per_byte_tx = 0.0;       // ns per payload byte (copies, reduction math)
  double per_byte_rx = 0.0;       // ns per payload byte
  Time per_batch_overhead = nsec(640); // DPDK burst-call overhead per batch
  int batch_size = 32;            // packets per DPDK burst
  // Fixed pipeline latency added to every packet (burst accumulation, PCIe,
  // driver queues). Pure delay: does NOT occupy a core, so it affects RTT
  // (and thus the optimal pool size, §3.6) but not throughput.
  Time tx_latency = usec(4);
  Time rx_latency = usec(4);
};

class HostNic {
public:
  HostNic(sim::Simulation& simulation, const NicConfig& config);

  [[nodiscard]] int cores() const { return static_cast<int>(busy_.size()); }

  // Reserves TX processing time on `core` for a packet of `wire_bytes` and
  // returns the instant the packet is handed to the wire (used as
  // Link::send_from's earliest_start, so no extra simulator event is needed
  // on the TX path).
  Time tx_ready(int core, std::int64_t wire_bytes = 0);

  // Schedules `deliver` to run once `core` has processed a packet of
  // `wire_bytes` that arrived now. One simulator event per received packet;
  // the closure rides the simulator's allocation-free EventFn, so its
  // captures must fit sim::EventFn's inline buffer.
  void rx_process(int core, std::int64_t wire_bytes, sim::EventFn deliver);

  // Total CPU-busy nanoseconds accumulated across cores (for utilization
  // reporting).
  [[nodiscard]] Time total_busy() const { return total_busy_; }

  [[nodiscard]] const NicConfig& config() const { return config_; }

  // Straggler emulation (fault injection): stretches every per-packet /
  // per-byte CPU cost by `factor` from now on. 1.0 restores normal speed and
  // is exactly cost-neutral (no rounding through the multiplier).
  void set_slowdown(double factor);
  [[nodiscard]] double slowdown() const { return slowdown_; }

private:
  Time effective_cost(Time per_packet, double per_byte, std::int64_t bytes) const;
  Time occupy(int core, Time cost);

  sim::Simulation& sim_;
  NicConfig config_;
  std::vector<Time> busy_;
  Time total_busy_ = 0;
  double slowdown_ = 1.0;
};

} // namespace switchml::net
