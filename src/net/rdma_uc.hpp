// RDMA UC channel model (the reference implementation's second transport).
//
// The client posts ONE work queue element per SwitchML message; the NIC
// segments it into path-MTU RoCE frames and DMAs the payload, so host CPU
// cost is per message (WQE post + amortized doorbell on TX, CQE reap on RX)
// and never per byte — the property that lets the paper's prototype exceed
// 2x NCCL at 100 Gbps where the DPDK/UDP datapath goes CPU-bound. UC means
// unreliable connected: the verbs layer has no ACKs and no retransmission;
// a lost message is repaired solely by SwitchML's own slot protocol
// (worker-side timers + switch seen bitmaps), exactly like a lost UDP packet.
//
// Lanes map to the same NIC cores the UDP path shards over (queue pairs
// pinned per core), and every CPU cost stretches with the owning HostNic's
// straggler slowdown factor so fault injection applies to both transports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/channel.hpp"

namespace switchml::net {

class RdmaUcChannel final : public Channel {
public:
  RdmaUcChannel(sim::Simulation& simulation, std::string name, NodeId owner, HostNic& nic,
                const RdmaUcParams& params);

  [[nodiscard]] TransportKind kind() const override { return TransportKind::kRdmaUc; }
  Time tx_ready(int lane, const Packet& p) override;
  void rx_process(int lane, const Packet& p, sim::EventFn deliver) override;

  struct Counters {
    std::uint64_t wqes_posted = 0;
    std::uint64_t doorbells = 0;
    std::uint64_t cqes_polled = 0;
    std::uint64_t wire_segments = 0; // path-MTU frames across all messages
    std::uint64_t payload_bytes = 0; // message bytes excluding RoCE framing
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] Time total_busy() const { return total_busy_; }

private:
  Time occupy(int lane, Time cost);
  [[nodiscard]] std::uint32_t segments_of(const Packet& p) const;

  sim::Simulation& sim_;
  std::string name_;
  NodeId owner_;
  HostNic& nic_; // lane count + straggler slowdown live on the host's NIC
  RdmaUcParams params_;
  std::vector<Time> busy_; // per-lane busy-until, like HostNic's cores
  Time total_busy_ = 0;
  std::uint64_t posts_since_doorbell_ = 0;
  Counters counters_;
};

} // namespace switchml::net
