#include "net/trace.hpp"

#include <iomanip>
#include <ostream>

namespace switchml::net {

const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::Tx: return "TX";
    case TraceEventKind::DropQueue: return "DROP-QUEUE";
    case TraceEventKind::DropLoss: return "DROP-LOSS";
    case TraceEventKind::DropDown: return "DROP-DOWN";
    case TraceEventKind::DropBurst: return "DROP-BURST";
    case TraceEventKind::Corrupt: return "CORRUPT";
    case TraceEventKind::Deliver: return "DELIVER";
  }
  return "?";
}

void Tracer::record(const TraceEvent& e) {
  if (filter_ && !filter_(e)) return;
  if (capacity_ != 0 && events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

void Tracer::dump(std::ostream& os, std::size_t max_lines) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (max_lines && n++ >= max_lines) {
      os << "... (" << events_.size() - max_lines << " more events)\n";
      break;
    }
    os << '[' << std::setw(10) << to_usec(e.at) << " us] " << std::setw(10)
       << to_string(e.kind) << ' ' << to_string(e.pkt) << ' ' << e.from << "->" << e.to;
    if (e.pkt == PacketKind::SmlUpdate || e.pkt == PacketKind::SmlResult)
      os << " wid=" << e.wid << " ver=" << static_cast<int>(e.ver) << " slot=" << e.idx
         << " off=" << e.off;
    os << " (" << e.wire_bytes << "B)\n";
  }
  if (dropped_ != 0) os << "(capacity reached: " << dropped_ << " events not recorded)\n";
}

} // namespace switchml::net
