// The host transport seam: one interface for "what does it cost this host to
// put a SwitchML packet on the wire / consume one from it".
//
// Two implementations, mirroring the reference implementation's two client
// transports:
//   * UdpChannel     — the DPDK/UDP datapath. A pure pass-through to the
//     HostNic per-packet/per-byte/per-batch core model, so a fabric built
//     with TransportKind::kUdp is event-for-event identical to the code
//     before the seam existed.
//   * RdmaUcChannel  — message-level work queues (rdma_uc.hpp). CPU pays
//     per-MESSAGE WQE/doorbell/CQE costs; segmentation, framing and DMA are
//     NIC-side, so there is no per-byte software cost on the data path.
//
// Senders pick a lane (== NIC core, Flow-Director style) exactly as before;
// the channel decides what the lane time costs.
#pragma once

#include <memory>
#include <string>

#include "net/nic.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace switchml::net {

// Cost knobs for the RDMA-UC channel. Defaults are calibrated against
// published verbs microbenchmarks: posting a WQE is tens of ns, the MMIO
// doorbell costs a PCIe write amortized over a batch of posts, and reaping a
// CQE is another few tens of ns. tx/rx_latency is the PCIe DMA + NIC
// segmentation pipeline (pure delay, does not occupy a core).
struct RdmaUcParams {
  Time wqe_post = nsec(40);    // CPU: build + post one work queue element
  Time doorbell = nsec(200);   // CPU: MMIO doorbell write (amortized)
  int doorbell_batch = 8;      // WQE posts rung per doorbell
  Time cqe_poll = nsec(40);    // CPU: poll + reap one completion
  Time tx_latency = nsec(900); // DMA read + segmentation pipeline
  Time rx_latency = nsec(900); // scatter DMA + completion delivery
};

class Channel {
public:
  virtual ~Channel() = default;

  [[nodiscard]] virtual TransportKind kind() const = 0;

  // Reserves TX processing time on `lane` for `p` and returns the instant the
  // packet is handed to the wire (Link::send_from's earliest_start).
  virtual Time tx_ready(int lane, const Packet& p) = 0;

  // Schedules `deliver` once `lane` has consumed a packet that arrived now.
  virtual void rx_process(int lane, const Packet& p, sim::EventFn deliver) = 0;
};

// DPDK/UDP datapath: every packet charges the HostNic core model verbatim.
class UdpChannel final : public Channel {
public:
  explicit UdpChannel(HostNic& nic) : nic_(nic) {}

  [[nodiscard]] TransportKind kind() const override { return TransportKind::kUdp; }
  Time tx_ready(int lane, const Packet& p) override {
    return nic_.tx_ready(lane, p.wire_bytes());
  }
  void rx_process(int lane, const Packet& p, sim::EventFn deliver) override {
    nic_.rx_process(lane, p.wire_bytes(), std::move(deliver));
  }

private:
  HostNic& nic_;
};

// Builds the channel `kind` for a host. `name` prefixes the RDMA channel's
// registered metrics ("<name>.rdma.*"); the UDP channel registers nothing of
// its own (the HostNic it delegates to already has an owner). `nic` supplies
// the lane count and the straggler slowdown factor for both kinds.
std::unique_ptr<Channel> make_channel(sim::Simulation& simulation, const std::string& name,
                                      NodeId owner, TransportKind kind, HostNic& nic,
                                      const RdmaUcParams& rdma);

} // namespace switchml::net
