// In-memory packet tracer: a pcap-style event log for debugging protocol
// behaviour and for the worked-example walkthroughs. Links record every
// transmit / drop / corruption / delivery with the SwitchML header fields,
// so a run can be replayed as a human-readable timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "net/packet.hpp"

namespace switchml::net {

enum class TraceEventKind : std::uint8_t {
  Tx,
  DropQueue,
  DropLoss,
  DropDown,  // link was administratively down (fault injection)
  DropBurst, // Gilbert-Elliott burst-loss process
  Corrupt,
  Deliver,
};

const char* to_string(TraceEventKind k);

struct TraceEvent {
  Time at = 0;
  TraceEventKind kind = TraceEventKind::Tx;
  NodeId from = 0;
  NodeId to = 0;
  PacketKind pkt = PacketKind::Raw;
  std::uint16_t wid = 0;
  std::uint8_t ver = 0;
  std::uint32_t idx = 0;
  std::uint64_t off = 0;
  std::uint32_t wire_bytes = 0;
};

class Tracer {
public:
  using Filter = std::function<bool(const TraceEvent&)>;

  // Only events passing `filter` are kept (default: keep everything).
  void set_filter(Filter f) { filter_ = std::move(f); }
  // Stop recording after `cap` events (guards memory on big runs; 0 = off).
  void set_capacity(std::size_t cap) { capacity_ = cap; }

  void record(const TraceEvent& e);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t dropped_records() const { return dropped_; }
  void clear() { events_.clear(); dropped_ = 0; }

  // Human-readable timeline; at most `max_lines` lines (0 = all).
  void dump(std::ostream& os, std::size_t max_lines = 0) const;

private:
  Filter filter_;
  std::size_t capacity_ = 0;
  std::size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

} // namespace switchml::net
