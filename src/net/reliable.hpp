// Reliable byte-stream transport ("TCP-lite") used by the baseline
// communication strategies (Gloo/NCCL-style collectives and the parameter
// servers). Sliding window with cumulative ACKs, out-of-order buffering at
// the receiver (SACK-like), single-segment fast retransmit on duplicate
// ACKs, and go-back-N with exponential backoff on RTO — enough fidelity to
// reproduce the paper's §5.5 observation that the TCP baselines inflate much
// faster than SwitchML under random loss (head-of-line blocking and RTO
// stalls versus SwitchML's independent per-slot repair).
//
// A TransportHost is a network node that demultiplexes segments/ACKs to the
// senders/receivers registered on it, charging NIC core time per packet.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/histogram.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/node.hpp"

namespace switchml::net {

struct TransportProfile {
  std::int64_t mss = 1460;                 // payload bytes per segment
  std::int64_t window_bytes = 256 * 1024;  // receive/flow-control window cap
  Time rto_initial = msec(2);
  double rto_backoff = 2.0;
  Time rto_max = msec(64);
  // RTT-adaptive RTO (Jacobson/Karels SRTT + 4*RTTVAR, fed by the Karn-
  // filtered probe samples the sender already records). Off by default: the
  // legacy behaviour resets the RTO to rto_initial on every forward ACK.
  bool adaptive_rto = false;
  Time rto_min = usec(100);
  int dupack_threshold = 3;
  // TCP congestion control (AIMD). Connections are persistent (Gloo/NCCL
  // reuse them across rounds), so cwnd STARTS at the window cap and only
  // reacts to loss: halve on fast retransmit, collapse to one MSS on RTO,
  // then grow additively — the 1/sqrt(p) throughput collapse that makes the
  // TCP baselines inflate so badly in Fig 5. Disable to get a fixed window.
  bool congestion_control = true;
};

class ReliableSender;
class ReliableReceiver;

// Host-wide transport totals, aggregated across all senders that ever lived
// on the host. Senders are per-transfer and ephemeral, so the registered
// metrics hang off the host, which lives as long as the cluster.
struct TransportCounters {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
};

class TransportHost : public Node {
public:
  TransportHost(sim::Simulation& simulation, NodeId id, std::string name, const NicConfig& nic);

  void set_uplink(Link& link) { uplink_ = &link; }
  [[nodiscard]] Link* uplink() const { return uplink_; }
  [[nodiscard]] HostNic& nic() { return nic_; }

  void receive(Packet&& p, int port) override;

  // Charges a TX core slot and puts the packet on the uplink.
  void transmit(Packet&& p);

  void register_sender(std::uint32_t stream, ReliableSender* s) { senders_[stream] = s; }
  void register_receiver(std::uint32_t stream, ReliableReceiver* r) { receivers_[stream] = r; }
  void unregister_sender(std::uint32_t stream) { senders_.erase(stream); }
  void unregister_receiver(std::uint32_t stream) { receivers_.erase(stream); }

  [[nodiscard]] TransportCounters& transport_counters() { return transport_counters_; }
  [[nodiscard]] const TransportCounters& transport_counters() const { return transport_counters_; }

  // Latency spans, host-wide for the same lifetime reason as the counters:
  // ACK-clocked segment RTT (one probe segment per window, Karn's rule) and
  // loss-recovery latency (first retransmission to ACK advance).
  [[nodiscard]] Histogram& rtt_hist() { return rtt_ns_; }
  [[nodiscard]] Histogram& retx_recovery_hist() { return retx_recovery_ns_; }

private:
  HostNic nic_;
  Link* uplink_ = nullptr;
  std::unordered_map<std::uint32_t, ReliableSender*> senders_;
  std::unordered_map<std::uint32_t, ReliableReceiver*> receivers_;
  TransportCounters transport_counters_;
  Histogram rtt_ns_;
  Histogram retx_recovery_ns_;
};

// Sends `total_bytes` to `dst` as a single stream. If `data` is nonempty it
// must contain total_bytes/4 floats, which are carried in the segments so the
// receiver can apply them (correctness-mode runs); otherwise the transfer is
// timing-only.
class ReliableSender {
public:
  ReliableSender(TransportHost& host, NodeId dst, std::uint32_t stream,
                 const TransportProfile& profile, std::function<void()> on_complete);
  ~ReliableSender();
  ReliableSender(const ReliableSender&) = delete;
  ReliableSender& operator=(const ReliableSender&) = delete;

  void start(std::int64_t total_bytes, std::span<const float> data = {});
  void on_ack(const Packet& ack);

  struct Counters {
    std::uint64_t segments_sent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fast_retransmits = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] bool done() const { return total_ > 0 && snd_una_ >= total_; }
  [[nodiscard]] std::int64_t cwnd() const { return cwnd_; }

private:
  void pump();
  void send_segment(std::int64_t seq);
  void arm_rto();
  void on_timeout();
  void rtt_sample(Time sample);
  [[nodiscard]] Time base_rto() const;

  TransportHost& host_;
  NodeId dst_;
  std::uint32_t stream_;
  TransportProfile profile_;
  std::function<void()> on_complete_;

  std::int64_t total_ = 0;
  std::span<const float> data_;
  std::int64_t snd_una_ = 0;
  std::int64_t snd_nxt_ = 0;
  std::int64_t snd_max_ = 0; // high-water mark; bytes below it are retransmissions
  int dupacks_ = 0;
  bool in_fast_recovery_ = false;
  std::int64_t cwnd_ = 0;     // congestion window (bytes)
  std::int64_t ssthresh_ = 0; // slow-start threshold (bytes)
  Time rto_;
  sim::TimerHandle timer_;
  Counters counters_;
  // RTT probe: one timed segment per window; any retransmission while it is
  // outstanding invalidates the sample (Karn's rule, ambiguous ACK).
  std::int64_t probe_end_ = -1; // byte the probe's cumulative ACK must reach
  Time probe_sent_at_ = 0;
  // Loss-recovery span: first retransmission (RTO or fast retransmit) until
  // the next cumulative ACK advance.
  Time retx_since_ = -1;
  // Jacobson/Karels state (profile_.adaptive_rto).
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  bool have_rtt_ = false;
};

// Receives a single stream of `total_bytes`. Out-of-order segments are
// buffered (SACK-like) and delivered in order once the gap fills; every
// arrival is acknowledged cumulatively, so gaps produce duplicate ACKs.
class ReliableReceiver {
public:
  using ChunkHandler =
      std::function<void(std::uint64_t seq, std::uint32_t len, std::span<const float> data)>;

  ReliableReceiver(TransportHost& host, NodeId src, std::uint32_t stream,
                   std::int64_t total_bytes, ChunkHandler on_chunk,
                   std::function<void()> on_complete);
  ~ReliableReceiver();
  ReliableReceiver(const ReliableReceiver&) = delete;
  ReliableReceiver& operator=(const ReliableReceiver&) = delete;

  void on_segment(Packet&& p);
  [[nodiscard]] bool done() const { return rcv_nxt_ >= total_; }
  [[nodiscard]] std::size_t buffered_segments() const { return ooo_.size(); }

private:
  void send_ack();
  void deliver(const Packet& p);

  TransportHost& host_;
  NodeId src_;
  std::uint32_t stream_;
  std::int64_t total_;
  std::int64_t rcv_nxt_ = 0;
  ChunkHandler on_chunk_;
  std::function<void()> on_complete_;
  bool completed_ = false;
  std::map<std::int64_t, Packet> ooo_; // out-of-order reassembly buffer
};

} // namespace switchml::net
