// Base class for anything attached to the simulated network: hosts, switches,
// parameter servers. A node receives packets from its links and may schedule
// further work on the shared Simulation.
#pragma once

#include <string>
#include <utility>

#include "common/tracing.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace switchml::net {

class Node {
public:
  Node(sim::Simulation& simulation, NodeId id, std::string name)
      : sim_(simulation), id_(id), name_(std::move(name)) {
    // Label this node's trace row (Perfetto shows names, not bare NodeIds).
    if (auto* sink = trace::TraceSink::current()) sink->register_actor(id_, name_);
  }
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Called by a Link when a packet arrives on `port`.
  virtual void receive(Packet&& p, int port) = 0;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }

protected:
  sim::Simulation& sim_;

private:
  NodeId id_;
  std::string name_;
};

} // namespace switchml::net
