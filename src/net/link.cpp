#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/attribution.hpp"
#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace switchml::net {

namespace {

// The chunk a data packet's time attributes to: updates belong to the sending
// worker, results to the destination worker (L2 multicast rewrites dst per
// egress port). Other kinds — probes, rescues, baseline segments — carry no
// chunk identity; switch-to-switch hops miss the ledger key and are no-ops.
bool chunk_owner(const Packet& p, std::uint32_t& node) {
  switch (p.kind) {
    case PacketKind::SmlUpdate: node = p.src; return true;
    case PacketKind::SmlResult: node = p.dst; return true;
    default: return false;
  }
}

// Packet kinds that carry an INT stack (the SwitchML data path; probes and
// baseline segments stay bare).
bool int_stampable(PacketKind kind) {
  return kind == PacketKind::SmlUpdate || kind == PacketKind::SmlResult ||
         kind == PacketKind::SmlRescue;
}

std::uint32_t sat_u32(std::uint64_t v) {
  return v > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<std::uint32_t>(v);
}

std::uint16_t sat_u16(std::uint64_t v) {
  return v > 0xFFFFull ? 0xFFFFu : static_cast<std::uint16_t>(v);
}

const char* trace_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::Tx: return "enqueue";
    case TraceEventKind::DropQueue: return "drop_queue";
    case TraceEventKind::DropLoss: return "drop_loss";
    case TraceEventKind::DropDown: return "drop_down";
    case TraceEventKind::DropBurst: return "drop_burst";
    case TraceEventKind::Corrupt: return "corrupt";
    case TraceEventKind::Deliver: return "deliver";
  }
  return "?";
}

} // namespace

Link::Link(sim::Simulation& simulation, const LinkConfig& config, Node& end_a, int port_a,
           Node& end_b, int port_b, std::uint64_t seed)
    : sim_(simulation),
      config_(config),
      seed_(seed),
      end_a_(&end_a),
      end_b_(&end_b),
      a_to_b_{&end_b, port_b, sim::Rng::stream(seed, end_a.name() + "->" + end_b.name())},
      b_to_a_{&end_a, port_a, sim::Rng::stream(seed, end_b.name() + "->" + end_a.name())} {
  if (config.rate <= 0) throw std::invalid_argument("Link rate must be positive");

  if (auto* reg = MetricsRegistry::current()) {
    auto add_direction = [reg, this](const std::string& prefix, Direction& dir) {
      const Counters& c = dir.counters;
      reg->add_counter(prefix + "tx_packets", [&c] { return c.tx_packets; });
      reg->add_counter(prefix + "tx_bytes", [&c] { return c.tx_bytes; });
      reg->add_counter(prefix + "delivered_packets", [&c] { return c.delivered_packets; });
      reg->add_counter(prefix + "dropped_queue", [&c] { return c.dropped_queue; });
      reg->add_counter(prefix + "dropped_loss", [&c] { return c.dropped_loss; });
      reg->add_counter(prefix + "dropped_down", [&c] { return c.dropped_down; });
      reg->add_counter(prefix + "dropped_burst", [&c] { return c.dropped_burst; });
      reg->add_counter(prefix + "burst_entries", [&c] { return c.burst_entries; });
      // Occupancy is tracked lazily: drain the in-flight ledger up to now,
      // then the running totals are exact — O(1) amortized, no recompute.
      reg->add_gauge(prefix + "queue_bytes", [this, &dir] {
        drain(dir);
        return dir.backlog_bytes;
      });
      reg->add_gauge(prefix + "queue_pkts", [this, &dir] {
        drain(dir);
        return static_cast<std::int64_t>(dir.in_flight.size());
      });
      reg->add_histogram(prefix + "queue_wait_ns", &dir.queue_wait_ns);
    };
    add_direction("link." + end_a.name() + "->" + end_b.name() + ".", a_to_b_);
    add_direction("link." + end_b.name() + "->" + end_a.name() + ".", b_to_a_);
  }
}

Link::Direction& Link::direction_from(const Node& sender) {
  if (&sender == end_a_) return a_to_b_;
  if (&sender == end_b_) return b_to_a_;
  throw std::invalid_argument("Link::send_from: sender is not an endpoint of this link");
}

const Node& Link::from_of(const Direction& dir) const {
  return dir.to == end_b_ ? *end_a_ : *end_b_;
}

const Link::Counters& Link::counters_from(const Node& sender) const {
  if (&sender == end_a_) return a_to_b_.counters;
  if (&sender == end_b_) return b_to_a_.counters;
  throw std::invalid_argument("Link::counters_from: not an endpoint");
}

void Link::drain(Direction& dir) {
  const Time now = sim_.now();
  while (!dir.in_flight.empty() && dir.in_flight.front().finish <= now) {
    dir.backlog_bytes -= dir.in_flight.front().bytes;
    dir.in_flight.pop_front();
  }
}

std::int64_t Link::queue_depth_bytes(const Node& sender) {
  Direction& dir = direction_from(sender);
  drain(dir);
  return dir.backlog_bytes;
}

std::int64_t Link::queue_depth_pkts(const Node& sender) {
  Direction& dir = direction_from(sender);
  drain(dir);
  return static_cast<std::int64_t>(dir.in_flight.size());
}

Node& Link::peer_of(const Node& n) {
  if (&n == end_a_) return *end_b_;
  if (&n == end_b_) return *end_a_;
  throw std::invalid_argument("Link::peer_of: not an endpoint");
}

void Link::send_from(const Node& sender, Packet&& p, Time earliest_start) {
  transmit(sender, direction_from(sender), std::move(p), earliest_start);
}

void Link::trace(TraceEventKind kind, const Node& from, const Node& to, const Packet& p) {
  // Fully qualified: `trace` unqualified resolves to this member function.
  switchml::trace::emit(switchml::trace::kCatLink, sim_.now(), from.id(), trace_name(kind),
                        {"to", to.id()}, {"slot", p.idx}, {"bytes", p.wire_bytes()});
  if (tracer_ == nullptr) return;
  TraceEvent e;
  e.at = sim_.now();
  e.kind = kind;
  e.from = from.id();
  e.to = to.id();
  e.pkt = p.kind;
  e.wid = p.wid;
  e.ver = p.ver;
  e.idx = p.idx;
  e.off = p.off;
  e.wire_bytes = p.wire_bytes();
  tracer_->record(e);
}

void Link::corrupt(Packet& p) {
  // Flip one payload bit (or a header bit when there is no payload).
  if (!p.values.empty())
    p.values[p.values.size() / 2] ^= 0x10;
  else
    p.off ^= 0x1;
}

void Link::set_rate(BitsPerSecond rate) {
  if (rate <= 0)
    throw std::invalid_argument(
        "Link::set_rate: rate must be positive (a dead link is set_down(), not rate 0)");
  if (rate == config_.rate) return;
  const BitsPerSecond old_rate = config_.rate;
  config_.rate = rate;
  replan(a_to_b_, old_rate);
  replan(b_to_a_, old_rate);
}

void Link::replan(Direction& dir, BitsPerSecond old_rate) {
  const Time now = sim_.now();
  Time prev_finish = -1;
  for (InFlight& rec : dir.in_flight) {
    if (rec.finish <= now) continue; // fully serialized; only propagation remains
    Time start = rec.start;
    if (prev_finish >= 0 && start < prev_finish) start = prev_finish;
    std::int64_t bits_left = rec.bytes * 8;
    if (start < now) {
      // Mid-serialization: bits already clocked out at the old rate stay out.
      const auto done = static_cast<std::int64_t>(static_cast<__int128>(now - start) *
                                                  old_rate / kSecond);
      bits_left = std::max<std::int64_t>(bits_left - done, 0);
      start = now;
    }
    const Time finish = start + wire_time_bits(bits_left, config_.rate);
    rec.start = start;
    rec.finish = finish;
    prev_finish = finish;

    const auto pit = std::find_if(dir.pending.begin(), dir.pending.end(),
                                  [&rec](const PendingDelivery& p) { return p.seq == rec.seq; });
    if (pit != dir.pending.end()) { // absent when the packet was dropped in flight
      const Time at = finish + config_.propagation;
      if (at < pit->deliver_at) {
        // Moved earlier: the already-scheduled event would fire too late, so
        // chase with a second event. Whichever pops first (on time) delivers;
        // the other finds no entry and is inert.
        sim_.schedule_at(at, [this, dirp = &dir, seq = rec.seq] { deliver_event(*dirp, seq); });
      }
      pit->deliver_at = at;
    }
  }
  if (prev_finish >= 0) dir.busy_until = prev_finish;
}

void Link::set_down() {
  if (down_) return;
  down_ = true;
  const Time now = sim_.now();
  for (Direction* d : {&a_to_b_, &b_to_a_}) {
    for (const PendingDelivery& pd : d->pending) {
      ++d->counters.dropped_down;
      trace(TraceEventKind::DropDown, from_of(*d), *d->to, pd.pkt);
      if (std::uint32_t owner = 0; attr::enabled() && chunk_owner(pd.pkt, owner))
        attr::transition_matching(owner, pd.pkt.idx, pd.pkt.off, attr::Component::kRtoStall, now);
    }
    d->pending.clear();
    d->in_flight.clear();
    d->backlog_bytes = 0;
    d->busy_until = std::min(d->busy_until, now); // the port is idle when it comes back
  }
  switchml::trace::emit(switchml::trace::kCatFault, now, end_a_->id(), "link_down",
                        {"peer", end_b_->id()});
}

void Link::set_up() {
  if (!down_) return;
  down_ = false;
  switchml::trace::emit(switchml::trace::kCatFault, sim_.now(), end_a_->id(), "link_up",
                        {"peer", end_b_->id()});
}

void Link::set_burst_loss(const BurstLossConfig& cfg) {
  for (double p : {cfg.p_enter, cfg.p_exit, cfg.loss_good, cfg.loss_bad})
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument("Link::set_burst_loss: probabilities must be in [0, 1]");
  burst_ = cfg;
  if (!a_to_b_.burst_rng)
    a_to_b_.burst_rng =
        sim::Rng::stream(seed_, end_a_->name() + "->" + end_b_->name() + ".burst");
  if (!b_to_a_.burst_rng)
    b_to_a_.burst_rng =
        sim::Rng::stream(seed_, end_b_->name() + "->" + end_a_->name() + ".burst");
}

void Link::deliver_event(Direction& dir, std::uint64_t seq) {
  const auto it = std::find_if(dir.pending.begin(), dir.pending.end(),
                               [seq](const PendingDelivery& p) { return p.seq == seq; });
  if (it == dir.pending.end()) return; // killed by set_down, or a twin already delivered
  if (it->deliver_at > sim_.now()) {
    // A mid-run slowdown pushed this delivery later; chase the new time.
    sim_.schedule_at(it->deliver_at, [this, dirp = &dir, seq] { deliver_event(*dirp, seq); });
    return;
  }
  PendingDelivery d = std::move(*it);
  dir.pending.erase(it);
  ++dir.counters.delivered_packets;
  trace(TraceEventKind::Deliver, from_of(dir), *dir.to, d.pkt);
  dir.to->receive(std::move(d.pkt), dir.to_port);
}

// Pushes this hop's INT record: egress queue depth (post-drain, exact),
// cumulative egress drops, and the planned ingress→egress latency — queue
// wait behind earlier serializations, the packet's own serialization
// (including the bytes this record adds in on-wire mode), and propagation.
// The whole transit is planned at enqueue time, so the "egress" latency is
// known here, before the bits ever move.
void Link::stamp_int(const Node& sender, Direction& dir, Packet& p, Time earliest_start) {
  inttel::IntHopRecord rec;
  rec.hop_id = sender.id();
  rec.next_hop = dir.to->id();
  rec.queue_bytes = sat_u32(static_cast<std::uint64_t>(dir.backlog_bytes));
  rec.queue_pkts = sat_u16(dir.in_flight.size());
  const Counters& c = dir.counters;
  rec.drops = sat_u32(c.dropped_queue + c.dropped_loss + c.dropped_down + c.dropped_burst);
  const Time t0 = std::max(sim_.now(), earliest_start);
  const Time start = std::max(t0, dir.busy_until);
  std::uint32_t wire_after = p.wire_bytes();
  if (p.int_mode == inttel::kModeOnWire) {
    wire_after += inttel::kRecordBytes +
                  (p.int_stack.empty() ? inttel::kShimBytes : 0u);
  }
  const Time latency =
      (start - t0) + serialization_time(wire_after, config_.rate) + config_.propagation;
  rec.hop_latency_ns = sat_u32(static_cast<std::uint64_t>(latency));
  inttel::append_record(p.int_stack, rec);
}

void Link::transmit(const Node& sender, Direction& dir, Packet&& p, Time earliest_start) {
  const Time now = sim_.now();
  Node& peer = *dir.to;
  // Span attribution: transitions are applied synchronously with the planned
  // timestamps (port-free moment, serialization start/finish), which is valid
  // because they are computed deterministically on the sim clock.
  std::uint32_t owner = 0;
  const bool attributed = attr::enabled() && chunk_owner(p, owner);
  const std::uint64_t owner_off = p.off; // captured before corrupt() can flip it
  if (down_) {
    ++dir.counters.dropped_down;
    trace(TraceEventKind::DropDown, sender, peer, p);
    if (attributed)
      attr::transition_matching(owner, p.idx, owner_off, attr::Component::kRtoStall, now);
    return;
  }
  // Drain completed serializations from the lazy backlog ledger.
  drain(dir);

  // Stamp this hop's telemetry before wire_bytes() is read: in on-wire mode
  // the record's bytes are part of the frame and must be charged everywhere.
  if (inttel::kCompiledIn && p.int_mode != inttel::kModeOff && int_stampable(p.kind))
    stamp_int(sender, dir, p, earliest_start);

  const std::int64_t wire = p.wire_bytes();
  if (dir.backlog_bytes + wire > config_.queue_limit_bytes) {
    ++dir.counters.dropped_queue;
    trace(TraceEventKind::DropQueue, sender, peer, p);
    if (attributed)
      attr::transition_matching(owner, p.idx, owner_off, attr::Component::kRtoStall, now);
    return;
  }
  trace(TraceEventKind::Tx, sender, peer, p);

  ++dir.counters.tx_packets;
  dir.counters.tx_bytes += static_cast<std::uint64_t>(wire);

  const Time start = std::max({now, earliest_start, dir.busy_until});
  dir.queue_wait_ns.record(start - std::max(now, earliest_start));
  const Time finish = start + serialization_time(wire, config_.rate);
  dir.busy_until = finish;
  dir.backlog_bytes += wire;
  const std::uint64_t seq = dir.next_seq++;
  dir.in_flight.push_back({seq, start, finish, wire});

  if (attributed) {
    attr::transition_matching(owner, p.idx, owner_off, attr::Component::kLinkQueue,
                              std::max(now, earliest_start));
    attr::transition_matching(owner, p.idx, owner_off, attr::Component::kWire, start);
  }

  if (dir.rng.chance(config_.loss_prob) || (drop_filter_ && drop_filter_(sender, p))) {
    ++dir.counters.dropped_loss;
    trace(TraceEventKind::DropLoss, sender, peer, p);
    // The bits left the port but never arrive; the chunk stalls from the
    // moment serialization ends until the retransmission timer acts.
    if (attributed)
      attr::transition_matching(owner, p.idx, owner_off, attr::Component::kRtoStall, finish);
    return;
  }

  if (burst_) {
    // Advance the Gilbert-Elliott chain, then sample the state's loss rate.
    if (dir.burst_bad) {
      if (dir.burst_rng->chance(burst_->p_exit)) dir.burst_bad = false;
    } else if (dir.burst_rng->chance(burst_->p_enter)) {
      dir.burst_bad = true;
      ++dir.counters.burst_entries;
      switchml::trace::emit(switchml::trace::kCatFault, now, sender.id(), "burst_begin",
                            {"to", peer.id()});
    }
    if (dir.burst_rng->chance(dir.burst_bad ? burst_->loss_bad : burst_->loss_good)) {
      ++dir.counters.dropped_burst;
      trace(TraceEventKind::DropBurst, sender, peer, p);
      if (attributed)
        attr::transition_matching(owner, p.idx, owner_off, attr::Component::kRtoStall, finish);
      return;
    }
  }

  if (dir.rng.chance(corrupt_prob_) || (corrupt_filter_ && corrupt_filter_(sender, p))) {
    corrupt(p);
    trace(TraceEventKind::Corrupt, sender, peer, p);
  }

  if (attributed)
    attr::transition_matching(owner, p.idx, owner_off, attr::Component::kProp, finish);
  dir.pending.push_back({seq, finish + config_.propagation, std::move(p)});
  sim_.schedule_at(finish + config_.propagation,
                   [this, dirp = &dir, seq] { deliver_event(*dirp, seq); });
}

} // namespace switchml::net
