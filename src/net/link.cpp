#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace switchml::net {

namespace {

const char* trace_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::Tx: return "enqueue";
    case TraceEventKind::DropQueue: return "drop_queue";
    case TraceEventKind::DropLoss: return "drop_loss";
    case TraceEventKind::Corrupt: return "corrupt";
    case TraceEventKind::Deliver: return "deliver";
  }
  return "?";
}

} // namespace

Link::Link(sim::Simulation& simulation, const LinkConfig& config, Node& end_a, int port_a,
           Node& end_b, int port_b, std::uint64_t seed)
    : sim_(simulation),
      config_(config),
      end_a_(&end_a),
      end_b_(&end_b),
      a_to_b_{&end_b, port_b, 0, 0, {}, {},
              sim::Rng::stream(seed, end_a.name() + "->" + end_b.name()), {}},
      b_to_a_{&end_a, port_a, 0, 0, {}, {},
              sim::Rng::stream(seed, end_b.name() + "->" + end_a.name()), {}} {
  if (config.rate <= 0) throw std::invalid_argument("Link rate must be positive");

  if (auto* reg = MetricsRegistry::current()) {
    auto add_direction = [reg, this](const std::string& prefix, Direction& dir) {
      const Counters& c = dir.counters;
      reg->add_counter(prefix + "tx_packets", [&c] { return c.tx_packets; });
      reg->add_counter(prefix + "tx_bytes", [&c] { return c.tx_bytes; });
      reg->add_counter(prefix + "delivered_packets", [&c] { return c.delivered_packets; });
      reg->add_counter(prefix + "dropped_queue", [&c] { return c.dropped_queue; });
      reg->add_counter(prefix + "dropped_loss", [&c] { return c.dropped_loss; });
      // Occupancy is tracked lazily (drained on send), so recompute from the
      // in-flight ledger instead of trusting backlog_bytes.
      reg->add_gauge(prefix + "queue_bytes", [this, &dir] {
        const Time now = sim_.now();
        std::int64_t bytes = 0;
        for (const auto& [finish, b] : dir.in_flight)
          if (finish > now) bytes += b;
        return bytes;
      });
      reg->add_histogram(prefix + "queue_wait_ns", &dir.queue_wait_ns);
    };
    add_direction("link." + end_a.name() + "->" + end_b.name() + ".", a_to_b_);
    add_direction("link." + end_b.name() + "->" + end_a.name() + ".", b_to_a_);
  }
}

Link::Direction& Link::direction_from(const Node& sender) {
  if (&sender == end_a_) return a_to_b_;
  if (&sender == end_b_) return b_to_a_;
  throw std::invalid_argument("Link::send_from: sender is not an endpoint of this link");
}

const Link::Counters& Link::counters_from(const Node& sender) const {
  if (&sender == end_a_) return a_to_b_.counters;
  if (&sender == end_b_) return b_to_a_.counters;
  throw std::invalid_argument("Link::counters_from: not an endpoint");
}

Node& Link::peer_of(const Node& n) {
  if (&n == end_a_) return *end_b_;
  if (&n == end_b_) return *end_a_;
  throw std::invalid_argument("Link::peer_of: not an endpoint");
}

void Link::send_from(const Node& sender, Packet&& p, Time earliest_start) {
  transmit(sender, direction_from(sender), std::move(p), earliest_start);
}

void Link::trace(TraceEventKind kind, const Node& from, const Node& to, const Packet& p) {
  // Fully qualified: `trace` unqualified resolves to this member function.
  switchml::trace::emit(switchml::trace::kCatLink, sim_.now(), from.id(), trace_name(kind),
                        {"to", to.id()}, {"slot", p.idx}, {"bytes", p.wire_bytes()});
  if (tracer_ == nullptr) return;
  TraceEvent e;
  e.at = sim_.now();
  e.kind = kind;
  e.from = from.id();
  e.to = to.id();
  e.pkt = p.kind;
  e.wid = p.wid;
  e.ver = p.ver;
  e.idx = p.idx;
  e.off = p.off;
  e.wire_bytes = p.wire_bytes();
  tracer_->record(e);
}

void Link::corrupt(Packet& p) {
  // Flip one payload bit (or a header bit when there is no payload).
  if (!p.values.empty())
    p.values[p.values.size() / 2] ^= 0x10;
  else
    p.off ^= 0x1;
}

void Link::transmit(const Node& sender, Direction& dir, Packet&& p, Time earliest_start) {
  const Time now = sim_.now();
  // Drain completed serializations from the lazy backlog ledger.
  while (!dir.in_flight.empty() && dir.in_flight.front().first <= now) {
    dir.backlog_bytes -= dir.in_flight.front().second;
    dir.in_flight.pop_front();
  }

  const std::int64_t wire = p.wire_bytes();
  Node& peer = *dir.to;
  if (dir.backlog_bytes + wire > config_.queue_limit_bytes) {
    ++dir.counters.dropped_queue;
    trace(TraceEventKind::DropQueue, sender, peer, p);
    return;
  }
  trace(TraceEventKind::Tx, sender, peer, p);

  ++dir.counters.tx_packets;
  dir.counters.tx_bytes += static_cast<std::uint64_t>(wire);

  const Time start = std::max({now, earliest_start, dir.busy_until});
  dir.queue_wait_ns.record(start - std::max(now, earliest_start));
  const Time finish = start + serialization_time(wire, config_.rate);
  dir.busy_until = finish;
  dir.backlog_bytes += wire;
  dir.in_flight.emplace_back(finish, wire);

  if (dir.rng.chance(config_.loss_prob) || (drop_filter_ && drop_filter_(sender, p))) {
    ++dir.counters.dropped_loss;
    trace(TraceEventKind::DropLoss, sender, peer, p);
    return; // the bits left the port but never arrive
  }

  if (dir.rng.chance(corrupt_prob_) || (corrupt_filter_ && corrupt_filter_(sender, p))) {
    corrupt(p);
    trace(TraceEventKind::Corrupt, sender, peer, p);
  }

  Node* to = dir.to;
  const int to_port = dir.to_port;
  Counters* counters = &dir.counters;
  const Node* from = &sender;
  Link* self = this;
  sim_.schedule_at(finish + config_.propagation,
                   [self, from, to, to_port, counters, pkt = std::move(p)]() mutable {
                     ++counters->delivered_packets;
                     self->trace(TraceEventKind::Deliver, *from, *to, pkt);
                     to->receive(std::move(pkt), to_port);
                   });
}

} // namespace switchml::net
