// Allocation-free callable for simulator events.
//
// EventFn is the closure type every scheduling layer hands to the event
// engine: a small-buffer-optimized, move-only void() callable with NO heap
// fallback. std::function — the previous event closure — silently
// heap-allocates any capture larger than two pointers (~16 bytes on
// libstdc++), which put a malloc/free pair on every packet delivery
// ([this, dirp, seq] is 24 bytes) and every deferred RX demux
// ([this, shared_ptr, flag] is 25). EventFn instead carries 48 bytes of
// inline storage — enough for every scheduling call site in the tree
// (`this` plus a few indices, a shared_ptr<Packet>, a fault spec by value,
// or a whole std::function) — and rejects anything larger AT COMPILE TIME,
// so a capture that would re-introduce the allocation is a build error at
// the offending call site, not a silent perf regression.
//
// Contract:
//   - capacity: sizeof(F) <= 48, alignof(F) <= 16, F nothrow-move-
//     constructible. EventFn::fits<F>() exposes the gate; a callable that
//     fails it selects a deleted constructor overload.
//   - move-only: moving transfers the callable (source becomes empty); the
//     wrapped callable's destructor runs exactly once, on whichever EventFn
//     currently holds it.
//   - lvalue callables are copied in (so a std::function can still be
//     re-scheduled from itself, e.g. a self-re-arming tick); rvalues are
//     moved in, so move-only captures (unique_ptr) work.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace switchml::sim {

class EventFn {
public:
  static constexpr std::size_t kInlineBytes = 48;
  static constexpr std::size_t kInlineAlign = 16;

  // Compile-time gate: true when F can live in the inline buffer.
  template <typename F>
  static constexpr bool fits() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineBytes && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  EventFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&> && fits<F>())
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design — every
  // schedule_* call site passes a bare lambda.
  EventFn(F&& f) : vt_(&kVTableFor<std::decay_t<F>>) {
    ::new (static_cast<void*>(buf_)) std::decay_t<F>(std::forward<F>(f));
  }

  // Oversized / overaligned / throwing-move capture: compile error. Shrink
  // the capture list or park the payload behind a pointer the caller owns —
  // an EventFn must never heap-allocate.
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&> && !fits<F>())
  EventFn(F&&) = delete;

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  // Constructs a callable in place (destroying any current one): the
  // allocation-free equivalent of assignment from a lambda, used by the
  // event slab to build the closure directly in its record instead of
  // relocating a temporary EventFn.
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&> && fits<F>())
  void emplace(F&& f) {
    reset();
    ::new (static_cast<void*>(buf_)) std::decay_t<F>(std::forward<F>(f));
    vt_ = &kVTableFor<std::decay_t<F>>;
  }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  // Invokes the wrapped callable; must be non-empty.
  void operator()() { vt_->invoke(buf_); }

  // Destroys the wrapped callable (if any), leaving the EventFn empty.
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept; // move-construct + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  static void invoke_impl(void* p) {
    (*std::launder(static_cast<F*>(p)))();
  }
  template <typename F>
  static void relocate_impl(void* dst, void* src) noexcept {
    F* s = std::launder(static_cast<F*>(src));
    ::new (dst) F(std::move(*s));
    s->~F();
  }
  template <typename F>
  static void destroy_impl(void* p) noexcept {
    std::launder(static_cast<F*>(p))->~F();
  }

  template <typename F>
  static constexpr VTable kVTableFor{&invoke_impl<F>, &relocate_impl<F>, &destroy_impl<F>};

  void move_from(EventFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(kInlineAlign) unsigned char buf_[kInlineBytes];
};

} // namespace switchml::sim
