#include "sim/simulation.hpp"

#include <stdexcept>

namespace switchml::sim {

void Simulation::check_not_past(Time at) const {
  if (at < now_) throw std::invalid_argument("Simulation::schedule_at: time in the past");
}

bool Simulation::dispatch_one() {
  // Cancelled timers are skipped without advancing the clock: nothing
  // observable happens at their expiry time. Live closures run in place in
  // the slab (no relocation); the clock advances just before the call.
  const bool ran = queue_.pop_and_run([this](Time at) { now_ = at; });
  executed_ += static_cast<std::uint64_t>(ran);
  return ran;
}

std::uint64_t Simulation::run() {
  std::uint64_t n = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (dispatch_one()) ++n;
  }
  return n;
}

std::uint64_t Simulation::run_until(Time deadline) {
  std::uint64_t n = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    if (dispatch_one()) ++n;
  }
  if (now_ < deadline && !stopped_) now_ = deadline;
  return n;
}

} // namespace switchml::sim
