#include "sim/simulation.hpp"

#include <stdexcept>
#include <utility>

namespace switchml::sim {

void Simulation::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("Simulation::schedule_at: time in the past");
  queue_.push(Event{at, next_seq_++, std::move(fn), nullptr});
}

TimerHandle Simulation::schedule_timer(Time delay, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), alive});
  return TimerHandle(std::move(alive));
}

bool Simulation::dispatch_one() {
  // const_cast is safe: we pop immediately after moving the closure out, and
  // the heap ordering does not depend on `fn`.
  Event& top = const_cast<Event&>(queue_.top());
  const bool cancelled = top.alive && !*top.alive;
  if (cancelled) {
    // Cancelled timers are skipped without advancing the clock: nothing
    // observable happens at their expiry time.
    queue_.pop();
    return false;
  }
  now_ = top.at;
  std::function<void()> fn = std::move(top.fn);
  queue_.pop();
  fn();
  ++executed_;
  return true;
}

std::uint64_t Simulation::run() {
  std::uint64_t n = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (dispatch_one()) ++n;
  }
  return n;
}

std::uint64_t Simulation::run_until(Time deadline) {
  std::uint64_t n = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().at <= deadline) {
    if (dispatch_one()) ++n;
  }
  if (now_ < deadline && !stopped_) now_ = deadline;
  return n;
}

} // namespace switchml::sim
