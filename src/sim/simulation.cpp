#include "sim/simulation.hpp"

#include <stdexcept>
#include <utility>

namespace switchml::sim {

void Simulation::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("Simulation::schedule_at: time in the past");
  queue_.push(Event{at, next_seq_++, std::move(fn), kNoTimer, 0});
}

std::uint32_t Simulation::acquire_timer_slot() {
  if (!free_timer_slots_.empty()) {
    const std::uint32_t slot = free_timer_slots_.back();
    free_timer_slots_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(timer_slots_.size());
  timer_slots_.emplace_back();
  return slot;
}

TimerHandle Simulation::schedule_timer(Time delay, std::function<void()> fn) {
  const std::uint32_t slot = acquire_timer_slot();
  TimerSlot& ts = timer_slots_[slot];
  ts.armed = true;
  ts.daemon = false;
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), slot, ts.gen});
  return TimerHandle(this, slot, ts.gen);
}

TimerHandle Simulation::schedule_daemon_timer(Time delay, std::function<void()> fn) {
  const std::uint32_t slot = acquire_timer_slot();
  TimerSlot& ts = timer_slots_[slot];
  ts.armed = true;
  ts.daemon = true;
  ++inert_; // daemons never count as live work
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), slot, ts.gen});
  return TimerHandle(this, slot, ts.gen);
}

bool Simulation::dispatch_one() {
  // const_cast is safe: we pop immediately after moving the closure out, and
  // the heap ordering does not depend on `fn`.
  Event& top = const_cast<Event&>(queue_.top());
  bool cancelled = false;
  if (top.timer_slot != kNoTimer) {
    TimerSlot& ts = timer_slots_[top.timer_slot];
    cancelled = !ts.armed;
    // An inert event (cancelled, or a daemon) is leaving the queue.
    inert_ -= static_cast<std::uint64_t>(cancelled | ts.daemon);
    // The slot's one queued event is popping now: invalidate outstanding
    // handles and recycle the slot.
    ++ts.gen;
    ts.armed = false;
    free_timer_slots_.push_back(top.timer_slot);
  }
  if (cancelled) {
    // Cancelled timers are skipped without advancing the clock: nothing
    // observable happens at their expiry time.
    queue_.pop();
    return false;
  }
  now_ = top.at;
  std::function<void()> fn = std::move(top.fn);
  queue_.pop();
  fn();
  ++executed_;
  return true;
}

std::uint64_t Simulation::run() {
  std::uint64_t n = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (dispatch_one()) ++n;
  }
  return n;
}

std::uint64_t Simulation::run_until(Time deadline) {
  std::uint64_t n = 0;
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().at <= deadline) {
    if (dispatch_one()) ++n;
  }
  if (now_ < deadline && !stopped_) now_ = deadline;
  return n;
}

} // namespace switchml::sim
