#include "sim/event_queue.hpp"

#include <stdexcept>

namespace switchml::sim {

std::uint32_t EventQueue::grow_slab() {
  if (slot_count_ > kSlotMask) throw_slab_full();
  const std::uint32_t slot = slot_count_++;
  if ((slot >> kChunkShift) >= chunks_.size())
    chunks_.push_back(std::make_unique<Record[]>(kChunkSize));
  return slot;
}

void EventQueue::throw_seq_overflow() {
  throw std::overflow_error(
      "EventQueue: sequence counter exhausted (~1.1e12 schedules without the queue ever "
      "draining) — split the run, or widen the seq field");
}

void EventQueue::throw_slab_full() {
  throw std::overflow_error(
      "EventQueue: more than 2^24 events pending at once — the slot index no longer fits "
      "the heap key");
}

void EventQueue::throw_inert_drift() {
  throw std::logic_error(
      "EventQueue: inert event count exceeds queue size — the cancelled/daemon bookkeeping "
      "has drifted (double cancel accounting bug?)");
}

} // namespace switchml::sim
