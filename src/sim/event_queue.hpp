// Slab-backed event queue: the storage and ordering core of the simulator.
//
// Two structures, deliberately separated:
//
//   - a RECYCLING SLAB of event records (the 64-byte EventFn closure plus
//     timer state), allocated in fixed-size chunks so a record's address
//     never changes while it is queued and growth never moves a live
//     closure. Slots are recycled through a free list when their event pops,
//     and a per-slot generation counter invalidates stale cancellation refs.
//
//   - an intrusive 4-ARY MIN-HEAP over 16-byte keys {time, seq|slot}. Sifts
//     move only keys — never closures — and a 64-byte cache line holds four
//     of them, which is exactly one 4-ary node's children: a sift-down
//     compares all four with a single line fetch, and the tree is half the
//     depth of a binary heap. (The old std::priority_queue<Event> sifted
//     whole events, moving a std::function at every level.)
//
// Ordering is (time, seq) with seq a per-queue monotonic counter, i.e. FIFO
// for same-time events — identical to the previous engine, so same-seed runs
// stay bit-identical. The seq is packed into the key's upper 40 bits above a
// 24-bit slot index; since seqs are unique, key comparison IS (time, seq)
// comparison. The counter resets whenever the queue drains, so the 40-bit
// budget (~1.1e12 schedules between drains) is effectively unbounded; both
// limits throw rather than wrap.
//
// Cancellation drops straight to the slab: the closure is destroyed
// immediately (releasing captured resources), the record is marked dead, and
// the heap key stays behind to pop as a no-op — O(1), no heap surgery. The
// `inert` count tracks queued keys that will never do observable work
// (cancelled timers plus daemon events) so live() can answer "would the
// simulation go quiet?" without scanning.
//
// Each queue carries a DOMAIN id and its own seq counter. This is the seam
// for the planned per-rack sharded engine: one EventQueue per shard domain,
// merged on (time, domain, seq), with no caller-visible change — callers
// already go through the Simulation facade only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "sim/event_fn.hpp"

namespace switchml::sim {

using switchml::Time;

class EventQueue {
public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  // Cancellation handle contents: slab slot + generation. Refs outlive their
  // event harmlessly — the generation check makes stale refs inert.
  struct Ref {
    std::uint32_t slot = kNoSlot;
    std::uint32_t gen = 0;
  };

  explicit EventQueue(std::uint32_t domain = 0) : domain_(domain) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules a plain (non-cancellable) event. The callable is constructed
  // directly in its slab record (no intermediate EventFn relocation);
  // passing an EventFn moves it in.
  template <typename F>
  void push(Time at, F&& fn) {
    push_record(at, std::forward<F>(fn), false);
  }

  // Schedules a cancellable event. `daemon` events are inert from birth:
  // they run, but never count as live work.
  template <typename F>
  Ref push_timer(Time at, F&& fn, bool daemon) {
    const std::uint32_t slot = push_record(at, std::forward<F>(fn), daemon);
    return Ref{slot, record(slot).gen};
  }

  // O(1) cancel: destroys the closure now, leaves the key to pop inert.
  // Returns false (no-op) for stale or already-cancelled refs.
  bool cancel(Ref r) {
    if (r.slot == kNoSlot) return false;
    Record& rec = record(r.slot);
    if (rec.gen != r.gen || !rec.armed) return false;
    rec.fn.reset();
    rec.armed = false;
    // A cancelled daemon was already inert; don't count it twice.
    inert_ += static_cast<std::uint64_t>(!rec.daemon);
    return true;
  }

  [[nodiscard]] bool armed(Ref r) const {
    return r.slot != kNoSlot && record(r.slot).gen == r.gen && record(r.slot).armed;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  // Queued events that will still do observable work (excludes cancelled
  // timers and daemons). Throws if the inert bookkeeping ever drifts past
  // the queue size — the alternative is a silent unsigned wrap that would
  // make "has the sim live work?" answer yes forever.
  [[nodiscard]] std::uint64_t live() const {
    if (inert_ > heap_.size()) throw_inert_drift();
    return heap_.size() - inert_;
  }

  // Earliest queued time; queue must be non-empty.
  [[nodiscard]] Time next_time() const { return heap_[0].at; }

  [[nodiscard]] std::uint32_t domain() const { return domain_; }

  // Pops the earliest event, recycles its slot (invalidating refs to it),
  // and — for live events — invokes its closure IN PLACE in the slab after
  // calling `on_live(at)` (the caller's chance to advance its clock first).
  // In-place dispatch skips the closure relocation a move-out would cost;
  // it is safe because chunked slab storage never moves a record, and the
  // slot is withheld from the free list until the closure returns, so
  // callbacks scheduling new events (even re-arming themselves) cannot
  // overwrite the running closure. Returns true iff a live event ran;
  // cancelled events are skipped without invoking `on_live`.
  template <typename OnLive>
  bool pop_and_run(OnLive&& on_live) {
    const Key top = heap_[0];
    sift_pop();
    const auto slot = static_cast<std::uint32_t>(top.order & kSlotMask);
    Record& rec = record(slot);
    const bool live = rec.armed;
    inert_ -= static_cast<std::uint64_t>(!live | rec.daemon);
    ++rec.gen; // the slot's one queued key is gone: refs die, slot recycles
    rec.armed = false;
    rec.daemon = false;
    if (heap_.empty()) next_seq_ = 0; // drained: reclaim the 40-bit seq budget
    if (!live) {
      free_.push_back(slot);
      return false;
    }
    on_live(top.at);
    // Release the slot even if the closure throws (matching the old
    // move-out-then-run behaviour, where the event was gone either way).
    const SlotRelease release{this, slot};
    rec.fn();
    return true;
  }

private:
  // 16-byte heap key. `order` packs (seq << 24) | slot: unique seqs make the
  // comparison equivalent to (at, seq), and the slot rides along for free.
  struct Key {
    Time at;
    std::uint64_t order;
  };
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);
  static constexpr std::size_t kArity = 4;
  // 1024 records per chunk: growth allocates one chunk, never relocates.
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  struct Record {
    EventFn fn;
    std::uint32_t gen = 0;
    bool armed = false;
    bool daemon = false;
  };

  [[nodiscard]] Record& record(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  [[nodiscard]] const Record& record(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  template <typename F>
  std::uint32_t push_record(Time at, F&& fn, bool daemon) {
    const std::uint32_t slot = acquire_slot();
    Record& rec = record(slot);
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      rec.fn = std::forward<F>(fn);
    } else {
      rec.fn.emplace(std::forward<F>(fn)); // built in place: no relocation
    }
    rec.armed = true;
    rec.daemon = daemon;
    inert_ += static_cast<std::uint64_t>(daemon);
    if (next_seq_ >= kMaxSeq) throw_seq_overflow();
    sift_push(Key{at, (next_seq_++ << kSlotBits) | slot});
    return slot;
  }

  // Scope guard: returns a slot to the free list (destroying its closure)
  // when an in-place dispatch finishes, even by exception.
  struct SlotRelease {
    EventQueue* q;
    std::uint32_t slot;
    ~SlotRelease() {
      q->record(slot).fn.reset();
      q->free_.push_back(slot);
    }
  };

  std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    return grow_slab();
  }

  static bool earlier(const Key& a, const Key& b) {
    return a.at != b.at ? a.at < b.at : a.order < b.order;
  }

  void sift_push(Key k) {
    std::size_t i = heap_.size();
    heap_.push_back(k);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!earlier(k, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = k;
  }

  void sift_pop() {
    const Key last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      const std::size_t end = first + kArity < n ? first + kArity : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < end; ++c)
        if (earlier(heap_[c], heap_[best])) best = c;
      if (!earlier(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  // Cold paths live in event_queue.cpp.
  std::uint32_t grow_slab();
  [[noreturn]] static void throw_seq_overflow();
  [[noreturn]] static void throw_slab_full();
  [[noreturn]] static void throw_inert_drift();

  std::vector<std::unique_ptr<Record[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::vector<Key> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t inert_ = 0;
  std::uint32_t slot_count_ = 0;
  std::uint32_t domain_ = 0;
};

} // namespace switchml::sim
