// Deterministic random-number streams for the simulator.
//
// Every stochastic element (each link's loss process, workload generators,
// dataset synthesis) owns its own named stream so that adding or removing one
// consumer never perturbs the draws seen by another — runs are reproducible
// bit-for-bit for a given master seed.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace switchml::sim {

class Rng {
public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Derives an independent stream from a master seed and a label, e.g.
  // Rng::stream(seed, "link-3-loss").
  static Rng stream(std::uint64_t master_seed, std::string_view label) {
    // FNV-1a over the label, mixed with the master seed.
    std::uint64_t h = 14695981039346656037ull;
    for (char c : label) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 1099511628211ull;
    }
    return Rng(h ^ (master_seed * 0x9E3779B97F4A7C15ull));
  }

  // Uniform in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  // Bernoulli draw with probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

private:
  std::mt19937_64 engine_;
};

} // namespace switchml::sim
