// Discrete-event simulation core.
//
// A Simulation owns a virtual clock (integer nanoseconds) and a time-ordered
// event queue. Events scheduled for the same instant run in scheduling order
// (FIFO tie-break), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace switchml::sim {

using switchml::Time;

class Simulation;

// Handle to a scheduled event that may be cancelled (used for protocol
// retransmission timers). Cancellation is O(1): the event stays queued but is
// skipped when popped.
//
// The handle is a (slot, generation) pair into a pool inside the Simulation
// rather than a shared_ptr control block, so scheduling a timer does no heap
// allocation beyond the event queue itself. A slot is recycled only when its
// event pops, and popping bumps the generation, so stale handles (cancel or
// armed() after the timer fired) are detected and inert.
class TimerHandle {
public:
  TimerHandle() = default;

  void cancel();
  [[nodiscard]] bool armed() const;

private:
  friend class Simulation;
  TimerHandle(Simulation* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulation* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulation {
public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= now).
  void schedule_at(Time at, std::function<void()> fn);

  // Schedules `fn` to run `delay` ns from now.
  void schedule_after(Time delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Schedules a cancellable event.
  TimerHandle schedule_timer(Time delay, std::function<void()> fn);

  // Schedules a cancellable *daemon* event: one that does not count as live
  // work (see live_pending_events). Periodic background activities (e.g. the
  // telemetry sampler in common/timeline.hpp) use daemon timers so they can
  // observe "has the simulation any real work left?" and stop re-arming,
  // letting run() drain naturally instead of ticking forever.
  TimerHandle schedule_daemon_timer(Time delay, std::function<void()> fn);

  // Runs until the queue is empty or stop() is called. Returns the number of
  // events executed.
  std::uint64_t run();

  // Runs until simulated time reaches `deadline` (events at exactly
  // `deadline` still run), the queue drains, or stop() is called.
  std::uint64_t run_until(Time deadline);

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  // Queued events that will still do observable work: excludes cancelled
  // timers (queued but inert) and daemon events. Zero means the simulation
  // would go quiet if nothing else is scheduled.
  [[nodiscard]] std::uint64_t live_pending_events() const { return queue_.size() - inert_; }

private:
  friend class TimerHandle;

  static constexpr std::uint32_t kNoTimer = UINT32_MAX;

  struct TimerSlot {
    std::uint32_t gen = 0; // bumped when the slot's event pops => handles stale
    bool armed = false;
    bool daemon = false; // daemon timers count as inert from the start
  };

  struct Event {
    Time at;
    std::uint64_t seq; // FIFO tie-break for same-time events
    std::function<void()> fn;
    std::uint32_t timer_slot = kNoTimer; // kNoTimer => not cancellable
    std::uint32_t timer_gen = 0;

    // std::priority_queue is a max-heap; invert so the earliest event pops first.
    bool operator<(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  bool dispatch_one();
  std::uint32_t acquire_timer_slot();

  [[nodiscard]] bool timer_live(std::uint32_t slot, std::uint32_t gen) const {
    return slot < timer_slots_.size() && timer_slots_[slot].gen == gen;
  }

  std::priority_queue<Event> queue_;
  std::vector<TimerSlot> timer_slots_;
  std::vector<std::uint32_t> free_timer_slots_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  // Queued events that will never do work: cancelled timers plus daemons.
  // Tracked on the rare paths (cancel, daemon scheduling, inert pops) so the
  // hot schedule/dispatch paths stay untouched.
  std::uint64_t inert_ = 0;
  bool stopped_ = false;
};

inline void TimerHandle::cancel() {
  if (!sim_ || !sim_->timer_live(slot_, gen_)) return;
  auto& ts = sim_->timer_slots_[slot_];
  // The queued event stays behind as a no-op and becomes inert — unless it
  // already was (double cancel, or a daemon). Branchless: cancel sits on the
  // retransmission fast path.
  sim_->inert_ += static_cast<std::uint64_t>(ts.armed & !ts.daemon);
  ts.armed = false;
}

inline bool TimerHandle::armed() const {
  return sim_ && sim_->timer_live(slot_, gen_) && sim_->timer_slots_[slot_].armed;
}

} // namespace switchml::sim
