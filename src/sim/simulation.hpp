// Discrete-event simulation core.
//
// A Simulation owns a virtual clock (integer nanoseconds) and a time-ordered
// event queue. Events scheduled for the same instant run in scheduling order
// (FIFO tie-break), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace switchml::sim {

using switchml::Time;

// Handle to a scheduled event that may be cancelled (used for protocol
// retransmission timers). Cancellation is O(1): the event stays queued but is
// skipped when popped.
class TimerHandle {
public:
  TimerHandle() = default;

  void cancel() {
    if (alive_) *alive_ = false;
  }
  [[nodiscard]] bool armed() const { return alive_ && *alive_; }

private:
  friend class Simulation;
  explicit TimerHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulation {
public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= now).
  void schedule_at(Time at, std::function<void()> fn);

  // Schedules `fn` to run `delay` ns from now.
  void schedule_after(Time delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Schedules a cancellable event.
  TimerHandle schedule_timer(Time delay, std::function<void()> fn);

  // Runs until the queue is empty or stop() is called. Returns the number of
  // events executed.
  std::uint64_t run();

  // Runs until simulated time reaches `deadline` (events at exactly
  // `deadline` still run), the queue drains, or stop() is called.
  std::uint64_t run_until(Time deadline);

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

private:
  struct Event {
    Time at;
    std::uint64_t seq; // FIFO tie-break for same-time events
    std::function<void()> fn;
    std::shared_ptr<bool> alive; // null => not cancellable

    // std::priority_queue is a max-heap; invert so the earliest event pops first.
    bool operator<(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  bool dispatch_one();

  std::priority_queue<Event> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

} // namespace switchml::sim
