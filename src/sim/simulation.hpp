// Discrete-event simulation core.
//
// A Simulation owns a virtual clock (integer nanoseconds) and a time-ordered
// event queue. Events scheduled for the same instant run in scheduling order
// (FIFO tie-break), which keeps runs deterministic.
//
// The queue itself is an EventQueue (sim/event_queue.hpp): a recycling slab
// of allocation-free EventFn closures ordered by an intrusive 4-ary min-heap
// over 16-byte keys. Scheduling an event therefore never heap-allocates
// (beyond amortized slab/heap growth), and the Simulation is a thin facade —
// clock, run loop, and the daemon/live-work contract — over the queue seam
// that a future sharded (per-rack) engine will plug into.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/event_fn.hpp"
#include "sim/event_queue.hpp"

namespace switchml::sim {

using switchml::Time;

class Simulation;

// Handle to a scheduled event that may be cancelled (used for protocol
// retransmission timers). Cancellation is O(1): the closure is destroyed
// immediately in the slab and the queued heap key pops later as a no-op.
//
// The handle is a (slot, generation) ref into the EventQueue's slab rather
// than a shared_ptr control block, so scheduling a timer does no heap
// allocation. A slot is recycled only when its event pops, and popping bumps
// the generation, so stale handles (cancel or armed() after the timer fired)
// are detected and inert.
class TimerHandle {
public:
  TimerHandle() = default;

  void cancel() {
    if (queue_ != nullptr) queue_->cancel(ref_);
  }
  [[nodiscard]] bool armed() const { return queue_ != nullptr && queue_->armed(ref_); }

private:
  friend class Simulation;
  TimerHandle(EventQueue* queue, EventQueue::Ref ref) : queue_(queue), ref_(ref) {}

  EventQueue* queue_ = nullptr;
  EventQueue::Ref ref_{};
};

class Simulation {
public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= now). The callable must
  // fit EventFn's inline buffer (48 bytes, compile-time checked): it is
  // constructed straight into the event slab, so scheduling never
  // heap-allocates.
  template <typename F>
  void schedule_at(Time at, F&& fn) {
    check_not_past(at);
    queue_.push(at, std::forward<F>(fn));
  }

  // Schedules `fn` to run `delay` ns from now.
  template <typename F>
  void schedule_after(Time delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  // Schedules a cancellable event.
  template <typename F>
  TimerHandle schedule_timer(Time delay, F&& fn) {
    return TimerHandle(&queue_, queue_.push_timer(now_ + delay, std::forward<F>(fn), false));
  }

  // Schedules a cancellable *daemon* event: one that does not count as live
  // work (see live_pending_events). Periodic background activities (e.g. the
  // telemetry sampler in common/timeline.hpp) use daemon timers so they can
  // observe "has the simulation any real work left?" and stop re-arming,
  // letting run() drain naturally instead of ticking forever.
  template <typename F>
  TimerHandle schedule_daemon_timer(Time delay, F&& fn) {
    return TimerHandle(&queue_, queue_.push_timer(now_ + delay, std::forward<F>(fn), true));
  }

  // Runs until the queue is empty or stop() is called. Returns the number of
  // events executed.
  std::uint64_t run();

  // Runs until simulated time reaches `deadline` (events at exactly
  // `deadline` still run), the queue drains, or stop() is called.
  std::uint64_t run_until(Time deadline);

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  // Queued events that will still do observable work: excludes cancelled
  // timers (queued but inert) and daemon events. Zero means the simulation
  // would go quiet if nothing else is scheduled. Throws std::logic_error if
  // the inert bookkeeping ever drifts past the queue size (instead of the
  // silent unsigned wrap a subtraction would produce).
  [[nodiscard]] std::uint64_t live_pending_events() const { return queue_.live(); }

private:
  bool dispatch_one();
  void check_not_past(Time at) const;

  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

} // namespace switchml::sim
