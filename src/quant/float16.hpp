// IEEE 754 binary16 ("half precision") support (§3.7).
//
// SwitchML's second numerical representation sends 16-bit floats on the wire;
// the switch converts them to 32-bit fixed point with lookup tables before
// aggregating, and converts back when emitting results. We implement:
//   * software float32 <-> float16 conversion (round-to-nearest-even, with
//     proper subnormal/inf/NaN handling), and
//   * Fp16Table, the lookup-table conversion the Tofino performs in the
//     dataplane (a 64Ki-entry table is exactly what the chip's SRAM tables
//     express).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace switchml::quant {

using half = std::uint16_t; // raw binary16 bit pattern

half float_to_half(float f);
float half_to_float(half h);

void float_to_half(std::span<const float> in, std::span<half> out);
void half_to_float(std::span<const half> in, std::span<float> out);

// Dataplane lookup tables: binary16 -> fixed-point int32 with `frac_bits`
// fractional bits, and the (approximate) inverse for result generation.
// Values whose magnitude exceeds the representable fixed-point range saturate
// (a table can encode any saturation policy; Tofino tables are arbitrary
// function lookups).
class Fp16Table {
public:
  explicit Fp16Table(int frac_bits);

  [[nodiscard]] int frac_bits() const { return frac_bits_; }

  // Switch ingress: fp16 wire value -> int32 fixed point.
  [[nodiscard]] std::int32_t to_fixed(half h) const { return to_fixed_[h]; }

  // Switch egress: aggregated int32 fixed point -> fp16 wire value.
  [[nodiscard]] half to_half(std::int32_t fixed) const;

  [[nodiscard]] std::size_t table_bytes() const { return to_fixed_.size() * sizeof(std::int32_t); }

private:
  int frac_bits_;
  std::vector<std::int32_t> to_fixed_; // 65536 entries
};

} // namespace switchml::quant
