#include "quant/float16.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace switchml::quant {

namespace {
std::uint32_t f32_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}
float bits_f32(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}
} // namespace

half float_to_half(float f) {
  const std::uint32_t x = f32_bits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mant = x & 0x7FFFFFu;

  if (((x >> 23) & 0xFF) == 0xFF) { // inf / NaN
    return static_cast<half>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }
  if (exp >= 0x1F) { // overflow -> inf
    return static_cast<half>(sign | 0x7C00u);
  }
  if (exp <= 0) { // subnormal half or zero
    if (exp < -10) return static_cast<half>(sign); // underflow to signed zero
    mant |= 0x800000u;                             // implicit leading 1
    const int shift = 14 - exp;                    // 14..24
    const std::uint32_t sub = mant >> shift;
    // round to nearest even
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t rounded = sub;
    if (rem > halfway || (rem == halfway && (sub & 1u))) ++rounded;
    return static_cast<half>(sign | rounded);
  }
  // normal: round mantissa from 23 to 10 bits, nearest even
  std::uint32_t out = sign | (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out; // may carry into exponent: correct
  return static_cast<half>(out);
}

float half_to_float(half h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t mant = h & 0x3FFu;

  if (exp == 0) {
    if (mant == 0) return bits_f32(sign); // signed zero
    // subnormal: normalize
    int e = -1;
    std::uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x400u) == 0);
    const std::uint32_t fexp = 127 - 15 - e;
    return bits_f32(sign | (fexp << 23) | ((m & 0x3FFu) << 13));
  }
  if (exp == 0x1F) { // inf / NaN
    return bits_f32(sign | 0x7F800000u | (mant << 13));
  }
  return bits_f32(sign | ((exp - 15 + 127) << 23) | (mant << 13));
}

void float_to_half(std::span<const float> in, std::span<half> out) {
  if (in.size() != out.size()) throw std::invalid_argument("float_to_half: size mismatch");
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = float_to_half(in[i]);
}

void half_to_float(std::span<const half> in, std::span<float> out) {
  if (in.size() != out.size()) throw std::invalid_argument("half_to_float: size mismatch");
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = half_to_float(in[i]);
}

Fp16Table::Fp16Table(int frac_bits) : frac_bits_(frac_bits), to_fixed_(65536) {
  if (frac_bits < 0 || frac_bits > 30) throw std::invalid_argument("Fp16Table: frac_bits out of range");
  const double scale = static_cast<double>(1u << frac_bits);
  for (std::uint32_t h = 0; h < 65536; ++h) {
    const float v = half_to_float(static_cast<half>(h));
    double scaled = static_cast<double>(v) * scale;
    if (std::isnan(scaled)) scaled = 0.0;
    if (scaled > 2147483647.0) scaled = 2147483647.0;   // saturate
    if (scaled < -2147483648.0) scaled = -2147483648.0; // saturate
    to_fixed_[h] = static_cast<std::int32_t>(std::nearbyint(scaled));
  }
}

half Fp16Table::to_half(std::int32_t fixed) const {
  const double v = static_cast<double>(fixed) / static_cast<double>(1u << frac_bits_);
  return float_to_half(static_cast<float>(v));
}

} // namespace switchml::quant
