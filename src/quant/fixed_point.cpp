#include "quant/fixed_point.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace switchml::quant {

std::int32_t round_to_i32(double scaled) {
  if (!(scaled >= -2147483648.0 && scaled <= 2147483647.0) || std::isnan(scaled))
    return kIntIndefinite;
  return static_cast<std::int32_t>(std::nearbyint(scaled));
}

void quantize(std::span<const float> x, double f, std::span<std::int32_t> q) {
  if (q.size() != x.size()) throw std::invalid_argument("quantize: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i)
    q[i] = round_to_i32(f * static_cast<double>(x[i]));
}

std::vector<std::int32_t> quantize(std::span<const float> x, double f) {
  std::vector<std::int32_t> q(x.size());
  quantize(x, f, q);
  return q;
}

void dequantize(std::span<const std::int32_t> q, double f, std::span<float> x) {
  if (q.size() != x.size()) throw std::invalid_argument("dequantize: size mismatch");
  const double inv = 1.0 / f;
  for (std::size_t i = 0; i < q.size(); ++i)
    x[i] = static_cast<float>(static_cast<double>(q[i]) * inv);
}

std::vector<float> dequantize(std::span<const std::int32_t> q, double f) {
  std::vector<float> x(q.size());
  dequantize(q, f, x);
  return x;
}

void htonl_inplace(std::span<std::int32_t> v) {
  for (auto& e : v)
    e = static_cast<std::int32_t>(__builtin_bswap32(static_cast<std::uint32_t>(e)));
}

void ntohl_inplace(std::span<std::int32_t> v) { htonl_inplace(v); } // involution

double max_safe_scaling_factor(int n_workers, double max_abs_update) {
  if (n_workers < 1) throw std::invalid_argument("max_safe_scaling_factor: n < 1");
  if (max_abs_update <= 0) throw std::invalid_argument("max_safe_scaling_factor: B <= 0");
  const double n = n_workers;
  return (2147483648.0 - n) / (n * max_abs_update);
}

double aggregation_error_bound(int n_workers, double f) {
  if (f <= 0) throw std::invalid_argument("aggregation_error_bound: f <= 0");
  return static_cast<double>(n_workers) / f;
}

double choose_scaling_factor(std::span<const float> gradient, int n_workers, double headroom) {
  float max_abs = 0.0f;
  for (float g : gradient) max_abs = std::max(max_abs, std::abs(g));
  if (max_abs == 0.0f) max_abs = 1.0f; // all-zero gradient: any safe f works
  return max_safe_scaling_factor(n_workers, static_cast<double>(max_abs) * headroom);
}

void quantize_i8_stochastic(std::span<const float> x, double f, std::span<std::int32_t> q,
                            sim::Rng& rng) {
  if (q.size() != x.size()) throw std::invalid_argument("quantize_i8_stochastic: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    double scaled = f * static_cast<double>(x[i]);
    scaled = std::clamp(scaled, -127.0, 127.0);
    const double floor_v = std::floor(scaled);
    const double frac = scaled - floor_v;
    // Unbiased: round up with probability equal to the fractional part.
    const double rounded = floor_v + (rng.uniform() < frac ? 1.0 : 0.0);
    q[i] = static_cast<std::int32_t>(std::clamp(rounded, -127.0, 127.0));
  }
}

double max_safe_scaling_factor_i8(double max_abs_update) {
  if (max_abs_update <= 0)
    throw std::invalid_argument("max_safe_scaling_factor_i8: B <= 0");
  return 126.0 / max_abs_update;
}

void accumulate_wrapping(std::span<std::int32_t> acc, std::span<const std::int32_t> update) {
  if (acc.size() != update.size()) throw std::invalid_argument("accumulate_wrapping: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i)
    acc[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(acc[i]) +
                                       static_cast<std::uint32_t>(update[i]));
}

} // namespace switchml::quant
