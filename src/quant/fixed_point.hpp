// Fixed-point gradient quantization (§3.7, Appendix C).
//
// Workers multiply each model update by a scaling factor f, round to int32,
// and the switch aggregates integers; the aggregate is divided by f at the
// workers. Theorem 1 bounds the aggregation error by n/f; Theorem 2 shows
// choosing 0 < f <= (2^31 - n) / (n B) (with B a bound on |update| entries)
// guarantees no overflow on workers or switch.
//
// Conversion semantics mirror x86: CVTPS2DQ produces INT32_MIN (the "integer
// indefinite" value) for out-of-range inputs, which is what makes training
// diverge when f is chosen too large (Fig 10).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/rng.hpp"

namespace switchml::quant {

constexpr std::int32_t kIntIndefinite = INT32_MIN;

// Rounds one scaled value to int32 with x86 CVTPS2DQ semantics
// (round-to-nearest-even; out-of-range -> INT32_MIN).
std::int32_t round_to_i32(double scaled);

// q[i] = rho(f * x[i]).
void quantize(std::span<const float> x, double f, std::span<std::int32_t> q);
std::vector<std::int32_t> quantize(std::span<const float> x, double f);

// x[i] = q[i] / f.
void dequantize(std::span<const std::int32_t> q, double f, std::span<float> x);
std::vector<float> dequantize(std::span<const std::int32_t> q, double f);

// Host-side byte-order conversion on the wire path (§5.5:
// float32-to-int32 -> htonl -> ntohl -> int32-to-float32). These are
// written as simple loops that the compiler auto-vectorizes (the paper uses
// SSE/AVX; see bench/micro_quant for the measured conversion rates).
void htonl_inplace(std::span<std::int32_t> v);
void ntohl_inplace(std::span<std::int32_t> v);

// Theorem 2: the largest f for which no overflow can occur given n workers
// and per-entry bound B on |update| entries.
double max_safe_scaling_factor(int n_workers, double max_abs_update);

// Theorem 1: worst-case |exact_sum - quantized_sum/f| per element.
double aggregation_error_bound(int n_workers, double f);

// Profiles a gradient (as the paper does over the first iterations) and
// picks f so the maximum value stays representable with `headroom` spare
// factor.
double choose_scaling_factor(std::span<const float> gradient, int n_workers,
                             double headroom = 2.0);

// Integer aggregation with two's-complement wraparound — the switch ALU
// semantics, usable host-side by the PS baselines and by tests.
void accumulate_wrapping(std::span<std::int32_t> acc, std::span<const std::int32_t> update);

// --- int8 extension ---------------------------------------------------------
// Appendix C surveys aggressive gradient compressors (QSGD, TernGrad, ...)
// that trade variance for bandwidth via RANDOMIZED rounding. This extension
// implements that class for SwitchML's wire: values are scaled by f, rounded
// STOCHASTICALLY (so the quantizer is unbiased: E[rho(x)] = x) and clamped
// to int8 range; the switch still aggregates in 32-bit registers, so sums of
// up to 2^24 workers cannot overflow. Packets carry elem_bytes = 1, cutting
// wire bytes 4x versus int32.
void quantize_i8_stochastic(std::span<const float> x, double f, std::span<std::int32_t> q,
                            sim::Rng& rng);

// Largest f keeping |f x| within int8 for |x| <= max_abs (with the stochastic
// round-up absorbed by the 127 -> 126.5 margin).
double max_safe_scaling_factor_i8(double max_abs_update);

} // namespace switchml::quant
