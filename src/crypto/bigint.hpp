// Arbitrary-precision unsigned integers, built from scratch for the
// Appendix D encrypted-aggregation substrate (Paillier needs modular
// exponentiation over 1-2 kbit moduli). Little-endian base-2^64 limbs,
// schoolbook multiplication, Knuth Algorithm D division, square-and-multiply
// modular exponentiation, extended Euclid inverses, and Miller-Rabin
// primality testing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace switchml::crypto {

class BigInt;

// Quotient and remainder of a division.
struct BigIntDivMod;

class BigInt {
public:
  BigInt() = default;
  BigInt(std::uint64_t v); // NOLINT(google-explicit-constructor) numeric literal ergonomics

  static BigInt from_hex(const std::string& hex);
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  [[nodiscard]] std::size_t bit_length() const;
  [[nodiscard]] bool bit(std::size_t i) const;
  // Value of the low 64 bits (for small results).
  [[nodiscard]] std::uint64_t low64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  [[nodiscard]] int compare(const BigInt& other) const; // -1 / 0 / +1

  friend bool operator==(const BigInt& a, const BigInt& b) { return a.compare(b) == 0; }
  friend bool operator!=(const BigInt& a, const BigInt& b) { return a.compare(b) != 0; }
  friend bool operator<(const BigInt& a, const BigInt& b) { return a.compare(b) < 0; }
  friend bool operator<=(const BigInt& a, const BigInt& b) { return a.compare(b) <= 0; }
  friend bool operator>(const BigInt& a, const BigInt& b) { return a.compare(b) > 0; }
  friend bool operator>=(const BigInt& a, const BigInt& b) { return a.compare(b) >= 0; }

  [[nodiscard]] BigInt add(const BigInt& other) const;
  // Requires *this >= other.
  [[nodiscard]] BigInt sub(const BigInt& other) const;
  [[nodiscard]] BigInt mul(const BigInt& other) const;
  // Quotient and remainder; throws on division by zero.
  [[nodiscard]] BigIntDivMod divmod(const BigInt& divisor) const;
  [[nodiscard]] BigInt mod(const BigInt& m) const;

  [[nodiscard]] BigInt shifted_left(std::size_t bits) const;
  [[nodiscard]] BigInt shifted_right(std::size_t bits) const;

  // (this * other) mod m and this^e mod m.
  [[nodiscard]] BigInt mulmod(const BigInt& other, const BigInt& m) const;
  [[nodiscard]] BigInt powmod(const BigInt& exponent, const BigInt& m) const;

  static BigInt gcd(BigInt a, BigInt b);
  static BigInt lcm(const BigInt& a, const BigInt& b);
  // Modular inverse via extended Euclid; throws if gcd(a, m) != 1.
  static BigInt modinv(const BigInt& a, const BigInt& m);

  // Uniform random integer with exactly `bits` bits (msb set).
  static BigInt random_bits(std::size_t bits, sim::Rng& rng);
  // Uniform random integer in [1, bound).
  static BigInt random_below(const BigInt& bound, sim::Rng& rng);

  // Miller-Rabin with `rounds` random bases.
  [[nodiscard]] bool is_probable_prime(sim::Rng& rng, int rounds = 40) const;
  // Random prime with exactly `bits` bits.
  static BigInt random_prime(std::size_t bits, sim::Rng& rng);

private:
  void trim();
  [[nodiscard]] std::size_t n_limbs() const { return limbs_.size(); }

  std::vector<std::uint64_t> limbs_; // little-endian; empty == 0
};

struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

inline BigInt BigInt::mod(const BigInt& m) const { return divmod(m).remainder; }

} // namespace switchml::crypto
