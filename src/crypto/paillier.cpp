#include "crypto/paillier.hpp"

#include <stdexcept>

namespace switchml::crypto {

BigInt PaillierPublicKey::encrypt(const BigInt& m, sim::Rng& rng) const {
  if (m >= n) throw std::invalid_argument("Paillier: plaintext out of range");
  // r uniform in [1, n) with gcd(r, n) = 1 (overwhelmingly likely; retry).
  BigInt r = BigInt::random_below(n, rng);
  while (BigInt::gcd(r, n) != BigInt(1)) r = BigInt::random_below(n, rng);
  // g = n + 1 shortcut: g^m mod n^2 = 1 + m n (mod n^2).
  const BigInt g_m = BigInt(1).add(m.mul(n)).mod(n_squared);
  const BigInt r_n = r.powmod(n, n_squared);
  return g_m.mulmod(r_n, n_squared);
}

BigInt PaillierPublicKey::encrypt_signed(std::int64_t m, sim::Rng& rng) const {
  if (m >= 0) return encrypt(BigInt(static_cast<std::uint64_t>(m)), rng);
  return encrypt(n.sub(BigInt(static_cast<std::uint64_t>(-m))), rng);
}

BigInt PaillierPublicKey::add_ciphertexts(const BigInt& c1, const BigInt& c2) const {
  return c1.mulmod(c2, n_squared);
}

BigInt PaillierPublicKey::scale_ciphertext(const BigInt& c, const BigInt& k) const {
  return c.powmod(k, n_squared);
}

BigInt PaillierPrivateKey::decrypt(const BigInt& c, const PaillierPublicKey& pub) const {
  const BigInt u = c.powmod(lambda, pub.n_squared);
  // L(u) = (u - 1) / n
  const BigInt l = u.sub(BigInt(1)).divmod(pub.n).quotient;
  return l.mulmod(mu, pub.n);
}

std::int64_t PaillierPrivateKey::decrypt_signed(const BigInt& c,
                                                const PaillierPublicKey& pub) const {
  const BigInt m = decrypt(c, pub);
  const BigInt half = pub.n.shifted_right(1);
  if (m > half) {
    const BigInt neg = pub.n.sub(m);
    return -static_cast<std::int64_t>(neg.low64());
  }
  return static_cast<std::int64_t>(m.low64());
}

PaillierKeyPair paillier_keygen(std::size_t modulus_bits, sim::Rng& rng) {
  if (modulus_bits < 16) throw std::invalid_argument("paillier_keygen: modulus too small");
  const std::size_t prime_bits = modulus_bits / 2;
  BigInt p = BigInt::random_prime(prime_bits, rng);
  BigInt q = BigInt::random_prime(prime_bits, rng);
  while (q == p) q = BigInt::random_prime(prime_bits, rng);

  PaillierKeyPair kp;
  kp.pub.n = p.mul(q);
  kp.pub.n_squared = kp.pub.n.mul(kp.pub.n);
  kp.priv.lambda = BigInt::lcm(p.sub(BigInt(1)), q.sub(BigInt(1)));
  // With g = n + 1: mu = lambda^-1 mod n.
  kp.priv.mu = BigInt::modinv(kp.priv.lambda, kp.pub.n);
  return kp;
}

void EncryptedAggregator::accumulate(std::vector<BigInt>& acc,
                                     const std::vector<BigInt>& update) const {
  if (acc.size() != update.size())
    throw std::invalid_argument("EncryptedAggregator: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i)
    acc[i] = pub_.add_ciphertexts(acc[i], update[i]);
}

std::vector<BigInt> EncryptedAggregator::zero(std::size_t d) const {
  // E(0) with r = 1 is exactly 1; multiplying by it is the identity.
  return std::vector<BigInt>(d, BigInt(1));
}

} // namespace switchml::crypto
