#include "crypto/bigint.hpp"

#include <algorithm>
#include <stdexcept>

namespace switchml::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_hex(const std::string& hex) {
  BigInt r;
  std::size_t start = 0;
  if (hex.rfind("0x", 0) == 0) start = 2;
  if (start >= hex.size()) throw std::invalid_argument("BigInt::from_hex: empty");
  // Parse from the least-significant end, 16 hex digits per limb.
  const std::string body = hex.substr(start);
  for (std::size_t end = body.size(); end > 0;) {
    const std::size_t chunk = std::min<std::size_t>(16, end);
    const std::string part = body.substr(end - chunk, chunk);
    r.limbs_.push_back(std::stoull(part, nullptr, 16));
    end -= chunk;
  }
  r.trim();
  return r;
}

std::string BigInt::to_hex() const {
  if (limbs_.empty()) return "0";
  std::string out;
  char buf[17];
  std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(limbs_.back()));
  out += buf;
  for (std::size_t i = limbs_.size() - 1; i-- > 0;) {
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(limbs_[i]));
    out += buf;
  }
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  return (limbs_.size() - 1) * 64 + (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigInt::compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size())
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::add(const BigInt& other) const {
  BigInt r;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  r.limbs_.resize(n, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 a = i < limbs_.size() ? limbs_[i] : 0;
    const u64 b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const u128 sum = static_cast<u128>(a) + b + carry;
    r.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  if (carry) r.limbs_.push_back(carry);
  return r;
}

BigInt BigInt::sub(const BigInt& other) const {
  if (*this < other) throw std::invalid_argument("BigInt::sub: would underflow");
  BigInt r;
  r.limbs_.resize(limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const u128 bb = static_cast<u128>(b) + borrow;
    if (static_cast<u128>(limbs_[i]) >= bb) {
      r.limbs_[i] = static_cast<u64>(static_cast<u128>(limbs_[i]) - bb);
      borrow = 0;
    } else {
      r.limbs_[i] = static_cast<u64>((static_cast<u128>(1) << 64) + limbs_[i] - bb);
      borrow = 1;
    }
  }
  r.trim();
  return r;
}

BigInt BigInt::mul(const BigInt& other) const {
  if (is_zero() || other.is_zero()) return BigInt();
  BigInt r;
  r.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    const u64 a = limbs_[i];
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(a) * other.limbs_[j] + r.limbs_[i + j] + carry;
      r.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    r.limbs_[i + other.limbs_.size()] += carry;
  }
  r.trim();
  return r;
}

BigInt BigInt::shifted_left(std::size_t bits) const {
  if (is_zero()) return BigInt();
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigInt r;
  r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift) : limbs_[i];
    if (bit_shift) r.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  r.trim();
  return r;
}

BigInt BigInt::shifted_right(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return BigInt();
  const std::size_t bit_shift = bits % 64;
  BigInt r;
  r.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
    r.limbs_[i] = bit_shift ? (limbs_[i + limb_shift] >> bit_shift) : limbs_[i + limb_shift];
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      r.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  r.trim();
  return r;
}

BigIntDivMod BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::invalid_argument("BigInt: division by zero");
  if (*this < divisor) return {BigInt(), *this};
  if (divisor.limbs_.size() == 1) {
    // Fast single-limb path.
    const u64 d = divisor.limbs_[0];
    BigInt q;
    q.limbs_.assign(limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const u128 cur = (rem << 64) | limbs_[i];
      q.limbs_[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigInt(static_cast<u64>(rem))};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set, which guarantees the quotient-digit estimate is off by at most 2.
  const std::size_t shift =
      static_cast<std::size_t>(__builtin_clzll(divisor.limbs_.back()));
  const BigInt u = shifted_left(shift);
  const BigInt v = divisor.shifted_left(shift);
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<u64> un(u.limbs_);
  un.push_back(0); // u has m+n+1 limbs during the algorithm
  const std::vector<u64>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat from the top two limbs.
    const u128 top = (static_cast<u128>(un[j + n]) << 64) | un[j + n - 1];
    u128 q_hat = top / vn[n - 1];
    u128 r_hat = top % vn[n - 1];
    const u128 kBase = static_cast<u128>(1) << 64;
    while (q_hat >= kBase ||
           q_hat * vn[n - 2] > ((r_hat << 64) | un[j + n - 2])) {
      --q_hat;
      r_hat += vn[n - 1];
      if (r_hat >= kBase) break;
    }

    // Multiply-and-subtract: un[j..j+n] -= q_hat * vn.
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 prod = q_hat * vn[i] + carry;
      carry = prod >> 64;
      const u64 lo = static_cast<u64>(prod);
      const u128 diff = static_cast<u128>(un[i + j]) - lo - borrow;
      un[i + j] = static_cast<u64>(diff);
      borrow = (diff >> 64) & 1; // 1 if wrapped
    }
    const u128 diff = static_cast<u128>(un[j + n]) - carry - borrow;
    un[j + n] = static_cast<u64>(diff);
    const bool negative = (diff >> 64) & 1;

    if (negative) {
      // q_hat was one too large: add back.
      --q_hat;
      u128 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 sum = static_cast<u128>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<u64>(sum);
        c = sum >> 64;
      }
      un[j + n] = static_cast<u64>(un[j + n] + c);
    }
    q.limbs_[j] = static_cast<u64>(q_hat);
  }
  q.trim();

  BigInt rem;
  rem.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  rem.trim();
  return {q, rem.shifted_right(shift)};
}

BigInt BigInt::mulmod(const BigInt& other, const BigInt& m) const {
  return mul(other).mod(m);
}

BigInt BigInt::powmod(const BigInt& exponent, const BigInt& m) const {
  if (m.is_zero()) throw std::invalid_argument("BigInt::powmod: zero modulus");
  if (m == BigInt(1)) return BigInt();
  BigInt result(1);
  BigInt base = mod(m);
  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exponent.bit(i)) result = result.mulmod(base, m);
    base = base.mulmod(base, m);
  }
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a.mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  return a.divmod(gcd(a, b)).quotient.mul(b);
}

BigInt BigInt::modinv(const BigInt& a, const BigInt& m) {
  // Iterative extended Euclid with sign tracking: t may go negative.
  BigInt r0 = m, r1 = a.mod(m);
  BigInt t0, t1(1);
  bool neg0 = false, neg1 = false;
  while (!r1.is_zero()) {
    const auto dm = r0.divmod(r1);
    // t2 = t0 - q * t1 (signed)
    const BigInt qt1 = dm.quotient.mul(t1);
    BigInt t2;
    bool neg2;
    if (neg0 == neg1) {
      // same sign: t0 - qt1 flips when qt1 > t0
      if (t0 >= qt1) {
        t2 = t0.sub(qt1);
        neg2 = neg0;
      } else {
        t2 = qt1.sub(t0);
        neg2 = !neg0;
      }
    } else {
      t2 = t0.add(qt1);
      neg2 = neg0;
    }
    r0 = std::move(r1);
    r1 = dm.remainder;
    t0 = std::move(t1);
    neg0 = neg1;
    t1 = std::move(t2);
    neg1 = neg2;
  }
  if (r0 != BigInt(1)) throw std::invalid_argument("BigInt::modinv: not invertible");
  if (neg0) return m.sub(t0.mod(m));
  return t0.mod(m);
}

BigInt BigInt::random_bits(std::size_t bits, sim::Rng& rng) {
  if (bits == 0) return BigInt();
  BigInt r;
  r.limbs_.resize((bits + 63) / 64);
  for (auto& l : r.limbs_) l = rng.engine()();
  const std::size_t top_bits = bits % 64 == 0 ? 64 : bits % 64;
  // Mask to exactly `bits` bits and force the msb so the length is exact.
  if (top_bits < 64) r.limbs_.back() &= (1ull << top_bits) - 1;
  r.limbs_.back() |= 1ull << (top_bits - 1);
  return r;
}

BigInt BigInt::random_below(const BigInt& bound, sim::Rng& rng) {
  if (bound.is_zero() || bound == BigInt(1))
    throw std::invalid_argument("BigInt::random_below: bound too small");
  const std::size_t bits = bound.bit_length();
  for (;;) {
    BigInt candidate;
    candidate.limbs_.resize((bits + 63) / 64);
    for (auto& l : candidate.limbs_) l = rng.engine()();
    const std::size_t top_bits = bits % 64 == 0 ? 64 : bits % 64;
    if (top_bits < 64) candidate.limbs_.back() &= (1ull << top_bits) - 1;
    candidate.trim();
    if (!candidate.is_zero() && candidate < bound) return candidate;
  }
}

bool BigInt::is_probable_prime(sim::Rng& rng, int rounds) const {
  if (limbs_.empty()) return false;
  if (limbs_.size() == 1) {
    const u64 v = limbs_[0];
    if (v < 2) return false;
    for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull}) {
      if (v == p) return true;
      if (v % p == 0) return false;
    }
  } else {
    if (!is_odd()) return false;
    for (u64 p : {3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull, 37ull,
                  41ull, 43ull, 47ull})
      if (mod(BigInt(p)).is_zero()) return false;
  }

  // Write n-1 = d * 2^s.
  const BigInt n_minus_1 = sub(BigInt(1));
  BigInt d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d.shifted_right(1);
    ++s;
  }

  for (int round = 0; round < rounds; ++round) {
    const BigInt a = random_below(n_minus_1, rng);
    if (a < BigInt(2)) continue;
    BigInt x = a.powmod(d, *this);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = x.mulmod(x, *this);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt BigInt::random_prime(std::size_t bits, sim::Rng& rng) {
  if (bits < 3) throw std::invalid_argument("BigInt::random_prime: need >= 3 bits");
  for (;;) {
    BigInt candidate = random_bits(bits, rng);
    if (!candidate.is_odd()) candidate = candidate.add(BigInt(1));
    if (candidate.bit_length() != bits) continue;
    if (candidate.is_probable_prime(rng, 30)) return candidate;
  }
}

} // namespace switchml::crypto
