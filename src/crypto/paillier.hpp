// Paillier additively homomorphic cryptosystem (Appendix D).
//
// The paper observes that although arbitrary computation over encrypted
// traffic is beyond a switch, the aggregation SwitchML needs is plain
// integer addition — and for several partially homomorphic cryptosystems
// E(x) * E(y) = E(x + y), so a device capable of modular multiplication
// could aggregate ciphertexts. This module provides the cryptosystem and the
// aggregation primitive; examples/encrypted_aggregation drives the full
// quantize -> encrypt -> multiply-aggregate -> decrypt pipeline.
//
// Standard construction with g = n + 1:
//   keygen: p, q primes, n = pq, lambda = lcm(p-1, q-1), mu = lambda^-1 mod n
//   encrypt(m): c = (1 + m n) * r^n mod n^2, random r in Z*_n
//   decrypt(c): m = L(c^lambda mod n^2) * mu mod n, with L(u) = (u - 1) / n
//   E(a) * E(b) mod n^2 = E(a + b mod n)
//
// Signed gradients are encoded into Z_n by wraparound (x < 0 -> n + x) and
// decoded by centering, so quantized model updates sum correctly as long as
// |sum| < n/2 — trivially true for int32 updates and >= 64-bit n.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bigint.hpp"

namespace switchml::crypto {

struct PaillierPublicKey {
  BigInt n;
  BigInt n_squared;

  // E(m) with fresh randomness from `rng`.
  [[nodiscard]] BigInt encrypt(const BigInt& m, sim::Rng& rng) const;
  // Signed-plaintext convenience (wraparound encoding).
  [[nodiscard]] BigInt encrypt_signed(std::int64_t m, sim::Rng& rng) const;

  // The in-network aggregation primitive: E(a) * E(b) mod n^2 = E(a + b).
  [[nodiscard]] BigInt add_ciphertexts(const BigInt& c1, const BigInt& c2) const;
  // Scalar multiply: E(m)^k = E(k m) (useful for weighted averaging).
  [[nodiscard]] BigInt scale_ciphertext(const BigInt& c, const BigInt& k) const;
};

struct PaillierPrivateKey {
  BigInt lambda;
  BigInt mu;

  [[nodiscard]] BigInt decrypt(const BigInt& c, const PaillierPublicKey& pub) const;
  [[nodiscard]] std::int64_t decrypt_signed(const BigInt& c,
                                            const PaillierPublicKey& pub) const;
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

// Generates a key with an n of roughly `modulus_bits` bits.
PaillierKeyPair paillier_keygen(std::size_t modulus_bits, sim::Rng& rng);

// Host-side "parameter aggregator" for ciphertext vectors: the operation a
// modular-multiply-capable dataplane would perform per packet (Appendix D).
class EncryptedAggregator {
public:
  explicit EncryptedAggregator(PaillierPublicKey pub) : pub_(std::move(pub)) {}

  // acc[i] <- acc[i] * update[i] mod n^2  (== E(acc_plain + update_plain))
  void accumulate(std::vector<BigInt>& acc, const std::vector<BigInt>& update) const;

  // Fresh accumulator holding E(0) entries (encrypted with fixed r=1, which
  // is fine for an accumulator that is immediately multiplied by real
  // ciphertexts).
  [[nodiscard]] std::vector<BigInt> zero(std::size_t d) const;

private:
  PaillierPublicKey pub_;
};

} // namespace switchml::crypto
