#include "worker/worker.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/attribution.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace switchml::worker {

Worker::Worker(sim::Simulation& simulation, net::NodeId id, std::string name,
               WorkerConfig config)
    : Node(simulation, id, std::move(name)),
      config_(config),
      nic_(simulation, config.nic),
      channel_(net::make_channel(simulation, this->name(), id, config.transport, nic_,
                                 config.rdma)),
      slot_ver_(config.pool_size, 0),
      slots_(config.pool_size),
      rto_(config.retransmit_timeout) {
  if (config.pool_size == 0) throw std::invalid_argument("Worker: pool_size must be positive");
  if (config.elems_per_packet == 0)
    throw std::invalid_argument("Worker: elems_per_packet must be positive");
  if (config.sync_after < 0 || config.dead_after < 0)
    throw std::invalid_argument("Worker: sync_after/dead_after must be non-negative");

  if (auto* reg = MetricsRegistry::current()) {
    const std::string p = this->name() + ".";
    reg->add_counter(p + "updates_sent", [this] { return counters_.updates_sent; });
    reg->add_counter(p + "updates_wired", [this] {
      drain_wire_ledger();
      return counters_.updates_wired;
    });
    reg->add_counter(p + "retransmissions", [this] { return counters_.retransmissions; });
    reg->add_counter(p + "timeouts", [this] { return counters_.timeouts; });
    reg->add_counter(p + "results_received", [this] { return counters_.results_received; });
    reg->add_counter(p + "duplicate_results", [this] { return counters_.duplicate_results; });
    reg->add_counter(p + "checksum_drops", [this] { return counters_.checksum_drops; });
    reg->add_gauge(p + "in_flight_slots",
                   [this] { return static_cast<std::int64_t>(in_flight_slots()); });
    reg->add_gauge(p + "rto_ns", [this] { return static_cast<std::int64_t>(rto_); });
    reg->add_summary(p + "rtt_us", &rtt_);
    reg->add_histogram(p + "rtt_ns", &rtt_ns_);
    reg->add_histogram(p + "completion_ns", &completion_ns_);
    reg->add_counter(p + "recovery.sync_queries", [this] { return recovery_.sync_queries; });
    reg->add_counter(p + "recovery.sync_responses",
                     [this] { return recovery_.sync_responses; });
    reg->add_counter(p + "recovery.escalations", [this] { return recovery_.escalations; });
    reg->add_counter(p + "recovery.epoch_resyncs", [this] { return recovery_.epoch_resyncs; });
    reg->add_counter(p + "recovery.epoch_resends", [this] { return recovery_.epoch_resends; });
    reg->add_counter(p + "recovery.rescues_sent", [this] { return recovery_.rescues_sent; });
    reg->add_counter(p + "recovery.dead_declared", [this] { return recovery_.dead_declared; });
    reg->add_gauge(p + "recovery.switch_epoch",
                   [this] { return static_cast<std::int64_t>(switch_epoch_); });
    reg->add_histogram(p + "recovery.resync_ns", &resync_ns_);
  }

  if (inttel::kCompiledIn && config_.int_mode != inttel::kModeOff) {
    // The result path for this worker crosses exactly three stamped hops:
    // its uplink (worker -> switch), the aggregation switch itself, and the
    // downlink (switch -> worker). Pre-declare them so their series exist in
    // the registry from t=0; hops discovered later (multi-rack topologies)
    // still accumulate stats, just without registered series.
    int_collector_ = std::make_unique<inttel::IntCollector>("int." + this->name() + ".");
    const std::uint32_t self = this->id();
    const std::uint32_t sw = config_.switch_id;
    int_collector_->declare_hop(inttel::HopKey{self, sw, inttel::HopKey::kLink}, "up");
    int_collector_->declare_hop(inttel::HopKey{sw, self, inttel::HopKey::kSwitch}, "switch");
    int_collector_->declare_hop(inttel::HopKey{sw, self, inttel::HopKey::kLink}, "down");
  }
}

std::uint32_t Worker::in_flight_slots() const {
  std::uint32_t n = 0;
  for (const Slot& s : slots_)
    if (s.active) ++n;
  return n;
}

void Worker::drain_wire_ledger() {
  // Strictly-before so a sample at time T counts wire activity in [0, T),
  // matching half-open bucketing when samples land on period boundaries.
  const Time now = sim_.now();
  auto kept = std::remove_if(wire_pending_.begin(), wire_pending_.end(),
                             [now](Time t) { return t < now; });
  counters_.updates_wired +=
      static_cast<std::uint64_t>(std::distance(kept, wire_pending_.end()));
  wire_pending_.erase(kept, wire_pending_.end());
}

void Worker::rtt_sample(Time sample) {
  rtt_.add(to_usec(sample));
  rtt_ns_.record(sample);
  if (!config_.adaptive_rto) return;
  // Jacobson/Karels: SRTT <- SRTT + (R - SRTT)/8, RTTVAR <- RTTVAR +
  // (|R - SRTT| - RTTVAR)/4, RTO = SRTT + 4 RTTVAR.
  const double r = static_cast<double>(sample);
  if (!have_rtt_) {
    srtt_ = r;
    rttvar_ = r / 2.0;
    have_rtt_ = true;
  } else {
    const double err = r - srtt_;
    srtt_ += err / 8.0;
    rttvar_ += (std::abs(err) - rttvar_) / 4.0;
  }
  const auto rto = static_cast<Time>(srtt_ + 4.0 * rttvar_);
  rto_ = std::clamp(rto, config_.rto_min, config_.rto_max);
}

std::uint32_t Worker::chunk_elems(std::uint64_t off) const {
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(config_.elems_per_packet, total_elems_ - off));
}

void Worker::start_reduction(std::span<const std::int32_t> update,
                             std::span<std::int32_t> result,
                             std::function<void()> on_complete) {
  if (update.size() != result.size())
    throw std::invalid_argument("Worker::start_reduction: update/result size mismatch");
  if (config_.timing_only)
    throw std::logic_error("Worker::start_reduction: data reduction on timing-only worker");
  update_ = update;
  result_ = result;
  start_reduction(static_cast<std::uint64_t>(update.size()), std::move(on_complete));
}

void Worker::start_reduction(std::uint64_t total_elems, std::function<void()> on_complete) {
  if (reduction_active())
    throw std::logic_error("Worker::start_reduction: previous reduction still running");
  if (total_elems == 0) {
    // Degenerate but legal: nothing to aggregate.
    if (on_complete) on_complete();
    return;
  }
  if (uplink_ == nullptr) throw std::logic_error("Worker: no uplink configured");

  total_elems_ = total_elems;
  on_complete_ = std::move(on_complete);
  reduction_started_at_ = sim_.now();
  const std::uint64_t chunks =
      (total_elems + config_.elems_per_packet - 1) / config_.elems_per_packet;
  remaining_chunks_ = chunks;
  s_eff_ = static_cast<std::uint32_t>(std::min<std::uint64_t>(config_.pool_size, chunks));

  for (Slot& s : slots_) s.retired = false;

  // Algorithm 4 lines 1-8: fill the pool with the first s pieces.
  for (std::uint32_t i = 0; i < s_eff_; ++i) {
    slots_[i].off = static_cast<std::uint64_t>(i) * config_.elems_per_packet;
    slots_[i].active = true;
    slots_[i].retransmitted = false;
    slots_[i].retries = 0;
    slots_[i].stall_started_at = -1;
    send_update(i, /*retransmission=*/false);
  }
}

void Worker::send_update(std::uint32_t slot_index, bool retransmission) {
  Slot& slot = slots_[slot_index];
  net::Packet p;
  p.kind = net::PacketKind::SmlUpdate;
  p.src = id();
  p.dst = dst_resolver_ ? dst_resolver_(slot_index) : config_.switch_id;
  p.job = config_.job;
  p.wid = config_.wid;
  p.ver = slot_ver_[slot_index];
  p.idx = slot_index;
  p.off = slot.off;
  p.elem_count = chunk_elems(slot.off);
  p.elem_bytes = config_.wire_elem_bytes;
  if (!config_.timing_only && !update_.empty()) {
    const auto first = static_cast<std::ptrdiff_t>(slot.off);
    p.values.assign(update_.begin() + first, update_.begin() + first + p.elem_count);
  }
  p.int_mode = config_.int_mode;
  p.transport = config_.transport;

  p.seal();
  slot.epoch = switch_epoch_;
  ++counters_.updates_sent;
  if (retransmission) {
    ++counters_.retransmissions;
    slot.retransmitted = true;
    // The chunk re-enters the host send path (from an RTO or recovery stall).
    attr::transition(id(), slot_index, attr::Component::kHostTx, sim_.now());
  } else {
    slot.retransmitted = false;
    // A fresh chunk: its attribution span starts here, in kHostTx.
    attr::open(id(), slot_index, slot.off, sim_.now());
    trace::emit_flow(sim_.now(), id(), "chunk", trace::chunk_flow_id(id(), slot.off),
                     trace::FlowPhase::kStart);
  }

  const Time wire_time = channel_->tx_ready(core_of(slot_index), p);
  slot.sent_at = sim_.now(); // RTT is measured end-to-end at the app layer
  drain_wire_ledger();       // keeps the pending-wire ledger bounded
  wire_pending_.push_back(wire_time);
  trace::emit(trace::kCatWorker, sim_.now(), id(), retransmission ? "retransmit" : "send",
              {"slot", slot_index}, {"off", static_cast<std::int64_t>(slot.off)},
              {"ver", slot_ver_[slot_index]});
  uplink_->send_from(*this, std::move(p), wire_time);
  if (!config_.lossless) arm_timer(slot_index);
}

void Worker::arm_timer(std::uint32_t slot_index) {
  Slot& slot = slots_[slot_index];
  // Exponential backoff is PER SLOT: repeated losses on one slot must not
  // inflate the timers of healthy slots.
  const int shift = std::min(slot.backoff, 10);
  const Time rto = std::min<Time>(rto_ << shift, config_.rto_max);
  slot.timer.cancel();
  slot.timer = sim_.schedule_timer(rto, [this, slot_index] {
    Slot& s = slots_[slot_index];
    if (!s.active || aborted_) return;
    ++counters_.timeouts;
    if (s.retries++ == 0) s.stall_started_at = sim_.now();
    trace::emit(trace::kCatWorker, sim_.now(), id(), "timeout", {"slot", slot_index},
                {"off", static_cast<std::int64_t>(s.off)}, {"retries", s.retries});
    // Final escalation stage: the retry budget is spent, the switch is
    // presumed gone. No further transmission; the dead handler decides.
    if (config_.dead_after > 0 && s.retries >= config_.dead_after) {
      declare_switch_dead();
      return;
    }
    // Backoff applies in fixed-RTO mode too: a switch outage would otherwise
    // have every slot hammering at the base RTO for the whole dead_after
    // budget (adaptive mode always backed off; fixed mode is the bugfix).
    ++s.backoff;
    // Algorithm 4 timeout handler: resend the SAME (idx, ver, off) packet.
    send_update(slot_index, /*retransmission=*/true);
    // Middle escalation stage: ride a slot-state probe on every timeout past
    // the sync_after budget — a plain retransmission cannot repair the
    // restart-races-lost-result stranding, but the probe's answer can.
    if (config_.sync_after > 0 && s.retries >= config_.sync_after) {
      if (s.retries == config_.sync_after) ++recovery_.escalations;
      send_sync_query(slot_index);
    }
  });
}

void Worker::receive(net::Packet&& p, int /*port*/) {
  if (aborted_) return;
  if (p.kind != net::PacketKind::SmlResult && p.kind != net::PacketKind::SmlSyncResponse) {
    SML_LOG(Warn) << name() << ": unexpected packet kind " << net::to_string(p.kind);
    return;
  }
  const bool sync = p.kind == net::PacketKind::SmlSyncResponse;
  const int core = core_of(p.idx);
  const Time rx_at = sim_.now(); // NIC arrival; kHostRx runs from here to consume
  auto shared = std::make_shared<net::Packet>(std::move(p));
  channel_->rx_process(core, *shared, [this, shared, sync, rx_at]() mutable {
    if (sync)
      handle_sync_response(std::move(*shared));
    else
      handle_result(std::move(*shared), rx_at);
  });
}

void Worker::handle_result(net::Packet&& p, Time rx_at) {
  if (aborted_) return;
  if (!p.verify()) {
    // Corrupted on the wire: discard; the slot timer repairs it (§3.4).
    ++counters_.checksum_drops;
    trace::emit(trace::kCatWorker, sim_.now(), id(), "checksum_drop", {"slot", p.idx});
    attr::transition_matching(id(), p.idx, p.off, attr::Component::kRtoStall, sim_.now());
    return;
  }
  if (p.idx >= slots_.size()) {
    SML_LOG(Warn) << name() << ": result for slot out of range";
    return;
  }
  // Every result carries the switch incarnation; a newer epoch means the
  // dataplane restarted and all older in-flight contributions were wiped.
  observe_epoch(p.epoch);
  Slot& slot = slots_[p.idx];
  // A result is current only if this slot still has that offset in flight.
  // Anything else is a duplicate delivery (e.g., the multicast arriving after
  // a unicast retransmission reply, or vice versa) and is ignored.
  if (!slot.active || slot.off != p.off) {
    ++counters_.duplicate_results;
    trace::emit(trace::kCatWorker, sim_.now(), id(), "dup_result", {"slot", p.idx},
                {"off", static_cast<std::int64_t>(p.off)});
    return;
  }

  ++counters_.results_received;
  trace::emit(trace::kCatWorker, sim_.now(), id(), "recv", {"slot", p.idx},
              {"off", static_cast<std::int64_t>(p.off)}, {"ver", p.ver});
  if (int_collector_ && p.int_mode != inttel::kModeOff) {
    // Karn's rule for the residual too: a retransmitted slot has no clean
    // end-to-end sample, so only hop stats are folded in (rtt = -1).
    const std::int64_t rtt = slot.retransmitted ? -1 : sim_.now() - slot.sent_at;
    int_collector_->observe(id(), p.int_stack, sim_.now(), rtt);
  }
  // The chunk's span ends here: NIC rx processing since arrival, then done.
  attr::transition(id(), p.idx, attr::Component::kHostRx, rx_at);
  attr::close(id(), p.idx, sim_.now());
  trace::emit_flow(sim_.now(), id(), "chunk", trace::chunk_flow_id(id(), p.off),
                   trace::FlowPhase::kEnd);
  slot.timer.cancel();
  slot.active = false;
  slot.backoff = 0;
  if (slot.retries > 0) {
    // End of a stall episode: first timeout -> result finally consumed.
    resync_ns_.record(sim_.now() - slot.stall_started_at);
    slot.retries = 0;
    slot.stall_started_at = -1;
  }
  ++slot.phases_completed;
  if (!slot.retransmitted) rtt_sample(sim_.now() - slot.sent_at);

  // Algorithm 4 line 12: consume the aggregated piece.
  if (!config_.timing_only && !result_.empty() && !p.values.empty()) {
    std::copy(p.values.begin(), p.values.end(),
              result_.begin() + static_cast<std::ptrdiff_t>(p.off));
  }
  if (on_chunk_) on_chunk_(p.off, p.elem_count);

  // Flip the pool version for this slot (the old copy becomes the shadow).
  // Lossless mode (Algorithm 2) has a single pool version.
  const std::uint8_t consumed_ver = slot_ver_[p.idx];
  if (!config_.lossless) slot_ver_[p.idx] ^= 1;

  // Lines 13-18: reuse the slot for the next piece, k*s elements ahead.
  const std::uint64_t next_off =
      slot.off + static_cast<std::uint64_t>(config_.elems_per_packet) * s_eff_;
  if (next_off < total_elems_) {
    slot.off = next_off;
    slot.active = true;
    send_update(p.idx, /*retransmission=*/false);
  } else {
    // This was the slot's final phase: remember it so a peer stranded on it
    // by a restart can still be rescued (see Slot::retired).
    slot.retired = true;
    slot.retired_off = p.off;
    slot.retired_ver = consumed_ver;
    slot.retired_elems = p.elem_count;
  }

  if (--remaining_chunks_ == 0) {
    completion_ns_.record(sim_.now() - reduction_started_at_);
    total_elems_ = 0;
    // update_ is deliberately KEPT until the next start_reduction: retired
    // slots may still need it to re-contribute their final phase for a peer
    // stranded by a late restart (the caller's buffer outlives the run).
    auto done = std::move(on_complete_);
    on_complete_ = nullptr;
    result_ = {};
    if (done) done();
  }
}

void Worker::observe_epoch(std::uint32_t epoch) {
  if (epoch <= switch_epoch_) return;
  switch_epoch_ = epoch;
  ++recovery_.epoch_resyncs;
  trace::emit(trace::kCatFault, sim_.now(), id(), "epoch_resync",
              {"epoch", static_cast<std::int64_t>(epoch)});
  if (aborted_) return;
  // Every packet driven under an older incarnation was wiped by the restart;
  // re-drive it now instead of waiting out the RTO. Re-driving a slot whose
  // contribution actually survives (sent post-restart, epoch not yet learned)
  // is idempotent: the switch's seen bitmap absorbs the duplicate.
  for (std::uint32_t i = 0; i < s_eff_; ++i) {
    Slot& s = slots_[i];
    if (!s.active || s.epoch >= epoch) continue;
    ++recovery_.epoch_resends;
    send_update(i, /*retransmission=*/true);
  }
}

void Worker::send_sync_query(std::uint32_t slot_index) {
  Slot& slot = slots_[slot_index];
  net::Packet p;
  p.kind = net::PacketKind::SmlSyncQuery;
  p.src = id();
  p.dst = dst_resolver_ ? dst_resolver_(slot_index) : config_.switch_id;
  p.job = config_.job;
  p.wid = config_.wid;
  p.ver = slot_ver_[slot_index];
  p.idx = slot_index;
  p.off = slot.off;
  p.transport = config_.transport;
  p.seal();
  ++recovery_.sync_queries;
  const Time wire_time = channel_->tx_ready(core_of(slot_index), p);
  trace::emit(trace::kCatFault, sim_.now(), id(), "sync_query", {"slot", slot_index},
              {"off", static_cast<std::int64_t>(slot.off)});
  uplink_->send_from(*this, std::move(p), wire_time);
}

void Worker::handle_sync_response(net::Packet&& p) {
  if (aborted_) return;
  if (!p.verify()) {
    ++counters_.checksum_drops;
    return;
  }
  if (p.idx >= slots_.size()) return;
  Slot& slot = slots_[p.idx];
  if (!slot.active) {
    // Slot-state announcements reach every worker of the job, not just the
    // prober. A retired slot can still volunteer its final phase: if that
    // exact (version, offset) is mid-aggregation again, only a restart can
    // explain it -- and OUR announced seen bit being clear proves our wiped
    // contribution is genuinely missing (it stays set through a normal
    // in-progress aggregation, so no double-count is possible).
    if (!slot.retired) return;
    observe_epoch(p.epoch);
    const int rv = slot.retired_ver & 1;
    const std::uint32_t count_r = rv ? p.sync_count1 : p.sync_count0;
    const std::uint64_t claim_r = rv ? p.sync_off1 : p.sync_off0;
    const bool seen_mine = ((p.sync_seen >> rv) & 1) != 0;
    if (count_r > 0 && claim_r == slot.retired_off && !seen_mine) {
      ++recovery_.sync_responses;
      send_rescue(p.idx, slot.retired_off, slot.retired_ver, slot.retired_elems);
    }
    return;
  }
  // The response echoes the probe's offset; anything else is a stale answer
  // for a phase this slot has already moved past.
  if (slot.off != p.off) return;
  ++recovery_.sync_responses;
  observe_epoch(p.epoch);
  // Stranding-race detection (restart destroyed the shadow copy of a result
  // that was concurrently lost to some worker): this worker is one phase
  // AHEAD of the stragglers iff the OTHER pool version is mid-aggregation at
  // exactly the previous phase's offset. The pattern is only satisfiable
  // after a restart — in normal operation the other version's claim is
  // either this slot's next phase or empty — and it closes by itself once
  // the rescued phase completes, so retrying a lost rescue stays safe.
  if (slot.phases_completed == 0) return;
  const std::uint8_t other = slot_ver_[p.idx] ^ 1;
  const std::uint32_t count_other = other ? p.sync_count1 : p.sync_count0;
  const std::uint64_t claim_other = other ? p.sync_off1 : p.sync_off0;
  const std::uint64_t stride = static_cast<std::uint64_t>(config_.elems_per_packet) * s_eff_;
  if (count_other > 0 && claim_other == slot.off - stride)
    send_rescue(p.idx, slot.off - stride, other, chunk_elems(slot.off - stride));
}

void Worker::send_rescue(std::uint32_t slot_index, std::uint64_t off, std::uint8_t ver,
                         std::uint32_t elem_count) {
  net::Packet p;
  p.kind = net::PacketKind::SmlRescue;
  p.src = id();
  p.dst = dst_resolver_ ? dst_resolver_(slot_index) : config_.switch_id;
  p.job = config_.job;
  p.wid = config_.wid;
  p.ver = ver;
  p.idx = slot_index;
  p.off = off;
  p.elem_count = elem_count;
  p.elem_bytes = config_.wire_elem_bytes;
  if (!config_.timing_only && !update_.empty()) {
    const auto first = static_cast<std::ptrdiff_t>(off);
    p.values.assign(update_.begin() + first, update_.begin() + first + p.elem_count);
  }
  p.int_mode = config_.int_mode;
  p.transport = config_.transport;
  p.seal();
  ++recovery_.rescues_sent;
  const Time wire_time = channel_->tx_ready(core_of(slot_index), p);
  trace::emit(trace::kCatFault, sim_.now(), id(), "rescue_send", {"slot", slot_index},
              {"off", static_cast<std::int64_t>(off)}, {"ver", ver});
  uplink_->send_from(*this, std::move(p), wire_time);
  // No timer: the slot's own RTO keeps firing, and each timeout re-probes the
  // switch; a lost rescue is simply re-sent when the next probe answers.
}

void Worker::declare_switch_dead() {
  if (dead_declared_) return;
  dead_declared_ = true;
  ++recovery_.dead_declared;
  trace::emit(trace::kCatFault, sim_.now(), id(), "switch_dead", {"epoch", switch_epoch_});
  SML_LOG(Warn) << name() << ": retry budget exhausted, declaring switch dead";
  // Stop our own transmissions first so the simulation can drain even when
  // nobody installed a dead handler (standalone tests).
  abort_reduction();
  if (on_switch_dead_) on_switch_dead_();
}

void Worker::abort_reduction() {
  if (aborted_) return;
  aborted_ = true;
  for (Slot& s : slots_) s.timer.cancel();
  // Every unconsumed chunk now belongs to the PS-fallback replay; the fabric
  // closes the spans when the fallback delivers them.
  attr::transition_all(id(), attr::Component::kFallback, sim_.now());
}

std::vector<std::uint64_t> Worker::unconsumed_chunks() const {
  std::vector<std::uint64_t> offs;
  if (s_eff_ == 0) return offs;
  const std::uint64_t stride = static_cast<std::uint64_t>(config_.elems_per_packet) * s_eff_;
  for (const Slot& s : slots_) {
    if (!s.active) continue;
    for (std::uint64_t off = s.off; off < total_elems_; off += stride) offs.push_back(off);
  }
  std::sort(offs.begin(), offs.end());
  return offs;
}

void Worker::finish_aborted_reduction() {
  for (Slot& s : slots_) {
    s.timer.cancel();
    s.active = false;
    s.retransmitted = false;
    s.backoff = 0;
    s.retries = 0;
    s.stall_started_at = -1;
  }
  remaining_chunks_ = 0;
  total_elems_ = 0;
  update_ = {};
  result_ = {};
  on_complete_ = nullptr;
  aborted_ = false;
  dead_declared_ = false;
}

} // namespace switchml::worker
