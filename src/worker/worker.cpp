#include "worker/worker.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace switchml::worker {

Worker::Worker(sim::Simulation& simulation, net::NodeId id, std::string name,
               WorkerConfig config)
    : Node(simulation, id, std::move(name)),
      config_(config),
      nic_(simulation, config.nic),
      slot_ver_(config.pool_size, 0),
      slots_(config.pool_size),
      rto_(config.retransmit_timeout) {
  if (config.pool_size == 0) throw std::invalid_argument("Worker: pool_size must be positive");
  if (config.elems_per_packet == 0)
    throw std::invalid_argument("Worker: elems_per_packet must be positive");

  if (auto* reg = MetricsRegistry::current()) {
    const std::string p = this->name() + ".";
    reg->add_counter(p + "updates_sent", [this] { return counters_.updates_sent; });
    reg->add_counter(p + "updates_wired", [this] {
      drain_wire_ledger();
      return counters_.updates_wired;
    });
    reg->add_counter(p + "retransmissions", [this] { return counters_.retransmissions; });
    reg->add_counter(p + "timeouts", [this] { return counters_.timeouts; });
    reg->add_counter(p + "results_received", [this] { return counters_.results_received; });
    reg->add_counter(p + "duplicate_results", [this] { return counters_.duplicate_results; });
    reg->add_counter(p + "checksum_drops", [this] { return counters_.checksum_drops; });
    reg->add_gauge(p + "in_flight_slots",
                   [this] { return static_cast<std::int64_t>(in_flight_slots()); });
    reg->add_gauge(p + "rto_ns", [this] { return static_cast<std::int64_t>(rto_); });
    reg->add_summary(p + "rtt_us", &rtt_);
    reg->add_histogram(p + "rtt_ns", &rtt_ns_);
    reg->add_histogram(p + "completion_ns", &completion_ns_);
  }
}

std::uint32_t Worker::in_flight_slots() const {
  std::uint32_t n = 0;
  for (const Slot& s : slots_)
    if (s.active) ++n;
  return n;
}

void Worker::drain_wire_ledger() {
  // Strictly-before so a sample at time T counts wire activity in [0, T),
  // matching half-open bucketing when samples land on period boundaries.
  const Time now = sim_.now();
  auto kept = std::remove_if(wire_pending_.begin(), wire_pending_.end(),
                             [now](Time t) { return t < now; });
  counters_.updates_wired +=
      static_cast<std::uint64_t>(std::distance(kept, wire_pending_.end()));
  wire_pending_.erase(kept, wire_pending_.end());
}

void Worker::rtt_sample(Time sample) {
  rtt_.add(to_usec(sample));
  rtt_ns_.record(sample);
  if (!config_.adaptive_rto) return;
  // Jacobson/Karels: SRTT <- SRTT + (R - SRTT)/8, RTTVAR <- RTTVAR +
  // (|R - SRTT| - RTTVAR)/4, RTO = SRTT + 4 RTTVAR.
  const double r = static_cast<double>(sample);
  if (!have_rtt_) {
    srtt_ = r;
    rttvar_ = r / 2.0;
    have_rtt_ = true;
  } else {
    const double err = r - srtt_;
    srtt_ += err / 8.0;
    rttvar_ += (std::abs(err) - rttvar_) / 4.0;
  }
  const auto rto = static_cast<Time>(srtt_ + 4.0 * rttvar_);
  rto_ = std::clamp(rto, config_.rto_min, config_.rto_max);
}

std::uint32_t Worker::chunk_elems(std::uint64_t off) const {
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(config_.elems_per_packet, total_elems_ - off));
}

void Worker::start_reduction(std::span<const std::int32_t> update,
                             std::span<std::int32_t> result,
                             std::function<void()> on_complete) {
  if (update.size() != result.size())
    throw std::invalid_argument("Worker::start_reduction: update/result size mismatch");
  if (config_.timing_only)
    throw std::logic_error("Worker::start_reduction: data reduction on timing-only worker");
  update_ = update;
  result_ = result;
  start_reduction(static_cast<std::uint64_t>(update.size()), std::move(on_complete));
}

void Worker::start_reduction(std::uint64_t total_elems, std::function<void()> on_complete) {
  if (reduction_active())
    throw std::logic_error("Worker::start_reduction: previous reduction still running");
  if (total_elems == 0) {
    // Degenerate but legal: nothing to aggregate.
    if (on_complete) on_complete();
    return;
  }
  if (uplink_ == nullptr) throw std::logic_error("Worker: no uplink configured");

  total_elems_ = total_elems;
  on_complete_ = std::move(on_complete);
  reduction_started_at_ = sim_.now();
  const std::uint64_t chunks =
      (total_elems + config_.elems_per_packet - 1) / config_.elems_per_packet;
  remaining_chunks_ = chunks;
  s_eff_ = static_cast<std::uint32_t>(std::min<std::uint64_t>(config_.pool_size, chunks));

  // Algorithm 4 lines 1-8: fill the pool with the first s pieces.
  for (std::uint32_t i = 0; i < s_eff_; ++i) {
    slots_[i].off = static_cast<std::uint64_t>(i) * config_.elems_per_packet;
    slots_[i].active = true;
    slots_[i].retransmitted = false;
    send_update(i, /*retransmission=*/false);
  }
}

void Worker::send_update(std::uint32_t slot_index, bool retransmission) {
  Slot& slot = slots_[slot_index];
  net::Packet p;
  p.kind = net::PacketKind::SmlUpdate;
  p.src = id();
  p.dst = dst_resolver_ ? dst_resolver_(slot_index) : config_.switch_id;
  p.job = config_.job;
  p.wid = config_.wid;
  p.ver = slot_ver_[slot_index];
  p.idx = slot_index;
  p.off = slot.off;
  p.elem_count = chunk_elems(slot.off);
  p.elem_bytes = config_.wire_elem_bytes;
  if (!config_.timing_only && !update_.empty()) {
    const auto first = static_cast<std::ptrdiff_t>(slot.off);
    p.values.assign(update_.begin() + first, update_.begin() + first + p.elem_count);
  }

  p.seal();
  ++counters_.updates_sent;
  if (retransmission) {
    ++counters_.retransmissions;
    slot.retransmitted = true;
  } else {
    slot.retransmitted = false;
  }

  const Time wire_time = nic_.tx_ready(core_of(slot_index), p.wire_bytes());
  slot.sent_at = sim_.now(); // RTT is measured end-to-end at the app layer
  drain_wire_ledger();       // keeps the pending-wire ledger bounded
  wire_pending_.push_back(wire_time);
  trace::emit(trace::kCatWorker, sim_.now(), id(), retransmission ? "retransmit" : "send",
              {"slot", slot_index}, {"off", static_cast<std::int64_t>(slot.off)},
              {"ver", slot_ver_[slot_index]});
  uplink_->send_from(*this, std::move(p), wire_time);
  if (!config_.lossless) arm_timer(slot_index);
}

void Worker::arm_timer(std::uint32_t slot_index) {
  Slot& slot = slots_[slot_index];
  // Exponential backoff is PER SLOT: repeated losses on one slot must not
  // inflate the timers of healthy slots.
  const int shift = std::min(slot.backoff, 10);
  const Time rto = std::min<Time>(rto_ << shift, config_.rto_max);
  slot.timer.cancel();
  slot.timer = sim_.schedule_timer(rto, [this, slot_index] {
    Slot& s = slots_[slot_index];
    if (!s.active) return;
    ++counters_.timeouts;
    trace::emit(trace::kCatWorker, sim_.now(), id(), "timeout", {"slot", slot_index},
                {"off", static_cast<std::int64_t>(s.off)});
    if (config_.adaptive_rto) ++s.backoff;
    // Algorithm 4 timeout handler: resend the SAME (idx, ver, off) packet.
    send_update(slot_index, /*retransmission=*/true);
  });
}

void Worker::receive(net::Packet&& p, int /*port*/) {
  if (p.kind != net::PacketKind::SmlResult) {
    SML_LOG(Warn) << name() << ": unexpected packet kind " << net::to_string(p.kind);
    return;
  }
  const int core = core_of(p.idx);
  auto shared = std::make_shared<net::Packet>(std::move(p));
  nic_.rx_process(core, shared->wire_bytes(),
                  [this, shared]() mutable { handle_result(std::move(*shared)); });
}

void Worker::handle_result(net::Packet&& p) {
  if (!p.verify()) {
    // Corrupted on the wire: discard; the slot timer repairs it (§3.4).
    ++counters_.checksum_drops;
    trace::emit(trace::kCatWorker, sim_.now(), id(), "checksum_drop", {"slot", p.idx});
    return;
  }
  if (p.idx >= slots_.size()) {
    SML_LOG(Warn) << name() << ": result for slot out of range";
    return;
  }
  Slot& slot = slots_[p.idx];
  // A result is current only if this slot still has that offset in flight.
  // Anything else is a duplicate delivery (e.g., the multicast arriving after
  // a unicast retransmission reply, or vice versa) and is ignored.
  if (!slot.active || slot.off != p.off) {
    ++counters_.duplicate_results;
    trace::emit(trace::kCatWorker, sim_.now(), id(), "dup_result", {"slot", p.idx},
                {"off", static_cast<std::int64_t>(p.off)});
    return;
  }

  ++counters_.results_received;
  trace::emit(trace::kCatWorker, sim_.now(), id(), "recv", {"slot", p.idx},
              {"off", static_cast<std::int64_t>(p.off)}, {"ver", p.ver});
  slot.timer.cancel();
  slot.active = false;
  slot.backoff = 0;
  ++slot.phases_completed;
  if (!slot.retransmitted) rtt_sample(sim_.now() - slot.sent_at);

  // Algorithm 4 line 12: consume the aggregated piece.
  if (!config_.timing_only && !result_.empty() && !p.values.empty()) {
    std::copy(p.values.begin(), p.values.end(),
              result_.begin() + static_cast<std::ptrdiff_t>(p.off));
  }
  if (on_chunk_) on_chunk_(p.off, p.elem_count);

  // Flip the pool version for this slot (the old copy becomes the shadow).
  // Lossless mode (Algorithm 2) has a single pool version.
  if (!config_.lossless) slot_ver_[p.idx] ^= 1;

  // Lines 13-18: reuse the slot for the next piece, k*s elements ahead.
  const std::uint64_t next_off =
      slot.off + static_cast<std::uint64_t>(config_.elems_per_packet) * s_eff_;
  if (next_off < total_elems_) {
    slot.off = next_off;
    slot.active = true;
    send_update(p.idx, /*retransmission=*/false);
  }

  if (--remaining_chunks_ == 0) {
    completion_ns_.record(sim_.now() - reduction_started_at_);
    total_elems_ = 0;
    update_ = {};
    auto done = std::move(on_complete_);
    on_complete_ = nullptr;
    result_ = {};
    if (done) done();
  }
}

} // namespace switchml::worker
