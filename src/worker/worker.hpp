// SwitchML worker: the end-host side of the aggregation protocol
// (Algorithms 2 and 4).
//
// Each worker manages the shared pool of s switch aggregators: it sends an
// initial window of s update packets (one per slot), then operates fully
// self-clocked — each received result releases its slot and triggers exactly
// one new update packet for the next piece of the model (offset advanced by
// k*s, version bit flipped). Packet loss is repaired solely by worker-side
// retransmission timers; the switch's seen-bitmap/shadow-copy state makes
// retransmission idempotent.
//
// The worker also models the paper's DPDK implementation details that matter
// for performance (Appendix B): slots are sharded over NIC cores
// Flow-Director-style (core = idx % cores), and every TX/RX packet charges
// per-packet CPU time on its owning core.
//
// A worker processes int32 vectors; quantization to/from float happens in
// the core library layer (core/allreduce) so this class stays a pure
// transport state machine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/histogram.hpp"
#include "common/int_telemetry.hpp"
#include "common/stats.hpp"
#include "net/channel.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/node.hpp"

namespace switchml::worker {

struct WorkerConfig {
  std::uint16_t wid = 0;
  int n_workers = 8;
  std::uint32_t pool_size = 128;                                // s
  std::uint32_t elems_per_packet = net::kDefaultElemsPerPacket; // k
  std::uint8_t wire_elem_bytes = 4; // 4 = int32 wire format, 2 = fp16 (§3.7)
  Time retransmit_timeout = msec(1);
  // §6: "one should take care to adapt the retransmission timeout according
  // to variations in end-to-end RTT". When enabled, the worker runs a
  // Jacobson/Karels estimator (SRTT + 4*RTTVAR) seeded from
  // retransmit_timeout, clamped to [rto_min, rto_max]. Capped per-slot
  // exponential backoff on repeated timeouts applies in BOTH modes (fixed
  // mode backs off from the fixed base instead of the estimator).
  bool adaptive_rto = false;
  Time rto_min = usec(150);
  Time rto_max = msec(64);
  // Recovery escalation budgets, counted in CONSECUTIVE timeouts of one
  // slot (0 disables the stage). After `sync_after` timeouts each further
  // timeout also sends a SlotSyncQuery probing the switch's slot state
  // (epoch, per-version counters, seen bits) — the probe detects a restart
  // that raced a lost result and drives the rescue re-contribution. After
  // `dead_after` timeouts the worker declares the switch dead and fires the
  // switch-dead handler (the fabric then degrades to the PS fallback).
  int sync_after = 0;
  int dead_after = 0;
  // In-band telemetry mode for this worker's data packets (kModeOff /
  // kModePhantom / kModeOnWire). With a non-off mode the worker owns an
  // IntCollector that parses the stacks echoed back on its results.
  // Meaningless unless the telemetry stack is compiled in (SWITCHML_INT).
  std::uint8_t int_mode = inttel::kModeOff;
  net::NicConfig nic;
  // Host channel model: the DPDK/UDP datapath (default) or RDMA UC with the
  // cost knobs below. RDMA UC has no transport-level ACK/RTO — loss repair
  // stays with the slot protocol's timers in both modes.
  net::TransportKind transport = net::kDefaultTransport;
  net::RdmaUcParams rdma;
  net::NodeId switch_id = 0;
  std::uint8_t job = 0;
  bool timing_only = false; // packets carry sizes but no values
  // §3.2 lossless mode (Algorithm 2): the network guarantees delivery, so
  // the worker runs without retransmission timers and without the version
  // bit. Pair with an Algorithm-1 (lossless) switch.
  bool lossless = false;
};

class Worker : public net::Node {
public:
  Worker(sim::Simulation& simulation, net::NodeId id, std::string name, WorkerConfig config);

  void set_uplink(net::Link& link) { uplink_ = &link; }

  // Overrides the per-slot destination. By default every update goes to the
  // aggregation switch; the PS-like baseline (§5.3) instead shards slots over
  // n software parameter servers (dst = ps[idx % n_ps]).
  void set_destination_resolver(std::function<net::NodeId(std::uint32_t slot)> r) {
    dst_resolver_ = std::move(r);
  }

  // Aggregates `update` (this worker's quantized model-update piece) with all
  // other workers; the switch-aggregated sums are written to `result`.
  // Both spans must stay alive until `on_complete` fires. All workers of the
  // job must start a reduction of the same size.
  void start_reduction(std::span<const std::int32_t> update, std::span<std::int32_t> result,
                       std::function<void()> on_complete);

  // Timing-only variant: no data is carried or stored.
  void start_reduction(std::uint64_t total_elems, std::function<void()> on_complete);

  // Optional per-chunk hook, fired as aggregated pieces arrive (used by the
  // stream buffer manager for per-tensor completion).
  void set_chunk_handler(std::function<void(std::uint64_t off, std::uint32_t count)> h) {
    on_chunk_ = std::move(h);
  }

  void receive(net::Packet&& p, int port) override;

  struct Counters {
    std::uint64_t updates_sent = 0;  // at send time; includes retransmissions
    std::uint64_t updates_wired = 0; // at NIC wire time (tx_ready); lags updates_sent
    std::uint64_t retransmissions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t results_received = 0;
    std::uint64_t duplicate_results = 0;
    std::uint64_t checksum_drops = 0; // corrupted results discarded (§3.4)
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // Recovery-protocol observability (exported as "<name>.recovery.*").
  struct RecoveryCounters {
    std::uint64_t sync_queries = 0;    // SlotSyncQuery packets sent
    std::uint64_t sync_responses = 0;  // responses consumed
    std::uint64_t escalations = 0;     // slots that crossed the sync_after budget
    std::uint64_t epoch_resyncs = 0;   // newer-epoch observations acted on
    std::uint64_t epoch_resends = 0;   // in-flight packets re-driven on resync
    std::uint64_t rescues_sent = 0;    // previous-phase re-contributions
    std::uint64_t dead_declared = 0;   // 1 once the dead_after budget is spent
  };
  [[nodiscard]] const RecoveryCounters& recovery() const { return recovery_; }

  // Fired exactly once when a slot exhausts the dead_after retry budget.
  void set_switch_dead_handler(std::function<void()> h) { on_switch_dead_ = std::move(h); }

  // Tears down the in-flight reduction without completing it: all slot
  // timers are cancelled and no further packets are sent, but the slot
  // offsets are kept so unconsumed_chunks() can report what remains. The
  // fabric calls this on every worker when one declares the switch dead.
  void abort_reduction();
  [[nodiscard]] bool aborted() const { return aborted_; }

  // Chunk offsets this worker has not consumed a result for (valid after
  // abort_reduction); the fallback collective replays their union.
  [[nodiscard]] std::vector<std::uint64_t> unconsumed_chunks() const;

  // Clears the aborted reduction's state once the fallback replayed it (the
  // on_complete callback is dropped, never fired).
  void finish_aborted_reduction();

  // Latest switch incarnation this worker has observed.
  [[nodiscard]] std::uint32_t switch_epoch() const { return switch_epoch_; }

  // Stall-recovery latency distribution: first timeout of an episode until
  // the stalled slot's result finally arrives ("<name>.recovery.resync_ns").
  [[nodiscard]] const Histogram& resync_hist() const { return resync_ns_; }

  // Per-packet RTT samples (send -> result), excluding retransmitted packets
  // (Karn's rule). Used for Fig 2's right axis.
  [[nodiscard]] const Summary& rtt() const { return rtt_; }

  // Same samples as fixed-memory nanosecond distributions ("<name>.rtt_ns"),
  // plus per-reduction completion times ("<name>.completion_ns") whose
  // spread across workers is the Fig 4 tensor-completion skew.
  [[nodiscard]] const Histogram& rtt_hist() const { return rtt_ns_; }
  [[nodiscard]] const Histogram& completion_hist() const { return completion_ns_; }

  // Current retransmission timeout (adaptive or fixed).
  [[nodiscard]] Time current_rto() const { return rto_; }

  // Telemetry sink for this worker's echoed INT stacks. Non-null only when
  // the stack is compiled in AND config.int_mode != kModeOff.
  [[nodiscard]] inttel::IntCollector* int_collector() const { return int_collector_.get(); }
  // Wires the fabric-owned fault localizer into this worker's collector
  // (no-op without a collector).
  void set_int_localizer(inttel::FaultLocalizer* localizer) {
    if (int_collector_) int_collector_->set_localizer(localizer);
  }

  // Slots with an update packet outstanding (also exported as the
  // "<name>.in_flight_slots" gauge for timeline sampling).
  [[nodiscard]] std::uint32_t in_flight_slots() const;

  [[nodiscard]] const WorkerConfig& config() const { return config_; }
  [[nodiscard]] net::HostNic& nic() { return nic_; }
  [[nodiscard]] net::Channel& channel() { return *channel_; }
  [[nodiscard]] bool reduction_active() const { return remaining_chunks_ > 0; }
  // Highest phase any slot has completed minus lowest — the §3.5 invariant
  // says this can never exceed 1 across workers; exposed for tests.
  [[nodiscard]] std::uint64_t slot_phase(std::uint32_t slot) const {
    return slots_[slot].phases_completed;
  }

private:
  struct Slot {
    std::uint64_t off = 0;   // offset currently in flight on this slot
    bool active = false;     // a packet for `off` is outstanding
    bool retransmitted = false;
    int backoff = 0;         // per-slot capped exponential RTO backoff
    int retries = 0;         // consecutive timeouts (escalation budget)
    std::uint32_t epoch = 0; // switch epoch known when `off` was last driven
    Time stall_started_at = -1; // first timeout of the current episode
    Time sent_at = 0;
    sim::TimerHandle timer;
    std::uint64_t phases_completed = 0;
    // Final-phase retire record. After this slot's LAST result is consumed
    // no timer ever fires for it again — but a switch restart can strand a
    // slower peer re-claiming that exact phase with nobody left to complete
    // it. The job-wide slot-state announcement (SmlSyncResponse multicast)
    // lets this worker spot the re-claim and volunteer the re-contribution;
    // its own announced seen bit (wiped by the restart, still set otherwise)
    // distinguishes the stranding from a normal in-progress aggregation.
    bool retired = false;
    std::uint64_t retired_off = 0;
    std::uint8_t retired_ver = 0;
    std::uint32_t retired_elems = 0;
  };

  void send_update(std::uint32_t slot_index, bool retransmission);
  void handle_result(net::Packet&& p, Time rx_at);
  void handle_sync_response(net::Packet&& p);
  void send_sync_query(std::uint32_t slot_index);
  void send_rescue(std::uint32_t slot_index, std::uint64_t off, std::uint8_t ver,
                   std::uint32_t elem_count);
  void observe_epoch(std::uint32_t epoch);
  void declare_switch_dead();
  void arm_timer(std::uint32_t slot_index);
  void rtt_sample(Time sample);
  void drain_wire_ledger();
  [[nodiscard]] std::uint32_t chunk_elems(std::uint64_t off) const;
  [[nodiscard]] int core_of(std::uint32_t idx) const {
    return static_cast<int>(idx % static_cast<std::uint32_t>(nic_.cores()));
  }

protected:
  [[nodiscard]] net::Link* uplink() const { return uplink_; }

private:
  WorkerConfig config_;
  net::HostNic nic_;
  std::unique_ptr<net::Channel> channel_; // UDP pass-through or RDMA UC
  net::Link* uplink_ = nullptr;
  std::function<net::NodeId(std::uint32_t)> dst_resolver_;

  // Persistent across reductions: the single-bit pool version each slot will
  // use next, mirroring the switch's two-pool state (Algorithm 4 `ver`).
  std::vector<std::uint8_t> slot_ver_;

  std::vector<Slot> slots_;
  std::uint32_t s_eff_ = 0; // min(pool_size, chunks) for the current reduction
  std::uint64_t total_elems_ = 0;
  std::uint64_t remaining_chunks_ = 0;
  std::span<const std::int32_t> update_;
  std::span<std::int32_t> result_;
  std::function<void()> on_complete_;
  std::function<void(std::uint64_t, std::uint32_t)> on_chunk_;

  Counters counters_;
  RecoveryCounters recovery_;
  std::unique_ptr<inttel::IntCollector> int_collector_;
  std::uint32_t switch_epoch_ = 0;
  bool aborted_ = false;
  bool dead_declared_ = false;
  std::function<void()> on_switch_dead_;
  // Wire times of packets handed to the NIC but not yet serialized onto the
  // link; drained lazily (like Link's occupancy ledger) to advance
  // updates_wired without per-packet simulator events. Bounded by the
  // in-flight window.
  std::vector<Time> wire_pending_;
  Summary rtt_;
  Histogram rtt_ns_;
  Histogram completion_ns_;
  Histogram resync_ns_;
  Time reduction_started_at_ = 0;
  // Jacobson/Karels state (adaptive_rto).
  Time rto_ = 0;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  bool have_rtt_ = false;
};

} // namespace switchml::worker
