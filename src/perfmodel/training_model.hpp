// Training-throughput model: combines a model's (constant) per-iteration
// compute time with the communication time *measured on the simulated
// fabric* to estimate end-to-end images/s, the metric of Table 1 and Fig 3.
//
//   t_compute = batch / single_gpu_rate
//   t_comm    = parameters / ATE_rate          (full model reduced per iter)
//   exposed   = max(0, t_comm - overlap_fraction * t_compute)
//   images/s  = n * batch / (t_compute + exposed)
#pragma once

#include "perfmodel/model_zoo.hpp"

namespace switchml::perf {

struct TrainingEstimate {
  double images_per_s = 0.0;
  double t_compute_s = 0.0;
  double t_comm_s = 0.0;
  double exposed_comm_s = 0.0;
};

// `ate_rate` is the aggregation strategy's measured aggregated-tensor-
// elements per second (Fig 4's metric); `batch_size` overrides the spec's
// default when positive (Table 1 uses 64). `per_tensor_overhead_s` is the
// fixed launch cost each of the model's n_tensors reductions pays — large
// for the round-based collectives (2(n-1) sequential round trips to start a
// ring), tiny for SwitchML's continuous stream (pool drain only).
TrainingEstimate estimate_training(const ModelSpec& spec, int n_workers, double ate_rate,
                                   int batch_size = 0, double per_tensor_overhead_s = 0.0);

// Default per-tensor launch overheads used by the Table 1 / Fig 3 harnesses.
constexpr double kRingPerTensorOverheadS = 1.0e-3;     // TCP ring: 2(n-1) round trips
constexpr double kSwitchMlPerTensorOverheadS = 3.0e-5; // pool drain + one RTT

// Ideal scaling: n x single-GPU throughput (zero communication cost).
double ideal_images_per_s(const ModelSpec& spec, int n_workers, int batch_size = 0);

} // namespace switchml::perf
