#include "perfmodel/model_zoo.hpp"

#include <array>
#include <stdexcept>

namespace switchml::perf {

namespace {
// Parameter counts from the original architecture papers; P100 throughputs
// from the TensorFlow benchmark results the paper cites [55] (batch 128,
// AlexNet 512 on synthetic data per §5.1).
const std::array<ModelSpec, 9> kZoo = {{
    {"alexnet", 61'100'000, 2'500.0, 512, 0.10, 16},
    {"googlenet", 6'800'000, 430.0, 128, 0.30, 59},
    {"inception3", 23'900'000, 141.0, 128, 0.30, 96},
    {"inception4", 42'700'000, 61.0, 128, 0.40, 149},
    {"resnet50", 25'600'000, 230.0, 128, 0.20, 161},
    {"resnet101", 44'500'000, 127.0, 128, 0.15, 314},
    {"vgg11", 132'900'000, 180.0, 128, 0.03, 22},
    {"vgg16", 138'400'000, 147.0, 128, 0.04, 32},
    {"vgg19", 143'700'000, 125.0, 128, 0.05, 38},
}};

// Table 1 (§5.2): batch 64; ideal = 8 x single-GPU; multi-GPU from [55].
const std::array<Table1Row, 3> kTable1 = {{
    {"inception3", 1132.0, 1079.0},
    {"resnet50", 1838.0, 1630.0},
    {"vgg16", 1180.0, 898.0},
}};
} // namespace

std::span<const ModelSpec> model_zoo() { return kZoo; }

const ModelSpec& model(const std::string& name) {
  for (const auto& m : kZoo)
    if (m.name == name) return m;
  throw std::invalid_argument("model_zoo: unknown model " + name);
}

std::span<const Table1Row> table1_rows() { return kTable1; }

} // namespace switchml::perf
