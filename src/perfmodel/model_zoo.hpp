// The nine benchmark DNNs of §5 (Fig 3 / Table 1), characterized by the two
// quantities that determine distributed training throughput: model size
// (gradient elements to aggregate per iteration) and single-GPU compute
// throughput (NVidia P100, TensorFlow benchmark suite [55/56]).
//
// `overlap_fraction` captures how much of the gradient exchange a framework
// can hide behind back-propagation (§4: communication starts on the output
// layer's gradients while earlier gradients are still being computed); it
// depends on where in the network the parameters sit — VGG/AlexNet hold most
// parameters in the final dense layers, which are produced FIRST by backprop
// but whose transfer cannot overlap the long convolution backward pass that
// follows... empirically these models overlap poorly, which is why they gain
// the most from SwitchML.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace switchml::perf {

struct ModelSpec {
  std::string name;
  std::uint64_t parameters;       // gradient elements per iteration
  double single_gpu_images_per_s; // P100 throughput at `batch_size`
  int batch_size;
  double overlap_fraction; // share of t_compute usable to hide communication
  int n_tensors;           // gradient tensors reduced per iteration (one per layer)
};

// All nine models of Fig 3 (batch 128 except AlexNet's 512 per [55]).
std::span<const ModelSpec> model_zoo();

// Lookup by name; throws if unknown.
const ModelSpec& model(const std::string& name);

// Table 1 variants (batch 64) with the paper's published baselines for the
// single-node 8-GPU configuration [55].
struct Table1Row {
  std::string name;
  double ideal;     // 8 x single-GPU images/s
  double multi_gpu; // single-node 8-GPU measured [55]
};
std::span<const Table1Row> table1_rows();

} // namespace switchml::perf
