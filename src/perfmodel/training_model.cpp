#include "perfmodel/training_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace switchml::perf {

TrainingEstimate estimate_training(const ModelSpec& spec, int n_workers, double ate_rate,
                                   int batch_size, double per_tensor_overhead_s) {
  if (n_workers < 1) throw std::invalid_argument("estimate_training: n_workers < 1");
  if (ate_rate <= 0) throw std::invalid_argument("estimate_training: ate_rate <= 0");
  const int batch = batch_size > 0 ? batch_size : spec.batch_size;

  TrainingEstimate e;
  // The benchmark suite's throughput is measured at the spec's batch size;
  // per-image compute cost is approximately batch-size independent in the
  // regime the paper uses (64-512).
  e.t_compute_s = static_cast<double>(batch) / spec.single_gpu_images_per_s;
  e.t_comm_s = static_cast<double>(spec.parameters) / ate_rate +
               spec.n_tensors * per_tensor_overhead_s;
  e.exposed_comm_s = std::max(0.0, e.t_comm_s - spec.overlap_fraction * e.t_compute_s);
  e.images_per_s = static_cast<double>(n_workers) * batch / (e.t_compute_s + e.exposed_comm_s);
  return e;
}

double ideal_images_per_s(const ModelSpec& spec, int n_workers, int /*batch_size*/) {
  return static_cast<double>(n_workers) * spec.single_gpu_images_per_s;
}

} // namespace switchml::perf
