#include "ml/dataset.hpp"

#include <cmath>
#include <stdexcept>

namespace switchml::ml {

Dataset make_blobs(std::size_t n, int input_dim, int n_classes, double separation,
                   double noise_sigma, sim::Rng& rng) {
  if (input_dim < 1 || n_classes < 2) throw std::invalid_argument("make_blobs: bad dims");
  Dataset d;
  d.input_dim = input_dim;
  d.n_classes = n_classes;
  d.X.resize(n * static_cast<std::size_t>(input_dim));
  d.y.resize(n);

  // Random unit-norm class centers, scaled by `separation`.
  std::vector<float> centers(static_cast<std::size_t>(n_classes) * input_dim);
  for (int c = 0; c < n_classes; ++c) {
    double norm = 0.0;
    for (int i = 0; i < input_dim; ++i) {
      const double v = rng.normal(0.0, 1.0);
      centers[static_cast<std::size_t>(c) * input_dim + i] = static_cast<float>(v);
      norm += v * v;
    }
    norm = std::sqrt(norm);
    for (int i = 0; i < input_dim; ++i)
      centers[static_cast<std::size_t>(c) * input_dim + i] =
          static_cast<float>(centers[static_cast<std::size_t>(c) * input_dim + i] / norm *
                             separation);
  }

  for (std::size_t s = 0; s < n; ++s) {
    const int c = static_cast<int>(rng.uniform_int(0, n_classes - 1));
    d.y[s] = c;
    for (int i = 0; i < input_dim; ++i)
      d.X[s * static_cast<std::size_t>(input_dim) + i] =
          centers[static_cast<std::size_t>(c) * input_dim + i] +
          static_cast<float>(rng.normal(0.0, noise_sigma));
  }
  return d;
}

std::pair<Dataset, Dataset> split(const Dataset& d, double train_fraction) {
  if (train_fraction <= 0 || train_fraction >= 1) throw std::invalid_argument("split: fraction");
  const std::size_t n_train = static_cast<std::size_t>(static_cast<double>(d.size()) * train_fraction);
  Dataset a, b;
  a.input_dim = b.input_dim = d.input_dim;
  a.n_classes = b.n_classes = d.n_classes;
  const std::size_t dim = static_cast<std::size_t>(d.input_dim);
  a.X.assign(d.X.begin(), d.X.begin() + static_cast<std::ptrdiff_t>(n_train * dim));
  a.y.assign(d.y.begin(), d.y.begin() + static_cast<std::ptrdiff_t>(n_train));
  b.X.assign(d.X.begin() + static_cast<std::ptrdiff_t>(n_train * dim), d.X.end());
  b.y.assign(d.y.begin() + static_cast<std::ptrdiff_t>(n_train), d.y.end());
  return {std::move(a), std::move(b)};
}

Dataset shard(const Dataset& d, int worker, int n_workers) {
  if (worker < 0 || worker >= n_workers) throw std::invalid_argument("shard: bad worker index");
  const std::size_t per = d.size() / static_cast<std::size_t>(n_workers);
  const std::size_t lo = per * static_cast<std::size_t>(worker);
  const std::size_t hi = worker == n_workers - 1 ? d.size() : lo + per;
  Dataset s;
  s.input_dim = d.input_dim;
  s.n_classes = d.n_classes;
  const std::size_t dim = static_cast<std::size_t>(d.input_dim);
  s.X.assign(d.X.begin() + static_cast<std::ptrdiff_t>(lo * dim),
             d.X.begin() + static_cast<std::ptrdiff_t>(hi * dim));
  s.y.assign(d.y.begin() + static_cast<std::ptrdiff_t>(lo),
             d.y.begin() + static_cast<std::ptrdiff_t>(hi));
  return s;
}

} // namespace switchml::ml
