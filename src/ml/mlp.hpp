// Minimal neural-network substrate used to validate the quantization scheme
// end to end (Appendix C / Fig 10): a two-layer MLP with ReLU and
// softmax-cross-entropy, trained by synchronous data-parallel SGD where the
// gradient exchange goes through the SwitchML quantize/aggregate/dequantize
// path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/rng.hpp"

namespace switchml::ml {

class Mlp {
public:
  Mlp(int input_dim, int hidden_dim, int n_classes, sim::Rng& rng);

  [[nodiscard]] int input_dim() const { return d_in_; }
  [[nodiscard]] int n_classes() const { return d_out_; }
  [[nodiscard]] std::size_t n_params() const { return params_.size(); }

  [[nodiscard]] std::span<float> params() { return params_; }
  [[nodiscard]] std::span<const float> params() const { return params_; }

  // Computes the average cross-entropy loss over the batch and writes the
  // gradient d(loss)/d(params) into `grad` (same layout as params()).
  // X is row-major [batch x input_dim].
  double loss_and_gradient(std::span<const float> X, std::span<const int> y,
                           std::span<float> grad) const;

  // Argmax class predictions for a batch.
  void predict(std::span<const float> X, std::span<int> out) const;

  // Fraction of correct predictions.
  double accuracy(std::span<const float> X, std::span<const int> y) const;

  // params -= lr * grad
  void apply_gradient(std::span<const float> grad, double lr);

private:
  struct Views {
    std::span<const float> w1, b1, w2, b2;
  };
  struct MutViews {
    std::span<float> w1, b1, w2, b2;
  };
  [[nodiscard]] Views views() const;
  [[nodiscard]] MutViews views();

  int d_in_;
  int d_hidden_;
  int d_out_;
  std::vector<float> params_; // [W1 | b1 | W2 | b2]
};

} // namespace switchml::ml
