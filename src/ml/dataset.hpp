// Synthetic classification datasets. The paper trains on ImageNet, which we
// cannot ship; Gaussian-blob classification exercises the identical gradient
// aggregation code path (Fig 10's claim is about the quantization math, not
// the dataset) while staying laptop-sized.
#pragma once

#include <vector>

#include "sim/rng.hpp"

namespace switchml::ml {

struct Dataset {
  int input_dim = 0;
  int n_classes = 0;
  std::vector<float> X; // row-major [n x input_dim]
  std::vector<int> y;   // [n]

  [[nodiscard]] std::size_t size() const { return y.size(); }
};

// Draws `n` samples from `n_classes` Gaussian blobs with unit-norm random
// centers separated by `separation`.
Dataset make_blobs(std::size_t n, int input_dim, int n_classes, double separation,
                   double noise_sigma, sim::Rng& rng);

// Splits into (train, test) with the first `train_fraction` as training data.
std::pair<Dataset, Dataset> split(const Dataset& d, double train_fraction);

// View of worker i's equal shard of the training data (data parallelism).
Dataset shard(const Dataset& d, int worker, int n_workers);

} // namespace switchml::ml
