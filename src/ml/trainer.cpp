#include "ml/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "quant/fixed_point.hpp"

namespace switchml::ml {

void ExactAggregator::aggregate(const std::vector<std::vector<float>>& grads,
                                std::vector<float>& out) {
  out.assign(grads.front().size(), 0.0f);
  for (const auto& g : grads)
    for (std::size_t i = 0; i < g.size(); ++i) out[i] += g[i];
}

void QuantizedAggregator::aggregate(const std::vector<std::vector<float>>& grads,
                                    std::vector<float>& out) {
  const std::size_t d = grads.front().size();
  std::vector<std::int32_t> acc(d, 0);
  std::vector<std::int32_t> q(d);
  for (const auto& g : grads) {
    quant::quantize(g, f_, q);
    quant::accumulate_wrapping(acc, q); // switch ALU semantics: wraparound
  }
  out.resize(d);
  quant::dequantize(acc, f_, out);
}

void StochasticInt8Aggregator::aggregate(const std::vector<std::vector<float>>& grads,
                                         std::vector<float>& out) {
  const std::size_t d = grads.front().size();
  float max_abs = 0.0f;
  for (const auto& g : grads)
    for (float v : g) max_abs = std::max(max_abs, std::abs(v));
  const double f = quant::max_safe_scaling_factor_i8(std::max(max_abs, 1e-12f));

  std::vector<std::int32_t> acc(d, 0);
  std::vector<std::int32_t> q(d);
  for (const auto& g : grads) {
    quant::quantize_i8_stochastic(g, f, q, rng_);
    quant::accumulate_wrapping(acc, q);
  }
  out.resize(d);
  quant::dequantize(acc, f, out);
}

DataParallelTrainer::DataParallelTrainer(const Dataset& train, const Dataset& test,
                                         TrainerConfig config)
    : train_(train),
      test_(test),
      config_(config),
      rng_(sim::Rng::stream(config.seed, "trainer")) {
  if (config.n_workers < 1) throw std::invalid_argument("DataParallelTrainer: n_workers");
  model_ = std::make_unique<Mlp>(train.input_dim, config.hidden_dim, train.n_classes, rng_);
  for (int w = 0; w < config.n_workers; ++w) shards_.push_back(shard(train, w, config.n_workers));
  cursor_.assign(static_cast<std::size_t>(config.n_workers), 0);
}

void DataParallelTrainer::next_batch(int worker, std::vector<float>& X, std::vector<int>& y) {
  const auto& s = shards_[static_cast<std::size_t>(worker)];
  const std::size_t dim = static_cast<std::size_t>(s.input_dim);
  const int b = config_.batch_per_worker;
  X.resize(static_cast<std::size_t>(b) * dim);
  y.resize(static_cast<std::size_t>(b));
  auto& cur = cursor_[static_cast<std::size_t>(worker)];
  for (int i = 0; i < b; ++i) {
    const std::size_t idx = cur;
    cur = (cur + 1) % s.size();
    std::copy(s.X.begin() + static_cast<std::ptrdiff_t>(idx * dim),
              s.X.begin() + static_cast<std::ptrdiff_t>((idx + 1) * dim),
              X.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(i) * dim));
    y[static_cast<std::size_t>(i)] = s.y[idx];
  }
}

TrainResult DataParallelTrainer::train(int iterations, Aggregator& aggregator) {
  TrainResult result;
  const std::size_t d = model_->n_params();
  std::vector<std::vector<float>> grads(static_cast<std::size_t>(config_.n_workers),
                                        std::vector<float>(d));
  std::vector<float> sum(d);
  std::vector<float> X;
  std::vector<int> y;

  for (int it = 0; it < iterations; ++it) {
    double loss = 0.0;
    for (int w = 0; w < config_.n_workers; ++w) {
      next_batch(w, X, y);
      loss += model_->loss_and_gradient(X, y, grads[static_cast<std::size_t>(w)]);
      for (float g : grads[static_cast<std::size_t>(w)])
        result.max_abs_gradient = std::max(result.max_abs_gradient, std::abs(g));
    }
    loss /= config_.n_workers;
    result.loss_per_iter.push_back(loss);

    aggregator.aggregate(grads, sum);
    // Model averaging: the aggregate is the SUM of per-worker mean-batch
    // gradients; divide by n so the step size is batch-size invariant.
    model_->apply_gradient(sum, config_.lr / config_.n_workers);

    // Bail out of clearly diverged runs (quantization overflow regimes).
    if (!std::isfinite(loss) || loss > 1e6) break;
  }

  result.final_train_accuracy = model_->accuracy(train_.X, train_.y);
  result.final_test_accuracy = model_->accuracy(test_.X, test_.y);
  return result;
}

} // namespace switchml::ml
