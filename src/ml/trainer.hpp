// Synchronous data-parallel SGD trainer (§2.1): n worker replicas compute
// gradients on disjoint mini-batches; the gradients are summed by a pluggable
// aggregator and the averaged update is applied to every replica — exactly
// the iteration x_{t+1} = x_t + sum_i Delta(x_t, D_i^t).
//
// Aggregators:
//   * ExactAggregator      — float sums (the no-quantization reference);
//   * QuantizedAggregator  — the SwitchML path: scale by f, round to int32,
//     integer sum WITH two's-complement wraparound (switch ALU semantics),
//     divide by f. Sweeping f reproduces Fig 10.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/mlp.hpp"

namespace switchml::ml {

class Aggregator {
public:
  virtual ~Aggregator() = default;
  // Sums `grads[i]` across i into `out` (all same length).
  virtual void aggregate(const std::vector<std::vector<float>>& grads,
                         std::vector<float>& out) = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

class ExactAggregator final : public Aggregator {
public:
  void aggregate(const std::vector<std::vector<float>>& grads,
                 std::vector<float>& out) override;
  [[nodiscard]] const char* name() const override { return "exact"; }
};

class QuantizedAggregator final : public Aggregator {
public:
  explicit QuantizedAggregator(double scaling_factor) : f_(scaling_factor) {}
  void aggregate(const std::vector<std::vector<float>>& grads,
                 std::vector<float>& out) override;
  [[nodiscard]] const char* name() const override { return "quantized"; }
  [[nodiscard]] double scaling_factor() const { return f_; }

private:
  double f_;
};

// 8-bit extension: unbiased stochastic rounding with a per-iteration scaling
// factor fit to the current gradient magnitude (the adaptive variant of the
// compressors Appendix C surveys). 4x less wire traffic, more gradient
// variance — SGD still converges because the quantizer is unbiased.
class StochasticInt8Aggregator final : public Aggregator {
public:
  explicit StochasticInt8Aggregator(std::uint64_t seed)
      : rng_(sim::Rng::stream(seed, "int8-agg")) {}
  void aggregate(const std::vector<std::vector<float>>& grads,
                 std::vector<float>& out) override;
  [[nodiscard]] const char* name() const override { return "int8-stochastic"; }

private:
  sim::Rng rng_;
};

struct TrainerConfig {
  int n_workers = 8;
  int hidden_dim = 64;
  int batch_per_worker = 16;
  double lr = 0.05;
  std::uint64_t seed = 7;
};

struct TrainResult {
  std::vector<double> loss_per_iter;
  double final_train_accuracy = 0.0;
  double final_test_accuracy = 0.0;
  float max_abs_gradient = 0.0f; // profiled over the run (for choosing f)
};

class DataParallelTrainer {
public:
  DataParallelTrainer(const Dataset& train, const Dataset& test, TrainerConfig config);

  // Runs `iterations` synchronous SGD steps with the given aggregator.
  TrainResult train(int iterations, Aggregator& aggregator);

  [[nodiscard]] const Mlp& model() const { return *model_; }

private:
  void next_batch(int worker, std::vector<float>& X, std::vector<int>& y);

  const Dataset& train_;
  const Dataset& test_;
  TrainerConfig config_;
  sim::Rng rng_;
  std::unique_ptr<Mlp> model_; // one replica: synchronous SGD keeps replicas identical
  std::vector<Dataset> shards_;
  std::vector<std::size_t> cursor_;
};

} // namespace switchml::ml
