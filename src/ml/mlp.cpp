#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace switchml::ml {

Mlp::Mlp(int input_dim, int hidden_dim, int n_classes, sim::Rng& rng)
    : d_in_(input_dim), d_hidden_(hidden_dim), d_out_(n_classes) {
  if (input_dim < 1 || hidden_dim < 1 || n_classes < 2)
    throw std::invalid_argument("Mlp: invalid dimensions");
  const std::size_t n = static_cast<std::size_t>(d_in_) * d_hidden_ + d_hidden_ +
                        static_cast<std::size_t>(d_hidden_) * d_out_ + d_out_;
  params_.resize(n);
  // He initialization for the ReLU layer, Xavier-ish for the output layer.
  auto mv = views();
  const double s1 = std::sqrt(2.0 / d_in_);
  const double s2 = std::sqrt(1.0 / d_hidden_);
  for (auto& w : mv.w1) w = static_cast<float>(rng.normal(0.0, s1));
  for (auto& b : mv.b1) b = 0.0f;
  for (auto& w : mv.w2) w = static_cast<float>(rng.normal(0.0, s2));
  for (auto& b : mv.b2) b = 0.0f;
}

Mlp::Views Mlp::views() const {
  const auto* p = params_.data();
  const std::size_t n_w1 = static_cast<std::size_t>(d_in_) * d_hidden_;
  const std::size_t n_w2 = static_cast<std::size_t>(d_hidden_) * d_out_;
  return Views{
      {p, n_w1},
      {p + n_w1, static_cast<std::size_t>(d_hidden_)},
      {p + n_w1 + d_hidden_, n_w2},
      {p + n_w1 + d_hidden_ + n_w2, static_cast<std::size_t>(d_out_)},
  };
}

Mlp::MutViews Mlp::views() {
  auto* p = params_.data();
  const std::size_t n_w1 = static_cast<std::size_t>(d_in_) * d_hidden_;
  const std::size_t n_w2 = static_cast<std::size_t>(d_hidden_) * d_out_;
  return MutViews{
      {p, n_w1},
      {p + n_w1, static_cast<std::size_t>(d_hidden_)},
      {p + n_w1 + d_hidden_, n_w2},
      {p + n_w1 + d_hidden_ + n_w2, static_cast<std::size_t>(d_out_)},
  };
}

double Mlp::loss_and_gradient(std::span<const float> X, std::span<const int> y,
                              std::span<float> grad) const {
  const std::size_t batch = y.size();
  if (X.size() != batch * static_cast<std::size_t>(d_in_))
    throw std::invalid_argument("Mlp: X size mismatch");
  if (grad.size() != params_.size()) throw std::invalid_argument("Mlp: grad size mismatch");
  std::fill(grad.begin(), grad.end(), 0.0f);

  const auto v = views();
  const std::size_t n_w1 = v.w1.size();
  const std::size_t n_w2 = v.w2.size();
  std::span<float> g_w1(grad.data(), n_w1);
  std::span<float> g_b1(grad.data() + n_w1, static_cast<std::size_t>(d_hidden_));
  std::span<float> g_w2(grad.data() + n_w1 + d_hidden_, n_w2);
  std::span<float> g_b2(grad.data() + n_w1 + d_hidden_ + n_w2, static_cast<std::size_t>(d_out_));

  std::vector<float> h(static_cast<std::size_t>(d_hidden_));
  std::vector<float> logits(static_cast<std::size_t>(d_out_));
  std::vector<float> probs(static_cast<std::size_t>(d_out_));
  std::vector<float> dh(static_cast<std::size_t>(d_hidden_));

  double total_loss = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch);

  for (std::size_t b = 0; b < batch; ++b) {
    const float* x = X.data() + b * static_cast<std::size_t>(d_in_);
    // forward: hidden = relu(x W1 + b1)
    for (int j = 0; j < d_hidden_; ++j) {
      float z = v.b1[static_cast<std::size_t>(j)];
      for (int i = 0; i < d_in_; ++i)
        z += x[i] * v.w1[static_cast<std::size_t>(i) * d_hidden_ + j];
      h[static_cast<std::size_t>(j)] = z > 0.0f ? z : 0.0f;
    }
    // logits = h W2 + b2
    float max_logit = -1e30f;
    for (int c = 0; c < d_out_; ++c) {
      float z = v.b2[static_cast<std::size_t>(c)];
      for (int j = 0; j < d_hidden_; ++j)
        z += h[static_cast<std::size_t>(j)] * v.w2[static_cast<std::size_t>(j) * d_out_ + c];
      logits[static_cast<std::size_t>(c)] = z;
      max_logit = std::max(max_logit, z);
    }
    // softmax + CE
    double denom = 0.0;
    for (int c = 0; c < d_out_; ++c)
      denom += std::exp(static_cast<double>(logits[static_cast<std::size_t>(c)] - max_logit));
    const int label = y[b];
    if (label < 0 || label >= d_out_) throw std::invalid_argument("Mlp: label out of range");
    for (int c = 0; c < d_out_; ++c)
      probs[static_cast<std::size_t>(c)] = static_cast<float>(
          std::exp(static_cast<double>(logits[static_cast<std::size_t>(c)] - max_logit)) / denom);
    total_loss -= std::log(std::max(1e-12, static_cast<double>(probs[static_cast<std::size_t>(label)])));

    // backward
    // dlogits = probs - onehot(label)
    for (int c = 0; c < d_out_; ++c) {
      const float dl = (probs[static_cast<std::size_t>(c)] - (c == label ? 1.0f : 0.0f)) *
                       static_cast<float>(inv_batch);
      g_b2[static_cast<std::size_t>(c)] += dl;
      for (int j = 0; j < d_hidden_; ++j)
        g_w2[static_cast<std::size_t>(j) * d_out_ + c] += h[static_cast<std::size_t>(j)] * dl;
    }
    for (int j = 0; j < d_hidden_; ++j) {
      if (h[static_cast<std::size_t>(j)] <= 0.0f) {
        dh[static_cast<std::size_t>(j)] = 0.0f;
        continue;
      }
      float acc = 0.0f;
      for (int c = 0; c < d_out_; ++c)
        acc += (probs[static_cast<std::size_t>(c)] - (c == y[b] ? 1.0f : 0.0f)) *
               v.w2[static_cast<std::size_t>(j) * d_out_ + c];
      dh[static_cast<std::size_t>(j)] = acc * static_cast<float>(inv_batch);
    }
    for (int j = 0; j < d_hidden_; ++j) {
      const float d = dh[static_cast<std::size_t>(j)];
      if (d == 0.0f) continue;
      g_b1[static_cast<std::size_t>(j)] += d;
      for (int i = 0; i < d_in_; ++i)
        g_w1[static_cast<std::size_t>(i) * d_hidden_ + j] += x[i] * d;
    }
  }
  return total_loss * inv_batch;
}

void Mlp::predict(std::span<const float> X, std::span<int> out) const {
  const std::size_t batch = out.size();
  if (X.size() != batch * static_cast<std::size_t>(d_in_))
    throw std::invalid_argument("Mlp: X size mismatch");
  const auto v = views();
  std::vector<float> h(static_cast<std::size_t>(d_hidden_));
  for (std::size_t b = 0; b < batch; ++b) {
    const float* x = X.data() + b * static_cast<std::size_t>(d_in_);
    for (int j = 0; j < d_hidden_; ++j) {
      float z = v.b1[static_cast<std::size_t>(j)];
      for (int i = 0; i < d_in_; ++i)
        z += x[i] * v.w1[static_cast<std::size_t>(i) * d_hidden_ + j];
      h[static_cast<std::size_t>(j)] = z > 0.0f ? z : 0.0f;
    }
    int best = 0;
    float best_z = -1e30f;
    for (int c = 0; c < d_out_; ++c) {
      float z = v.b2[static_cast<std::size_t>(c)];
      for (int j = 0; j < d_hidden_; ++j)
        z += h[static_cast<std::size_t>(j)] * v.w2[static_cast<std::size_t>(j) * d_out_ + c];
      if (z > best_z) {
        best_z = z;
        best = c;
      }
    }
    out[b] = best;
  }
}

double Mlp::accuracy(std::span<const float> X, std::span<const int> y) const {
  std::vector<int> pred(y.size());
  predict(X, pred);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    if (pred[i] == y[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(y.size());
}

void Mlp::apply_gradient(std::span<const float> grad, double lr) {
  if (grad.size() != params_.size()) throw std::invalid_argument("Mlp: grad size mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i)
    params_[i] -= static_cast<float>(lr * static_cast<double>(grad[i]));
}

} // namespace switchml::ml
