#include "framework/training_sim.hpp"

#include <deque>
#include <memory>
#include <stdexcept>

#include "collectives/ring.hpp"
#include "core/profiles.hpp"
#include "core/timing_stream.hpp"

namespace switchml::framework {

namespace {

Time seconds_to_time(double s) { return static_cast<Time>(s * kSecond); }

struct ComputePlan {
  Time fwd;                      // forward pass duration
  std::vector<Time> bwd;         // per-layer backward durations (reverse order applies)
  std::vector<std::uint64_t> grads; // per-layer gradient elements
  Time compute_total;
};

ComputePlan make_plan(const perf::ModelSpec& spec, const TrainingSimConfig& cfg) {
  if (cfg.size_scale <= 0 || cfg.size_scale > 1)
    throw std::invalid_argument("TrainingSimConfig: size_scale must be in (0, 1]");
  const int batch = cfg.batch > 0 ? cfg.batch : spec.batch_size;
  const double t_iter =
      static_cast<double>(batch) / spec.single_gpu_images_per_s * cfg.size_scale;
  const auto layers = synthesize_layers(spec);

  ComputePlan plan;
  plan.fwd = seconds_to_time(t_iter * cfg.forward_fraction);
  const double bwd_total = t_iter * (1.0 - cfg.forward_fraction);
  for (const auto& l : layers) {
    plan.bwd.push_back(seconds_to_time(bwd_total * l.bwd_share));
    plan.grads.push_back(std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(l.params) * cfg.size_scale)));
  }
  plan.compute_total = plan.fwd;
  for (Time t : plan.bwd) plan.compute_total += t;
  return plan;
}

// Drives iterations on any communication backend exposing submit/idle.
// Backward emits gradients for layers L-1 .. 0 (output side first).
class IterationDriver {
public:
  using SubmitFn = std::function<void(std::uint64_t elems, std::function<void()> done)>;

  IterationDriver(sim::Simulation& sim, const ComputePlan& plan, int iterations,
                  SubmitFn submit)
      : sim_(sim), plan_(plan), iterations_(iterations), submit_(std::move(submit)) {}

  // Runs all iterations; returns per-iteration durations.
  std::vector<Time> run() {
    begin_iteration();
    sim_.run();
    if (durations_.size() != static_cast<std::size_t>(iterations_))
      throw std::runtime_error("training simulation did not complete");
    return durations_;
  }

private:
  void begin_iteration() {
    iter_start_ = sim_.now();
    tensors_outstanding_ = 0;
    compute_done_ = false;
    sim_.schedule_after(plan_.fwd, [this] { backward(static_cast<int>(plan_.bwd.size()) - 1); });
  }

  void backward(int layer) {
    if (layer < 0) {
      compute_done_ = true;
      maybe_finish();
      return;
    }
    sim_.schedule_after(plan_.bwd[static_cast<std::size_t>(layer)], [this, layer] {
      ++tensors_outstanding_;
      submit_(plan_.grads[static_cast<std::size_t>(layer)], [this] {
        --tensors_outstanding_;
        maybe_finish();
      });
      backward(layer - 1);
    });
  }

  void maybe_finish() {
    if (!compute_done_ || tensors_outstanding_ != 0) return;
    durations_.push_back(sim_.now() - iter_start_);
    if (static_cast<int>(durations_.size()) < iterations_) begin_iteration();
  }

  sim::Simulation& sim_;
  const ComputePlan& plan_;
  int iterations_;
  SubmitFn submit_;
  Time iter_start_ = 0;
  int tensors_outstanding_ = 0;
  bool compute_done_ = false;
  std::vector<Time> durations_;
};

// RAII for the config's observability hooks: arms an optional
// TimelineRecorder before the run; the caller invokes end() after the run
// (finish + export + on_metrics) while the cluster is still alive.
class SimTelemetry {
public:
  SimTelemetry(const TrainingSimConfig& cfg, sim::Simulation& sim, MetricsRegistry& registry)
      : cfg_(cfg), registry_(registry) {
    if (!cfg.timeline_path.empty()) {
      TimelineRecorder::Config tc;
      tc.period = cfg.timeline_period;
      recorder_ = std::make_unique<TimelineRecorder>(sim, registry, tc);
      recorder_->start();
    }
  }

  void end() {
    if (recorder_) {
      recorder_->finish();
      const bool csv = cfg_.timeline_path.size() >= 4 &&
                       cfg_.timeline_path.rfind(".csv") == cfg_.timeline_path.size() - 4;
      recorder_->write(cfg_.timeline_path, csv ? TimelineRecorder::Format::kCsv
                                               : TimelineRecorder::Format::kJsonl);
      recorder_.reset();
    }
    if (cfg_.on_metrics) cfg_.on_metrics(registry_);
  }

private:
  const TrainingSimConfig& cfg_;
  MetricsRegistry& registry_;
  std::unique_ptr<TimelineRecorder> recorder_;
};

TrainingSimResult summarize(const ComputePlan& plan, const TrainingSimConfig& cfg,
                            const perf::ModelSpec& spec, const std::vector<Time>& durations) {
  const int batch = cfg.batch > 0 ? cfg.batch : spec.batch_size;
  // Skip the warmup iteration (pipelines fill, NIC/cwnd state settles).
  Time total = 0;
  int counted = 0;
  for (std::size_t i = 1; i < durations.size(); ++i) {
    total += durations[i];
    ++counted;
  }
  if (counted == 0) {
    total = durations.front();
    counted = 1;
  }
  TrainingSimResult r;
  // Scale the measured iteration back up to full model size.
  r.iteration_ms = to_msec(total / counted) / cfg.size_scale;
  r.compute_ms = to_msec(plan.compute_total) / cfg.size_scale;
  r.exposed_comm_ms = r.iteration_ms - r.compute_ms;
  r.images_per_s = static_cast<double>(cfg.n_workers) * batch / (r.iteration_ms / 1e3);
  return r;
}

} // namespace

TrainingSimResult simulate_switchml_training(const perf::ModelSpec& spec,
                                             const TrainingSimConfig& cfg) {
  const ComputePlan plan = make_plan(spec, cfg);

  core::ClusterConfig ccfg = core::ClusterConfig::for_rate(cfg.rate, cfg.n_workers);
  ccfg.timing_only = true;
  core::Cluster cluster(ccfg);

  std::vector<std::unique_ptr<core::TimingStreamManager>> managers;
  for (int w = 0; w < cfg.n_workers; ++w)
    managers.push_back(std::make_unique<core::TimingStreamManager>(cluster.worker(w)));

  // Every (identical) worker submits each layer tensor at the same simulated
  // instant; the driver's completion callback counts worker 0's completions.
  IterationDriver driver(cluster.simulation(), plan, cfg.iterations,
                         [&managers](std::uint64_t elems, std::function<void()> done) {
                           for (std::size_t w = 0; w < managers.size(); ++w)
                             managers[w]->submit(elems, w == 0 ? done : nullptr);
                         });
  SimTelemetry telemetry(cfg, cluster.simulation(), cluster.metrics());
  const std::vector<Time> durations = driver.run();
  telemetry.end();
  return summarize(plan, cfg, spec, durations);
}

TrainingSimResult simulate_ring_training(const perf::ModelSpec& spec,
                                         const TrainingSimConfig& cfg,
                                         const core::BaselineProfile& profile) {
  const ComputePlan plan = make_plan(spec, cfg);

  collectives::BaselineClusterConfig bcfg;
  bcfg.n_hosts = cfg.n_workers;
  bcfg.link_rate = cfg.rate;
  bcfg.nic = profile.nic;
  collectives::BaselineCluster cluster(bcfg);
  collectives::RingAllReduce ring(cluster, profile.transport);

  // Horovod-style tensor fusion: gradients queue in a fusion buffer; one
  // fused all-reduce runs at a time, taking up to fusion_bytes per launch.
  struct Fusion {
    collectives::RingAllReduce& ring;
    std::int64_t fusion_bytes;
    std::deque<std::pair<std::int64_t, std::function<void()>>> pending; // (bytes, done)
    bool running = false;

    void submit(std::int64_t bytes, std::function<void()> done) {
      pending.emplace_back(bytes, std::move(done));
      maybe_launch();
    }
    void maybe_launch() {
      if (running || pending.empty()) return;
      running = true;
      std::int64_t bytes = 0;
      auto dones = std::make_shared<std::vector<std::function<void()>>>();
      while (!pending.empty() && bytes < fusion_bytes) {
        bytes += pending.front().first;
        dones->push_back(std::move(pending.front().second));
        pending.pop_front();
      }
      ring.start_async(bytes, [this, dones] {
        running = false;
        for (auto& d : *dones)
          if (d) d();
        maybe_launch();
      });
    }
  } fusion{ring,
           std::max<std::int64_t>(
               4, static_cast<std::int64_t>(static_cast<double>(cfg.fusion_bytes) *
                                            cfg.size_scale)),
           {},
           false};

  IterationDriver driver(cluster.simulation(), plan, cfg.iterations,
                         [&fusion](std::uint64_t elems, std::function<void()> done) {
                           fusion.submit(static_cast<std::int64_t>(elems) * 4,
                                         std::move(done));
                         });
  SimTelemetry telemetry(cfg, cluster.simulation(), cluster.metrics());
  const std::vector<Time> durations = driver.run();
  telemetry.end();
  return summarize(plan, cfg, spec, durations);
}

} // namespace switchml::framework
