// Layer-level model descriptions for the event-driven training simulation.
//
// Frameworks emit one gradient tensor per layer, in REVERSE layer order
// during back-propagation (§4: "communication can start on the output
// layer's gradients while the other gradients are still being computed").
// How much communication that overlap hides depends on where the parameters
// sit relative to the compute:
//
//   * VGG/AlexNet concentrate ~85-90% of their parameters in the last few
//     fully-connected layers — produced FIRST by backprop, but their transfer
//     dwarfs the remaining backward compute, so most of it is exposed;
//   * ResNet/Inception/GoogLeNet spread parameters across many convolutional
//     layers whose individual tensors are small relative to the compute that
//     follows them, so communication hides well.
//
// synthesize_layers() encodes those architectural shapes so the simulation
// reproduces the paper's per-model speedup ordering from first principles
// (no per-model overlap knob).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perfmodel/model_zoo.hpp"

namespace switchml::framework {

struct Layer {
  std::string name;
  std::uint64_t params;   // gradient elements this layer contributes
  double bwd_share;       // fraction of the iteration's backward compute
};

// Splits spec.parameters over spec.n_tensors layers with the architecture
// family's parameter/compute distribution. The shares sum to 1 and the
// params sum to spec.parameters exactly.
std::vector<Layer> synthesize_layers(const perf::ModelSpec& spec);

} // namespace switchml::framework
