// Event-driven training simulation (§4): iterations of synchronous
// data-parallel SGD where compute (forward + per-layer backward) advances on
// the simulated clock and every layer's gradient tensor enters the
// communication substrate the moment its backward step finishes — so
// compute/communication overlap, per-tensor launch costs, and the tail drain
// after backward all EMERGE from the protocol dynamics instead of being
// closed-form knobs (contrast perf::estimate_training).
//
// Two backends:
//   * SwitchML — per-layer tensors stream through the switch back to back
//     (the Appendix B virtual stream);
//   * Horovod-style ring — tensors accumulate in a fusion buffer (Horovod's
//     64 MB default) and drain one ring all-reduce at a time over the
//     TCP-like fabric, which is how real deployments bound the per-tensor
//     latency of 2(n-1) sequential rounds.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/timeline.hpp"
#include "core/cluster.hpp"
#include "framework/layer_model.hpp"

namespace switchml::framework {

struct TrainingSimConfig {
  int n_workers = 8;
  BitsPerSecond rate = gbps(10);
  int batch = 0;     // 0 = spec default
  int iterations = 4; // the first iteration is warmup and is not measured
  // compute split: backward is roughly twice the forward cost.
  double forward_fraction = 1.0 / 3.0;
  std::int64_t fusion_bytes = 64ll << 20; // Horovod fusion buffer (ring only)
  // Proportional down-scaling of the simulation: gradient sizes, compute
  // times and the fusion buffer all shrink by this factor and the reported
  // iteration time is scaled back up, so bandwidth-driven behaviour is
  // preserved while the event count drops. Fixed per-packet latencies do NOT
  // scale, so small scales slightly overstate per-tensor launch costs.
  double size_scale = 0.25;

  // Observability hooks, so the framework sims go through the same
  // sidecar/timeline path as the cluster benches (fig3/table1):
  //  * timeline_path non-empty => a TimelineRecorder samples the cluster's
  //    registry every timeline_period and writes JSONL (or CSV when the path
  //    ends in ".csv") after the run;
  //  * on_metrics, when set, receives the cluster's registry after the run
  //    completes and before teardown (MetricsSidecar snapshots).
  std::string timeline_path;
  Time timeline_period = msec(1);
  std::function<void(const MetricsRegistry&)> on_metrics;
};

struct TrainingSimResult {
  double images_per_s = 0.0;
  double iteration_ms = 0.0;
  double compute_ms = 0.0;      // pure fwd+bwd time per iteration
  double exposed_comm_ms = 0.0; // iteration_ms - compute_ms
};

// End-to-end iteration timing with SwitchML aggregation.
TrainingSimResult simulate_switchml_training(const perf::ModelSpec& spec,
                                             const TrainingSimConfig& config);

// End-to-end iteration timing with fused ring all-reduce over `profile`'s
// host/transport stack (use core::nccl_tcp / core::gloo_tcp).
TrainingSimResult simulate_ring_training(const perf::ModelSpec& spec,
                                         const TrainingSimConfig& config,
                                         const core::BaselineProfile& profile);

} // namespace switchml::framework
