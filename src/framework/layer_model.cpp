#include "framework/layer_model.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace switchml::framework {

namespace {

bool classifier_heavy(const std::string& name) {
  return name.rfind("vgg", 0) == 0 || name == "alexnet";
}

} // namespace

std::vector<Layer> synthesize_layers(const perf::ModelSpec& spec) {
  const int n = spec.n_tensors;
  if (n < 1) throw std::invalid_argument("synthesize_layers: model has no tensors");
  std::vector<double> param_w(static_cast<std::size_t>(n));
  std::vector<double> bwd_w(static_cast<std::size_t>(n));

  if (classifier_heavy(spec.name) && n >= 6) {
    // Last three layers are the fully-connected classifier holding ~88% of
    // the parameters but only a few percent of the (convolution-dominated)
    // backward compute; early conv layers do the most compute (largest
    // spatial maps) with the fewest parameters.
    for (int i = 0; i < n; ++i) {
      const bool fc = i >= n - 3;
      param_w[static_cast<std::size_t>(i)] = fc ? 0.88 / 3.0 : 0.12 / (n - 3);
      bwd_w[static_cast<std::size_t>(i)] =
          fc ? 0.05 / 3.0 : 0.95 * static_cast<double>(n - i) / 1.0;
    }
  } else {
    // Conv-tower families: parameters grow with depth (later layers are
    // wider); compute is roughly uniform per layer.
    for (int i = 0; i < n; ++i) {
      param_w[static_cast<std::size_t>(i)] = std::pow(static_cast<double>(i + 1), 1.2);
      bwd_w[static_cast<std::size_t>(i)] = 1.0;
    }
  }

  const double param_total = std::accumulate(param_w.begin(), param_w.end(), 0.0);
  const double bwd_total = std::accumulate(bwd_w.begin(), bwd_w.end(), 0.0);

  std::vector<Layer> layers(static_cast<std::size_t>(n));
  std::uint64_t assigned = 0;
  for (int i = 0; i < n; ++i) {
    auto& l = layers[static_cast<std::size_t>(i)];
    l.name = spec.name + ".layer" + std::to_string(i);
    l.bwd_share = bwd_w[static_cast<std::size_t>(i)] / bwd_total;
    l.params = static_cast<std::uint64_t>(
        static_cast<double>(spec.parameters) * param_w[static_cast<std::size_t>(i)] /
        param_total);
    assigned += l.params;
  }
  // Put the rounding remainder in the last layer so totals match exactly.
  layers.back().params += spec.parameters - assigned;
  return layers;
}

} // namespace switchml::framework
