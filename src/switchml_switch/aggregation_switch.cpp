#include "switchml_switch/aggregation_switch.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/attribution.hpp"
#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace switchml::swprog {

namespace {
constexpr std::uint64_t worker_bit(int ver, int wid_local) {
  return 1ull << (ver * 32 + wid_local);
}
} // namespace

AggregationSwitch::AggregationSwitch(sim::Simulation& simulation, net::NodeId id,
                                     std::string name, AggregationConfig config,
                                     SwitchRole role, Time pipeline_latency)
    : L2Switch(simulation, id, std::move(name), pipeline_latency),
      config_(config),
      role_(role),
      pipeline_(config.pipeline_stages) {
  if (role == SwitchRole::Leaf && config.parent_port < 0)
    throw std::invalid_argument("AggregationSwitch: leaf role requires parent_port");
  if (!config.mtu_emulation && config.elems_per_packet > config.hw_elems_limit)
    throw std::invalid_argument(
        "AggregationSwitch: elems_per_packet exceeds the hardware per-packet limit; "
        "enable mtu_emulation to model the paper's enhanced baseline (§5.5)");

  JobParams job0;
  job0.n_workers = config.n_workers;
  job0.pool_size = config.pool_size;
  job0.wid_base = config.wid_base;
  job0.multicast_group = config.multicast_group;
  if (!admit_job(0, job0))
    throw std::invalid_argument("AggregationSwitch: job 0 does not fit the SRAM budget");

  if (auto* reg = MetricsRegistry::current()) {
    const std::string p = this->name() + ".";
    reg->add_counter(p + "updates_received", [this] { return counters_.updates_received; });
    reg->add_counter(p + "duplicate_updates", [this] { return counters_.duplicate_updates; });
    reg->add_counter(p + "completions", [this] { return counters_.completions; });
    reg->add_counter(p + "results_multicast", [this] { return counters_.results_multicast; });
    reg->add_counter(p + "unicast_replies", [this] { return counters_.unicast_replies; });
    reg->add_counter(p + "upstream_partials", [this] { return counters_.upstream_partials; });
    reg->add_counter(p + "results_from_parent", [this] { return counters_.results_from_parent; });
    reg->add_counter(p + "unknown_job_drops", [this] { return counters_.unknown_job_drops; });
    reg->add_counter(p + "checksum_drops", [this] { return counters_.checksum_drops; });
    reg->add_counter(p + "restarts", [this] { return counters_.restarts; });
    reg->add_counter(p + "recovery.sync_replies", [this] { return counters_.sync_replies; });
    reg->add_counter(p + "recovery.rescues_applied",
                     [this] { return counters_.rescues_applied; });
    reg->add_counter(p + "recovery.dead_drops", [this] { return counters_.dead_drops; });
    reg->add_gauge(p + "epoch", [this] { return static_cast<std::int64_t>(epoch_); });
    reg->add_gauge(p + "sram_used_bytes",
                   [this] { return static_cast<std::int64_t>(register_bytes()); });
    reg->add_histogram(p + "slot_dwell_ns", &slot_dwell_ns_);
    reg->add_histogram(p + "version_flip_interval_ns", &flip_interval_ns_);
  }
}

std::size_t AggregationSwitch::job_register_bytes(const JobParams& params) const {
  const std::size_t k_agg = config_.timing_only
                                ? 0
                                : std::min<std::size_t>(config_.elems_per_packet,
                                                        config_.hw_elems_limit);
  if (config_.lossless) {
    // Algorithm 1: one 32-bit counter + one 32-bit value slot per element —
    // no shadow copies, no bitmaps (§3.5's memory-cost discussion).
    return (1 + k_agg) * params.pool_size * sizeof(std::uint32_t);
  }
  return (2 + k_agg) * params.pool_size * sizeof(std::uint64_t);
}

std::size_t AggregationSwitch::register_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, state] : jobs_) total += job_register_bytes(state.params);
  return total;
}

std::size_t AggregationSwitch::sram_free_bytes() const {
  const std::size_t used = register_bytes();
  return used >= config_.sram_budget_bytes ? 0 : config_.sram_budget_bytes - used;
}

bool AggregationSwitch::admit_job(std::uint8_t job, const JobParams& params) {
  if (jobs_.count(job) != 0) return false;
  if (params.n_workers < 1 || params.n_workers > 32)
    throw std::invalid_argument(
        "AggregationSwitch: a single pipeline supports 1..32 directly-attached workers");
  if (params.pool_size == 0)
    throw std::invalid_argument("AggregationSwitch: pool_size must be positive");
  if (job_register_bytes(params) > sram_free_bytes()) return false;

  JobState state;
  state.params = params;
  state.claim_ver.assign(params.pool_size, 255);
  state.claim_at.assign(params.pool_size, -1);
  state.flip_at.assign(params.pool_size, -1);
  state.claim_off[0].assign(params.pool_size, net::kNoClaimOff);
  state.claim_off[1].assign(params.pool_size, net::kNoClaimOff);
  state.rescue_seen.assign(params.pool_size, 0);
  const std::string prefix = "job" + std::to_string(job) + ".";
  if (!config_.lossless)
    state.seen = std::make_unique<dp::RegisterArray>(pipeline_, prefix + "seen", 0,
                                                     params.pool_size);
  state.count = std::make_unique<dp::RegisterArray>(pipeline_, prefix + "count", 1,
                                                    params.pool_size);
  if (!config_.timing_only) {
    const std::size_t k_agg =
        std::min<std::size_t>(config_.elems_per_packet, config_.hw_elems_limit);
    const int value_stages = config_.pipeline_stages - 2;
    if (value_stages < 1)
      throw std::invalid_argument("AggregationSwitch: pipeline too short for value registers");
    state.pool.reserve(k_agg);
    for (std::size_t j = 0; j < k_agg; ++j) {
      // Spread the k value registers across the remaining stages,
      // non-decreasing in j so pipeline ordering holds.
      const int stage = 2 + static_cast<int>(j * static_cast<std::size_t>(value_stages) / k_agg);
      state.pool.push_back(std::make_unique<dp::RegisterArray>(
          pipeline_, prefix + "pool_" + std::to_string(j), stage, params.pool_size));
    }
  }
  jobs_.emplace(job, std::move(state));
  return true;
}

void AggregationSwitch::evict_job(std::uint8_t job) { jobs_.erase(job); }

void AggregationSwitch::restart() {
  for (auto& [id, job] : jobs_) {
    if (job.seen) job.seen->control_plane_fill(0);
    job.count->control_plane_fill(0);
    for (auto& arr : job.pool) arr->control_plane_fill(0);
    std::fill(job.claim_ver.begin(), job.claim_ver.end(), std::uint8_t{255});
    std::fill(job.claim_at.begin(), job.claim_at.end(), Time{-1});
    std::fill(job.flip_at.begin(), job.flip_at.end(), Time{-1});
    for (auto& offs : job.claim_off)
      std::fill(offs.begin(), offs.end(), net::kNoClaimOff);
    std::fill(job.rescue_seen.begin(), job.rescue_seen.end(), 0ull);
    job.active_phases = 0;
    job.int_rx.clear(); // telemetry echo state lives in the wiped dataplane
  }
  // The reloaded program comes up under a new incarnation; every result and
  // sync response from here on carries it, which is how workers learn their
  // pre-restart in-flight contributions are gone.
  ++epoch_;
  ++counters_.restarts;
  attr::sweep_switch(id(), attr::Component::kRecovery, sim_.now());
  trace::emit(trace::kCatFault, sim_.now(), id(), "switch_restart",
              {"jobs", static_cast<std::int64_t>(jobs_.size())},
              {"epoch", static_cast<std::int64_t>(epoch_)});
}

void AggregationSwitch::kill() {
  dead_ = true;
  trace::emit(trace::kCatFault, sim_.now(), id(), "switch_kill",
              {"epoch", static_cast<std::int64_t>(epoch_)});
}

const quant::Fp16Table& AggregationSwitch::fp16_table() {
  if (!fp16_table_) fp16_table_ = std::make_unique<quant::Fp16Table>(config_.fp16_frac_bits);
  return *fp16_table_;
}

int AggregationSwitch::local_worker_index(const JobState& job, std::uint16_t wid) {
  const int local = static_cast<int>(wid) - static_cast<int>(job.params.wid_base);
  if (local < 0 || local >= job.params.n_workers)
    throw std::runtime_error("AggregationSwitch: update from unknown worker id " +
                             std::to_string(wid));
  return local;
}

void AggregationSwitch::receive(net::Packet&& p, int port) {
  if (dead_) {
    // A killed switch is silent: nothing is aggregated, forwarded, or
    // answered. Workers detect the black hole through their retry budgets.
    ++counters_.dead_drops;
    if (p.kind == net::PacketKind::SmlUpdate)
      attr::transition_matching(p.src, p.idx, p.off, attr::Component::kRecovery, sim_.now());
    return;
  }
  if (p.kind == net::PacketKind::SmlUpdate) {
    handle_update(std::move(p), port);
    return;
  }
  if (p.kind == net::PacketKind::SmlSyncQuery) {
    handle_sync_query(p);
    return;
  }
  if (p.kind == net::PacketKind::SmlRescue) {
    handle_rescue(std::move(p));
    return;
  }
  if (role_ == SwitchRole::Leaf && p.kind == net::PacketKind::SmlResult &&
      port == config_.parent_port) {
    // Root result arriving at a leaf: relay to our workers. Workers ignore
    // duplicates by offset matching, so re-multicasting a retransmitted root
    // result is safe. The epoch is rewritten to OUR incarnation: a worker's
    // epoch domain is its directly-attached switch, not the root.
    ++counters_.results_from_parent;
    ++counters_.results_multicast;
    auto it = jobs_.find(p.job);
    const std::uint32_t group =
        it != jobs_.end() ? it->second.params.multicast_group : config_.multicast_group;
    p.epoch = epoch_;
    p.seal();
    if (inttel::kCompiledIn && p.int_mode != inttel::kModeOff && it != jobs_.end()) {
      // Like the epoch, a worker's telemetry domain is its directly-attached
      // switch: replace the root-side stack with each worker's own uplink
      // echo plus THIS switch's record (now - uplink arrival spans the whole
      // root round trip, so hop sums stay conservative).
      multicast_int_echo(it->second, p);
    } else {
      multicast(group, p);
    }
    return;
  }
  L2Switch::receive(std::move(p), port); // ordinary forwarding for other traffic
}

void AggregationSwitch::emit_result(const JobState& job, const net::Packet& update,
                                    std::vector<std::int32_t>&& values) {
  net::Packet result;
  result.kind = net::PacketKind::SmlResult;
  result.src = id();
  result.job = update.job;
  result.wid = update.wid;
  result.ver = update.ver;
  result.idx = update.idx;
  result.off = update.off;
  result.epoch = epoch_;
  result.elem_count = update.elem_count;
  result.elem_bytes = update.elem_bytes;
  result.int_mode = update.int_mode; // telemetry rides the whole reduction path
  result.transport = update.transport; // results framed like the updates
  result.values = std::move(values);
  if (role_ == SwitchRole::Leaf) {
    // Completion at a leaf produces ONE partial-aggregate update packet for
    // the parent, with this leaf acting as worker `leaf_wid` of the parent.
    net::Packet up = std::move(result);
    up.kind = net::PacketKind::SmlUpdate;
    up.wid = config_.leaf_wid;
    up.seal();
    send_upstream(std::move(up));
  } else {
    result.seal();
    ++counters_.results_multicast;
    if (inttel::kCompiledIn && result.int_mode != inttel::kModeOff) {
      multicast_int_echo(job, result);
    } else {
      multicast(job.params.multicast_group, result);
    }
  }
}

void AggregationSwitch::send_upstream(net::Packet&& p) {
  net::Link* up = link_at(config_.parent_port);
  if (up == nullptr) throw std::logic_error(name() + ": leaf has no parent link");
  ++counters_.upstream_partials;
  p.src = id();
  p.dst = up->peer_of(*this).id();
  up->send_from(*this, std::move(p), sim_.now() + pipeline_latency());
}

void AggregationSwitch::handle_update(net::Packet&& p, int /*in_port*/) {
  ++counters_.updates_received;
  if (!p.verify()) {
    // §3.4: the checksum discards corrupted updates; worker-side timers
    // retransmit them.
    ++counters_.checksum_drops;
    trace::emit(trace::kCatSwitch, sim_.now(), id(), "checksum_drop", {"slot", p.idx},
                {"wid", p.wid});
    attr::transition_matching(p.src, p.idx, p.off, attr::Component::kRtoStall, sim_.now());
    return;
  }
  auto jit = jobs_.find(p.job);
  if (jit == jobs_.end()) {
    ++counters_.unknown_job_drops;
    trace::emit(trace::kCatSwitch, sim_.now(), id(), "unknown_job_drop", {"job", p.job});
    return;
  }
  JobState& job = jit->second;
  pipeline_.begin_packet();

  const int ver = p.ver & 1;
  const std::uint32_t idx = p.idx;
  if (idx >= job.params.pool_size)
    throw std::runtime_error(name() + ": slot index out of range");
  const int wid_local = local_worker_index(job, p.wid);
  const auto n = static_cast<std::uint32_t>(job.params.n_workers);
  if (inttel::kCompiledIn && p.int_mode != inttel::kModeOff)
    store_int_contribution(job, idx, wid_local, p);

  // --- Algorithm 3, lines 5-7: one access sets our bit for this version and
  // clears our bit for the alternate version. (Algorithm 1 / lossless mode
  // has no bitmap: the network guarantees no duplicates ever arrive.)
  bool already_seen = false;
  if (!config_.lossless) {
    const std::uint64_t seen_before = job.seen->rmw(idx, [ver, wid_local](std::uint64_t w) {
      w |= worker_bit(ver, wid_local);
      w &= ~worker_bit(1 - ver, wid_local);
      return w;
    });
    already_seen = !config_.ablate_seen_bitmap &&
                   (seen_before & worker_bit(ver, wid_local)) != 0;
  }

  // The ASIC aggregates at most hw_elems_limit elements; with mtu_emulation
  // the remaining payload is carried through unmodified (§5.5).
  const std::size_t k_agg = std::min<std::size_t>(
      {static_cast<std::size_t>(p.elem_count), static_cast<std::size_t>(config_.hw_elems_limit),
       job.pool.size()});

  if (!already_seen) {
    // --- Algorithm 3, line 8: count[ver, idx] = (count + 1) % n.
    const std::uint64_t count_before = job.count->rmw(idx, [ver, n](std::uint64_t w) {
      const std::uint32_t c = (static_cast<std::uint32_t>(dp::half_get(w, ver)) + 1) % n;
      return dp::half_set(w, ver, c);
    });
    const std::uint32_t new_count =
        (static_cast<std::uint32_t>(dp::half_get(count_before, ver)) + 1) % n;
    // Line 9: the first contribution of a phase OVERWRITES the slot, which is
    // how a slot is recycled without an explicit reset. (With n == 1 every
    // packet is simultaneously first and complete.)
    const bool first = new_count == 1 || n == 1;
    const bool complete = new_count == 0;

    if (first) {
      ++job.active_phases;
      // Latch the offset this version is now aggregating (read by sync
      // responses) and reset the version's rescue dedup bits: a fresh claim
      // starts a fresh phase, so older rescues must not be confused with it.
      job.claim_off[ver][idx] = p.off;
      job.rescue_seen[idx] &= ~(0xFFFFFFFFull << (ver * 32));
      // Telemetry-only generation tracking: a claim under the other pool
      // version means this slot just turned over (Algorithm 4's ver flip).
      const std::uint8_t prev_ver = job.claim_ver[idx];
      job.claim_ver[idx] = static_cast<std::uint8_t>(ver);
      job.claim_at[idx] = sim_.now();
      if (prev_ver != 255 && prev_ver != static_cast<std::uint8_t>(ver)) {
        if (job.flip_at[idx] >= 0) flip_interval_ns_.record(sim_.now() - job.flip_at[idx]);
        job.flip_at[idx] = sim_.now();
        trace::emit(trace::kCatSwitch, sim_.now(), id(), "version_flip", {"slot", idx},
                    {"ver", ver});
      }
      trace::emit(trace::kCatSwitch, sim_.now(), id(), "claim", {"slot", idx},
                  {"wid", wid_local}, {"ver", ver});
    } else {
      trace::emit(trace::kCatSwitch, sim_.now(), id(), "aggregate", {"slot", idx},
                  {"wid", wid_local}, {"count", new_count});
    }
    attr::contribute(id(), p.job, static_cast<std::uint32_t>(ver), idx, p.src, p.off, sim_.now());
    trace::emit_flow(sim_.now(), id(), "chunk", trace::chunk_flow_id(p.src, p.off),
                     trace::FlowPhase::kStep);

    std::vector<std::int32_t> result_values;
    if (!config_.timing_only && !p.values.empty()) {
      // §3.7 16-bit path: ingress tables turn binary16 wire values into
      // fixed point before aggregation.
      const bool fp16 = p.elem_bytes == 2;
      const quant::Fp16Table* table = fp16 ? &fp16_table() : nullptr;
      if (complete) result_values.resize(p.values.size());
      for (std::size_t j = 0; j < k_agg; ++j) {
        const std::int32_t x =
            fp16 ? table->to_fixed(static_cast<quant::half>(static_cast<std::uint32_t>(p.values[j])))
                 : p.values[j];
        std::int32_t updated = 0;
        job.pool[j]->rmw(idx, [&](std::uint64_t w) {
          // Two's-complement add with wraparound, exactly as the switch ALU
          // behaves on overflow (Appendix C relies on f keeping sums in range).
          const std::int32_t old = dp::half_as_i32(w, ver);
          updated = first ? x
                          : static_cast<std::int32_t>(static_cast<std::uint32_t>(old) +
                                                      static_cast<std::uint32_t>(x));
          return dp::half_store_i32(w, ver, updated);
        });
        // Egress: fixed point back to binary16 for the 16-bit wire format.
        if (complete) result_values[j] = fp16 ? table->to_half(updated) : updated;
      }
      // mtu_emulation: elements beyond the ASIC limit pass through as-is
      // (timing experiments only — the values are not actually aggregated).
      if (complete)
        for (std::size_t j = k_agg; j < p.values.size(); ++j) result_values[j] = p.values[j];
    }

    if (complete) {
      ++counters_.completions;
      if (job.active_phases > 0) --job.active_phases;
      if (job.claim_at[idx] >= 0) slot_dwell_ns_.record(sim_.now() - job.claim_at[idx]);
      trace::emit(trace::kCatSwitch, sim_.now(), id(), "complete", {"slot", idx}, {"ver", ver},
                  {"off", static_cast<std::int64_t>(p.off)});
      attr::complete_slot(id(), p.job, static_cast<std::uint32_t>(ver), idx, p.off, sim_.now());
      emit_result(job, p, std::move(result_values));
    }
    // else: drop p (the update is absorbed into the slot)
  } else {
    ++counters_.duplicate_updates;
    trace::emit(trace::kCatSwitch, sim_.now(), id(), "dup_update", {"slot", idx},
                {"wid", wid_local}, {"ver", ver});
    if (config_.ablate_shadow_copy) {
      // Ablation: no stored result to serve; the worker can only wait for the
      // (re)multicast, so its chunk re-enters the slot-wait phase.
      attr::transition_matching(p.src, p.idx, p.off, attr::Component::kSwitchWait, sim_.now());
      return;
    }
    // --- Algorithm 3, lines 19-23: duplicate. If the slot already completed
    // (count wrapped to 0), answer from the shadow copy; otherwise drop.
    const std::uint32_t count_now =
        static_cast<std::uint32_t>(dp::half_get(job.count->read(idx), ver));
    if (count_now == 0) {
      trace::emit(trace::kCatSwitch, sim_.now(), id(), "shadow_reply", {"slot", idx},
                  {"wid", wid_local}, {"ver", ver});
      attr::transition_matching(p.src, p.idx, p.off, attr::Component::kSwitchReady, sim_.now());
      std::vector<std::int32_t> result_values;
      if (!config_.timing_only && !p.values.empty()) {
        const bool fp16 = p.elem_bytes == 2;
        const quant::Fp16Table* table = fp16 ? &fp16_table() : nullptr;
        result_values.resize(p.values.size());
        for (std::size_t j = 0; j < k_agg; ++j) {
          const std::int32_t stored = dp::half_as_i32(job.pool[j]->read(idx), ver);
          result_values[j] = fp16 ? table->to_half(stored) : stored;
        }
        for (std::size_t j = k_agg; j < p.values.size(); ++j) result_values[j] = p.values[j];
      }
      if (role_ == SwitchRole::Leaf) {
        // §6: convert the worker's retransmission into an upstream
        // retransmission of our partial aggregate; the parent will answer
        // with the (re)multicast of the final result.
        net::Packet up = std::move(p);
        up.kind = net::PacketKind::SmlUpdate;
        up.wid = config_.leaf_wid;
        up.values = std::move(result_values);
        up.seal();
        send_upstream(std::move(up));
      } else {
        ++counters_.unicast_replies;
        net::Packet reply;
        reply.kind = net::PacketKind::SmlResult;
        reply.src = id();
        reply.dst = p.src;
        reply.job = p.job;
        reply.wid = p.wid;
        reply.ver = p.ver;
        reply.idx = p.idx;
        reply.off = p.off;
        reply.epoch = epoch_;
        reply.elem_count = p.elem_count;
        reply.elem_bytes = p.elem_bytes;
        reply.int_mode = p.int_mode;
        reply.transport = p.transport;
        reply.values = std::move(result_values);
        if (inttel::kCompiledIn && reply.int_mode != inttel::kModeOff)
          attach_int_echo(job, reply, wid_local);
        reply.seal();
        forward(std::move(reply));
      }
    } else {
      // Still aggregating: the duplicate is absorbed, the chunk keeps waiting
      // for the remaining workers.
      attr::transition_matching(p.src, p.idx, p.off, attr::Component::kSwitchWait, sim_.now());
    }
  }
}

void AggregationSwitch::handle_sync_query(const net::Packet& p) {
  if (!p.verify()) {
    ++counters_.checksum_drops;
    return;
  }
  auto jit = jobs_.find(p.job);
  if (jit == jobs_.end()) {
    ++counters_.unknown_job_drops;
    return;
  }
  JobState& job = jit->second;
  if (p.idx >= job.params.pool_size)
    throw std::runtime_error(name() + ": sync query slot index out of range");
  const int wid_local = local_worker_index(job, p.wid);
  pipeline_.begin_packet();

  // Control-plane read of the slot's registers: per-version counters, the
  // offsets currently claimed, and each worker's own seen bits. The state
  // snapshot is ANNOUNCED to the whole job (traffic-manager replication of
  // one probe reply, like a result multicast): a stranded worker's peers may
  // have already retired the slot after consuming its final result, and only
  // hear about the re-claimed phase — and volunteer the rescue — if the
  // announcement reaches them too.
  net::Packet reply;
  reply.kind = net::PacketKind::SmlSyncResponse;
  reply.src = id();
  reply.job = p.job;
  reply.ver = p.ver;
  reply.idx = p.idx;
  reply.off = p.off; // echoed so the worker can match it to the stuck phase
  reply.epoch = epoch_;
  reply.transport = p.transport;
  // Register reads in pipeline-stage order: seen (stage 0) before count
  // (stage 1), exactly as a real probe packet would traverse them.
  std::uint64_t seen = 0;
  if (job.seen) seen = job.seen->read(p.idx);
  const std::uint64_t counts = job.count->read(p.idx);
  reply.sync_count0 = static_cast<std::uint32_t>(dp::half_get(counts, 0));
  reply.sync_count1 = static_cast<std::uint32_t>(dp::half_get(counts, 1));
  reply.sync_off0 = job.claim_off[0][p.idx];
  reply.sync_off1 = job.claim_off[1][p.idx];
  ++counters_.sync_replies;
  trace::emit(trace::kCatFault, sim_.now(), id(), "slot_sync", {"slot", p.idx},
              {"wid", wid_local}, {"epoch", static_cast<std::int64_t>(epoch_)});
  const std::vector<int>* ports = multicast_ports(job.params.multicast_group);
  if (ports == nullptr) { // no replication group (unit fixtures): unicast
    reply.dst = p.src;
    reply.wid = p.wid;
    if (job.seen)
      reply.sync_seen =
          static_cast<std::uint8_t>(((seen >> wid_local) & 1) |
                                    (((seen >> (32 + wid_local)) & 1) << 1));
    reply.seal();
    forward(std::move(reply));
    return;
  }
  const Time ready = sim_.now() + pipeline_latency();
  for (std::size_t i = 0; i < ports->size(); ++i) {
    net::Link* link = link_at((*ports)[i]);
    net::Packet copy = reply;
    copy.dst = link->peer_of(*this).id();
    copy.wid = static_cast<std::uint16_t>(job.params.wid_base + i);
    // Each copy carries the RECEIVER's seen bits (bit 0 = version 0): the
    // replication engine rewrites the two bits per egress port.
    copy.sync_seen = static_cast<std::uint8_t>(((seen >> i) & 1) | (((seen >> (32 + i)) & 1) << 1));
    copy.seal();
    link->send_from(*this, std::move(copy), ready);
  }
}

void AggregationSwitch::handle_rescue(net::Packet&& p) {
  if (!p.verify()) {
    ++counters_.checksum_drops;
    return;
  }
  auto jit = jobs_.find(p.job);
  if (jit == jobs_.end()) {
    ++counters_.unknown_job_drops;
    return;
  }
  JobState& job = jit->second;
  if (config_.lossless) {
    ++counters_.rescues_ignored;
    return;
  }
  const int ver = p.ver & 1;
  const std::uint32_t idx = p.idx;
  if (idx >= job.params.pool_size)
    throw std::runtime_error(name() + ": rescue slot index out of range");
  const int wid_local = local_worker_index(job, p.wid);
  const auto n = static_cast<std::uint32_t>(job.params.n_workers);
  if (inttel::kCompiledIn && p.int_mode != inttel::kModeOff)
    store_int_contribution(job, idx, wid_local, p);

  pipeline_.begin_packet();

  // A rescue is valid only against the version's CURRENT, still-incomplete
  // phase; anything else is stale evidence from before the state moved on.
  // The rescue bitmap makes retried rescues idempotent. The dedup bits and
  // claimed offsets are control-plane vectors, so the count register is
  // touched exactly once (a conditional rmw), respecting the one-access-per-
  // packet dataplane constraint.
  const std::uint64_t bit = worker_bit(ver, wid_local);
  if ((job.rescue_seen[idx] & bit) != 0 || job.claim_off[ver][idx] != p.off) {
    ++counters_.rescues_ignored;
    trace::emit(trace::kCatFault, sim_.now(), id(), "rescue_ignore", {"slot", idx},
                {"wid", wid_local}, {"ver", ver});
    return;
  }
  bool applied = false;
  std::uint32_t new_count = 0;
  job.count->rmw(idx, [&](std::uint64_t w) {
    const auto c = static_cast<std::uint32_t>(dp::half_get(w, ver));
    if (c == 0) return w; // version idle or already complete: stale rescue
    applied = true;
    new_count = (c + 1) % n;
    return dp::half_set(w, ver, new_count);
  });
  if (!applied) {
    ++counters_.rescues_ignored;
    trace::emit(trace::kCatFault, sim_.now(), id(), "rescue_ignore", {"slot", idx},
                {"wid", wid_local}, {"ver", ver});
    return;
  }
  job.rescue_seen[idx] |= bit;
  ++counters_.rescues_applied;
  trace::emit(trace::kCatFault, sim_.now(), id(), "rescue_apply", {"slot", idx},
              {"wid", wid_local}, {"off", static_cast<std::int64_t>(p.off)});

  // Aggregate like a non-first contribution, WITHOUT touching the seen
  // bitmap: the rescuer's data-plane bits still describe its current-phase
  // contribution at the other version, and must stay that way.
  const bool complete = new_count == 0;

  const std::size_t k_agg = std::min<std::size_t>(
      {static_cast<std::size_t>(p.elem_count), static_cast<std::size_t>(config_.hw_elems_limit),
       job.pool.size()});
  std::vector<std::int32_t> result_values;
  if (!config_.timing_only && !p.values.empty()) {
    const bool fp16 = p.elem_bytes == 2;
    const quant::Fp16Table* table = fp16 ? &fp16_table() : nullptr;
    if (complete) result_values.resize(p.values.size());
    for (std::size_t j = 0; j < k_agg; ++j) {
      const std::int32_t x =
          fp16 ? table->to_fixed(static_cast<quant::half>(static_cast<std::uint32_t>(p.values[j])))
               : p.values[j];
      std::int32_t updated = 0;
      job.pool[j]->rmw(idx, [&](std::uint64_t w) {
        const std::int32_t old = dp::half_as_i32(w, ver);
        updated = static_cast<std::int32_t>(static_cast<std::uint32_t>(old) +
                                            static_cast<std::uint32_t>(x));
        return dp::half_store_i32(w, ver, updated);
      });
      if (complete) result_values[j] = fp16 ? table->to_half(updated) : updated;
    }
    if (complete)
      for (std::size_t j = k_agg; j < p.values.size(); ++j) result_values[j] = p.values[j];
  }

  if (complete) {
    ++counters_.completions;
    if (job.active_phases > 0) --job.active_phases;
    if (job.claim_at[idx] >= 0) slot_dwell_ns_.record(sim_.now() - job.claim_at[idx]);
    trace::emit(trace::kCatSwitch, sim_.now(), id(), "complete", {"slot", idx}, {"ver", ver},
                {"off", static_cast<std::int64_t>(p.off)});
    attr::complete_slot(id(), p.job, static_cast<std::uint32_t>(ver), idx, p.off, sim_.now());
    emit_result(job, p, std::move(result_values));
  }
}

void AggregationSwitch::store_int_contribution(JobState& job, std::uint32_t idx, int wid_local,
                                               const net::Packet& p) {
  if constexpr (!inttel::kCompiledIn) {
    (void)job;
    (void)idx;
    (void)wid_local;
    (void)p;
    return;
  }
  if (job.int_rx.empty())
    job.int_rx.resize(static_cast<std::size_t>(job.params.pool_size) *
                      static_cast<std::size_t>(job.params.n_workers));
  auto& c = job.int_rx[static_cast<std::size_t>(idx) *
                           static_cast<std::size_t>(job.params.n_workers) +
                       static_cast<std::size_t>(wid_local)];
  c.at = sim_.now();
  c.mode = p.int_mode;
  c.stack = p.int_stack;
}

inttel::IntHopRecord AggregationSwitch::int_switch_record(const JobState& job, std::uint32_t dst,
                                                          Time since) const {
  inttel::IntHopRecord rec;
  rec.hop_id = id();
  rec.next_hop = dst;
  const Time lat = (since >= 0 ? sim_.now() - since : Time{0}) + pipeline_latency();
  rec.hop_latency_ns =
      lat > 0xFFFFFFFFll ? 0xFFFFFFFFu : static_cast<std::uint32_t>(lat < 0 ? 0 : lat);
  rec.flags = inttel::kHopFlagSwitch;
  rec.drops = counters_.checksum_drops > 0xFFFFFFFFull
                  ? 0xFFFFFFFFu
                  : static_cast<std::uint32_t>(counters_.checksum_drops);
  rec.pool_occupancy = job.active_phases;
  rec.fanin = static_cast<std::uint16_t>(job.params.n_workers);
  rec.epoch = static_cast<std::uint16_t>(epoch_);
  return rec;
}

void AggregationSwitch::attach_int_echo(const JobState& job, net::Packet& copy, int wid_local) {
  if constexpr (!inttel::kCompiledIn) {
    (void)job;
    (void)copy;
    (void)wid_local;
    return;
  }
  Time since = -1;
  copy.int_stack.clear();
  if (!job.int_rx.empty() && copy.idx < job.params.pool_size) {
    const auto& c = job.int_rx[static_cast<std::size_t>(copy.idx) *
                                   static_cast<std::size_t>(job.params.n_workers) +
                               static_cast<std::size_t>(wid_local)];
    if (c.at >= 0) {
      copy.int_stack = c.stack;
      since = c.at;
    }
  }
  inttel::append_record(copy.int_stack, int_switch_record(job, copy.dst, since));
}

void AggregationSwitch::multicast_int_echo(const JobState& job, const net::Packet& p) {
  const std::vector<int>* ports = multicast_ports(job.params.multicast_group);
  if (ports == nullptr) {
    multicast(job.params.multicast_group, p); // unit fixtures: same diagnostics
    return;
  }
  const Time ready = sim_.now() + pipeline_latency();
  for (std::size_t i = 0; i < ports->size(); ++i) {
    net::Link* link = link_at((*ports)[i]);
    net::Packet copy = p;
    copy.dst = link->peer_of(*this).id();
    attach_int_echo(job, copy, static_cast<int>(i));
    link->send_from(*this, std::move(copy), ready);
  }
}

} // namespace switchml::swprog
