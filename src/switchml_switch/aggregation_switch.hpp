// The SwitchML switch program: streaming in-network aggregation with packet
// loss recovery, expressed against the dataplane register model.
//
// This is a faithful implementation of the paper's Algorithm 3 (which
// degenerates to Algorithm 1 when no losses occur):
//
//  * a pool of s aggregation slots, each aggregating a vector of k integers;
//  * TWO versions of every slot (active + shadow copy) living in the two
//    32-bit halves of 64-bit registers, selected by the packet's single-bit
//    `ver` field;
//  * a per-slot `seen` bitmap (one bit per worker per version) so duplicate
//    transmissions are ignored, with the alternate version's bit cleared by
//    the same single register access;
//  * a per-slot mod-n counter; the count wrapping to 0 means the slot is
//    complete, upon which the traffic manager multicasts the result and the
//    slot is immediately reusable (the completed value stays behind as the
//    shadow copy until the next phase overwrites it);
//  * retransmissions of already-aggregated updates for a COMPLETE slot are
//    answered with a unicast copy of the result read from the shadow copy.
//
// Multi-tenancy (§6): every job gets its own pool of aggregators, admitted
// by the control plane against the dataplane SRAM budget. Packets select
// their job's pool with the `job` header field.
//
// The same class implements the paper's §6 hierarchical composition: a
// switch configured as a LEAF forwards each completed partial aggregate
// upstream as a single update packet (acting as one "worker" of its parent),
// relays parent results downward as a multicast, and converts worker
// retransmissions into upstream retransmissions so a loss anywhere in the
// tree is always repaired.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/histogram.hpp"
#include "dataplane/pipeline.hpp"
#include "net/l2switch.hpp"
#include "quant/float16.hpp"

namespace switchml::swprog {

enum class SwitchRole : std::uint8_t {
  Standalone, // single-rack deployment: completion => multicast to workers
  Leaf,       // hierarchical: completion => one partial-aggregate packet upstream
  Root,       // hierarchical top: aggregates leaves, multicasts down to leaves
};

// Per-job admission parameters (§6 multi-tenancy).
struct JobParams {
  int n_workers = 8;             // contributors per slot (workers, or leaves at the root)
  std::uint32_t pool_size = 128; // s
  std::uint16_t wid_base = 0;    // first worker id of this job
  std::uint32_t multicast_group = 1; // downstream replication group
};

struct AggregationConfig {
  int n_workers = 8;
  std::uint32_t pool_size = 128;
  std::uint32_t elems_per_packet = net::kDefaultElemsPerPacket; // k
  std::uint16_t wid_base = 0;
  bool timing_only = false;      // skip value registers (protocol state still exact)
  std::uint32_t hw_elems_limit = 32;  // elements the ASIC can aggregate per packet (§3.4)
  bool mtu_emulation = false;    // §5.5: aggregate first hw_elems_limit, pass the rest through
  int pipeline_stages = 12;
  // §3.7 16-bit wire format: packets with elem_bytes == 2 carry raw binary16
  // patterns; the switch converts them to fixed point with `fp16_frac_bits`
  // fractional bits via lookup tables at ingress and back at egress.
  int fp16_frac_bits = 12;
  std::uint32_t multicast_group = 1;
  // Dataplane SRAM available for aggregation state; admission control
  // rejects jobs that would exceed it (§6: "an admission mechanism would be
  // needed to control the assignment of jobs to pools").
  std::size_t sram_budget_bytes = 4 * kMiB;
  // Leaf-only:
  int parent_port = -1;
  std::uint16_t leaf_wid = 0; // this switch's worker id at its parent

  // Ablation switches (bench/ablation_protocol): disable the two pieces of
  // loss-recovery state Algorithm 3 adds over Algorithm 1, to demonstrate
  // why each is necessary.
  bool ablate_shadow_copy = false; // completed-slot retransmissions are dropped
  bool ablate_seen_bitmap = false; // duplicates re-aggregate (Algorithm 1 behavior)

  // §3.2: "a SwitchML instance running in a lossless network such as
  // Infiniband or lossless RoCE" — the literal Algorithm 1: single pool
  // version, no seen bitmaps, no shadow copies, (paired with workers that
  // run Algorithm 2: no retransmission timers). Uses roughly half the
  // dataplane SRAM of the loss-tolerant program.
  bool lossless = false;
};

class AggregationSwitch : public net::L2Switch {
public:
  AggregationSwitch(sim::Simulation& simulation, net::NodeId id, std::string name,
                    AggregationConfig config, SwitchRole role = SwitchRole::Standalone,
                    Time pipeline_latency = nsec(400));

  void receive(net::Packet&& p, int port) override;

  // --- control plane: job admission (§6 multi-tenancy) ----------------------
  // Returns false (and admits nothing) if the job's registers would not fit
  // in the SRAM budget or the id is taken. Job 0 is admitted at construction
  // from `config`.
  bool admit_job(std::uint8_t job, const JobParams& params);
  void evict_job(std::uint8_t job);

  // Fault injection: a switch restart that wipes the dataplane aggregation
  // state mid-run — every job's seen bitmaps, mod-n counters, and value pool
  // are reset out-of-band (control_plane_fill), as if the program was just
  // reloaded. In-flight packets are unaffected. Recovery rides the workers'
  // retransmission timers re-driving the wiped slots, plus the epoch/resync
  // protocol (SmlSyncQuery/SmlSyncResponse/SmlRescue) for the stranding race
  // where a restart destroys the shadow copy of a result that was
  // concurrently lost: the restart bumps `epoch()`, stamped on every emitted
  // result, and stranded workers learn the slot's post-wipe state through
  // sync queries and re-contribute the missing phase with rescue packets.
  void restart();

  // Fault injection: permanent switch death (SwitchKillSpec). A killed
  // switch drops every packet from now on; workers detect the silence via
  // their retry budgets and the job degrades to the streaming-PS fallback.
  void kill();
  [[nodiscard]] bool dead() const { return dead_; }

  // Monotonically increasing dataplane incarnation, bumped by restart().
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] bool has_job(std::uint8_t job) const { return jobs_.count(job) != 0; }
  [[nodiscard]] std::size_t jobs_admitted() const { return jobs_.size(); }
  [[nodiscard]] std::size_t sram_free_bytes() const;

  struct Counters {
    std::uint64_t updates_received = 0;
    std::uint64_t duplicate_updates = 0;   // ignored via the seen bitmap
    std::uint64_t completions = 0;         // slots that finished aggregation
    std::uint64_t results_multicast = 0;   // packets replicated downstream
    std::uint64_t unicast_replies = 0;     // retransmit answers from the shadow copy
    std::uint64_t upstream_partials = 0;   // leaf -> parent packets (incl. retransmits)
    std::uint64_t results_from_parent = 0; // root results relayed by a leaf
    std::uint64_t unknown_job_drops = 0;   // packets for unadmitted jobs
    std::uint64_t checksum_drops = 0;      // corrupted updates discarded (§3.4)
    std::uint64_t restarts = 0;            // fault-injected dataplane wipes
    std::uint64_t sync_replies = 0;        // SmlSyncQuery packets answered
    std::uint64_t rescues_applied = 0;     // SmlRescue contributions aggregated
    std::uint64_t rescues_ignored = 0;     // stale/duplicate rescues dropped
    std::uint64_t dead_drops = 0;          // packets dropped after kill()
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // Dataplane SRAM consumed by the aggregation state (§5.5 "switch
  // resources"): pool registers + counters + bitmaps, across all jobs.
  // In lossless mode the accounting reflects the Algorithm-1 layout (single
  // 32-bit version per element, no bitmap).
  [[nodiscard]] std::size_t register_bytes() const;
  [[nodiscard]] const dp::Pipeline& pipeline() const { return pipeline_; }
  [[nodiscard]] const AggregationConfig& config() const { return config_; }

  // Latency distributions across all jobs: slot dwell (first contribution of
  // a phase until the completing one) and the interval between consecutive
  // version flips of a slot — the switch-side view of the §3.5 pipelining
  // cadence.
  [[nodiscard]] const Histogram& slot_dwell_hist() const { return slot_dwell_ns_; }
  [[nodiscard]] const Histogram& version_flip_hist() const { return flip_interval_ns_; }

private:
  // Register layout (stage assignment mirrors Appendix B: bitmap first, then
  // the counter, then the value registers spread across remaining stages).
  struct JobState {
    JobParams params;
    std::unique_ptr<dp::RegisterArray> seen;  // [s] x (2 x 32-bit worker bitmaps)
    std::unique_ptr<dp::RegisterArray> count; // [s] x (2 x 32-bit mod-n counters)
    std::vector<std::unique_ptr<dp::RegisterArray>> pool; // per-element [s] x (2 x int32)
    // Pool version of each slot's most recent claim (255 = never claimed);
    // a claim under the other version marks the slot's generation turnover
    // ("version_flip" trace event). Not switch protocol state — pure telemetry.
    std::vector<std::uint8_t> claim_ver;
    // Telemetry timestamps per slot (-1 = never): the most recent claim
    // (feeds the claim->complete dwell histogram) and the most recent
    // version flip (feeds the flip-interval histogram).
    std::vector<Time> claim_at;
    std::vector<Time> flip_at;
    // Recovery-protocol state (modeled as the packet's `off` header field
    // latched into a per-slot register at claim time): the offset each
    // version is currently aggregating (kNoClaimOff when idle/wiped).
    // Reported by SmlSyncResponse so a stranded worker can tell whether its
    // peers sit one phase behind (rescue needed) or one phase ahead (wait).
    std::vector<std::uint64_t> claim_off[2];
    // Per-slot rescue dedup bitmap, same bit layout as `seen` (ver*32 + wid);
    // cleared when a version is freshly claimed, completed, or wiped.
    std::vector<std::uint64_t> rescue_seen;
    // Phases claimed but not yet completed, across both versions — the
    // "pool occupancy" the switch's INT record reports. Maintained
    // unconditionally (two integer ops); reset by a dataplane wipe.
    std::uint32_t active_phases = 0;
    // INT uplink echo state, allocated lazily on the first INT-carrying
    // update: per (slot, local worker), the arrival time and telemetry stack
    // of that contributor's most recent update for the slot. Updates
    // terminate here, so the switch echoes each worker's own uplink stack —
    // plus its own record — on that worker's result copy, the way a Tofino
    // INT sink reflects source-to-sink metadata back to the end host. Wiped
    // by restart() like the rest of the dataplane memory.
    struct IntContribution {
      Time at = -1;
      std::uint8_t mode = 0;
      std::vector<std::uint8_t> stack;
    };
    std::vector<IntContribution> int_rx; // [idx * n_workers + wid_local]
  };

  void handle_update(net::Packet&& p, int in_port);
  void handle_sync_query(const net::Packet& p);
  void handle_rescue(net::Packet&& p);
  void emit_result(const JobState& job, const net::Packet& update,
                   std::vector<std::int32_t>&& values);
  void send_upstream(net::Packet&& p);

  // --- in-band telemetry ----------------------------------------------------
  // Latches the contributor's uplink stack for the slot (echoed on results).
  void store_int_contribution(JobState& job, std::uint32_t idx, int wid_local,
                              const net::Packet& p);
  // This switch's own INT record: per-contributor slot wait (now - `since`,
  // the contributor's update arrival) + pipeline latency, pool occupancy,
  // slot fan-in, and the dataplane epoch.
  [[nodiscard]] inttel::IntHopRecord int_switch_record(const JobState& job, std::uint32_t dst,
                                                       Time since) const;
  // Replaces `copy`'s stack with worker `wid_local`'s stored uplink echo and
  // appends the switch record.
  void attach_int_echo(const JobState& job, net::Packet& copy, int wid_local);
  // multicast() with a per-receiver INT echo — same ports, same ready time,
  // same event order; only the (checksum-excluded) telemetry fields differ
  // per copy.
  void multicast_int_echo(const JobState& job, const net::Packet& p);

  [[nodiscard]] static int local_worker_index(const JobState& job, std::uint16_t wid);
  [[nodiscard]] std::size_t job_register_bytes(const JobParams& params) const;

  // Lazily-built §3.7 conversion tables (the Tofino implements these as
  // dataplane match tables; 256 KiB of table SRAM, separate from registers).
  const quant::Fp16Table& fp16_table();

  AggregationConfig config_;
  SwitchRole role_;
  dp::Pipeline pipeline_;
  std::uint32_t epoch_ = 0;
  bool dead_ = false;
  std::map<std::uint8_t, JobState> jobs_;
  std::unique_ptr<quant::Fp16Table> fp16_table_;
  Counters counters_;
  Histogram slot_dwell_ns_;
  Histogram flip_interval_ns_;
};

} // namespace switchml::swprog
