// Virtual stream buffer manager (§4, Appendix B).
//
// ML frameworks emit one gradient tensor per layer (e.g., 152 tensors per
// ResNet50 iteration in Caffe2) and reduce them independently but in a fixed
// order. Rather than treating each tensor as an isolated reduction — which
// would drain the aggregator pool between tensors — the manager concatenates
// the tensors queued at flush() into one continuous quantized stream,
// keeping the switch pipeline full across tensor boundaries, and steers
// completed pieces back to the right tensor. Each tensor's completion
// callback fires as soon as all of ITS pieces have been aggregated, so
// downstream work (e.g., the optimizer step for that layer) can start while
// later tensors are still in flight.
//
// Every worker of a job runs one manager and must submit the same tensor
// sizes in the same order (Horovod enforces this ordering; the paper patches
// one line in Caffe2 to do the same).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "worker/worker.hpp"

namespace switchml::core {

struct StreamOptions {
  bool average = false; // divide aggregated tensors by n
};

class StreamManager {
public:
  explicit StreamManager(worker::Worker& worker, StreamOptions options = {});
  StreamManager(const StreamManager&) = delete;
  StreamManager& operator=(const StreamManager&) = delete;

  // Queues a tensor for aggregation. `in` is this worker's contribution;
  // the aggregated result is written to `out` (may alias `in`). Both spans
  // must stay alive until `on_done` fires. `scaling_factor` is the
  // model-dependent f of §3.7.
  void submit(std::span<const float> in, std::span<float> out, double scaling_factor,
              std::function<void()> on_done);

  // Starts aggregating everything queued, if the worker is idle. Further
  // submissions are queued for the next flush, which happens automatically
  // when the current batch finishes.
  void flush();

  [[nodiscard]] bool idle() const { return !running_; }
  [[nodiscard]] std::size_t tensors_completed() const { return tensors_completed_; }

private:
  struct PendingTensor {
    std::span<const float> in;
    std::span<float> out;
    double f = 1.0;
    std::function<void()> on_done;
    // Assigned at flush:
    std::uint64_t first_elem = 0; // offset in the padded stream
    std::uint64_t padded_elems = 0;
    std::uint64_t chunks_left = 0;
  };

  void on_chunk(std::uint64_t off, std::uint32_t count);
  void on_batch_complete();
  void finish_tensor(PendingTensor& t);

  worker::Worker& worker_;
  StreamOptions options_;
  std::deque<PendingTensor> queued_;
  std::vector<PendingTensor> active_;
  std::vector<std::int32_t> staging_in_;
  std::vector<std::int32_t> staging_out_;
  bool running_ = false;
  std::size_t tensors_completed_ = 0;
};

} // namespace switchml::core
