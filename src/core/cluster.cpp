#include "core/cluster.hpp"

namespace switchml::core {

ClusterConfig ClusterConfig::for_rate(BitsPerSecond rate, int n_workers) {
  ClusterConfig c;
  c.n_workers = n_workers;
  c.link_rate = rate;
  c.nic = switchml_worker_nic(rate);
  c.pool_size = rate >= gbps(100) ? 512 : 128; // §3.6 measured values
  return c;
}

} // namespace switchml::core
