#include "core/cluster.hpp"

#include <stdexcept>

namespace switchml::core {

namespace {
constexpr net::NodeId kSwitchId = 10'000;
constexpr net::NodeId kRootId = 20'000;
constexpr std::uint32_t kWorkerMulticastGroup = 1;

worker::WorkerConfig make_worker_config(int i, int n, std::uint32_t pool_size,
                                        std::uint32_t k, std::uint8_t wire_elem_bytes,
                                        Time rto, const net::NicConfig& nic,
                                        net::NodeId switch_id, bool timing_only) {
  worker::WorkerConfig wc;
  wc.wid = static_cast<std::uint16_t>(i);
  wc.n_workers = n;
  wc.pool_size = pool_size;
  wc.elems_per_packet = k;
  wc.wire_elem_bytes = wire_elem_bytes;
  wc.retransmit_timeout = rto;
  wc.nic = nic;
  wc.switch_id = switch_id;
  wc.timing_only = timing_only;
  return wc;
}

worker::WorkerConfig with_adaptive_rto(worker::WorkerConfig wc, bool adaptive) {
  wc.adaptive_rto = adaptive;
  return wc;
}
} // namespace

ClusterConfig ClusterConfig::for_rate(BitsPerSecond rate, int n_workers) {
  ClusterConfig c;
  c.n_workers = n_workers;
  c.link_rate = rate;
  c.nic = switchml_worker_nic(rate);
  c.pool_size = rate >= gbps(100) ? 512 : 128; // §3.6 measured values
  return c;
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  if (config.n_workers < 1) throw std::invalid_argument("Cluster: need at least one worker");
  if (config.lossless && config.loss_prob > 0)
    throw std::invalid_argument("Cluster: lossless mode requires loss_prob == 0");

  swprog::AggregationConfig sc;
  sc.n_workers = config.n_workers;
  sc.pool_size = config.pool_size;
  sc.elems_per_packet = config.elems_per_packet;
  sc.timing_only = config.timing_only;
  sc.mtu_emulation = config.mtu_emulation;
  sc.multicast_group = kWorkerMulticastGroup;
  sc.ablate_shadow_copy = config.ablate_shadow_copy;
  sc.ablate_seen_bitmap = config.ablate_seen_bitmap;
  sc.fp16_frac_bits = config.fp16_frac_bits;
  sc.lossless = config.lossless;
  switch_ = std::make_unique<swprog::AggregationSwitch>(
      sim_, kSwitchId, "switch", sc, swprog::SwitchRole::Standalone, config.switch_latency);

  net::LinkConfig lc;
  lc.rate = config.link_rate;
  lc.propagation = config.propagation;
  lc.queue_limit_bytes = config.queue_limit_bytes;
  lc.loss_prob = config.loss_prob;

  std::vector<int> all_ports;
  for (int i = 0; i < config.n_workers; ++i) {
    worker::WorkerConfig wc = with_adaptive_rto(
        make_worker_config(i, config.n_workers, config.pool_size, config.elems_per_packet,
                           config.wire_elem_bytes, config.retransmit_timeout, config.nic,
                           kSwitchId, config.timing_only),
        config.adaptive_rto);
    wc.lossless = config.lossless;
    auto w = std::make_unique<worker::Worker>(sim_, static_cast<net::NodeId>(i),
                                              "worker-" + std::to_string(i), wc);
    auto link = std::make_unique<net::Link>(sim_, lc, *w, /*port_a=*/0, *switch_,
                                            /*port_b=*/i, config.seed + static_cast<std::uint64_t>(i));
    w->set_uplink(*link);
    switch_->attach(i, *link);
    all_ports.push_back(i);
    workers_.push_back(std::move(w));
    links_.push_back(std::move(link));
  }
  switch_->add_multicast_group(kWorkerMulticastGroup, all_ports);
}

void Cluster::set_loss_prob(double p) {
  for (auto& l : links_) l->set_loss_prob(p);
}

net::Tracer& Cluster::enable_tracing() {
  if (!tracer_) {
    tracer_ = std::make_unique<net::Tracer>();
    tracer_->set_capacity(1 << 20);
    for (auto& l : links_) l->set_tracer(tracer_.get());
  }
  return *tracer_;
}

std::vector<Time> Cluster::reduce_timing(std::uint64_t total_elems) {
  if (!config_.timing_only)
    throw std::logic_error("Cluster::reduce_timing requires timing_only config");
  std::vector<Time> start(workers_.size()), tat(workers_.size(), -1);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    start[i] = sim_.now();
    workers_[i]->start_reduction(total_elems, [this, &start, &tat, i] {
      tat[i] = sim_.now() - start[i];
    });
  }
  sim_.run();
  for (Time t : tat)
    if (t < 0) throw std::runtime_error("Cluster::reduce_timing: reduction did not complete");
  return tat;
}

Cluster::DataReduceResult Cluster::reduce_i32(
    const std::vector<std::vector<std::int32_t>>& updates) {
  if (config_.timing_only)
    throw std::logic_error("Cluster::reduce_i32 requires a data-mode cluster");
  if (static_cast<int>(updates.size()) != n_workers())
    throw std::invalid_argument("Cluster::reduce_i32: one update per worker required");

  DataReduceResult r;
  r.outputs.resize(updates.size());
  r.tat.assign(updates.size(), -1);
  std::vector<Time> start(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    r.outputs[i].assign(updates[i].size(), 0);
    start[i] = sim_.now();
    workers_[i]->start_reduction(updates[i], r.outputs[i], [this, &start, &r, i] {
      r.tat[i] = sim_.now() - start[i];
    });
  }
  sim_.run();
  for (Time t : r.tat)
    if (t < 0) throw std::runtime_error("Cluster::reduce_i32: reduction did not complete");
  return r;
}

// ------------------------------------------------------------------ multi-job

MultiJobCluster::MultiJobCluster(const MultiJobConfig& config) : config_(config) {
  if (config.n_jobs < 1 || config.workers_per_job < 1)
    throw std::invalid_argument("MultiJobCluster: invalid shape");

  // Job 0 is admitted by the switch constructor; further jobs go through the
  // §6 admission control below.
  swprog::AggregationConfig sc;
  sc.n_workers = config.workers_per_job;
  sc.pool_size = config.pool_size;
  sc.elems_per_packet = config.elems_per_packet;
  sc.wid_base = 0;
  sc.timing_only = config.timing_only;
  sc.multicast_group = 100;
  sc.sram_budget_bytes = config.sram_budget_bytes;
  switch_ = std::make_unique<swprog::AggregationSwitch>(
      sim_, 10'000, "switch", sc, swprog::SwitchRole::Standalone, config.switch_latency);

  for (int j = 1; j < config.n_jobs; ++j) {
    swprog::JobParams params;
    params.n_workers = config.workers_per_job;
    params.pool_size = config.pool_size;
    params.wid_base = static_cast<std::uint16_t>(j * config.workers_per_job);
    params.multicast_group = 100 + static_cast<std::uint32_t>(j);
    if (!switch_->admit_job(static_cast<std::uint8_t>(j), params))
      throw std::runtime_error("MultiJobCluster: job " + std::to_string(j) +
                               " rejected by admission control (SRAM budget)");
  }

  net::LinkConfig lc;
  lc.rate = config.link_rate;
  lc.propagation = config.propagation;
  lc.queue_limit_bytes = config.queue_limit_bytes;
  lc.loss_prob = config.loss_prob;

  for (int j = 0; j < config.n_jobs; ++j) {
    std::vector<int> ports;
    for (int i = 0; i < config.workers_per_job; ++i) {
      const int g = j * config.workers_per_job + i; // global worker index == port
      worker::WorkerConfig wc = make_worker_config(
          g, config.workers_per_job, config.pool_size, config.elems_per_packet, 4,
          config.retransmit_timeout, config.nic, switch_->id(), config.timing_only);
      wc.job = static_cast<std::uint8_t>(j);
      auto w = std::make_unique<worker::Worker>(sim_, static_cast<net::NodeId>(g),
                                                "j" + std::to_string(j) + "-worker-" +
                                                    std::to_string(i),
                                                wc);
      auto link = std::make_unique<net::Link>(sim_, lc, *w, 0, *switch_, g,
                                              config.seed + static_cast<std::uint64_t>(g));
      w->set_uplink(*link);
      switch_->attach(g, *link);
      ports.push_back(g);
      workers_.push_back(std::move(w));
      links_.push_back(std::move(link));
    }
    switch_->add_multicast_group(100 + static_cast<std::uint32_t>(j), ports);
  }
}

std::vector<std::vector<Time>> MultiJobCluster::reduce_timing_all(std::uint64_t total_elems) {
  if (!config_.timing_only)
    throw std::logic_error("MultiJobCluster::reduce_timing_all requires timing_only");
  const auto per_job = static_cast<std::size_t>(config_.workers_per_job);
  std::vector<Time> start(workers_.size()), tat(workers_.size(), -1);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    start[i] = sim_.now();
    workers_[i]->start_reduction(total_elems, [this, &start, &tat, i] {
      tat[i] = sim_.now() - start[i];
    });
  }
  sim_.run();
  std::vector<std::vector<Time>> out(static_cast<std::size_t>(config_.n_jobs));
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (tat[i] < 0) throw std::runtime_error("MultiJobCluster: reduction did not complete");
    out[i / per_job].push_back(tat[i]);
  }
  return out;
}

Cluster::DataReduceResult MultiJobCluster::reduce_i32(
    int job, const std::vector<std::vector<std::int32_t>>& updates) {
  if (config_.timing_only) throw std::logic_error("MultiJobCluster::reduce_i32: data mode only");
  if (static_cast<int>(updates.size()) != config_.workers_per_job)
    throw std::invalid_argument("MultiJobCluster::reduce_i32: one update per worker");
  Cluster::DataReduceResult r;
  r.outputs.resize(updates.size());
  r.tat.assign(updates.size(), -1);
  std::vector<Time> start(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    r.outputs[i].assign(updates[i].size(), 0);
    start[i] = sim_.now();
    worker(job, static_cast<int>(i))
        .start_reduction(updates[i], r.outputs[i], [this, &start, &r, i] {
          r.tat[i] = sim_.now() - start[i];
        });
  }
  sim_.run();
  for (Time t : r.tat)
    if (t < 0) throw std::runtime_error("MultiJobCluster: reduction did not complete");
  return r;
}

// ----------------------------------------------------------------------- tree

TreeCluster::TreeCluster(const TreeConfig& config) : config_(config) {
  if (config.levels < 2) throw std::invalid_argument("TreeCluster: need at least 2 levels");
  if (config.branching < 1 || config.workers_per_rack < 1)
    throw std::invalid_argument("TreeCluster: invalid shape");
  int next_worker = 0;
  build_switch(0, nullptr, 0, next_worker);
}

swprog::AggregationSwitch* TreeCluster::build_switch(int level,
                                                     swprog::AggregationSwitch* parent,
                                                     int index_at_parent, int& next_worker) {
  const bool bottom = level == config_.levels - 1;
  const int n_children = bottom ? config_.workers_per_rack : config_.branching;

  swprog::AggregationConfig sc;
  sc.n_workers = n_children;
  sc.pool_size = config_.pool_size;
  sc.elems_per_packet = config_.elems_per_packet;
  sc.timing_only = config_.timing_only;
  sc.multicast_group = 1;
  // Bottom switches see global worker ids; internal switches see their
  // children's leaf_wid (0..branching-1).
  sc.wid_base = bottom ? static_cast<std::uint16_t>(next_worker) : 0;
  const auto role = parent == nullptr ? swprog::SwitchRole::Root : swprog::SwitchRole::Leaf;
  if (parent != nullptr) {
    sc.parent_port = n_children; // one past the child ports
    sc.leaf_wid = static_cast<std::uint16_t>(index_at_parent);
  }
  auto owned = std::make_unique<swprog::AggregationSwitch>(
      sim_, next_switch_id_++,
      "sw-l" + std::to_string(level) + "-" + std::to_string(index_at_parent), sc, role,
      config_.switch_latency);
  swprog::AggregationSwitch* sw = owned.get();
  switches_.push_back(std::move(owned));

  net::LinkConfig lc;
  lc.rate = config_.link_rate;
  lc.propagation = config_.propagation;
  lc.queue_limit_bytes = config_.queue_limit_bytes;
  lc.loss_prob = config_.loss_prob;

  std::vector<int> child_ports;
  for (int c = 0; c < n_children; ++c) {
    if (bottom) {
      const int g = next_worker++;
      worker::WorkerConfig wc;
      wc.wid = static_cast<std::uint16_t>(g);
      wc.n_workers = n_children;
      wc.pool_size = config_.pool_size;
      wc.elems_per_packet = config_.elems_per_packet;
      wc.retransmit_timeout = config_.retransmit_timeout;
      wc.nic = config_.nic;
      wc.switch_id = sw->id();
      wc.timing_only = config_.timing_only;
      auto w = std::make_unique<worker::Worker>(sim_, static_cast<net::NodeId>(g),
                                                "worker-" + std::to_string(g), wc);
      auto link = std::make_unique<net::Link>(sim_, lc, *w, 0, *sw, c,
                                              config_.seed + static_cast<std::uint64_t>(g));
      w->set_uplink(*link);
      sw->attach(c, *link);
      workers_.push_back(std::move(w));
      links_.push_back(std::move(link));
    } else {
      swprog::AggregationSwitch* child = build_switch(level + 1, sw, c, next_worker);
      const int child_parent_port =
          level + 1 == config_.levels - 1 ? config_.workers_per_rack : config_.branching;
      auto link = std::make_unique<net::Link>(
          sim_, lc, *child, child_parent_port, *sw, c,
          config_.seed + 7000 + static_cast<std::uint64_t>(child->id()));
      child->attach(child_parent_port, *link);
      sw->attach(c, *link);
      links_.push_back(std::move(link));
    }
    child_ports.push_back(c);
  }
  sw->add_multicast_group(1, child_ports);
  return sw;
}

void TreeCluster::set_loss_prob(double p) {
  for (auto& l : links_) l->set_loss_prob(p);
}

std::vector<Time> TreeCluster::reduce_timing(std::uint64_t total_elems) {
  if (!config_.timing_only)
    throw std::logic_error("TreeCluster::reduce_timing requires timing_only");
  std::vector<Time> start(workers_.size()), tat(workers_.size(), -1);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    start[i] = sim_.now();
    workers_[i]->start_reduction(total_elems, [this, &start, &tat, i] {
      tat[i] = sim_.now() - start[i];
    });
  }
  sim_.run();
  for (Time t : tat)
    if (t < 0) throw std::runtime_error("TreeCluster: reduction did not complete");
  return tat;
}

Cluster::DataReduceResult TreeCluster::reduce_i32(
    const std::vector<std::vector<std::int32_t>>& updates) {
  if (config_.timing_only) throw std::logic_error("TreeCluster::reduce_i32: data mode only");
  if (updates.size() != workers_.size())
    throw std::invalid_argument("TreeCluster::reduce_i32: one update per worker");
  Cluster::DataReduceResult r;
  r.outputs.resize(updates.size());
  r.tat.assign(updates.size(), -1);
  std::vector<Time> start(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    r.outputs[i].assign(updates[i].size(), 0);
    start[i] = sim_.now();
    workers_[i]->start_reduction(updates[i], r.outputs[i], [this, &start, &r, i] {
      r.tat[i] = sim_.now() - start[i];
    });
  }
  sim_.run();
  for (Time t : r.tat)
    if (t < 0) throw std::runtime_error("TreeCluster: reduction did not complete");
  return r;
}

// --------------------------------------------------------------- hierarchical

HierarchicalCluster::HierarchicalCluster(const HierarchyConfig& config) : config_(config) {
  if (config.racks < 1 || config.workers_per_rack < 1)
    throw std::invalid_argument("HierarchicalCluster: invalid shape");

  // Root aggregates one contribution per rack.
  swprog::AggregationConfig rc;
  rc.n_workers = config.racks;
  rc.pool_size = config.pool_size;
  rc.elems_per_packet = config.elems_per_packet;
  rc.timing_only = config.timing_only;
  rc.multicast_group = kWorkerMulticastGroup; // ports toward the leaves
  root_ = std::make_unique<swprog::AggregationSwitch>(
      sim_, kRootId, "root", rc, swprog::SwitchRole::Root, config.switch_latency);

  net::LinkConfig worker_lc;
  worker_lc.rate = config.worker_link_rate;
  worker_lc.propagation = config.propagation;
  worker_lc.queue_limit_bytes = config.queue_limit_bytes;
  worker_lc.loss_prob = config.loss_prob;

  net::LinkConfig up_lc = worker_lc;
  up_lc.rate = config.uplink_rate;

  const int total_workers = config.racks * config.workers_per_rack;
  std::vector<int> root_ports;
  for (int r = 0; r < config.racks; ++r) {
    swprog::AggregationConfig sc;
    sc.n_workers = config.workers_per_rack;
    sc.pool_size = config.pool_size;
    sc.elems_per_packet = config.elems_per_packet;
    sc.wid_base = static_cast<std::uint16_t>(r * config.workers_per_rack);
    sc.timing_only = config.timing_only;
    sc.multicast_group = kWorkerMulticastGroup;
    sc.parent_port = config.workers_per_rack; // one past the worker ports
    sc.leaf_wid = static_cast<std::uint16_t>(r);
    auto leaf = std::make_unique<swprog::AggregationSwitch>(
        sim_, kSwitchId + static_cast<net::NodeId>(r), "leaf-" + std::to_string(r), sc,
        swprog::SwitchRole::Leaf, config.switch_latency);

    std::vector<int> leaf_ports;
    for (int j = 0; j < config.workers_per_rack; ++j) {
      const int gw = r * config.workers_per_rack + j; // global worker index
      auto w = std::make_unique<worker::Worker>(
          sim_, static_cast<net::NodeId>(gw), "worker-" + std::to_string(gw),
          make_worker_config(gw, total_workers, config.pool_size, config.elems_per_packet, 4,
                             config.retransmit_timeout, config.nic, leaf->id(),
                             config.timing_only));
      auto link = std::make_unique<net::Link>(sim_, worker_lc, *w, 0, *leaf, j,
                                              config.seed + static_cast<std::uint64_t>(gw));
      w->set_uplink(*link);
      leaf->attach(j, *link);
      leaf_ports.push_back(j);
      workers_.push_back(std::move(w));
      links_.push_back(std::move(link));
    }
    leaf->add_multicast_group(kWorkerMulticastGroup, leaf_ports);

    auto uplink = std::make_unique<net::Link>(sim_, up_lc, *leaf, config.workers_per_rack,
                                              *root_, r, config.seed + 1000 + static_cast<std::uint64_t>(r));
    leaf->attach(config.workers_per_rack, *uplink);
    root_->attach(r, *uplink);
    root_ports.push_back(r);
    links_.push_back(std::move(uplink));
    leaves_.push_back(std::move(leaf));
  }
  root_->add_multicast_group(kWorkerMulticastGroup, root_ports);
}

void HierarchicalCluster::set_loss_prob(double p) {
  for (auto& l : links_) l->set_loss_prob(p);
}

std::vector<Time> HierarchicalCluster::reduce_timing(std::uint64_t total_elems) {
  if (!config_.timing_only)
    throw std::logic_error("HierarchicalCluster::reduce_timing requires timing_only config");
  std::vector<Time> start(workers_.size()), tat(workers_.size(), -1);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    start[i] = sim_.now();
    workers_[i]->start_reduction(total_elems, [this, &start, &tat, i] {
      tat[i] = sim_.now() - start[i];
    });
  }
  sim_.run();
  for (Time t : tat)
    if (t < 0)
      throw std::runtime_error("HierarchicalCluster::reduce_timing: reduction did not complete");
  return tat;
}

Cluster::DataReduceResult HierarchicalCluster::reduce_i32(
    const std::vector<std::vector<std::int32_t>>& updates) {
  if (config_.timing_only)
    throw std::logic_error("HierarchicalCluster::reduce_i32 requires a data-mode cluster");
  if (updates.size() != workers_.size())
    throw std::invalid_argument("HierarchicalCluster::reduce_i32: one update per worker");

  Cluster::DataReduceResult r;
  r.outputs.resize(updates.size());
  r.tat.assign(updates.size(), -1);
  std::vector<Time> start(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    r.outputs[i].assign(updates[i].size(), 0);
    start[i] = sim_.now();
    workers_[i]->start_reduction(updates[i], r.outputs[i], [this, &start, &r, i] {
      r.tat[i] = sim_.now() - start[i];
    });
  }
  sim_.run();
  for (Time t : r.tat)
    if (t < 0)
      throw std::runtime_error("HierarchicalCluster::reduce_i32: reduction did not complete");
  return r;
}

} // namespace switchml::core
