#include "core/stream_manager.hpp"

#include <stdexcept>

#include "quant/fixed_point.hpp"

namespace switchml::core {

StreamManager::StreamManager(worker::Worker& worker, StreamOptions options)
    : worker_(worker), options_(options) {
  worker_.set_chunk_handler([this](std::uint64_t off, std::uint32_t count) {
    on_chunk(off, count);
  });
}

void StreamManager::submit(std::span<const float> in, std::span<float> out,
                           double scaling_factor, std::function<void()> on_done) {
  if (in.size() != out.size())
    throw std::invalid_argument("StreamManager::submit: in/out size mismatch");
  if (scaling_factor <= 0)
    throw std::invalid_argument("StreamManager::submit: scaling factor must be positive");
  PendingTensor t;
  t.in = in;
  t.out = out;
  t.f = scaling_factor;
  t.on_done = std::move(on_done);
  queued_.push_back(std::move(t));
}

void StreamManager::flush() {
  if (running_ || queued_.empty()) return;

  const std::uint64_t k = worker_.config().elems_per_packet;
  active_.clear();
  std::uint64_t total = 0;
  while (!queued_.empty()) {
    PendingTensor t = std::move(queued_.front());
    queued_.pop_front();
    t.first_elem = total;
    // Pad each tensor to a whole number of packets so no packet spans two
    // tensors (padding elements aggregate zeros, which is harmless).
    t.padded_elems = (t.in.size() + k - 1) / k * k;
    t.chunks_left = t.padded_elems / k;
    total += t.padded_elems;
    active_.push_back(std::move(t));
  }

  staging_in_.assign(total, 0);
  staging_out_.assign(total, 0);
  for (const auto& t : active_) {
    quant::quantize(t.in, t.f,
                    std::span<std::int32_t>(staging_in_.data() + t.first_elem, t.in.size()));
  }

  running_ = true;
  worker_.start_reduction(staging_in_, staging_out_, [this] { on_batch_complete(); });
}

void StreamManager::on_chunk(std::uint64_t off, std::uint32_t /*count*/) {
  if (!running_) return;
  // Locate the tensor owning this chunk (tensors are packet-aligned, so a
  // chunk belongs to exactly one tensor). Linear scan is fine: frameworks
  // emit at most a few hundred tensors per iteration.
  for (auto& t : active_) {
    if (off >= t.first_elem && off < t.first_elem + t.padded_elems) {
      if (t.chunks_left == 0)
        throw std::logic_error("StreamManager: more chunks than expected for a tensor");
      if (--t.chunks_left == 0) finish_tensor(t);
      return;
    }
  }
  throw std::logic_error("StreamManager: chunk for unknown offset");
}

void StreamManager::finish_tensor(PendingTensor& t) {
  const double inv_n = 1.0 / static_cast<double>(worker_.config().n_workers);
  const double post = options_.average ? inv_n : 1.0;
  for (std::size_t j = 0; j < t.out.size(); ++j) {
    const auto sum = static_cast<double>(staging_out_[t.first_elem + j]);
    t.out[j] = static_cast<float>(sum / t.f * post);
  }
  ++tensors_completed_;
  if (t.on_done) t.on_done();
}

void StreamManager::on_batch_complete() {
  running_ = false;
  active_.clear();
  if (!queued_.empty()) flush(); // keep the stream continuous across batches
}

} // namespace switchml::core
