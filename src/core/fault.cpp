#include "core/fault.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/metrics.hpp"
#include "common/tracing.hpp"
#include "core/fabric.hpp"

namespace switchml::core {

FaultInjector::FaultInjector(Fabric& fabric, const FaultPlan& plan) : f_(fabric), plan_(plan) {
  validate();
  if (auto* reg = MetricsRegistry::current()) {
    reg->add_gauge("fault.links_down",
                   [this] { return static_cast<std::int64_t>(links_down()); });
    reg->add_gauge("fault.active_stragglers",
                   [this] { return static_cast<std::int64_t>(active_stragglers_); });
    reg->add_counter("fault.flaps_applied", [this] { return counters_.flaps_applied; });
    reg->add_counter("fault.restarts_applied", [this] { return counters_.restarts_applied; });
    reg->add_counter("fault.straggler_windows", [this] { return counters_.straggler_windows; });
  }

  apply_bursts();
  auto& sim = f_.simulation();
  for (const StragglerSpec& s : plan_.stragglers) arm_straggler(s);
  for (const LinkFlapSpec& s : plan_.flaps) arm_flap(s);
  for (std::size_t i = 0; i < plan_.flap_cycles.size(); ++i) arm_cycle(i);
  for (const SwitchRestartSpec& s : plan_.switch_restarts) {
    sim.schedule_daemon_timer(s.at, [this, s] {
      f_.switch_at(s.switch_index).restart();
      ++counters_.restarts_applied;
    });
  }
}

void FaultInjector::validate() const {
  const auto n_workers = f_.n_workers();
  const auto n_links = f_.n_links();
  const auto n_switches = f_.n_switches();
  for (const StragglerSpec& s : plan_.stragglers) {
    if (s.worker < 0 || s.worker >= n_workers)
      throw std::invalid_argument("FaultPlan: straggler worker out of range");
    if (s.factor <= 0.0) throw std::invalid_argument("FaultPlan: straggler factor must be > 0");
    if (s.start < 0 || (s.stop >= 0 && s.stop <= s.start))
      throw std::invalid_argument("FaultPlan: straggler window must have stop > start >= 0");
  }
  for (const LinkFlapSpec& s : plan_.flaps) {
    if (s.link >= n_links) throw std::invalid_argument("FaultPlan: flap link out of range");
    if (s.down_at < 0 || s.up_at <= s.down_at)
      throw std::invalid_argument("FaultPlan: flap needs up_at > down_at >= 0");
  }
  for (const LinkFlapCycleSpec& s : plan_.flap_cycles) {
    if (s.link >= n_links)
      throw std::invalid_argument("FaultPlan: flap-cycle link out of range");
    if (s.period <= 0 || s.duty_down <= 0.0 || s.duty_down >= 1.0)
      throw std::invalid_argument("FaultPlan: flap cycle needs period > 0, duty in (0, 1)");
    if (s.start < 0 || s.cycles < 0)
      throw std::invalid_argument("FaultPlan: flap cycle needs start >= 0, cycles >= 0");
  }
  for (const BurstLossSpec& s : plan_.bursts) {
    if (s.link >= 0 && static_cast<std::size_t>(s.link) >= n_links)
      throw std::invalid_argument("FaultPlan: burst link out of range");
  }
  for (const SwitchRestartSpec& s : plan_.switch_restarts) {
    if (s.switch_index >= n_switches)
      throw std::invalid_argument("FaultPlan: switch restart index out of range");
    if (s.at < 0) throw std::invalid_argument("FaultPlan: switch restart time must be >= 0");
  }
  if (f_.config().lossless &&
      !(plan_.flaps.empty() && plan_.flap_cycles.empty() && plan_.bursts.empty() &&
        plan_.switch_restarts.empty()))
    throw std::invalid_argument(
        "FaultPlan: lossless mode has no recovery machinery — only stragglers can be injected");
}

int FaultInjector::links_down() const {
  int n = 0;
  for (std::size_t i = 0; i < f_.n_links(); ++i)
    if (f_.link(i).is_down()) ++n;
  return n;
}

void FaultInjector::apply_bursts() {
  for (const BurstLossSpec& s : plan_.bursts) {
    if (s.link >= 0) {
      f_.link(static_cast<std::size_t>(s.link)).set_burst_loss(s.gilbert);
    } else {
      for (std::size_t i = 0; i < f_.n_links(); ++i) f_.link(i).set_burst_loss(s.gilbert);
    }
  }
}

void FaultInjector::straggler_on(const StragglerSpec& s) {
  worker::Worker& w = f_.worker(s.worker);
  w.nic().set_slowdown(s.factor);
  ++counters_.straggler_windows;
  ++active_stragglers_;
  trace::emit(trace::kCatFault, f_.simulation().now(), w.id(), "straggler_on",
              {"factor_x100", static_cast<std::int64_t>(s.factor * 100)});
}

void FaultInjector::arm_straggler(const StragglerSpec& s) {
  auto& sim = f_.simulation();
  if (s.start <= sim.now()) {
    // Workers send their first burst synchronously from start_reduction, so a
    // t=0 straggler must be in force before any event runs.
    straggler_on(s);
  } else {
    sim.schedule_daemon_timer(s.start - sim.now(), [this, s] { straggler_on(s); });
  }
  if (s.stop >= 0) {
    // The restore is a LIVE event: a slowdown window always closes, even if
    // the live work drains first (the clock jump is harmless by then).
    sim.schedule_at(s.stop, [this, s] {
      worker::Worker& w = f_.worker(s.worker);
      w.nic().set_slowdown(1.0);
      --active_stragglers_;
      trace::emit(trace::kCatFault, f_.simulation().now(), w.id(), "straggler_off");
    });
  }
}

void FaultInjector::arm_flap(const LinkFlapSpec& s) {
  auto& sim = f_.simulation();
  sim.schedule_daemon_timer(s.down_at - sim.now(), [this, s] {
    f_.link(s.link).set_down();
    ++counters_.flaps_applied;
  });
  // Like straggler stops, the up event is live so a down is always paired.
  sim.schedule_at(s.up_at, [this, s] { f_.link(s.link).set_up(); });
}

Time FaultInjector::cycle_down_for(std::size_t index) const {
  const LinkFlapCycleSpec& c = plan_.flap_cycles[index];
  const auto down = static_cast<Time>(static_cast<double>(c.period) * c.duty_down);
  return std::max<Time>(down, 1);
}

void FaultInjector::arm_cycle(std::size_t index) {
  const LinkFlapCycleSpec& c = plan_.flap_cycles[index];
  auto& sim = f_.simulation();
  sim.schedule_daemon_timer(c.start - sim.now(), [this, index] { cycle_down(index, 0); });
}

void FaultInjector::cycle_down(std::size_t index, int done) {
  const LinkFlapCycleSpec& c = plan_.flap_cycles[index];
  f_.link(c.link).set_down();
  ++counters_.flaps_applied;
  auto& sim = f_.simulation();
  sim.schedule_at(sim.now() + cycle_down_for(index),
                  [this, index, done] { cycle_up(index, done + 1); });
}

void FaultInjector::cycle_up(std::size_t index, int done) {
  const LinkFlapCycleSpec& c = plan_.flap_cycles[index];
  f_.link(c.link).set_up();
  auto& sim = f_.simulation();
  if (c.cycles > 0 && done >= c.cycles) return;
  // Open-ended cycles re-arm only while live (non-daemon) work remains, so
  // Simulation::run() always drains.
  if (c.cycles == 0 && sim.live_pending_events() == 0) return;
  sim.schedule_daemon_timer(c.period - cycle_down_for(index),
                            [this, index, done] { cycle_down(index, done); });
}

} // namespace switchml::core
