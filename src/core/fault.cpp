#include "core/fault.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/metrics.hpp"
#include "common/tracing.hpp"
#include "core/fabric.hpp"

namespace switchml::core {

FaultInjector::FaultInjector(Fabric& fabric, const FaultPlan& plan) : f_(fabric), plan_(plan) {
  validate();
  if (auto* reg = MetricsRegistry::current()) {
    reg->add_gauge("fault.links_down",
                   [this] { return static_cast<std::int64_t>(links_down()); });
    reg->add_gauge("fault.active_stragglers",
                   [this] { return static_cast<std::int64_t>(active_stragglers_); });
    reg->add_counter("fault.flaps_applied", [this] { return counters_.flaps_applied; });
    reg->add_counter("fault.restarts_applied", [this] { return counters_.restarts_applied; });
    reg->add_counter("fault.kills_applied", [this] { return counters_.kills_applied; });
    reg->add_counter("fault.straggler_windows", [this] { return counters_.straggler_windows; });
  }

  apply_bursts();
  auto& sim = f_.simulation();
  for (const StragglerSpec& s : plan_.stragglers) arm_straggler(s);
  for (const LinkFlapSpec& s : plan_.flaps) arm_flap(s);
  for (std::size_t i = 0; i < plan_.flap_cycles.size(); ++i) arm_cycle(i);
  for (const SwitchRestartSpec& s : plan_.switch_restarts) {
    sim.schedule_daemon_timer(s.at, [this, s] {
      f_.switch_at(s.switch_index).restart();
      ++counters_.restarts_applied;
    });
  }
  for (const SwitchKillSpec& s : plan_.switch_kills) {
    sim.schedule_daemon_timer(s.at, [this, s] {
      f_.switch_at(s.switch_index).kill();
      ++counters_.kills_applied;
    });
  }
}

namespace {
// Every validation error names the offending spec — its kind, its index in
// the plan's vector, and the sim times it carries — so a bad entry in a
// generated schedule is findable without bisecting the plan.
[[noreturn]] void reject(const char* kind, std::size_t index, Time at, const std::string& why) {
  throw std::invalid_argument("FaultPlan: " + std::string(kind) + "[" + std::to_string(index) +
                              "] at t=" + std::to_string(at) + " ns: " + why);
}
} // namespace

void validate_fault_plan(const FaultPlan& plan, const FaultTargets& targets, bool lossless) {
  const FaultPlan& plan_ = plan;
  const int n_workers = targets.n_workers;
  const std::size_t n_links = targets.n_links;
  const std::size_t n_switches = targets.n_switches;
  for (std::size_t i = 0; i < plan_.stragglers.size(); ++i) {
    const StragglerSpec& s = plan_.stragglers[i];
    if (s.worker < 0 || s.worker >= n_workers)
      reject("stragglers", i, s.start,
             "worker " + std::to_string(s.worker) + " out of range (fabric has " +
                 std::to_string(n_workers) + " workers)");
    if (s.factor <= 0.0)
      reject("stragglers", i, s.start,
             "factor " + std::to_string(s.factor) + " must be > 0");
    if (s.start < 0 || (s.stop >= 0 && s.stop <= s.start))
      reject("stragglers", i, s.start,
             "window needs stop > start >= 0 (stop=" + std::to_string(s.stop) + ")");
  }
  for (std::size_t i = 0; i < plan_.flaps.size(); ++i) {
    const LinkFlapSpec& s = plan_.flaps[i];
    if (s.link >= n_links)
      reject("flaps", i, s.down_at,
             "link " + std::to_string(s.link) + " out of range (fabric has " +
                 std::to_string(n_links) + " links)");
    if (s.down_at < 0 || s.up_at <= s.down_at)
      reject("flaps", i, s.down_at,
             "needs up_at > down_at >= 0 (up_at=" + std::to_string(s.up_at) + ")");
    // Two one-shot flaps whose [down_at, up_at) windows intersect on one link
    // would not compose: set_down/set_up are idempotent, so the earlier
    // flap's up silently revives the link in the middle of the later flap's
    // window. Require disjoint windows per link.
    for (std::size_t j = 0; j < i; ++j) {
      const LinkFlapSpec& p = plan_.flaps[j];
      if (p.link != s.link) continue;
      if (s.down_at < p.up_at && p.down_at < s.up_at)
        reject("flaps", i, s.down_at,
               "window [" + std::to_string(s.down_at) + ", " + std::to_string(s.up_at) +
                   ") overlaps flaps[" + std::to_string(j) + "] [" + std::to_string(p.down_at) +
                   ", " + std::to_string(p.up_at) + ") on link " + std::to_string(s.link) +
                   "; one-shot flap windows on one link must be disjoint (set_down/set_up are "
                   "idempotent, so the earlier up would revive the link mid-window)");
    }
  }
  for (std::size_t i = 0; i < plan_.flap_cycles.size(); ++i) {
    const LinkFlapCycleSpec& s = plan_.flap_cycles[i];
    if (s.link >= n_links)
      reject("flap_cycles", i, s.start,
             "link " + std::to_string(s.link) + " out of range (fabric has " +
                 std::to_string(n_links) + " links)");
    if (s.period <= 0 || s.duty_down <= 0.0 || s.duty_down >= 1.0)
      reject("flap_cycles", i, s.start,
             "needs period > 0 and duty_down in (0, 1) (period=" + std::to_string(s.period) +
                 ", duty_down=" + std::to_string(s.duty_down) + ")");
    if (s.start < 0 || s.cycles < 0)
      reject("flap_cycles", i, s.start,
             "needs start >= 0, cycles >= 0 (cycles=" + std::to_string(s.cycles) + ")");
  }
  for (std::size_t i = 0; i < plan_.bursts.size(); ++i) {
    const BurstLossSpec& s = plan_.bursts[i];
    if (s.link >= 0 && static_cast<std::size_t>(s.link) >= n_links)
      reject("bursts", i, 0,
             "link " + std::to_string(s.link) + " out of range (fabric has " +
                 std::to_string(n_links) + " links; -1 targets all)");
  }
  for (std::size_t i = 0; i < plan_.switch_restarts.size(); ++i) {
    const SwitchRestartSpec& s = plan_.switch_restarts[i];
    if (s.switch_index >= n_switches)
      reject("switch_restarts", i, s.at,
             "switch " + std::to_string(s.switch_index) + " out of range (fabric has " +
                 std::to_string(n_switches) + " switches)");
    if (s.at < 0) reject("switch_restarts", i, s.at, "time must be >= 0");
  }
  for (std::size_t i = 0; i < plan_.switch_kills.size(); ++i) {
    const SwitchKillSpec& s = plan_.switch_kills[i];
    if (s.switch_index >= n_switches)
      reject("switch_kills", i, s.at,
             "switch " + std::to_string(s.switch_index) + " out of range (fabric has " +
                 std::to_string(n_switches) + " switches)");
    if (s.at < 0) reject("switch_kills", i, s.at, "time must be >= 0");
  }
  if (lossless) {
    // Lossless mode (Algorithm 1/2) deliberately strips ALL recovery
    // machinery — no retransmission timers, no version bit, no seen bitmaps —
    // so each loss-inducing fault class is structurally unrecoverable, not
    // merely slow. Explain the specific incompatibility per class.
    if (!plan_.flaps.empty() || !plan_.flap_cycles.empty())
      throw std::invalid_argument(
          "FaultPlan: link flaps are incompatible with lossless mode: packets dropped while a "
          "link is down are never retransmitted (Algorithm 2 workers run without timers), so "
          "the reduction would hang. Use the default loss-tolerant mode for flap plans.");
    if (!plan_.bursts.empty())
      throw std::invalid_argument(
          "FaultPlan: burst loss is incompatible with lossless mode: the network contract IS "
          "zero loss (Infiniband/lossless RoCE), and without worker timers a single dropped "
          "update stalls its slot forever. Use the default loss-tolerant mode for loss plans.");
    if (!plan_.switch_restarts.empty())
      throw std::invalid_argument(
          "FaultPlan: switch restarts are incompatible with lossless mode: a dataplane wipe "
          "discards in-progress aggregation state, and Algorithm 1 keeps no seen bitmaps or "
          "shadow copies to make the workers' (nonexistent) retransmissions idempotent. Use "
          "the default loss-tolerant mode for restart plans.");
    if (!plan_.switch_kills.empty())
      throw std::invalid_argument(
          "FaultPlan: switch kills are incompatible with lossless mode: dead-switch detection "
          "rides the retry budget of the retransmission timers that Algorithm 2 workers do not "
          "have, so the kill would never be detected. Use the default loss-tolerant mode for "
          "kill plans.");
  }
}

void FaultInjector::validate() const {
  validate_fault_plan(plan_, FaultTargets{f_.n_workers(), f_.n_links(), f_.n_switches()},
                      f_.config().lossless);
}

int FaultInjector::links_down() const {
  int n = 0;
  for (std::size_t i = 0; i < f_.n_links(); ++i)
    if (f_.link(i).is_down()) ++n;
  return n;
}

void FaultInjector::apply_bursts() {
  for (const BurstLossSpec& s : plan_.bursts) {
    if (s.link >= 0) {
      f_.link(static_cast<std::size_t>(s.link)).set_burst_loss(s.gilbert);
    } else {
      for (std::size_t i = 0; i < f_.n_links(); ++i) f_.link(i).set_burst_loss(s.gilbert);
    }
  }
}

void FaultInjector::straggler_on(const StragglerSpec& s) {
  worker::Worker& w = f_.worker(s.worker);
  w.nic().set_slowdown(s.factor);
  ++counters_.straggler_windows;
  ++active_stragglers_;
  trace::emit(trace::kCatFault, f_.simulation().now(), w.id(), "straggler_on",
              {"factor_x100", static_cast<std::int64_t>(s.factor * 100)});
}

void FaultInjector::arm_straggler(const StragglerSpec& s) {
  auto& sim = f_.simulation();
  if (s.start <= sim.now()) {
    // Workers send their first burst synchronously from start_reduction, so a
    // t=0 straggler must be in force before any event runs.
    straggler_on(s);
  } else {
    sim.schedule_daemon_timer(s.start - sim.now(), [this, s] { straggler_on(s); });
  }
  if (s.stop >= 0) {
    // The restore is a LIVE event: a slowdown window always closes, even if
    // the live work drains first (the clock jump is harmless by then).
    sim.schedule_at(s.stop, [this, s] {
      worker::Worker& w = f_.worker(s.worker);
      w.nic().set_slowdown(1.0);
      --active_stragglers_;
      trace::emit(trace::kCatFault, f_.simulation().now(), w.id(), "straggler_off");
    });
  }
}

void FaultInjector::arm_flap(const LinkFlapSpec& s) {
  auto& sim = f_.simulation();
  sim.schedule_daemon_timer(s.down_at - sim.now(), [this, s] {
    f_.link(s.link).set_down();
    ++counters_.flaps_applied;
  });
  // Like straggler stops, the up event is live so a down is always paired.
  sim.schedule_at(s.up_at, [this, s] { f_.link(s.link).set_up(); });
}

Time FaultInjector::cycle_down_for(std::size_t index) const {
  const LinkFlapCycleSpec& c = plan_.flap_cycles[index];
  const auto down = static_cast<Time>(static_cast<double>(c.period) * c.duty_down);
  return std::max<Time>(down, 1);
}

void FaultInjector::arm_cycle(std::size_t index) {
  const LinkFlapCycleSpec& c = plan_.flap_cycles[index];
  auto& sim = f_.simulation();
  sim.schedule_daemon_timer(c.start - sim.now(), [this, index] { cycle_down(index, 0); });
}

void FaultInjector::cycle_down(std::size_t index, int done) {
  const LinkFlapCycleSpec& c = plan_.flap_cycles[index];
  f_.link(c.link).set_down();
  ++counters_.flaps_applied;
  auto& sim = f_.simulation();
  sim.schedule_at(sim.now() + cycle_down_for(index),
                  [this, index, done] { cycle_up(index, done + 1); });
}

void FaultInjector::cycle_up(std::size_t index, int done) {
  const LinkFlapCycleSpec& c = plan_.flap_cycles[index];
  f_.link(c.link).set_up();
  auto& sim = f_.simulation();
  if (c.cycles > 0 && done >= c.cycles) return;
  // Open-ended cycles re-arm only while live (non-daemon) work remains, so
  // Simulation::run() always drains.
  if (c.cycles == 0 && sim.live_pending_events() == 0) return;
  sim.schedule_daemon_timer(c.period - cycle_down_for(index),
                            [this, index, done] { cycle_down(index, done); });
}

} // namespace switchml::core
