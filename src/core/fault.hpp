// FaultInjector: executes a FaultPlan against a built Fabric.
//
// Deterministic and sim-clock-driven: every fault event is scheduled at
// construction from the plan's absolute times (the only randomness — the
// Gilbert-Elliott burst chains — draws from per-link RNG streams derived
// from the fabric seed, so same seed + same plan gives bit-identical runs).
// Fault events are daemon events: a schedule extending past the end of the
// real work never keeps a reduction from quiescing, and every down/slowdown
// transition schedules its matching restore so no fault outlives the run.
//
// Observability: registers fault.* gauges/counters into the ambient
// MetricsRegistry (links_down, active_stragglers, flaps/restarts applied)
// and emits kCatFault trace events for straggler windows; links and switches
// emit their own link_down/link_up/switch_restart/burst_begin events.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/fault_plan.hpp"

namespace switchml::core {

class Fabric;

// The fabric shape a FaultPlan's indices are validated against. Derivable
// from a TopologySpec without building the fabric (scenario::shape_counts),
// so a scenario loader can reject a bad plan eagerly at parse time.
struct FaultTargets {
  int n_workers = 0;
  std::size_t n_links = 0;
  std::size_t n_switches = 0;
};

// Validates a plan against a fabric shape: throws std::invalid_argument with
// the offending spec's kind, index, and sim time ("FaultPlan: flaps[1] at
// t=... ns: ..."). Checks index ranges, time windows, duty cycles in (0,1),
// OVERLAPPING one-shot flaps on one link (Link::set_down/set_up are
// idempotent, so the first flap's up would silently revive the link inside
// the second flap's window), and the lossless-mode incompatibilities.
void validate_fault_plan(const FaultPlan& plan, const FaultTargets& targets, bool lossless);

class FaultInjector {
public:
  // Validates the plan against the fabric shape (throws std::invalid_argument
  // on out-of-range indices or nonsensical times) and schedules every event.
  FaultInjector(Fabric& fabric, const FaultPlan& plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  struct Counters {
    std::uint64_t flaps_applied = 0;     // down transitions (one-shot + cycles)
    std::uint64_t restarts_applied = 0;  // switch dataplane wipes
    std::uint64_t kills_applied = 0;     // permanent switch deaths
    std::uint64_t straggler_windows = 0; // straggler-on transitions
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] int links_down() const;
  [[nodiscard]] int active_stragglers() const { return active_stragglers_; }

private:
  void validate() const;
  void apply_bursts();
  void arm_straggler(const StragglerSpec& s);
  void arm_flap(const LinkFlapSpec& s);
  void arm_cycle(std::size_t index);
  void straggler_on(const StragglerSpec& s);
  void cycle_down(std::size_t index, int done);
  void cycle_up(std::size_t index, int done);
  [[nodiscard]] Time cycle_down_for(std::size_t index) const;

  Fabric& f_;
  FaultPlan plan_;
  Counters counters_;
  int active_stragglers_ = 0;
};

} // namespace switchml::core
