#include "core/fabric.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "collectives/streaming_ps.hpp"
#include "common/attribution.hpp"
#include "common/tracing.hpp"
#include "core/fault.hpp"

namespace switchml::core {

namespace {
constexpr net::NodeId kSwitchId = 10'000;
constexpr net::NodeId kRootId = 20'000;
constexpr std::uint32_t kWorkerMulticastGroup = 1;
constexpr std::uint32_t kJobMulticastBase = 100;

template <class... Ts> struct overloaded : Ts... { using Ts::operator()...; };
template <class... Ts> overloaded(Ts...) -> overloaded<Ts...>;

void validate(const FabricConfig& config) {
  if (config.lossless && config.loss_prob > 0)
    throw std::invalid_argument("Fabric: lossless mode requires loss_prob == 0");
  std::visit(overloaded{
                 [](const RackSpec& s) {
                   if (s.n_workers < 1)
                     throw std::invalid_argument("Fabric: need at least one worker");
                 },
                 [](const MultiJobSpec& s) {
                   if (s.n_jobs < 1 || s.workers_per_job < 1)
                     throw std::invalid_argument("Fabric: invalid multi-job shape");
                 },
                 [](const HierarchySpec& s) {
                   if (s.racks < 1 || s.workers_per_rack < 1)
                     throw std::invalid_argument("Fabric: invalid hierarchy shape");
                 },
                 [](const TreeSpec& s) {
                   if (s.levels < 2)
                     throw std::invalid_argument("Fabric: tree needs at least 2 levels");
                   if (s.branching < 1 || s.workers_per_rack < 1)
                     throw std::invalid_argument("Fabric: invalid tree shape");
                 },
                 [](const IrregularSpec& s) { validate_irregular(s); },
             },
             config.topology);
}
} // namespace

void validate_irregular(const IrregularSpec& spec) {
  const auto m = static_cast<int>(spec.switch_parent.size());
  if (m < 1 || spec.switch_parent[0] != -1)
    throw std::invalid_argument(
        "IrregularSpec: switch_parent[0] must be -1 (switch 0 is the root)");
  for (int i = 1; i < m; ++i) {
    const int p = spec.switch_parent[static_cast<std::size_t>(i)];
    if (p < 0 || p >= i)
      throw std::invalid_argument(
          "IrregularSpec: switch_parent[" + std::to_string(i) + "] = " + std::to_string(p) +
          " must name an earlier switch (0 <= parent < " + std::to_string(i) +
          "), so the adjacency is an acyclic single-rooted tree");
  }
  if (spec.worker_switch.empty())
    throw std::invalid_argument("IrregularSpec: need at least one worker");
  std::vector<bool> has_switch_child(static_cast<std::size_t>(m), false);
  std::vector<bool> has_worker_child(static_cast<std::size_t>(m), false);
  for (int i = 1; i < m; ++i)
    has_switch_child[static_cast<std::size_t>(spec.switch_parent[static_cast<std::size_t>(i)])] =
        true;
  for (std::size_t w = 0; w < spec.worker_switch.size(); ++w) {
    const int s = spec.worker_switch[w];
    if (s < 0 || s >= m)
      throw std::invalid_argument("IrregularSpec: worker_switch[" + std::to_string(w) + "] = " +
                                  std::to_string(s) + " out of range (spec has " +
                                  std::to_string(m) + " switches)");
    if (w > 0 && s < spec.worker_switch[w - 1])
      throw std::invalid_argument(
          "IrregularSpec: worker_switch must be non-decreasing (worker_switch[" +
          std::to_string(w) + "] = " + std::to_string(s) + " after " +
          std::to_string(spec.worker_switch[w - 1]) +
          "); grouping workers by switch keeps each leaf switch's global worker ids "
          "consecutive, which the switch's seen bitmap indexing (wid - wid_base) requires");
    has_worker_child[static_cast<std::size_t>(s)] = true;
  }
  for (int i = 0; i < m; ++i) {
    if (has_switch_child[static_cast<std::size_t>(i)] &&
        has_worker_child[static_cast<std::size_t>(i)])
      throw std::invalid_argument(
          "IrregularSpec: switch " + std::to_string(i) +
          " has both worker and switch children; a switch's children must be all workers or "
          "all switches (its aggregation pool counts contributions of one kind)");
    if (!has_switch_child[static_cast<std::size_t>(i)] &&
        !has_worker_child[static_cast<std::size_t>(i)])
      throw std::invalid_argument("IrregularSpec: switch " + std::to_string(i) +
                                  " has no children (every switch must aggregate something)");
  }
}

Fabric::Fabric(FabricConfig config) : config_(std::move(config)) {
  validate(config_);
  // Everything constructed while the builder runs registers its counters —
  // including the fault injector, whose plan needs the built nodes/links.
  MetricsRegistry::Scope scope(&metrics_);
  TopologyBuilder(*this).build();
  install_recovery();
  install_observability();
  if (!config_.faults.empty()) faults_ = std::make_unique<FaultInjector>(*this, config_.faults);
}

void Fabric::install_observability() {
  if (inttel::kCompiledIn && config_.int_mode != inttel::kModeOff) {
    // The localizer's verdicts print node names, not raw ids.
    std::map<std::uint32_t, std::string> names;
    for (auto& w : workers_) names.emplace(w->id(), w->name());
    for (auto& s : switches_) names.emplace(s->id(), s->name());
    int_localizer_ = std::make_unique<inttel::FaultLocalizer>(
        inttel::FaultLocalizer::Config{},
        [names = std::move(names)](std::uint32_t node) {
          auto it = names.find(node);
          return it != names.end() ? it->second : "node-" + std::to_string(node);
        });
    for (auto& w : workers_) w->set_int_localizer(int_localizer_.get());
    if (auto* ireg = MetricsRegistry::current()) {
      for (std::size_t k = 0; k < inttel::FaultLocalizer::kKindCount; ++k) {
        const auto kind = static_cast<inttel::FaultLocalizer::Verdict::Kind>(k);
        ireg->add_counter(std::string("int.verdicts.") + inttel::FaultLocalizer::to_string(kind),
                          [this, kind] { return int_localizer_->count(kind); });
      }
    }
  }
  // Registered ONLY when the ambient sink/ledger exists at construction, so
  // fabrics built without them keep a bit-identical registry (and timeline).
  auto* reg = MetricsRegistry::current();
  if (reg == nullptr) return;
  if (trace::TraceSink* sink = trace::TraceSink::current())
    reg->add_counter("trace.dropped_events", [sink] { return sink->total_drops(); });
  attr::SpanLedger* ledger = attr::SpanLedger::current();
  if (ledger == nullptr) return;
  for (std::size_t c = 0; c < attr::kComponentCount; ++c) {
    const auto comp = static_cast<attr::Component>(c);
    reg->add_counter(std::string("attr.total.") + attr::to_string(comp) + "_ns",
                     [ledger, comp] { return ledger->total(comp); });
  }
  reg->add_counter("attr.chunks_closed", [ledger] { return ledger->chunks_closed(); });
  reg->add_counter("attr.max_residual_ns", [ledger] { return ledger->max_residual_ns(); });
  reg->add_counter("attr.records_dropped", [ledger] { return ledger->records_dropped(); });
  for (auto& w : workers_) {
    const std::string p = "attr." + w->name() + ".";
    const std::uint32_t node = w->id();
    for (std::size_t c = 0; c < attr::kComponentCount; ++c) {
      const auto comp = static_cast<attr::Component>(c);
      reg->add_counter(p + attr::to_string(comp) + "_ns",
                       [ledger, node, comp] { return ledger->node_total(node, comp); });
    }
  }
}

Fabric::~Fabric() = default;

void Fabric::install_recovery() {
  if (auto* reg = MetricsRegistry::current()) {
    reg->add_counter("recovery.fallbacks", [this] { return fallbacks_; });
    reg->add_counter("recovery.fallback_replay_elems",
                     [this] { return fallback_replay_elems_; });
  }
  for (auto& w : workers_) w->set_switch_dead_handler([this] { on_switch_dead(); });
}

void Fabric::on_switch_dead() {
  if (fallback_pending_) return;
  fallback_pending_ = true;
  // Stop every worker's transmissions so the simulation drains; the pending
  // reduce_* call picks up the fallback once run() returns.
  for (auto& w : workers_) w->abort_reduction();
}

Fabric::FallbackPlan Fabric::collect_fallback_plan(std::uint64_t total_elems) {
  if (n_jobs_ != 1)
    throw std::runtime_error(
        "Fabric: switch declared dead on a multi-job fabric — the streaming-PS fallback "
        "replays one job's chunks and cannot arbitrate several tenants; rerun the surviving "
        "jobs on single-job fabrics");
  FallbackPlan plan;
  plan.drained_at = sim_.now();
  for (auto& w : workers_) {
    const auto offs = w->unconsumed_chunks();
    plan.offsets.insert(plan.offsets.end(), offs.begin(), offs.end());
  }
  std::sort(plan.offsets.begin(), plan.offsets.end());
  plan.offsets.erase(std::unique(plan.offsets.begin(), plan.offsets.end()),
                     plan.offsets.end());
  for (std::uint64_t off : plan.offsets)
    plan.replay_elems += std::min<std::uint64_t>(config_.elems_per_packet, total_elems - off);
  ++fallbacks_;
  fallback_replay_elems_ += plan.replay_elems;
  trace::emit(trace::kCatFault, sim_.now(), root().id(), "fallback_begin",
              {"chunks", static_cast<std::int64_t>(plan.offsets.size())},
              {"elems", static_cast<std::int64_t>(plan.replay_elems)});
  return plan;
}

void Fabric::finish_fallback() {
  for (auto& w : workers_) w->finish_aborted_reduction();
  fallback_pending_ = false;
}

namespace {
collectives::StreamingPsConfig fallback_ps_config(const FabricConfig& c, int n_workers) {
  collectives::StreamingPsConfig psc;
  psc.n_workers = n_workers;
  psc.placement = collectives::StreamingPsPlacement::Dedicated;
  psc.link_rate = c.link_rate;
  psc.propagation = c.propagation;
  psc.queue_limit_bytes = c.queue_limit_bytes;
  psc.loss_prob = c.loss_prob;
  psc.pool_size = c.pool_size;
  psc.elems_per_packet = c.elems_per_packet;
  psc.retransmit_timeout = c.retransmit_timeout;
  psc.nic = c.nic;
  psc.transport = c.transport;
  psc.rdma = c.rdma;
  psc.timing_only = c.timing_only;
  psc.switch_latency = c.switch_latency;
  psc.seed = c.seed + 9001; // distinct RNG stream for the replay
  return psc;
}
} // namespace

void Fabric::fallback_timing(const std::vector<Time>& start, std::vector<Time>& tat,
                             std::uint64_t total_elems) {
  const FallbackPlan plan = collect_fallback_plan(total_elems);
  std::vector<Time> ps_tat;
  {
    // The inner cluster's node ids collide with the fabric's; mask the ledger
    // so replay-internal spans cannot pollute the job's attribution.
    attr::SpanLedger::Scope mask(nullptr);
    collectives::StreamingPsCluster ps(fallback_ps_config(config_, workers_per_job_));
    ps_tat = ps.reduce_timing(plan.replay_elems);
  }
  for (std::size_t i = 0; i < tat.size(); ++i) {
    if (tat[i] >= 0) continue; // completed on the switch path before the abort
    tat[i] = (plan.drained_at - start[i]) + config_.fallback_reprovision + ps_tat[i];
    // The worker's surviving chunks were parked in kFallback at the abort;
    // they complete when the replay delivers, possibly past the fabric clock.
    attr::close_all(workers_[i]->id(), start[i] + tat[i]);
  }
  finish_fallback();
}

void Fabric::fallback_data(const std::vector<std::vector<std::int32_t>>& updates,
                           const std::vector<Time>& start, DataReduceResult& r) {
  const std::uint64_t total_elems = updates.empty() ? 0 : updates.front().size();
  const FallbackPlan plan = collect_fallback_plan(total_elems);
  // Replay the union of unconsumed chunks, compacted into one contiguous
  // vector per worker. int32 sums are order-independent and overflow-wrapping,
  // so the PS result is bit-identical to what the switch would have produced.
  std::vector<std::vector<std::int32_t>> compact(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    compact[i].reserve(plan.replay_elems);
    for (std::uint64_t off : plan.offsets) {
      const auto c = std::min<std::uint64_t>(config_.elems_per_packet, total_elems - off);
      compact[i].insert(compact[i].end(), updates[i].begin() + static_cast<std::ptrdiff_t>(off),
                        updates[i].begin() + static_cast<std::ptrdiff_t>(off + c));
    }
  }
  std::optional<collectives::StreamingPsCluster::DataReduceResult> psr_holder;
  {
    attr::SpanLedger::Scope mask(nullptr); // see fallback_timing
    collectives::StreamingPsCluster ps(fallback_ps_config(config_, workers_per_job_));
    psr_holder = ps.reduce_i32(compact);
  }
  auto& psr = *psr_holder;
  for (std::size_t i = 0; i < r.tat.size(); ++i) {
    if (r.tat[i] >= 0) continue;
    // Scatter the replayed sums back to their offsets. Chunks this worker DID
    // consume before the abort are overwritten with the identical value.
    std::size_t pos = 0;
    for (std::uint64_t off : plan.offsets) {
      const auto c = std::min<std::uint64_t>(config_.elems_per_packet, total_elems - off);
      std::copy_n(psr.outputs[i].begin() + static_cast<std::ptrdiff_t>(pos), c,
                  r.outputs[i].begin() + static_cast<std::ptrdiff_t>(off));
      pos += c;
    }
    r.tat[i] = (plan.drained_at - start[i]) + config_.fallback_reprovision + psr.tat[i];
    attr::close_all(workers_[i]->id(), start[i] + r.tat[i]);
  }
  finish_fallback();
}

void Fabric::set_loss_prob(double p) {
  for (auto& l : links_) l->set_loss_prob(p);
}

net::Tracer& Fabric::enable_tracing() {
  if (!tracer_) {
    tracer_ = std::make_unique<net::Tracer>();
    tracer_->set_capacity(1 << 20);
    for (auto& l : links_) l->set_tracer(tracer_.get());
  }
  return *tracer_;
}

std::vector<Time> Fabric::reduce_timing(std::uint64_t total_elems) {
  if (!config_.timing_only)
    throw std::logic_error("Fabric::reduce_timing requires timing_only config");
  std::vector<Time> start(workers_.size()), tat(workers_.size(), -1);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    start[i] = sim_.now();
    workers_[i]->start_reduction(total_elems, [this, &start, &tat, i] {
      tat[i] = sim_.now() - start[i];
    });
  }
  sim_.run();
  if (fallback_pending_) {
    fallback_timing(start, tat, total_elems);
    return tat;
  }
  for (Time t : tat)
    if (t < 0) throw std::runtime_error("Fabric::reduce_timing: reduction did not complete");
  return tat;
}

std::vector<std::vector<Time>> Fabric::reduce_timing_all(std::uint64_t total_elems) {
  std::vector<Time> tat = reduce_timing(total_elems);
  const auto per_job = static_cast<std::size_t>(workers_per_job_);
  std::vector<std::vector<Time>> out(static_cast<std::size_t>(n_jobs_));
  for (std::size_t i = 0; i < tat.size(); ++i) out[i / per_job].push_back(tat[i]);
  return out;
}

Fabric::DataReduceResult Fabric::reduce_i32(
    const std::vector<std::vector<std::int32_t>>& updates) {
  return reduce_i32_job(/*job=*/0, updates);
}

Fabric::DataReduceResult Fabric::reduce_i32_job(
    int job, const std::vector<std::vector<std::int32_t>>& updates) {
  if (config_.timing_only)
    throw std::logic_error("Fabric::reduce_i32 requires a data-mode cluster");
  if (job < 0 || job >= n_jobs_)
    throw std::invalid_argument("Fabric::reduce_i32: no such job");
  if (static_cast<int>(updates.size()) != workers_per_job_)
    throw std::invalid_argument("Fabric::reduce_i32: one update per worker required");

  const std::size_t base = static_cast<std::size_t>(job) * static_cast<std::size_t>(workers_per_job_);
  DataReduceResult r;
  r.outputs.resize(updates.size());
  r.tat.assign(updates.size(), -1);
  std::vector<Time> start(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    r.outputs[i].assign(updates[i].size(), 0);
    start[i] = sim_.now();
    workers_[base + i]->start_reduction(updates[i], r.outputs[i], [this, &start, &r, i] {
      r.tat[i] = sim_.now() - start[i];
    });
  }
  sim_.run();
  if (fallback_pending_) {
    fallback_data(updates, start, r);
    return r;
  }
  for (Time t : r.tat)
    if (t < 0) throw std::runtime_error("Fabric::reduce_i32: reduction did not complete");
  return r;
}

// --- the builder -------------------------------------------------------------

void TopologyBuilder::build() {
  std::visit(overloaded{
                 [&](const RackSpec& s) {
                   f_.n_jobs_ = 1;
                   f_.workers_per_job_ = s.n_workers;
                   build_star(1, s.n_workers, kWorkerMulticastGroup);
                 },
                 [&](const MultiJobSpec& s) {
                   f_.n_jobs_ = s.n_jobs;
                   f_.workers_per_job_ = s.workers_per_job;
                   build_star(s.n_jobs, s.workers_per_job, kJobMulticastBase);
                 },
                 [&](const HierarchySpec& s) {
                   levels_ = 2;
                   branching_ = s.racks;
                   workers_per_rack_ = s.workers_per_rack;
                   hierarchy_naming_ = true;
                   f_.n_jobs_ = 1;
                   f_.workers_per_job_ = s.racks * s.workers_per_rack;
                   int next_worker = 0;
                   build_subtree(0, nullptr, 0, next_worker);
                 },
                 [&](const TreeSpec& s) {
                   levels_ = s.levels;
                   branching_ = s.branching;
                   workers_per_rack_ = s.workers_per_rack;
                   f_.n_jobs_ = 1;
                   int next_worker = 0;
                   build_subtree(0, nullptr, 0, next_worker);
                   f_.workers_per_job_ = next_worker;
                 },
                 [&](const IrregularSpec& s) {
                   f_.n_jobs_ = 1;
                   f_.workers_per_job_ = static_cast<int>(s.worker_switch.size());
                   build_irregular(s);
                 },
             },
             f_.config_.topology);
}

worker::WorkerConfig TopologyBuilder::worker_config(int wid, int n_at_switch,
                                                    net::NodeId switch_id) const {
  worker::WorkerConfig wc;
  wc.wid = static_cast<std::uint16_t>(wid);
  wc.n_workers = n_at_switch;
  wc.pool_size = params_.pool_size;
  wc.elems_per_packet = params_.elems_per_packet;
  wc.wire_elem_bytes = params_.wire_elem_bytes;
  wc.retransmit_timeout = params_.retransmit_timeout;
  wc.adaptive_rto = params_.adaptive_rto;
  wc.nic = params_.nic;
  wc.transport = params_.transport;
  wc.rdma = params_.rdma;
  wc.switch_id = switch_id;
  wc.timing_only = params_.timing_only;
  wc.int_mode = params_.int_mode;
  wc.lossless = params_.lossless;
  // Lossless workers have no timers, so the timeout-driven escalation stages
  // can never fire; keep them disabled explicitly.
  wc.sync_after = params_.lossless ? 0 : params_.sync_after;
  wc.dead_after = params_.lossless ? 0 : params_.dead_after;
  return wc;
}

net::LinkConfig TopologyBuilder::link_config(BitsPerSecond rate) const {
  net::LinkConfig lc;
  lc.rate = rate;
  lc.propagation = params_.propagation;
  lc.queue_limit_bytes = params_.queue_limit_bytes;
  lc.loss_prob = params_.loss_prob;
  return lc;
}

void TopologyBuilder::build_star(int n_jobs, int workers_per_job,
                                 std::uint32_t group_base) {
  // Job 0 is admitted by the switch constructor; further jobs go through the
  // §6 admission control below.
  swprog::AggregationConfig sc;
  sc.n_workers = workers_per_job;
  sc.pool_size = params_.pool_size;
  sc.elems_per_packet = params_.elems_per_packet;
  sc.wid_base = 0;
  sc.timing_only = params_.timing_only;
  sc.mtu_emulation = params_.mtu_emulation;
  sc.multicast_group = group_base;
  sc.sram_budget_bytes = params_.sram_budget_bytes;
  sc.ablate_shadow_copy = params_.ablate_shadow_copy;
  sc.ablate_seen_bitmap = params_.ablate_seen_bitmap;
  sc.fp16_frac_bits = params_.fp16_frac_bits;
  sc.lossless = params_.lossless;
  auto sw = std::make_unique<swprog::AggregationSwitch>(
      f_.sim_, kSwitchId, "switch", sc, swprog::SwitchRole::Standalone, params_.switch_latency);

  for (int j = 1; j < n_jobs; ++j) {
    swprog::JobParams jp;
    jp.n_workers = workers_per_job;
    jp.pool_size = params_.pool_size;
    jp.wid_base = static_cast<std::uint16_t>(j * workers_per_job);
    jp.multicast_group = group_base + static_cast<std::uint32_t>(j);
    if (!sw->admit_job(static_cast<std::uint8_t>(j), jp))
      throw std::runtime_error("Fabric: job " + std::to_string(j) +
                               " rejected by admission control (SRAM budget)");
  }

  const net::LinkConfig lc = link_config(params_.link_rate);
  for (int j = 0; j < n_jobs; ++j) {
    std::vector<int> ports;
    for (int i = 0; i < workers_per_job; ++i) {
      const int g = j * workers_per_job + i; // global worker index == port
      worker::WorkerConfig wc = worker_config(g, workers_per_job, sw->id());
      wc.job = static_cast<std::uint8_t>(j);
      const std::string name = n_jobs > 1
                                   ? "j" + std::to_string(j) + "-worker-" + std::to_string(i)
                                   : "worker-" + std::to_string(g);
      auto w = std::make_unique<worker::Worker>(f_.sim_, static_cast<net::NodeId>(g), name, wc);
      auto link = std::make_unique<net::Link>(f_.sim_, lc, *w, /*port_a=*/0, *sw, /*port_b=*/g,
                                              params_.seed + static_cast<std::uint64_t>(g));
      w->set_uplink(*link);
      sw->attach(g, *link);
      ports.push_back(g);
      f_.workers_.push_back(std::move(w));
      f_.links_.push_back(std::move(link));
    }
    sw->add_multicast_group(group_base + static_cast<std::uint32_t>(j), ports);
  }
  f_.switches_.push_back(std::move(sw));
}

swprog::AggregationSwitch* TopologyBuilder::build_subtree(int level,
                                                          swprog::AggregationSwitch* parent,
                                                          int index_at_parent,
                                                          int& next_worker) {
  const bool bottom = level == levels_ - 1;
  const int n_children = bottom ? workers_per_rack_ : branching_;

  swprog::AggregationConfig sc;
  sc.n_workers = n_children;
  sc.pool_size = params_.pool_size;
  sc.elems_per_packet = params_.elems_per_packet;
  sc.timing_only = params_.timing_only;
  sc.mtu_emulation = params_.mtu_emulation;
  sc.multicast_group = kWorkerMulticastGroup;
  sc.sram_budget_bytes = params_.sram_budget_bytes;
  sc.ablate_shadow_copy = params_.ablate_shadow_copy;
  sc.ablate_seen_bitmap = params_.ablate_seen_bitmap;
  sc.fp16_frac_bits = params_.fp16_frac_bits;
  sc.lossless = params_.lossless;
  // Bottom switches see global worker ids; internal switches see their
  // children's leaf_wid (0..branching-1).
  sc.wid_base = bottom ? static_cast<std::uint16_t>(next_worker) : 0;
  const auto role = parent == nullptr ? swprog::SwitchRole::Root : swprog::SwitchRole::Leaf;
  if (parent != nullptr) {
    sc.parent_port = n_children; // one past the child ports
    sc.leaf_wid = static_cast<std::uint16_t>(index_at_parent);
  }
  net::NodeId id;
  std::string name;
  if (hierarchy_naming_) {
    id = parent == nullptr ? kRootId : kSwitchId + static_cast<net::NodeId>(index_at_parent);
    name = parent == nullptr ? "root" : "leaf-" + std::to_string(index_at_parent);
  } else {
    id = next_switch_id_++;
    // `index_at_parent` is only sibling-unique; include the node id so two
    // same-level switches under different parents get distinct names (metric
    // series names derive from node names and must not collide).
    name = "sw-l" + std::to_string(level) + "-n" + std::to_string(id);
  }
  auto owned = std::make_unique<swprog::AggregationSwitch>(f_.sim_, id, name, sc, role,
                                                           params_.switch_latency);
  swprog::AggregationSwitch* sw = owned.get();
  f_.switches_.push_back(std::move(owned));

  const net::LinkConfig lc = link_config(params_.link_rate);
  std::vector<int> child_ports;
  for (int c = 0; c < n_children; ++c) {
    if (bottom) {
      const int g = next_worker++;
      // Hierarchy workers historically advertise the job-wide count; tree
      // workers their rack's. The worker protocol uses neither, but keep the
      // configs bit-identical to what the pre-unification builders produced.
      const int n_for_config =
          hierarchy_naming_ ? branching_ * workers_per_rack_ : n_children;
      auto w = std::make_unique<worker::Worker>(f_.sim_, static_cast<net::NodeId>(g),
                                                "worker-" + std::to_string(g),
                                                worker_config(g, n_for_config, sw->id()));
      auto link = std::make_unique<net::Link>(f_.sim_, lc, *w, 0, *sw, c,
                                              params_.seed + static_cast<std::uint64_t>(g));
      w->set_uplink(*link);
      sw->attach(c, *link);
      f_.workers_.push_back(std::move(w));
      f_.links_.push_back(std::move(link));
    } else {
      swprog::AggregationSwitch* child = build_subtree(level + 1, sw, c, next_worker);
      const int child_parent_port =
          level + 1 == levels_ - 1 ? workers_per_rack_ : branching_;
      // Per-link RNG seeds predate unification; both schemes are kept so loss
      // experiments reproduce bit-for-bit against pre-refactor runs.
      const std::uint64_t seed =
          hierarchy_naming_ ? params_.seed + 1000 + static_cast<std::uint64_t>(c)
                            : params_.seed + 7000 + static_cast<std::uint64_t>(child->id());
      auto link = std::make_unique<net::Link>(f_.sim_, link_config(uplink_rate()), *child,
                                              child_parent_port, *sw, c, seed);
      child->attach(child_parent_port, *link);
      sw->attach(c, *link);
      f_.links_.push_back(std::move(link));
    }
    child_ports.push_back(c);
  }
  sw->add_multicast_group(kWorkerMulticastGroup, child_ports);
  return sw;
}

void TopologyBuilder::build_irregular(const IrregularSpec& spec) {
  // Fabric's ctor validated already, but the facades in cluster.hpp don't —
  // cheap enough to re-run unconditionally.
  validate_irregular(spec);
  const auto m = static_cast<int>(spec.switch_parent.size());
  const auto n_workers = static_cast<int>(spec.worker_switch.size());

  // Child lists in index order; ports at a switch follow these orders.
  std::vector<std::vector<int>> sw_children(static_cast<std::size_t>(m));
  std::vector<std::vector<int>> worker_children(static_cast<std::size_t>(m));
  for (int i = 1; i < m; ++i)
    sw_children[static_cast<std::size_t>(spec.switch_parent[static_cast<std::size_t>(i)])]
        .push_back(i);
  for (int w = 0; w < n_workers; ++w)
    worker_children[static_cast<std::size_t>(spec.worker_switch[static_cast<std::size_t>(w)])]
        .push_back(w);

  const auto n_children_of = [&](int i) {
    const auto idx = static_cast<std::size_t>(i);
    return static_cast<int>(worker_children[idx].empty() ? sw_children[idx].size()
                                                         : worker_children[idx].size());
  };

  // Switches in spec index order, so Fabric::switch_at(i) is spec switch i.
  for (int i = 0; i < m; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const bool leaf_switch = !worker_children[idx].empty();
    swprog::AggregationConfig sc;
    sc.n_workers = n_children_of(i);
    sc.pool_size = params_.pool_size;
    sc.elems_per_packet = params_.elems_per_packet;
    sc.timing_only = params_.timing_only;
    sc.mtu_emulation = params_.mtu_emulation;
    sc.multicast_group = kWorkerMulticastGroup;
    sc.sram_budget_bytes = params_.sram_budget_bytes;
    sc.ablate_shadow_copy = params_.ablate_shadow_copy;
    sc.ablate_seen_bitmap = params_.ablate_seen_bitmap;
    sc.fp16_frac_bits = params_.fp16_frac_bits;
    sc.lossless = params_.lossless;
    // Like tree bottoms: leaf switches see global worker ids (consecutive by
    // the non-decreasing worker_switch rule); internal ones their children's
    // leaf_wid.
    sc.wid_base = leaf_switch ? static_cast<std::uint16_t>(worker_children[idx].front()) : 0;
    const int parent = spec.switch_parent[idx];
    auto role = swprog::SwitchRole::Standalone;
    if (m > 1) role = parent < 0 ? swprog::SwitchRole::Root : swprog::SwitchRole::Leaf;
    if (parent >= 0) {
      sc.parent_port = n_children_of(i); // one past the child ports
      const auto& siblings = sw_children[static_cast<std::size_t>(parent)];
      sc.leaf_wid = static_cast<std::uint16_t>(
          std::find(siblings.begin(), siblings.end(), i) - siblings.begin());
    }
    f_.switches_.push_back(std::make_unique<swprog::AggregationSwitch>(
        f_.sim_, next_switch_id_ + static_cast<net::NodeId>(i), "sw-" + std::to_string(i), sc,
        role, params_.switch_latency));
  }

  // Worker links first (worker index order, tree-style seeds), then switch
  // uplinks (child index order, tree-style seeds keyed by the child's id) —
  // the layout documented at the declaration.
  for (int w = 0; w < n_workers; ++w) {
    const auto s = static_cast<std::size_t>(spec.worker_switch[static_cast<std::size_t>(w)]);
    auto& sw = *f_.switches_[s];
    const auto& group = worker_children[s];
    const int port = static_cast<int>(std::find(group.begin(), group.end(), w) - group.begin());
    auto wk = std::make_unique<worker::Worker>(
        f_.sim_, static_cast<net::NodeId>(w), "worker-" + std::to_string(w),
        worker_config(w, static_cast<int>(group.size()), sw.id()));
    auto link = std::make_unique<net::Link>(f_.sim_, link_config(params_.link_rate), *wk, 0, sw,
                                            port, params_.seed + static_cast<std::uint64_t>(w));
    wk->set_uplink(*link);
    sw.attach(port, *link);
    f_.workers_.push_back(std::move(wk));
    f_.links_.push_back(std::move(link));
  }
  for (int i = 1; i < m; ++i) {
    auto& child = *f_.switches_[static_cast<std::size_t>(i)];
    const int parent = spec.switch_parent[static_cast<std::size_t>(i)];
    auto& par = *f_.switches_[static_cast<std::size_t>(parent)];
    const auto& siblings = sw_children[static_cast<std::size_t>(parent)];
    const int port = static_cast<int>(std::find(siblings.begin(), siblings.end(), i) -
                                      siblings.begin());
    const int child_parent_port = n_children_of(i);
    auto link = std::make_unique<net::Link>(
        f_.sim_, link_config(uplink_rate()), child, child_parent_port, par, port,
        params_.seed + 7000 + static_cast<std::uint64_t>(child.id()));
    child.attach(child_parent_port, *link);
    par.attach(port, *link);
    f_.links_.push_back(std::move(link));
  }

  for (int i = 0; i < m; ++i) {
    std::vector<int> child_ports(static_cast<std::size_t>(n_children_of(i)));
    for (std::size_t p = 0; p < child_ports.size(); ++p) child_ports[p] = static_cast<int>(p);
    f_.switches_[static_cast<std::size_t>(i)]->add_multicast_group(kWorkerMulticastGroup,
                                                                   child_ports);
  }
}

} // namespace switchml::core
