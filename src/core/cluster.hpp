// Rack-scale SwitchML cluster builder: n workers attached to one
// programmable aggregation switch, each over its own full-duplex link.
// This is the deployment the paper's prototype targets (§1: up to 64 nodes
// at 100 Gbps on one Tofino).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "core/profiles.hpp"
#include "net/link.hpp"
#include "switchml_switch/aggregation_switch.hpp"
#include "worker/worker.hpp"

namespace switchml::core {

struct ClusterConfig {
  int n_workers = 8;
  BitsPerSecond link_rate = gbps(10);
  Time propagation = nsec(500);
  std::int64_t queue_limit_bytes = 16 * kMiB;
  double loss_prob = 0.0;

  std::uint32_t pool_size = 128;                                // s (§3.6)
  std::uint32_t elems_per_packet = net::kDefaultElemsPerPacket; // k
  std::uint8_t wire_elem_bytes = 4;
  Time retransmit_timeout = msec(1);
  bool adaptive_rto = false; // §6: RTT-adaptive RTO (Jacobson/Karels)
  net::NicConfig nic = switchml_worker_nic_10g();
  bool timing_only = false;
  bool mtu_emulation = false; // §5.5: switch forwards elements beyond 32 as-is
  Time switch_latency = nsec(400);
  std::uint64_t seed = 42;
  bool ablate_shadow_copy = false; // see AggregationConfig
  bool ablate_seen_bitmap = false;
  int fp16_frac_bits = 12; // switch ingress/egress table position (§3.7)
  // §3.2: run literal Algorithms 1/2 for lossless fabrics (Infiniband /
  // lossless RoCE): no bitmaps, shadow copies or timers. Requires
  // loss_prob == 0.
  bool lossless = false;

  // Convenience: profile for `rate` with the matching NIC and pool size.
  static ClusterConfig for_rate(BitsPerSecond rate, int n_workers = 8);
};

class Cluster {
public:
  explicit Cluster(const ClusterConfig& config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] int n_workers() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] worker::Worker& worker(int i) { return *workers_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] swprog::AggregationSwitch& agg_switch() { return *switch_; }
  [[nodiscard]] net::Link& link(int i) { return *links_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  // Sets the Bernoulli loss probability on every link, both directions
  // (the §5.5 loss experiments apply uniform loss "on every link").
  void set_loss_prob(double p);

  // Attaches a packet tracer to every link and returns it.
  net::Tracer& enable_tracing();

  // Runs one timing-only aggregation of `total_elems` elements on all
  // workers and returns each worker's tensor aggregation time (TAT, §5.1).
  std::vector<Time> reduce_timing(std::uint64_t total_elems);

  // Data-mode aggregation: updates[i] is worker i's quantized model update;
  // returns each worker's aggregated result and TAT.
  struct DataReduceResult {
    std::vector<std::vector<std::int32_t>> outputs;
    std::vector<Time> tat;
  };
  DataReduceResult reduce_i32(const std::vector<std::vector<std::int32_t>>& updates);

private:
  ClusterConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<swprog::AggregationSwitch> switch_;
  std::vector<std::unique_ptr<worker::Worker>> workers_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::unique_ptr<net::Tracer> tracer_;
};

// --- §6: multi-job (tenancy) -------------------------------------------------

// Several independent training jobs sharing ONE switch, each with its own
// admitted aggregator pool. Workers of different jobs are distinct machines
// on their own ports, so jobs contend only for switch pipeline/SRAM — which
// is the paper's point: one reduction uses well under 10% of the chip, so
// concurrent jobs do not slow each other down.
struct MultiJobConfig {
  int n_jobs = 2;
  int workers_per_job = 4;
  BitsPerSecond link_rate = gbps(10);
  Time propagation = nsec(500);
  std::int64_t queue_limit_bytes = 16 * kMiB;
  double loss_prob = 0.0;
  std::uint32_t pool_size = 128;
  std::uint32_t elems_per_packet = net::kDefaultElemsPerPacket;
  Time retransmit_timeout = msec(1);
  net::NicConfig nic = switchml_worker_nic_10g();
  bool timing_only = false;
  Time switch_latency = nsec(400);
  std::size_t sram_budget_bytes = 4 * kMiB;
  std::uint64_t seed = 42;
};

class MultiJobCluster {
public:
  explicit MultiJobCluster(const MultiJobConfig& config);
  MultiJobCluster(const MultiJobCluster&) = delete;
  MultiJobCluster& operator=(const MultiJobCluster&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] int n_jobs() const { return config_.n_jobs; }
  [[nodiscard]] worker::Worker& worker(int job, int i) {
    return *workers_.at(static_cast<std::size_t>(job * config_.workers_per_job + i));
  }
  [[nodiscard]] swprog::AggregationSwitch& agg_switch() { return *switch_; }

  // Runs one timing-only reduction of `total_elems` on EVERY job
  // concurrently; returns per-job, per-worker TATs.
  std::vector<std::vector<Time>> reduce_timing_all(std::uint64_t total_elems);

  // Data mode for one job (other jobs idle).
  Cluster::DataReduceResult reduce_i32(int job,
                                       const std::vector<std::vector<std::int32_t>>& updates);

private:
  MultiJobConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<swprog::AggregationSwitch> switch_;
  std::vector<std::unique_ptr<worker::Worker>> workers_;
  std::vector<std::unique_ptr<net::Link>> links_;
};

// --- §6: hierarchical multi-rack composition --------------------------------

struct HierarchyConfig {
  int racks = 2;
  int workers_per_rack = 8;
  BitsPerSecond worker_link_rate = gbps(10);
  BitsPerSecond uplink_rate = gbps(10); // leaf -> root (>= worker rate: p:1 reduction)
  Time propagation = nsec(500);
  std::int64_t queue_limit_bytes = 16 * kMiB;
  double loss_prob = 0.0;
  std::uint32_t pool_size = 128;
  std::uint32_t elems_per_packet = net::kDefaultElemsPerPacket;
  Time retransmit_timeout = msec(1);
  net::NicConfig nic = switchml_worker_nic_10g();
  bool timing_only = false;
  Time switch_latency = nsec(400);
  std::uint64_t seed = 42;
};

// Arbitrary-depth tree of aggregation switches (§6: "a very large n coupled
// with a relatively small p would require a hierarchy with H > 3"). Level 0
// is the root; every internal switch runs the Leaf role toward its parent,
// which composes recursively: completion forwards ONE partial upstream,
// results cascade downward, and worker retransmissions regenerate partials
// at every affected level.
struct TreeConfig {
  int levels = 3;          // including the root (2 == HierarchicalCluster)
  int branching = 2;       // children per non-leaf switch
  int workers_per_rack = 4; // workers per bottom-level switch
  BitsPerSecond link_rate = gbps(10);
  Time propagation = nsec(500);
  std::int64_t queue_limit_bytes = 16 * kMiB;
  double loss_prob = 0.0;
  std::uint32_t pool_size = 64;
  std::uint32_t elems_per_packet = net::kDefaultElemsPerPacket;
  Time retransmit_timeout = msec(1);
  net::NicConfig nic = switchml_worker_nic_10g();
  bool timing_only = false;
  Time switch_latency = nsec(400);
  std::uint64_t seed = 42;
};

class TreeCluster {
public:
  explicit TreeCluster(const TreeConfig& config);
  TreeCluster(const TreeCluster&) = delete;
  TreeCluster& operator=(const TreeCluster&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] int n_workers() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] worker::Worker& worker(int i) { return *workers_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] swprog::AggregationSwitch& root() { return *switches_.front(); }
  [[nodiscard]] std::size_t n_switches() const { return switches_.size(); }
  [[nodiscard]] swprog::AggregationSwitch& switch_at(std::size_t i) { return *switches_.at(i); }
  [[nodiscard]] const TreeConfig& config() const { return config_; }

  void set_loss_prob(double p);
  std::vector<Time> reduce_timing(std::uint64_t total_elems);
  Cluster::DataReduceResult reduce_i32(const std::vector<std::vector<std::int32_t>>& updates);

private:
  // Builds the subtree under `parent` (or the root when parent is null);
  // returns the new switch.
  swprog::AggregationSwitch* build_switch(int level, swprog::AggregationSwitch* parent,
                                          int index_at_parent, int& next_worker);

  TreeConfig config_;
  sim::Simulation sim_;
  std::vector<std::unique_ptr<swprog::AggregationSwitch>> switches_; // [0] = root
  std::vector<std::unique_ptr<worker::Worker>> workers_;
  std::vector<std::unique_ptr<net::Link>> links_;
  net::NodeId next_switch_id_ = 30'000;
};

class HierarchicalCluster {
public:
  explicit HierarchicalCluster(const HierarchyConfig& config);
  HierarchicalCluster(const HierarchicalCluster&) = delete;
  HierarchicalCluster& operator=(const HierarchicalCluster&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] int n_workers() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] worker::Worker& worker(int i) { return *workers_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] swprog::AggregationSwitch& leaf(int r) { return *leaves_.at(static_cast<std::size_t>(r)); }
  [[nodiscard]] swprog::AggregationSwitch& root() { return *root_; }
  [[nodiscard]] const HierarchyConfig& config() const { return config_; }

  void set_loss_prob(double p);
  std::vector<Time> reduce_timing(std::uint64_t total_elems);
  Cluster::DataReduceResult reduce_i32(const std::vector<std::vector<std::int32_t>>& updates);

private:
  HierarchyConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<swprog::AggregationSwitch> root_;
  std::vector<std::unique_ptr<swprog::AggregationSwitch>> leaves_;
  std::vector<std::unique_ptr<worker::Worker>> workers_;
  std::vector<std::unique_ptr<net::Link>> links_;
};

} // namespace switchml::core
