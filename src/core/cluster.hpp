// The four deployment shapes the paper evaluates, as thin facades over the
// unified fabric layer (core/fabric.hpp). Each facade pairs a legacy config
// struct — now just FabricParams plus the shape fields — with the accessors
// its callers always had; all wiring lives in TopologyBuilder.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fabric.hpp"

namespace switchml::core {

// Rack-scale cluster (§1): n workers attached to one programmable
// aggregation switch, each over its own full-duplex link.
struct ClusterConfig : FabricParams {
  int n_workers = 8;

  // Convenience: profile for `rate` with the matching NIC and pool size.
  static ClusterConfig for_rate(BitsPerSecond rate, int n_workers = 8);

  [[nodiscard]] FabricConfig fabric() const {
    return FabricConfig(*this, RackSpec{n_workers});
  }
};

class Cluster {
public:
  explicit Cluster(const ClusterConfig& config) : config_(config), fabric_(config.fabric()) {}
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return fabric_.simulation(); }
  [[nodiscard]] int n_workers() const { return fabric_.n_workers(); }
  [[nodiscard]] worker::Worker& worker(int i) { return fabric_.worker(i); }
  [[nodiscard]] swprog::AggregationSwitch& agg_switch() { return fabric_.root(); }
  [[nodiscard]] net::Link& link(int i) { return fabric_.link(static_cast<std::size_t>(i)); }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] MetricsRegistry& metrics() { return fabric_.metrics(); }

  // Sets the Bernoulli loss probability on every link, both directions
  // (the §5.5 loss experiments apply uniform loss "on every link").
  void set_loss_prob(double p) { fabric_.set_loss_prob(p); }

  // Attaches a packet tracer to every link and returns it.
  net::Tracer& enable_tracing() { return fabric_.enable_tracing(); }

  // Runs one timing-only aggregation of `total_elems` elements on all
  // workers and returns each worker's tensor aggregation time (TAT, §5.1).
  std::vector<Time> reduce_timing(std::uint64_t total_elems) {
    return fabric_.reduce_timing(total_elems);
  }

  // Data-mode aggregation: updates[i] is worker i's quantized model update;
  // returns each worker's aggregated result and TAT.
  using DataReduceResult = Fabric::DataReduceResult;
  DataReduceResult reduce_i32(const std::vector<std::vector<std::int32_t>>& updates) {
    return fabric_.reduce_i32(updates);
  }

private:
  ClusterConfig config_;
  Fabric fabric_;
};

// --- §6: multi-job (tenancy) -------------------------------------------------

// Several independent training jobs sharing ONE switch, each with its own
// admitted aggregator pool. Workers of different jobs are distinct machines
// on their own ports, so jobs contend only for switch pipeline/SRAM — which
// is the paper's point: one reduction uses well under 10% of the chip, so
// concurrent jobs do not slow each other down.
struct MultiJobConfig : FabricParams {
  int n_jobs = 2;
  int workers_per_job = 4;

  [[nodiscard]] FabricConfig fabric() const {
    return FabricConfig(*this, MultiJobSpec{n_jobs, workers_per_job});
  }
};

class MultiJobCluster {
public:
  explicit MultiJobCluster(const MultiJobConfig& config)
      : config_(config), fabric_(config.fabric()) {}
  MultiJobCluster(const MultiJobCluster&) = delete;
  MultiJobCluster& operator=(const MultiJobCluster&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return fabric_.simulation(); }
  [[nodiscard]] int n_jobs() const { return fabric_.n_jobs(); }
  [[nodiscard]] worker::Worker& worker(int job, int i) {
    return fabric_.worker(job * config_.workers_per_job + i);
  }
  [[nodiscard]] swprog::AggregationSwitch& agg_switch() { return fabric_.root(); }
  [[nodiscard]] const MultiJobConfig& config() const { return config_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] MetricsRegistry& metrics() { return fabric_.metrics(); }

  // Runs one timing-only reduction of `total_elems` on EVERY job
  // concurrently; returns per-job, per-worker TATs.
  std::vector<std::vector<Time>> reduce_timing_all(std::uint64_t total_elems) {
    return fabric_.reduce_timing_all(total_elems);
  }

  // Data mode for one job (other jobs idle).
  Cluster::DataReduceResult reduce_i32(int job,
                                       const std::vector<std::vector<std::int32_t>>& updates) {
    return fabric_.reduce_i32_job(job, updates);
  }

private:
  MultiJobConfig config_;
  Fabric fabric_;
};

// --- §6: hierarchical multi-rack composition --------------------------------

struct HierarchyConfig : FabricParams {
  int racks = 2;
  int workers_per_rack = 8;

  [[nodiscard]] FabricConfig fabric() const {
    return FabricConfig(*this, HierarchySpec{racks, workers_per_rack});
  }
};

class HierarchicalCluster {
public:
  explicit HierarchicalCluster(const HierarchyConfig& config)
      : config_(config), fabric_(config.fabric()) {}
  HierarchicalCluster(const HierarchicalCluster&) = delete;
  HierarchicalCluster& operator=(const HierarchicalCluster&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return fabric_.simulation(); }
  [[nodiscard]] int n_workers() const { return fabric_.n_workers(); }
  [[nodiscard]] worker::Worker& worker(int i) { return fabric_.worker(i); }
  [[nodiscard]] swprog::AggregationSwitch& leaf(int r) {
    return fabric_.switch_at(1 + static_cast<std::size_t>(r));
  }
  [[nodiscard]] swprog::AggregationSwitch& root() { return fabric_.root(); }
  [[nodiscard]] const HierarchyConfig& config() const { return config_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] MetricsRegistry& metrics() { return fabric_.metrics(); }

  void set_loss_prob(double p) { fabric_.set_loss_prob(p); }
  std::vector<Time> reduce_timing(std::uint64_t total_elems) {
    return fabric_.reduce_timing(total_elems);
  }
  Cluster::DataReduceResult reduce_i32(const std::vector<std::vector<std::int32_t>>& updates) {
    return fabric_.reduce_i32(updates);
  }

private:
  HierarchyConfig config_;
  Fabric fabric_;
};

// Arbitrary-depth tree of aggregation switches (§6: "a very large n coupled
// with a relatively small p would require a hierarchy with H > 3"). Level 0
// is the root; every internal switch runs the Leaf role toward its parent,
// which composes recursively: completion forwards ONE partial upstream,
// results cascade downward, and worker retransmissions regenerate partials
// at every affected level.
struct TreeConfig : FabricParams {
  int levels = 3;           // including the root (2 == HierarchicalCluster)
  int branching = 2;        // children per non-leaf switch
  int workers_per_rack = 4; // workers per bottom-level switch

  TreeConfig() { pool_size = 64; }

  [[nodiscard]] FabricConfig fabric() const {
    return FabricConfig(*this, TreeSpec{levels, branching, workers_per_rack});
  }
};

class TreeCluster {
public:
  explicit TreeCluster(const TreeConfig& config) : config_(config), fabric_(config.fabric()) {}
  TreeCluster(const TreeCluster&) = delete;
  TreeCluster& operator=(const TreeCluster&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return fabric_.simulation(); }
  [[nodiscard]] int n_workers() const { return fabric_.n_workers(); }
  [[nodiscard]] worker::Worker& worker(int i) { return fabric_.worker(i); }
  [[nodiscard]] swprog::AggregationSwitch& root() { return fabric_.root(); }
  [[nodiscard]] std::size_t n_switches() const { return fabric_.n_switches(); }
  [[nodiscard]] swprog::AggregationSwitch& switch_at(std::size_t i) {
    return fabric_.switch_at(i);
  }
  [[nodiscard]] const TreeConfig& config() const { return config_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] MetricsRegistry& metrics() { return fabric_.metrics(); }

  void set_loss_prob(double p) { fabric_.set_loss_prob(p); }
  std::vector<Time> reduce_timing(std::uint64_t total_elems) {
    return fabric_.reduce_timing(total_elems);
  }
  Cluster::DataReduceResult reduce_i32(const std::vector<std::vector<std::int32_t>>& updates) {
    return fabric_.reduce_i32(updates);
  }

private:
  TreeConfig config_;
  Fabric fabric_;
};

} // namespace switchml::core
