// Calibrated host/NIC/transport profiles for the testbed the paper evaluates
// (§5.1): dual-socket Xeon workers with Intel 82599ES NICs at 10 Gbps and
// Mellanox CX-5 NICs at 100 Gbps, DPDK workers using 4 cores.
//
// Absolute constants are calibration knobs for the simulator, chosen so the
// well-understood anchors of the paper hold:
//   * SwitchML saturates 10 Gbps with 4 cores but runs ~20% below line rate
//     at 100 Gbps (the paper's Flow-Director 4-core limitation, §5.1);
//   * optimal pool sizes land at 128 (10G) and 512 (100G) per §3.6;
//   * NCCL/Gloo software per-byte costs reproduce the relative ordering of
//     Fig 4 (NCCL > Gloo, both well below the ring line-rate bound).
#pragma once

#include "net/nic.hpp"
#include "net/reliable.hpp"

namespace switchml::core {

// --- SwitchML DPDK worker --------------------------------------------------

inline net::NicConfig switchml_worker_nic_10g(int cores = 4) {
  net::NicConfig nic;
  nic.cores = cores;
  nic.per_packet_tx = nsec(26);
  nic.per_packet_rx = nsec(26);
  nic.per_batch_overhead = nsec(320);
  nic.batch_size = 32;
  nic.tx_latency = usec(4); // burst accumulation at 10G
  nic.rx_latency = usec(4);
  return nic;
}

inline net::NicConfig switchml_worker_nic_100g(int cores = 4) {
  net::NicConfig nic = switchml_worker_nic_10g(cores);
  nic.tx_latency = nsec(2500); // CX-5: bursts fill ~10x faster
  nic.rx_latency = nsec(2500);
  return nic;
}

inline net::NicConfig switchml_worker_nic(BitsPerSecond rate, int cores = 4) {
  return rate >= gbps(100) ? switchml_worker_nic_100g(cores) : switchml_worker_nic_10g(cores);
}

// --- UDP-vs-RDMA crossover (bench/transport_crossover) ----------------------
//
// The calibrated worker NICs above carry the whole DPDK datapath cost in the
// per-packet term — exact for the 180-byte anchors, but it understates the
// per-byte packetization/copy work once packets grow toward the MTU. This
// profile adds that term explicitly (~0.35 ns/B ≈ 2.9 GB/s of touched bytes
// per core), which is what turns the UDP datapath CPU-bound at 100 Gbps with
// MTU frames — the regime where the paper's RDMA-UC transport, whose NIC
// DMAs and segments messages with zero per-byte CPU, pulls >2x ahead.
inline net::NicConfig crossover_udp_nic(BitsPerSecond rate, int cores = 4) {
  net::NicConfig nic = switchml_worker_nic(rate, cores);
  nic.per_byte_tx = 0.35;
  nic.per_byte_rx = 0.35;
  return nic;
}

// --- software parameter server (DPDK program running Algorithm 1, §5.3) ----

inline net::NicConfig ps_host_nic(BitsPerSecond rate, int cores = 4) {
  net::NicConfig nic = switchml_worker_nic(rate, cores);
  nic.per_packet_rx = nsec(34); // aggregation arithmetic in software
  return nic;
}

// --- collective-library host profiles (TCP/RDMA stacks) ---------------------

struct BaselineProfile {
  net::NicConfig nic;
  net::TransportProfile transport;
};

// Gloo over TCP: kernel stack, memcpy-heavy reduction path.
inline BaselineProfile gloo_tcp(BitsPerSecond rate) {
  BaselineProfile p;
  p.nic.cores = 4;
  p.nic.per_packet_tx = nsec(1200);
  p.nic.per_packet_rx = nsec(1500);
  p.nic.per_byte_tx = 0.25;
  p.nic.per_byte_rx = rate >= gbps(100) ? 0.45 : 1.4;
  p.nic.per_batch_overhead = 0;
  p.nic.batch_size = 1;
  // Kernel TCP under load: socket buffers + interrupt coalescing put the
  // end-to-end RTT in the hundreds of microseconds, which is what makes the
  // AIMD window collapse bite under random loss (Fig 5).
  p.nic.tx_latency = usec(150);
  p.nic.rx_latency = usec(150);
  p.transport.mss = 1460;
  p.transport.window_bytes = 1024 * 1024;
  p.transport.rto_initial = msec(4);
  return p;
}

// NCCL over TCP sockets: tighter datapath (direct GPU memory access).
inline BaselineProfile nccl_tcp(BitsPerSecond rate) {
  BaselineProfile p;
  p.nic.cores = 4;
  p.nic.per_packet_tx = nsec(400);
  p.nic.per_packet_rx = nsec(500);
  p.nic.per_byte_tx = 0.12;
  p.nic.per_byte_rx = rate >= gbps(100) ? 0.12 : 1.1;
  p.nic.per_batch_overhead = 0;
  p.nic.batch_size = 1;
  p.nic.tx_latency = usec(100);
  p.nic.rx_latency = usec(100);
  p.transport.mss = 1460;
  p.transport.window_bytes = 2 * 1024 * 1024;
  p.transport.rto_initial = msec(4);
  return p;
}

// Gloo over RDMA (§5.4: ~4x faster than Gloo TCP at 100 Gbps for 50 MB).
inline BaselineProfile gloo_rdma(BitsPerSecond rate) {
  BaselineProfile p;
  p.nic.cores = 4;
  p.nic.per_packet_tx = nsec(150);
  p.nic.per_packet_rx = nsec(150);
  p.nic.per_byte_tx = 0.05;
  p.nic.per_byte_rx = rate >= gbps(100) ? 0.45 : 0.6;
  p.nic.per_batch_overhead = 0;
  p.nic.batch_size = 1;
  p.nic.tx_latency = usec(2);
  p.nic.rx_latency = usec(2);
  p.transport.mss = 4096;
  p.transport.window_bytes = 4 * 1024 * 1024;
  p.transport.rto_initial = msec(4);
  return p;
}

// Parameter-server transport: DPDK-style small packets, mirroring the 180-byte
// SwitchML update format (payload 128 B); MTU-sized variant for Fig 7.
inline net::TransportProfile ps_transport_small() {
  net::TransportProfile t;
  t.mss = 128;
  t.window_bytes = 64 * 1024;
  t.rto_initial = msec(1);
  return t;
}

inline net::TransportProfile ps_transport_mtu() {
  net::TransportProfile t;
  t.mss = 1460;
  t.window_bytes = 512 * 1024;
  t.rto_initial = msec(1);
  return t;
}

// §3.6: optimal pool size is the next power of two of ceil(BDP / b).
inline std::uint32_t recommended_pool_size(BitsPerSecond rate, Time end_to_end_rtt,
                                           std::uint32_t packet_bytes) {
  const double bdp_bytes =
      static_cast<double>(rate) / 8.0 * (static_cast<double>(end_to_end_rtt) / kSecond);
  auto needed = static_cast<std::uint64_t>(bdp_bytes / packet_bytes) + 1;
  std::uint32_t s = 1;
  while (s < needed) s <<= 1;
  return s;
}

} // namespace switchml::core
