// The unified fabric layer: one config, one topology builder, one owner for
// every SwitchML deployment shape the paper evaluates.
//
// `FabricParams` carries the link/NIC/protocol parameters every deployment
// shares; `TopologySpec` selects the shape (§1 rack star, §6 multi-job
// tenancy, §6 two-level hierarchy, §6 arbitrary-depth tree); `TopologyBuilder`
// turns the pair into wired nodes and links inside a `Fabric`. The four
// cluster classes in core/cluster.hpp are thin facades over this one build
// path, so a wiring rule (seeds, port layout, multicast groups, switch roles)
// exists in exactly one place.
//
// Construction also installs a `MetricsRegistry` scope, so every worker,
// switch, and link built here registers its counters; `Fabric::metrics()`
// exposes the registry for tests and for the bench telemetry sidecars.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "core/fault_plan.hpp"
#include "core/profiles.hpp"
#include "net/link.hpp"
#include "switchml_switch/aggregation_switch.hpp"
#include "worker/worker.hpp"

namespace switchml::core {

class FaultInjector;

// Link/NIC/protocol parameters shared by every topology. Fields that only one
// deployment exercises (e.g. `sram_budget_bytes` for tenancy, the ablation
// switches for the rack benches) still live here: they default to the values
// the other topologies always used, so setting them is opt-in.
struct FabricParams {
  BitsPerSecond link_rate = gbps(10);
  // Switch-to-switch links (hierarchy/tree). 0 means "same as link_rate".
  BitsPerSecond uplink_rate = 0;
  Time propagation = nsec(500);
  std::int64_t queue_limit_bytes = 16 * kMiB;
  double loss_prob = 0.0;

  std::uint32_t pool_size = 128;                                // s (§3.6)
  std::uint32_t elems_per_packet = net::kDefaultElemsPerPacket; // k
  std::uint8_t wire_elem_bytes = 4;
  Time retransmit_timeout = msec(1);
  bool adaptive_rto = false; // §6: RTT-adaptive RTO (Jacobson/Karels)
  net::NicConfig nic = switchml_worker_nic_10g();
  // Host channel model for every worker (and the PS fallback): the DPDK/UDP
  // datapath or RDMA UC with the cost knobs in `rdma`. UC carries no
  // transport-level ACK/RTO — loss repair stays with the slot protocol.
  net::TransportKind transport = net::kDefaultTransport;
  net::RdmaUcParams rdma;
  bool timing_only = false;
  // In-band telemetry mode for every worker's data packets (inttel::kModeOff
  // / kModePhantom / kModeOnWire). Non-off builds a fabric-wide
  // FaultLocalizer fed by every worker's IntCollector. No effect when the
  // telemetry stack is compiled out (SWITCHML_INT=0).
  std::uint8_t int_mode = inttel::kModeOff;
  bool mtu_emulation = false; // §5.5: switch forwards elements beyond 32 as-is
  Time switch_latency = nsec(400);
  std::uint64_t seed = 42;
  bool ablate_shadow_copy = false; // see AggregationConfig
  bool ablate_seen_bitmap = false;
  int fp16_frac_bits = 12; // switch ingress/egress table position (§3.7)
  // §3.2: run literal Algorithms 1/2 for lossless fabrics (Infiniband /
  // lossless RoCE): no bitmaps, shadow copies or timers. Requires
  // loss_prob == 0.
  bool lossless = false;
  // §6 tenancy: dataplane SRAM available for aggregation state.
  std::size_t sram_budget_bytes = 4 * kMiB;
  // Recovery escalation budgets, in CONSECUTIVE timeouts of one slot (0
  // disables the stage; see WorkerConfig). After sync_after the worker rides
  // a slot-state probe on each retransmission — the probe detects a switch
  // restart that raced a lost result and drives the rescue re-contribution.
  // After dead_after the worker declares the switch dead and the job
  // degrades to the streaming-PS fallback collective.
  int sync_after = 3;
  int dead_after = 25;
  // Modeled delay between the dead declaration and the fallback collective
  // taking over (provisioning PS processes on the worker hosts).
  Time fallback_reprovision = msec(50);
  // Deterministic fault schedule (stragglers, link flaps, loss bursts, switch
  // restarts, switch kills) executed by a FaultInjector the fabric constructs
  // when the plan is non-empty. See core/fault_plan.hpp for the time
  // semantics.
  FaultPlan faults;
};

// --- topology shapes ---------------------------------------------------------

// n workers on one switch (§1: the prototype's rack-scale deployment).
struct RackSpec {
  int n_workers = 8;
};

// Several independent jobs sharing one switch, each with its own admitted
// aggregator pool (§6 multi-tenancy).
struct MultiJobSpec {
  int n_jobs = 2;
  int workers_per_job = 4;
};

// Two-level root + per-rack leaves (§6 hierarchical composition).
struct HierarchySpec {
  int racks = 2;
  int workers_per_rack = 8;
};

// Arbitrary-depth tree of switches; levels == 2 matches HierarchySpec's shape.
struct TreeSpec {
  int levels = 3;
  int branching = 2;
  int workers_per_rack = 4;
};

// Explicit switch/worker adjacency: any single-rooted switch tree, no shape
// constraints beyond what the aggregation protocol needs. Scenario files use
// this for asymmetric fabrics (uneven racks, lopsided trees) that none of the
// parametric specs can describe.
//
// `switch_parent[i]` is the parent switch of switch i: entry 0 must be -1
// (the root), and every other entry must name an earlier switch
// (0 <= switch_parent[i] < i), which makes the adjacency an acyclic
// single-rooted tree by construction. `worker_switch[w]` attaches worker w to
// that switch. Two structural rules, both enforced by validate_irregular:
//   * a switch's children are either all workers or all switches — the
//     aggregation protocol addresses worker children by `wid - wid_base` in
//     its seen bitmaps, so a switch cannot mix contribution kinds;
//   * `worker_switch` is non-decreasing, so each leaf switch's workers hold
//     CONSECUTIVE global ids and worker w in the file is Fabric::worker(w).
struct IrregularSpec {
  std::vector<int> switch_parent = {-1};
  std::vector<int> worker_switch = {0, 0};
};

// Structural validation of an IrregularSpec (see the rules above); throws
// std::invalid_argument. Free-standing so scenario loaders can validate a
// parsed spec without building a fabric.
void validate_irregular(const IrregularSpec& spec);

using TopologySpec =
    std::variant<RackSpec, MultiJobSpec, HierarchySpec, TreeSpec, IrregularSpec>;

struct FabricConfig : FabricParams {
  TopologySpec topology = RackSpec{};

  FabricConfig() = default;
  FabricConfig(const FabricParams& params, TopologySpec topo)
      : FabricParams(params), topology(std::move(topo)) {}
};

// --- the fabric --------------------------------------------------------------

// Owns the simulation, the wired nodes/links of one deployment, and the
// metrics registry those components registered into.
class Fabric {
public:
  explicit Fabric(FabricConfig config);
  ~Fabric(); // out of line: FaultInjector is incomplete here
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] const FabricConfig& config() const { return config_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }

  [[nodiscard]] int n_workers() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] worker::Worker& worker(int i) { return *workers_.at(static_cast<std::size_t>(i)); }

  // Switches in build order: [0] is the root (or the only switch); a
  // two-level hierarchy's leaf r is switch_at(1 + r).
  [[nodiscard]] std::size_t n_switches() const { return switches_.size(); }
  [[nodiscard]] swprog::AggregationSwitch& switch_at(std::size_t i) { return *switches_.at(i); }
  [[nodiscard]] swprog::AggregationSwitch& root() { return *switches_.front(); }

  [[nodiscard]] std::size_t n_links() const { return links_.size(); }
  [[nodiscard]] net::Link& link(std::size_t i) { return *links_.at(i); }

  // Jobs sharing the fabric: 1 except for MultiJobSpec.
  [[nodiscard]] int n_jobs() const { return n_jobs_; }
  [[nodiscard]] int workers_per_job() const { return workers_per_job_; }

  // Sets the Bernoulli loss probability on every link, both directions
  // (the §5.5 loss experiments apply uniform loss "on every link").
  void set_loss_prob(double p);

  // Attaches a packet tracer to every link and returns it.
  net::Tracer& enable_tracing();

  // The fault injector executing config().faults; null when the plan is empty.
  [[nodiscard]] FaultInjector* fault_injector() { return faults_.get(); }

  // The online fault localizer fed by every worker's INT collector; null
  // unless the telemetry stack is compiled in and config().int_mode != off.
  [[nodiscard]] inttel::FaultLocalizer* int_localizer() { return int_localizer_.get(); }

  // True once any reduction on this fabric degraded to the streaming-PS
  // fallback (after a worker declared the switch dead).
  [[nodiscard]] bool fallback_engaged() const { return fallbacks_ > 0; }

  // Runs one timing-only aggregation of `total_elems` elements on all
  // workers and returns each worker's tensor aggregation time (TAT, §5.1).
  std::vector<Time> reduce_timing(std::uint64_t total_elems);

  // Timing-only reduction on EVERY job concurrently; per-job, per-worker TATs.
  std::vector<std::vector<Time>> reduce_timing_all(std::uint64_t total_elems);

  // Data-mode aggregation: updates[i] is worker i's quantized model update;
  // returns each worker's aggregated result and TAT.
  struct DataReduceResult {
    std::vector<std::vector<std::int32_t>> outputs;
    std::vector<Time> tat;
  };
  DataReduceResult reduce_i32(const std::vector<std::vector<std::int32_t>>& updates);

  // Data mode for one job's workers (other jobs idle).
  DataReduceResult reduce_i32_job(int job, const std::vector<std::vector<std::int32_t>>& updates);

private:
  friend class TopologyBuilder;

  // --- switch-dead fallback (graceful degradation) ---------------------------
  // A worker exhausting its dead_after retry budget fires on_switch_dead(),
  // which aborts every worker's reduction so the simulation drains; the
  // reduce_* call then replays the union of unconsumed chunks on a
  // streaming-PS collective with honest TAT inflation (drain + reprovision +
  // PS time). Bit-exact in data mode: int32 sums are order-independent.
  struct FallbackPlan {
    Time drained_at = 0;
    std::vector<std::uint64_t> offsets; // union of unconsumed chunk offsets
    std::uint64_t replay_elems = 0;
  };
  void install_recovery();
  void install_observability();
  void on_switch_dead();
  FallbackPlan collect_fallback_plan(std::uint64_t total_elems);
  void finish_fallback();
  void fallback_timing(const std::vector<Time>& start, std::vector<Time>& tat,
                       std::uint64_t total_elems);
  void fallback_data(const std::vector<std::vector<std::int32_t>>& updates,
                     const std::vector<Time>& start, DataReduceResult& r);

  FabricConfig config_;
  MetricsRegistry metrics_;
  sim::Simulation sim_;
  std::vector<std::unique_ptr<swprog::AggregationSwitch>> switches_; // [0] = root
  std::vector<std::unique_ptr<worker::Worker>> workers_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::unique_ptr<net::Tracer> tracer_;
  std::unique_ptr<FaultInjector> faults_;
  std::unique_ptr<inttel::FaultLocalizer> int_localizer_;
  int n_jobs_ = 1;
  int workers_per_job_ = 0;
  bool fallback_pending_ = false;
  std::uint64_t fallbacks_ = 0;
  std::uint64_t fallback_replay_elems_ = 0;
};

// Builds one Fabric's nodes and links from its TopologySpec. All wiring rules
// — node ids and names, port layout, multicast groups, per-link RNG seeds,
// switch roles — live here and nowhere else.
class TopologyBuilder {
public:
  explicit TopologyBuilder(Fabric& fabric) : f_(fabric), params_(fabric.config_) {}
  void build();

private:
  // Star fabrics (rack == one job; tenancy == several) around one switch.
  void build_star(int n_jobs, int workers_per_job, std::uint32_t group_base);
  // Switch trees (hierarchy == 2 levels; tree == arbitrary depth), built DFS.
  swprog::AggregationSwitch* build_subtree(int level, swprog::AggregationSwitch* parent,
                                           int index_at_parent, int& next_worker);
  // Explicit-adjacency trees: switches in spec index order (switch_at(i) is
  // spec switch i), then worker links in worker order, then switch uplinks in
  // child index order — so Fabric::link(i) is worker i's uplink for
  // i < n_workers and switch (1 + i - n_workers)'s uplink after that.
  void build_irregular(const IrregularSpec& spec);

  worker::WorkerConfig worker_config(int wid, int n_at_switch, net::NodeId switch_id) const;
  [[nodiscard]] net::LinkConfig link_config(BitsPerSecond rate) const;
  [[nodiscard]] BitsPerSecond uplink_rate() const {
    return params_.uplink_rate != 0 ? params_.uplink_rate : params_.link_rate;
  }

  Fabric& f_;
  const FabricParams& params_;
  // Tree-shape state (set by build() before recursing).
  int levels_ = 0;
  int branching_ = 0;
  int workers_per_rack_ = 0;
  bool hierarchy_naming_ = false; // two-level scheme: root/leaf-<r> ids & seeds
  net::NodeId next_switch_id_ = 30'000;
};

} // namespace switchml::core
