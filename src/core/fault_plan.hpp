// Declarative fault schedules for the unified fabric (core/fault.hpp runs
// them). A FaultPlan lives on FabricParams, so every cluster shape — rack,
// multi-job, hierarchy, tree — gets fault injection through the one
// TopologyBuilder path.
//
// All times are ABSOLUTE sim times (nanoseconds since fabric construction):
// one Fabric owns one Simulation whose clock never resets, so a plan is laid
// out against the cumulative timeline. When a fabric runs several reductions
// back to back, the plan spans all of them; the fault benches therefore
// measure one reduction per fabric instance.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "net/link.hpp" // BurstLossConfig

namespace switchml::core {

// Stretches one worker's NIC/compute per-packet costs by `factor` (straggler
// emulation). factor 1.0 is exactly cost-neutral.
struct StragglerSpec {
  int worker = 0;
  double factor = 2.0; // CPU-cost multiplier; > 1 slows the worker down
  Time start = 0;
  Time stop = -1; // -1: slow for the rest of the run
};

// One-shot link flap: down at `down_at`, back up at `up_at`. The down
// interval delivers zero packets (Link::set_down semantics).
struct LinkFlapSpec {
  std::size_t link = 0; // Fabric::link index
  Time down_at = 0;
  Time up_at = 0; // must be > down_at
};

// Periodic flap: starting at `start`, each period opens with the link down
// for duty_down * period. With cycles == 0 the flapping continues as long as
// live (non-daemon) work remains in the simulator, then stops with the link
// up, so a run always quiesces.
struct LinkFlapCycleSpec {
  std::size_t link = 0;
  Time period = msec(5);
  double duty_down = 0.1; // fraction of each period spent down, in (0, 1)
  Time start = 0;
  int cycles = 0; // 0: repeat while live work remains
};

// Gilbert-Elliott burst loss on one link (or all of them), active for the
// whole run, on top of any Bernoulli loss.
struct BurstLossSpec {
  int link = -1; // Fabric::link index; -1 applies to every link
  net::BurstLossConfig gilbert;
};

// Mid-run dataplane wipe of one switch (AggregationSwitch::restart): pool
// values, counters, seen bitmaps and shadow copies all reset. Exercises the
// workers' retransmission machinery end to end.
struct SwitchRestartSpec {
  std::size_t switch_index = 0; // Fabric::switch_at index ([0] = root)
  Time at = 0;
};

// Permanent switch death (AggregationSwitch::kill): from `at` on, the switch
// drops every packet. Unlike a restart there is nothing the retransmission
// machinery can do; workers burn their dead_after retry budget, declare the
// switch dead, and the fabric degrades the job to the streaming-PS fallback
// collective (with honest completion-time inflation).
struct SwitchKillSpec {
  std::size_t switch_index = 0; // Fabric::switch_at index ([0] = root)
  Time at = 0;
};

struct FaultPlan {
  std::vector<StragglerSpec> stragglers;
  std::vector<LinkFlapSpec> flaps;
  std::vector<LinkFlapCycleSpec> flap_cycles;
  std::vector<BurstLossSpec> bursts;
  std::vector<SwitchRestartSpec> switch_restarts;
  std::vector<SwitchKillSpec> switch_kills;

  [[nodiscard]] bool empty() const {
    return stragglers.empty() && flaps.empty() && flap_cycles.empty() && bursts.empty() &&
           switch_restarts.empty() && switch_kills.empty();
  }
};

} // namespace switchml::core
