// Public float-level all-reduce API: the drop-in replacement the paper
// provides for Gloo/Horovod collectives (§4).
//
// This layer performs the worker-side numerical pipeline of §3.7/Appendix C:
//   float32 -> scale by f -> round to int32 -> (wire) -> sum at switch
//          -> int32 -> divide by f [-> divide by n for averaging]
// or, with WireFormat::Float16, the 16-bit path where values travel as
// halves and the switch converts to fixed point with lookup tables.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/cluster.hpp"

namespace switchml::core {

enum class WireFormat : std::uint8_t {
  Int32,   // 32-bit fixed point, conversion on workers (default deployment)
  Float16, // 16-bit floats on the wire, switch-side table conversion
  // Extension (Appendix C's compression direction): 8-bit fixed point with
  // UNBIASED stochastic rounding; 4x fewer wire bytes at higher variance.
  Int8Stochastic,
};

struct AllReduceOptions {
  double scaling_factor = 0.0; // <= 0: choose automatically per Theorem 2
  WireFormat wire = WireFormat::Int32;
  bool average = false; // divide the aggregate by n (model averaging)
};

struct AllReduceResult {
  std::vector<std::vector<float>> outputs; // per-worker aggregated tensors
  std::vector<Time> tat;                   // per-worker tensor aggregation time
  double scaling_factor = 0.0;             // the f actually used
};

// Synchronous all-reduce of one tensor per worker over the SwitchML fabric.
// inputs.size() must equal cluster.n_workers() and all tensors must have the
// same length.
AllReduceResult all_reduce(Cluster& cluster, const std::vector<std::vector<float>>& inputs,
                           const AllReduceOptions& options = {});

// Reference result for testing: exact float sum across workers.
std::vector<float> reference_sum(const std::vector<std::vector<float>>& inputs, bool average);

} // namespace switchml::core
