// Timing-only counterpart of the StreamManager: queues tensor SIZES and runs
// them through the worker protocol back to back, firing per-tensor
// completions. Used by the framework-level training simulation, where the
// gradient values don't matter but the wire time of every per-layer tensor
// does.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "worker/worker.hpp"

namespace switchml::core {

class TimingStreamManager {
public:
  explicit TimingStreamManager(worker::Worker& worker);
  TimingStreamManager(const TimingStreamManager&) = delete;
  TimingStreamManager& operator=(const TimingStreamManager&) = delete;

  // Queues a tensor of `elems` elements; starts immediately if idle.
  // All workers of the job must submit identical sequences.
  void submit(std::uint64_t elems, std::function<void()> on_done);

  [[nodiscard]] bool idle() const { return !running_ && queued_.empty(); }
  [[nodiscard]] std::size_t tensors_completed() const { return completed_; }

private:
  void pump();

  worker::Worker& worker_;
  std::deque<std::pair<std::uint64_t, std::function<void()>>> queued_;
  bool running_ = false;
  std::size_t completed_ = 0;
};

} // namespace switchml::core
