#include "core/allreduce.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "quant/fixed_point.hpp"
#include "quant/float16.hpp"

namespace switchml::core {

namespace {

double auto_scaling_factor(const std::vector<std::vector<float>>& inputs, int n,
                           WireFormat wire) {
  // Profile the gradients (Appendix C): bound B = max |entry| across workers,
  // then pick f with a 2x headroom below the no-overflow limit. For the
  // 16-bit wire format the binding constraint is the half-precision range of
  // the aggregated result (65504), not int32.
  float max_abs = 0.0f;
  for (const auto& t : inputs)
    for (float v : t) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0.0f) max_abs = 1.0f;
  const double b = static_cast<double>(max_abs) * 2.0;
  if (wire == WireFormat::Float16) return 65504.0 / (static_cast<double>(n) * b * 2.0);
  if (wire == WireFormat::Int8Stochastic)
    return quant::max_safe_scaling_factor_i8(static_cast<double>(max_abs));
  return quant::max_safe_scaling_factor(n, b);
}

std::uint8_t wire_bytes_for(WireFormat wire) {
  switch (wire) {
    case WireFormat::Int32: return 4;
    case WireFormat::Float16: return 2;
    case WireFormat::Int8Stochastic: return 1;
  }
  return 4;
}

} // namespace

std::vector<float> reference_sum(const std::vector<std::vector<float>>& inputs, bool average) {
  if (inputs.empty()) return {};
  std::vector<double> acc(inputs.front().size(), 0.0);
  for (const auto& t : inputs) {
    if (t.size() != acc.size()) throw std::invalid_argument("reference_sum: ragged inputs");
    for (std::size_t i = 0; i < t.size(); ++i) acc[i] += static_cast<double>(t[i]);
  }
  std::vector<float> out(acc.size());
  const double inv = average ? 1.0 / static_cast<double>(inputs.size()) : 1.0;
  for (std::size_t i = 0; i < acc.size(); ++i) out[i] = static_cast<float>(acc[i] * inv);
  return out;
}

AllReduceResult all_reduce(Cluster& cluster, const std::vector<std::vector<float>>& inputs,
                           const AllReduceOptions& options) {
  const int n = cluster.n_workers();
  if (static_cast<int>(inputs.size()) != n)
    throw std::invalid_argument("all_reduce: one input tensor per worker required");
  const std::size_t d = inputs.front().size();
  for (const auto& t : inputs)
    if (t.size() != d) throw std::invalid_argument("all_reduce: ragged inputs");

  if (wire_bytes_for(options.wire) != cluster.config().wire_elem_bytes)
    throw std::invalid_argument(
        "all_reduce: wire format must match the cluster's wire_elem_bytes "
        "(4 = Int32, 2 = Float16, 1 = Int8Stochastic)");

  AllReduceResult result;
  result.scaling_factor = options.scaling_factor > 0
                              ? options.scaling_factor
                              : auto_scaling_factor(inputs, n, options.wire);
  const double f = result.scaling_factor;

  // Worker-side quantization (the paper uses SSE/AVX here; see
  // bench/micro_quant for measured conversion rates).
  std::vector<std::vector<std::int32_t>> updates(static_cast<std::size_t>(n));
  if (options.wire == WireFormat::Int32) {
    for (int i = 0; i < n; ++i) updates[static_cast<std::size_t>(i)] = quant::quantize(inputs[static_cast<std::size_t>(i)], f);
  } else if (options.wire == WireFormat::Int8Stochastic) {
    sim::Rng rng = sim::Rng::stream(cluster.config().seed, "int8-dither");
    for (int i = 0; i < n; ++i) {
      auto& u = updates[static_cast<std::size_t>(i)];
      u.resize(d);
      quant::quantize_i8_stochastic(inputs[static_cast<std::size_t>(i)], f, u, rng);
    }
  } else {
    // fp16 wire: the worker scales and converts to binary16; the raw half
    // bit patterns travel on the wire and the SWITCH converts them to fixed
    // point with its ingress lookup tables (§3.7), aggregates, and converts
    // the sums back to halves at egress.
    for (int i = 0; i < n; ++i) {
      auto& u = updates[static_cast<std::size_t>(i)];
      u.resize(d);
      const auto& in = inputs[static_cast<std::size_t>(i)];
      for (std::size_t j = 0; j < d; ++j) {
        const quant::half h =
            quant::float_to_half(static_cast<float>(f * static_cast<double>(in[j])));
        u[j] = static_cast<std::int32_t>(h);
      }
    }
  }

  auto reduced = cluster.reduce_i32(updates);
  result.tat = std::move(reduced.tat);

  result.outputs.resize(static_cast<std::size_t>(n));
  const double post_scale = options.average ? 1.0 / static_cast<double>(n) : 1.0;
  for (int i = 0; i < n; ++i) {
    auto& out = result.outputs[static_cast<std::size_t>(i)];
    out.resize(d);
    const auto& sums = reduced.outputs[static_cast<std::size_t>(i)];
    if (options.wire == WireFormat::Int32 || options.wire == WireFormat::Int8Stochastic) {
      for (std::size_t j = 0; j < d; ++j)
        out[j] = static_cast<float>(static_cast<double>(sums[j]) / f * post_scale);
    } else {
      // The switch already converted the fixed-point sums back to binary16;
      // the worker just widens to float and unscales.
      for (std::size_t j = 0; j < d; ++j) {
        const float v = quant::half_to_float(static_cast<quant::half>(
            static_cast<std::uint32_t>(sums[j])));
        out[j] = static_cast<float>(static_cast<double>(v) / f * post_scale);
      }
    }
  }
  return result;
}

} // namespace switchml::core
