#include "core/timing_stream.hpp"

#include <stdexcept>

namespace switchml::core {

TimingStreamManager::TimingStreamManager(worker::Worker& worker) : worker_(worker) {
  if (!worker.config().timing_only)
    throw std::invalid_argument("TimingStreamManager requires a timing-only worker");
}

void TimingStreamManager::submit(std::uint64_t elems, std::function<void()> on_done) {
  queued_.emplace_back(elems, std::move(on_done));
  if (!running_) pump();
}

void TimingStreamManager::pump() {
  if (queued_.empty()) {
    running_ = false;
    return;
  }
  running_ = true;
  auto [elems, on_done] = std::move(queued_.front());
  queued_.pop_front();
  worker_.start_reduction(elems, [this, cb = std::move(on_done)] {
    ++completed_;
    if (cb) cb();
    pump();
  });
}

} // namespace switchml::core
