// Topology builder for the baseline communication strategies: N transport
// hosts attached to a (non-programmable) L2 switch, the same star fabric the
// SwitchML cluster uses, so comparisons share link rates, propagation and
// switching latency.
#pragma once

#include <memory>
#include <vector>

#include "common/metrics.hpp"
#include "net/l2switch.hpp"
#include "net/reliable.hpp"

namespace switchml::collectives {

struct BaselineClusterConfig {
  int n_hosts = 8;
  BitsPerSecond link_rate = gbps(10);
  Time propagation = nsec(500);
  std::int64_t queue_limit_bytes = 16 * kMiB;
  double loss_prob = 0.0;
  net::NicConfig nic;
  Time switch_latency = nsec(400);
  std::uint64_t seed = 42;
};

class BaselineCluster {
public:
  explicit BaselineCluster(const BaselineClusterConfig& config);
  BaselineCluster(const BaselineCluster&) = delete;
  BaselineCluster& operator=(const BaselineCluster&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] int n_hosts() const { return static_cast<int>(hosts_.size()); }
  [[nodiscard]] net::TransportHost& host(int i) { return *hosts_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] net::L2Switch& fabric() { return *switch_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  void set_loss_prob(double p);

private:
  BaselineClusterConfig config_;
  MetricsRegistry metrics_;
  sim::Simulation sim_;
  std::unique_ptr<net::L2Switch> switch_;
  std::vector<std::unique_ptr<net::TransportHost>> hosts_;
  std::vector<std::unique_ptr<net::Link>> links_;
};

} // namespace switchml::collectives
