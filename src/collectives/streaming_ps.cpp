#include "collectives/streaming_ps.hpp"

#include <stdexcept>

#include "common/attribution.hpp"

namespace switchml::collectives {

// ---------------------------------------------------------- SoftwareAggregator

SoftwareAggregator::SoftwareAggregator(int n_workers, std::uint32_t pool_size,
                                       bool timing_only)
    : n_(n_workers), timing_only_(timing_only), slots_(pool_size) {
  if (n_workers < 1 || n_workers > 64)
    throw std::invalid_argument("SoftwareAggregator: 1..64 workers");
}

SoftwareAggregator::Outcome SoftwareAggregator::process(const net::Packet& p) {
  ++counters_.updates;
  if (p.idx >= slots_.size()) throw std::runtime_error("SoftwareAggregator: slot out of range");
  Slot& slot = slots_[p.idx];
  const int ver = p.ver & 1;
  const std::uint64_t bit = 1ull << p.wid;

  Outcome out;
  if ((slot.seen[ver] & bit) == 0) {
    slot.seen[ver] |= bit;
    slot.seen[1 - ver] &= ~bit;
    slot.count[ver] = (slot.count[ver] + 1) % static_cast<std::uint32_t>(n_);
    const bool first = slot.count[ver] == 1 || n_ == 1;
    const bool complete = slot.count[ver] == 0;
    if (!timing_only_ && !p.values.empty()) {
      auto& pool = slot.pool[ver];
      if (first) {
        pool = p.values;
      } else {
        if (pool.size() < p.values.size()) pool.resize(p.values.size(), 0);
        for (std::size_t j = 0; j < p.values.size(); ++j)
          pool[j] = static_cast<std::int32_t>(static_cast<std::uint32_t>(pool[j]) +
                                              static_cast<std::uint32_t>(p.values[j]));
      }
      if (complete) out.values = pool;
    }
    if (complete) {
      ++counters_.completions;
      out.kind = Outcome::Kind::Completed;
    } else {
      out.kind = Outcome::Kind::Absorbed;
    }
  } else {
    ++counters_.duplicates;
    if (slot.count[ver] == 0) {
      out.kind = Outcome::Kind::ReplyStored;
      if (!timing_only_) out.values = slot.pool[ver];
    } else {
      out.kind = Outcome::Kind::Ignored;
    }
  }
  return out;
}

namespace {

// PS shards attribute slot dwell exactly like the hardware switch does:
// contributions enter kSwitchWait, completion moves every contributor to
// kSwitchReady, duplicates re-enter the phase the slot is actually in.
void attribute_outcome(net::NodeId shard, const net::Packet& p,
                       SoftwareAggregator::Outcome::Kind kind, Time now) {
  if (!attr::enabled()) return;
  using Kind = SoftwareAggregator::Outcome::Kind;
  switch (kind) {
    case Kind::Absorbed:
      attr::contribute(shard, p.job, p.ver & 1u, p.idx, p.src, p.off, now);
      break;
    case Kind::Completed:
      attr::contribute(shard, p.job, p.ver & 1u, p.idx, p.src, p.off, now);
      attr::complete_slot(shard, p.job, p.ver & 1u, p.idx, p.off, now);
      break;
    case Kind::ReplyStored:
      attr::transition_matching(p.src, p.idx, p.off, attr::Component::kSwitchReady, now);
      break;
    case Kind::Ignored:
      attr::transition_matching(p.src, p.idx, p.off, attr::Component::kSwitchWait, now);
      break;
  }
}

net::Packet make_result(const net::Packet& update, net::NodeId src, net::NodeId dst,
                        const std::vector<std::int32_t>& values) {
  net::Packet r;
  r.kind = net::PacketKind::SmlResult;
  r.src = src;
  r.dst = dst;
  r.job = update.job;
  r.wid = update.wid;
  r.ver = update.ver;
  r.idx = update.idx;
  r.off = update.off;
  r.elem_count = update.elem_count;
  r.elem_bytes = update.elem_bytes;
  r.transport = update.transport;
  r.values = values;
  r.seal();
  return r;
}

} // namespace

// ------------------------------------------------------------------ PsShardNode

PsShardNode::PsShardNode(sim::Simulation& simulation, net::NodeId id, std::string name,
                         const net::NicConfig& nic, net::TransportKind transport,
                         const net::RdmaUcParams& rdma, int n_workers, int n_shards,
                         std::uint32_t pool_size, bool timing_only,
                         std::vector<net::NodeId> worker_ids)
    : Node(simulation, id, std::move(name)),
      nic_(simulation, nic),
      channel_(net::make_channel(simulation, this->name(), id, transport, nic_, rdma)),
      n_shards_(n_shards),
      aggregator_(n_workers, pool_size, timing_only),
      worker_ids_(std::move(worker_ids)) {
  if (auto* reg = MetricsRegistry::current()) {
    const std::string p = this->name() + ".";
    reg->add_counter(p + "updates", [this] { return aggregator_.counters().updates; });
    reg->add_counter(p + "duplicates", [this] { return aggregator_.counters().duplicates; });
    reg->add_counter(p + "completions", [this] { return aggregator_.counters().completions; });
  }
}

void PsShardNode::receive(net::Packet&& p, int /*port*/) {
  const int core = core_of(p.idx);
  auto shared = std::make_shared<net::Packet>(std::move(p));
  channel_->rx_process(core, *shared,
                       [this, shared]() mutable { handle(std::move(*shared)); });
}

void PsShardNode::handle(net::Packet&& p) {
  if (!p.verify()) return; // §3.4: corrupted update, worker timer repairs it
  auto outcome = aggregator_.process(p);
  attribute_outcome(id(), p, outcome.kind, sim_.now());
  const int core = core_of(p.idx);
  if (outcome.kind == SoftwareAggregator::Outcome::Kind::Completed) {
    // One unicast result per worker (software PS has no traffic manager).
    for (net::NodeId w : worker_ids_) {
      net::Packet r = make_result(p, id(), w, outcome.values);
      const Time ready = channel_->tx_ready(core, r);
      uplink_->send_from(*this, std::move(r), ready);
    }
  } else if (outcome.kind == SoftwareAggregator::Outcome::Kind::ReplyStored) {
    net::Packet r = make_result(p, id(), p.src, outcome.values);
    const Time ready = channel_->tx_ready(core, r);
    uplink_->send_from(*this, std::move(r), ready);
  }
}

// -------------------------------------------------------------- PsColocatedHost

PsColocatedHost::PsColocatedHost(sim::Simulation& simulation, net::NodeId id, std::string name,
                                 const worker::WorkerConfig& wc, int n_shards,
                                 std::uint32_t pool_size, std::vector<net::NodeId> worker_ids)
    : Worker(simulation, id, std::move(name), wc),
      n_shards_(n_shards),
      aggregator_(wc.n_workers, pool_size, wc.timing_only),
      worker_ids_(std::move(worker_ids)) {
  if (auto* reg = MetricsRegistry::current()) {
    const std::string p = this->name() + ".shard.";
    reg->add_counter(p + "updates", [this] { return aggregator_.counters().updates; });
    reg->add_counter(p + "duplicates", [this] { return aggregator_.counters().duplicates; });
    reg->add_counter(p + "completions", [this] { return aggregator_.counters().completions; });
  }
}

void PsColocatedHost::receive(net::Packet&& p, int port) {
  if (p.kind == net::PacketKind::SmlUpdate) {
    // Shard traffic shares the worker's NIC cores (and its channel).
    const int core = shard_core_of(p.idx);
    auto shared = std::make_shared<net::Packet>(std::move(p));
    channel().rx_process(core, *shared,
                         [this, shared]() mutable { handle_shard(std::move(*shared)); });
    return;
  }
  Worker::receive(std::move(p), port);
}

void PsColocatedHost::handle_shard(net::Packet&& p) {
  if (!p.verify()) return; // §3.4: corrupted update, worker timer repairs it
  auto outcome = aggregator_.process(p);
  attribute_outcome(id(), p, outcome.kind, simulation().now());
  const int core = shard_core_of(p.idx);
  if (outcome.kind == SoftwareAggregator::Outcome::Kind::Completed) {
    for (net::NodeId w : worker_ids_) {
      if (w == id()) {
        // Local delivery: the worker role consumes its own shard's result
        // without touching the wire (but still pays RX processing).
        net::Packet r = make_result(p, id(), w, outcome.values);
        Worker::receive(std::move(r), 0);
        continue;
      }
      net::Packet r = make_result(p, id(), w, outcome.values);
      const Time ready = channel().tx_ready(core, r);
      uplink()->send_from(*this, std::move(r), ready);
    }
  } else if (outcome.kind == SoftwareAggregator::Outcome::Kind::ReplyStored) {
    if (p.src == id()) {
      net::Packet r = make_result(p, id(), p.src, outcome.values);
      Worker::receive(std::move(r), 0);
    } else {
      net::Packet r = make_result(p, id(), p.src, outcome.values);
      const Time ready = channel().tx_ready(core, r);
      uplink()->send_from(*this, std::move(r), ready);
    }
  }
}

// ------------------------------------------------------------ StreamingPsCluster

StreamingPsCluster::StreamingPsCluster(const StreamingPsConfig& config) : config_(config) {
  const int n = config.n_workers;
  if (n < 1) throw std::invalid_argument("StreamingPsCluster: need workers");
  // Workers, PS shards and links register their counters into this cluster's
  // registry, same as the SwitchML fabric does.
  MetricsRegistry::Scope scope(&metrics_);
  const bool dedicated = config.placement == StreamingPsPlacement::Dedicated;

  fabric_ = std::make_unique<net::L2Switch>(sim_, 10'000, "fabric", config.switch_latency);

  net::LinkConfig lc;
  lc.rate = config.link_rate;
  lc.propagation = config.propagation;
  lc.queue_limit_bytes = config.queue_limit_bytes;
  lc.loss_prob = config.loss_prob;

  std::vector<net::NodeId> worker_ids;
  for (int i = 0; i < n; ++i) worker_ids.push_back(static_cast<net::NodeId>(i));

  // Slot idx is served by PS process idx % n (all n shards exist in both
  // placements; colocated shard i lives on worker host i).
  auto ps_id = [dedicated, n](std::uint32_t idx) {
    const int shard = static_cast<int>(idx) % n;
    return static_cast<net::NodeId>(dedicated ? 1000 + shard : shard);
  };

  for (int i = 0; i < n; ++i) {
    worker::WorkerConfig wc;
    wc.wid = static_cast<std::uint16_t>(i);
    wc.n_workers = n;
    wc.pool_size = config.pool_size;
    wc.elems_per_packet = config.elems_per_packet;
    wc.retransmit_timeout = config.retransmit_timeout;
    wc.nic = config.nic;
    wc.transport = config.transport;
    wc.rdma = config.rdma;
    wc.timing_only = config.timing_only;

    std::unique_ptr<worker::Worker> w;
    if (dedicated) {
      w = std::make_unique<worker::Worker>(sim_, static_cast<net::NodeId>(i),
                                           "worker-" + std::to_string(i), wc);
    } else {
      w = std::make_unique<PsColocatedHost>(sim_, static_cast<net::NodeId>(i),
                                            "host-" + std::to_string(i), wc, n,
                                            config.pool_size, worker_ids);
    }
    w->set_destination_resolver(ps_id);
    auto link = std::make_unique<net::Link>(sim_, lc, *w, 0, *fabric_, i,
                                            config.seed + static_cast<std::uint64_t>(i));
    w->set_uplink(*link);
    fabric_->attach(i, *link);
    workers_.push_back(std::move(w));
    links_.push_back(std::move(link));
  }

  if (dedicated) {
    for (int j = 0; j < n; ++j) {
      auto ps = std::make_unique<PsShardNode>(sim_, static_cast<net::NodeId>(1000 + j),
                                              "ps-" + std::to_string(j), config.nic,
                                              config.transport, config.rdma, n, n,
                                              config.pool_size, config.timing_only, worker_ids);
      auto link = std::make_unique<net::Link>(sim_, lc, *ps, 0, *fabric_, n + j,
                                              config.seed + 500 + static_cast<std::uint64_t>(j));
      ps->set_uplink(*link);
      fabric_->attach(n + j, *link);
      ps_nodes_.push_back(std::move(ps));
      links_.push_back(std::move(link));
    }
  }
}

void StreamingPsCluster::set_loss_prob(double p) {
  for (auto& l : links_) l->set_loss_prob(p);
}

std::vector<Time> StreamingPsCluster::reduce_timing(std::uint64_t total_elems) {
  if (!config_.timing_only)
    throw std::logic_error("StreamingPsCluster::reduce_timing requires timing_only");
  std::vector<Time> start(workers_.size()), tat(workers_.size(), -1);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    start[i] = sim_.now();
    workers_[i]->start_reduction(total_elems, [this, &start, &tat, i] {
      tat[i] = sim_.now() - start[i];
    });
  }
  sim_.run();
  for (Time t : tat)
    if (t < 0) throw std::runtime_error("StreamingPsCluster: reduction did not complete");
  return tat;
}

StreamingPsCluster::DataReduceResult StreamingPsCluster::reduce_i32(
    const std::vector<std::vector<std::int32_t>>& updates) {
  if (config_.timing_only)
    throw std::logic_error("StreamingPsCluster::reduce_i32 requires data mode");
  if (updates.size() != workers_.size())
    throw std::invalid_argument("StreamingPsCluster: one update per worker");
  DataReduceResult r;
  r.outputs.resize(updates.size());
  r.tat.assign(updates.size(), -1);
  std::vector<Time> start(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    r.outputs[i].assign(updates[i].size(), 0);
    start[i] = sim_.now();
    workers_[i]->start_reduction(updates[i], r.outputs[i], [this, &start, &r, i] {
      r.tat[i] = sim_.now() - start[i];
    });
  }
  sim_.run();
  for (Time t : r.tat)
    if (t < 0) throw std::runtime_error("StreamingPsCluster: reduction did not complete");
  return r;
}

} // namespace switchml::collectives
