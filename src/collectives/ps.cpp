#include "collectives/ps.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>

namespace switchml::collectives {

ParameterServerAllReduce::ParameterServerAllReduce(BaselineCluster& cluster, int n_workers,
                                                   PsPlacement placement,
                                                   net::TransportProfile transport)
    : cluster_(cluster), n_workers_(n_workers), placement_(placement), transport_(transport) {
  const int needed = placement == PsPlacement::Dedicated ? 2 * n_workers : n_workers;
  if (cluster.n_hosts() < needed)
    throw std::invalid_argument("ParameterServerAllReduce: cluster too small for placement");
}

Time ParameterServerAllReduce::run(std::int64_t tensor_bytes) {
  if (tensor_bytes % 4 != 0) throw std::invalid_argument("PS: bytes must be x4");
  return execute(tensor_bytes / 4, nullptr);
}

Time ParameterServerAllReduce::run(std::vector<std::vector<float>>& buffers) {
  if (static_cast<int>(buffers.size()) != n_workers_)
    throw std::invalid_argument("PS: one buffer per worker");
  return execute(static_cast<std::int64_t>(buffers.front().size()), &buffers);
}

Time ParameterServerAllReduce::execute(std::int64_t elems,
                                       std::vector<std::vector<float>>* buffers) {
  const int n = n_workers_;
  auto& sim = cluster_.simulation();
  const Time t0 = sim.now();

  const std::int64_t base = elems / n;
  const std::int64_t rem = elems % n;
  auto shard_lo = [&](int j) { return base * j + std::min<std::int64_t>(j, rem); };
  auto shard_len = [&](int j) { return base + (j < rem ? 1 : 0); };

  struct State {
    std::vector<std::unique_ptr<net::ReliableSender>> senders;
    std::vector<std::unique_ptr<net::ReliableReceiver>> receivers;
    std::vector<std::vector<float>> shard_sum; // [shard] running aggregate at its PS
    std::vector<int> pushes_left;              // [shard]
    int broadcasts_left = 0;
  };
  auto st = std::make_shared<State>();
  st->pushes_left.assign(static_cast<std::size_t>(n), 0);
  if (buffers != nullptr) st->shard_sum.resize(static_cast<std::size_t>(n));

  const bool colocated = placement_ == PsPlacement::Colocated;

  // Broadcast of a completed shard to one worker.
  auto send_result = [&, st](int shard, int worker) {
    const std::int64_t len = shard_len(shard);
    const std::uint32_t stream = next_stream_++;
    net::ReliableReceiver::ChunkHandler on_chunk;
    if (buffers != nullptr) {
      float* dst = (*buffers)[static_cast<std::size_t>(worker)].data() + shard_lo(shard);
      on_chunk = [dst](std::uint64_t seq, std::uint32_t seg_len, std::span<const float> data) {
        const std::size_t first = static_cast<std::size_t>(seq / 4);
        const std::size_t cnt = seg_len / 4;
        if (data.size() != cnt) throw std::logic_error("PS: result segment size mismatch");
        for (std::size_t j = 0; j < cnt; ++j) dst[first + j] = data[j];
      };
    }
    auto on_done = [st, &sim] { --st->broadcasts_left; };
    st->receivers.push_back(std::make_unique<net::ReliableReceiver>(
        cluster_.host(worker), cluster_.host(ps_host_index(shard)).id(), stream, len * 4,
        std::move(on_chunk), on_done));
    auto sender = std::make_unique<net::ReliableSender>(
        cluster_.host(ps_host_index(shard)), cluster_.host(worker).id(), stream, transport_,
        nullptr);
    std::span<const float> data;
    if (buffers != nullptr)
      data = std::span<const float>(st->shard_sum[static_cast<std::size_t>(shard)]);
    sender->start(len * 4, data);
    st->senders.push_back(std::move(sender));
  };

  auto shard_complete = [&, st](int shard) {
    for (int w = 0; w < n; ++w) {
      if (colocated && w == shard) {
        // Local "broadcast": the PS shard lives on this worker.
        if (buffers != nullptr) {
          float* dst = (*buffers)[static_cast<std::size_t>(w)].data() + shard_lo(shard);
          const auto& sum = st->shard_sum[static_cast<std::size_t>(shard)];
          std::copy(sum.begin(), sum.end(), dst);
        }
        --st->broadcasts_left;
      } else {
        send_result(shard, w);
      }
    }
  };

  // --- set up push phase -----------------------------------------------------
  for (int shard = 0; shard < n; ++shard) {
    const std::int64_t len = shard_len(shard);
    if (buffers != nullptr)
      st->shard_sum[static_cast<std::size_t>(shard)].assign(static_cast<std::size_t>(len), 0.0f);
    st->pushes_left[static_cast<std::size_t>(shard)] = colocated ? n - 1 : n;
    st->broadcasts_left += n;
  }

  for (int shard = 0; shard < n; ++shard) {
    // Colocated: the local worker's contribution is applied in place.
    if (colocated && buffers != nullptr) {
      auto& sum = st->shard_sum[static_cast<std::size_t>(shard)];
      const float* src = (*buffers)[static_cast<std::size_t>(shard)].data() + shard_lo(shard);
      for (std::size_t j = 0; j < sum.size(); ++j) sum[j] += src[j];
    }
    if (colocated && st->pushes_left[static_cast<std::size_t>(shard)] == 0) {
      shard_complete(shard); // n == 1 degenerate case
      continue;
    }
    for (int w = 0; w < n; ++w) {
      if (colocated && w == shard) continue;
      const std::int64_t len = shard_len(shard);
      const std::uint32_t stream = next_stream_++;
      net::ReliableReceiver::ChunkHandler on_chunk;
      if (buffers != nullptr) {
        float* dst = st->shard_sum[static_cast<std::size_t>(shard)].data();
        on_chunk = [dst](std::uint64_t seq, std::uint32_t seg_len, std::span<const float> data) {
          const std::size_t first = static_cast<std::size_t>(seq / 4);
          const std::size_t cnt = seg_len / 4;
          if (data.size() != cnt) throw std::logic_error("PS: push segment size mismatch");
          for (std::size_t j = 0; j < cnt; ++j) dst[first + j] += data[j];
        };
      }
      auto on_done = [st, shard, &shard_complete] {
        if (--st->pushes_left[static_cast<std::size_t>(shard)] == 0) shard_complete(shard);
      };
      st->receivers.push_back(std::make_unique<net::ReliableReceiver>(
          cluster_.host(ps_host_index(shard)), cluster_.host(w).id(), stream, len * 4,
          std::move(on_chunk), on_done));
      auto sender = std::make_unique<net::ReliableSender>(
          cluster_.host(w), cluster_.host(ps_host_index(shard)).id(), stream, transport_,
          nullptr);
      std::span<const float> data;
      if (buffers != nullptr)
        data = std::span<const float>(
            (*buffers)[static_cast<std::size_t>(w)].data() + shard_lo(shard),
            static_cast<std::size_t>(len));
      sender->start(len * 4, data);
      st->senders.push_back(std::move(sender));
    }
  }

  sim.run();
  if (st->broadcasts_left != 0) throw std::runtime_error("PS all-reduce did not complete");
  return sim.now() - t0;
}

} // namespace switchml::collectives
