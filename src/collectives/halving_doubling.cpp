#include "collectives/halving_doubling.hpp"

#include <functional>
#include <memory>
#include <span>
#include <stdexcept>

namespace switchml::collectives {

namespace {
bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

struct Segment {
  std::int64_t lo;
  std::int64_t len;
};

// Segment owned by host i after `level` reduce-scatter rounds.
Segment segment_at(int i, int n, int level, std::int64_t elems) {
  Segment s{0, elems};
  for (int t = 0; t < level; ++t) {
    const int bit = n >> (t + 1);
    const std::int64_t lower_half = s.len / 2;
    if ((i & bit) == 0) {
      s.len = lower_half;
    } else {
      s.lo += lower_half;
      s.len -= lower_half;
    }
  }
  return s;
}
} // namespace

HalvingDoublingAllReduce::HalvingDoublingAllReduce(BaselineCluster& cluster,
                                                   net::TransportProfile transport)
    : cluster_(cluster), transport_(transport) {}

Time HalvingDoublingAllReduce::run(std::int64_t tensor_bytes) {
  if (tensor_bytes % 4 != 0)
    throw std::invalid_argument("HalvingDoublingAllReduce: bytes must be x4");
  return execute(tensor_bytes / 4, nullptr);
}

Time HalvingDoublingAllReduce::run(std::vector<std::vector<float>>& buffers) {
  if (static_cast<int>(buffers.size()) != cluster_.n_hosts())
    throw std::invalid_argument("HalvingDoublingAllReduce: one buffer per host");
  return execute(static_cast<std::int64_t>(buffers.front().size()), &buffers);
}

Time HalvingDoublingAllReduce::execute(std::int64_t elems,
                                       std::vector<std::vector<float>>* buffers) {
  const int n = cluster_.n_hosts();
  if (!is_pow2(n))
    throw std::invalid_argument("HalvingDoublingAllReduce: host count must be a power of two");
  auto& sim = cluster_.simulation();
  const Time t0 = sim.now();

  int levels = 0;
  while ((1 << levels) < n) ++levels;

  struct RoundState {
    std::vector<std::unique_ptr<net::ReliableSender>> senders;
    std::vector<std::unique_ptr<net::ReliableReceiver>> receivers;
    int pending = 0;
  };
  auto state = std::make_shared<RoundState>();

  int round = 0; // 0..levels-1 scatter, levels..2*levels-1 gather
  const int total_rounds = 2 * levels;

  std::function<void()> start_round = [&]() {
    state->senders.clear();
    state->receivers.clear();
    if (round >= total_rounds) {
      sim.stop();
      return;
    }
    const bool scatter = round < levels;
    // All-gather walks the levels back up: nearest partner first.
    const int level = scatter ? round : total_rounds - 1 - round;
    const int bit = n >> (level + 1);
    state->pending = 0;

    for (int i = 0; i < n; ++i) {
      const int partner = i ^ bit;
      Segment mine{0, 0}, send_seg{0, 0};
      if (scatter) {
        const Segment cur = segment_at(i, n, level, elems);
        const Segment next = segment_at(i, n, level + 1, elems);
        mine = next; // the half we keep (partner's data gets ADDED here)
        send_seg = Segment{cur.lo == next.lo ? next.lo + next.len : cur.lo,
                           cur.len - next.len}; // the half we give up
      } else {
        // All-gather: send everything we own at level+1; receive the
        // sibling's segment, growing ownership to the level's segment.
        send_seg = segment_at(i, n, level + 1, elems);
        mine = segment_at(partner, n, level + 1, elems);
      }
      if (send_seg.len == 0 && mine.len == 0) continue;

      // Each directed transfer i -> partner.
      if (send_seg.len > 0) {
        const std::uint32_t stream = next_stream_++;
        ++state->pending;

        net::ReliableReceiver::ChunkHandler on_chunk;
        if (buffers != nullptr) {
          // Receiver is `partner`; it stores into the segment it keeps,
          // which is exactly the segment we are sending.
          float* dst = (*buffers)[static_cast<std::size_t>(partner)].data() + send_seg.lo;
          const bool add = scatter;
          on_chunk = [dst, add](std::uint64_t seq, std::uint32_t seg_len,
                                std::span<const float> data) {
            const std::size_t first = static_cast<std::size_t>(seq / 4);
            const std::size_t cnt = seg_len / 4;
            if (data.size() != cnt)
              throw std::logic_error("HalvingDoubling: segment data size mismatch");
            if (add)
              for (std::size_t j = 0; j < cnt; ++j) dst[first + j] += data[j];
            else
              for (std::size_t j = 0; j < cnt; ++j) dst[first + j] = data[j];
          };
        }
        auto on_recv_done = [state, &start_round, &round, &sim]() {
          if (--state->pending == 0) {
            sim.schedule_after(0, [&start_round, &round] {
              ++round;
              start_round();
            });
          }
        };
        state->receivers.push_back(std::make_unique<net::ReliableReceiver>(
            cluster_.host(partner), cluster_.host(i).id(), stream, send_seg.len * 4,
            std::move(on_chunk), on_recv_done));
        auto sender = std::make_unique<net::ReliableSender>(
            cluster_.host(i), cluster_.host(partner).id(), stream, transport_, nullptr);
        std::span<const float> data;
        if (buffers != nullptr)
          data = std::span<const float>(
              (*buffers)[static_cast<std::size_t>(i)].data() + send_seg.lo,
              static_cast<std::size_t>(send_seg.len));
        sender->start(send_seg.len * 4, data);
        state->senders.push_back(std::move(sender));
      }
    }
    if (state->pending == 0) {
      ++round;
      start_round();
    }
  };

  start_round();
  sim.run();
  if (round != total_rounds) throw std::runtime_error("HalvingDoubling: did not complete");
  return sim.now() - t0;
}

} // namespace switchml::collectives
