// Parameter-server aggregation (§5.3): a software implementation of
// Algorithm 1 sharded uniformly over n PS processes, either on dedicated
// machines (doubling the cluster) or colocated with the workers. Workers
// push shard j of their update to PS j; once PS j has all n contributions it
// broadcasts the aggregated shard back to every worker. Each shard's
// broadcast begins as soon as that shard completes (per-shard pipelining).
#pragma once

#include <cstdint>
#include <vector>

#include "collectives/baseline_cluster.hpp"

namespace switchml::collectives {

enum class PsPlacement : std::uint8_t {
  Dedicated, // cluster hosts [0,n) are workers, [n,2n) are parameter servers
  Colocated, // cluster hosts [0,n) each run a worker AND one PS shard
};

class ParameterServerAllReduce {
public:
  ParameterServerAllReduce(BaselineCluster& cluster, int n_workers, PsPlacement placement,
                           net::TransportProfile transport);

  Time run(std::int64_t tensor_bytes);                // timing-only
  Time run(std::vector<std::vector<float>>& buffers); // data mode (buffers -> sums)

private:
  Time execute(std::int64_t elems, std::vector<std::vector<float>>* buffers);
  [[nodiscard]] int ps_host_index(int shard) const {
    return placement_ == PsPlacement::Dedicated ? n_workers_ + shard : shard;
  }

  BaselineCluster& cluster_;
  int n_workers_;
  PsPlacement placement_;
  net::TransportProfile transport_;
  std::uint32_t next_stream_ = 2'000'000;
};

} // namespace switchml::collectives
