#include "collectives/ring.hpp"

#include <algorithm>
#include <stdexcept>

namespace switchml::collectives {

// One all-reduce in flight: 2(n-1) rounds of neighbor transfers with a
// barrier between rounds.
struct RingAllReduce::Session {
  RingAllReduce& parent;
  std::int64_t elems;
  std::vector<std::vector<float>>* buffers; // null = timing only
  std::function<void()> on_done;
  int round = 0;
  int total_rounds;
  int pending = 0;
  bool finished = false;
  std::vector<std::unique_ptr<net::ReliableSender>> senders;
  std::vector<std::unique_ptr<net::ReliableReceiver>> receivers;

  Session(RingAllReduce& p, std::int64_t e, std::vector<std::vector<float>>* b,
          std::function<void()> done)
      : parent(p), elems(e), buffers(b), on_done(std::move(done)),
        total_rounds(2 * (p.cluster_.n_hosts() - 1)) {}

  [[nodiscard]] std::int64_t chunk_lo(int c) const {
    const int n = parent.cluster_.n_hosts();
    const std::int64_t base = elems / n;
    const std::int64_t rem = elems % n;
    return base * c + std::min<std::int64_t>(c, rem);
  }
  [[nodiscard]] std::int64_t chunk_len(int c) const {
    const int n = parent.cluster_.n_hosts();
    return elems / n + (c < elems % n ? 1 : 0);
  }

  void bank_counters() {
    for (const auto& s : senders) {
      parent.counters_.segments_sent += s->counters().segments_sent;
      parent.counters_.retransmissions += s->counters().retransmissions;
    }
    senders.clear();
    receivers.clear();
  }

  void start_round() {
    bank_counters();
    auto& cluster = parent.cluster_;
    auto& sim = cluster.simulation();
    const int n = cluster.n_hosts();
    if (round >= total_rounds) {
      finished = true;
      if (on_done) on_done();
      return;
    }
    const bool scatter_phase = round < (n - 1);
    const int r = scatter_phase ? round : round - (n - 1);
    pending = 0;

    for (int i = 0; i < n; ++i) {
      // Host i sends to its right neighbor. In reduce-scatter round r it
      // sends chunk (i - r) mod n; the receiver ADDS it. In all-gather round
      // r it sends the chunk it owns, (i + 1 - r) mod n; the receiver COPIES.
      const int to = (i + 1) % n;
      const int send_chunk =
          scatter_phase ? ((i - r) % n + n) % n : ((i + 1 - r) % n + n) % n;
      const std::int64_t lo = chunk_lo(send_chunk);
      const std::int64_t len = chunk_len(send_chunk);
      if (len == 0) continue;

      const std::uint32_t stream = parent.next_stream_++;
      ++pending;

      net::ReliableReceiver::ChunkHandler on_chunk;
      if (buffers != nullptr) {
        float* dst = (*buffers)[static_cast<std::size_t>(to)].data() + lo;
        const bool add = scatter_phase;
        on_chunk = [dst, add](std::uint64_t seq, std::uint32_t seg_len,
                              std::span<const float> data) {
          const std::size_t first = static_cast<std::size_t>(seq / 4);
          const std::size_t cnt = seg_len / 4;
          if (data.size() != cnt)
            throw std::logic_error("RingAllReduce: segment data size mismatch");
          if (add)
            for (std::size_t j = 0; j < cnt; ++j) dst[first + j] += data[j];
          else
            for (std::size_t j = 0; j < cnt; ++j) dst[first + j] = data[j];
        };
      }

      // Defer the round transition to a fresh event: tearing the round down
      // synchronously would destroy the receiver that is still executing.
      auto on_recv_done = [this, &sim]() {
        if (--pending == 0) {
          sim.schedule_after(0, [this] {
            ++round;
            start_round();
          });
        }
      };
      receivers.push_back(std::make_unique<net::ReliableReceiver>(
          cluster.host(to), cluster.host(i).id(), stream, len * 4, std::move(on_chunk),
          on_recv_done));
      auto sender = std::make_unique<net::ReliableSender>(
          cluster.host(i), cluster.host(to).id(), stream, parent.transport_, nullptr);
      std::span<const float> data;
      if (buffers != nullptr)
        data = std::span<const float>((*buffers)[static_cast<std::size_t>(i)].data() + lo,
                                      static_cast<std::size_t>(len));
      sender->start(len * 4, data);
      senders.push_back(std::move(sender));
    }
    if (pending == 0) { // degenerate: empty chunks this round
      ++round;
      start_round();
    }
  }
};

RingAllReduce::RingAllReduce(BaselineCluster& cluster, net::TransportProfile transport)
    : cluster_(cluster), transport_(transport) {}

RingAllReduce::~RingAllReduce() = default;

void RingAllReduce::reap_finished() {
  sessions_.erase(std::remove_if(sessions_.begin(), sessions_.end(),
                                 [](const auto& s) { return s->finished; }),
                  sessions_.end());
}

RingAllReduce::Session& RingAllReduce::launch(std::int64_t elems,
                                              std::vector<std::vector<float>>* buffers,
                                              std::function<void()> on_done) {
  reap_finished();
  sessions_.push_back(std::make_unique<Session>(*this, elems, buffers, std::move(on_done)));
  Session& s = *sessions_.back();
  s.start_round();
  return s;
}

Time RingAllReduce::run(std::int64_t tensor_bytes) {
  if (tensor_bytes % 4 != 0) throw std::invalid_argument("RingAllReduce: bytes must be x4");
  auto& sim = cluster_.simulation();
  const Time t0 = sim.now();
  Session& s = launch(tensor_bytes / 4, nullptr, nullptr);
  sim.run();
  if (!s.finished) throw std::runtime_error("RingAllReduce: did not complete");
  return sim.now() - t0;
}

Time RingAllReduce::run(std::vector<std::vector<float>>& buffers) {
  if (static_cast<int>(buffers.size()) != cluster_.n_hosts())
    throw std::invalid_argument("RingAllReduce: one buffer per host");
  auto& sim = cluster_.simulation();
  const Time t0 = sim.now();
  Session& s = launch(static_cast<std::int64_t>(buffers.front().size()), &buffers, nullptr);
  sim.run();
  if (!s.finished) throw std::runtime_error("RingAllReduce: did not complete");
  return sim.now() - t0;
}

void RingAllReduce::start_async(std::int64_t tensor_bytes, std::function<void()> on_done) {
  if (tensor_bytes % 4 != 0) throw std::invalid_argument("RingAllReduce: bytes must be x4");
  launch(tensor_bytes / 4, nullptr, std::move(on_done));
}

} // namespace switchml::collectives
