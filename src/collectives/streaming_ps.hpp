// Streaming parameter-server baseline (§5.3): "a multi-core DPDK-based
// program that implements the logic of Algorithm 1", sharded uniformly over
// n PS processes so no single server's bandwidth is oversubscribed.
//
// Workers run the unmodified SwitchML worker protocol (same 180-byte update
// packets, same self-clocked slot pool, same retransmission timers); the only
// difference is where the packets go: slot idx is served by PS process
// idx % n_ps instead of the switch. A PS process aggregates in host software
// (full Algorithm 3 state — seen bitmaps and shadow copies — so it is loss-
// tolerant like the switch) and answers a completed slot with one unicast
// result per worker.
//
// Two placements, as in Fig 4:
//   * Dedicated: n extra machines run the PS processes (2n hosts total);
//   * Colocated: worker i's host also runs PS shard i, sharing its NIC cores
//     and link bandwidth — which is precisely why it tops out at half the
//     rate of SwitchML/dedicated.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/metrics.hpp"
#include "net/l2switch.hpp"
#include "worker/worker.hpp"

namespace switchml::collectives {

// Host-software implementation of the switch's aggregation state machine
// (Algorithm 3 without the dataplane register constraints).
class SoftwareAggregator {
public:
  SoftwareAggregator(int n_workers, std::uint32_t pool_size, bool timing_only);

  struct Outcome {
    enum class Kind { Absorbed, Completed, ReplyStored, Ignored };
    Kind kind = Kind::Absorbed;
    std::vector<std::int32_t> values; // result payload for Completed/ReplyStored
  };
  Outcome process(const net::Packet& p);

  struct Counters {
    std::uint64_t updates = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t completions = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

private:
  struct Slot {
    std::uint32_t count[2] = {0, 0};
    std::uint64_t seen[2] = {0, 0};
    std::vector<std::int32_t> pool[2];
  };
  int n_;
  bool timing_only_;
  std::vector<Slot> slots_;
  Counters counters_;
};

// A dedicated PS machine: NIC-cost-modelled host running one shard.
class PsShardNode : public net::Node {
public:
  PsShardNode(sim::Simulation& simulation, net::NodeId id, std::string name,
              const net::NicConfig& nic, net::TransportKind transport,
              const net::RdmaUcParams& rdma, int n_workers, int n_shards,
              std::uint32_t pool_size, bool timing_only,
              std::vector<net::NodeId> worker_ids);

  void set_uplink(net::Link& link) { uplink_ = &link; }
  void receive(net::Packet&& p, int port) override;
  [[nodiscard]] const SoftwareAggregator::Counters& counters() const {
    return aggregator_.counters();
  }

private:
  void handle(net::Packet&& p);
  // This shard serves slots idx with idx % n_shards == shard; Flow Director
  // spreads them over the cores by the QUOTIENT so consecutive served slots
  // hit different cores (idx % cores would pin one core per shard).
  [[nodiscard]] int core_of(std::uint32_t idx) const {
    return static_cast<int>((idx / static_cast<std::uint32_t>(n_shards_)) %
                            static_cast<std::uint32_t>(nic_.cores()));
  }

  net::HostNic nic_;
  std::unique_ptr<net::Channel> channel_;
  net::Link* uplink_ = nullptr;
  int n_shards_;
  SoftwareAggregator aggregator_;
  std::vector<net::NodeId> worker_ids_;
};

// A colocated host: the SwitchML worker protocol plus a PS shard sharing the
// same NIC cores and link.
class PsColocatedHost : public worker::Worker {
public:
  PsColocatedHost(sim::Simulation& simulation, net::NodeId id, std::string name,
                  const worker::WorkerConfig& wc, int n_shards, std::uint32_t pool_size,
                  std::vector<net::NodeId> worker_ids);

  void receive(net::Packet&& p, int port) override;
  [[nodiscard]] const SoftwareAggregator::Counters& shard_counters() const {
    return aggregator_.counters();
  }

private:
  void handle_shard(net::Packet&& p);
  [[nodiscard]] int shard_core_of(std::uint32_t idx) {
    return static_cast<int>((idx / static_cast<std::uint32_t>(n_shards_)) %
                            static_cast<std::uint32_t>(nic().cores()));
  }

  int n_shards_;
  SoftwareAggregator aggregator_;
  std::vector<net::NodeId> worker_ids_;
};

enum class StreamingPsPlacement : std::uint8_t { Dedicated, Colocated };

struct StreamingPsConfig {
  int n_workers = 8;
  StreamingPsPlacement placement = StreamingPsPlacement::Dedicated;
  BitsPerSecond link_rate = gbps(10);
  Time propagation = nsec(500);
  std::int64_t queue_limit_bytes = 16 * kMiB;
  double loss_prob = 0.0;
  std::uint32_t pool_size = 128;
  std::uint32_t elems_per_packet = net::kDefaultElemsPerPacket;
  Time retransmit_timeout = msec(1);
  net::NicConfig nic;    // workers AND PS processes (all run the DPDK program)
  // Channel model for workers and PS processes alike (the fallback inherits
  // the fabric's transport so a degraded RDMA job replays over RDMA).
  net::TransportKind transport = net::kDefaultTransport;
  net::RdmaUcParams rdma;
  bool timing_only = false;
  Time switch_latency = nsec(400);
  std::uint64_t seed = 42;
};

class StreamingPsCluster {
public:
  explicit StreamingPsCluster(const StreamingPsConfig& config);
  StreamingPsCluster(const StreamingPsCluster&) = delete;
  StreamingPsCluster& operator=(const StreamingPsCluster&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] worker::Worker& worker(int i) { return *workers_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  void set_loss_prob(double p);

  std::vector<Time> reduce_timing(std::uint64_t total_elems);
  struct DataReduceResult {
    std::vector<std::vector<std::int32_t>> outputs;
    std::vector<Time> tat;
  };
  DataReduceResult reduce_i32(const std::vector<std::vector<std::int32_t>>& updates);

private:
  StreamingPsConfig config_;
  MetricsRegistry metrics_;
  sim::Simulation sim_;
  std::unique_ptr<net::L2Switch> fabric_;
  std::vector<std::unique_ptr<worker::Worker>> workers_; // includes colocated hosts
  std::vector<std::unique_ptr<PsShardNode>> ps_nodes_;   // dedicated only
  std::vector<std::unique_ptr<net::Link>> links_;
};

} // namespace switchml::collectives
