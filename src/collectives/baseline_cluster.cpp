#include "collectives/baseline_cluster.hpp"

#include <stdexcept>

namespace switchml::collectives {

BaselineCluster::BaselineCluster(const BaselineClusterConfig& config) : config_(config) {
  if (config.n_hosts < 2) throw std::invalid_argument("BaselineCluster: need >= 2 hosts");
  // Hosts and links register their counters into this cluster's registry,
  // same as the SwitchML fabric does.
  MetricsRegistry::Scope scope(&metrics_);
  switch_ = std::make_unique<net::L2Switch>(sim_, 10'000, "fabric", config.switch_latency);

  net::LinkConfig lc;
  lc.rate = config.link_rate;
  lc.propagation = config.propagation;
  lc.queue_limit_bytes = config.queue_limit_bytes;
  lc.loss_prob = config.loss_prob;

  for (int i = 0; i < config.n_hosts; ++i) {
    auto h = std::make_unique<net::TransportHost>(sim_, static_cast<net::NodeId>(i),
                                                  "host-" + std::to_string(i), config.nic);
    auto link = std::make_unique<net::Link>(sim_, lc, *h, 0, *switch_, i,
                                            config.seed + static_cast<std::uint64_t>(i));
    h->set_uplink(*link);
    switch_->attach(i, *link);
    hosts_.push_back(std::move(h));
    links_.push_back(std::move(link));
  }
}

void BaselineCluster::set_loss_prob(double p) {
  for (auto& l : links_) l->set_loss_prob(p);
}

} // namespace switchml::collectives
