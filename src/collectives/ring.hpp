// Ring all-reduce (§2.1) — the algorithm behind the paper's Gloo and NCCL
// baselines. Bandwidth-optimal: reduce-scatter (n-1 rounds) followed by
// all-gather (n-1 rounds), each worker exchanging |U|/n-sized chunks with its
// ring neighbors over the reliable transport.
//
// Two entry points: the synchronous run() used by the microbenchmarks, and
// start_async() used by the event-driven training simulation, where ring
// reductions must interleave with simulated compute (Horovod-style fusion
// buffers are drained one all-reduce at a time).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "collectives/baseline_cluster.hpp"

namespace switchml::collectives {

class RingAllReduce {
public:
  RingAllReduce(BaselineCluster& cluster, net::TransportProfile transport);
  ~RingAllReduce();
  RingAllReduce(const RingAllReduce&) = delete;
  RingAllReduce& operator=(const RingAllReduce&) = delete;

  // Timing-only run: reduces a tensor of `tensor_bytes` across all hosts and
  // returns the wall-clock duration (TAT).
  Time run(std::int64_t tensor_bytes);

  // Data-mode run: buffers[i] is host i's contribution and is replaced by
  // the element-wise sum across hosts.
  Time run(std::vector<std::vector<float>>& buffers);

  // Asynchronous timing-only reduction: returns immediately; `on_done` fires
  // from the event loop when the all-reduce completes. Multiple async
  // reductions may be started back to back (they pipeline on the fabric).
  void start_async(std::int64_t tensor_bytes, std::function<void()> on_done);

  struct Counters {
    std::uint64_t segments_sent = 0;
    std::uint64_t retransmissions = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

private:
  struct Session;

  Session& launch(std::int64_t elems, std::vector<std::vector<float>>* buffers,
                  std::function<void()> on_done);
  void reap_finished();

  BaselineCluster& cluster_;
  net::TransportProfile transport_;
  Counters counters_;
  std::uint32_t next_stream_ = 1;
  std::vector<std::unique_ptr<Session>> sessions_;
};

} // namespace switchml::collectives
