// Recursive halving-and-doubling all-reduce [Thakur et al.], the other
// classic collective the paper discusses (§2.1): log2(n) reduce-scatter
// rounds exchanging halves with exponentially closer partners, then log2(n)
// all-gather rounds in reverse. Requires a power-of-two host count.
#pragma once

#include <cstdint>
#include <vector>

#include "collectives/baseline_cluster.hpp"

namespace switchml::collectives {

class HalvingDoublingAllReduce {
public:
  HalvingDoublingAllReduce(BaselineCluster& cluster, net::TransportProfile transport);

  Time run(std::int64_t tensor_bytes);                 // timing-only
  Time run(std::vector<std::vector<float>>& buffers);  // data mode

private:
  Time execute(std::int64_t elems, std::vector<std::vector<float>>* buffers);

  BaselineCluster& cluster_;
  net::TransportProfile transport_;
  std::uint32_t next_stream_ = 1'000'000;
};

} // namespace switchml::collectives
