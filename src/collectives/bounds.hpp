// Closed-form line-rate bounds plotted as dashed lines in the paper's
// Fig 4 (ATE/s at line rate) and Figs 2/7/8 (TAT at line rate).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "net/packet.hpp"

namespace switchml::collectives {

// SwitchML: every aggregated element costs `elem_bytes` up and down on each
// worker link, pipelined full duplex, with per-packet header overhead.
inline double switchml_ate_rate(BitsPerSecond rate, std::uint32_t elems_per_packet,
                                std::uint32_t elem_bytes = 4) {
  const double payload = static_cast<double>(elems_per_packet) * elem_bytes;
  const double goodput_bytes = static_cast<double>(rate) / 8.0 *
                               (payload / (payload + net::kSmlHeaderBytes));
  return goodput_bytes / elem_bytes;
}

// Bandwidth-optimal ring all-reduce (§2.3): each worker sends and receives
// 2 (n-1)/n * |U| bytes; ATE/s at line rate follows with MSS/header overhead.
inline double ring_ate_rate(BitsPerSecond rate, int n, std::int64_t mss = 1460,
                            std::uint32_t elem_bytes = 4) {
  const double goodput_bytes = static_cast<double>(rate) / 8.0 *
                               (static_cast<double>(mss) /
                                static_cast<double>(mss + net::kSegmentHeaderBytes));
  const double transfers_per_elem =
      2.0 * (static_cast<double>(n) - 1.0) / static_cast<double>(n);
  return goodput_bytes / (elem_bytes * transfers_per_elem);
}

// Dedicated PS: each worker link carries |U| up and |U| down (full duplex),
// like SwitchML but with the PS transport's framing.
inline double dedicated_ps_ate_rate(BitsPerSecond rate, std::int64_t mss,
                                    std::uint32_t elem_bytes = 4) {
  const double goodput_bytes = static_cast<double>(rate) / 8.0 *
                               (static_cast<double>(mss) /
                                static_cast<double>(mss + net::kSegmentHeaderBytes));
  return goodput_bytes / elem_bytes;
}

// Colocated PS: the worker's NIC additionally carries the PS shard traffic
// (n-1)/n * |U| in and out, halving the achievable rate in the limit.
inline double colocated_ps_ate_rate(BitsPerSecond rate, int n, std::int64_t mss,
                                    std::uint32_t elem_bytes = 4) {
  const double per_elem_factor =
      1.0 + (static_cast<double>(n) - 1.0) / static_cast<double>(n);
  return dedicated_ps_ate_rate(rate, mss, elem_bytes) / per_elem_factor;
}

// TAT at line rate for a tensor of `elems` elements given an ATE/s bound.
inline double tat_seconds_at(double ate_rate, std::uint64_t elems) {
  return static_cast<double>(elems) / ate_rate;
}

} // namespace switchml::collectives
