// Seeded scenario fuzzer for the chaos soak: generates valid-by-construction
// random scenarios across every topology shape and fault class, scaled to a
// measured clean-run horizon. Same seed, same scenario, bit-identical run —
// a soak failure reproduces from its seed alone.
#pragma once

#include <cstdint>

#include "scenario/scenario.hpp"

namespace switchml::scenario {

// A random fault-free scenario. `seed % 5` selects the topology shape (rack,
// multi_job, hierarchy, tree, irregular — in that order), so any 5 consecutive
// seeds cover all five; the rest of the seed drives sizes and fabric knobs.
// Always data mode (the soak asserts bit-exact convergence), small tensors,
// small aggregator pools (slot reuse under faults is the interesting regime),
// recovery budgets armed for single-job shapes and disabled for multi-job
// (Fabric's fallback collective rejects multi-job fabrics by design).
[[nodiscard]] Scenario fuzz_scenario(std::uint64_t seed);

// Adds a random-but-valid FaultPlan to `s`, with every time scaled to
// `horizon` (a clean run's max TAT, so faults land while traffic flows).
// Guarantees the PR 5 termination contract can hold:
//   * at most ONE flap spec (one-shot or cycle) per link, windows ending by
//     `horizon` — one-shot windows are also what the soak's zero-deliveries
//     assertion checks;
//   * flap cycles carry a bounded cycle count;
//   * switch kills only when the fallback path is armed (single job, one
//     reduction, dead_after > 0);
//   * multi-job fabrics only target job 0's workers/links (the job the soak
//     reduces); the shared switch may still restart.
// All six fault classes are reachable across seeds.
void fuzz_faults(Scenario& s, std::uint64_t seed, Time horizon);

} // namespace switchml::scenario
