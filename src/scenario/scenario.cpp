#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/profiles.hpp"

namespace switchml::scenario {

namespace {

template <class... Ts> struct overloaded : Ts... { using Ts::operator()...; };
template <class... Ts> overloaded(Ts...) -> overloaded<Ts...>;

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw std::invalid_argument(path + ": " + why);
}

// One parsed JSON object plus its "$."-rooted path. Every key a loader reads
// goes through get()/require(), which records it as known; finish() then
// rejects anything left over, listing the valid keys — a typo fails loudly
// instead of silently falling back to a default.
class Obj {
public:
  Obj(const json::Value& v, std::string path) : v_(v), path_(std::move(path)) {
    if (!v_.is_object())
      fail(path_, std::string("expected an object, got ") + json::to_string(v_.kind()));
  }

  [[nodiscard]] const std::string& path() const { return path_; }

  [[nodiscard]] const json::Value* get(const std::string& key) {
    known_.push_back(key);
    return v_.find(key);
  }

  [[nodiscard]] const json::Value& require(const std::string& key) {
    const json::Value* v = get(key);
    if (v == nullptr) fail(path_, "missing required key \"" + key + "\"");
    return *v;
  }

  void finish() {
    for (const auto& [key, unused] : v_.as_object()) {
      (void)unused;
      if (std::find(known_.begin(), known_.end(), key) != known_.end()) continue;
      std::string valid;
      for (const auto& k : known_) valid += (valid.empty() ? "" : ", ") + k;
      fail(path_ + "." + key, "unknown key (valid keys here: " + valid + ")");
    }
  }

private:
  const json::Value& v_;
  std::string path_;
  std::vector<std::string> known_;
};

// Typed readers; each error names the path and the actual JSON kind.
std::int64_t as_int(const json::Value& v, const std::string& path) {
  if (!v.is_int())
    fail(path, std::string("expected an integer, got ") + json::to_string(v.kind()));
  return v.as_int();
}

double as_num(const json::Value& v, const std::string& path) {
  if (!v.is_number())
    fail(path, std::string("expected a number, got ") + json::to_string(v.kind()));
  return v.as_double();
}

bool as_bool(const json::Value& v, const std::string& path) {
  if (!v.is_bool())
    fail(path, std::string("expected a bool, got ") + json::to_string(v.kind()));
  return v.as_bool();
}

const std::string& as_str(const json::Value& v, const std::string& path) {
  if (!v.is_string())
    fail(path, std::string("expected a string, got ") + json::to_string(v.kind()));
  return v.as_string();
}

std::int64_t opt_int(Obj& o, const std::string& key, std::int64_t fallback) {
  const json::Value* v = o.get(key);
  return v != nullptr ? as_int(*v, o.path() + "." + key) : fallback;
}

double opt_num(Obj& o, const std::string& key, double fallback) {
  const json::Value* v = o.get(key);
  return v != nullptr ? as_num(*v, o.path() + "." + key) : fallback;
}

bool opt_bool(Obj& o, const std::string& key, bool fallback) {
  const json::Value* v = o.get(key);
  return v != nullptr ? as_bool(*v, o.path() + "." + key) : fallback;
}

std::string opt_str(Obj& o, const std::string& key, std::string fallback) {
  const json::Value* v = o.get(key);
  return v != nullptr ? as_str(*v, o.path() + "." + key) : std::move(fallback);
}

std::vector<int> as_int_array(const json::Value& v, const std::string& path) {
  if (!v.is_array())
    fail(path, std::string("expected an array of integers, got ") + json::to_string(v.kind()));
  std::vector<int> out;
  const auto& a = v.as_array();
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(
        static_cast<int>(as_int(a[i], path + "[" + std::to_string(i) + "]")));
  return out;
}

// --- sections ----------------------------------------------------------------

core::TopologySpec load_topology(const json::Value& v, const std::string& path) {
  Obj o(v, path);
  const std::string kind = as_str(o.require("kind"), path + ".kind");
  core::TopologySpec spec;
  if (kind == "rack") {
    core::RackSpec s;
    s.n_workers = static_cast<int>(opt_int(o, "workers", s.n_workers));
    spec = s;
  } else if (kind == "multi_job") {
    core::MultiJobSpec s;
    s.n_jobs = static_cast<int>(opt_int(o, "jobs", s.n_jobs));
    s.workers_per_job = static_cast<int>(opt_int(o, "workers_per_job", s.workers_per_job));
    spec = s;
  } else if (kind == "hierarchy") {
    core::HierarchySpec s;
    s.racks = static_cast<int>(opt_int(o, "racks", s.racks));
    s.workers_per_rack = static_cast<int>(opt_int(o, "workers_per_rack", s.workers_per_rack));
    spec = s;
  } else if (kind == "tree") {
    core::TreeSpec s;
    s.levels = static_cast<int>(opt_int(o, "levels", s.levels));
    s.branching = static_cast<int>(opt_int(o, "branching", s.branching));
    s.workers_per_rack = static_cast<int>(opt_int(o, "workers_per_rack", s.workers_per_rack));
    spec = s;
  } else if (kind == "irregular") {
    core::IrregularSpec s;
    s.switch_parent = as_int_array(o.require("switch_parent"), path + ".switch_parent");
    s.worker_switch = as_int_array(o.require("worker_switch"), path + ".worker_switch");
    spec = s;
  } else {
    fail(path + ".kind", "unknown topology kind \"" + kind +
                             "\" (valid: rack, multi_job, hierarchy, tree, irregular)");
  }
  o.finish();
  // Structural validation now, with the topology's path on the error.
  try {
    std::visit(overloaded{
                   [](const core::IrregularSpec& s) { core::validate_irregular(s); },
                   [&](const auto&) {
                     const core::FaultTargets t = shape_counts(spec);
                     if (t.n_workers < 1) fail(path, "topology resolves to zero workers");
                   },
               },
               spec);
  } catch (const std::invalid_argument& e) {
    fail(path, e.what());
  }
  return spec;
}

void load_faults(const json::Value& v, const std::string& path, core::FaultPlan& plan) {
  Obj o(v, path);
  const auto each = [&](const char* key, auto&& parse_one) {
    const json::Value* arr = o.get(key);
    if (arr == nullptr) return;
    const std::string apath = path + "." + key;
    if (!arr->is_array())
      fail(apath, std::string("expected an array, got ") + json::to_string(arr->kind()));
    const auto& a = arr->as_array();
    for (std::size_t i = 0; i < a.size(); ++i)
      parse_one(a[i], apath + "[" + std::to_string(i) + "]");
  };
  each("stragglers", [&](const json::Value& e, const std::string& p) {
    Obj f(e, p);
    core::StragglerSpec s;
    s.worker = static_cast<int>(as_int(f.require("worker"), p + ".worker"));
    s.factor = as_num(f.require("factor"), p + ".factor");
    s.start = opt_int(f, "start_ns", 0);
    s.stop = opt_int(f, "stop_ns", -1);
    f.finish();
    plan.stragglers.push_back(s);
  });
  each("flaps", [&](const json::Value& e, const std::string& p) {
    Obj f(e, p);
    core::LinkFlapSpec s;
    s.link = static_cast<std::size_t>(as_int(f.require("link"), p + ".link"));
    s.down_at = as_int(f.require("down_ns"), p + ".down_ns");
    s.up_at = as_int(f.require("up_ns"), p + ".up_ns");
    f.finish();
    plan.flaps.push_back(s);
  });
  each("flap_cycles", [&](const json::Value& e, const std::string& p) {
    Obj f(e, p);
    core::LinkFlapCycleSpec s;
    s.link = static_cast<std::size_t>(as_int(f.require("link"), p + ".link"));
    s.period = as_int(f.require("period_ns"), p + ".period_ns");
    s.duty_down = as_num(f.require("duty_down"), p + ".duty_down");
    s.start = opt_int(f, "start_ns", 0);
    s.cycles = static_cast<int>(opt_int(f, "cycles", 0));
    f.finish();
    plan.flap_cycles.push_back(s);
  });
  each("bursts", [&](const json::Value& e, const std::string& p) {
    Obj f(e, p);
    core::BurstLossSpec s;
    s.link = static_cast<int>(opt_int(f, "link", -1));
    s.gilbert.p_enter = as_num(f.require("p_enter"), p + ".p_enter");
    s.gilbert.p_exit = as_num(f.require("p_exit"), p + ".p_exit");
    s.gilbert.loss_good = opt_num(f, "loss_good", 0.0);
    s.gilbert.loss_bad = as_num(f.require("loss_bad"), p + ".loss_bad");
    f.finish();
    plan.bursts.push_back(s);
  });
  each("switch_restarts", [&](const json::Value& e, const std::string& p) {
    Obj f(e, p);
    core::SwitchRestartSpec s;
    s.switch_index = static_cast<std::size_t>(as_int(f.require("switch"), p + ".switch"));
    s.at = as_int(f.require("at_ns"), p + ".at_ns");
    f.finish();
    plan.switch_restarts.push_back(s);
  });
  each("switch_kills", [&](const json::Value& e, const std::string& p) {
    Obj f(e, p);
    core::SwitchKillSpec s;
    s.switch_index = static_cast<std::size_t>(as_int(f.require("switch"), p + ".switch"));
    s.at = as_int(f.require("at_ns"), p + ".at_ns");
    f.finish();
    plan.switch_kills.push_back(s);
  });
  o.finish();
}

void load_fabric(const json::Value& v, const std::string& path, Scenario& s) {
  Obj o(v, path);
  core::FabricParams& p = s.fabric;
  const double rate_gbps = opt_num(o, "link_rate_gbps", 10.0);
  if (rate_gbps <= 0) fail(path + ".link_rate_gbps", "rate must be > 0");
  p.link_rate = static_cast<BitsPerSecond>(std::llround(rate_gbps * 1e9));
  const double up_gbps = opt_num(o, "uplink_rate_gbps", 0.0);
  if (up_gbps < 0) fail(path + ".uplink_rate_gbps", "rate must be >= 0 (0 = same as link)");
  p.uplink_rate = static_cast<BitsPerSecond>(std::llround(up_gbps * 1e9));
  p.propagation = opt_int(o, "propagation_ns", p.propagation);
  p.switch_latency = opt_int(o, "switch_latency_ns", p.switch_latency);
  p.queue_limit_bytes = opt_int(o, "queue_limit_bytes", p.queue_limit_bytes);
  p.loss_prob = opt_num(o, "loss_prob", 0.0);
  if (p.loss_prob < 0 || p.loss_prob >= 1) fail(path + ".loss_prob", "must be in [0, 1)");
  // Absent pool_size follows ClusterConfig::for_rate's §3.6 rule so a
  // scenario file matches what the benches build for the same rate.
  const std::int64_t pool =
      opt_int(o, "pool_size", p.link_rate >= gbps(100) ? 512 : 128);
  if (pool < 1) fail(path + ".pool_size", "must be >= 1");
  p.pool_size = static_cast<std::uint32_t>(pool);
  p.mtu_emulation = opt_bool(o, "mtu_emulation", false);
  p.elems_per_packet = static_cast<std::uint32_t>(
      opt_int(o, "elems_per_packet",
              p.mtu_emulation ? net::kMtuElemsPerPacket : net::kDefaultElemsPerPacket));
  p.wire_elem_bytes = static_cast<std::uint8_t>(opt_int(o, "wire_elem_bytes", 4));
  p.retransmit_timeout = opt_int(o, "retransmit_timeout_ns", p.retransmit_timeout);
  p.adaptive_rto = opt_bool(o, "adaptive_rto", false);
  p.lossless = opt_bool(o, "lossless", false);
  p.sram_budget_bytes =
      static_cast<std::size_t>(opt_int(o, "sram_budget_bytes",
                                       static_cast<std::int64_t>(p.sram_budget_bytes)));
  p.fp16_frac_bits = static_cast<int>(opt_int(o, "fp16_frac_bits", p.fp16_frac_bits));
  p.ablate_shadow_copy = opt_bool(o, "ablate_shadow_copy", false);
  p.ablate_seen_bitmap = opt_bool(o, "ablate_seen_bitmap", false);
  p.seed = static_cast<std::uint64_t>(opt_int(o, "seed", static_cast<std::int64_t>(p.seed)));
  p.sync_after = static_cast<int>(opt_int(o, "sync_after", p.sync_after));
  p.dead_after = static_cast<int>(opt_int(o, "dead_after", p.dead_after));
  p.fallback_reprovision =
      opt_int(o, "fallback_reprovision_ns", p.fallback_reprovision);

  const std::string transport = opt_str(o, "transport", "default");
  if (transport == "udp") p.transport = net::TransportKind::kUdp;
  else if (transport == "rdma_uc") p.transport = net::TransportKind::kRdmaUc;
  else if (transport == "default") p.transport = net::kDefaultTransport;
  else fail(path + ".transport", "unknown transport \"" + transport +
                                     "\" (valid: udp, rdma_uc, default)");
  if (const json::Value* rv = o.get("rdma")) {
    const std::string rp = path + ".rdma";
    Obj r(*rv, rp);
    p.rdma.wqe_post = opt_int(r, "wqe_post_ns", p.rdma.wqe_post);
    p.rdma.doorbell = opt_int(r, "doorbell_ns", p.rdma.doorbell);
    p.rdma.doorbell_batch = static_cast<int>(opt_int(r, "doorbell_batch", p.rdma.doorbell_batch));
    p.rdma.cqe_poll = opt_int(r, "cqe_poll_ns", p.rdma.cqe_poll);
    p.rdma.tx_latency = opt_int(r, "tx_latency_ns", p.rdma.tx_latency);
    p.rdma.rx_latency = opt_int(r, "rx_latency_ns", p.rdma.rx_latency);
    r.finish();
  }

  const std::string int_mode = opt_str(o, "int_mode", "off");
  if (int_mode == "off") p.int_mode = inttel::kModeOff;
  else if (int_mode == "phantom") p.int_mode = inttel::kModePhantom;
  else if (int_mode == "on_wire") p.int_mode = inttel::kModeOnWire;
  else fail(path + ".int_mode", "unknown int_mode \"" + int_mode +
                                    "\" (valid: off, phantom, on_wire)");

  if (const json::Value* nv = o.get("nic")) {
    const std::string np = path + ".nic";
    Obj n(*nv, np);
    const std::string profile = opt_str(n, "profile", "switchml");
    if (profile == "switchml") s.nic_selection.profile = NicProfile::kSwitchml;
    else if (profile == "crossover_udp") s.nic_selection.profile = NicProfile::kCrossoverUdp;
    else if (profile == "ps_host") s.nic_selection.profile = NicProfile::kPsHost;
    else fail(np + ".profile", "unknown NIC profile \"" + profile +
                                   "\" (valid: switchml, crossover_udp, ps_host)");
    s.nic_selection.cores = static_cast<int>(opt_int(n, "cores", 4));
    if (s.nic_selection.cores < 1) fail(np + ".cores", "must be >= 1");
    n.finish();
  }
  switch (s.nic_selection.profile) {
  case NicProfile::kSwitchml:
    p.nic = core::switchml_worker_nic(p.link_rate, s.nic_selection.cores);
    break;
  case NicProfile::kCrossoverUdp:
    p.nic = core::crossover_udp_nic(p.link_rate, s.nic_selection.cores);
    break;
  case NicProfile::kPsHost:
    p.nic = core::ps_host_nic(p.link_rate, s.nic_selection.cores);
    break;
  }
  o.finish();

  if (p.lossless && p.loss_prob > 0)
    fail(path, "lossless mode requires loss_prob == 0 (the network contract IS zero loss)");
}

void load_workload(const json::Value& v, const std::string& path, Workload& w) {
  Obj o(v, path);
  const std::string mode = opt_str(o, "mode", "timing");
  if (mode == "timing") w.timing = true;
  else if (mode == "data") w.timing = false;
  else fail(path + ".mode", "unknown mode \"" + mode + "\" (valid: timing, data)");
  const std::int64_t elems =
      opt_int(o, "tensor_elems", static_cast<std::int64_t>(w.tensor_elems));
  if (elems < 1) fail(path + ".tensor_elems", "must be >= 1");
  w.tensor_elems = static_cast<std::uint64_t>(elems);
  w.reductions = static_cast<int>(opt_int(o, "reductions", 1));
  if (w.reductions < 1) fail(path + ".reductions", "must be >= 1");
  w.data_seed =
      static_cast<std::uint64_t>(opt_int(o, "data_seed", static_cast<std::int64_t>(w.data_seed)));
  o.finish();
}

} // namespace

const char* to_string(NicProfile p) {
  switch (p) {
  case NicProfile::kSwitchml: return "switchml";
  case NicProfile::kCrossoverUdp: return "crossover_udp";
  case NicProfile::kPsHost: return "ps_host";
  }
  return "?";
}

core::FaultTargets shape_counts(const core::TopologySpec& topology) {
  return std::visit(
      overloaded{
          [](const core::RackSpec& s) {
            return core::FaultTargets{s.n_workers, static_cast<std::size_t>(s.n_workers), 1};
          },
          [](const core::MultiJobSpec& s) {
            const int w = s.n_jobs * s.workers_per_job;
            return core::FaultTargets{w, static_cast<std::size_t>(w), 1};
          },
          [](const core::HierarchySpec& s) {
            const int w = s.racks * s.workers_per_rack;
            return core::FaultTargets{w, static_cast<std::size_t>(w + s.racks),
                                      static_cast<std::size_t>(1 + s.racks)};
          },
          [](const core::TreeSpec& s) {
            // switches = sum of b^l for l in [0, levels); workers hang off the
            // b^(levels-1) bottom switches; every non-root switch has one uplink.
            std::size_t switches = 0, level_width = 1;
            for (int l = 0; l < s.levels; ++l) {
              switches += level_width;
              if (l + 1 < s.levels) level_width *= static_cast<std::size_t>(s.branching);
            }
            const int w = static_cast<int>(level_width) * s.workers_per_rack;
            return core::FaultTargets{w, static_cast<std::size_t>(w) + switches - 1, switches};
          },
          [](const core::IrregularSpec& s) {
            const int w = static_cast<int>(s.worker_switch.size());
            return core::FaultTargets{w, static_cast<std::size_t>(w) + s.switch_parent.size() - 1,
                                      s.switch_parent.size()};
          },
      },
      topology);
}

Scenario from_json(const json::Value& doc) {
  Obj o(doc, "$");
  Scenario s;
  const std::int64_t version = as_int(o.require("schema_version"), "$.schema_version");
  if (version != Scenario::kSchemaVersion)
    fail("$.schema_version", "unsupported version " + std::to_string(version) + " (this build reads " +
                                 std::to_string(Scenario::kSchemaVersion) + ")");
  s.name = as_str(o.require("name"), "$.name");
  if (s.name.empty()) fail("$.name", "must be non-empty");
  s.description = opt_str(o, "description", "");
  s.topology = load_topology(o.require("topology"), "$.topology");
  if (const json::Value* f = o.get("fabric")) load_fabric(*f, "$.fabric", s);
  else {
    // Defaults still resolve the NIC from the (default 10G) rate.
    s.fabric.nic = core::switchml_worker_nic(s.fabric.link_rate, s.nic_selection.cores);
  }
  if (const json::Value* w = o.get("workload")) load_workload(*w, "$.workload", s.workload);
  if (const json::Value* f = o.get("faults")) load_faults(*f, "$.faults", s.fabric.faults);
  o.finish();

  // Eager FaultPlan validation against the shape — the PR 5 messages
  // ("FaultPlan: flap_cycles[2] at t=... ns: ...") surface at load time,
  // JSON-path-qualified, without building a fabric.
  try {
    core::validate_fault_plan(s.fabric.faults, shape_counts(s.topology), s.fabric.lossless);
  } catch (const std::invalid_argument& e) {
    fail("$.faults", e.what());
  }
  return s;
}

Scenario load_string(std::string_view text) { return from_json(json::parse(text)); }

Scenario load_file(const std::string& path) {
  try {
    return from_json(json::parse_file(path));
  } catch (const json::ParseError&) {
    throw; // already carries the file name
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

json::Value to_json(const Scenario& s) {
  json::Value doc;
  doc.set("schema_version", Scenario::kSchemaVersion);
  doc.set("name", s.name);
  if (!s.description.empty()) doc.set("description", s.description);

  json::Value topo;
  std::visit(overloaded{
                 [&](const core::RackSpec& t) {
                   topo.set("kind", "rack");
                   topo.set("workers", t.n_workers);
                 },
                 [&](const core::MultiJobSpec& t) {
                   topo.set("kind", "multi_job");
                   topo.set("jobs", t.n_jobs);
                   topo.set("workers_per_job", t.workers_per_job);
                 },
                 [&](const core::HierarchySpec& t) {
                   topo.set("kind", "hierarchy");
                   topo.set("racks", t.racks);
                   topo.set("workers_per_rack", t.workers_per_rack);
                 },
                 [&](const core::TreeSpec& t) {
                   topo.set("kind", "tree");
                   topo.set("levels", t.levels);
                   topo.set("branching", t.branching);
                   topo.set("workers_per_rack", t.workers_per_rack);
                 },
                 [&](const core::IrregularSpec& t) {
                   topo.set("kind", "irregular");
                   json::Array parent, ws;
                   for (int p : t.switch_parent) parent.emplace_back(p);
                   for (int w : t.worker_switch) ws.emplace_back(w);
                   topo.set("switch_parent", std::move(parent));
                   topo.set("worker_switch", std::move(ws));
                 },
             },
             s.topology);
  doc.set("topology", std::move(topo));

  const core::FabricParams& p = s.fabric;
  json::Value fab;
  fab.set("link_rate_gbps", static_cast<double>(p.link_rate) / 1e9);
  fab.set("uplink_rate_gbps", static_cast<double>(p.uplink_rate) / 1e9);
  fab.set("propagation_ns", p.propagation);
  fab.set("switch_latency_ns", p.switch_latency);
  fab.set("queue_limit_bytes", p.queue_limit_bytes);
  fab.set("loss_prob", p.loss_prob);
  fab.set("pool_size", static_cast<std::int64_t>(p.pool_size));
  fab.set("elems_per_packet", static_cast<std::int64_t>(p.elems_per_packet));
  fab.set("wire_elem_bytes", static_cast<std::int64_t>(p.wire_elem_bytes));
  fab.set("mtu_emulation", p.mtu_emulation);
  fab.set("retransmit_timeout_ns", p.retransmit_timeout);
  fab.set("adaptive_rto", p.adaptive_rto);
  fab.set("lossless", p.lossless);
  fab.set("sram_budget_bytes", static_cast<std::int64_t>(p.sram_budget_bytes));
  fab.set("fp16_frac_bits", p.fp16_frac_bits);
  fab.set("ablate_shadow_copy", p.ablate_shadow_copy);
  fab.set("ablate_seen_bitmap", p.ablate_seen_bitmap);
  fab.set("seed", static_cast<std::int64_t>(p.seed));
  fab.set("sync_after", p.sync_after);
  fab.set("dead_after", p.dead_after);
  fab.set("fallback_reprovision_ns", p.fallback_reprovision);
  fab.set("transport", p.transport == net::TransportKind::kUdp ? "udp" : "rdma_uc");
  json::Value rdma;
  rdma.set("wqe_post_ns", p.rdma.wqe_post);
  rdma.set("doorbell_ns", p.rdma.doorbell);
  rdma.set("doorbell_batch", p.rdma.doorbell_batch);
  rdma.set("cqe_poll_ns", p.rdma.cqe_poll);
  rdma.set("tx_latency_ns", p.rdma.tx_latency);
  rdma.set("rx_latency_ns", p.rdma.rx_latency);
  fab.set("rdma", std::move(rdma));
  fab.set("int_mode", p.int_mode == inttel::kModeOff
                          ? "off"
                          : (p.int_mode == inttel::kModePhantom ? "phantom" : "on_wire"));
  json::Value nic;
  nic.set("profile", to_string(s.nic_selection.profile));
  nic.set("cores", s.nic_selection.cores);
  fab.set("nic", std::move(nic));
  doc.set("fabric", std::move(fab));

  json::Value wl;
  wl.set("mode", s.workload.timing ? "timing" : "data");
  wl.set("tensor_elems", static_cast<std::int64_t>(s.workload.tensor_elems));
  wl.set("reductions", s.workload.reductions);
  wl.set("data_seed", static_cast<std::int64_t>(s.workload.data_seed));
  doc.set("workload", std::move(wl));

  const core::FaultPlan& fp = p.faults;
  if (!fp.empty()) {
    json::Value faults;
    if (!fp.stragglers.empty()) {
      json::Array a;
      for (const auto& f : fp.stragglers) {
        json::Value e;
        e.set("worker", f.worker);
        e.set("factor", f.factor);
        e.set("start_ns", f.start);
        e.set("stop_ns", f.stop);
        a.push_back(std::move(e));
      }
      faults.set("stragglers", std::move(a));
    }
    if (!fp.flaps.empty()) {
      json::Array a;
      for (const auto& f : fp.flaps) {
        json::Value e;
        e.set("link", static_cast<std::int64_t>(f.link));
        e.set("down_ns", f.down_at);
        e.set("up_ns", f.up_at);
        a.push_back(std::move(e));
      }
      faults.set("flaps", std::move(a));
    }
    if (!fp.flap_cycles.empty()) {
      json::Array a;
      for (const auto& f : fp.flap_cycles) {
        json::Value e;
        e.set("link", static_cast<std::int64_t>(f.link));
        e.set("period_ns", f.period);
        e.set("duty_down", f.duty_down);
        e.set("start_ns", f.start);
        e.set("cycles", f.cycles);
        a.push_back(std::move(e));
      }
      faults.set("flap_cycles", std::move(a));
    }
    if (!fp.bursts.empty()) {
      json::Array a;
      for (const auto& f : fp.bursts) {
        json::Value e;
        e.set("link", f.link);
        e.set("p_enter", f.gilbert.p_enter);
        e.set("p_exit", f.gilbert.p_exit);
        e.set("loss_good", f.gilbert.loss_good);
        e.set("loss_bad", f.gilbert.loss_bad);
        a.push_back(std::move(e));
      }
      faults.set("bursts", std::move(a));
    }
    if (!fp.switch_restarts.empty()) {
      json::Array a;
      for (const auto& f : fp.switch_restarts) {
        json::Value e;
        e.set("switch", static_cast<std::int64_t>(f.switch_index));
        e.set("at_ns", f.at);
        a.push_back(std::move(e));
      }
      faults.set("switch_restarts", std::move(a));
    }
    if (!fp.switch_kills.empty()) {
      json::Array a;
      for (const auto& f : fp.switch_kills) {
        json::Value e;
        e.set("switch", static_cast<std::int64_t>(f.switch_index));
        e.set("at_ns", f.at);
        a.push_back(std::move(e));
      }
      faults.set("switch_kills", std::move(a));
    }
    doc.set("faults", std::move(faults));
  }
  return doc;
}

core::FabricConfig to_fabric_config(const Scenario& s) {
  core::FabricConfig fc(s.fabric, s.topology);
  fc.timing_only = s.workload.timing;
  return fc;
}

std::vector<std::vector<std::int32_t>> make_updates(int workers, std::uint64_t elems,
                                                    std::uint64_t seed) {
  std::vector<std::vector<std::int32_t>> u(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    auto& vec = u[static_cast<std::size_t>(w)];
    vec.resize(elems);
    // splitmix64 stream per (seed, worker).
    std::uint64_t x = seed ^ (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(w + 1));
    for (auto& v : vec) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      z ^= z >> 31;
      v = static_cast<std::int32_t>(z & 0xFFFF) - 0x8000;
    }
  }
  return u;
}

std::vector<std::int32_t> expected_sum(const std::vector<std::vector<std::int32_t>>& updates) {
  std::vector<std::int32_t> out(updates.empty() ? 0 : updates.front().size(), 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint32_t acc = 0; // wrapping, order-independent — like the switch ALU
    for (const auto& u : updates) acc += static_cast<std::uint32_t>(u[i]);
    out[i] = static_cast<std::int32_t>(acc);
  }
  return out;
}

RunResult run(const Scenario& s, const RunHooks& hooks) {
  core::Fabric fabric(to_fabric_config(s));
  if (hooks.on_built) hooks.on_built(fabric);
  RunResult out;
  out.data_bit_exact = true;
  for (int rep = 0; rep < s.workload.reductions; ++rep) {
    std::vector<Time> tats;
    if (s.workload.timing) {
      tats = fabric.reduce_timing(s.workload.tensor_elems);
    } else {
      const auto updates = make_updates(fabric.workers_per_job(), s.workload.tensor_elems,
                                        s.workload.data_seed + static_cast<std::uint64_t>(rep));
      auto r = fabric.reduce_i32_job(0, updates);
      const auto want = expected_sum(updates);
      out.data_checked = true;
      for (const auto& got : r.outputs)
        if (got != want) out.data_bit_exact = false;
      tats = std::move(r.tat);
    }
    if (hooks.on_reduction) hooks.on_reduction(fabric, rep, tats);
    out.tats.push_back(std::move(tats));
  }
  if (!out.data_checked) out.data_bit_exact = false;
  out.fallback_engaged = fabric.fallback_engaged();
  for (int i = 0; i < fabric.n_workers(); ++i)
    out.dead_declared += fabric.worker(i).recovery().dead_declared;
  return out;
}

} // namespace switchml::scenario
