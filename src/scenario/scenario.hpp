// Declarative scenario engine: one schema-versioned JSON file describes one
// whole experiment — fabric parameters, a topology (any TopologySpec shape,
// including the explicit-adjacency IrregularSpec), a full FaultPlan, and a
// workload section — and `run()` executes it on the unified fabric.
//
// The loader is strict by design (the corpus doubles as documentation, so a
// silently-ignored typo would teach the wrong schema):
//   * unknown keys are rejected, naming the key, its JSON path, and the keys
//     that ARE valid there;
//   * every type/range error is JSON-path-qualified ("$.faults.flap_cycles[2]
//     .duty_down: ...") and fault-plan errors reuse the PR 5 validation
//     messages from core::validate_fault_plan, which runs eagerly at load
//     time against shape_counts() — no fabric build needed to reject a plan;
//   * `to_json` emits the fully-resolved (normalized) form, and
//     load(to_json(s)) round-trips to an identical document — the scenario
//     fuzzer and json_test pin that.
//
// Schema reference lives in DESIGN.md ("Scenario engine"); the committed
// corpus under scenarios/ holds one file per ported bench configuration.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "core/fabric.hpp"
#include "core/fault.hpp"

namespace switchml::scenario {

// Which calibrated NIC profile (core/profiles.hpp) the fabric's workers use;
// kept symbolic (not a resolved NicConfig) so a scenario re-emits the
// profile name it was written with.
enum class NicProfile : std::uint8_t { kSwitchml, kCrossoverUdp, kPsHost };

[[nodiscard]] const char* to_string(NicProfile p);

struct NicSelection {
  NicProfile profile = NicProfile::kSwitchml;
  int cores = 4;
};

struct Workload {
  bool timing = true; // "timing" (TAT only) or "data" (bit-exact int32 sums)
  std::uint64_t tensor_elems = 256 * 1024;
  int reductions = 1;          // back-to-back reductions on ONE fabric
  std::uint64_t data_seed = 1; // update-generator seed (data mode)
};

struct Scenario {
  static constexpr int kSchemaVersion = 1;

  std::string name;
  std::string description;
  // Resolved fabric parameters, including `faults` (the full FaultPlan) and
  // the NIC resolved from `nic_selection`. timing_only is derived from the
  // workload at run()/to_fabric_config() time, never stored in the file.
  core::FabricParams fabric;
  NicSelection nic_selection;
  core::TopologySpec topology = core::RackSpec{};
  Workload workload;
};

// Worker/link/switch counts of a TopologySpec WITHOUT building the fabric —
// what the loader validates a FaultPlan's indices against. (Link indices:
// stars and irregular fabrics put worker uplinks first, in worker order;
// trees interleave DFS — see TopologyBuilder.)
[[nodiscard]] core::FaultTargets shape_counts(const core::TopologySpec& topology);

// --- load/store --------------------------------------------------------------

// Throws json::ParseError (malformed JSON, with line/column) or
// std::invalid_argument (schema violations, with the "$."-rooted JSON path).
[[nodiscard]] Scenario load_file(const std::string& path);
[[nodiscard]] Scenario load_string(std::string_view text);
[[nodiscard]] Scenario from_json(const json::Value& doc);

// Normalized form: every fabric/workload field explicit, fault arrays only
// when non-empty. load(to_json(s)) == s and re-emits identically.
[[nodiscard]] json::Value to_json(const Scenario& s);

// The FabricConfig `run` builds (timing_only derived from the workload).
[[nodiscard]] core::FabricConfig to_fabric_config(const Scenario& s);

// --- data-mode workload ------------------------------------------------------

// Deterministic per-worker updates (splitmix64 over seed x worker), values in
// [-32768, 32767] like a quantized gradient shard.
[[nodiscard]] std::vector<std::vector<std::int32_t>>
make_updates(int workers, std::uint64_t elems, std::uint64_t seed);

// Element-wise wrapping int32 sum — what every worker must receive bit-exactly.
[[nodiscard]] std::vector<std::int32_t>
expected_sum(const std::vector<std::vector<std::int32_t>>& updates);

// --- runner ------------------------------------------------------------------

struct RunHooks {
  // After the fabric is built, before any reduction: attach tracers,
  // timelines, sidecars.
  std::function<void(core::Fabric&)> on_built;
  // After each reduction, with that rep's per-worker TATs.
  std::function<void(core::Fabric&, int rep, const std::vector<Time>& tats)> on_reduction;
};

struct RunResult {
  // Per reduction, per worker. Timing mode covers every worker (all jobs of
  // a multi-job fabric reduce concurrently); data mode runs job 0.
  std::vector<std::vector<Time>> tats;
  bool fallback_engaged = false;   // any reduction degraded to streaming-PS
  std::uint64_t dead_declared = 0; // workers that declared the switch dead
  bool data_checked = false;       // data mode ran and outputs were compared
  bool data_bit_exact = false;     // every worker, every rep, matched expected_sum
};

// Builds one fabric and executes the workload with the scenario's FaultPlan
// armed. The PR 5 termination contract applies: the run either converges
// (data mode bit-exactly), or degrades explicitly — fallback_engaged /
// dead_declared report which.
[[nodiscard]] RunResult run(const Scenario& s, const RunHooks& hooks = {});

} // namespace switchml::scenario
