#include "dataplane/pipeline.hpp"

namespace switchml::dp {

RegisterArray::RegisterArray(Pipeline& pipeline, std::string name, int stage, std::size_t size)
    : pipeline_(pipeline), name_(std::move(name)), stage_(stage), slots_(size, 0) {
  pipeline_.note_array(*this, stage, bytes());
}

RegisterArray::~RegisterArray() { pipeline_.release_array(bytes()); }

void RegisterArray::check_access(std::size_t index) {
  if (index >= slots_.size())
    throw std::out_of_range("RegisterArray '" + name_ + "': index " + std::to_string(index) +
                            " out of range (size " + std::to_string(slots_.size()) + ")");
  if (last_epoch_ == pipeline_.epoch())
    throw std::logic_error("dataplane constraint violated: register array '" + name_ +
                           "' accessed twice for one packet");
  last_epoch_ = pipeline_.epoch();
  pipeline_.note_access(stage_);
}

std::uint64_t RegisterArray::rmw(std::size_t index,
                                 const std::function<std::uint64_t(std::uint64_t)>& alu) {
  check_access(index);
  const std::uint64_t old = slots_[index];
  slots_[index] = alu(old);
  return old;
}

std::uint64_t RegisterArray::read(std::size_t index) {
  check_access(index);
  return slots_[index];
}

void RegisterArray::control_plane_fill(std::uint64_t value) {
  for (auto& s : slots_) s = value;
}

} // namespace switchml::dp
