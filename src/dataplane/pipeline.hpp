// Programmable-switch dataplane model.
//
// This captures the RMT/Tofino constraints the paper designs around
// (§3.1, Appendix B) and enforces them at runtime so the SwitchML switch
// program provably fits the hardware's execution model:
//
//  * state lives in register arrays of integer words (no floats, no division);
//  * each register array can be accessed AT MOST ONCE per packet, with a
//    single read-modify-write;
//  * arrays are assigned to pipeline stages, and data dependencies must flow
//    forward: within one packet, accesses must touch non-decreasing stages;
//  * the widest memory access is 64 bits, which SwitchML exploits by packing
//    the two pool versions into the two 32-bit halves of one word so a single
//    access can, e.g., set a bitmap bit for one pool and clear the alternate
//    pool's bit (Appendix B).
//
// Violating any constraint throws — a stand-in for "the P4 compiler rejects
// the program".
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace switchml::dp {

class Pipeline;

// A stateful array of 64-bit registers pinned to one pipeline stage.
class RegisterArray {
public:
  RegisterArray(Pipeline& pipeline, std::string name, int stage, std::size_t size);
  ~RegisterArray();
  RegisterArray(const RegisterArray&) = delete;
  RegisterArray& operator=(const RegisterArray&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int stage() const { return stage_; }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] std::size_t bytes() const { return slots_.size() * sizeof(std::uint64_t); }

  // The single allowed access for the current packet: an atomic
  // read-modify-write implemented by the stage's ALU. `alu` receives the old
  // value and returns the new one; the OLD value is returned to the program
  // (Tofino register actions can export one word). Integer-only by
  // construction.
  std::uint64_t rmw(std::size_t index, const std::function<std::uint64_t(std::uint64_t)>& alu);

  // Read-only access (still counts as the one access for this packet).
  std::uint64_t read(std::size_t index);

  // Out-of-band reset, as done by the control plane between jobs (not part of
  // per-packet processing).
  void control_plane_fill(std::uint64_t value);

private:
  void check_access(std::size_t index);

  Pipeline& pipeline_;
  std::string name_;
  int stage_;
  std::vector<std::uint64_t> slots_;
  std::uint64_t last_epoch_ = 0; // epoch of the most recent access
};

// Tracks per-packet access legality and aggregate statistics.
class Pipeline {
public:
  explicit Pipeline(int num_stages) : num_stages_(num_stages) {
    if (num_stages < 1) throw std::invalid_argument("Pipeline: need at least one stage");
  }

  [[nodiscard]] int num_stages() const { return num_stages_; }

  // Must be called once per packet before any register access.
  void begin_packet() {
    ++epoch_;
    current_stage_ = -1;
    ++packets_;
  }

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t packets_processed() const { return packets_; }
  [[nodiscard]] std::uint64_t register_accesses() const { return accesses_; }

  // Total dataplane SRAM consumed by registered arrays.
  [[nodiscard]] std::size_t register_bytes() const { return register_bytes_; }

private:
  friend class RegisterArray;

  void note_array(const RegisterArray& array, int stage, std::size_t bytes) {
    if (stage < 0 || stage >= num_stages_)
      throw std::invalid_argument("RegisterArray '" + array.name() + "': stage out of range");
    register_bytes_ += bytes;
  }

  // Control plane freed an array (e.g. a tenant job was evicted).
  void release_array(std::size_t bytes) { register_bytes_ -= bytes; }

  void note_access(int stage) {
    if (stage < current_stage_)
      throw std::logic_error(
          "dataplane constraint violated: register access flows backwards in the pipeline "
          "(stage " +
          std::to_string(stage) + " after stage " + std::to_string(current_stage_) + ")");
    current_stage_ = stage;
    ++accesses_;
  }

  int num_stages_;
  std::uint64_t epoch_ = 0;
  int current_stage_ = -1;
  std::uint64_t packets_ = 0;
  std::uint64_t accesses_ = 0;
  std::size_t register_bytes_ = 0;
};

// --- helpers for the two-halves register layout -----------------------------

// The two pool versions share one 64-bit word: version 0 occupies bits
// [0, 32), version 1 bits [32, 64).
constexpr std::uint64_t half_get(std::uint64_t word, int ver) {
  return (word >> (ver * 32)) & 0xFFFFFFFFull;
}

constexpr std::uint64_t half_set(std::uint64_t word, int ver, std::uint64_t value32) {
  const int shift = ver * 32;
  const std::uint64_t mask = 0xFFFFFFFFull << shift;
  return (word & ~mask) | ((value32 & 0xFFFFFFFFull) << shift);
}

// Interprets a 32-bit half as a signed two's-complement integer (the switch
// ALU operates on integers; gradients are fixed-point int32).
constexpr std::int32_t half_as_i32(std::uint64_t word, int ver) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(half_get(word, ver)));
}

constexpr std::uint64_t half_store_i32(std::uint64_t word, int ver, std::int32_t v) {
  return half_set(word, ver, static_cast<std::uint32_t>(v));
}

} // namespace switchml::dp
