// Critical-path time attribution (tier 4 of the observability layer).
//
// A SpanLedger decomposes every chunk's wall-clock lifetime — from the
// worker's first send to the moment the aggregated result is consumed — into
// exclusive, non-overlapping components on the simulation clock. Where the
// TraceSink answers "what happened when", the ledger answers "where did the
// time go": when recovery_sweep reports 1.33x TAT inflation, the ledger says
// how much of it was wire time vs. switch slot dwell vs. RTO stalls vs.
// epoch-resync stalls.
//
// The ledger is an event-driven state machine, not a post-hoc timestamp
// matcher. Each open chunk (keyed by owning worker node id + pool slot index)
// is always in exactly one component; a transition closes the current
// segment (accumulating `at - since` into the component the chunk was in)
// and opens the next. Conservation therefore holds *by construction*: the
// per-component nanoseconds of a closed chunk sum exactly to its measured
// end - start, bit-identically across same-seed runs, with no residual to
// tolerate away.
//
// Cost model, mirroring TraceSink's discipline:
//   1. Compiled out (-DSWITCHML_ATTRIBUTION=0): every instrumentation point
//      constant-folds to nothing — zero instructions on the hot path.
//   2. No ledger installed (the default): one thread_local read and a branch.
//   3. Recording: array indexing plus a handful of scalar updates. Per-node
//      state slabs are allocated once, on first use, so steady-state
//      recording is allocation-free; finished-chunk records go into a buffer
//      reserved up front and are dropped (and counted) beyond capacity —
//      rollup totals and the conservation check never stop.
//
// Attribution is pure observation: it schedules no events, draws no random
// numbers, and never changes simulation behavior — enabling it leaves every
// other metric bit-identical.
//
// Like MetricsRegistry and TraceSink, the ledger is discovered through an
// ambient scoped pointer (SpanLedger::Scope), so instrumentation points need
// no plumbing and code running outside any scope pays only cost 2.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace switchml::attr {

// Compile-time kill switch. Building with -DSWITCHML_ATTRIBUTION=0 removes
// every instrumentation point from the binary.
#ifndef SWITCHML_ATTRIBUTION
#define SWITCHML_ATTRIBUTION 1
#endif
inline constexpr bool kCompiledIn = SWITCHML_ATTRIBUTION != 0;

// Where a chunk's time can go. Exclusive and exhaustive: an open chunk is in
// exactly one component at any sim time. Keep in sync with kComponentNames.
enum class Component : std::uint8_t {
  kHostTx = 0,   // worker-side send path: NIC core occupancy + quantization cost
  kLinkQueue,    // waiting behind earlier serializations for the egress port
  kWire,         // the packet's own serialization time at the link rate
  kProp,         // propagation delay (both directions)
  kSwitchWait,   // in an aggregator slot, waiting for the remaining workers
  kSwitchReady,  // aggregation complete: result egress/relay back to the worker
  kHostRx,       // worker-side receive path: NIC rx processing until consume
  kRtoStall,     // a drop happened; dead time until the retransmission timer acts
  kRecovery,     // switch-restart wipe / dead-switch stalls until re-driven
  kFallback,     // job degraded: chunk replayed by the streaming-PS collective
};
inline constexpr std::size_t kComponentCount = 10;

// Snake_case names used for metrics ("attr.worker-0.wire_ns"), JSONL keys,
// and bench report rows.
[[nodiscard]] const char* to_string(Component c);

// One finished chunk: where every nanosecond of [start, end] went.
struct ChunkRecord {
  std::uint32_t node = 0; // owning worker's NodeId
  std::uint32_t slot = 0; // aggregator pool slot index
  std::uint64_t off = 0;  // element offset of the chunk
  Time start = 0;
  Time end = 0;
  std::array<std::uint64_t, kComponentCount> ns{};
};

class SpanLedger {
public:
  // `record_capacity` bounds the finished-chunk buffer (reserved up front;
  // never grows). Rollup totals keep accumulating after it fills.
  explicit SpanLedger(std::size_t record_capacity = 1u << 16);
  SpanLedger(const SpanLedger&) = delete;
  SpanLedger& operator=(const SpanLedger&) = delete;

  // --- hot path: per-chunk state machine -------------------------------------

  // Begins a chunk's lifetime in kHostTx at `at`. Reopening a key that is
  // already open resets it in place (counted in reopened()), never recording
  // the partial chunk.
  void open(std::uint32_t node, std::uint32_t slot, std::uint64_t off, Time at);

  // Closes the current segment and enters `c`. Timestamps may be computed
  // ahead of sim-time (a link's planned serialization finish); a transition
  // that lands before the segment start clamps to a zero-length segment, so
  // conservation is unaffected. Unknown keys are ignored — instrumentation
  // sites need not know whether their packet belongs to a tracked chunk.
  void transition(std::uint32_t node, std::uint32_t slot, Component c, Time at);

  // Like transition(), but only when the open chunk is still at offset `off`.
  // Packet-driven sites (links, switches) use this so a stale duplicate —
  // e.g. a shadow-copy reply racing the multicast it duplicates — cannot
  // mislabel the slot's successor chunk.
  void transition_matching(std::uint32_t node, std::uint32_t slot, std::uint64_t off,
                           Component c, Time at);

  // Ends the chunk at max(at, last transition), records it, and folds its
  // per-component time into the node rollup.
  void close(std::uint32_t node, std::uint32_t slot, Time at);

  // Transitions every open chunk of `node` into `c` at `at` (PS-fallback
  // handoff), or closes them all (fallback completion).
  void transition_all(std::uint32_t node, Component c, Time at);
  void close_all(std::uint32_t node, Time at);

  // --- hot path: switch-side contributor tracking ----------------------------
  // The switch does not know which chunk a slot serves — only which packets
  // contributed. The ledger tracks contributor lists per (switch, job, slot
  // idx, version) so slot completion can move every contributor's chunk at
  // once. Worker chunks are keyed by the pool index carried in the packets.

  // Records `contributor` (the update's src node) into the slot's list and
  // moves its chunk into kSwitchWait (when still at offset `off`).
  void contribute(std::uint32_t switch_node, std::uint32_t job, std::uint32_t ver,
                  std::uint32_t idx, std::uint32_t contributor, std::uint64_t off, Time at);

  // Slot went complete at offset `off`: every recorded contributor's chunk
  // still at `off` moves to kSwitchReady; the list is cleared.
  void complete_slot(std::uint32_t switch_node, std::uint32_t job, std::uint32_t ver,
                     std::uint32_t idx, std::uint64_t off, Time at);

  // Dataplane restart wiped the pool: every contributor of every slot moves
  // to `c` (kRecovery) and all lists clear.
  void sweep_switch(std::uint32_t switch_node, Component c, Time at);

  // --- queries (export / test time, never the hot path) ----------------------

  [[nodiscard]] std::uint64_t node_total(std::uint32_t node, Component c) const;
  [[nodiscard]] std::uint64_t total(Component c) const;
  // Sum of every component over every closed chunk == sum of (end - start).
  [[nodiscard]] std::uint64_t total_ns() const;

  [[nodiscard]] std::uint64_t chunks_closed() const { return closed_; }
  [[nodiscard]] std::uint64_t reopened() const { return reopened_; }
  [[nodiscard]] std::uint64_t records_dropped() const { return record_drops_; }
  [[nodiscard]] std::size_t record_capacity() const { return record_capacity_; }

  // Largest |sum(components) - (end - start)| seen at close time, in ns.
  // Zero by construction; exported as a guarded bench metric so the invariant
  // is continuously enforced against the committed baselines.
  [[nodiscard]] std::uint64_t max_residual_ns() const { return max_residual_; }

  [[nodiscard]] const std::vector<ChunkRecord>& records() const { return records_; }

  // One JSON object per closed chunk:
  //   {"node":0,"slot":3,"off":4096,"start_ns":..,"end_ns":..,
  //    "ns":{"host_tx":..,"link_queue":..,...}}
  // A trailing object reports {"records_dropped":N} when the buffer filled.
  // scripts/critical_path.py consumes this.
  [[nodiscard]] std::string jsonl() const;
  void write_jsonl(const std::string& path) const;

  // --- ambient ledger --------------------------------------------------------
  [[nodiscard]] static SpanLedger* current();

  // RAII installer; nests (the previous ledger is restored on destruction).
  // Scope(nullptr) masks an outer ledger — the fabric uses this to keep the
  // PS-fallback inner cluster (whose node ids collide with the fabric's) from
  // writing into the job's ledger.
  class Scope {
  public:
    explicit Scope(SpanLedger* ledger);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    SpanLedger* prev_;
  };

private:
  struct ChunkState {
    bool is_open = false;
    Component cur = Component::kHostTx;
    Time start = 0;
    Time since = 0;
    std::uint64_t off = 0;
    std::array<std::uint64_t, kComponentCount> acc{};
  };
  struct NodeSlab {
    std::vector<ChunkState> slots;
    std::array<std::uint64_t, kComponentCount> totals{};
  };
  // Contributor lists of one (switch, job), per slot index and pool version.
  struct SwitchSlab {
    std::uint64_t key = 0; // (switch node id << 8) | job
    std::vector<std::array<std::vector<std::uint32_t>, 2>> slots; // [idx][ver] -> nodes
  };

  NodeSlab& slab(std::uint32_t node);
  [[nodiscard]] ChunkState* find(std::uint32_t node, std::uint32_t slot);
  SwitchSlab& switch_slab(std::uint64_t key);
  void advance(ChunkState& s, Component c, Time at);
  void finish(std::uint32_t node, NodeSlab& n, std::uint32_t slot, ChunkState& s, Time at);

  std::size_t record_capacity_;
  std::vector<std::unique_ptr<NodeSlab>> nodes_; // indexed by node id
  std::vector<SwitchSlab> switches_;             // few entries; linear scan
  std::vector<ChunkRecord> records_;
  std::array<std::uint64_t, kComponentCount> totals_{};
  std::uint64_t closed_ = 0;
  std::uint64_t reopened_ = 0;
  std::uint64_t record_drops_ = 0;
  std::uint64_t max_residual_ = 0;
};

// True when attribution is compiled in and a ledger is installed. With
// SWITCHML_ATTRIBUTION=0 the check constant-folds to `false`, dead-coding the
// caller's span bookkeeping.
inline bool enabled() {
  if constexpr (!kCompiledIn) return false;
  return SpanLedger::current() != nullptr;
}

// One-call instrumentation points for hot paths (cost model above).
inline void open(std::uint32_t node, std::uint32_t slot, std::uint64_t off, Time at) {
  if constexpr (!kCompiledIn) return;
  if (SpanLedger* l = SpanLedger::current()) l->open(node, slot, off, at);
}
inline void transition(std::uint32_t node, std::uint32_t slot, Component c, Time at) {
  if constexpr (!kCompiledIn) return;
  if (SpanLedger* l = SpanLedger::current()) l->transition(node, slot, c, at);
}
inline void close(std::uint32_t node, std::uint32_t slot, Time at) {
  if constexpr (!kCompiledIn) return;
  if (SpanLedger* l = SpanLedger::current()) l->close(node, slot, at);
}
inline void transition_matching(std::uint32_t node, std::uint32_t slot, std::uint64_t off,
                                Component c, Time at) {
  if constexpr (!kCompiledIn) return;
  if (SpanLedger* l = SpanLedger::current()) l->transition_matching(node, slot, off, c, at);
}
inline void transition_all(std::uint32_t node, Component c, Time at) {
  if constexpr (!kCompiledIn) return;
  if (SpanLedger* l = SpanLedger::current()) l->transition_all(node, c, at);
}
inline void close_all(std::uint32_t node, Time at) {
  if constexpr (!kCompiledIn) return;
  if (SpanLedger* l = SpanLedger::current()) l->close_all(node, at);
}
inline void contribute(std::uint32_t switch_node, std::uint32_t job, std::uint32_t ver,
                       std::uint32_t idx, std::uint32_t contributor, std::uint64_t off, Time at) {
  if constexpr (!kCompiledIn) return;
  if (SpanLedger* l = SpanLedger::current())
    l->contribute(switch_node, job, ver, idx, contributor, off, at);
}
inline void complete_slot(std::uint32_t switch_node, std::uint32_t job, std::uint32_t ver,
                          std::uint32_t idx, std::uint64_t off, Time at) {
  if constexpr (!kCompiledIn) return;
  if (SpanLedger* l = SpanLedger::current()) l->complete_slot(switch_node, job, ver, idx, off, at);
}
inline void sweep_switch(std::uint32_t switch_node, Component c, Time at) {
  if constexpr (!kCompiledIn) return;
  if (SpanLedger* l = SpanLedger::current()) l->sweep_switch(switch_node, c, at);
}

} // namespace switchml::attr
