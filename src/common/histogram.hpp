// Fixed-memory latency histogram (tier 3 of the observability layer).
//
// An HdrHistogram-style log-linear bucketed histogram for non-negative
// integer values (nanosecond durations on the simulator's hot paths). The
// bucket layout is power-of-2: `precision_bits` (p) fixes the number of
// linear sub-buckets per octave, giving a bounded relative error of
// 2^-(p-1) (p=7 → ≤ 1.6%) at every magnitude up to `max_value`. Values
// above `max_value` land in a dedicated overflow bucket so they are counted,
// never lost.
//
// Cost model, mirroring TraceSink's discipline:
//   1. Compiled out (-DSWITCHML_HISTOGRAMS=0): record() constant-folds to
//      nothing — zero instructions on the hot path.
//   2. Compiled in (default): record() is O(1) and allocation-free — one
//      bit_width, one shift/add index computation, five scalar updates.
//      Percentile queries walk the (few-KB) bucket array and are meant for
//      snapshot/export time, never the hot path.
//
// count/sum/min/max are exact; percentiles are reported as the highest value
// equivalent to the bucket containing the requested rank, so repeated runs
// of a deterministic simulation produce bit-identical percentile output.
// Histograms with identical layout merge by elementwise bucket addition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace switchml {

// Compile-time kill switch. Building with -DSWITCHML_HISTOGRAMS=0 removes
// every record() from the binary; queries then see an empty histogram.
#ifndef SWITCHML_HISTOGRAMS
#define SWITCHML_HISTOGRAMS 1
#endif
inline constexpr bool kHistogramsCompiledIn = SWITCHML_HISTOGRAMS != 0;

class Histogram {
public:
  struct Config {
    // Linear sub-buckets per octave = 2^precision_bits; relative error of a
    // bucketed value is at most 2^-(precision_bits-1). Range [1, 14].
    int precision_bits = 7;
    // Largest exactly-bucketed value; larger values are counted in the
    // overflow bucket and reported as max_value by percentile queries.
    // Default covers one hour of nanoseconds.
    std::int64_t max_value = 3'600'000'000'000LL;
  };

  Histogram() : Histogram(Config{}) {}
  explicit Histogram(Config config);

  // --- hot path --------------------------------------------------------------

  // O(1), allocation-free. Negative values clamp to 0.
  void record(std::int64_t value) { record_n(value, 1); }

  void record_n(std::int64_t value, std::uint64_t n) {
    if constexpr (!kHistogramsCompiledIn) {
      (void)value;
      (void)n;
      return;
    }
    if (n == 0) return;
    if (value < 0) value = 0;
    counts_[index_of(value)] += n;
    count_ += n;
    sum_ += value * static_cast<std::int64_t>(n);
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  // --- exact aggregates ------------------------------------------------------

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  // Recorded values that exceeded max_value (subset of count()).
  [[nodiscard]] std::uint64_t overflow_count() const { return counts_.back(); }

  // --- percentiles -----------------------------------------------------------

  // Value at percentile p in [0, 100]: the highest value equivalent to the
  // bucket holding the sample of rank ceil(p/100 * count), clamped to the
  // exact max so percentile(p) never exceeds an observed value. p<=0 returns
  // the exact min, p>=100 the exact max; ranks in the overflow bucket report
  // max(). Returns 0 on an empty histogram.
  [[nodiscard]] std::int64_t percentile(double p) const;

  struct Quantiles {
    std::uint64_t count = 0;
    std::int64_t p50 = 0, p90 = 0, p99 = 0, p999 = 0;
  };
  // {count, p50, p90, p99, p99.9} in one bucket walk, clamped to the exact
  // max like percentile().
  [[nodiscard]] Quantiles quantiles() const {
    Quantiles q = quantiles_of(counts_);
    if (count_ != 0) {
      q.p50 = q.p50 < max_ ? q.p50 : max_;
      q.p90 = q.p90 < max_ ? q.p90 : max_;
      q.p99 = q.p99 < max_ ? q.p99 : max_;
      q.p999 = q.p999 < max_ ? q.p999 : max_;
    }
    return q;
  }

  // Quantiles of an externally supplied bucket-count vector laid out like
  // counts() — used by TimelineRecorder to turn per-interval count deltas
  // into per-interval percentiles without re-recording samples. Ranks in the
  // overflow slot (and exact-min/max extremes, which a delta vector cannot
  // know) report bucket-equivalent values.
  [[nodiscard]] Quantiles quantiles_of(const std::vector<std::uint64_t>& counts) const;

  // --- merge / reset ---------------------------------------------------------

  // Elementwise bucket addition; throws std::invalid_argument unless both
  // histograms share precision_bits and max_value.
  void merge(const Histogram& other);

  // Zeroes all counts; keeps the allocation.
  void reset();

  // --- layout introspection --------------------------------------------------

  [[nodiscard]] const Config& config() const { return config_; }
  // Bucket array, lowest value range first; the final slot is the overflow
  // bucket. Size is fixed at construction.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
  // Index of the bucket `value` records into (last index = overflow).
  [[nodiscard]] std::size_t index_of(std::int64_t value) const {
    if (value > config_.max_value) return counts_.size() - 1;
    const auto v = static_cast<std::uint64_t>(value);
    // Sub-bucket index 0..2^p-1 in bucket 0 (unit resolution), then
    // 2^(p-1)..2^p-1 in each higher bucket (resolution doubles per octave).
    const int bucket = bit_width_(v | (sub_bucket_count_ - 1)) - config_.precision_bits;
    const std::uint64_t sub = v >> bucket;
    return (static_cast<std::size_t>(bucket + 1) << (config_.precision_bits - 1)) +
           static_cast<std::size_t>(sub - sub_bucket_half_);
  }
  // Highest value mapping to bucket `idx`; the overflow slot reports
  // max_value.
  [[nodiscard]] std::int64_t value_at_index(std::size_t idx) const;

  // "p50 [min, max] p99=... (n=...)" one-liner for terminal tables.
  [[nodiscard]] std::string str() const;

private:
  static int bit_width_(std::uint64_t v) {
    return 64 - __builtin_clzll(v | 1);
  }

  Config config_;
  std::uint64_t sub_bucket_count_ = 0;
  std::uint64_t sub_bucket_half_ = 0;
  std::vector<std::uint64_t> counts_; // [buckets..., overflow]
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

} // namespace switchml
