// Cross-layer telemetry registry.
//
// Every component with counters (workers, aggregation switches, links,
// reliable-transport hosts) registers named samplers at construction; a
// snapshot() walks them and produces a uniform, queryable view that the
// benches export as a JSON sidecar and the tests assert against.
//
// Registration is pull-based: a sampler is a closure reading the component's
// live counter, so registering costs one closure and snapshotting costs one
// read — nothing is double-counted on the hot path.
//
// Components discover the registry through an ambient (scoped) pointer so
// that construction-time registration needs no constructor-signature churn:
// a topology builder installs `MetricsRegistry::Scope scope(&registry);`
// while it wires nodes and links, and every component constructed inside the
// scope registers itself. Components constructed outside any scope register
// nowhere and pay nothing.
//
// Lifetime: samplers capture raw component pointers, so the registry must not
// be snapshot after a registered component is destroyed. The cluster/fabric
// classes own both and destroy them together, which makes this automatic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.hpp"
#include "common/stats.hpp"

namespace switchml {

// Escapes `s` for embedding inside a JSON string literal and wraps it in
// double quotes. Shared by the snapshot/timeline/trace JSON exporters.
std::string json_quote(std::string_view s);

class MetricsRegistry {
public:
  using Sampler = std::function<std::uint64_t()>;
  using GaugeSampler = std::function<std::int64_t()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers a monotonically increasing counter. Names use dotted paths,
  // "<component>.<field>", e.g. "worker-0.retransmissions". Names are unique
  // across counters, gauges, and summaries; a duplicate registration throws
  // std::invalid_argument instead of silently shadowing the earlier series.
  void add_counter(std::string name, Sampler sample);

  // Registers an instantaneous level (queue depth, in-flight slots, current
  // RTO). Timeline sampling reports gauges as-is, counters as deltas.
  void add_gauge(std::string name, GaugeSampler sample);

  // Registers a distribution (e.g. a worker's per-packet RTT samples). The
  // Summary must outlive the registry's last snapshot().
  void add_summary(std::string name, const Summary* summary);

  // Registers a fixed-memory latency histogram (hot-path spans: packet RTT,
  // link queue wait, slot dwell). The Histogram must outlive the registry's
  // last snapshot().
  void add_histogram(std::string name, const Histogram* histogram);

  struct SummaryStats {
    std::size_t count = 0;
    double min = 0.0, median = 0.0, max = 0.0, mean = 0.0;
  };

  struct HistogramStats {
    std::uint64_t count = 0, overflow = 0;
    std::int64_t min = 0, max = 0, p50 = 0, p90 = 0, p99 = 0, p999 = 0;
    double mean = 0.0;
  };

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;    // sorted by name
    std::vector<std::pair<std::string, std::int64_t>> gauges;       // sorted by name
    std::vector<std::pair<std::string, SummaryStats>> summaries;    // sorted by name
    std::vector<std::pair<std::string, HistogramStats>> histograms; // sorted by name

    // Exact-name lookup; throws std::out_of_range if absent.
    [[nodiscard]] std::uint64_t counter(std::string_view name) const;
    [[nodiscard]] bool has_counter(std::string_view name) const;
    [[nodiscard]] std::int64_t gauge(std::string_view name) const;
    [[nodiscard]] bool has_gauge(std::string_view name) const;
    [[nodiscard]] const HistogramStats& histogram(std::string_view name) const;
    [[nodiscard]] bool has_histogram(std::string_view name) const;
    // Sum of every counter whose name ends with `suffix` (e.g.
    // ".retransmissions" totals across all workers).
    [[nodiscard]] std::uint64_t sum(std::string_view suffix) const;

    // {"counters": {...}, "gauges": {...}, "summaries": {...},
    //  "histograms": {"name": {"count":..,"p50":..,...}}}
    [[nodiscard]] std::string json() const;
    // Aligned two-column table for terminal output.
    [[nodiscard]] std::string table() const;
  };

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + summaries_.size() + histograms_.size();
  }

  // Registered samplers, in registration order. The TimelineRecorder walks
  // these directly each tick so that per-tick sampling does not pay
  // Snapshot's sort + string copies.
  [[nodiscard]] const std::vector<std::pair<std::string, Sampler>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, GaugeSampler>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, const Histogram*>>& histograms() const {
    return histograms_;
  }

  // --- ambient registry ------------------------------------------------------
  // The registry components constructed right now should register into, or
  // nullptr when none is installed.
  [[nodiscard]] static MetricsRegistry* current();

  // RAII installer; nests (the previous registry is restored on destruction).
  class Scope {
  public:
    explicit Scope(MetricsRegistry* registry);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    MetricsRegistry* prev_;
  };

private:
  void check_unique(const std::string& name) const;

  std::vector<std::pair<std::string, Sampler>> counters_;
  std::vector<std::pair<std::string, GaugeSampler>> gauges_;
  std::vector<std::pair<std::string, const Summary*>> summaries_;
  std::vector<std::pair<std::string, const Histogram*>> histograms_;
};

} // namespace switchml
