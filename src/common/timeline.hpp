// Sim-clock timeline telemetry (tier 1 of the observability layer).
//
// A TimelineRecorder periodically samples every counter, gauge, and
// histogram registered in a MetricsRegistry, driven by the simulation clock:
// counters become per-interval deltas (exported as rates), gauges become
// instantaneous levels, histograms become per-interval percentile series
// (p50/p90/p99/p99.9 of only the samples recorded during that interval,
// computed from bucket-count deltas — no samples are replayed or stored).
// This turns end-of-run snapshot totals into time-resolved series — the view
// the paper's Fig 6 / §5.3 loss analysis needs.
//
// The periodic tick is a *daemon* timer (sim::Simulation::schedule_daemon_timer):
// it re-arms only while the simulation still has live work pending, so
// Simulation::run()'s drain-until-empty semantics are preserved — the
// recorder never keeps a finished run alive.
//
// Storage is a bounded ring: once `max_samples` ticks are held, the oldest
// sample is overwritten and `dropped_samples()` increments, so truncation is
// never silent. Export formats are JSONL (one object per tick) and CSV.
//
// Layering note: this header lives in src/common but includes
// sim/simulation.hpp; all code touching the Simulation is inline here, and
// timeline.cpp stays sim-free, so switchml_common does not link against
// switchml_sim. Users of TimelineRecorder link switchml_sim anyway.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/units.hpp"
#include "sim/simulation.hpp"

namespace switchml {

class TimelineRecorder {
public:
  struct Config {
    Time period = msec(1);          // sim-time sampling period
    std::size_t max_samples = 65536; // ring capacity (ticks); oldest dropped first
  };

  // Captures the registry's current counter/gauge samplers (sorted by name);
  // series registered after construction are not sampled. Construct after
  // the topology is wired.
  TimelineRecorder(sim::Simulation& sim, const MetricsRegistry& registry, Config config);
  TimelineRecorder(sim::Simulation& sim, const MetricsRegistry& registry); // default Config

  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;
  ~TimelineRecorder() { tick_.cancel(); }

  // Records the baseline sample at the current sim time and arms the
  // periodic tick. Call once, before running the simulation.
  void start() {
    sample_now(sim_.now());
    arm();
  }

  // Records a final sample at the current sim time (capturing the partial
  // last interval) and disarms the tick. Idempotent per run.
  void finish() {
    tick_.cancel();
    if (!samples_.empty() && samples_.back().t == sim_.now()) return;
    sample_now(sim_.now());
  }

  // --- recorded data ---------------------------------------------------------

  [[nodiscard]] const std::vector<std::string>& counter_names() const { return counter_names_; }
  [[nodiscard]] const std::vector<std::string>& gauge_names() const { return gauge_names_; }
  [[nodiscard]] const std::vector<std::string>& histogram_names() const { return hist_names_; }

  // Sample timestamps, oldest first. sample_count() includes the baseline.
  [[nodiscard]] std::vector<Time> times() const;
  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }
  [[nodiscard]] std::uint64_t dropped_samples() const { return dropped_; }

  // Per-interval raw deltas of a counter (size = sample_count() - 1).
  [[nodiscard]] std::vector<std::uint64_t> deltas(std::string_view counter) const;
  // Per-interval counter rate in events/second (deltas / interval length).
  [[nodiscard]] std::vector<double> rate_per_s(std::string_view counter) const;
  // Gauge level at each sample point (size = sample_count()).
  [[nodiscard]] std::vector<std::int64_t> levels(std::string_view gauge) const;
  // Per-interval histogram quantiles (size = sample_count() - 1): element i
  // summarizes only the samples recorded between sample i and sample i+1.
  // Idle intervals report count 0 with zero percentiles.
  [[nodiscard]] std::vector<Histogram::Quantiles> interval_quantiles(
      std::string_view histogram) const;

  // --- export ----------------------------------------------------------------

  // One JSON object per interval:
  //   {"t_ns":<end>,"dt_ns":<len>,"rates":{"<counter>":<per-s>,...},
  //    "gauges":{"<name>":<level-at-end>,...},
  //    "hist":{"<name>":{"n":..,"p50":..,"p90":..,"p99":..,"p999":..},...}}
  // A trailing object reports {"dropped_samples":N} when the ring overflowed.
  [[nodiscard]] std::string jsonl() const;
  // Header "t_ns,dt_ns,<counter>.rate...,<gauge>...,<hist>.n,<hist>.p50...",
  // one row per interval.
  [[nodiscard]] std::string csv() const;

  enum class Format { kJsonl, kCsv };
  void write(const std::string& path, Format format) const;

private:
  struct Sample {
    Time t = 0;
    std::vector<std::uint64_t> counters;         // raw cumulative values
    std::vector<std::int64_t> gauges;            // instantaneous levels
    std::vector<Histogram::Quantiles> hists;     // quantiles of the interval
                                                 // ending at this sample
  };

  void arm() {
    tick_ = sim_.schedule_daemon_timer(config_.period, [this] { on_tick(); });
  }

  void on_tick() {
    sample_now(sim_.now());
    // Re-arm only while the run still has observable work queued; otherwise
    // let the simulation drain. finish() records the closing sample.
    if (sim_.live_pending_events() > 0) arm();
  }

  void sample_now(Time t);

  sim::Simulation& sim_;
  Config config_;
  sim::TimerHandle tick_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::vector<MetricsRegistry::Sampler> counter_samplers_;
  std::vector<MetricsRegistry::GaugeSampler> gauge_samplers_;
  std::vector<const Histogram*> hist_sources_;
  // Bucket counts of each histogram as of the previous sample; the delta
  // against the live counts yields the current interval's distribution.
  std::vector<std::vector<std::uint64_t>> hist_prev_;
  std::vector<std::uint64_t> hist_scratch_; // reused delta buffer
  std::deque<Sample> samples_; // bounded ring, oldest first
  std::uint64_t dropped_ = 0;
};

} // namespace switchml
