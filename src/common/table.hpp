// Minimal aligned-column table printer for the benchmark harnesses, so each
// bench binary can print the same rows/series as the paper's tables/figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace switchml {

class Table {
public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace switchml
