// Sampling, query, and export logic for TimelineRecorder. Everything that
// talks to the Simulation is inline in timeline.hpp; this file is sim-free so
// switchml_common never links against switchml_sim.
#include "common/timeline.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace switchml {

namespace {

// Sorts (name, sampler) pairs by name so the sidecar's column order is
// independent of component registration order.
template <typename SamplerT>
void capture_sorted(const std::vector<std::pair<std::string, SamplerT>>& src,
                    std::vector<std::string>& names, std::vector<SamplerT>& samplers) {
  std::vector<std::size_t> order(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&src](std::size_t a, std::size_t b) { return src[a].first < src[b].first; });
  names.reserve(src.size());
  samplers.reserve(src.size());
  for (std::size_t i : order) {
    names.push_back(src[i].first);
    samplers.push_back(src[i].second);
  }
}

void format_rate(std::ostringstream& out, double rate) {
  // Fixed formatting keeps sidecars bit-identical across platforms for the
  // integer-valued rates the ns-resolution clock produces.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", rate);
  out << buf;
}

} // namespace

TimelineRecorder::TimelineRecorder(sim::Simulation& sim, const MetricsRegistry& registry,
                                   Config config)
    : sim_(sim), config_(config) {
  if (config_.period <= 0)
    throw std::invalid_argument("TimelineRecorder: period must be positive");
  if (config_.max_samples < 2)
    throw std::invalid_argument("TimelineRecorder: max_samples must be at least 2");
  capture_sorted(registry.counters(), counter_names_, counter_samplers_);
  capture_sorted(registry.gauges(), gauge_names_, gauge_samplers_);
  capture_sorted(registry.histograms(), hist_names_, hist_sources_);
  // Seed the previous-counts baseline so the first interval's delta covers
  // exactly the samples recorded after construction.
  hist_prev_.reserve(hist_sources_.size());
  for (const Histogram* h : hist_sources_) hist_prev_.push_back(h->counts());
}

TimelineRecorder::TimelineRecorder(sim::Simulation& sim, const MetricsRegistry& registry)
    : TimelineRecorder(sim, registry, Config()) {}

void TimelineRecorder::sample_now(Time t) {
  if (samples_.size() >= config_.max_samples) {
    samples_.pop_front();
    ++dropped_;
  }
  Sample s;
  s.t = t;
  s.counters.reserve(counter_samplers_.size());
  for (const auto& sample : counter_samplers_) s.counters.push_back(sample());
  s.gauges.reserve(gauge_samplers_.size());
  for (const auto& sample : gauge_samplers_) s.gauges.push_back(sample());
  s.hists.reserve(hist_sources_.size());
  for (std::size_t i = 0; i < hist_sources_.size(); ++i) {
    const std::vector<std::uint64_t>& cur = hist_sources_[i]->counts();
    std::vector<std::uint64_t>& prev = hist_prev_[i];
    hist_scratch_.resize(cur.size());
    for (std::size_t b = 0; b < cur.size(); ++b) hist_scratch_[b] = cur[b] - prev[b];
    s.hists.push_back(hist_sources_[i]->quantiles_of(hist_scratch_));
    prev = cur; // becomes the baseline of the next interval
  }
  samples_.push_back(std::move(s));
}

std::vector<Time> TimelineRecorder::times() const {
  std::vector<Time> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.t);
  return out;
}

std::vector<std::uint64_t> TimelineRecorder::deltas(std::string_view counter) const {
  auto it = std::find(counter_names_.begin(), counter_names_.end(), counter);
  if (it == counter_names_.end())
    throw std::out_of_range("TimelineRecorder: no counter named '" + std::string(counter) + "'");
  const std::size_t idx = static_cast<std::size_t>(it - counter_names_.begin());
  std::vector<std::uint64_t> out;
  if (samples_.size() < 2) return out;
  out.reserve(samples_.size() - 1);
  for (std::size_t i = 1; i < samples_.size(); ++i)
    out.push_back(samples_[i].counters[idx] - samples_[i - 1].counters[idx]);
  return out;
}

std::vector<double> TimelineRecorder::rate_per_s(std::string_view counter) const {
  std::vector<std::uint64_t> d = deltas(counter);
  std::vector<double> out;
  out.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    const Time dt = samples_[i + 1].t - samples_[i].t;
    out.push_back(dt > 0 ? static_cast<double>(d[i]) / to_sec(dt) : 0.0);
  }
  return out;
}

std::vector<std::int64_t> TimelineRecorder::levels(std::string_view gauge) const {
  auto it = std::find(gauge_names_.begin(), gauge_names_.end(), gauge);
  if (it == gauge_names_.end())
    throw std::out_of_range("TimelineRecorder: no gauge named '" + std::string(gauge) + "'");
  const std::size_t idx = static_cast<std::size_t>(it - gauge_names_.begin());
  std::vector<std::int64_t> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.gauges[idx]);
  return out;
}

std::vector<Histogram::Quantiles> TimelineRecorder::interval_quantiles(
    std::string_view histogram) const {
  auto it = std::find(hist_names_.begin(), hist_names_.end(), histogram);
  if (it == hist_names_.end())
    throw std::out_of_range("TimelineRecorder: no histogram named '" + std::string(histogram) +
                            "'");
  const std::size_t idx = static_cast<std::size_t>(it - hist_names_.begin());
  std::vector<Histogram::Quantiles> out;
  if (samples_.size() < 2) return out;
  out.reserve(samples_.size() - 1);
  // The quantiles stored with sample i describe the interval ending at i;
  // the baseline sample's entry (pre-start activity) is skipped, mirroring
  // deltas().
  for (std::size_t i = 1; i < samples_.size(); ++i) out.push_back(samples_[i].hists[idx]);
  return out;
}

std::string TimelineRecorder::jsonl() const {
  std::ostringstream out;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const Sample& prev = samples_[i - 1];
    const Sample& cur = samples_[i];
    const Time dt = cur.t - prev.t;
    out << "{\"t_ns\":" << cur.t << ",\"dt_ns\":" << dt << ",\"rates\":{";
    for (std::size_t c = 0; c < counter_names_.size(); ++c) {
      if (c != 0) out << ',';
      out << json_quote(counter_names_[c]) << ':';
      const std::uint64_t delta = cur.counters[c] - prev.counters[c];
      format_rate(out, dt > 0 ? static_cast<double>(delta) / to_sec(dt) : 0.0);
    }
    out << "},\"gauges\":{";
    for (std::size_t g = 0; g < gauge_names_.size(); ++g) {
      if (g != 0) out << ',';
      out << json_quote(gauge_names_[g]) << ':' << cur.gauges[g];
    }
    out << '}';
    if (!hist_names_.empty()) {
      out << ",\"hist\":{";
      for (std::size_t h = 0; h < hist_names_.size(); ++h) {
        if (h != 0) out << ',';
        const Histogram::Quantiles& q = cur.hists[h];
        out << json_quote(hist_names_[h]) << ":{\"n\":" << q.count << ",\"p50\":" << q.p50
            << ",\"p90\":" << q.p90 << ",\"p99\":" << q.p99 << ",\"p999\":" << q.p999 << '}';
      }
      out << '}';
    }
    out << "}\n";
  }
  if (dropped_ > 0) out << "{\"dropped_samples\":" << dropped_ << "}\n";
  return out.str();
}

std::string TimelineRecorder::csv() const {
  std::ostringstream out;
  out << "t_ns,dt_ns";
  for (const std::string& name : counter_names_) out << ',' << name << ".rate";
  for (const std::string& name : gauge_names_) out << ',' << name;
  for (const std::string& name : hist_names_)
    out << ',' << name << ".n," << name << ".p50," << name << ".p90," << name << ".p99," << name
        << ".p999";
  out << '\n';
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const Sample& prev = samples_[i - 1];
    const Sample& cur = samples_[i];
    const Time dt = cur.t - prev.t;
    out << cur.t << ',' << dt;
    for (std::size_t c = 0; c < counter_names_.size(); ++c) {
      out << ',';
      const std::uint64_t delta = cur.counters[c] - prev.counters[c];
      format_rate(out, dt > 0 ? static_cast<double>(delta) / to_sec(dt) : 0.0);
    }
    for (std::size_t g = 0; g < gauge_names_.size(); ++g) out << ',' << cur.gauges[g];
    for (std::size_t h = 0; h < hist_names_.size(); ++h) {
      const Histogram::Quantiles& q = cur.hists[h];
      out << ',' << q.count << ',' << q.p50 << ',' << q.p90 << ',' << q.p99 << ',' << q.p999;
    }
    out << '\n';
  }
  return out.str();
}

void TimelineRecorder::write(const std::string& path, Format format) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("TimelineRecorder: cannot open '" + path + "' for writing");
  out << (format == Format::kJsonl ? jsonl() : csv());
}

} // namespace switchml
