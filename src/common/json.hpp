// Minimal dependency-free JSON: a strict RFC 8259 parser and a round-trip
// emitter, sized for scenario files and bench reports (kilobytes, not
// gigabytes).
//
// Design constraints, in order:
//   * Strict. No comments, no trailing commas, no NaN/Inf, no unpaired
//     surrogates, exactly one top-level value. A scenario file that parses
//     here parses everywhere.
//   * Diagnosable. Every parse error carries the 1-based line and column of
//     the offending byte; the scenario loader then prefixes the JSON path.
//   * Deterministic. Objects preserve insertion order (no hashing), duplicate
//     keys are a parse error (silent last-wins would make a fuzzed scenario
//     differ from its re-emitted form), and `dump()` of a parsed value
//     re-parses to an equal value — the json_test fuzz loop holds
//     parse(dump(v)) == v for 2000 random documents.
//   * Bounded. Nesting depth is capped (default 64) so a "[[[[..." depth bomb
//     fails with an error instead of a stack overflow.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace switchml::json {

class Value;

enum class Kind : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

[[nodiscard]] const char* to_string(Kind k);

using Array = std::vector<Value>;
// Insertion-ordered; parse rejects duplicate keys so lookup is unambiguous.
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
public:
  Value() = default; // null
  Value(std::nullptr_t) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(std::int64_t i) : kind_(Kind::Int), int_(i) {}
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}
  Value(double d) : kind_(Kind::Double), double_(d) {}
  Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Value(const char* s) : Value(std::string(s)) {}
  Value(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
  Value(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_int() const { return kind_ == Kind::Int; }
  [[nodiscard]] bool is_double() const { return kind_ == Kind::Double; }
  // Any JSON number: an integer literal or a double literal.
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  // Checked accessors: throw std::runtime_error naming expected vs actual
  // kind. Callers wanting path-qualified messages (the scenario loader) catch
  // and re-throw with their own context.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;      // Int only (doubles don't narrow)
  [[nodiscard]] double as_double() const;          // Int or Double
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  // Object lookup; null when `key` is absent or *this is not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  // Appends to an object under construction (no duplicate check; the emitter
  // is trusted, the parser is not).
  void set(std::string key, Value v);

  [[nodiscard]] bool operator==(const Value& rhs) const;

  // Compact (single-line) serialization; `pretty` indents with two spaces.
  // Doubles emit the shortest decimal form that round-trips bit-exactly.
  [[nodiscard]] std::string dump(bool pretty = false) const;

private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

struct ParseError : std::runtime_error {
  // what(): "[file: ]line L, col C: message"
  ParseError(int line, int column, const std::string& message, const std::string& file = "");
  int line;   // 1-based
  int column; // 1-based, in bytes
};

// Parses exactly one JSON document (trailing whitespace allowed, anything
// else is an error). Throws ParseError.
[[nodiscard]] Value parse(std::string_view text, int max_depth = 64);

// Reads and parses a whole file; throws std::runtime_error (unreadable file)
// or ParseError with the message prefixed by `path`.
[[nodiscard]] Value parse_file(const std::string& path, int max_depth = 64);

} // namespace switchml::json
