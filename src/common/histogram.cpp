#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace switchml {

Histogram::Histogram(Config config) : config_(config) {
  if (config_.precision_bits < 1 || config_.precision_bits > 14)
    throw std::invalid_argument("Histogram: precision_bits must be in [1, 14]");
  if (config_.max_value < 1)
    throw std::invalid_argument("Histogram: max_value must be positive");
  sub_bucket_count_ = 1ULL << config_.precision_bits;
  sub_bucket_half_ = sub_bucket_count_ >> 1;
  // Bucket 0 covers [0, 2^p) at unit resolution; each further bucket b
  // covers [2^(p+b-1), 2^(p+b)) at 2^b resolution. Count octave buckets
  // until max_value is representable.
  std::size_t buckets = 1;
  std::uint64_t covered = sub_bucket_count_ - 1;
  while (covered < static_cast<std::uint64_t>(config_.max_value)) {
    covered = covered * 2 + 1;
    ++buckets;
  }
  // (buckets + 1) * sub_half slots cover the value range (bucket 0 uses a
  // full 2^p, every later bucket the upper half); +1 for the overflow slot.
  counts_.assign((buckets + 1) * static_cast<std::size_t>(sub_bucket_half_) + 1, 0);
  min_ = std::numeric_limits<std::int64_t>::max();
}

std::int64_t Histogram::value_at_index(std::size_t idx) const {
  if (idx + 1 >= counts_.size()) return config_.max_value;
  const int p = config_.precision_bits;
  int bucket = static_cast<int>(idx >> (p - 1)) - 1;
  std::uint64_t sub = (idx & (sub_bucket_half_ - 1)) + sub_bucket_half_;
  if (bucket < 0) { // indices below 2^p live in bucket 0 at unit resolution
    bucket = 0;
    sub = idx;
  }
  const std::uint64_t lowest = sub << bucket;
  const std::uint64_t highest = lowest + ((1ULL << bucket) - 1);
  const auto capped = static_cast<std::int64_t>(highest);
  return capped > config_.max_value ? config_.max_value : capped;
}

std::int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i + 1 < counts_.size(); ++i) {
    cumulative += counts_[i];
    // A bucket's upper bound can exceed the largest sample actually recorded
    // into it; clamping to the exact max keeps percentile(p) <= max().
    if (cumulative >= rank) return std::min(value_at_index(i), max());
  }
  return max(); // rank falls in the overflow bucket; max() is exact
}

Histogram::Quantiles Histogram::quantiles_of(const std::vector<std::uint64_t>& counts) const {
  if (counts.size() != counts_.size())
    throw std::invalid_argument("Histogram::quantiles_of: bucket count mismatch");
  Quantiles q;
  for (std::uint64_t c : counts) q.count += c;
  if (q.count == 0) return q;
  const double total = static_cast<double>(q.count);
  struct Want {
    std::uint64_t rank;
    std::int64_t* out;
  };
  auto rank_of = [&](double pct) {
    auto r = static_cast<std::uint64_t>(std::ceil(pct / 100.0 * total));
    return r < 1 ? std::uint64_t{1} : (r > q.count ? q.count : r);
  };
  Want wants[] = {{rank_of(50.0), &q.p50},
                  {rank_of(90.0), &q.p90},
                  {rank_of(99.0), &q.p99},
                  {rank_of(99.9), &q.p999}};
  std::size_t next = 0;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size() && next < 4; ++i) {
    cumulative += counts[i];
    while (next < 4 && cumulative >= wants[next].rank) {
      *wants[next].out = value_at_index(i);
      ++next;
    }
  }
  return q;
}

void Histogram::merge(const Histogram& other) {
  if (other.config_.precision_bits != config_.precision_bits ||
      other.config_.max_value != config_.max_value)
    throw std::invalid_argument("Histogram::merge: layout mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ != 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void Histogram::reset() {
  counts_.assign(counts_.size(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::int64_t>::max();
  max_ = 0;
}

std::string Histogram::str() const {
  if (count_ == 0) return "(no samples)";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%lld [%lld, %lld] p99=%lld (n=%llu)",
                static_cast<long long>(percentile(50.0)), static_cast<long long>(min()),
                static_cast<long long>(max()), static_cast<long long>(percentile(99.0)),
                static_cast<unsigned long long>(count_));
  return buf;
}

} // namespace switchml
