#include "common/tracing.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/log.hpp"
#include "common/metrics.hpp"

namespace switchml::trace {

namespace {

TraceSink*& ambient_sink() {
  thread_local TraceSink* current = nullptr;
  return current;
}

constexpr const char* kCategoryNames[kCategoryCount] = {"switch", "worker", "link", "transport",
                                                        "fault",  "flow"};

// Index of the lowest set bit; events carry exactly one category bit.
int cat_index(unsigned cat) {
  for (int i = 0; i < static_cast<int>(kCategoryCount); ++i)
    if (cat & (1u << i)) return i;
  return 0;
}

} // namespace

unsigned parse_mask(std::string_view names) {
  unsigned mask = 0;
  std::size_t pos = 0;
  while (pos <= names.size()) {
    const std::size_t comma = names.find(',', pos);
    const std::string_view tok =
        names.substr(pos, comma == std::string_view::npos ? names.size() - pos : comma - pos);
    pos = comma == std::string_view::npos ? names.size() + 1 : comma + 1;
    if (tok.empty()) continue;
    if (tok == "all") {
      mask |= kCatAll;
      continue;
    }
    bool found = false;
    for (unsigned i = 0; i < kCategoryCount; ++i) {
      if (tok == kCategoryNames[i]) {
        mask |= 1u << i;
        found = true;
        break;
      }
    }
    if (!found)
      throw std::invalid_argument("unknown trace category '" + std::string(tok) +
                                  "' (expected switch, worker, link, transport, fault, flow, "
                                  "or all)");
  }
  return mask;
}

const char* category_name(unsigned cat) { return kCategoryNames[cat_index(cat)]; }

TraceSink::TraceSink(std::size_t capacity, unsigned mask) : mask_(mask), capacity_(capacity) {
  events_.reserve(capacity_);
}

void TraceSink::record(unsigned cat, Time ts, std::uint32_t node, const char* name, Arg a0,
                       Arg a1, Arg a2) {
  if (events_.size() >= capacity_) {
    ++drops_[cat_index(cat)];
    return;
  }
  events_.push_back(Event{ts, node, cat, name, a0, a1, a2, 0, FlowPhase::kNone});
}

void TraceSink::record_flow(unsigned cat, Time ts, std::uint32_t node, const char* name,
                            std::uint64_t flow_id, FlowPhase phase) {
  if (events_.size() >= capacity_) {
    ++drops_[cat_index(cat)];
    return;
  }
  events_.push_back(Event{ts, node, cat, name, {}, {}, {}, flow_id, phase});
}

void TraceSink::register_actor(std::uint32_t id, std::string name) {
  for (auto& [aid, aname] : actors_) {
    if (aid == id) {
      aname = std::move(name);
      return;
    }
  }
  actors_.emplace_back(id, std::move(name));
}

std::uint64_t TraceSink::drops(unsigned cat) const { return drops_[cat_index(cat)]; }

std::uint64_t TraceSink::total_drops() const {
  std::uint64_t total = 0;
  for (std::uint64_t d : drops_) total += d;
  return total;
}

std::string TraceSink::chrome_json() const {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  // thread_name metadata rows first so viewers label every tid.
  for (const auto& [id, name] : actors_) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << id
        << ",\"args\":{\"name\":" << json_quote(name) << "}}";
  }
  char ts_buf[32];
  for (const Event& e : events_) {
    if (!first) out << ',';
    first = false;
    // Chrome trace timestamps are microseconds; keep ns resolution as a
    // fractional part.
    std::snprintf(ts_buf, sizeof(ts_buf), "%.3f", static_cast<double>(e.ts) / 1e3);
    if (e.flow != FlowPhase::kNone) {
      // Flow events bind by (cat, name, id) and render as arrows between the
      // actors they touch; "bp":"e" attaches the terminating step to the
      // enclosing slice the way Perfetto expects.
      const char ph = e.flow == FlowPhase::kStart ? 's' : e.flow == FlowPhase::kStep ? 't' : 'f';
      out << "{\"name\":" << json_quote(e.name) << ",\"ph\":\"" << ph
          << "\",\"id\":" << e.flow_id << ",\"pid\":1,\"tid\":" << e.node << ",\"ts\":" << ts_buf
          << ",\"cat\":\"" << kCategoryNames[cat_index(e.cat)] << '"';
      if (ph == 'f') out << ",\"bp\":\"e\"";
      out << "}";
      continue;
    }
    out << "{\"name\":" << json_quote(e.name) << ",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
        << e.node << ",\"ts\":" << ts_buf << ",\"cat\":\""
        << kCategoryNames[cat_index(e.cat)] << "\",\"args\":{";
    bool first_arg = true;
    for (const Arg* a : {&e.a0, &e.a1, &e.a2}) {
      if (a->key == nullptr) continue;
      if (!first_arg) out << ',';
      first_arg = false;
      out << json_quote(a->key) << ':' << a->value;
    }
    out << "}}";
  }
  out << "],\"otherData\":{";
  for (unsigned i = 0; i < kCategoryCount; ++i) {
    if (i != 0) out << ',';
    out << "\"dropped_" << kCategoryNames[i] << "\":" << drops_[i];
  }
  out << "}}";
  if (total_drops() > 0 && log_level() <= LogLevel::Warn) {
    LogLine warn(LogLevel::Warn);
    warn << "TraceSink: exported trace is truncated — " << total_drops()
         << " event(s) dropped at capacity " << capacity_ << " (";
    for (unsigned i = 0, n = 0; i < kCategoryCount; ++i) {
      if (drops_[i] == 0) continue;
      if (n++ != 0) warn << ", ";
      warn << kCategoryNames[i] << ": " << drops_[i];
    }
    warn << "); raise the sink capacity or narrow the category mask";
  }
  return out.str();
}

void TraceSink::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("TraceSink: cannot open '" + path + "' for writing");
  out << chrome_json() << '\n';
}

TraceSink* TraceSink::current() { return ambient_sink(); }

TraceSink::Scope::Scope(TraceSink* sink) : prev_(ambient_sink()) { ambient_sink() = sink; }

TraceSink::Scope::~Scope() { ambient_sink() = prev_; }

} // namespace switchml::trace
