#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace switchml {

void Summary::add(double v) {
  samples_.push_back(v);
  sorted_ = false;
}

void Summary::add_all(const std::vector<double>& vs) {
  samples_.reserve(samples_.size() + vs.size());
  samples_.insert(samples_.end(), vs.begin(), vs.end());
  if (!vs.empty()) sorted_ = false;
}

void Summary::sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min on empty summary");
  sort();
  return samples_.front();
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max on empty summary");
  sort();
  return samples_.back();
}

double Summary::mean() const {
  if (samples_.empty()) throw std::logic_error("Summary::mean on empty summary");
  double s = 0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double Summary::median() const { return percentile(50.0); }

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("Summary::percentile on empty summary");
  sort();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::string Summary::str(int precision) const {
  if (samples_.empty()) return "(no samples)";
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << median() << " [" << min() << ", " << max() << "] (n=" << count() << ")";
  return os.str();
}

} // namespace switchml
