#include "common/int_telemetry.hpp"

#include <algorithm>
#include <cstring>

#include "common/metrics.hpp"
#include "common/tracing.hpp"

namespace switchml::inttel {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

} // namespace

bool append_record(std::vector<std::uint8_t>& stack, const IntHopRecord& rec) {
  if (stack.empty()) {
    stack.reserve(kShimBytes + kRecordBytes * kMaxHops);
    stack.push_back(kMagic);
    stack.push_back(kVersion);
    stack.push_back(0); // hop count
    stack.push_back(0); // flags
  }
  if (stack.size() < kShimBytes || stack[0] != kMagic || stack[1] != kVersion) return false;
  if (stack[2] >= kMaxHops) {
    stack[3] |= kShimFlagTruncated;
    return false;
  }
  put_u32(stack, rec.hop_id);
  put_u32(stack, rec.next_hop);
  put_u32(stack, rec.hop_latency_ns);
  put_u32(stack, rec.queue_bytes);
  put_u16(stack, rec.queue_pkts);
  put_u16(stack, rec.flags);
  put_u32(stack, rec.drops);
  put_u32(stack, rec.pool_occupancy);
  put_u16(stack, rec.fanin);
  put_u16(stack, rec.epoch);
  ++stack[2];
  return true;
}

ParsedStack parse_stack(const std::uint8_t* data, std::size_t size) {
  ParsedStack out;
  if (size < kShimBytes) return out;
  if (data[0] != kMagic || data[1] != kVersion) return out;
  const std::size_t hops = data[2];
  if (hops > kMaxHops) return out;
  if (size != kShimBytes + hops * kRecordBytes) return out;
  out.truncated = (data[3] & kShimFlagTruncated) != 0;
  out.hops.reserve(hops);
  const std::uint8_t* p = data + kShimBytes;
  for (std::size_t i = 0; i < hops; ++i, p += kRecordBytes) {
    IntHopRecord rec;
    rec.hop_id = get_u32(p);
    rec.next_hop = get_u32(p + 4);
    rec.hop_latency_ns = get_u32(p + 8);
    rec.queue_bytes = get_u32(p + 12);
    rec.queue_pkts = get_u16(p + 16);
    rec.flags = get_u16(p + 18);
    rec.drops = get_u32(p + 20);
    rec.pool_occupancy = get_u32(p + 24);
    rec.fanin = get_u16(p + 28);
    rec.epoch = get_u16(p + 30);
    out.hops.push_back(rec);
  }
  out.ok = true;
  return out;
}

// --- IntCollector ------------------------------------------------------------

IntCollector::IntCollector(std::string prefix) : prefix_(std::move(prefix)) {
  if (MetricsRegistry* reg = MetricsRegistry::current()) {
    reg->add_counter(prefix_ + "records_parsed", [this] { return records_parsed_; });
    reg->add_counter(prefix_ + "parse_errors", [this] { return parse_errors_; });
    reg->add_counter(prefix_ + "truncated_stacks", [this] { return truncated_stacks_; });
  }
}

void IntCollector::declare_hop(const HopKey& key, const std::string& name) {
  HopState& st = hops_[key];
  if (!st.name.empty()) return; // already declared (and registered)
  st.name = name;
  if (MetricsRegistry* reg = MetricsRegistry::current()) {
    const std::string base = prefix_ + name + ".";
    reg->add_histogram(base + "hop_latency_ns", &st.latency);
    // HopState lives in a node-based map: &st stays valid for the registry's
    // lifetime (the worker owns the collector, the fabric owns both).
    reg->add_gauge(base + "queue_bytes", [&st] { return st.queue_bytes; });
    reg->add_gauge(base + "queue_pkts", [&st] { return st.queue_pkts; });
    reg->add_counter(base + "drops", [&st] { return st.drops; });
  }
}

void IntCollector::observe(std::uint32_t worker_node, const std::vector<std::uint8_t>& stack,
                           Time now, std::int64_t rtt_ns) {
  if (stack.empty()) return;
  const ParsedStack parsed = parse_stack(stack);
  if (!parsed.ok) {
    ++parse_errors_;
    return;
  }
  if (parsed.truncated) ++truncated_stacks_;
  std::int64_t hop_sum = 0;
  for (const IntHopRecord& rec : parsed.hops) {
    ++records_parsed_;
    const HopKey key = key_of(rec);
    HopState& st = hops_[key];
    st.latency.record(rec.hop_latency_ns);
    st.queue_bytes = rec.queue_bytes;
    st.queue_pkts = rec.queue_pkts;
    if (rec.drops > st.drops) st.drops = rec.drops;
    ++st.samples;
    hop_sum += rec.hop_latency_ns;
    if (localizer_ != nullptr) localizer_->on_record(worker_node, key, rec, now);
  }
  if (localizer_ != nullptr && rtt_ns >= 0) {
    localizer_->on_residual(worker_node, rtt_ns - hop_sum, now);
  }
}

std::vector<IntCollector::HopStats> IntCollector::hop_stats() const {
  std::vector<HopStats> out;
  out.reserve(hops_.size());
  for (const auto& [key, st] : hops_) {
    HopStats s;
    s.key = key;
    s.name = st.name;
    s.samples = st.samples;
    const auto q = st.latency.quantiles();
    s.latency_p50 = q.p50;
    s.latency_p99 = q.p99;
    s.latency_mean = st.latency.mean();
    s.queue_bytes = st.queue_bytes;
    s.queue_pkts = st.queue_pkts;
    s.drops = st.drops;
    out.push_back(std::move(s));
  }
  return out;
}

// --- FaultLocalizer ----------------------------------------------------------

const char* FaultLocalizer::to_string(Verdict::Kind kind) {
  switch (kind) {
    case Verdict::Kind::kSlowLink: return "slow_link";
    case Verdict::Kind::kCongestedHop: return "congested_hop";
    case Verdict::Kind::kStraggler: return "straggler";
    case Verdict::Kind::kSwitchRestarted: return "switch_restarted";
  }
  return "?";
}

FaultLocalizer::FaultLocalizer() : FaultLocalizer(Config{}) {}

FaultLocalizer::FaultLocalizer(Config config, std::function<std::string(std::uint32_t)> name_of)
    : config_(config), name_of_(std::move(name_of)) {
  if (!name_of_) {
    name_of_ = [](std::uint32_t id) { return "node-" + std::to_string(id); };
  }
}

void FaultLocalizer::emit(Verdict::Kind kind, std::uint32_t a, std::uint32_t b,
                          std::uint64_t detail, Time at) {
  verdicts_.push_back(Verdict{kind, a, b, detail, at});
  ++counts_[static_cast<std::size_t>(kind)];
  trace::emit(trace::kCatFault, at, a, "int_verdict",
              {"kind", static_cast<std::int64_t>(kind)}, {"peer", static_cast<std::int64_t>(b)},
              {"detail", static_cast<std::int64_t>(detail)});
}

void FaultLocalizer::on_record(std::uint32_t observer, const HopKey& key, const IntHopRecord& rec,
                               Time now) {
  (void)observer;
  if (key.kind == HopKey::kSwitch) {
    std::uint16_t& last = switch_epochs_[rec.hop_id]; // baseline 0: a fresh dataplane
    if (rec.epoch > last) {
      emit(Verdict::Kind::kSwitchRestarted, rec.hop_id, 0, rec.epoch, now);
      last = rec.epoch;
    }
    return;
  }
  if (key.kind != HopKey::kLink) return; // L2 pipeline records carry no drop counter
  LinkState& s = links_[key];
  if (!s.init) {
    s.init = true;
    s.last_drops = rec.drops;
    s.last_seen = now;
    s.obs = 1;
    return;
  }
  const Time gap = now - s.last_seen;
  s.last_seen = now;
  ++s.obs;
  const std::uint64_t delta = rec.drops > s.last_drops ? rec.drops - s.last_drops : 0;
  s.last_drops = rec.drops;
  if (delta > 0) {
    if (s.obs > static_cast<std::uint64_t>(config_.hop_warmup)) {
      const double threshold =
          std::max(config_.gap_factor * s.gap_ewma, static_cast<double>(config_.gap_floor));
      const Verdict::Kind kind = static_cast<double>(gap) > threshold
                                     ? Verdict::Kind::kSlowLink
                                     : Verdict::Kind::kCongestedHop;
      const std::uint32_t a = std::min(key.hop_id, key.next_hop);
      const std::uint32_t b = std::max(key.hop_id, key.next_hop);
      // One drop verdict per undirected link: both directions (and both
      // classifications) dedup to the first that fired.
      if (drop_flagged_.insert(std::pair{a, b}).second) emit(kind, a, b, delta, now);
    }
  } else if (!s.gap_init) {
    s.gap_ewma = static_cast<double>(gap);
    s.gap_init = true;
  } else {
    s.gap_ewma += config_.gap_alpha * (static_cast<double>(gap) - s.gap_ewma);
  }
}

void FaultLocalizer::on_residual(std::uint32_t worker_node, std::int64_t residual_ns, Time now) {
  WorkerState& s = workers_[worker_node];
  ++s.samples;
  if (s.samples == 1) {
    s.ewma = static_cast<double>(residual_ns);
  } else {
    s.ewma += config_.residual_alpha * (static_cast<double>(residual_ns) - s.ewma);
  }
  if (s.flagged) return;
  if (s.samples < static_cast<std::uint64_t>(config_.residual_warmup)) return;
  std::vector<double> fleet;
  fleet.reserve(workers_.size());
  for (const auto& [id, ws] : workers_) {
    if (ws.samples >= static_cast<std::uint64_t>(config_.residual_warmup)) {
      fleet.push_back(ws.ewma);
    }
  }
  if (fleet.size() < config_.min_workers) return;
  std::nth_element(fleet.begin(), fleet.begin() + fleet.size() / 2, fleet.end());
  const double median = fleet[fleet.size() / 2];
  if (s.ewma > config_.residual_ratio * median + static_cast<double>(config_.residual_floor)) {
    if (++s.consecutive >= config_.residual_consecutive) {
      s.flagged = true;
      emit(Verdict::Kind::kStraggler, worker_node, 0, static_cast<std::uint64_t>(s.ewma), now);
    }
  } else {
    s.consecutive = 0;
  }
}

std::string FaultLocalizer::subject(const Verdict& v) const {
  switch (v.kind) {
    case Verdict::Kind::kSlowLink:
    case Verdict::Kind::kCongestedHop:
      return name_of_(v.a) + "<->" + name_of_(v.b);
    case Verdict::Kind::kStraggler:
    case Verdict::Kind::kSwitchRestarted:
      return name_of_(v.a);
  }
  return name_of_(v.a);
}

std::string FaultLocalizer::json() const {
  std::string out = "{\"verdicts\":[";
  bool first = true;
  for (const Verdict& v : verdicts_) {
    if (!first) out += ",";
    first = false;
    out += "{\"kind\":" + json_quote(to_string(v.kind));
    out += ",\"subject\":" + json_quote(subject(v));
    out += ",\"a\":" + std::to_string(v.a);
    out += ",\"b\":" + std::to_string(v.b);
    out += ",\"detail\":" + std::to_string(v.detail);
    out += ",\"at_ns\":" + std::to_string(v.at);
    out += "}";
  }
  out += "]}";
  return out;
}

} // namespace switchml::inttel
