// Time and bandwidth unit helpers shared across the simulator.
//
// All simulated time is kept in integer nanoseconds (sim::Time). These
// helpers make call sites read like the quantities they describe
// ("10_gbps", "usec(5)") instead of bare integer math.
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace switchml {

// Simulated time in nanoseconds.
using Time = std::int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000 * kNanosecond;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

constexpr Time nsec(std::int64_t n) { return n * kNanosecond; }
constexpr Time usec(std::int64_t n) { return n * kMicrosecond; }
constexpr Time msec(std::int64_t n) { return n * kMillisecond; }
constexpr Time sec(std::int64_t n) { return n * kSecond; }

constexpr double to_usec(Time t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double to_msec(Time t) { return static_cast<double>(t) / kMillisecond; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / kSecond; }

// Bandwidth in bits per second.
using BitsPerSecond = std::int64_t;

constexpr BitsPerSecond kGbps = 1'000'000'000;
constexpr BitsPerSecond gbps(std::int64_t n) { return n * kGbps; }

// Time to clock `bits` onto a link of rate `bps`, rounded up so that a
// nonzero transfer always takes nonzero simulated time. A non-positive rate
// is a modeling error, not an infinitely fast link: a dead link must be
// expressed as Link::set_down(), never as rate 0.
constexpr Time wire_time_bits(std::int64_t bits, BitsPerSecond bps) {
  if (bits <= 0) return 0;
  if (bps <= 0)
    throw std::invalid_argument("wire_time_bits: link rate must be positive (use set_down)");
  return (bits * kSecond + bps - 1) / bps;
}

// Time to serialize `bytes` onto a link of rate `bps`.
constexpr Time serialization_time(std::int64_t bytes, BitsPerSecond bps) {
  return wire_time_bits(bytes <= 0 ? 0 : bytes * 8, bps);
}

constexpr std::int64_t kKiB = 1024;
constexpr std::int64_t kMiB = 1024 * kKiB;

// "12.3 M", "456 k", "7.89 G" — decimal SI prefixes with three significant
// figures, for bench table output (pkts/s, elems/s, bytes). Values below
// 1000 print without a prefix or decimals ("512").
inline std::string format_si(double value) {
  static constexpr const char* kPrefixes[] = {"", " k", " M", " G", " T", " P"};
  const bool neg = value < 0;
  double v = neg ? -value : value;
  int idx = 0;
  while (v >= 1000.0 && idx < 5) {
    v /= 1000.0;
    ++idx;
  }
  char buf[48];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%s%.0f", neg ? "-" : "", v);
  } else {
    // Three significant figures: 1.23, 12.3, 123.
    const int decimals = v < 10.0 ? 2 : (v < 100.0 ? 1 : 0);
    std::snprintf(buf, sizeof(buf), "%s%.*f%s", neg ? "-" : "", decimals, v, kPrefixes[idx]);
  }
  return buf;
}

// Renders a sim::Time span in the most readable unit: "250 ns", "4.00 us",
// "56.3 ms", "1.25 s". Three significant figures like format_si.
inline std::string format_duration(Time t) {
  const bool neg = t < 0;
  const double ns = static_cast<double>(neg ? -t : t);
  struct Unit {
    double scale;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {
      {1.0, "ns"}, {1e3, "us"}, {1e6, "ms"}, {1e9, "s"}};
  int idx = 0;
  while (idx < 3 && ns >= kUnits[idx + 1].scale) ++idx;
  const double v = ns / kUnits[idx].scale;
  char buf[48];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%s%.0f ns", neg ? "-" : "", v);
  } else {
    const int decimals = v < 10.0 ? 2 : (v < 100.0 ? 1 : 0);
    std::snprintf(buf, sizeof(buf), "%s%.*f %s", neg ? "-" : "", decimals, v, kUnits[idx].suffix);
  }
  return buf;
}

} // namespace switchml
