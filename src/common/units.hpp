// Time and bandwidth unit helpers shared across the simulator.
//
// All simulated time is kept in integer nanoseconds (sim::Time). These
// helpers make call sites read like the quantities they describe
// ("10_gbps", "usec(5)") instead of bare integer math.
#pragma once

#include <cstdint>

namespace switchml {

// Simulated time in nanoseconds.
using Time = std::int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000 * kNanosecond;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

constexpr Time nsec(std::int64_t n) { return n * kNanosecond; }
constexpr Time usec(std::int64_t n) { return n * kMicrosecond; }
constexpr Time msec(std::int64_t n) { return n * kMillisecond; }
constexpr Time sec(std::int64_t n) { return n * kSecond; }

constexpr double to_usec(Time t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double to_msec(Time t) { return static_cast<double>(t) / kMillisecond; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / kSecond; }

// Bandwidth in bits per second.
using BitsPerSecond = std::int64_t;

constexpr BitsPerSecond kGbps = 1'000'000'000;
constexpr BitsPerSecond gbps(std::int64_t n) { return n * kGbps; }

// Time to serialize `bytes` onto a link of rate `bps`, rounded up so that a
// nonzero transfer always takes nonzero simulated time.
constexpr Time serialization_time(std::int64_t bytes, BitsPerSecond bps) {
  if (bytes <= 0 || bps <= 0) return 0;
  const std::int64_t bits = bytes * 8;
  return (bits * kSecond + bps - 1) / bps;
}

constexpr std::int64_t kKiB = 1024;
constexpr std::int64_t kMiB = 1024 * kKiB;

} // namespace switchml
