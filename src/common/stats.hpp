// Small descriptive-statistics helper used wherever the paper reports
// violin plots (median/min/max) or rate summaries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace switchml {

// Accumulates samples and produces the summary statistics the paper's
// violin plots show: median, min, max, plus mean and percentiles.
class Summary {
public:
  void add(double v);
  void add_all(const std::vector<double>& vs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double median() const;
  [[nodiscard]] double stddev() const;
  // Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  // "median [min, max] (n=...)" — the textual equivalent of a violin plot.
  [[nodiscard]] std::string str(int precision = 2) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

private:
  void sort() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

} // namespace switchml
