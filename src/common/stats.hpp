// Small descriptive-statistics helper used wherever the paper reports
// violin plots (median/min/max) or rate summaries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace switchml {

// Accumulates samples and produces the summary statistics the paper's
// violin plots show: median, min, max, plus mean and percentiles.
//
// Edge-case contract (so callers never need to pre-check):
//  * min/max/mean/median/percentile throw std::logic_error on an empty
//    summary — there is no honest number to return;
//  * str() and stddev() are total: str() of an empty summary is
//    "(no samples)", stddev() of fewer than two samples is 0.0;
//  * percentile() clamps p <= 0 to the minimum and p >= 100 to the maximum,
//    interpolating linearly in between.
// The sample buffer sorts lazily: the first order statistic after a batch of
// add()s pays one sort, and the sorted order is cached across mixed
// min/median/percentile calls until the next add().
class Summary {
public:
  void add(double v);
  // Bulk append; reserves once up front, so growing a summary from per-rep
  // vectors (the fig4 violin path) does not reallocate per element.
  void add_all(const std::vector<double>& vs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double median() const;
  // Sample standard deviation (n-1 denominator); 0.0 for fewer than two
  // samples.
  [[nodiscard]] double stddev() const;
  // Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  // "median [min, max] (n=...)" — the textual equivalent of a violin plot.
  // "(no samples)" when empty.
  [[nodiscard]] std::string str(int precision = 2) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

private:
  void sort() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

} // namespace switchml
