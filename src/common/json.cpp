#include "common/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace switchml::json {

const char* to_string(Kind k) {
  switch (k) {
  case Kind::Null: return "null";
  case Kind::Bool: return "bool";
  case Kind::Int: return "int";
  case Kind::Double: return "double";
  case Kind::String: return "string";
  case Kind::Array: return "array";
  case Kind::Object: return "object";
  }
  return "?";
}

namespace {
[[noreturn]] void kind_mismatch(const char* want, Kind got) {
  throw std::runtime_error(std::string("json: expected ") + want + ", got " + to_string(got));
}
} // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) kind_mismatch("bool", kind_);
  return bool_;
}

std::int64_t Value::as_int() const {
  if (kind_ != Kind::Int) kind_mismatch("int", kind_);
  return int_;
}

double Value::as_double() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ != Kind::Double) kind_mismatch("number", kind_);
  return double_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) kind_mismatch("string", kind_);
  return string_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::Array) kind_mismatch("array", kind_);
  return array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::Object) kind_mismatch("object", kind_);
  return object_;
}

Array& Value::as_array() {
  if (kind_ != Kind::Array) kind_mismatch("array", kind_);
  return array_;
}

Object& Value::as_object() {
  if (kind_ != Kind::Object) kind_mismatch("object", kind_);
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

void Value::set(std::string key, Value v) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) kind_mismatch("object", kind_);
  object_.emplace_back(std::move(key), std::move(v));
}

bool Value::operator==(const Value& rhs) const {
  if (kind_ != rhs.kind_) return false;
  switch (kind_) {
  case Kind::Null: return true;
  case Kind::Bool: return bool_ == rhs.bool_;
  case Kind::Int: return int_ == rhs.int_;
  // Bit comparison (0.0 == -0.0 would be true under ==, but dump() preserves
  // the sign, so round-trip equality wants bit equality; NaN never parses).
  case Kind::Double: return double_ == rhs.double_ && std::signbit(double_) == std::signbit(rhs.double_);
  case Kind::String: return string_ == rhs.string_;
  case Kind::Array: return array_ == rhs.array_;
  case Kind::Object: return object_ == rhs.object_;
  }
  return false;
}

// --- emitter -----------------------------------------------------------------

namespace {

void emit_string(const std::string& s, std::string& out) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\b': out += "\\b"; break;
    case '\f': out += "\\f"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (c < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += static_cast<char>(c);
      }
    }
  }
  out += '"';
}

void emit_double(double d, std::string& out) {
  if (!std::isfinite(d))
    throw std::runtime_error("json: NaN/Inf cannot be serialized (not valid JSON)");
  // Shortest decimal that round-trips: try increasing precision. %.17g always
  // suffices for IEEE-754 doubles.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out += buf;
  // Keep the number recognizably a double so parse(dump(x)) preserves kind.
  if (out.find_first_of(".eE", out.size() - std::strlen(buf)) == std::string::npos)
    out += ".0";
}

void emit(const Value& v, std::string& out, bool pretty, int indent) {
  const auto pad = [&](int n) {
    if (pretty) out.append(static_cast<std::size_t>(n) * 2, ' ');
  };
  switch (v.kind()) {
  case Kind::Null: out += "null"; break;
  case Kind::Bool: out += v.as_bool() ? "true" : "false"; break;
  case Kind::Int: out += std::to_string(v.as_int()); break;
  case Kind::Double: emit_double(v.as_double(), out); break;
  case Kind::String: emit_string(v.as_string(), out); break;
  case Kind::Array: {
    const Array& a = v.as_array();
    if (a.empty()) { out += "[]"; break; }
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i > 0) out += ',';
      if (pretty) out += '\n';
      pad(indent + 1);
      emit(a[i], out, pretty, indent + 1);
    }
    if (pretty) { out += '\n'; pad(indent); }
    out += ']';
    break;
  }
  case Kind::Object: {
    const Object& o = v.as_object();
    if (o.empty()) { out += "{}"; break; }
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i > 0) out += ',';
      if (pretty) out += '\n';
      pad(indent + 1);
      emit_string(o[i].first, out);
      out += pretty ? ": " : ":";
      emit(o[i].second, out, pretty, indent + 1);
    }
    if (pretty) { out += '\n'; pad(indent); }
    out += '}';
    break;
  }
  }
}

} // namespace

std::string Value::dump(bool pretty) const {
  std::string out;
  emit(*this, out, pretty, 0);
  if (pretty) out += '\n';
  return out;
}

// --- parser ------------------------------------------------------------------

ParseError::ParseError(int line_, int column_, const std::string& message, const std::string& file)
    : std::runtime_error((file.empty() ? "" : file + ": ") + "line " + std::to_string(line_) +
                         ", col " + std::to_string(column_) + ": " + message),
      line(line_), column(column_) {}

namespace {

class Parser {
public:
  Parser(std::string_view text, int max_depth, std::string file)
      : text_(text), file_(std::move(file)), max_depth_(max_depth) {}

  Value run() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after the JSON document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& why) const {
    // Recompute line/column from the byte offset: errors are rare, documents
    // are small, and this keeps the hot path free of position bookkeeping.
    int line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') { ++line; col = 1; }
      else ++col;
    }
    throw ParseError(line, col, why, file_);
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  char get() { return text_[pos_++]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c)
      fail(std::string("expected '") + c + "'" +
           (eof() ? " but the document ended" : std::string(", got '") + peek() + "'"));
    ++pos_;
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      fail("invalid literal (expected '" + std::string(word) + "')");
    pos_ += word.size();
  }

  Value parse_value() {
    if (eof()) fail("unexpected end of document (expected a value)");
    switch (peek()) {
    case 'n': expect_word("null"); return Value();
    case 't': expect_word("true"); return Value(true);
    case 'f': expect_word("false"); return Value(false);
    case '"': return Value(parse_string());
    case '[': return parse_array();
    case '{': return parse_object();
    default: return parse_number();
    }
  }

  Value parse_array() {
    if (++depth_ > max_depth_) fail("nesting deeper than " + std::to_string(max_depth_));
    expect('[');
    Array a;
    skip_ws();
    if (!eof() && peek() == ']') { ++pos_; --depth_; return Value(std::move(a)); }
    while (true) {
      skip_ws();
      a.push_back(parse_value());
      skip_ws();
      if (eof()) fail("unterminated array");
      const char c = get();
      if (c == ']') break;
      if (c != ',') { --pos_; fail("expected ',' or ']' in array"); }
    }
    --depth_;
    return Value(std::move(a));
  }

  Value parse_object() {
    if (++depth_ > max_depth_) fail("nesting deeper than " + std::to_string(max_depth_));
    expect('{');
    Object o;
    skip_ws();
    if (!eof() && peek() == '}') { ++pos_; --depth_; return Value(std::move(o)); }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected a '\"'-quoted object key");
      std::string key = parse_string();
      for (const auto& [k, unused] : o) {
        (void)unused;
        if (k == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      skip_ws();
      o.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (eof()) fail("unterminated object");
      const char c = get();
      if (c == '}') break;
      if (c != ',') { --pos_; fail("expected ',' or '}' in object"); }
    }
    --depth_;
    return Value(std::move(o));
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("unterminated \\u escape");
      const char c = get();
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else { --pos_; fail("invalid hex digit in \\u escape"); }
    }
    return code;
  }

  void append_utf8(unsigned cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(get());
      if (c == '"') return out;
      if (c < 0x20) { --pos_; fail("raw control character in string (use \\u escapes)"); }
      if (c != '\\') { out += static_cast<char>(c); continue; }
      if (eof()) fail("unterminated escape sequence");
      const char e = get();
      switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        unsigned cp = parse_hex4();
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          // High surrogate: the low half must follow immediately.
          if (text_.substr(pos_, 2) != "\\u") fail("unpaired surrogate in \\u escape");
          pos_ += 2;
          const unsigned lo = parse_hex4();
          if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate in \\u escape");
          cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
          fail("unpaired low surrogate in \\u escape");
        }
        append_utf8(cp, out);
        break;
      }
      default: --pos_; fail(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    // Leading zeros are forbidden: "0" is fine, "01" is not.
    if (peek() == '0') {
      ++pos_;
      if (!eof() && peek() >= '0' && peek() <= '9') fail("leading zero in number");
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool is_double = false;
    if (!eof() && peek() == '.') {
      is_double = true;
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("digit required after decimal point");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("digit required in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long i = std::strtoll(token.c_str(), &end, 10);
      if (errno != ERANGE && end == token.c_str() + token.size())
        return Value(static_cast<std::int64_t>(i));
      // Integer literal outside int64: keep the value as a double.
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), nullptr);
    if (errno == ERANGE && (d == HUGE_VAL || d == -HUGE_VAL))
      fail("number out of double range");
    return Value(d);
  }

  std::string_view text_;
  std::string file_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  const int max_depth_;
};

} // namespace

Value parse(std::string_view text, int max_depth) { return Parser(text, max_depth, "").run(); }

Value parse_file(const std::string& path, int max_depth) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(path + ": cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parser(buf.str(), max_depth, path).run();
}

} // namespace switchml::json
