#include "common/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace switchml {

namespace {

MetricsRegistry*& ambient_registry() {
  thread_local MetricsRegistry* current = nullptr;
  return current;
}

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void append_json_string(std::ostringstream& out, std::string_view s) {
  out << json_quote(s);
}

} // namespace

// Minimal JSON string escaping; metric names are ASCII identifiers plus
// separators, but link names can embed arbitrary node names.
std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void MetricsRegistry::check_unique(const std::string& name) const {
  for (const auto& [n, s] : counters_)
    if (n == name)
      throw std::invalid_argument("MetricsRegistry: duplicate series name '" + name + "'");
  for (const auto& [n, s] : gauges_)
    if (n == name)
      throw std::invalid_argument("MetricsRegistry: duplicate series name '" + name + "'");
  for (const auto& [n, s] : summaries_)
    if (n == name)
      throw std::invalid_argument("MetricsRegistry: duplicate series name '" + name + "'");
  for (const auto& [n, h] : histograms_)
    if (n == name)
      throw std::invalid_argument("MetricsRegistry: duplicate series name '" + name + "'");
}

void MetricsRegistry::add_counter(std::string name, Sampler sample) {
  check_unique(name);
  counters_.emplace_back(std::move(name), std::move(sample));
}

void MetricsRegistry::add_gauge(std::string name, GaugeSampler sample) {
  check_unique(name);
  gauges_.emplace_back(std::move(name), std::move(sample));
}

void MetricsRegistry::add_summary(std::string name, const Summary* summary) {
  check_unique(name);
  summaries_.emplace_back(std::move(name), summary);
}

void MetricsRegistry::add_histogram(std::string name, const Histogram* histogram) {
  check_unique(name);
  histograms_.emplace_back(std::move(name), histogram);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, sample] : counters_) snap.counters.emplace_back(name, sample());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, sample] : gauges_) snap.gauges.emplace_back(name, sample());
  snap.summaries.reserve(summaries_.size());
  for (const auto& [name, summary] : summaries_) {
    SummaryStats stats;
    stats.count = summary->count();
    if (!summary->empty()) {
      stats.min = summary->min();
      stats.median = summary->median();
      stats.max = summary->max();
      stats.mean = summary->mean();
    }
    snap.summaries.emplace_back(name, stats);
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramStats stats;
    stats.count = histogram->count();
    stats.overflow = histogram->overflow_count();
    if (!histogram->empty()) {
      stats.min = histogram->min();
      stats.max = histogram->max();
      stats.mean = histogram->mean();
      const Histogram::Quantiles q = histogram->quantiles();
      stats.p50 = q.p50;
      stats.p90 = q.p90;
      stats.p99 = q.p99;
      stats.p999 = q.p999;
    }
    snap.histograms.emplace_back(name, stats);
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.summaries.begin(), snap.summaries.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::uint64_t MetricsRegistry::Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  throw std::out_of_range("MetricsRegistry: no counter named '" + std::string(name) + "'");
}

bool MetricsRegistry::Snapshot::has_counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return true;
  return false;
}

std::int64_t MetricsRegistry::Snapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return v;
  throw std::out_of_range("MetricsRegistry: no gauge named '" + std::string(name) + "'");
}

bool MetricsRegistry::Snapshot::has_gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return true;
  return false;
}

const MetricsRegistry::HistogramStats& MetricsRegistry::Snapshot::histogram(
    std::string_view name) const {
  for (const auto& [n, v] : histograms)
    if (n == name) return v;
  throw std::out_of_range("MetricsRegistry: no histogram named '" + std::string(name) + "'");
}

bool MetricsRegistry::Snapshot::has_histogram(std::string_view name) const {
  for (const auto& [n, v] : histograms)
    if (n == name) return true;
  return false;
}

std::uint64_t MetricsRegistry::Snapshot::sum(std::string_view suffix) const {
  std::uint64_t total = 0;
  for (const auto& [n, v] : counters)
    if (ends_with(n, suffix)) total += v;
  return total;
}

std::string MetricsRegistry::Snapshot::json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, name);
    out << ':' << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, name);
    out << ':' << value;
  }
  out << "},\"summaries\":{";
  first = true;
  out << std::setprecision(10);
  for (const auto& [name, stats] : summaries) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, name);
    out << ":{\"count\":" << stats.count << ",\"min\":" << stats.min
        << ",\"median\":" << stats.median << ",\"max\":" << stats.max
        << ",\"mean\":" << stats.mean << '}';
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, stats] : histograms) {
    if (!first) out << ',';
    first = false;
    append_json_string(out, name);
    out << ":{\"count\":" << stats.count << ",\"min\":" << stats.min << ",\"max\":" << stats.max
        << ",\"mean\":" << stats.mean << ",\"p50\":" << stats.p50 << ",\"p90\":" << stats.p90
        << ",\"p99\":" << stats.p99 << ",\"p999\":" << stats.p999
        << ",\"overflow\":" << stats.overflow << '}';
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::Snapshot::table() const {
  std::size_t width = 0;
  for (const auto& [name, value] : counters) width = std::max(width, name.size());
  for (const auto& [name, value] : gauges) width = std::max(width, name.size());
  for (const auto& [name, stats] : summaries) width = std::max(width, name.size());
  for (const auto& [name, stats] : histograms) width = std::max(width, name.size());
  std::ostringstream out;
  for (const auto& [name, value] : counters)
    out << std::left << std::setw(static_cast<int>(width) + 2) << name << value << '\n';
  for (const auto& [name, value] : gauges)
    out << std::left << std::setw(static_cast<int>(width) + 2) << name << value << '\n';
  for (const auto& [name, stats] : summaries) {
    out << std::left << std::setw(static_cast<int>(width) + 2) << name << std::setprecision(4)
        << stats.median << " [" << stats.min << ", " << stats.max << "] (n=" << stats.count
        << ")\n";
  }
  for (const auto& [name, stats] : histograms) {
    out << std::left << std::setw(static_cast<int>(width) + 2) << name << stats.p50 << " ["
        << stats.min << ", " << stats.max << "] p99=" << stats.p99 << " (n=" << stats.count
        << ")\n";
  }
  return out.str();
}

MetricsRegistry* MetricsRegistry::current() { return ambient_registry(); }

MetricsRegistry::Scope::Scope(MetricsRegistry* registry) : prev_(ambient_registry()) {
  ambient_registry() = registry;
}

MetricsRegistry::Scope::~Scope() { ambient_registry() = prev_; }

} // namespace switchml
