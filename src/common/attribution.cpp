#include "common/attribution.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/metrics.hpp"

namespace switchml::attr {

namespace {

SpanLedger*& ambient_ledger() {
  thread_local SpanLedger* current = nullptr;
  return current;
}

constexpr const char* kComponentNames[kComponentCount] = {
    "host_tx",   "link_queue",   "wire",    "prop",     "switch_wait",
    "switch_ready", "host_rx", "rto_stall", "recovery", "fallback"};

} // namespace

const char* to_string(Component c) { return kComponentNames[static_cast<std::size_t>(c)]; }

SpanLedger::SpanLedger(std::size_t record_capacity) : record_capacity_(record_capacity) {
  records_.reserve(record_capacity_);
}

SpanLedger::NodeSlab& SpanLedger::slab(std::uint32_t node) {
  if (node >= nodes_.size()) nodes_.resize(node + 1);
  auto& p = nodes_[node];
  if (!p) p = std::make_unique<NodeSlab>();
  return *p;
}

SpanLedger::ChunkState* SpanLedger::find(std::uint32_t node, std::uint32_t slot) {
  if (node >= nodes_.size()) return nullptr;
  NodeSlab* n = nodes_[node].get();
  if (n == nullptr || slot >= n->slots.size()) return nullptr;
  ChunkState& s = n->slots[slot];
  return s.is_open ? &s : nullptr;
}

SpanLedger::SwitchSlab& SpanLedger::switch_slab(std::uint64_t key) {
  for (SwitchSlab& s : switches_)
    if (s.key == key) return s;
  switches_.push_back(SwitchSlab{key, {}});
  return switches_.back();
}

// Closes the segment the chunk has been in since `since` and enters `c`.
// `at` may be computed ahead of sim-time; a stale timestamp (before the
// segment start) contributes a zero-length segment so the partition of
// [start, end] stays exact.
void SpanLedger::advance(ChunkState& s, Component c, Time at) {
  if (at > s.since) {
    s.acc[static_cast<std::size_t>(s.cur)] += static_cast<std::uint64_t>(at - s.since);
    s.since = at;
  }
  s.cur = c;
}

void SpanLedger::open(std::uint32_t node, std::uint32_t slot, std::uint64_t off, Time at) {
  NodeSlab& n = slab(node);
  if (slot >= n.slots.size()) n.slots.resize(slot + 1);
  ChunkState& s = n.slots[slot];
  if (s.is_open) ++reopened_;
  s = ChunkState{};
  s.is_open = true;
  s.cur = Component::kHostTx;
  s.start = s.since = at;
  s.off = off;
}

void SpanLedger::transition(std::uint32_t node, std::uint32_t slot, Component c, Time at) {
  if (ChunkState* s = find(node, slot)) advance(*s, c, at);
}

void SpanLedger::transition_matching(std::uint32_t node, std::uint32_t slot, std::uint64_t off,
                                     Component c, Time at) {
  if (ChunkState* s = find(node, slot); s != nullptr && s->off == off) advance(*s, c, at);
}

void SpanLedger::finish(std::uint32_t node, NodeSlab& n, std::uint32_t slot, ChunkState& s,
                        Time at) {
  advance(s, s.cur, at); // close the tail segment; end = max(at, since)
  const Time end = s.since;
  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    n.totals[c] += s.acc[c];
    totals_[c] += s.acc[c];
    sum += s.acc[c];
  }
  const auto span = static_cast<std::uint64_t>(end - s.start);
  const std::uint64_t residual = sum > span ? sum - span : span - sum;
  if (residual > max_residual_) max_residual_ = residual;
  ++closed_;
  if (records_.size() < record_capacity_)
    records_.push_back(ChunkRecord{node, slot, s.off, s.start, end, s.acc});
  else
    ++record_drops_;
  s = ChunkState{};
}

void SpanLedger::close(std::uint32_t node, std::uint32_t slot, Time at) {
  if (node >= nodes_.size()) return;
  NodeSlab* n = nodes_[node].get();
  if (n == nullptr || slot >= n->slots.size()) return;
  ChunkState& s = n->slots[slot];
  if (s.is_open) finish(node, *n, slot, s, at);
}

void SpanLedger::transition_all(std::uint32_t node, Component c, Time at) {
  if (node >= nodes_.size()) return;
  NodeSlab* n = nodes_[node].get();
  if (n == nullptr) return;
  for (ChunkState& s : n->slots)
    if (s.is_open) advance(s, c, at);
}

void SpanLedger::close_all(std::uint32_t node, Time at) {
  if (node >= nodes_.size()) return;
  NodeSlab* n = nodes_[node].get();
  if (n == nullptr) return;
  for (std::uint32_t slot = 0; slot < n->slots.size(); ++slot) {
    ChunkState& s = n->slots[slot];
    if (s.is_open) finish(node, *n, slot, s, at);
  }
}

namespace {
// Slot indices are job-local (each job owns its own pool registers on a
// shared switch), so contributor lists key by (switch, job).
std::uint64_t switch_key(std::uint32_t switch_node, std::uint32_t job) {
  return (static_cast<std::uint64_t>(switch_node) << 8) | (job & 0xFFu);
}
} // namespace

void SpanLedger::contribute(std::uint32_t switch_node, std::uint32_t job, std::uint32_t ver,
                            std::uint32_t idx, std::uint32_t contributor, std::uint64_t off,
                            Time at) {
  SwitchSlab& sw = switch_slab(switch_key(switch_node, job));
  if (idx >= sw.slots.size()) sw.slots.resize(idx + 1);
  sw.slots[idx][ver & 1].push_back(contributor);
  transition_matching(contributor, idx, off, Component::kSwitchWait, at);
}

void SpanLedger::complete_slot(std::uint32_t switch_node, std::uint32_t job, std::uint32_t ver,
                               std::uint32_t idx, std::uint64_t off, Time at) {
  SwitchSlab& sw = switch_slab(switch_key(switch_node, job));
  if (idx >= sw.slots.size()) return;
  auto& list = sw.slots[idx][ver & 1];
  for (std::uint32_t node : list) transition_matching(node, idx, off, Component::kSwitchReady, at);
  list.clear();
}

void SpanLedger::sweep_switch(std::uint32_t switch_node, Component c, Time at) {
  // Every job's lists on this switch: the dataplane wipe is switch-wide.
  for (SwitchSlab& sw : switches_) {
    if ((sw.key >> 8) != switch_node) continue;
    for (std::uint32_t idx = 0; idx < sw.slots.size(); ++idx) {
      for (auto& list : sw.slots[idx]) {
        for (std::uint32_t node : list) transition(node, idx, c, at);
        list.clear();
      }
    }
  }
}

std::uint64_t SpanLedger::node_total(std::uint32_t node, Component c) const {
  if (node >= nodes_.size()) return 0;
  const NodeSlab* n = nodes_[node].get();
  return n == nullptr ? 0 : n->totals[static_cast<std::size_t>(c)];
}

std::uint64_t SpanLedger::total(Component c) const {
  return totals_[static_cast<std::size_t>(c)];
}

std::uint64_t SpanLedger::total_ns() const {
  std::uint64_t sum = 0;
  for (std::uint64_t t : totals_) sum += t;
  return sum;
}

std::string SpanLedger::jsonl() const {
  std::ostringstream out;
  for (const ChunkRecord& r : records_) {
    out << "{\"node\":" << r.node << ",\"slot\":" << r.slot << ",\"off\":" << r.off
        << ",\"start_ns\":" << r.start << ",\"end_ns\":" << r.end << ",\"ns\":{";
    for (std::size_t c = 0; c < kComponentCount; ++c) {
      if (c != 0) out << ',';
      out << '"' << kComponentNames[c] << "\":" << r.ns[c];
    }
    out << "}}\n";
  }
  if (record_drops_ > 0) out << "{\"records_dropped\":" << record_drops_ << "}\n";
  return out.str();
}

void SpanLedger::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("SpanLedger: cannot open '" + path + "' for writing");
  out << jsonl();
}

SpanLedger* SpanLedger::current() { return ambient_ledger(); }

SpanLedger::Scope::Scope(SpanLedger* ledger) : prev_(ambient_ledger()) {
  ambient_ledger() = ledger;
}

SpanLedger::Scope::~Scope() { ambient_ledger() = prev_; }

} // namespace switchml::attr
