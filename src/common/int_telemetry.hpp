// In-band network telemetry (INT) with online fault localization.
//
// Every observability tier so far (MetricsRegistry, TraceSink, Histogram,
// SpanLedger) is god's-eye simulator-side instrumentation: no modeled
// endpoint can read it. INT closes that gap the way a Tofino deployment
// would — each hop on the data path (link egress, L2 pipeline, aggregation
// switch) pushes a fixed-size record onto the SwitchML packet itself, and the
// *receiving worker* parses the stack it was handed. The fabric can then
// diagnose from inside the very faults the FaultInjector injects from
// outside: a per-worker IntCollector turns stacks into per-hop histograms and
// gauges, and a fabric-level FaultLocalizer runs EWMA-baseline + threshold
// detection over the stream to emit verdicts — slow_link(hop),
// congested_hop(hop), straggler(worker), switch_restarted(epoch).
//
// Wire format. A stack is a 4-byte shim followed by hop records:
//
//   shim:   [0] 0xA7 magic  [1] version  [2] hop count  [3] flags (bit0 =
//           truncated: a hop wanted to push but the stack was at kMaxHops)
//   record: 32 bytes little-endian, layout in IntHopRecord below.
//
// Records carry the egress direction's *cumulative drop counter*: a dropped
// packet carries no telemetry, so — exactly as in real INT deployments —
// losses are localized from the counter deltas seen on the packets that
// survive, not from the packets that died.
//
// Cost model, mirroring the other tiers:
//   1. Compiled out (-DSWITCHML_INT=0): every stamping point constant-folds
//      to nothing; Packet keeps an empty vector and a zero byte.
//   2. Compiled in, mode off (the default): one byte compare per hop.
//   3. Phantom mode (kModePhantom): records are stamped and parsed but add
//      zero wire bytes — telemetry is provably passive; every guarded metric
//      is bit-identical to a mode-off run.
//   4. On-wire mode (kModeOnWire): the stack is honestly charged to wire
//      size, NIC byte costs, and MTU/frame accounting.
//
// INT draws no random numbers and schedules no events in any mode; modes 1-3
// cannot perturb simulation behavior at all, and mode 4 only through the
// honest wire bytes.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"
#include "common/units.hpp"

namespace switchml::inttel {

// Compile-time kill switch. Building with -DSWITCHML_INT=0 removes every
// stamping/parsing point from the binary.
#ifndef SWITCHML_INT
#define SWITCHML_INT 1
#endif
inline constexpr bool kCompiledIn = SWITCHML_INT != 0;

// Packet::int_mode values (kept as a raw byte on the packet so net/ needs no
// enum include order).
inline constexpr std::uint8_t kModeOff = 0;
inline constexpr std::uint8_t kModePhantom = 1; // stamp + parse, zero wire bytes
inline constexpr std::uint8_t kModeOnWire = 2;  // stamp + parse, honest wire bytes

inline constexpr std::uint8_t kMagic = 0xA7;
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::uint32_t kShimBytes = 4;
inline constexpr std::uint32_t kRecordBytes = 32;
// INT hop limit, as in the INT spec: a stack never exceeds kMaxHops records;
// further hops set the shim's truncated flag instead of pushing.
inline constexpr std::uint32_t kMaxHops = 8;

inline constexpr std::uint8_t kShimFlagTruncated = 1u << 0;

// IntHopRecord.flags bits. A record is stamped by exactly one kind of hop.
inline constexpr std::uint16_t kHopFlagSwitch = 1u << 0; // aggregation switch record
inline constexpr std::uint16_t kHopFlagL2 = 1u << 1;     // plain L2 pipeline record

// One hop's telemetry. Fixed 32-byte little-endian wire layout:
//   u32 hop_id, u32 next_hop, u32 hop_latency_ns, u32 queue_bytes,
//   u16 queue_pkts, u16 flags, u32 drops, u32 pool_occupancy,
//   u16 fanin, u16 epoch
struct IntHopRecord {
  std::uint32_t hop_id = 0;         // egress node id (who stamped)
  std::uint32_t next_hop = 0;       // downstream peer node id (direction identity)
  std::uint32_t hop_latency_ns = 0; // ingress→egress latency at this hop (saturating)
  std::uint32_t queue_bytes = 0;    // egress queue depth at stamping time
  std::uint16_t queue_pkts = 0;     // ditto, in packets (saturating)
  std::uint16_t flags = 0;          // kHopFlag* bits
  std::uint32_t drops = 0;          // cumulative egress drops of this direction
  std::uint32_t pool_occupancy = 0; // switch only: slot phases in flight
  std::uint16_t fanin = 0;          // switch only: contributions in the slot
  std::uint16_t epoch = 0;          // switch only: dataplane epoch (mod 2^16)

  bool operator==(const IntHopRecord&) const = default;
};

// Appends `rec` to the encoded stack (creating the shim on first push).
// Returns false — and sets the shim's truncated flag — when the stack already
// holds kMaxHops records. A corrupt shim also returns false.
bool append_record(std::vector<std::uint8_t>& stack, const IntHopRecord& rec);

// Wire bytes the stack occupies in on-wire mode: shim + records, 0 if empty.
[[nodiscard]] inline std::uint32_t stack_wire_bytes(const std::vector<std::uint8_t>& stack) {
  return static_cast<std::uint32_t>(stack.size());
}

// Node id of the most recently pushed record; kNoHop when the stack holds no
// records. Lets a stamping site skip a hop that already stamped (the
// aggregation switch pushes its own record before L2 replication runs).
inline constexpr std::uint32_t kNoHop = 0xFFFFFFFFu;
[[nodiscard]] inline std::uint32_t last_hop_id(const std::vector<std::uint8_t>& stack) {
  if (stack.size() < kShimBytes + kRecordBytes) return kNoHop;
  const std::uint8_t* p = stack.data() + stack.size() - kRecordBytes;
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

struct ParsedStack {
  std::vector<IntHopRecord> hops;
  bool ok = false;        // magic/version/length all consistent
  bool truncated = false; // shim's truncated flag
};

// Decodes an encoded stack. Any inconsistency (bad magic/version, hop count
// not matching the byte length, trailing bytes) yields ok=false with no hops.
[[nodiscard]] ParsedStack parse_stack(const std::uint8_t* data, std::size_t size);
[[nodiscard]] inline ParsedStack parse_stack(const std::vector<std::uint8_t>& stack) {
  return parse_stack(stack.data(), stack.size());
}

// Identity of a hop as the collector keys it. A switch's own record and the
// link record of its egress port can share (hop_id, next_hop); `kind` keeps
// their series apart.
struct HopKey {
  enum Kind : std::uint8_t { kLink = 0, kSwitch = 1, kL2 = 2 };
  std::uint32_t hop_id = 0;
  std::uint32_t next_hop = 0;
  std::uint8_t kind = kLink;

  auto operator<=>(const HopKey&) const = default;
};

[[nodiscard]] inline HopKey key_of(const IntHopRecord& rec) {
  const std::uint8_t kind = (rec.flags & kHopFlagSwitch) ? HopKey::kSwitch
                            : (rec.flags & kHopFlagL2)   ? HopKey::kL2
                                                         : HopKey::kLink;
  return HopKey{rec.hop_id, rec.next_hop, kind};
}

class FaultLocalizer;

// Per-worker INT sink: parses received stacks into per-hop Histograms and
// gauges, and forwards every record (plus the host-residual latency) to the
// fabric's FaultLocalizer.
//
// Metric registration happens only for hops declared at construction time
// (declare_hop), into the ambient MetricsRegistry, under
// "<prefix><hop_name>." — so the registry never grows mid-run (the
// TimelineRecorder walks registration-order vectors every tick). Undeclared
// hops (deep-tree relays) still accumulate internally and still feed the
// localizer; they just publish no per-hop series.
class IntCollector {
public:
  // `prefix` is the metric namespace, e.g. "int.worker-0.". Registers the
  // collector's own counters into the ambient registry if one is installed.
  explicit IntCollector(std::string prefix);
  IntCollector(const IntCollector&) = delete;
  IntCollector& operator=(const IntCollector&) = delete;

  // Pre-declares a hop and registers its series ("<prefix><name>.hop_latency_ns"
  // histogram, ".queue_bytes"/".queue_pkts" gauges, ".drops" counter) in the
  // ambient MetricsRegistry. Call only at fabric build time.
  void declare_hop(const HopKey& key, const std::string& name);

  void set_localizer(FaultLocalizer* localizer) { localizer_ = localizer; }

  // Feeds one received stack. `rtt_ns` is the Karn-filtered round-trip sample
  // for the packet (-1 when the slot was retransmitted and no clean sample
  // exists); the collector derives the host residual rtt - sum(hop latencies)
  // — the time the packet spent outside any stamped hop, i.e. in the host/NIC
  // — and hands it to the localizer for straggler detection.
  void observe(std::uint32_t worker_node, const std::vector<std::uint8_t>& stack, Time now,
               std::int64_t rtt_ns);

  struct HopStats {
    HopKey key;
    std::string name; // declared name, or "" for discovered hops
    std::uint64_t samples = 0;
    std::int64_t latency_p50 = 0;
    std::int64_t latency_p99 = 0;
    double latency_mean = 0.0;
    std::int64_t queue_bytes = 0;
    std::int64_t queue_pkts = 0;
    std::uint64_t drops = 0; // latest cumulative counter seen
  };
  [[nodiscard]] std::vector<HopStats> hop_stats() const;

  [[nodiscard]] std::uint64_t records_parsed() const { return records_parsed_; }
  [[nodiscard]] std::uint64_t parse_errors() const { return parse_errors_; }
  [[nodiscard]] std::uint64_t truncated_stacks() const { return truncated_stacks_; }

private:
  struct HopState {
    std::string name;
    Histogram latency;
    std::int64_t queue_bytes = 0;
    std::int64_t queue_pkts = 0;
    std::uint64_t drops = 0;
    std::uint64_t samples = 0;
  };

  std::string prefix_;
  FaultLocalizer* localizer_ = nullptr;
  std::map<HopKey, HopState> hops_; // node-based: sampler closures keep stable pointers
  std::uint64_t records_parsed_ = 0;
  std::uint64_t parse_errors_ = 0;
  std::uint64_t truncated_stacks_ = 0;
};

// Online fault localization over the INT record stream. One instance per
// fabric, fed by every worker's collector. Detection is pure observation —
// verdicts are emitted as kCatFault trace events ("int_verdict"), exposed as
// counters, and exported as a JSON report block; nothing feeds back into the
// simulation.
//
// Rules (each fires at most once per (kind, subject)):
//   * switch_restarted(epoch): a switch record's epoch exceeds the last seen
//     value for that switch (baseline 0: a fresh dataplane).
//   * slow_link(hop) vs congested_hop(hop): the cumulative drop counter of a
//     link direction advanced. If the observation arrived after a silence gap
//     ≫ the hop's EWMA inter-observation gap, traffic was cut off — the link
//     flapped/went down (slow_link). If records kept flowing while drops
//     accrued, the hop is shedding load under pressure (congested_hop, e.g. a
//     Gilbert-Elliott burst or queue overflow). Subjects are canonicalized to
//     the undirected link so both directions dedup to one verdict.
//   * straggler(worker): the worker's EWMA host residual (rtt minus the sum
//     of stamped hop latencies — NIC/host time by construction) exceeds
//     ratio × the fleet median + floor for `residual_consecutive` samples.
class FaultLocalizer {
public:
  struct Config {
    // Drop rule: observations of a hop before verdicts may fire, EWMA weight
    // for inter-observation gaps, and the silence-gap classifier threshold
    // max(gap_factor × ewma, gap_floor).
    int hop_warmup = 8;
    double gap_alpha = 0.125;
    double gap_factor = 8.0;
    Time gap_floor = 50'000; // 50 us
    // Straggler rule: per-worker EWMA residual vs the fleet median.
    int residual_warmup = 16;
    double residual_alpha = 0.125;
    double residual_ratio = 3.0;
    std::int64_t residual_floor = 20'000; // 20 us
    int residual_consecutive = 4;
    std::size_t min_workers = 3; // fleet size needed for a meaningful median
  };

  struct Verdict {
    enum class Kind : std::uint8_t {
      kSlowLink = 0,
      kCongestedHop,
      kStraggler,
      kSwitchRestarted,
    };
    Kind kind;
    std::uint32_t a = 0;      // link endpoint (min) / worker / switch node id
    std::uint32_t b = 0;      // link endpoint (max); 0 otherwise
    std::uint64_t detail = 0; // drop delta / residual ns / new epoch
    Time at = 0;              // sim time the verdict fired
  };
  static constexpr std::size_t kKindCount = 4;
  [[nodiscard]] static const char* to_string(Verdict::Kind kind);

  // `name_of` renders node ids in subjects/JSON ("worker-0", "switch"); an
  // empty function prints "node-<id>". The default constructor uses the
  // default Config (defined out-of-line: GCC parses nested-class NSDMIs too
  // late for an in-class `Config{}` default argument).
  FaultLocalizer();
  explicit FaultLocalizer(Config config, std::function<std::string(std::uint32_t)> name_of = {});
  FaultLocalizer(const FaultLocalizer&) = delete;
  FaultLocalizer& operator=(const FaultLocalizer&) = delete;

  // Collector feed.
  void on_record(std::uint32_t observer, const HopKey& key, const IntHopRecord& rec, Time now);
  void on_residual(std::uint32_t worker_node, std::int64_t residual_ns, Time now);

  [[nodiscard]] const std::vector<Verdict>& verdicts() const { return verdicts_; }
  [[nodiscard]] std::uint64_t count(Verdict::Kind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }

  // Human-readable subject, e.g. "worker-0<->switch" (links), "worker-3"
  // (stragglers), "switch" (restarts).
  [[nodiscard]] std::string subject(const Verdict& v) const;

  // {"verdicts":[{"kind":"slow_link","subject":"...","a":..,"b":..,
  //   "detail":..,"at_ns":..}, ...]}
  [[nodiscard]] std::string json() const;

private:
  struct LinkState {
    bool init = false;
    std::uint64_t last_drops = 0;
    Time last_seen = 0;
    double gap_ewma = 0.0;
    bool gap_init = false;
    std::uint64_t obs = 0;
  };
  struct WorkerState {
    double ewma = 0.0;
    std::uint64_t samples = 0;
    int consecutive = 0;
    bool flagged = false;
  };

  void emit(Verdict::Kind kind, std::uint32_t a, std::uint32_t b, std::uint64_t detail, Time at);

  Config config_;
  std::function<std::string(std::uint32_t)> name_of_;
  std::map<HopKey, LinkState> links_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> drop_flagged_;
  std::map<std::uint32_t, std::uint16_t> switch_epochs_;
  std::map<std::uint32_t, WorkerState> workers_;
  std::vector<Verdict> verdicts_;
  std::array<std::uint64_t, kKindCount> counts_{};
};

} // namespace switchml::inttel
