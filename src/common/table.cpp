#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace switchml {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (std::size_t w : widths) rule.emplace_back(std::string(w, '-'));
  emit(rule);
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

} // namespace switchml
