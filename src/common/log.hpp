// Tiny leveled logger. Disabled below the configured level at runtime;
// default level is Warn so simulations stay quiet unless asked.
#pragma once

#include <sstream>
#include <string>

namespace switchml {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

// Stream-style log statement: LOG(Info) << "x=" << x;
class LogLine {
public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

private:
  LogLevel level_;
  std::ostringstream os_;
};

} // namespace switchml

#define SML_LOG(level)                                        \
  if (static_cast<int>(::switchml::LogLevel::level) <         \
      static_cast<int>(::switchml::log_level())) {            \
  } else                                                      \
    ::switchml::LogLine(::switchml::LogLevel::level)
