// Structured event tracing (tier 2 of the observability layer).
//
// A TraceSink collects fixed-size POD events from the simulator's hot paths
// — switch slot claims/aggregations, worker sends/retransmits, link queue
// activity — and exports them as Chrome `trace_event` JSON loadable in
// Perfetto / chrome://tracing, with sim-time timestamps.
//
// Cost model, from cheapest to priciest:
//   1. Compiled out (SWITCHML_TRACE_MASK excludes the category): the emit()
//      call constant-folds to nothing — zero instructions on the hot path.
//   2. No sink installed (or the category runtime-disabled): one
//      thread_local read and a branch.
//   3. Recording: one bounds check plus a POD store into a pre-reserved
//      buffer — no allocation, ever. When the buffer is full the event is
//      counted in a per-category drop counter instead, so truncation is
//      visible in the export rather than silent.
//
// Like MetricsRegistry, the sink is discovered through an ambient scoped
// pointer (TraceSink::Scope), so instrumentation points need no plumbing and
// code running outside any scope pays only cost 2.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace switchml::trace {

// Trace categories (bitmask). Keep in sync with kCategoryNames in tracing.cpp.
inline constexpr unsigned kCatSwitch = 1u << 0;    // slot claim/aggregate/complete
inline constexpr unsigned kCatWorker = 1u << 1;    // send/recv/retransmit/timeout
inline constexpr unsigned kCatLink = 1u << 2;      // enqueue/deliver/drop
inline constexpr unsigned kCatTransport = 1u << 3; // reliable-transport segments/acks
inline constexpr unsigned kCatFault = 1u << 4;     // fault injection: flaps/stragglers/restarts
inline constexpr unsigned kCatFlow = 1u << 5;      // per-chunk causal chains (Perfetto flows)
inline constexpr unsigned kCatAll = 0x3Fu;
inline constexpr unsigned kCategoryCount = 6;

// Compile-time category mask. Building with -DSWITCHML_TRACE_MASK=0 removes
// every instrumentation point from the binary.
#ifndef SWITCHML_TRACE_MASK
#define SWITCHML_TRACE_MASK 0x3Fu
#endif
inline constexpr unsigned kCompiledMask = SWITCHML_TRACE_MASK;

// Parses a comma-separated list of category names ("switch,worker,link",
// "all") into a bitmask; throws std::invalid_argument naming the unknown
// category otherwise. The bench drivers' --trace-mask speaks names, not bits.
[[nodiscard]] unsigned parse_mask(std::string_view names);

// The category's lowercase name ("switch", ..., "flow"); `cat` must be a
// single compiled-in category bit.
[[nodiscard]] const char* category_name(unsigned cat);

// One optional key/value attribute on an event. Keys must be string literals
// (static lifetime); a null key means "absent".
struct Arg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

// Flow phase of an event (Chrome trace_event flow semantics): kStart opens a
// chain, kStep continues it, kEnd terminates it. Events of one chain share a
// flow id and render as clickable arrows in Perfetto.
enum class FlowPhase : std::uint8_t { kNone = 0, kStart, kStep, kEnd };

// Fixed-size POD record; `name` and arg keys are static-lifetime literals so
// recording never copies strings.
struct Event {
  Time ts = 0;                // sim time, ns
  std::uint32_t node = 0;     // NodeId of the emitting component
  std::uint32_t cat = 0;      // single category bit
  const char* name = nullptr; // e.g. "send", "claim", "drop_loss"
  Arg a0, a1, a2;
  std::uint64_t flow_id = 0;  // chain identity; meaningful when flow != kNone
  FlowPhase flow = FlowPhase::kNone;
};

class TraceSink {
public:
  // `capacity` bounds the event buffer (reserved up front; never grows).
  // `mask` runtime-enables a subset of the compiled-in categories.
  explicit TraceSink(std::size_t capacity = 1u << 20, unsigned mask = kCatAll);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  [[nodiscard]] bool wants(unsigned cat) const { return (mask_ & cat) != 0; }

  // Hot path. Drops (and counts) the event when the buffer is full.
  void record(unsigned cat, Time ts, std::uint32_t node, const char* name, Arg a0 = {},
              Arg a1 = {}, Arg a2 = {});

  // Hot path. Records one step of a flow chain (Perfetto flow arrows linking
  // send -> claim -> aggregate -> result -> deliver across actors).
  void record_flow(unsigned cat, Time ts, std::uint32_t node, const char* name,
                   std::uint64_t flow_id, FlowPhase phase);

  // Associates a NodeId with a display name; exported as Chrome thread_name
  // metadata so Perfetto rows read "worker-0" instead of "tid 3". Nodes
  // self-register from the net::Node constructor.
  void register_actor(std::uint32_t id, std::string name);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  // Events discarded because the buffer was full, per category bit index.
  [[nodiscard]] std::uint64_t drops(unsigned cat) const;
  [[nodiscard]] std::uint64_t total_drops() const;

  // Chrome trace_event JSON ("traceEvents" array of instant events with
  // thread_name metadata; "otherData" carries the drop counters). When any
  // events were dropped the export logs a Warn-level truncation notice —
  // an incomplete trace file is never silent.
  [[nodiscard]] std::string chrome_json() const;
  void write_chrome_json(const std::string& path) const;

  // --- ambient sink ---------------------------------------------------------
  [[nodiscard]] static TraceSink* current();

  // RAII installer; nests (the previous sink is restored on destruction).
  class Scope {
  public:
    explicit Scope(TraceSink* sink);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    TraceSink* prev_;
  };

private:
  unsigned mask_;
  std::size_t capacity_;
  std::vector<Event> events_;
  std::array<std::uint64_t, kCategoryCount> drops_{};
  std::vector<std::pair<std::uint32_t, std::string>> actors_;
};

// True when `cat` is compiled in, a sink is installed, and the sink's runtime
// mask includes `cat`. With `cat` a literal and SWITCHML_TRACE_MASK excluding
// it, the whole check constant-folds to `false`, dead-coding the caller's
// event-construction code.
inline bool enabled(unsigned cat) {
  if ((kCompiledMask & cat) == 0) return false;
  TraceSink* s = TraceSink::current();
  return s != nullptr && s->wants(cat);
}

// One-call emission for hot paths.
inline void emit(unsigned cat, Time ts, std::uint32_t node, const char* name, Arg a0 = {},
                 Arg a1 = {}, Arg a2 = {}) {
  if ((kCompiledMask & cat) == 0) return;
  if (TraceSink* s = TraceSink::current(); s != nullptr && s->wants(cat))
    s->record(cat, ts, node, name, a0, a1, a2);
}

// Flow-chain id for one worker chunk: owning node id in the top bits, element
// offset below. Offsets stay far under 2^40 in practice; a collision would
// merely merge two arrows in the viewer.
inline constexpr std::uint64_t chunk_flow_id(std::uint32_t node, std::uint64_t off) {
  return (static_cast<std::uint64_t>(node) << 40) | (off & ((1ull << 40) - 1));
}

// One-call flow-step emission (kCatFlow) for hot paths.
inline void emit_flow(Time ts, std::uint32_t node, const char* name, std::uint64_t flow_id,
                      FlowPhase phase) {
  if ((kCompiledMask & kCatFlow) == 0) return;
  if (TraceSink* s = TraceSink::current(); s != nullptr && s->wants(kCatFlow))
    s->record_flow(kCatFlow, ts, node, name, flow_id, phase);
}

} // namespace switchml::trace
