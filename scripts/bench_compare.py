#!/usr/bin/env python3
"""Compare a fresh BenchReport JSON against a committed baseline.

Usage:
  bench_compare.py BASELINE CURRENT [--tolerance-scale S]
  bench_compare.py --selftest

Exit codes: 0 = within tolerance, 1 = regression or shape mismatch,
2 = usage / unreadable / unsupported schema.

Comparison rules:
  * schema_version and bench name must match exactly;
  * every metric present in the baseline must exist in the current report
    (a vanished metric is a failure — the bench silently stopped measuring
    something); metrics only present in the current report are listed but do
    not fail, since the baseline must be re-recorded to start guarding them;
  * scalars compare relatively: |cur - base| <= tol * max(|base|, |cur|),
    where tol = max(baseline rel_tol, current rel_tol) * tolerance_scale.
    Values that are both ~0 (< 1e-12 in magnitude) compare equal, so
    honestly-zero series (e.g. loss-free retransmit counts) never flap.

The per-metric tolerances live in the reports themselves (BenchReport::add's
rel_tol argument): sim-deterministic values carry ~1e-9, host-measured
calibrations ~0.25. This keeps policy next to the measurement instead of in
a side table here.
"""

import json
import sys

SUPPORTED_SCHEMA = 1
ZERO_EPS = 1e-12


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_compare: cannot read {path}: {e}")
    if report.get("schema_version") != SUPPORTED_SCHEMA:
        raise SystemExit(
            f"bench_compare: {path}: unsupported schema_version "
            f"{report.get('schema_version')!r} (supported: {SUPPORTED_SCHEMA})"
        )
    for key in ("bench", "metrics"):
        if key not in report:
            raise SystemExit(f"bench_compare: {path}: missing {key!r}")
    return report


def compare(baseline, current, tolerance_scale=1.0):
    """Returns (ok, lines): pass/fail plus human-readable findings."""
    lines = []
    ok = True
    if baseline["bench"] != current["bench"]:
        return False, [
            f"bench name mismatch: baseline {baseline['bench']!r} vs "
            f"current {current['bench']!r}"
        ]
    if baseline.get("mode") != current.get("mode"):
        lines.append(
            f"note: mode differs (baseline {baseline.get('mode')!r}, "
            f"current {current.get('mode')!r}) — values may not be comparable"
        )

    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]
    for name in sorted(base_metrics):
        base = base_metrics[name]
        cur = cur_metrics.get(name)
        if cur is None:
            ok = False
            lines.append(f"FAIL {name}: present in baseline, missing from current report")
            continue
        bval, cval = float(base["value"]), float(cur["value"])
        tol = max(float(base.get("rel_tol", 0.0)), float(cur.get("rel_tol", 0.0)))
        tol *= tolerance_scale
        if abs(bval) < ZERO_EPS and abs(cval) < ZERO_EPS:
            continue
        scale = max(abs(bval), abs(cval))
        rel = abs(cval - bval) / scale
        if rel > tol:
            ok = False
            lines.append(
                f"FAIL {name}: baseline {bval:.9g} vs current {cval:.9g} "
                f"(rel diff {rel:.3g} > tol {tol:.3g})"
            )
    for name in sorted(set(cur_metrics) - set(base_metrics)):
        lines.append(f"note: new metric {name} (not guarded; re-record the baseline)")
    return ok, lines


def selftest():
    def report(metrics, bench="b", mode="fast", schema=SUPPORTED_SCHEMA):
        return {
            "schema_version": schema,
            "bench": bench,
            "mode": mode,
            "metrics": {
                k: {"value": v, "rel_tol": t} for k, (v, t) in metrics.items()
            },
        }

    # Identical reports pass.
    a = report({"x.tat_ms": (1.25, 1e-9)})
    ok, _ = compare(a, a)
    assert ok, "identical reports must pass"

    # Within tolerance passes; outside fails.
    base = report({"x.tat_ms": (1.0, 0.01)})
    ok, _ = compare(base, report({"x.tat_ms": (1.005, 0.01)}))
    assert ok, "0.5% diff within 1% tol must pass"
    ok, lines = compare(base, report({"x.tat_ms": (1.05, 0.01)}))
    assert not ok and any("FAIL x.tat_ms" in l for l in lines), "5% diff must fail"

    # Tight tolerance catches a tiny injected slowdown.
    base = report({"x.tat_ms": (1.0, 1e-9)})
    ok, _ = compare(base, report({"x.tat_ms": (1.0 + 1e-6, 1e-9)}))
    assert not ok, "1e-6 drift must fail a 1e-9 tolerance"

    # Missing metric fails; new metric only notes.
    base = report({"x.tat_ms": (1.0, 0.01), "y.rtt_us": (2.0, 0.01)})
    ok, lines = compare(base, report({"x.tat_ms": (1.0, 0.01)}))
    assert not ok and any("missing" in l for l in lines), "vanished metric must fail"
    ok, lines = compare(
        report({"x.tat_ms": (1.0, 0.01)}),
        report({"x.tat_ms": (1.0, 0.01), "z.new": (3.0, 0.01)}),
    )
    assert ok and any("new metric z.new" in l for l in lines), "new metric must only note"

    # Both ~zero compares equal regardless of tolerance.
    ok, _ = compare(report({"n.resent": (0.0, 1e-9)}), report({"n.resent": (0.0, 1e-9)}))
    assert ok, "zero vs zero must pass"

    # Zero baseline, nonzero current fails (relative to the larger magnitude).
    ok, _ = compare(report({"n.resent": (0.0, 0.1)}), report({"n.resent": (5.0, 0.1)}))
    assert not ok, "0 -> 5 must fail"

    # tolerance_scale loosens the gate.
    base = report({"x.tat_ms": (1.0, 0.01)})
    ok, _ = compare(base, report({"x.tat_ms": (1.05, 0.01)}), tolerance_scale=10.0)
    assert ok, "10x scale must absorb a 5% diff at 1% tol"

    # Bench name mismatch fails.
    ok, _ = compare(report({}, bench="a"), report({}, bench="b"))
    assert not ok, "bench mismatch must fail"

    print("bench_compare selftest: OK")


def main(argv):
    if "--selftest" in argv:
        selftest()
        return 0
    args = [a for a in argv if not a.startswith("--")]
    tolerance_scale = 1.0
    for a in argv:
        if a.startswith("--tolerance-scale="):
            tolerance_scale = float(a.split("=", 1)[1])
        elif a.startswith("--") and a != "--selftest":
            print(f"bench_compare: unknown flag {a}", file=sys.stderr)
            return 2
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline, current = load_report(args[0]), load_report(args[1])
    ok, lines = compare(baseline, current, tolerance_scale)
    for line in lines:
        print(line)
    n = len(baseline["metrics"])
    verdict = "OK" if ok else "REGRESSION"
    print(f"bench_compare: {baseline['bench']}: {verdict} ({n} guarded metrics)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
