#!/usr/bin/env python3
"""Critical-path report from a SpanLedger attribution JSONL sidecar.

Usage:
  critical_path.py ATTRIBUTION_JSONL [--top N] [--json]
  critical_path.py --selftest

The input is what a bench writes via ScopedAttribution::write_jsonl (or
SpanLedger::write_jsonl): one JSON object per finished chunk,

  {"node": 3, "slot": 17, "off": 262144, "start_ns": ..., "end_ns": ...,
   "ns": {"host_tx": ..., "link_queue": ..., ..., "fallback": ...}}

plus an optional trailing {"records_dropped": N} marker. The components of
each record partition the chunk's [start_ns, end_ns] span exactly (the
simulator maintains this by construction — see DESIGN.md "Time attribution"),
which is what makes the analysis here sound: summing a component across
chunks is summing real, non-overlapping wall-clock time.

The report answers "where did the time go":
  * aggregate per-component totals and shares across all chunks;
  * the critical worker — the node whose last chunk finishes latest; the
    tensor aggregation time IS that node's makespan, so only its chunks can
    be blamed for end-to-end latency — with its own component breakdown;
  * the top-N slowest chunks with their dominant components.

Exit codes: 0 = report printed, 1 = conservation violated (a record's
components do not sum to its span) or records were dropped, 2 = usage /
unreadable input.
"""

import json
import sys

COMPONENTS = [
    "host_tx", "link_queue", "wire", "prop", "switch_wait",
    "switch_ready", "host_rx", "rto_stall", "recovery", "fallback",
]


def load_records(path):
    """Returns (records, dropped): parsed chunk records + drop marker count."""
    records, dropped = [], 0
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(f"critical_path: {path}:{lineno}: bad JSON: {e}")
                if "records_dropped" in obj:
                    dropped += int(obj["records_dropped"])
                    continue
                for key in ("node", "slot", "off", "start_ns", "end_ns", "ns"):
                    if key not in obj:
                        raise SystemExit(
                            f"critical_path: {path}:{lineno}: record missing {key!r}"
                        )
                records.append(obj)
    except OSError as e:
        raise SystemExit(f"critical_path: cannot read {path}: {e}")
    return records, dropped


def check_conservation(records):
    """Returns violations: records whose components don't sum to their span."""
    bad = []
    for r in records:
        span = r["end_ns"] - r["start_ns"]
        total = sum(int(r["ns"].get(c, 0)) for c in COMPONENTS)
        if total != span:
            bad.append((r, span, total))
    return bad


def component_totals(records):
    totals = {c: 0 for c in COMPONENTS}
    for r in records:
        for c in COMPONENTS:
            totals[c] += int(r["ns"].get(c, 0))
    return totals


def critical_node(records):
    """The node whose last chunk completes latest; ties break to smaller id."""
    makespan = {}
    for r in records:
        node = r["node"]
        makespan[node] = max(makespan.get(node, 0), r["end_ns"])
    if not makespan:
        return None, 0
    node = max(sorted(makespan), key=lambda n: makespan[n])
    return node, makespan[node]


def slowest_chunks(records, top):
    return sorted(records, key=lambda r: r["end_ns"] - r["start_ns"], reverse=True)[:top]


def dominant(ns):
    """(component, share) contributing the most time to one chunk record."""
    total = sum(int(ns.get(c, 0)) for c in COMPONENTS)
    if total == 0:
        return "-", 0.0
    comp = max(COMPONENTS, key=lambda c: int(ns.get(c, 0)))
    return comp, int(ns.get(comp, 0)) / total


def analyze(records, dropped, top=10):
    """Returns the full report as a JSON-serializable dict."""
    totals = component_totals(records)
    grand = sum(totals.values())
    node, makespan_end = critical_node(records)
    crit_records = [r for r in records if r["node"] == node]
    crit_totals = component_totals(crit_records)
    crit_grand = sum(crit_totals.values())

    def shares(tot, denom):
        return {
            c: {"ns": tot[c], "share": (tot[c] / denom if denom else 0.0)}
            for c in COMPONENTS
        }

    report = {
        "chunks": len(records),
        "records_dropped": dropped,
        "total_ns": grand,
        "components": shares(totals, grand),
        "critical_node": node,
        "critical_node_end_ns": makespan_end,
        "critical_node_chunks": len(crit_records),
        "critical_node_components": shares(crit_totals, crit_grand),
        "slowest_chunks": [
            {
                "node": r["node"],
                "slot": r["slot"],
                "off": r["off"],
                "span_ns": r["end_ns"] - r["start_ns"],
                "dominant": dominant(r["ns"])[0],
                "dominant_share": round(dominant(r["ns"])[1], 4),
                "ns": {c: int(r["ns"].get(c, 0)) for c in COMPONENTS},
            }
            for r in slowest_chunks(records, top)
        ],
    }
    return report


def print_report(report, violations):
    def fmt_shares(comp_block):
        parts = []
        for c in COMPONENTS:
            e = comp_block[c]
            if e["ns"] > 0:
                parts.append(f"{c} {100.0 * e['share']:5.1f}% ({e['ns']} ns)")
        return parts or ["(no time recorded)"]

    print(f"chunks analyzed: {report['chunks']}"
          + (f" ({report['records_dropped']} records dropped at capacity —"
             " totals below undercount)" if report["records_dropped"] else ""))
    print(f"total attributed time: {report['total_ns']} ns")
    print("\nwhere the time went (all chunks):")
    for line in fmt_shares(report["components"]):
        print(f"  {line}")
    if report["critical_node"] is not None:
        print(f"\ncritical worker: node {report['critical_node']} "
              f"(last chunk done at {report['critical_node_end_ns']} ns, "
              f"{report['critical_node_chunks']} chunks)")
        for line in fmt_shares(report["critical_node_components"]):
            print(f"  {line}")
    print(f"\ntop {len(report['slowest_chunks'])} slowest chunks:")
    for s in report["slowest_chunks"]:
        print(f"  node {s['node']} slot {s['slot']} off {s['off']}: "
              f"{s['span_ns']} ns, mostly {s['dominant']} "
              f"({100.0 * s['dominant_share']:.0f}%)")
    if violations:
        print(f"\nCONSERVATION VIOLATED in {len(violations)} record(s):")
        for r, span, total in violations[:5]:
            print(f"  node {r['node']} slot {r['slot']} off {r['off']}: "
                  f"components sum to {total} ns but span is {span} ns")


def selftest():
    def rec(node, slot, off, start, ns):
        span = sum(ns.get(c, 0) for c in COMPONENTS)
        return {"node": node, "slot": slot, "off": off, "start_ns": start,
                "end_ns": start + span, "ns": ns}

    # Two workers; node 2 finishes later and is straggler-dominated.
    records = [
        rec(1, 0, 0, 100, {"host_tx": 50, "wire": 20, "switch_wait": 30}),
        rec(1, 1, 64, 120, {"host_tx": 40, "prop": 10, "host_rx": 10}),
        rec(2, 0, 0, 100, {"host_tx": 400, "rto_stall": 600}),
    ]
    bad = check_conservation(records)
    assert not bad, "synthetic records must conserve"

    totals = component_totals(records)
    assert totals["host_tx"] == 490 and totals["rto_stall"] == 600

    node, end = critical_node(records)
    assert node == 2 and end == 1100, f"critical node must be 2 @ 1100, got {node} @ {end}"

    report = analyze(records, dropped=0, top=2)
    assert report["chunks"] == 3
    assert report["total_ns"] == sum(totals.values())
    assert report["critical_node_components"]["rto_stall"]["ns"] == 600
    assert report["slowest_chunks"][0]["node"] == 2, "slowest chunk is the stalled one"
    assert report["slowest_chunks"][0]["dominant"] == "rto_stall"
    assert report["slowest_chunks"][0]["dominant_share"] == 0.6
    assert len(report["slowest_chunks"]) == 2, "--top must bound the list"
    # Shares sum to ~1 over the nonzero components.
    assert abs(sum(e["share"] for e in report["components"].values()) - 1.0) < 1e-12

    # A cooked record (one ns inflated) must trip the conservation check.
    broken = [dict(records[0], ns=dict(records[0]["ns"], wire=21))]
    bad = check_conservation(broken)
    assert len(bad) == 1 and bad[0][1] == 100 and bad[0][2] == 101

    # Ledger truncation marker is surfaced, never silently folded in.
    report = analyze(records, dropped=7)
    assert report["records_dropped"] == 7

    # Empty input stays well-formed (no division by zero, no critical node).
    report = analyze([], dropped=0)
    assert report["critical_node"] is None and report["total_ns"] == 0

    print("critical_path selftest: OK")


def main(argv):
    if "--selftest" in argv:
        selftest()
        return 0
    top = 10
    as_json = "--json" in argv
    paths = []
    skip = False
    for i, a in enumerate(argv):
        if skip:
            skip = False
            continue
        if a == "--json":
            continue
        if a == "--top":
            if i + 1 >= len(argv) or not argv[i + 1].isdigit():
                print("critical_path: --top needs a positive integer", file=sys.stderr)
                return 2
            top = int(argv[i + 1])
            skip = True
        elif a.startswith("--top="):
            value = a.split("=", 1)[1]
            if not value.isdigit() or int(value) <= 0:
                print("critical_path: --top needs a positive integer", file=sys.stderr)
                return 2
            top = int(value)
        elif a.startswith("--"):
            print(f"critical_path: unknown flag {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
    if len(paths) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    records, dropped = load_records(paths[0])
    violations = check_conservation(records)
    report = analyze(records, dropped, top)
    if as_json:
        report["conservation_violations"] = len(violations)
        print(json.dumps(report, indent=2))
    else:
        print_report(report, violations)
    return 1 if violations or dropped else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
