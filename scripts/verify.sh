#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full ctest suite, then
# rebuild the observability-critical tests under ASan+UBSan and run those.
#
# Usage: scripts/verify.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build-verify}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== tier-1: build + ctest =="
cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure

echo "== sanitizers: ASan+UBSan on the observability-critical tests =="
# The target list is owned by tests/CMakeLists.txt (SWITCHML_SANITIZER_TESTS),
# which exports it to <build>/sanitizer_tests.txt — new tests added there get
# sanitizer coverage without touching this script.
san_dir="$build_dir-asan"
cmake -B "$san_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSWITCHML_SANITIZE="address;undefined"
cmake --build "$san_dir" -j "$jobs" --target sanitizer_tests
while IFS= read -r t; do
  [ -n "$t" ] || continue
  echo "-- ASan: $t"
  "$san_dir/tests/$t" --gtest_brief=1
done < "$san_dir/sanitizer_tests.txt"

echo "verify: OK"
