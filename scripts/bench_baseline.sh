#!/usr/bin/env bash
# Record or check the bench regression baselines.
#
# Every measured bench emits a schema-versioned BenchReport JSON
# ("<bench>_report.json") with a per-metric relative tolerance. This script
# runs the benches in --fast (smoke) mode inside a scratch directory, then:
#   --record        copies each report to results/baselines/BENCH_<bench>.json
#                   (commit these — they are the guarded reference);
#   --check         diffs each fresh report against the committed baseline via
#                   scripts/bench_compare.py and fails on any regression;
#   --run           runs the benches and keeps the reports (use with --out;
#                   CI's bench-smoke job uploads the directory as artifacts);
#   --compare-only  no bench runs: diffs reports already sitting in --out
#                   against the committed baselines (CI's baseline-compare
#                   job, fed by the bench-smoke artifact).
#
# The default bench set is the sim-deterministic smoke subset; pass bench
# names to override (e.g. fig8_datatypes, whose conversion calibration is
# host-measured and carries a loose tolerance).
#
# Usage:
#   scripts/bench_baseline.sh --record|--check [options] [bench...]
# Options:
#   --build-dir DIR        where the bench binaries live (default: ./build)
#   --out DIR              keep reports/sidecars there instead of a temp dir
#   --timelines            also write per-run timeline sidecars (JSONL)
#   --tolerance-scale S    loosen every tolerance by S (forwarded to compare)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
baseline_dir="$repo_root/results/baselines"

mode=""
build_dir="$repo_root/build"
out_dir=""
timelines=0
tolerance_scale=""
benches=()

while [ $# -gt 0 ]; do
  case "$1" in
    --record|--check|--run|--compare-only) mode="${1#--}" ;;
    --build-dir) build_dir="$2"; shift ;;
    --out) out_dir="$2"; shift ;;
    --timelines) timelines=1 ;;
    --tolerance-scale) tolerance_scale="$2"; shift ;;
    --*) echo "bench_baseline: unknown option $1" >&2; exit 2 ;;
    *) benches+=("$1") ;;
  esac
  shift
done

if [ -z "$mode" ]; then
  echo "usage: scripts/bench_baseline.sh --record|--check|--run|--compare-only" \
       "[options] [bench...]" >&2
  exit 2
fi
if [ "$mode" = compare-only ] && [ -z "$out_dir" ]; then
  echo "bench_baseline: --compare-only needs --out DIR with the reports" >&2
  exit 2
fi

if [ ${#benches[@]} -eq 0 ]; then
  # Sim-deterministic smoke subset (fig8's conversion cost is host-measured,
  # so it is opt-in).
  benches=(fig2_pool_size fig3_speedup fig4_ate_scaling fig5_loss_inflation
           fig6_loss_timeline fig7_mtu fig10_quantization
           table1_training_throughput fault_sweep int_sweep recovery_sweep
           micro_events transport_crossover)
fi

if [ -n "$out_dir" ]; then
  mkdir -p "$out_dir"
  workdir="$(cd "$out_dir" && pwd)"
else
  workdir="$(mktemp -d)"
  trap 'rm -rf "$workdir"' EXIT
fi

status=0
for b in "${benches[@]}"; do
  report="$workdir/${b}_report.json"
  if [ "$mode" != compare-only ]; then
    bin="$build_dir/bench/$b"
    if [ ! -x "$bin" ]; then
      echo "bench_baseline: missing $bin — build first (cmake --build $build_dir)" >&2
      exit 2
    fi
    echo "== $b (--fast) =="
    args=(--fast)
    [ "$timelines" -eq 1 ] && args+=(--timeline-out "${b}_timeline")
    (cd "$workdir" && "$bin" "${args[@]}" > "${b}_stdout.txt")
  fi
  if [ ! -f "$report" ]; then
    echo "bench_baseline: missing ${b}_report.json in $workdir" >&2
    exit 2
  fi
  case "$mode" in
    run) ;;
    record)
      mkdir -p "$baseline_dir"
      cp "$report" "$baseline_dir/BENCH_${b}.json"
      echo "recorded $baseline_dir/BENCH_${b}.json"
      ;;
    check|compare-only)
      baseline="$baseline_dir/BENCH_${b}.json"
      if [ ! -f "$baseline" ]; then
        echo "bench_baseline: no committed baseline $baseline (run --record first)" >&2
        exit 2
      fi
      compare_args=("$baseline" "$report")
      [ -n "$tolerance_scale" ] && compare_args+=("--tolerance-scale=$tolerance_scale")
      if ! python3 "$repo_root/scripts/bench_compare.py" "${compare_args[@]}"; then
        status=1
      fi
      ;;
  esac
done

case "$mode" in
  check|compare-only)
    if [ "$status" -eq 0 ]; then echo "bench_baseline: all checks passed"; else
      echo "bench_baseline: REGRESSION detected" >&2
    fi
    ;;
esac
exit "$status"
