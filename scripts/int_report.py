#!/usr/bin/env python3
"""Per-hop telemetry tables and verdict summary from an INT sweep JSONL sidecar.

Usage:
  int_report.py HOPS_JSONL [--scenario NAME] [--json]
  int_report.py --selftest

The input is what bench/int_sweep writes to int_sweep_hops.jsonl: one JSON
object per line, either a per-(worker, hop) stats row,

  {"scenario": "flap", "record": "hop", "worker": "worker-0", "hop": "up",
   "kind": "link", "hop_id": 0, "next_hop": 10000, "samples": 123,
   "latency_p50_ns": 679, "latency_p99_ns": 1200, "queue_bytes": 0,
   "queue_pkts": 0, "drops": 7}

or a localization verdict,

  {"scenario": "flap", "record": "verdict", "kind": "slow_link",
   "subject": "worker-0<->switch", "detail": 7, "at_ns": 985000,
   "matched": true}

The report renders, per scenario: the verdicts (with time and whether the
sweep scored them against ground truth), and a hop table aggregated across
the workers that observed each hop (worst p50/p99, max queue depth, max
cumulative drops) — the view an operator would use to answer "which hop is
sick". --scenario filters to one scenario; --json emits the structured
report instead of tables.

Exit codes: 0 = report printed, 1 = input had no records (or a verdict line
the sweep marked unmatched — the localizer named a healthy component),
2 = usage / unreadable input.
"""

import json
import sys

HOP_FIELDS = ("scenario", "worker", "hop", "kind", "hop_id", "next_hop",
              "samples", "latency_p50_ns", "latency_p99_ns", "queue_bytes",
              "queue_pkts", "drops")
VERDICT_FIELDS = ("scenario", "kind", "subject", "detail", "at_ns", "matched")


def load(path):
    """Returns (hops, verdicts): parsed rows split by record type."""
    hops, verdicts = [], []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(f"int_report: {path}:{lineno}: bad JSON: {e}")
                kind = obj.get("record")
                if kind == "hop":
                    missing = [k for k in HOP_FIELDS if k not in obj]
                elif kind == "verdict":
                    missing = [k for k in VERDICT_FIELDS if k not in obj]
                else:
                    raise SystemExit(
                        f"int_report: {path}:{lineno}: unknown record {kind!r}")
                if missing:
                    raise SystemExit(
                        f"int_report: {path}:{lineno}: record missing {missing[0]!r}")
                (hops if kind == "hop" else verdicts).append(obj)
    except OSError as e:
        raise SystemExit(f"int_report: cannot read {path}: {e}")
    return hops, verdicts


def aggregate_hops(hops):
    """Collapses per-worker rows into one row per (scenario, hop identity).

    Latencies take the worst observer (each worker's view of a shared hop is
    its own distribution); queue depths and the cumulative drop counter take
    the max — gauges and monotone counters, not summable across observers.
    Samples sum: each worker's packets through the hop are distinct.
    """
    agg = {}
    for h in hops:
        key = (h["scenario"], h["kind"], h["hop_id"], h["next_hop"])
        a = agg.setdefault(key, {
            "scenario": h["scenario"], "kind": h["kind"],
            "hop_id": h["hop_id"], "next_hop": h["next_hop"],
            "name": h["hop"], "observers": 0, "samples": 0,
            "latency_p50_ns": 0, "latency_p99_ns": 0,
            "queue_bytes": 0, "queue_pkts": 0, "drops": 0,
        })
        a["observers"] += 1
        a["samples"] += h["samples"]
        a["latency_p50_ns"] = max(a["latency_p50_ns"], h["latency_p50_ns"])
        a["latency_p99_ns"] = max(a["latency_p99_ns"], h["latency_p99_ns"])
        a["queue_bytes"] = max(a["queue_bytes"], h["queue_bytes"])
        a["queue_pkts"] = max(a["queue_pkts"], h["queue_pkts"])
        a["drops"] = max(a["drops"], h["drops"])
    return sorted(agg.values(),
                  key=lambda a: (a["scenario"], a["kind"], a["hop_id"], a["next_hop"]))


def analyze(hops, verdicts, scenario=None):
    """Returns the report dict; filters to one scenario when asked."""
    if scenario is not None:
        hops = [h for h in hops if h["scenario"] == scenario]
        verdicts = [v for v in verdicts if v["scenario"] == scenario]
    scenarios = sorted({r["scenario"] for r in hops}
                       | {r["scenario"] for r in verdicts})
    return {
        "scenarios": scenarios,
        "hop_rows": len(hops),
        "verdicts": verdicts,
        "unmatched_verdicts": sum(1 for v in verdicts if not v["matched"]),
        "hops": aggregate_hops(hops),
    }


def print_report(report):
    for sc in report["scenarios"]:
        print(f"=== scenario: {sc} ===")
        sc_verdicts = [v for v in report["verdicts"] if v["scenario"] == sc]
        if sc_verdicts:
            for v in sc_verdicts:
                score = "matched" if v["matched"] else "UNMATCHED (false positive)"
                print(f"  verdict: {v['kind']}({v['subject']}) "
                      f"detail={v['detail']} at {v['at_ns']} ns [{score}]")
        else:
            print("  verdicts: none")
        rows = [a for a in report["hops"] if a["scenario"] == sc]
        if rows:
            header = (f"  {'hop':<12} {'kind':<7} {'obs':>3} {'samples':>9} "
                      f"{'p50 ns':>9} {'p99 ns':>9} {'q bytes':>9} {'drops':>7}")
            print(header)
            for a in rows:
                print(f"  {a['name']:<12} {a['kind']:<7} {a['observers']:>3} "
                      f"{a['samples']:>9} {a['latency_p50_ns']:>9} "
                      f"{a['latency_p99_ns']:>9} {a['queue_bytes']:>9} "
                      f"{a['drops']:>7}")
        print()
    if report["unmatched_verdicts"]:
        print(f"{report['unmatched_verdicts']} verdict(s) named a healthy "
              "component — the localizer false-positived")


def selftest():
    def hop(scenario, worker, name, kind, hop_id, next_hop, samples, p50,
            p99=0, qb=0, qp=0, drops=0):
        return {"scenario": scenario, "record": "hop", "worker": worker,
                "hop": name, "kind": kind, "hop_id": hop_id,
                "next_hop": next_hop, "samples": samples,
                "latency_p50_ns": p50, "latency_p99_ns": p99,
                "queue_bytes": qb, "queue_pkts": qp, "drops": drops}

    # Two workers observing the same switch hop plus their own uplinks.
    hops = [
        hop("flap", "worker-0", "up", "link", 0, 100, 50, 679, 900, drops=7),
        hop("flap", "worker-0", "switch", "switch", 100, 0, 50, 1000, 2000),
        hop("flap", "worker-1", "switch", "switch", 100, 1, 60, 27000, 41000),
        hop("flap", "worker-1", "up", "link", 1, 100, 60, 700, 950),
    ]
    verdicts = [
        {"scenario": "flap", "record": "verdict", "kind": "slow_link",
         "subject": "worker-0<->switch", "detail": 7, "at_ns": 985000,
         "matched": True},
    ]

    agg = aggregate_hops(hops)
    assert len(agg) == 4, f"4 rows, all distinct hop identities, got {len(agg)}"
    # Distinct (hop_id, next_hop) under kind "switch": per-destination copies
    # of the switch record stay separate rows (each worker sees its own).
    switch_rows = [a for a in agg if a["kind"] == "switch"]
    assert len(switch_rows) == 2
    up0 = next(a for a in agg if a["kind"] == "link" and a["hop_id"] == 0)
    assert up0["samples"] == 50 and up0["drops"] == 7 and up0["observers"] == 1

    # Same hop seen by two observers: samples sum, worst latency wins.
    shared = aggregate_hops([
        hop("s", "worker-0", "down", "link", 100, 0, 10, 500, 800, qb=1000),
        hop("s", "worker-1", "down", "link", 100, 0, 15, 700, 600, qb=900),
    ])
    assert len(shared) == 1
    assert shared[0]["samples"] == 25 and shared[0]["observers"] == 2
    assert shared[0]["latency_p50_ns"] == 700          # worst observer
    assert shared[0]["latency_p99_ns"] == 800          # independently worst
    assert shared[0]["queue_bytes"] == 1000            # max, not sum

    report = analyze(hops, verdicts)
    assert report["scenarios"] == ["flap"]
    assert report["hop_rows"] == 4
    assert report["unmatched_verdicts"] == 0

    # A false positive is surfaced in the count (drives exit code 1).
    fp = analyze(hops, verdicts + [
        {"scenario": "flap", "record": "verdict", "kind": "straggler",
         "subject": "worker-1", "detail": 1, "at_ns": 1, "matched": False}])
    assert fp["unmatched_verdicts"] == 1

    # --scenario filters both record kinds.
    other = analyze(hops + [hop("other", "worker-0", "up", "link", 0, 100, 1, 1)],
                    verdicts, scenario="other")
    assert other["scenarios"] == ["other"] and other["hop_rows"] == 1
    assert not other["verdicts"]

    # Empty input stays well-formed.
    empty = analyze([], [])
    assert empty["scenarios"] == [] and empty["hops"] == []

    print("int_report selftest: OK")


def main(argv):
    if "--selftest" in argv:
        selftest()
        return 0
    as_json = "--json" in argv
    scenario = None
    paths = []
    skip = False
    for i, a in enumerate(argv):
        if skip:
            skip = False
            continue
        if a == "--json":
            continue
        if a == "--scenario":
            if i + 1 >= len(argv):
                print("int_report: --scenario needs a name", file=sys.stderr)
                return 2
            scenario = argv[i + 1]
            skip = True
        elif a.startswith("--scenario="):
            scenario = a.split("=", 1)[1]
        elif a.startswith("--"):
            print(f"int_report: unknown flag {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
    if len(paths) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    hops, verdicts = load(paths[0])
    report = analyze(hops, verdicts, scenario)
    if as_json:
        print(json.dumps(report, indent=2))
    else:
        print_report(report)
    if not hops and not verdicts:
        print("int_report: no records in input", file=sys.stderr)
        return 1
    return 1 if report["unmatched_verdicts"] else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
