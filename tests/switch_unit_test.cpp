// AggregationSwitch unit tests: configuration validation, dataplane
// constraint compliance, resource accounting, and the ablation flags.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "switchml_switch/aggregation_switch.hpp"

namespace switchml::swprog {
namespace {

TEST(SwitchConfig, RejectsTooManyWorkersPerPipeline) {
  sim::Simulation sim;
  AggregationConfig cfg;
  cfg.n_workers = 33; // one pipeline handles at most 32 directly-attached workers
  EXPECT_THROW(AggregationSwitch(sim, 1, "sw", cfg), std::invalid_argument);
  cfg.n_workers = 0;
  EXPECT_THROW(AggregationSwitch(sim, 1, "sw", cfg), std::invalid_argument);
}

TEST(SwitchConfig, RejectsZeroPool) {
  sim::Simulation sim;
  AggregationConfig cfg;
  cfg.pool_size = 0;
  EXPECT_THROW(AggregationSwitch(sim, 1, "sw", cfg), std::invalid_argument);
}

TEST(SwitchConfig, RejectsOversizedPacketsWithoutMtuEmulation) {
  sim::Simulation sim;
  AggregationConfig cfg;
  cfg.elems_per_packet = 366; // beyond the 32-element ASIC budget (§3.4)
  EXPECT_THROW(AggregationSwitch(sim, 1, "sw", cfg), std::invalid_argument);
  cfg.mtu_emulation = true;
  EXPECT_NO_THROW(AggregationSwitch(sim, 1, "sw", cfg));
}

TEST(SwitchConfig, LeafRequiresParentPort) {
  sim::Simulation sim;
  AggregationConfig cfg;
  EXPECT_THROW(AggregationSwitch(sim, 1, "leaf", cfg, SwitchRole::Leaf), std::invalid_argument);
}

TEST(SwitchResources, RegisterBytesScaleWithPool) {
  sim::Simulation sim;
  AggregationConfig a;
  a.pool_size = 128;
  AggregationConfig b = a;
  b.pool_size = 512;
  AggregationSwitch sa(sim, 1, "a", a);
  AggregationSwitch sb(sim, 2, "b", b);
  EXPECT_EQ(sb.register_bytes(), 4 * sa.register_bytes());
  // §3.6: 128 slots at 10 Gbps -> 32 KB of pool value registers (the paper
  // counts 32-bit slots; both versions of one element share a 64-bit word).
  EXPECT_EQ(sa.register_bytes(), (32u + 2u) * 128u * 8u);
}

TEST(SwitchResources, TimingOnlySkipsValueRegisters) {
  sim::Simulation sim;
  AggregationConfig cfg;
  cfg.timing_only = true;
  AggregationSwitch sw(sim, 1, "sw", cfg);
  EXPECT_EQ(sw.register_bytes(), 2u * cfg.pool_size * 8u); // seen + count only
}

TEST(SwitchDataplane, AccessCountsMatchProtocol) {
  // Every fresh update touches seen + count + 32 pool arrays = 34 accesses.
  core::ClusterConfig cfg;
  cfg.n_workers = 2;
  cfg.pool_size = 4;
  core::Cluster cluster(cfg);
  std::vector<std::vector<std::int32_t>> updates(2, std::vector<std::int32_t>(32 * 4));
  cluster.reduce_i32(updates);
  const auto& pipe = cluster.agg_switch().pipeline();
  EXPECT_EQ(pipe.packets_processed(), 8u); // 2 workers x 4 chunks
  EXPECT_EQ(pipe.register_accesses(), 8u * 34u);
}

// --------------------------------------------------------------- ablations

TEST(Ablation, NoSeenBitmapCorruptsUnderAsymmetricDuplicates) {
  // §3.5's motivating hazard: a worker that missed a (lost) result
  // retransmits an update the switch already aggregated. Without the seen
  // bitmap the duplicate is applied AGAIN — here worker 0's retransmissions
  // restart the slot and produce 1+1=2 instead of the true 1+5=6.
  core::ClusterConfig cfg;
  cfg.n_workers = 2;
  cfg.pool_size = 4;
  cfg.ablate_seen_bitmap = true;
  core::Cluster cluster(cfg);
  bool dropped = false;
  cluster.link(0).set_drop_filter([&](const net::Node& sender, const net::Packet& p) {
    if (!dropped && p.kind == net::PacketKind::SmlResult && sender.id() >= 100) {
      dropped = true;
      return true;
    }
    return false;
  });
  // Distinct per-worker values so double-counted duplicates are detectable.
  std::vector<std::vector<std::int32_t>> updates = {
      std::vector<std::int32_t>(32 * 8, 1), std::vector<std::int32_t>(32 * 8, 5)};

  std::vector<std::vector<std::int32_t>> outputs(2, std::vector<std::int32_t>(32 * 8, 0));
  int done = 0;
  for (int w = 0; w < 2; ++w)
    cluster.worker(w).start_reduction(updates[static_cast<std::size_t>(w)],
                                      outputs[static_cast<std::size_t>(w)],
                                      [&] { ++done; });
  cluster.simulation().run_until(msec(100));
  EXPECT_TRUE(dropped);
  if (done >= 1) {
    bool corrupted = false;
    for (int w = 0; w < 2; ++w)
      for (auto v : outputs[static_cast<std::size_t>(w)])
        if (v != 0 && v != 6) corrupted = true;
    EXPECT_TRUE(corrupted);
  } else {
    SUCCEED(); // protocol livelock is also a valid failure demonstration
  }
}

TEST(Ablation, NoShadowCopyDeadlocksOnResultLoss) {
  core::ClusterConfig cfg;
  cfg.n_workers = 2;
  cfg.pool_size = 2;
  cfg.ablate_shadow_copy = true;
  core::Cluster cluster(cfg);
  // Lose the first result packet toward worker 0 permanently.
  bool dropped = false;
  cluster.link(0).set_drop_filter([&](const net::Node& sender, const net::Packet& p) {
    if (!dropped && p.kind == net::PacketKind::SmlResult && sender.id() >= 100) {
      dropped = true;
      return true;
    }
    return false;
  });
  std::vector<std::int32_t> u(32 * 2, 1), out(32 * 2, 0);
  std::vector<std::int32_t> u2(32 * 2, 1), out2(32 * 2, 0);
  int done = 0;
  cluster.worker(0).start_reduction(u, out, [&] { ++done; });
  cluster.worker(1).start_reduction(u2, out2, [&] { ++done; });
  cluster.simulation().run_until(msec(50));
  EXPECT_LT(done, 2); // worker 0 can never recover the lost result
  EXPECT_TRUE(dropped);
}

TEST(Ablation, FullProtocolHandlesTheSameLoss) {
  core::ClusterConfig cfg;
  cfg.n_workers = 2;
  cfg.pool_size = 2;
  core::Cluster cluster(cfg);
  bool dropped = false;
  cluster.link(0).set_drop_filter([&](const net::Node& sender, const net::Packet& p) {
    if (!dropped && p.kind == net::PacketKind::SmlResult && sender.id() >= 100) {
      dropped = true;
      return true;
    }
    return false;
  });
  std::vector<std::int32_t> u(32 * 2, 1), out(32 * 2, 0);
  std::vector<std::int32_t> u2(32 * 2, 1), out2(32 * 2, 0);
  int done = 0;
  cluster.worker(0).start_reduction(u, out, [&] { ++done; });
  cluster.worker(1).start_reduction(u2, out2, [&] { ++done; });
  cluster.simulation().run_until(msec(50));
  EXPECT_EQ(done, 2);
  for (auto v : out) EXPECT_EQ(v, 2);
}

} // namespace
} // namespace switchml::swprog
