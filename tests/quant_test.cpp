// Quantization tests: roundtrip accuracy, Theorem 1/2 properties,
// x86 conversion semantics, float16 correctness, fp16 lookup tables.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "quant/fixed_point.hpp"
#include "quant/float16.hpp"
#include "sim/rng.hpp"

namespace switchml::quant {
namespace {

TEST(FixedPoint, RoundToNearestEven) {
  EXPECT_EQ(round_to_i32(2.5), 2);
  EXPECT_EQ(round_to_i32(3.5), 4);
  EXPECT_EQ(round_to_i32(-2.5), -2);
  EXPECT_EQ(round_to_i32(1.49), 1);
  EXPECT_EQ(round_to_i32(1.51), 2);
}

TEST(FixedPoint, OutOfRangeProducesIntegerIndefinite) {
  // x86 CVTPS2DQ semantics: overflow -> INT32_MIN.
  EXPECT_EQ(round_to_i32(3e9), kIntIndefinite);
  EXPECT_EQ(round_to_i32(-3e9), kIntIndefinite);
  EXPECT_EQ(round_to_i32(std::numeric_limits<double>::quiet_NaN()), kIntIndefinite);
}

TEST(FixedPoint, QuantizeDequantizeRoundtrip) {
  std::vector<float> x = {1.56f, 4.23f, -0.001f, 0.0f, -7.9f};
  const double f = 1000.0;
  auto q = quantize(x, f);
  auto back = dequantize(q, f);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1.0 / f);
}

TEST(FixedPoint, PaperAppendixCExample) {
  // Appendix C worked example: deltas 1.56 and 4.23.
  std::vector<float> d1 = {1.56f}, d2 = {4.23f};
  {
    const double f = 100.0;
    auto q1 = quantize(d1, f), q2 = quantize(d2, f);
    EXPECT_EQ(q1[0], 156);
    EXPECT_EQ(q2[0], 423);
    EXPECT_NEAR(static_cast<double>(q1[0] + q2[0]) / f, 5.79, 1e-9);
  }
  {
    const double f = 10.0;
    auto q1 = quantize(d1, f), q2 = quantize(d2, f);
    EXPECT_EQ(q1[0], 16);
    EXPECT_EQ(q2[0], 42);
    EXPECT_NEAR(static_cast<double>(q1[0] + q2[0]) / f, 5.8, 1e-9);
  }
}

TEST(FixedPoint, HtonlNtohlInvolution) {
  std::vector<std::int32_t> v = {0, 1, -1, 0x12345678, static_cast<std::int32_t>(0xDEADBEEF)};
  auto original = v;
  htonl_inplace(v);
  EXPECT_NE(v[3], original[3]); // actually swapped on little-endian hosts
  ntohl_inplace(v);
  EXPECT_EQ(v, original);
}

TEST(FixedPoint, MaxSafeScalingFactorMatchesTheorem2) {
  // f <= (2^31 - n) / (n B)
  EXPECT_NEAR(max_safe_scaling_factor(8, 10.0), (2147483648.0 - 8) / 80.0, 1e-6);
  EXPECT_NEAR(max_safe_scaling_factor(1, 1.0), 2147483647.0, 1.0);
}

TEST(FixedPoint, ErrorBoundMatchesTheorem1) {
  EXPECT_DOUBLE_EQ(aggregation_error_bound(8, 100.0), 0.08);
}

TEST(FixedPoint, InvalidArgumentsThrow) {
  EXPECT_THROW(max_safe_scaling_factor(0, 1.0), std::invalid_argument);
  EXPECT_THROW(max_safe_scaling_factor(8, 0.0), std::invalid_argument);
  EXPECT_THROW(aggregation_error_bound(8, 0.0), std::invalid_argument);
}

TEST(FixedPoint, ChooseScalingFactorHandlesZeroGradient) {
  std::vector<float> zeros(16, 0.0f);
  EXPECT_GT(choose_scaling_factor(zeros, 8), 0.0);
}

TEST(FixedPoint, AccumulateWrapsLikeSwitchAlu) {
  std::vector<std::int32_t> acc = {INT32_MAX};
  std::vector<std::int32_t> one = {1};
  accumulate_wrapping(acc, one);
  EXPECT_EQ(acc[0], INT32_MIN); // two's-complement wraparound
}

// Property test: Theorem 1 — for safe f, |exact_sum - quantized_sum / f| <= n/f.
class TheoremProperty : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(TheoremProperty, AggregationErrorIsBounded) {
  const auto [n, magnitude] = GetParam();
  sim::Rng rng = sim::Rng::stream(99, "theorem");
  const std::size_t d = 256;

  std::vector<std::vector<float>> updates(static_cast<std::size_t>(n));
  float max_abs = 0.0f;
  for (auto& u : updates) {
    u.resize(d);
    for (auto& v : u) {
      v = static_cast<float>(rng.normal(0.0, magnitude));
      max_abs = std::max(max_abs, std::abs(v));
    }
  }
  // Back off an epsilon from the Theorem 2 limit: at exactly f = (2^31-n)/nB
  // the rounded value can reach 2^31 - n + 1, which for n = 1 is one past
  // INT32_MAX (the theorem's bound |rho(f d)| <= 2^31 is not representable).
  const double f = max_safe_scaling_factor(n, static_cast<double>(max_abs)) * (1.0 - 1e-9);
  const double bound = aggregation_error_bound(n, f);

  std::vector<std::int32_t> acc(d, 0);
  std::vector<std::int32_t> q(d);
  std::vector<double> exact(d, 0.0);
  for (const auto& u : updates) {
    quantize(u, f, q);
    for (std::size_t i = 0; i < d; ++i) {
      // Theorem 2: no individual value overflows...
      ASSERT_NE(q[i], kIntIndefinite);
      // ...and no partial sum overflows (checked via 64-bit shadow).
      const std::int64_t wide = static_cast<std::int64_t>(acc[i]) + q[i];
      ASSERT_LE(std::abs(wide), 2147483648ll);
    }
    accumulate_wrapping(acc, q);
    for (std::size_t i = 0; i < d; ++i) exact[i] += static_cast<double>(u[i]);
  }
  for (std::size_t i = 0; i < d; ++i) {
    const double ours = static_cast<double>(acc[i]) / f;
    EXPECT_LE(std::abs(ours - exact[i]), bound + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(SweepWorkersAndMagnitudes, TheoremProperty,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 32),
                                            ::testing::Values(1e-6, 1e-3, 1.0, 1e3, 1e6)));

// --------------------------------------------------------------- int8 dither

TEST(Int8Stochastic, ValuesStayInRange) {
  sim::Rng rng = sim::Rng::stream(200, "i8");
  std::vector<float> x(1000);
  for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 5.0));
  std::vector<std::int32_t> q(x.size());
  quantize_i8_stochastic(x, 1000.0, q, rng); // deliberately huge f: must clamp
  for (auto v : q) {
    EXPECT_GE(v, -127);
    EXPECT_LE(v, 127);
  }
}

TEST(Int8Stochastic, RoundingIsUnbiased) {
  sim::Rng rng = sim::Rng::stream(201, "i8u");
  const float x = 0.37f; // f*x = 3.7: rounds to 3 or 4
  std::vector<float> in = {x};
  std::vector<std::int32_t> q(1);
  double total = 0;
  const int trials = 40'000;
  for (int t = 0; t < trials; ++t) {
    quantize_i8_stochastic(in, 10.0, q, rng);
    EXPECT_TRUE(q[0] == 3 || q[0] == 4);
    total += q[0];
  }
  EXPECT_NEAR(total / trials, 3.7, 0.02); // E[rho(x)] = x
}

TEST(Int8Stochastic, ExactIntegersAreDeterministic) {
  sim::Rng rng = sim::Rng::stream(202, "i8d");
  std::vector<float> in = {2.0f, -3.0f, 0.0f};
  std::vector<std::int32_t> q(3);
  quantize_i8_stochastic(in, 1.0, q, rng);
  EXPECT_EQ(q, (std::vector<std::int32_t>{2, -3, 0}));
}

TEST(Int8Stochastic, SafeScalingFactorKeepsRange) {
  const double f = max_safe_scaling_factor_i8(4.2);
  EXPECT_LE(f * 4.2, 127.0);
  EXPECT_THROW(max_safe_scaling_factor_i8(0.0), std::invalid_argument);
}

// ------------------------------------------------------------------ float16

TEST(Float16, KnownValues) {
  EXPECT_EQ(float_to_half(0.0f), 0x0000);
  EXPECT_EQ(float_to_half(-0.0f), 0x8000);
  EXPECT_EQ(float_to_half(1.0f), 0x3C00);
  EXPECT_EQ(float_to_half(-2.0f), 0xC000);
  EXPECT_EQ(float_to_half(65504.0f), 0x7BFF); // max finite half
  EXPECT_EQ(float_to_half(1e30f), 0x7C00);    // overflow -> +inf
  EXPECT_EQ(float_to_half(-1e30f), 0xFC00);   // overflow -> -inf
}

TEST(Float16, HalfToFloatKnownValues) {
  EXPECT_FLOAT_EQ(half_to_float(0x3C00), 1.0f);
  EXPECT_FLOAT_EQ(half_to_float(0xC000), -2.0f);
  EXPECT_FLOAT_EQ(half_to_float(0x7BFF), 65504.0f);
  EXPECT_FLOAT_EQ(half_to_float(0x0001), 5.960464477539063e-8f); // min subnormal
  EXPECT_TRUE(std::isinf(half_to_float(0x7C00)));
  EXPECT_TRUE(std::isnan(half_to_float(0x7E00)));
}

TEST(Float16, RoundtripAllFiniteHalves) {
  // Every finite half must survive half -> float -> half exactly.
  for (std::uint32_t h = 0; h < 65536; ++h) {
    const auto exp = (h >> 10) & 0x1F;
    if (exp == 0x1F) continue; // skip inf/NaN
    const float f = half_to_float(static_cast<half>(h));
    EXPECT_EQ(float_to_half(f), static_cast<half>(h)) << "half bits " << h;
  }
}

TEST(Float16, RoundToNearestEvenOnConversion) {
  // 1.0 + 2^-11 is exactly halfway between two halves; must round to even.
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(float_to_half(halfway), 0x3C00); // rounds down to 1.0 (even mantissa)
  const float above = 1.0f + std::ldexp(1.5f, -11);
  EXPECT_EQ(float_to_half(above), 0x3C01);
}

TEST(Float16, SubnormalUnderflowToZero) {
  EXPECT_EQ(float_to_half(1e-10f), 0x0000);
  EXPECT_EQ(float_to_half(-1e-10f), 0x8000);
}

TEST(Float16, VectorConversionMatchesScalar) {
  sim::Rng rng = sim::Rng::stream(5, "fp16");
  std::vector<float> in(1000);
  for (auto& v : in) v = static_cast<float>(rng.normal(0.0, 10.0));
  std::vector<half> hs(in.size());
  std::vector<float> out(in.size());
  float_to_half(in, hs);
  half_to_float(hs, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(hs[i], float_to_half(in[i]));
    // half has ~3 decimal digits; relative error < 2^-10
    EXPECT_NEAR(out[i], in[i], std::abs(in[i]) * 0.001f + 1e-6f);
  }
}

TEST(Fp16Table, ConvertsToFixedPoint) {
  Fp16Table t(8); // 8 fractional bits
  EXPECT_EQ(t.to_fixed(float_to_half(1.0f)), 256);
  EXPECT_EQ(t.to_fixed(float_to_half(-2.0f)), -512);
  EXPECT_EQ(t.to_fixed(float_to_half(0.0f)), 0);
  EXPECT_EQ(t.table_bytes(), 65536u * 4u);
}

TEST(Fp16Table, RoundtripThroughFixed) {
  Fp16Table t(12);
  for (float v : {0.5f, -1.25f, 3.75f, 100.0f, -0.0625f}) {
    const half h = float_to_half(v);
    const std::int32_t fixed = t.to_fixed(h);
    EXPECT_EQ(t.to_half(fixed), h) << v;
  }
}

TEST(Fp16Table, SaturatesInsteadOfWrapping) {
  Fp16Table t(30);
  // 65504 * 2^30 overflows int32: the table must saturate.
  EXPECT_EQ(t.to_fixed(float_to_half(65504.0f)), INT32_MAX);
  EXPECT_EQ(t.to_fixed(float_to_half(-65504.0f)), INT32_MIN);
}

TEST(Fp16Table, InvalidFracBitsThrow) {
  EXPECT_THROW(Fp16Table(-1), std::invalid_argument);
  EXPECT_THROW(Fp16Table(31), std::invalid_argument);
}

} // namespace
} // namespace switchml::quant
