// Dataplane model tests: the Tofino-like constraints must actually bite.
#include <gtest/gtest.h>

#include "dataplane/pipeline.hpp"

namespace switchml::dp {
namespace {

TEST(Pipeline, RegisterBytesAccounting) {
  Pipeline p(12);
  RegisterArray a(p, "a", 0, 128);
  RegisterArray b(p, "b", 1, 64);
  EXPECT_EQ(p.register_bytes(), (128u + 64u) * 8u);
}

TEST(Pipeline, StageOutOfRangeThrows) {
  Pipeline p(4);
  EXPECT_THROW(RegisterArray(p, "bad", 4, 8), std::invalid_argument);
  EXPECT_THROW(RegisterArray(p, "bad", -1, 8), std::invalid_argument);
}

TEST(RegisterArray, RmwReturnsOldValueAndStoresNew) {
  Pipeline p(2);
  RegisterArray r(p, "r", 0, 4);
  p.begin_packet();
  EXPECT_EQ(r.rmw(2, [](std::uint64_t v) { return v + 5; }), 0u);
  p.begin_packet();
  EXPECT_EQ(r.read(2), 5u);
}

TEST(RegisterArray, DoubleAccessInOnePacketThrows) {
  Pipeline p(2);
  RegisterArray r(p, "r", 0, 4);
  p.begin_packet();
  r.read(0);
  EXPECT_THROW(r.read(1), std::logic_error);
}

TEST(RegisterArray, AccessAllowedAgainNextPacket) {
  Pipeline p(2);
  RegisterArray r(p, "r", 0, 4);
  p.begin_packet();
  r.read(0);
  p.begin_packet();
  EXPECT_NO_THROW(r.read(0));
}

TEST(RegisterArray, BackwardsStageAccessThrows) {
  Pipeline p(4);
  RegisterArray early(p, "early", 0, 4);
  RegisterArray late(p, "late", 2, 4);
  p.begin_packet();
  late.read(0);
  EXPECT_THROW(early.read(0), std::logic_error);
}

TEST(RegisterArray, ForwardStageAccessAllowed) {
  Pipeline p(4);
  RegisterArray early(p, "early", 0, 4);
  RegisterArray mid(p, "mid", 1, 4);
  RegisterArray late(p, "late", 3, 4);
  p.begin_packet();
  early.read(0);
  mid.read(0);
  EXPECT_NO_THROW(late.read(0));
}

TEST(RegisterArray, SameStageTwoArraysAllowed) {
  Pipeline p(4);
  RegisterArray x(p, "x", 1, 4);
  RegisterArray y(p, "y", 1, 4);
  p.begin_packet();
  x.read(0);
  EXPECT_NO_THROW(y.read(0));
}

TEST(RegisterArray, OutOfRangeIndexThrows) {
  Pipeline p(2);
  RegisterArray r(p, "r", 0, 4);
  p.begin_packet();
  EXPECT_THROW(r.read(4), std::out_of_range);
}

TEST(RegisterArray, ControlPlaneFill) {
  Pipeline p(2);
  RegisterArray r(p, "r", 0, 4);
  r.control_plane_fill(0xAB);
  p.begin_packet();
  EXPECT_EQ(r.read(3), 0xABu);
}

TEST(Halves, PackAndUnpackVersions) {
  std::uint64_t w = 0;
  w = half_set(w, 0, 0x1111);
  w = half_set(w, 1, 0x2222);
  EXPECT_EQ(half_get(w, 0), 0x1111u);
  EXPECT_EQ(half_get(w, 1), 0x2222u);
  // Updating one half leaves the other intact.
  w = half_set(w, 0, 0x3333);
  EXPECT_EQ(half_get(w, 1), 0x2222u);
}

TEST(Halves, SignedInterpretationWrapsCorrectly) {
  std::uint64_t w = 0;
  w = half_store_i32(w, 1, -123);
  EXPECT_EQ(half_as_i32(w, 1), -123);
  EXPECT_EQ(half_as_i32(w, 0), 0);
  w = half_store_i32(w, 0, INT32_MIN);
  EXPECT_EQ(half_as_i32(w, 0), INT32_MIN);
  EXPECT_EQ(half_as_i32(w, 1), -123);
}

TEST(Pipeline, CountsPacketsAndAccesses) {
  Pipeline p(2);
  RegisterArray r(p, "r", 0, 4);
  for (int i = 0; i < 3; ++i) {
    p.begin_packet();
    r.read(0);
  }
  EXPECT_EQ(p.packets_processed(), 3u);
  EXPECT_EQ(p.register_accesses(), 3u);
}

} // namespace
} // namespace switchml::dp
