// ML substrate tests: gradient correctness (numerical check), training
// convergence, dataset generation, and the quantized-aggregation training
// properties behind Fig 10.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/mlp.hpp"
#include "ml/trainer.hpp"
#include "quant/fixed_point.hpp"

namespace switchml::ml {
namespace {

TEST(Dataset, BlobsHaveRequestedShape) {
  sim::Rng rng = sim::Rng::stream(1, "ds");
  auto d = make_blobs(100, 8, 3, 2.0, 0.5, rng);
  EXPECT_EQ(d.size(), 100u);
  EXPECT_EQ(d.X.size(), 800u);
  for (int y : d.y) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 3);
  }
}

TEST(Dataset, SplitPreservesSamples) {
  sim::Rng rng = sim::Rng::stream(2, "ds");
  auto d = make_blobs(100, 4, 2, 2.0, 0.5, rng);
  auto [a, b] = split(d, 0.8);
  EXPECT_EQ(a.size(), 80u);
  EXPECT_EQ(b.size(), 20u);
  EXPECT_EQ(a.X.size() + b.X.size(), d.X.size());
}

TEST(Dataset, ShardsCoverAllData) {
  sim::Rng rng = sim::Rng::stream(3, "ds");
  auto d = make_blobs(103, 4, 2, 2.0, 0.5, rng);
  std::size_t total = 0;
  for (int w = 0; w < 4; ++w) total += shard(d, w, 4).size();
  EXPECT_EQ(total, d.size());
}

TEST(Dataset, SeparatedBlobsAreLinearlySeparableIsh) {
  sim::Rng rng = sim::Rng::stream(4, "ds");
  auto d = make_blobs(500, 16, 4, 6.0, 0.3, rng);
  // With separation >> noise a fresh MLP should learn quickly.
  sim::Rng mrng = sim::Rng::stream(5, "mlp");
  Mlp mlp(16, 32, 4, mrng);
  std::vector<float> grad(mlp.n_params());
  for (int it = 0; it < 200; ++it) {
    mlp.loss_and_gradient(d.X, d.y, grad);
    mlp.apply_gradient(grad, 0.5);
  }
  EXPECT_GT(mlp.accuracy(d.X, d.y), 0.95);
}

TEST(Mlp, GradientMatchesNumericalDifferentiation) {
  sim::Rng rng = sim::Rng::stream(6, "grad");
  Mlp mlp(5, 7, 3, rng);
  const std::size_t batch = 4;
  std::vector<float> X(batch * 5);
  std::vector<int> y(batch);
  for (auto& v : X) v = static_cast<float>(rng.normal(0.0, 1.0));
  for (auto& l : y) l = static_cast<int>(rng.uniform_int(0, 2));

  std::vector<float> grad(mlp.n_params());
  mlp.loss_and_gradient(X, y, grad);

  // Central differences on a sample of parameters.
  const double eps = 1e-3;
  sim::Rng pick = sim::Rng::stream(7, "pick");
  for (int k = 0; k < 25; ++k) {
    const auto i =
        static_cast<std::size_t>(pick.uniform_int(0, static_cast<std::int64_t>(mlp.n_params()) - 1));
    const float saved = mlp.params()[i];
    mlp.params()[i] = static_cast<float>(saved + eps);
    std::vector<float> tmp(mlp.n_params());
    const double lp = mlp.loss_and_gradient(X, y, tmp);
    mlp.params()[i] = static_cast<float>(saved - eps);
    const double lm = mlp.loss_and_gradient(X, y, tmp);
    mlp.params()[i] = saved;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(numeric, grad[i], 2e-2 * std::max(1.0, std::abs(numeric)))
        << "param " << i;
  }
}

TEST(Mlp, LossDecreasesUnderSgd) {
  sim::Rng rng = sim::Rng::stream(8, "sgd");
  auto d = make_blobs(400, 8, 3, 3.0, 1.0, rng);
  Mlp mlp(8, 16, 3, rng);
  std::vector<float> grad(mlp.n_params());
  const double first = mlp.loss_and_gradient(d.X, d.y, grad);
  for (int it = 0; it < 100; ++it) {
    mlp.loss_and_gradient(d.X, d.y, grad);
    mlp.apply_gradient(grad, 0.2);
  }
  std::vector<float> tmp(mlp.n_params());
  EXPECT_LT(mlp.loss_and_gradient(d.X, d.y, tmp), first * 0.5);
}

TEST(Mlp, InvalidInputsThrow) {
  sim::Rng rng = sim::Rng::stream(9, "bad");
  Mlp mlp(4, 8, 2, rng);
  std::vector<float> X(4);
  std::vector<int> bad_label = {5};
  std::vector<float> grad(mlp.n_params());
  EXPECT_THROW(mlp.loss_and_gradient(X, bad_label, grad), std::invalid_argument);
  EXPECT_THROW(Mlp(0, 8, 2, rng), std::invalid_argument);
}

// ------------------------------------------------------------------ trainer

struct TrainerFixture : public ::testing::Test {
  TrainerFixture() : rng(sim::Rng::stream(10, "trainer")) {
    auto full = make_blobs(1600, 16, 4, 3.0, 1.0, rng);
    auto [tr, te] = split(full, 0.8);
    train_set = std::move(tr);
    test_set = std::move(te);
    tc.n_workers = 4;
    tc.hidden_dim = 32;
    tc.batch_per_worker = 16;
    tc.lr = 0.1;
  }
  sim::Rng rng;
  Dataset train_set, test_set;
  TrainerConfig tc;
};

TEST_F(TrainerFixture, ExactAggregationLearns) {
  DataParallelTrainer t(train_set, test_set, tc);
  ExactAggregator agg;
  auto r = t.train(300, agg);
  EXPECT_GT(r.final_test_accuracy, 0.8);
  EXPECT_GT(r.max_abs_gradient, 0.0f);
  EXPECT_LT(r.loss_per_iter.back(), r.loss_per_iter.front());
}

TEST_F(TrainerFixture, QuantizedMatchesExactForGoodScalingFactor) {
  DataParallelTrainer te_(train_set, test_set, tc);
  ExactAggregator exact;
  const auto base = te_.train(300, exact);

  const double f = quant::max_safe_scaling_factor(4, base.max_abs_gradient * 2.0);
  DataParallelTrainer tq(train_set, test_set, tc);
  QuantizedAggregator q(f);
  const auto quant_r = tq.train(300, q);
  EXPECT_NEAR(quant_r.final_test_accuracy, base.final_test_accuracy, 0.05);
}

TEST_F(TrainerFixture, QuantizedPlateauAcrossOrdersOfMagnitude) {
  // Fig 10: accuracy is flat over a wide range of f.
  DataParallelTrainer probe(train_set, test_set, tc);
  ExactAggregator exact;
  const auto base = probe.train(200, exact);
  const double f_max = quant::max_safe_scaling_factor(4, base.max_abs_gradient * 2.0);

  for (double rel : {1e-4, 1e-2, 1.0}) {
    DataParallelTrainer t(train_set, test_set, tc);
    QuantizedAggregator q(f_max * rel);
    const auto r = t.train(200, q);
    EXPECT_GT(r.final_test_accuracy, base.final_test_accuracy - 0.08) << "rel " << rel;
  }
}

TEST_F(TrainerFixture, OverflowRegimeDegradesTraining) {
  // Fig 10's right edge: f far beyond the Theorem-2 limit wraps the integer
  // sums and the conversion saturates to the int-indefinite value; training
  // must do clearly worse than baseline.
  DataParallelTrainer probe(train_set, test_set, tc);
  ExactAggregator exact;
  const auto base = probe.train(200, exact);
  const double f_max = quant::max_safe_scaling_factor(4, base.max_abs_gradient * 2.0);

  DataParallelTrainer t(train_set, test_set, tc);
  QuantizedAggregator q(f_max * 1e4);
  const auto r = t.train(200, q);
  EXPECT_LT(r.final_test_accuracy, base.final_test_accuracy - 0.2);
}

TEST_F(TrainerFixture, StochasticInt8ConvergesCloseToExact) {
  // The 8-bit extension: unbiased dithered quantization still learns.
  DataParallelTrainer probe(train_set, test_set, tc);
  ExactAggregator exact;
  const auto base = probe.train(300, exact);

  DataParallelTrainer t(train_set, test_set, tc);
  StochasticInt8Aggregator agg(77);
  const auto r = t.train(300, agg);
  EXPECT_GT(r.final_test_accuracy, base.final_test_accuracy - 0.08);
}

TEST_F(TrainerFixture, UnderflowRegimeStopsLearning) {
  // Fig 10's left edge: tiny f quantizes every gradient to zero.
  DataParallelTrainer t(train_set, test_set, tc);
  QuantizedAggregator q(1e-12);
  const auto r = t.train(200, q);
  // Accuracy stays at chance level (4 classes -> ~25%).
  EXPECT_LT(r.final_test_accuracy, 0.45);
}

} // namespace
} // namespace switchml::ml
