// End-to-end SwitchML protocol tests over the simulated fabric: correctness
// of streaming aggregation (Algorithms 1-4), loss recovery, version/shadow
// semantics across consecutive reductions, hierarchical composition, and the
// float-level public API.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/allreduce.hpp"
#include "core/cluster.hpp"
#include "core/stream_manager.hpp"
#include "quant/fixed_point.hpp"
#include "sim/rng.hpp"

namespace switchml::core {
namespace {

std::vector<std::vector<std::int32_t>> random_updates(int n, std::size_t d, std::uint64_t seed,
                                                      std::int32_t magnitude = 1'000'000) {
  sim::Rng rng = sim::Rng::stream(seed, "updates");
  std::vector<std::vector<std::int32_t>> u(static_cast<std::size_t>(n));
  for (auto& v : u) {
    v.resize(d);
    for (auto& e : v) e = static_cast<std::int32_t>(rng.uniform_int(-magnitude, magnitude));
  }
  return u;
}

std::vector<std::int32_t> exact_sum(const std::vector<std::vector<std::int32_t>>& u) {
  std::vector<std::int32_t> s(u.front().size(), 0);
  for (const auto& v : u)
    for (std::size_t i = 0; i < v.size(); ++i)
      s[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(s[i]) +
                                       static_cast<std::uint32_t>(v[i]));
  return s;
}

ClusterConfig small_config(int n = 4) {
  ClusterConfig c;
  c.n_workers = n;
  c.pool_size = 16;
  return c;
}

TEST(Cluster, AggregatesExactIntegerSums) {
  Cluster cluster(small_config(4));
  auto updates = random_updates(4, 4096, 1);
  auto result = cluster.reduce_i32(updates);
  const auto expect = exact_sum(updates);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(result.outputs[static_cast<std::size_t>(w)], expect);
  for (Time t : result.tat) EXPECT_GT(t, 0);
}

TEST(Cluster, SingleWorkerDegenerateCase) {
  Cluster cluster(small_config(1));
  auto updates = random_updates(1, 1024, 2);
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], updates[0]);
}

TEST(Cluster, TwoWorkers) {
  Cluster cluster(small_config(2));
  auto updates = random_updates(2, 2048, 3);
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], exact_sum(updates));
}

TEST(Cluster, TensorSmallerThanOnePacket) {
  Cluster cluster(small_config(4));
  auto updates = random_updates(4, 5, 4); // < k = 32
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[2], exact_sum(updates));
}

TEST(Cluster, TensorNotMultipleOfPacketSize) {
  Cluster cluster(small_config(4));
  auto updates = random_updates(4, 32 * 16 * 3 + 17, 5);
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], exact_sum(updates));
}

TEST(Cluster, TensorSmallerThanPool) {
  // chunks < s: only part of the pool is used.
  Cluster cluster(small_config(4));
  auto updates = random_updates(4, 32 * 3, 6);
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], exact_sum(updates));
}

TEST(Cluster, IntegerWraparoundMatchesSwitchAlu) {
  Cluster cluster(small_config(2));
  std::vector<std::vector<std::int32_t>> updates = {
      std::vector<std::int32_t>(64, INT32_MAX),
      std::vector<std::int32_t>(64, 1),
  };
  auto result = cluster.reduce_i32(updates);
  for (auto v : result.outputs[0]) EXPECT_EQ(v, INT32_MIN);
}

TEST(Cluster, ConsecutiveReductionsWithoutSwitchReset) {
  // The pool version bits must stay consistent across back-to-back
  // reductions (the shadow-copy state persists in the switch).
  Cluster cluster(small_config(4));
  for (int round = 0; round < 5; ++round) {
    auto updates = random_updates(4, 2048 + round * 32, 10 + static_cast<std::uint64_t>(round));
    auto result = cluster.reduce_i32(updates);
    ASSERT_EQ(result.outputs[0], exact_sum(updates)) << "round " << round;
  }
}

TEST(Cluster, SwitchCountersAreConsistent) {
  Cluster cluster(small_config(4));
  auto updates = random_updates(4, 4096, 7);
  cluster.reduce_i32(updates);
  const auto& c = cluster.agg_switch().counters();
  const std::uint64_t chunks = 4096 / 32;
  EXPECT_EQ(c.updates_received, 4 * chunks);
  EXPECT_EQ(c.completions, chunks);
  EXPECT_EQ(c.results_multicast, chunks);
  EXPECT_EQ(c.duplicate_updates, 0u);
  EXPECT_EQ(c.unicast_replies, 0u);
}

TEST(Cluster, WorkerCountersAreConsistent) {
  Cluster cluster(small_config(4));
  auto updates = random_updates(4, 4096, 8);
  cluster.reduce_i32(updates);
  const auto& c = cluster.worker(0).counters();
  EXPECT_EQ(c.updates_sent, 4096u / 32u);
  EXPECT_EQ(c.results_received, 4096u / 32u);
  EXPECT_EQ(c.retransmissions, 0u);
}

TEST(Cluster, RegisterUsageIsSmall) {
  // §5.5: pool_size 128 at 10 Gbps occupies ~32 KB of value registers (paper
  // counts the 32-bit slots; our 64-bit words hold both versions).
  ClusterConfig cfg;
  cfg.n_workers = 8;
  cfg.pool_size = 128;
  Cluster cluster(cfg);
  const std::size_t bytes = cluster.agg_switch().register_bytes();
  // 32 value arrays * 128 slots * 8B = 32 KiB + seen/count (2 KiB).
  EXPECT_EQ(bytes, 32u * 128u * 8u + 2u * 128u * 8u);
  EXPECT_LT(bytes, 10u * kMiB / 10u); // well under 10% of ~10 MB dataplane SRAM
}

TEST(Cluster, PhaseLagInvariantAcrossSlots) {
  Cluster cluster(small_config(4));
  auto updates = random_updates(4, 16 * 32 * 7, 9); // 7 full phases
  cluster.reduce_i32(updates);
  for (int w = 0; w < 4; ++w)
    for (std::uint32_t s = 0; s < 16; ++s)
      EXPECT_EQ(cluster.worker(w).slot_phase(s), 7u);
}

// ---- loss recovery ---------------------------------------------------------

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, AggregationIsExactUnderUniformLoss) {
  ClusterConfig cfg = small_config(4);
  cfg.loss_prob = GetParam();
  cfg.retransmit_timeout = msec(1);
  Cluster cluster(cfg);
  auto updates = random_updates(4, 8192, 11);
  auto result = cluster.reduce_i32(updates);
  const auto expect = exact_sum(updates);
  for (int w = 0; w < 4; ++w)
    ASSERT_EQ(result.outputs[static_cast<std::size_t>(w)], expect) << "loss " << GetParam();
  if (GetParam() >= 0.01) {
    std::uint64_t retx = 0;
    for (int w = 0; w < 4; ++w) retx += cluster.worker(w).counters().retransmissions;
    EXPECT_GT(retx, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0001, 0.001, 0.01, 0.05, 0.10));

TEST(ClusterLoss, ConsecutiveLossyReductionsStayCorrect) {
  ClusterConfig cfg = small_config(4);
  cfg.loss_prob = 0.02;
  Cluster cluster(cfg);
  for (int round = 0; round < 3; ++round) {
    auto updates = random_updates(4, 4096, 20 + static_cast<std::uint64_t>(round));
    auto result = cluster.reduce_i32(updates);
    ASSERT_EQ(result.outputs[0], exact_sum(updates)) << "round " << round;
  }
}

TEST(ClusterLoss, UpstreamOnlyLossTriggersSeenBitmapPath) {
  // Drop every 10th update packet on the way up; the seen bitmap must absorb
  // retransmitted duplicates of packets that DID arrive.
  ClusterConfig cfg = small_config(4);
  Cluster cluster(cfg);
  int counter = 0;
  for (int i = 0; i < 4; ++i) {
    cluster.link(i).set_drop_filter([&counter](const net::Node& sender, const net::Packet& p) {
      return p.kind == net::PacketKind::SmlUpdate && sender.id() < 100 && (++counter % 10) == 0;
    });
  }
  auto updates = random_updates(4, 8192, 12);
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], exact_sum(updates));
  EXPECT_GT(cluster.agg_switch().counters().duplicate_updates, 0u);
}

TEST(ClusterLoss, DownstreamOnlyLossTriggersShadowCopyReplies) {
  // Drop result packets toward worker 0 only: the switch must serve
  // retransmissions from the shadow copy via unicast replies.
  ClusterConfig cfg = small_config(4);
  Cluster cluster(cfg);
  int counter = 0;
  cluster.link(0).set_drop_filter([&counter](const net::Node& sender, const net::Packet& p) {
    return p.kind == net::PacketKind::SmlResult && sender.id() >= 100 && (++counter % 5) == 0;
  });
  auto updates = random_updates(4, 8192, 13);
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], exact_sum(updates));
  EXPECT_GT(cluster.agg_switch().counters().unicast_replies, 0u);
}

TEST(ClusterCorruption, ChecksumDetectsWireCorruptionAndRecovers) {
  // §3.4: corrupted packets are discarded by checksum; the retransmission
  // machinery then repairs them exactly like losses.
  ClusterConfig cfg = small_config(4);
  Cluster cluster(cfg);
  int corrupted = 0;
  for (int i = 0; i < 4; ++i)
    cluster.link(i).set_corrupt_filter([&corrupted](const net::Node&, const net::Packet& p) {
      if (p.kind == net::PacketKind::SmlUpdate && (corrupted < 20) && p.off % 640 == 0) {
        ++corrupted;
        return true;
      }
      return false;
    });
  auto updates = random_updates(4, 8192, 50);
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], exact_sum(updates));
  EXPECT_GT(corrupted, 0);
  EXPECT_EQ(cluster.agg_switch().counters().checksum_drops,
            static_cast<std::uint64_t>(corrupted));
}

TEST(ClusterCorruption, RandomBitErrorsEverywhereStillExact) {
  ClusterConfig cfg = small_config(4);
  Cluster cluster(cfg);
  for (int i = 0; i < 4; ++i) cluster.link(i).set_corrupt_prob(0.01);
  auto updates = random_updates(4, 8192, 51);
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], exact_sum(updates));
  std::uint64_t drops = cluster.agg_switch().counters().checksum_drops;
  for (int w = 0; w < 4; ++w) drops += cluster.worker(w).counters().checksum_drops;
  EXPECT_GT(drops, 0u);
}

// ---- hierarchical (§6) -----------------------------------------------------

TEST(Hierarchy, TwoRackAggregationIsExact) {
  HierarchyConfig cfg;
  cfg.racks = 2;
  cfg.workers_per_rack = 4;
  cfg.pool_size = 16;
  HierarchicalCluster h(cfg);
  auto updates = random_updates(8, 4096, 14);
  auto result = h.reduce_i32(updates);
  const auto expect = exact_sum(updates);
  for (int w = 0; w < 8; ++w) EXPECT_EQ(result.outputs[static_cast<std::size_t>(w)], expect);
}

TEST(Hierarchy, ThreeRacksUnevenWorkers) {
  HierarchyConfig cfg;
  cfg.racks = 3;
  cfg.workers_per_rack = 2;
  cfg.pool_size = 8;
  HierarchicalCluster h(cfg);
  auto updates = random_updates(6, 2048, 15);
  auto result = h.reduce_i32(updates);
  EXPECT_EQ(result.outputs[5], exact_sum(updates));
}

TEST(Hierarchy, SurvivesUniformLoss) {
  HierarchyConfig cfg;
  cfg.racks = 2;
  cfg.workers_per_rack = 3;
  cfg.pool_size = 8;
  cfg.loss_prob = 0.02;
  HierarchicalCluster h(cfg);
  auto updates = random_updates(6, 4096, 16);
  auto result = h.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], exact_sum(updates));
}

TEST(Hierarchy, LeafForwardsOnePartialPerSlotCompletion) {
  HierarchyConfig cfg;
  cfg.racks = 2;
  cfg.workers_per_rack = 4;
  cfg.pool_size = 16;
  HierarchicalCluster h(cfg);
  auto updates = random_updates(8, 4096, 17);
  h.reduce_i32(updates);
  const std::uint64_t chunks = 4096 / 32;
  EXPECT_EQ(h.leaf(0).counters().upstream_partials, chunks);
  EXPECT_EQ(h.root().counters().completions, chunks);
}

// ---- float public API ------------------------------------------------------

TEST(AllReduce, MatchesReferenceWithinTheorem1Bound) {
  Cluster cluster(small_config(4));
  sim::Rng rng = sim::Rng::stream(30, "floats");
  std::vector<std::vector<float>> inputs(4, std::vector<float>(4096));
  for (auto& t : inputs)
    for (auto& v : t) v = static_cast<float>(rng.normal(0.0, 1.0));

  auto result = all_reduce(cluster, inputs);
  const auto ref = reference_sum(inputs, false);
  const double bound = switchml::quant::aggregation_error_bound(4, result.scaling_factor) + 1e-4;
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(result.outputs[0][i], ref[i], bound);
}

TEST(AllReduce, AveragingDividesByN) {
  Cluster cluster(small_config(4));
  std::vector<std::vector<float>> inputs(4, std::vector<float>(256, 2.0f));
  AllReduceOptions opt;
  opt.average = true;
  auto result = all_reduce(cluster, inputs, opt);
  for (float v : result.outputs[0]) EXPECT_NEAR(v, 2.0f, 1e-4f);
}

TEST(AllReduce, ExplicitScalingFactorIsRespected) {
  Cluster cluster(small_config(2));
  std::vector<std::vector<float>> inputs = {{1.56f}, {4.23f}};
  AllReduceOptions opt;
  opt.scaling_factor = 100.0;
  auto result = all_reduce(cluster, inputs, opt);
  EXPECT_DOUBLE_EQ(result.scaling_factor, 100.0);
  EXPECT_NEAR(result.outputs[0][0], 5.79f, 1e-6f);
}

TEST(AllReduce, Float16WireFormat) {
  ClusterConfig cfg = small_config(4);
  cfg.wire_elem_bytes = 2; // §3.7 16-bit wire format, switch-side conversion
  Cluster cluster(cfg);
  sim::Rng rng = sim::Rng::stream(31, "fp16s");
  std::vector<std::vector<float>> inputs(4, std::vector<float>(2048));
  for (auto& t : inputs)
    for (auto& v : t) v = static_cast<float>(rng.normal(0.0, 1.0));
  AllReduceOptions opt;
  opt.wire = WireFormat::Float16;
  auto result = all_reduce(cluster, inputs, opt);
  const auto ref = reference_sum(inputs, false);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    // fp16 carries ~3 decimal digits; allow commensurate error.
    EXPECT_NEAR(result.outputs[0][i], ref[i], std::abs(ref[i]) * 0.01 + 0.05);
  }
}

TEST(AllReduce, Float16RequiresMatchingClusterWireFormat) {
  Cluster cluster(small_config(2)); // default 4-byte wire
  std::vector<std::vector<float>> inputs(2, std::vector<float>(64, 1.0f));
  AllReduceOptions opt;
  opt.wire = WireFormat::Float16;
  EXPECT_THROW(all_reduce(cluster, inputs, opt), std::invalid_argument);
}

TEST(AllReduce, Int8StochasticWireFormat) {
  ClusterConfig cfg = small_config(4);
  cfg.wire_elem_bytes = 1; // 8-bit extension wire format
  Cluster cluster(cfg);
  sim::Rng rng = sim::Rng::stream(33, "i8s");
  std::vector<std::vector<float>> inputs(4, std::vector<float>(2048));
  for (auto& t : inputs)
    for (auto& v : t) v = static_cast<float>(rng.normal(0.0, 1.0));
  AllReduceOptions opt;
  opt.wire = WireFormat::Int8Stochastic;
  auto result = all_reduce(cluster, inputs, opt);
  const auto ref = reference_sum(inputs, false);
  // Worst case per worker: 1/f quantization error; stochastic but bounded.
  const double bound = 4.0 / result.scaling_factor + 1e-4;
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(result.outputs[0][i], ref[i], bound);
}

TEST(AllReduce, TraceRecordsProtocolTimeline) {
  ClusterConfig cfg = small_config(2);
  Cluster cluster(cfg);
  auto& tracer = cluster.enable_tracing();
  std::vector<std::vector<std::int32_t>> updates(2, std::vector<std::int32_t>(64, 1));
  cluster.reduce_i32(updates);
  // 2 chunks x (2 updates + 2 results), each with a TX and a DELIVER record.
  std::size_t tx = 0, deliver = 0, updates_seen = 0, results_seen = 0;
  for (const auto& e : tracer.events()) {
    if (e.kind == net::TraceEventKind::Tx) ++tx;
    if (e.kind == net::TraceEventKind::Deliver) ++deliver;
    if (e.pkt == net::PacketKind::SmlUpdate) ++updates_seen;
    if (e.pkt == net::PacketKind::SmlResult) ++results_seen;
  }
  EXPECT_EQ(tx, deliver);
  EXPECT_EQ(updates_seen, 2u * 2u * 2u);  // (TX + deliver) x 2 workers x 2 chunks
  EXPECT_EQ(results_seen, 2u * 2u * 2u);
  // Events are time ordered.
  for (std::size_t i = 1; i < tracer.events().size(); ++i)
    EXPECT_LE(tracer.events()[i - 1].at, tracer.events()[i].at);
}

TEST(AllReduce, ResultsIdenticalAcrossWorkers) {
  Cluster cluster(small_config(4));
  sim::Rng rng = sim::Rng::stream(32, "same");
  std::vector<std::vector<float>> inputs(4, std::vector<float>(1024));
  for (auto& t : inputs)
    for (auto& v : t) v = static_cast<float>(rng.normal(0.0, 3.0));
  auto result = all_reduce(cluster, inputs);
  for (int w = 1; w < 4; ++w) EXPECT_EQ(result.outputs[static_cast<std::size_t>(w)], result.outputs[0]);
}

// ---- stream manager ---------------------------------------------------------

TEST(StreamManager, MultiTensorBatchCompletesInOrder) {
  Cluster cluster(small_config(4));
  const std::size_t sizes[] = {100, 1000, 37, 4096};
  const int n_tensors = 4;

  std::vector<std::vector<std::vector<float>>> in(4);   // [worker][tensor]
  std::vector<std::vector<std::vector<float>>> out(4);  // [worker][tensor]
  sim::Rng rng = sim::Rng::stream(40, "st");
  for (int w = 0; w < 4; ++w) {
    in[static_cast<std::size_t>(w)].resize(n_tensors);
    out[static_cast<std::size_t>(w)].resize(n_tensors);
    for (int t = 0; t < n_tensors; ++t) {
      in[static_cast<std::size_t>(w)][static_cast<std::size_t>(t)].resize(sizes[t]);
      out[static_cast<std::size_t>(w)][static_cast<std::size_t>(t)].resize(sizes[t]);
      for (auto& v : in[static_cast<std::size_t>(w)][static_cast<std::size_t>(t)])
        v = static_cast<float>(rng.normal(0.0, 1.0));
    }
  }

  std::vector<std::unique_ptr<StreamManager>> mgrs;
  std::vector<std::vector<int>> completion_order(4);
  for (int w = 0; w < 4; ++w) {
    auto m = std::make_unique<StreamManager>(cluster.worker(w));
    for (int t = 0; t < n_tensors; ++t) {
      m->submit(in[static_cast<std::size_t>(w)][static_cast<std::size_t>(t)],
                out[static_cast<std::size_t>(w)][static_cast<std::size_t>(t)], 1e6,
                [&completion_order, w, t] { completion_order[static_cast<std::size_t>(w)].push_back(t); });
    }
    mgrs.push_back(std::move(m));
  }
  for (auto& m : mgrs) m->flush();
  cluster.simulation().run();

  for (int w = 0; w < 4; ++w) {
    ASSERT_EQ(completion_order[static_cast<std::size_t>(w)].size(), 4u);
    EXPECT_TRUE(mgrs[static_cast<std::size_t>(w)]->idle());
    for (int t = 0; t < n_tensors; ++t) {
      // Per-tensor reference sum.
      std::vector<std::vector<float>> contrib;
      for (int v = 0; v < 4; ++v)
        contrib.push_back(in[static_cast<std::size_t>(v)][static_cast<std::size_t>(t)]);
      const auto ref = reference_sum(contrib, false);
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(out[static_cast<std::size_t>(w)][static_cast<std::size_t>(t)][i], ref[i],
                    4.0 / 1e6 + 1e-4)
            << "worker " << w << " tensor " << t;
    }
  }
}

TEST(StreamManager, SubmitDuringRunGoesToNextBatch) {
  // All workers must submit the same tensor sequence (Horovod ordering);
  // here both queue their second tensor from inside the first tensor's
  // completion callback, exercising the auto-reflush path.
  Cluster cluster(small_config(2));
  std::vector<float> a0(512, 1.0f), a1(512, 2.0f), b0(512, 3.0f), b1(512, 4.0f);
  std::vector<float> oa0(512), oa1(512), ob0(512), ob1(512);

  StreamManager m0(cluster.worker(0));
  StreamManager m1(cluster.worker(1));
  bool second_done = false;

  m0.submit(a0, oa0, 1e6, [&] {
    m0.submit(a1, oa1, 1e6, [&] { second_done = true; });
    m0.flush();
  });
  m1.submit(b0, ob0, 1e6, [&] {
    m1.submit(b1, ob1, 1e6, nullptr);
    m1.flush();
  });
  m0.flush();
  m1.flush();
  cluster.simulation().run();

  EXPECT_TRUE(second_done);
  for (float v : oa0) ASSERT_NEAR(v, 4.0f, 1e-4f);
  for (float v : oa1) ASSERT_NEAR(v, 6.0f, 1e-4f);
  for (float v : ob1) ASSERT_NEAR(v, 6.0f, 1e-4f);
}

} // namespace
} // namespace switchml::core
