// Tests for the dependency-free JSON layer (common/json.hpp): every value
// type, a malformed-input corpus (truncation, bad escapes, depth bombs,
// duplicate keys), parse-error line/column accuracy, and a seeded fuzz loop
// pinning parse(dump(v)) == v across 2000 random documents.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace switchml::json {
namespace {

TEST(JsonParse, EveryValueType) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-2.5E-2").as_double(), -0.025);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
  const Value arr = parse("[1, \"two\", null, [true]]");
  ASSERT_EQ(arr.as_array().size(), 4u);
  EXPECT_EQ(arr.as_array()[1].as_string(), "two");
  EXPECT_TRUE(arr.as_array()[3].as_array()[0].as_bool());
  const Value obj = parse("{\"a\": 1, \"b\": {\"c\": []}}");
  ASSERT_NE(obj.find("b"), nullptr);
  EXPECT_TRUE(obj.find("b")->find("c")->as_array().empty());
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonParse, IntVsDoubleKind) {
  EXPECT_EQ(parse("7").kind(), Kind::Int);
  EXPECT_EQ(parse("7.0").kind(), Kind::Double);
  EXPECT_EQ(parse("7e0").kind(), Kind::Double);
  // Past int64 range, numbers degrade to double instead of failing.
  EXPECT_EQ(parse("9223372036854775807").as_int(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(parse("-9223372036854775808").as_int(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(parse("9223372036854775808").kind(), Kind::Double);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("\"\\\/\b\f\n\r\t")").as_string(), "\"\\/\b\f\n\r\t");
  EXPECT_EQ(parse(R"("\u0041\u00e9")").as_string(), "A\xC3\xA9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse(R"("\ud83d\ude00")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, InsertionOrderPreserved) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& o = v.as_object();
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o[0].first, "z");
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(o[2].first, "m");
}

// --- malformed-input corpus --------------------------------------------------

TEST(JsonParse, MalformedCorpus) {
  const char* bad[] = {
      "",                    // empty
      "   ",                 // whitespace only
      "{",                   // truncated object
      "[1, 2",               // truncated array
      "\"unterminated",      // truncated string
      "{\"a\": }",           // missing value
      "{\"a\" 1}",           // missing colon
      "{a: 1}",              // unquoted key
      "[1, 2,]",             // trailing comma
      "[1 2]",               // missing comma
      "nul",                 // truncated literal
      "truex",               // literal with trailing junk
      "01",                  // leading zero
      "-",                   // bare sign
      "1.",                  // missing fraction digits
      "1e",                  // missing exponent digits
      ".5",                  // missing integer part
      "+1",                  // leading plus
      "NaN",                 // not JSON
      "Infinity",            // not JSON
      "'single'",            // wrong quotes
      "\"bad \\x escape\"",  // unknown escape
      "\"\\u12\"",           // short unicode escape
      "\"\\ud83d\"",         // unpaired high surrogate
      "\"\\ude00\"",         // unpaired low surrogate
      "\"ctrl \x01\"",       // raw control char in string
      "1 2",                 // two top-level values
      "[] []",               // trailing garbage
      "{\"a\": 1} x",        // trailing garbage after object
      "// comment\n1",       // comments are not JSON
  };
  for (const char* text : bad)
    EXPECT_THROW((void)parse(text), ParseError) << "accepted: " << text;
}

TEST(JsonParse, DuplicateKeysRejected) {
  try {
    (void)parse(R"({"a": 1, "b": 2, "a": 3})");
    FAIL() << "duplicate key accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos) << e.what();
  }
}

TEST(JsonParse, DepthBombRejected) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_THROW((void)parse(deep), ParseError);
  // Exactly at the cap parses; one past fails.
  std::string at_cap, past_cap;
  for (int i = 0; i < 64; ++i) at_cap += "[";
  for (int i = 0; i < 64; ++i) at_cap += "]";
  EXPECT_NO_THROW((void)parse(at_cap));
  past_cap = "[" + at_cap + "]";
  EXPECT_THROW((void)parse(past_cap), ParseError);
  // The cap is configurable.
  EXPECT_NO_THROW((void)parse(past_cap, 65));
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    (void)parse("{\n  \"a\": 1,\n  \"b\": oops\n}");
    FAIL() << "parsed";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line, 3);
    EXPECT_EQ(e.column, 8);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(JsonParse, MissingFileNamesPath) {
  try {
    (void)parse_file("/nonexistent/definitely_missing.json");
    FAIL() << "opened";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("definitely_missing.json"), std::string::npos);
  }
}

// --- emitter -----------------------------------------------------------------

TEST(JsonDump, RoundTripPreservesKindAndValue) {
  const char* docs[] = {
      "null", "true", "[1,2.5,\"x\"]", R"({"a":{"b":[null,false]},"c":-0.125})",
  };
  for (const char* text : docs) {
    const Value v = parse(text);
    EXPECT_EQ(parse(v.dump()), v) << text;
    EXPECT_EQ(parse(v.dump(true)), v) << text; // pretty form parses too
  }
  // A whole double stays a double across the round trip (".0" suffix).
  const Value d = parse("7.0");
  EXPECT_EQ(parse(d.dump()).kind(), Kind::Double);
  // Shortest-form doubles are bit-exact.
  const Value pi = parse("3.141592653589793");
  EXPECT_EQ(parse(pi.dump()).as_double(), pi.as_double());
}

TEST(JsonDump, EscapesControlCharacters) {
  const Value v = std::string("a\"b\\c\nd\x01");
  const std::string s = v.dump();
  EXPECT_EQ(parse(s).as_string(), v.as_string());
  EXPECT_NE(s.find("\\u0001"), std::string::npos);
}

TEST(JsonDump, NonFiniteDoublesThrow) {
  EXPECT_THROW((void)Value(std::numeric_limits<double>::quiet_NaN()).dump(), std::runtime_error);
  EXPECT_THROW((void)Value(std::numeric_limits<double>::infinity()).dump(), std::runtime_error);
}

// --- seeded fuzz round-trip --------------------------------------------------

class Rng {
public:
  explicit Rng(std::uint64_t seed) : x_(seed) {}
  std::uint64_t next() {
    x_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }

private:
  std::uint64_t x_;
};

Value random_value(Rng& rng, int depth) {
  switch (depth > 6 ? rng.below(5) : rng.below(7)) {
  case 0: return Value();
  case 1: return Value(rng.below(2) == 0);
  case 2: return Value(static_cast<std::int64_t>(rng.next()));
  case 3: {
    // Doubles from a wide dynamic range, always finite.
    const double mant = static_cast<double>(static_cast<std::int64_t>(rng.next())) / 1e3;
    const int exp = static_cast<int>(rng.below(40)) - 20;
    return Value(mant * std::pow(10.0, exp));
  }
  case 4: {
    std::string s;
    const std::uint64_t len = rng.below(12);
    for (std::uint64_t i = 0; i < len; ++i) {
      const std::uint64_t c = rng.below(96);
      if (c < 90)
        s += static_cast<char>(' ' + c);
      else if (c < 93)
        s += static_cast<char>(rng.below(0x20)); // control chars
      else
        s += "\xC3\xA9"; // multi-byte UTF-8
    }
    return Value(std::move(s));
  }
  case 5: {
    Array a;
    const std::uint64_t n = rng.below(5);
    for (std::uint64_t i = 0; i < n; ++i) a.push_back(random_value(rng, depth + 1));
    return Value(std::move(a));
  }
  default: {
    Value o(Object{});
    const std::uint64_t n = rng.below(5);
    for (std::uint64_t i = 0; i < n; ++i)
      o.set("k" + std::to_string(i), random_value(rng, depth + 1));
    return o;
  }
  }
}

TEST(JsonFuzz, ParseDumpRoundTrip2000) {
  Rng rng(20260808);
  for (int i = 0; i < 2000; ++i) {
    const Value v = random_value(rng, 0);
    std::string dumped;
    ASSERT_NO_THROW(dumped = v.dump(i % 2 == 0)) << "iter " << i;
    Value back;
    ASSERT_NO_THROW(back = parse(dumped)) << "iter " << i << ": " << dumped;
    EXPECT_EQ(back, v) << "iter " << i << ": " << dumped;
    // Emission is a fixed point: dump(parse(dump(v))) == dump(v).
    EXPECT_EQ(back.dump(), v.dump()) << "iter " << i;
  }
}

} // namespace
} // namespace switchml::json
