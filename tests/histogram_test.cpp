#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "common/metrics.hpp"

namespace switchml {
namespace {

TEST(Histogram, EmptyIsWellDefined) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_EQ(h.str(), "(no samples)");
}

TEST(Histogram, ExactAggregatesAndUnitResolutionBelowSubBucketCount) {
  Histogram h;
  // Values below 2^precision_bits (=128) are recorded at unit resolution:
  // every percentile is exact.
  for (std::int64_t v = 0; v < 128; ++v) h.record(v);
  EXPECT_EQ(h.count(), 128u);
  EXPECT_EQ(h.sum(), 127 * 128 / 2);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 127);
  EXPECT_EQ(h.percentile(50), 63);   // rank ceil(0.5*128)=64 -> value 63
  EXPECT_EQ(h.percentile(100), 127);
  EXPECT_EQ(h.percentile(0), 0);
}

TEST(Histogram, BucketBoundariesRoundTrip) {
  Histogram h;
  // index_of/value_at_index must agree: the highest-equivalent value of a
  // bucket maps back into the same bucket, across octave boundaries.
  const std::int64_t probes[] = {0,   1,    63,   64,        127,        128,     129,
                                 255, 256,  257,  511,       512,        1023,    1024,
                                 1u << 20,  (1u << 20) + 1,  123456789,  h.config().max_value};
  for (std::int64_t v : probes) {
    const std::size_t idx = h.index_of(v);
    const std::int64_t hi = h.value_at_index(idx);
    EXPECT_GE(hi, v) << "value " << v;
    EXPECT_EQ(h.index_of(hi), idx) << "value " << v;
  }
  // Adjacent values on either side of an octave boundary land in different
  // buckets once resolution drops below 1.
  EXPECT_NE(h.index_of(127), h.index_of(128));
  EXPECT_EQ(h.index_of(128), h.index_of(129)); // resolution 2 in bucket 1
}

TEST(Histogram, BoundedRelativeError) {
  Histogram h;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const auto v = static_cast<std::int64_t>(rng() % 1'000'000'000ULL);
    h.record(v);
    const std::int64_t hi = h.value_at_index(h.index_of(v));
    // p=7 -> relative error at most 2^-6.
    EXPECT_GE(hi, v);
    EXPECT_LE(static_cast<double>(hi - v), static_cast<double>(v) / 64.0 + 1.0);
  }
}

TEST(Histogram, PercentileMonotonicity) {
  Histogram h;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 5000; ++i)
    h.record(static_cast<std::int64_t>(rng() % 10'000'000ULL));
  std::int64_t prev = h.percentile(0);
  for (double p = 1.0; p <= 100.0; p += 0.5) {
    const std::int64_t cur = h.percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
  EXPECT_EQ(h.percentile(0), h.min());
  EXPECT_EQ(h.percentile(100), h.max());
  const Histogram::Quantiles q = h.quantiles();
  EXPECT_EQ(q.count, h.count());
  EXPECT_EQ(q.p50, h.percentile(50));
  EXPECT_EQ(q.p90, h.percentile(90));
  EXPECT_EQ(q.p99, h.percentile(99));
  EXPECT_EQ(q.p999, h.percentile(99.9));
  EXPECT_LE(q.p50, q.p90);
  EXPECT_LE(q.p90, q.p99);
  EXPECT_LE(q.p99, q.p999);
}

TEST(Histogram, OverflowBucket) {
  Histogram h(Histogram::Config{.precision_bits = 7, .max_value = 1000});
  h.record(500);
  h.record(5000);   // beyond max_value
  h.record(50000);  // beyond max_value
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.sum(), 500 + 5000 + 50000); // sum stays exact
  EXPECT_EQ(h.max(), 50000);              // max stays exact
  // Ranks in the overflow bucket report the exact max.
  EXPECT_EQ(h.percentile(99), 50000);
  // Ranks below it still resolve through the normal buckets.
  EXPECT_LE(h.percentile(33), 1000);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.sum(), 0);
}

TEST(Histogram, MergeAddsBucketsAndAggregates) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(i * 10);
  for (int i = 0; i < 50; ++i) b.record(1'000'000 + i);
  const std::int64_t sum_before = a.sum() + b.sum();
  a.merge(b);
  EXPECT_EQ(a.count(), 150u);
  EXPECT_EQ(a.sum(), sum_before);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 1'000'049);
  EXPECT_GE(a.percentile(99), 1'000'000);
  // Merging an empty histogram is a no-op on min/max.
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 1'000'049);
}

TEST(Histogram, MergeRejectsLayoutMismatch) {
  Histogram a;
  Histogram coarse(Histogram::Config{.precision_bits = 4, .max_value = 3'600'000'000'000LL});
  Histogram shallow(Histogram::Config{.precision_bits = 7, .max_value = 1000});
  EXPECT_THROW(a.merge(coarse), std::invalid_argument);
  EXPECT_THROW(a.merge(shallow), std::invalid_argument);
}

TEST(Histogram, ResetKeepsLayout) {
  Histogram h;
  const std::size_t buckets = h.counts().size();
  for (int i = 0; i < 100; ++i) h.record(i);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.counts().size(), buckets);
  EXPECT_EQ(h.percentile(50), 0);
  h.record(42);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
}

TEST(Histogram, RecordIsAllocationFree) {
  Histogram h;
  const auto* data_before = h.counts().data();
  for (std::int64_t v = 0; v < 100'000; v += 37) h.record(v);
  h.record(h.config().max_value + 1); // overflow path too
  EXPECT_EQ(h.counts().data(), data_before);
}

TEST(Histogram, QuantilesOfDeltaCounts) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(i);
  std::vector<std::uint64_t> baseline = h.counts();
  for (int i = 0; i < 1000; ++i) h.record(1'000'000 + i);
  // Delta between two count snapshots covers only the second batch.
  std::vector<std::uint64_t> delta = h.counts();
  for (std::size_t i = 0; i < delta.size(); ++i) delta[i] -= baseline[i];
  const Histogram::Quantiles q = h.quantiles_of(delta);
  EXPECT_EQ(q.count, 1000u);
  EXPECT_GE(q.p50, 1'000'000);
  EXPECT_LE(q.p999, h.value_at_index(h.index_of(1'000'999)));
  EXPECT_THROW((void)h.quantiles_of(std::vector<std::uint64_t>(3, 0)), std::invalid_argument);
  // All-zero delta (idle interval) reports zeros, not garbage.
  const Histogram::Quantiles idle = h.quantiles_of(std::vector<std::uint64_t>(delta.size(), 0));
  EXPECT_EQ(idle.count, 0u);
  EXPECT_EQ(idle.p999, 0);
}

TEST(Histogram, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    Histogram h;
    std::mt19937_64 rng(1234);
    for (int i = 0; i < 10'000; ++i) h.record(static_cast<std::int64_t>(rng() % 50'000'000));
    return h.quantiles();
  };
  const Histogram::Quantiles a = run();
  const Histogram::Quantiles b = run();
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.p999, b.p999);
}

TEST(Histogram, ConfigValidation) {
  EXPECT_THROW(Histogram(Histogram::Config{.precision_bits = 0, .max_value = 100}),
               std::invalid_argument);
  EXPECT_THROW(Histogram(Histogram::Config{.precision_bits = 15, .max_value = 100}),
               std::invalid_argument);
  EXPECT_THROW(Histogram(Histogram::Config{.precision_bits = 7, .max_value = 0}),
               std::invalid_argument);
}

TEST(MetricsRegistryHistogram, SnapshotAndJson) {
  MetricsRegistry registry;
  Histogram h;
  registry.add_histogram("worker-0.rtt_ns", &h);
  EXPECT_THROW(registry.add_histogram("worker-0.rtt_ns", &h), std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
  for (int i = 1; i <= 100; ++i) h.record(i * 1000);
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  ASSERT_TRUE(snap.has_histogram("worker-0.rtt_ns"));
  const MetricsRegistry::HistogramStats& stats = snap.histogram("worker-0.rtt_ns");
  EXPECT_EQ(stats.count, 100u);
  EXPECT_EQ(stats.min, 1000);
  EXPECT_EQ(stats.max, 100'000);
  EXPECT_EQ(stats.p50, h.percentile(50));
  EXPECT_EQ(stats.p999, h.percentile(99.9));
  EXPECT_THROW((void)snap.histogram("nope"), std::out_of_range);
  const std::string json = snap.json();
  EXPECT_NE(json.find("\"histograms\":{\"worker-0.rtt_ns\":{\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
  EXPECT_NE(snap.table().find("worker-0.rtt_ns"), std::string::npos);
}

} // namespace
} // namespace switchml
