// Network substrate tests: packet wire sizes, link timing/queueing/loss,
// NIC core model, L2 switch forwarding/multicast, reliable transport.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/l2switch.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"
#include "net/packet.hpp"
#include "net/reliable.hpp"

namespace switchml::net {
namespace {

TEST(Packet, SwitchMlUpdateIs180Bytes) {
  // §3.4: k = 32 elements, 180-byte packets.
  Packet p;
  p.kind = PacketKind::SmlUpdate;
  p.elem_count = 32;
  p.elem_bytes = 4;
  EXPECT_EQ(p.wire_bytes(), 180u);
}

TEST(Packet, MtuVariantIs1516Bytes) {
  // §5.5: 366 elements in a 1516-byte packet.
  Packet p;
  p.kind = PacketKind::SmlResult;
  p.elem_count = 366;
  p.elem_bytes = 4;
  EXPECT_EQ(p.wire_bytes(), 1516u);
}

TEST(Packet, Fp16HalvesPayload) {
  Packet p;
  p.kind = PacketKind::SmlUpdate;
  p.elem_count = 32;
  p.elem_bytes = 2;
  EXPECT_EQ(p.wire_bytes(), 52u + 64u);
}

TEST(Packet, SegmentAndAckSizes) {
  Packet seg;
  seg.kind = PacketKind::Segment;
  seg.seg_len = 1460;
  EXPECT_EQ(seg.wire_bytes(), 1514u);
  Packet ack;
  ack.kind = PacketKind::Ack;
  EXPECT_EQ(ack.wire_bytes(), 64u);
}

TEST(Packet, ChecksumDetectsPayloadAndHeaderMutations) {
  Packet p;
  p.kind = PacketKind::SmlUpdate;
  p.wid = 3;
  p.idx = 7;
  p.off = 1234;
  p.values = {1, -2, 3};
  p.seal();
  EXPECT_TRUE(p.verify());
  p.values[1] ^= 0x10;
  EXPECT_FALSE(p.verify());
  p.values[1] ^= 0x10;
  EXPECT_TRUE(p.verify());
  p.off ^= 1;
  EXPECT_FALSE(p.verify());
}

// Collects delivered packets with timestamps.
class SinkNode : public Node {
public:
  using Node::Node;
  void receive(Packet&& p, int port) override {
    arrivals.emplace_back(sim_.now(), port, std::move(p));
  }
  std::vector<std::tuple<Time, int, Packet>> arrivals;
};

Packet raw_packet(std::uint32_t len, NodeId src = 0, NodeId dst = 1) {
  Packet p;
  p.kind = PacketKind::Segment;
  p.seg_len = len;
  p.src = src;
  p.dst = dst;
  return p;
}

class LinkFixture : public ::testing::Test {
protected:
  sim::Simulation sim;
  SinkNode a{sim, 0, "a"};
  SinkNode b{sim, 1, "b"};
  LinkConfig cfg;
};

TEST_F(LinkFixture, DeliveryTimeIsSerializationPlusPropagation) {
  cfg.rate = gbps(10);
  cfg.propagation = nsec(500);
  Link link(sim, cfg, a, 0, b, 0, 1);
  Packet p = raw_packet(1460 - kSegmentHeaderBytes); // 1460-byte frame
  const Time ser = serialization_time(p.wire_bytes(), cfg.rate);
  link.send_from(a, std::move(p));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(std::get<0>(b.arrivals[0]), ser + cfg.propagation);
}

TEST_F(LinkFixture, BackToBackPacketsSerialize) {
  cfg.rate = gbps(10);
  cfg.propagation = 0;
  Link link(sim, cfg, a, 0, b, 0, 1);
  const Time ser = serialization_time(raw_packet(946).wire_bytes(), cfg.rate); // 1000B
  link.send_from(a, raw_packet(946));
  link.send_from(a, raw_packet(946));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(std::get<0>(b.arrivals[0]), ser);
  EXPECT_EQ(std::get<0>(b.arrivals[1]), 2 * ser);
}

TEST_F(LinkFixture, EarliestStartDelaysTransmission) {
  cfg.rate = gbps(10);
  cfg.propagation = 0;
  Link link(sim, cfg, a, 0, b, 0, 1);
  Packet p = raw_packet(946);
  const Time ser = serialization_time(p.wire_bytes(), cfg.rate);
  link.send_from(a, std::move(p), usec(5));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(std::get<0>(b.arrivals[0]), usec(5) + ser);
}

TEST_F(LinkFixture, FullDuplexDirectionsAreIndependent) {
  cfg.rate = gbps(10);
  cfg.propagation = 0;
  Link link(sim, cfg, a, 0, b, 0, 1);
  link.send_from(a, raw_packet(946));
  link.send_from(b, raw_packet(946));
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(a.arrivals.size(), 1u);
  // Same delivery time: no contention between directions.
  EXPECT_EQ(std::get<0>(a.arrivals[0]), std::get<0>(b.arrivals[0]));
}

TEST_F(LinkFixture, QueueOverflowDropsTail) {
  cfg.rate = gbps(1);
  cfg.queue_limit_bytes = 3000;
  Link link(sim, cfg, a, 0, b, 0, 1);
  for (int i = 0; i < 5; ++i) link.send_from(a, raw_packet(946)); // 1000B each
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 3u);
  EXPECT_EQ(link.counters_from(a).dropped_queue, 2u);
}

TEST_F(LinkFixture, BacklogDrainsOverTime) {
  cfg.rate = gbps(1);
  cfg.queue_limit_bytes = 3000;
  Link link(sim, cfg, a, 0, b, 0, 1);
  for (int i = 0; i < 3; ++i) link.send_from(a, raw_packet(946));
  // After the first 3 serialize (8us each at 1 Gbps), there is room again.
  sim.schedule_at(usec(50), [&] { link.send_from(a, raw_packet(946)); });
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 4u);
  EXPECT_EQ(link.counters_from(a).dropped_queue, 0u);
}

TEST_F(LinkFixture, BernoulliLossDropsApproximatelyPRate) {
  cfg.rate = gbps(100);
  cfg.loss_prob = 0.1;
  cfg.queue_limit_bytes = 64 * kMiB; // the burst must not tail-drop
  Link link(sim, cfg, a, 0, b, 0, 7);
  const int n = 20'000;
  for (int i = 0; i < n; ++i) link.send_from(a, raw_packet(60));
  sim.run();
  const double delivered = static_cast<double>(b.arrivals.size()) / n;
  EXPECT_NEAR(delivered, 0.9, 0.01);
  EXPECT_EQ(link.counters_from(a).dropped_loss + b.arrivals.size(), static_cast<std::size_t>(n));
}

TEST_F(LinkFixture, DropFilterInjectsDeterministicLoss) {
  Link link(sim, cfg, a, 0, b, 0, 1);
  int dropped = 0;
  link.set_drop_filter([&](const Node& sender, const Packet& p) {
    if (&sender == &a && p.seq == 1) {
      ++dropped;
      return true;
    }
    return false;
  });
  for (std::uint64_t s = 0; s < 3; ++s) {
    Packet p = raw_packet(100);
    p.seq = s;
    link.send_from(a, std::move(p));
  }
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(dropped, 1);
}

TEST_F(LinkFixture, NonEndpointSenderThrows) {
  Link link(sim, cfg, a, 0, b, 0, 1);
  SinkNode c{sim, 2, "c"};
  EXPECT_THROW(link.send_from(c, raw_packet(10)), std::invalid_argument);
}

// --------------------------------------------------------------------- NIC

TEST(HostNic, TxReservesCoreTimeSequentially) {
  sim::Simulation sim;
  NicConfig cfg;
  cfg.cores = 1;
  cfg.per_packet_tx = nsec(100);
  cfg.per_batch_overhead = 0;
  cfg.tx_latency = 0;
  cfg.rx_latency = 0;
  HostNic nic(sim, cfg);
  EXPECT_EQ(nic.tx_ready(0), 100);
  EXPECT_EQ(nic.tx_ready(0), 200); // same core: serialized
}

TEST(HostNic, CoresAreIndependent) {
  sim::Simulation sim;
  NicConfig cfg;
  cfg.cores = 2;
  cfg.per_packet_tx = nsec(100);
  cfg.per_batch_overhead = 0;
  cfg.tx_latency = 0;
  HostNic nic(sim, cfg);
  EXPECT_EQ(nic.tx_ready(0), 100);
  EXPECT_EQ(nic.tx_ready(1), 100);
}

TEST(HostNic, PerByteCostScalesWithSize) {
  sim::Simulation sim;
  NicConfig cfg;
  cfg.cores = 1;
  cfg.per_packet_tx = nsec(100);
  cfg.per_byte_tx = 1.0;
  cfg.per_batch_overhead = 0;
  cfg.tx_latency = 0;
  HostNic nic(sim, cfg);
  EXPECT_EQ(nic.tx_ready(0, 50), 150);
}

TEST(HostNic, BatchOverheadIsAmortized) {
  sim::Simulation sim;
  NicConfig cfg;
  cfg.cores = 1;
  cfg.per_packet_tx = nsec(10);
  cfg.per_batch_overhead = nsec(320);
  cfg.batch_size = 32;
  cfg.tx_latency = 0;
  HostNic nic(sim, cfg);
  EXPECT_EQ(nic.tx_ready(0), 20); // 10 + 320/32
}

TEST(HostNic, TxLatencyDelaysWireWithoutOccupyingCore) {
  sim::Simulation sim;
  NicConfig cfg;
  cfg.cores = 1;
  cfg.per_packet_tx = nsec(100);
  cfg.per_batch_overhead = 0;
  cfg.tx_latency = usec(4);
  HostNic nic(sim, cfg);
  EXPECT_EQ(nic.tx_ready(0), 100 + usec(4));
  EXPECT_EQ(nic.tx_ready(0), 200 + usec(4)); // core only blocked 100ns per pkt
}

TEST(HostNic, RxProcessSchedulesAfterCoreAndLatency) {
  sim::Simulation sim;
  NicConfig cfg;
  cfg.cores = 1;
  cfg.per_packet_rx = nsec(100);
  cfg.per_batch_overhead = 0;
  cfg.rx_latency = nsec(50);
  HostNic nic(sim, cfg);
  Time delivered = -1;
  nic.rx_process(0, 0, [&] { delivered = sim.now(); });
  sim.run();
  EXPECT_EQ(delivered, 150);
}

TEST(HostNic, InvalidConfigThrows) {
  sim::Simulation sim;
  NicConfig cfg;
  cfg.cores = 0;
  EXPECT_THROW(HostNic(sim, cfg), std::invalid_argument);
}

// --------------------------------------------------------------- L2 switch

TEST(L2Switch, ForwardsByDestination) {
  sim::Simulation sim;
  SinkNode a{sim, 1, "a"}, b{sim, 2, "b"};
  L2Switch sw(sim, 100, "sw", nsec(400));
  LinkConfig lc;
  Link la(sim, lc, a, 0, sw, 0, 1);
  Link lb(sim, lc, b, 0, sw, 1, 2);
  sw.attach(0, la);
  sw.attach(1, lb);
  la.send_from(a, raw_packet(100, 1, 2));
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_TRUE(a.arrivals.empty());
}

TEST(L2Switch, MulticastReplicatesToGroupPorts) {
  sim::Simulation sim;
  SinkNode a{sim, 1, "a"}, b{sim, 2, "b"}, c{sim, 3, "c"};
  L2Switch sw(sim, 100, "sw", nsec(400));
  LinkConfig lc;
  Link la(sim, lc, a, 0, sw, 0, 1);
  Link lb(sim, lc, b, 0, sw, 1, 2);
  Link lcx(sim, lc, c, 0, sw, 2, 3);
  sw.attach(0, la);
  sw.attach(1, lb);
  sw.attach(2, lcx);
  sw.add_multicast_group(7, {0, 1, 2});
  sw.multicast(7, raw_packet(100, 1, 0));
  sim.run();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(c.arrivals.size(), 1u);
  // Multicast copies carry the per-port destination.
  EXPECT_EQ(std::get<2>(b.arrivals[0]).dst, 2u);
}

TEST(L2Switch, UnknownMulticastGroupThrows) {
  sim::Simulation sim;
  SinkNode a{sim, 1, "a"};
  L2Switch sw(sim, 100, "sw");
  LinkConfig lc;
  Link la(sim, lc, a, 0, sw, 0, 1);
  sw.attach(0, la);
  EXPECT_THROW(sw.multicast(42, raw_packet(100, 1, 0)), std::runtime_error);
}

TEST(L2Switch, UnknownDestinationThrows) {
  sim::Simulation sim;
  SinkNode a{sim, 1, "a"};
  L2Switch sw(sim, 100, "sw");
  LinkConfig lc;
  Link la(sim, lc, a, 0, sw, 0, 1);
  sw.attach(0, la);
  la.send_from(a, raw_packet(100, 1, 99));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

// -------------------------------------------------------------- reliable

struct TransportPair {
  sim::Simulation sim;
  L2Switch sw{sim, 100, "sw", nsec(400)};
  NicConfig nic_cfg;
  std::unique_ptr<TransportHost> a;
  std::unique_ptr<TransportHost> b;
  std::unique_ptr<Link> la;
  std::unique_ptr<Link> lb;

  explicit TransportPair(double loss = 0.0, BitsPerSecond rate = gbps(10)) {
    nic_cfg.per_packet_tx = nsec(100);
    nic_cfg.per_packet_rx = nsec(100);
    nic_cfg.per_batch_overhead = 0;
    nic_cfg.tx_latency = nsec(500);
    nic_cfg.rx_latency = nsec(500);
    a = std::make_unique<TransportHost>(sim, 1, "a", nic_cfg);
    b = std::make_unique<TransportHost>(sim, 2, "b", nic_cfg);
    LinkConfig lc;
    lc.rate = rate;
    lc.loss_prob = loss;
    la = std::make_unique<Link>(sim, lc, *a, 0, sw, 0, 11);
    lb = std::make_unique<Link>(sim, lc, *b, 0, sw, 1, 12);
    a->set_uplink(*la);
    b->set_uplink(*lb);
    sw.attach(0, *la);
    sw.attach(1, *lb);
  }
};

TEST(Reliable, TransfersAllBytesInOrder) {
  TransportPair t;
  TransportProfile prof;
  bool done = false;
  std::int64_t received = 0;
  std::uint64_t expected_seq = 0;
  ReliableReceiver rx(*t.b, 1, 42, 1'000'000,
                      [&](std::uint64_t seq, std::uint32_t len, std::span<const float>) {
                        EXPECT_EQ(seq, expected_seq);
                        expected_seq += len;
                        received += len;
                      },
                      [&] { done = true; });
  ReliableSender tx(*t.a, 2, 42, prof, nullptr);
  tx.start(1'000'000);
  t.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(received, 1'000'000);
  EXPECT_TRUE(tx.done());
}

TEST(Reliable, CarriesFloatPayloads) {
  TransportPair t;
  TransportProfile prof;
  std::vector<float> data(10'000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(i) * 0.5f;
  std::vector<float> got(data.size(), -1.0f);
  bool done = false;
  ReliableReceiver rx(*t.b, 1, 7, static_cast<std::int64_t>(data.size()) * 4,
                      [&](std::uint64_t seq, std::uint32_t len, std::span<const float> vals) {
                        ASSERT_EQ(vals.size(), len / 4);
                        std::copy(vals.begin(), vals.end(), got.begin() + static_cast<std::ptrdiff_t>(seq / 4));
                      },
                      [&] { done = true; });
  ReliableSender tx(*t.a, 2, 7, prof, nullptr);
  tx.start(static_cast<std::int64_t>(data.size()) * 4, data);
  t.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(got, data);
}

TEST(Reliable, RecoversFromHeavyLoss) {
  TransportPair t(/*loss=*/0.05);
  TransportProfile prof;
  prof.rto_initial = msec(1);
  bool done = false;
  ReliableReceiver rx(*t.b, 1, 9, 500'000, nullptr, [&] { done = true; });
  ReliableSender tx(*t.a, 2, 9, prof, nullptr);
  tx.start(500'000);
  t.sim.run();
  EXPECT_TRUE(done);
  EXPECT_GT(tx.counters().retransmissions, 0u);
}

TEST(Reliable, ThroughputApproachesLineRateWhenWindowExceedsBdp) {
  TransportPair t;
  TransportProfile prof;
  prof.window_bytes = 1024 * 1024;
  bool done = false;
  const std::int64_t bytes = 10'000'000;
  ReliableReceiver rx(*t.b, 1, 5, bytes, nullptr, [&] { done = true; });
  ReliableSender tx(*t.a, 2, 5, prof, nullptr);
  const Time t0 = t.sim.now();
  tx.start(bytes);
  t.sim.run();
  ASSERT_TRUE(done);
  const double secs = to_sec(t.sim.now() - t0);
  const double gbps_achieved = static_cast<double>(bytes) * 8.0 / secs / 1e9;
  EXPECT_GT(gbps_achieved, 8.0); // 10G link, ~4% header overhead
  EXPECT_LT(gbps_achieved, 10.0);
}

TEST(Reliable, SmallWindowLimitsThroughput) {
  TransportPair t;
  TransportProfile prof;
  prof.window_bytes = 2 * 1460; // two segments
  bool done = false;
  const std::int64_t bytes = 1'000'000;
  ReliableReceiver rx(*t.b, 1, 5, bytes, nullptr, [&] { done = true; });
  ReliableSender tx(*t.a, 2, 5, prof, nullptr);
  tx.start(bytes);
  t.sim.run();
  ASSERT_TRUE(done);
  const double secs = to_sec(t.sim.now());
  const double gbps_achieved = static_cast<double>(bytes) * 8.0 / secs / 1e9;
  EXPECT_LT(gbps_achieved, 5.0); // window-bound, well below line rate
}

TEST(Reliable, EmptyTransferThrows) {
  TransportPair t;
  TransportProfile prof;
  ReliableSender tx(*t.a, 2, 5, prof, nullptr);
  EXPECT_THROW(tx.start(0), std::invalid_argument);
}

TEST(Reliable, FastRetransmitRecoversWithoutWaitingForRto) {
  TransportPair t;
  TransportProfile prof;
  prof.rto_initial = msec(50); // make the RTO path obviously slow
  prof.window_bytes = 64 * 1024;
  // Drop exactly one mid-stream segment; dup-ACKs must repair it quickly.
  bool dropped = false;
  t.la->set_drop_filter([&](const Node& sender, const Packet& p) {
    if (!dropped && p.kind == PacketKind::Segment && p.seq == 5 * 1460 && sender.id() == 1) {
      dropped = true;
      return true;
    }
    return false;
  });
  bool done = false;
  ReliableReceiver rx(*t.b, 1, 6, 200'000, nullptr, [&] { done = true; });
  ReliableSender tx(*t.a, 2, 6, prof, nullptr);
  tx.start(200'000);
  t.sim.run();
  EXPECT_TRUE(done);
  EXPECT_GE(tx.counters().fast_retransmits, 1u);
  EXPECT_EQ(tx.counters().timeouts, 0u); // never needed the 50 ms timer
  EXPECT_LT(t.sim.now(), msec(10));
}

TEST(Reliable, RtoBacksOffExponentiallyUnderBlackout) {
  TransportPair t;
  TransportProfile prof;
  prof.rto_initial = msec(1);
  prof.rto_max = msec(8);
  // Black out the first 20 ms entirely.
  t.la->set_drop_filter([&](const Node&, const Packet& p) {
    return p.kind == PacketKind::Segment && t.sim.now() < msec(20);
  });
  bool done = false;
  ReliableReceiver rx(*t.b, 1, 8, 10'000, nullptr, [&] { done = true; });
  ReliableSender tx(*t.a, 2, 8, prof, nullptr);
  tx.start(10'000);
  t.sim.run();
  EXPECT_TRUE(done);
  // With exponential backoff capped at 8 ms, the 20 ms blackout costs a
  // handful of timeouts (1+2+4+8+8 = 23 ms), not 20.
  EXPECT_GE(tx.counters().timeouts, 4u);
  EXPECT_LE(tx.counters().timeouts, 8u);
}

TEST(Reliable, OutOfOrderSegmentsAreBufferedAndOnlyTheHoleIsResent) {
  // SACK-like receiver: losing the first segment leaves the other 15
  // buffered; exactly one retransmission repairs the stream.
  TransportPair t(/*loss=*/0.0);
  TransportProfile prof;
  prof.window_bytes = 16 * 1460;
  bool dropped = false;
  t.la->set_drop_filter([&](const Node& sender, const Packet& p) {
    if (!dropped && p.kind == PacketKind::Segment && p.seq == 0 && sender.id() == 1) {
      dropped = true;
      return true;
    }
    return false;
  });
  bool done = false;
  std::uint64_t expected_seq = 0;
  ReliableReceiver rx(*t.b, 1, 9, 16 * 1460,
                      [&](std::uint64_t seq, std::uint32_t len, std::span<const float>) {
                        EXPECT_EQ(seq, expected_seq); // delivery stays in order
                        expected_seq += len;
                      },
                      [&] { done = true; });
  ReliableSender tx(*t.a, 2, 9, prof, nullptr);
  tx.start(16 * 1460);
  t.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(tx.counters().segments_sent, 17u); // 16 + the one hole
  EXPECT_EQ(tx.counters().retransmissions, 1u);
  EXPECT_EQ(rx.buffered_segments(), 0u);
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, RecordsAndFiltersEvents) {
  Tracer tr;
  tr.set_filter([](const TraceEvent& e) { return e.kind != TraceEventKind::Deliver; });
  TraceEvent tx;
  tx.kind = TraceEventKind::Tx;
  TraceEvent del;
  del.kind = TraceEventKind::Deliver;
  tr.record(tx);
  tr.record(del);
  ASSERT_EQ(tr.events().size(), 1u);
  EXPECT_EQ(tr.events()[0].kind, TraceEventKind::Tx);
}

TEST(Tracer, CapacityBoundsMemory) {
  Tracer tr;
  tr.set_capacity(3);
  for (int i = 0; i < 10; ++i) tr.record(TraceEvent{});
  EXPECT_EQ(tr.events().size(), 3u);
  EXPECT_EQ(tr.dropped_records(), 7u);
  tr.clear();
  EXPECT_TRUE(tr.events().empty());
  EXPECT_EQ(tr.dropped_records(), 0u);
}

TEST(Tracer, LinkEmitsTxAndDeliverPairs) {
  sim::Simulation sim;
  SinkNode a{sim, 1, "a"}, b{sim, 2, "b"};
  LinkConfig lc;
  Link link(sim, lc, a, 0, b, 0, 1);
  Tracer tr;
  link.set_tracer(&tr);
  link.send_from(a, raw_packet(100, 1, 2));
  sim.run();
  ASSERT_EQ(tr.events().size(), 2u);
  EXPECT_EQ(tr.events()[0].kind, TraceEventKind::Tx);
  EXPECT_EQ(tr.events()[1].kind, TraceEventKind::Deliver);
  EXPECT_EQ(tr.events()[0].from, 1u);
  EXPECT_EQ(tr.events()[0].to, 2u);
}

TEST(Tracer, LinkEmitsDropEvents) {
  sim::Simulation sim;
  SinkNode a{sim, 1, "a"}, b{sim, 2, "b"};
  LinkConfig lc;
  Link link(sim, lc, a, 0, b, 0, 1);
  Tracer tr;
  link.set_tracer(&tr);
  link.set_drop_filter([](const Node&, const Packet&) { return true; });
  link.send_from(a, raw_packet(100, 1, 2));
  sim.run();
  ASSERT_EQ(tr.events().size(), 2u); // TX then DROP-LOSS
  EXPECT_EQ(tr.events()[1].kind, TraceEventKind::DropLoss);
  EXPECT_TRUE(b.arrivals.empty());
}

} // namespace
} // namespace switchml::net
