// Performance-model tests: model zoo integrity, throughput-estimate math,
// monotonicity properties, and consistency with the paper's published
// Table 1 anchors.
#include <gtest/gtest.h>

#include "perfmodel/model_zoo.hpp"
#include "perfmodel/training_model.hpp"

namespace switchml::perf {
namespace {

TEST(ModelZoo, HasAllNineFig3Models) {
  EXPECT_EQ(model_zoo().size(), 9u);
  for (const char* name : {"alexnet", "googlenet", "inception3", "inception4", "resnet50",
                           "resnet101", "vgg11", "vgg16", "vgg19"})
    EXPECT_NO_THROW(model(name));
}

TEST(ModelZoo, UnknownModelThrows) { EXPECT_THROW(model("resnet152"), std::invalid_argument); }

TEST(ModelZoo, VggModelsAreCommunicationHeavy) {
  // The paper's premise: vgg* have far more parameters per unit compute.
  const auto& vgg = model("vgg16");
  const auto& inception = model("inception3");
  const double vgg_ratio = static_cast<double>(vgg.parameters) * vgg.single_gpu_images_per_s;
  const double inc_ratio =
      static_cast<double>(inception.parameters) * inception.single_gpu_images_per_s;
  EXPECT_GT(vgg_ratio, 2 * inc_ratio);
}

TEST(ModelZoo, Table1RowsMatchPaperConstants) {
  auto rows = table1_rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "inception3");
  EXPECT_DOUBLE_EQ(rows[0].ideal, 1132.0);
  EXPECT_DOUBLE_EQ(rows[0].multi_gpu, 1079.0);
  EXPECT_DOUBLE_EQ(rows[2].multi_gpu, 898.0);
}

TEST(TrainingModel, ZeroCommunicationGivesIdealScaling) {
  const auto& spec = model("resnet50");
  const auto e = estimate_training(spec, 8, 1e18);
  EXPECT_NEAR(e.images_per_s, ideal_images_per_s(spec, 8), 1.0);
}

TEST(TrainingModel, ThroughputIncreasesWithAggregationRate) {
  const auto& spec = model("vgg16");
  double prev = 0;
  for (double rate : {1e7, 5e7, 1e8, 5e8}) {
    const auto e = estimate_training(spec, 8, rate);
    EXPECT_GT(e.images_per_s, prev);
    prev = e.images_per_s;
  }
}

TEST(TrainingModel, ExposedCommNeverNegative) {
  const auto& spec = model("googlenet");
  const auto e = estimate_training(spec, 8, 1e12);
  EXPECT_DOUBLE_EQ(e.exposed_comm_s, 0.0);
}

TEST(TrainingModel, PerTensorOverheadSlowsManyLayerModels) {
  const auto& r101 = model("resnet101"); // 314 tensors
  const auto fast = estimate_training(r101, 8, 1e8, 0, 0.0);
  const auto slow = estimate_training(r101, 8, 1e8, 0, 1e-3);
  EXPECT_GT(fast.images_per_s, slow.images_per_s * 1.1);
}

TEST(TrainingModel, BatchSizeOverrideChangesComputeTime) {
  const auto& spec = model("inception3");
  const auto b64 = estimate_training(spec, 8, 2e8, 64);
  const auto b128 = estimate_training(spec, 8, 2e8, 128);
  EXPECT_NEAR(b128.t_compute_s, 2 * b64.t_compute_s, 1e-9);
}

TEST(TrainingModel, InvalidArgumentsThrow) {
  const auto& spec = model("vgg19");
  EXPECT_THROW(estimate_training(spec, 0, 1e8), std::invalid_argument);
  EXPECT_THROW(estimate_training(spec, 8, 0.0), std::invalid_argument);
}

TEST(TrainingModel, SwitchMlBeatsNcclForEveryZooModel) {
  // Fig 3's headline: with SwitchML's measured rate (~220M elem/s at 10G)
  // vs NCCL's (~75M), every model speeds up, comm-bound ones the most.
  double min_speedup = 1e9, max_speedup = 0;
  std::string min_name, max_name;
  for (const auto& spec : model_zoo()) {
    const auto sml = estimate_training(spec, 8, 220e6, 0, kSwitchMlPerTensorOverheadS);
    const auto nccl = estimate_training(spec, 8, 75e6, 0, kRingPerTensorOverheadS);
    const double speedup = sml.images_per_s / nccl.images_per_s;
    EXPECT_GE(speedup, 1.0) << spec.name;
    if (speedup < min_speedup) {
      min_speedup = speedup;
      min_name = spec.name;
    }
    if (speedup > max_speedup) {
      max_speedup = speedup;
      max_name = spec.name;
    }
  }
  // The most communication-bound families gain the most (paper: 20%-300%).
  EXPECT_TRUE(max_name.substr(0, 3) == "vgg" || max_name == "alexnet") << max_name;
  EXPECT_GT(max_speedup, 1.7);
  EXPECT_LT(min_speedup, 1.4);
}

} // namespace
} // namespace switchml::perf
