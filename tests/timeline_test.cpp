// TimelineRecorder: sampling semantics (counters as deltas, gauges as
// levels), daemon-tick interaction with Simulation::run, ring-buffer
// truncation accounting, sidecar determinism, and export well-formedness.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/timeline.hpp"
#include "core/cluster.hpp"
#include "sim/simulation.hpp"

namespace switchml {
namespace {

// --- pure sim-level tests ----------------------------------------------------

TEST(Timeline, CountersBecomeDeltasAndGaugesLevels) {
  sim::Simulation sim;
  MetricsRegistry reg;
  std::uint64_t produced = 0;
  std::int64_t depth = 0;
  reg.add_counter("prod.items", [&] { return produced; });
  reg.add_gauge("prod.depth", [&] { return depth; });

  TimelineRecorder::Config tc;
  tc.period = usec(10);
  TimelineRecorder tl(sim, reg, tc);
  // 10 items per 10 us tick; depth ramps 1, 2, 3...
  for (int i = 1; i <= 4; ++i) {
    sim.schedule_at(usec(10) * i - usec(1), [&, i] {
      produced += 10;
      depth = i;
    });
  }
  tl.start();
  sim.run();
  tl.finish();

  ASSERT_EQ(tl.sample_count(), 5u); // baseline + 4 ticks (final coincides with tick 4)
  const auto d = tl.deltas("prod.items");
  ASSERT_EQ(d.size(), 4u);
  for (auto v : d) EXPECT_EQ(v, 10u);
  const auto r = tl.rate_per_s("prod.items");
  ASSERT_EQ(r.size(), 4u);
  for (auto v : r) EXPECT_DOUBLE_EQ(v, 10.0 / (10e-6)); // 1M items/s
  const auto lv = tl.levels("prod.depth");
  ASSERT_EQ(lv.size(), 5u);
  EXPECT_EQ(lv.front(), 0);
  EXPECT_EQ(lv.back(), 4);
}

TEST(Timeline, DaemonTickDoesNotKeepSimulationAlive) {
  sim::Simulation sim;
  MetricsRegistry reg;
  std::uint64_t n = 0;
  reg.add_counter("c", [&] { return n; });
  TimelineRecorder::Config tc;
  tc.period = usec(5);
  TimelineRecorder tl(sim, reg, tc);
  sim.schedule_at(usec(12), [&] { n = 7; });
  tl.start();
  sim.run(); // must terminate: the tick is a daemon and stops re-arming
  tl.finish();
  EXPECT_LE(sim.now(), usec(20));
  EXPECT_EQ(sim.live_pending_events(), 0u);
  const auto d = tl.deltas("c");
  std::uint64_t total = 0;
  for (auto v : d) total += v;
  EXPECT_EQ(total, 7u);
}

TEST(Timeline, RingDropsOldestAndCountsThem) {
  sim::Simulation sim;
  MetricsRegistry reg;
  std::uint64_t n = 0;
  reg.add_counter("c", [&] { return n; });
  TimelineRecorder::Config tc;
  tc.period = usec(1);
  tc.max_samples = 4;
  TimelineRecorder tl(sim, reg, tc);
  sim.schedule_at(usec(10), [&] { n = 10; });
  tl.start();
  sim.run();
  tl.finish();
  EXPECT_EQ(tl.sample_count(), 4u);
  EXPECT_GT(tl.dropped_samples(), 0u);
  // The ring keeps the most recent window.
  EXPECT_EQ(tl.times().back(), sim.now());
  // Truncation is reported in the JSONL export, not silent.
  EXPECT_NE(tl.jsonl().find("dropped_samples"), std::string::npos);
}

TEST(Timeline, InvalidConfigThrows) {
  sim::Simulation sim;
  MetricsRegistry reg;
  TimelineRecorder::Config bad_period;
  bad_period.period = 0;
  EXPECT_THROW(TimelineRecorder(sim, reg, bad_period), std::invalid_argument);
  TimelineRecorder::Config bad_ring;
  bad_ring.max_samples = 1;
  EXPECT_THROW(TimelineRecorder(sim, reg, bad_ring), std::invalid_argument);
}

TEST(Timeline, UnknownSeriesThrows) {
  sim::Simulation sim;
  MetricsRegistry reg;
  TimelineRecorder tl(sim, reg);
  EXPECT_THROW(tl.deltas("nope"), std::out_of_range);
  EXPECT_THROW(tl.levels("nope"), std::out_of_range);
  EXPECT_THROW(tl.interval_quantiles("nope"), std::out_of_range);
}

TEST(Timeline, HistogramsBecomePerIntervalQuantiles) {
  sim::Simulation sim;
  MetricsRegistry reg;
  Histogram h;
  reg.add_histogram("w.rtt_ns", &h);
  h.record(999'999); // pre-construction-baseline sample: must not leak into
                     // any exported interval (recorded before the recorder's
                     // baseline would be misattributed otherwise)

  TimelineRecorder::Config tc;
  tc.period = usec(10);
  TimelineRecorder tl(sim, reg, tc);
  // Tick 1 interval: 100 samples around 1000 ns. Tick 2: idle. Tick 3: 100
  // samples around 100000 ns.
  sim.schedule_at(usec(5), [&] {
    for (int i = 0; i < 100; ++i) h.record(1000 + i);
  });
  sim.schedule_at(usec(25), [&] {
    for (int i = 0; i < 100; ++i) h.record(100'000 + i);
  });
  tl.start();
  sim.run();
  tl.finish();

  ASSERT_EQ(tl.histogram_names().size(), 1u);
  const auto q = tl.interval_quantiles("w.rtt_ns");
  ASSERT_GE(q.size(), 3u);
  EXPECT_EQ(q[0].count, 100u);
  EXPECT_GE(q[0].p50, 1000);
  EXPECT_LT(q[0].p99, 2000); // tick-1 percentiles unpolluted by tick 3
  EXPECT_EQ(q[1].count, 0u); // idle interval: zeros, not stale data
  EXPECT_EQ(q[1].p999, 0);
  EXPECT_EQ(q[2].count, 100u);
  EXPECT_GE(q[2].p50, 100'000); // tick-3 percentiles unpolluted by tick 1

  // Exports carry the per-interval series.
  const std::string jsonl = tl.jsonl();
  EXPECT_NE(jsonl.find("\"hist\":{\"w.rtt_ns\":{\"n\":100,\"p50\":"), std::string::npos);
  const std::string csv = tl.csv();
  EXPECT_NE(csv.find("w.rtt_ns.n,w.rtt_ns.p50,w.rtt_ns.p90,w.rtt_ns.p99,w.rtt_ns.p999"),
            std::string::npos);
}

// --- cluster-level tests -----------------------------------------------------

std::string lossy_run_jsonl(std::uint64_t elems) {
  core::ClusterConfig cfg = core::ClusterConfig::for_rate(gbps(10), 4);
  cfg.timing_only = true;
  cfg.loss_prob = 0.01;
  cfg.adaptive_rto = true;
  core::Cluster cluster(cfg);
  TimelineRecorder::Config tc;
  tc.period = msec(1);
  TimelineRecorder tl(cluster.simulation(), cluster.metrics(), tc);
  tl.start();
  cluster.reduce_timing(elems);
  tl.finish();
  return tl.jsonl();
}

TEST(Timeline, SameSeedAndPeriodProduceBitIdenticalSidecar) {
  const std::string a = lossy_run_jsonl(64 * 1024);
  const std::string b = lossy_run_jsonl(64 * 1024);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Timeline, LossySidecarCarriesRetransmissionAndInFlightSeries) {
  const std::string jsonl = lossy_run_jsonl(256 * 1024);
  EXPECT_NE(jsonl.find("\"worker-0.retransmissions\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"worker-0.in_flight_slots\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"worker-0.rto_ns\":"), std::string::npos);
}

TEST(Timeline, CsvHeaderMatchesSeriesAndRowsAreComplete) {
  sim::Simulation sim;
  MetricsRegistry reg;
  std::uint64_t n = 0;
  std::int64_t g = 0;
  // Register out of sorted order: the export must sort by name.
  reg.add_counter("z.count", [&] { return n; });
  reg.add_gauge("a.level", [&] { return g; });
  reg.add_counter("b.count", [&] { return n * 2; });
  TimelineRecorder::Config tc;
  tc.period = usec(1);
  TimelineRecorder tl(sim, reg, tc);
  sim.schedule_at(usec(3), [&] {
    n = 5;
    g = -2;
  });
  tl.start();
  sim.run();
  tl.finish();
  const std::string csv = tl.csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "t_ns,dt_ns,b.count.rate,z.count.rate,a.level");
  // Every row has the same number of commas as the header.
  std::size_t header_commas = 0;
  for (char c : csv.substr(0, csv.find('\n')))
    if (c == ',') ++header_commas;
  std::size_t pos = csv.find('\n') + 1;
  while (pos < csv.size()) {
    const std::size_t end = csv.find('\n', pos);
    std::size_t commas = 0;
    for (std::size_t i = pos; i < end; ++i)
      if (csv[i] == ',') ++commas;
    EXPECT_EQ(commas, header_commas);
    pos = end + 1;
  }
}

} // namespace
} // namespace switchml
