// §6 multi-job (tenancy) tests: per-job pool isolation, admission control
// against the SRAM budget, eviction, and concurrent-job independence.
#include <gtest/gtest.h>

#include "core/cluster.hpp"

namespace switchml::core {
namespace {

TEST(Tenancy, JobsAggregateIndependently) {
  MultiJobConfig cfg;
  cfg.n_jobs = 3;
  cfg.workers_per_job = 2;
  cfg.pool_size = 8;
  MultiJobCluster cluster(cfg);

  for (int j = 0; j < 3; ++j) {
    std::vector<std::vector<std::int32_t>> updates(
        2, std::vector<std::int32_t>(1024, (j + 1) * 10));
    auto r = cluster.reduce_i32(j, updates);
    for (auto v : r.outputs[0]) ASSERT_EQ(v, (j + 1) * 20) << "job " << j;
  }
}

TEST(Tenancy, ConcurrentJobsDoNotInterfere) {
  // Per-job TAT with 4 concurrent jobs matches a solo run: jobs have
  // disjoint workers/links and their own aggregator pools.
  const std::uint64_t elems = 64 * 1024;
  auto median_tat = [&](int jobs) {
    MultiJobConfig cfg;
    cfg.n_jobs = jobs;
    cfg.workers_per_job = 4;
    cfg.timing_only = true;
    MultiJobCluster cluster(cfg);
    auto tats = cluster.reduce_timing_all(elems);
    Summary s;
    for (const auto& jt : tats)
      for (Time t : jt) s.add(to_msec(t));
    return s.median();
  };
  const double solo = median_tat(1);
  const double four = median_tat(4);
  EXPECT_NEAR(four, solo, solo * 0.02);
}

TEST(Tenancy, AdmissionRejectsDuplicateJobIds) {
  sim::Simulation sim;
  swprog::AggregationConfig cfg;
  swprog::AggregationSwitch sw(sim, 1, "sw", cfg);
  swprog::JobParams p;
  EXPECT_FALSE(sw.admit_job(0, p)); // job 0 exists from construction
  EXPECT_TRUE(sw.admit_job(1, p));
  EXPECT_FALSE(sw.admit_job(1, p));
}

TEST(Tenancy, AdmissionEnforcesSramBudget) {
  sim::Simulation sim;
  swprog::AggregationConfig cfg;
  cfg.pool_size = 128;
  // Budget fits exactly two 128-slot jobs: (2+32)*128*8 = 34816 B each.
  cfg.sram_budget_bytes = 2 * 34816;
  swprog::AggregationSwitch sw(sim, 1, "sw", cfg);
  swprog::JobParams p;
  p.pool_size = 128;
  EXPECT_TRUE(sw.admit_job(1, p));
  EXPECT_FALSE(sw.admit_job(2, p)); // budget exhausted
  EXPECT_EQ(sw.sram_free_bytes(), 0u);
}

TEST(Tenancy, EvictionFreesSram) {
  sim::Simulation sim;
  swprog::AggregationConfig cfg;
  cfg.pool_size = 128;
  cfg.sram_budget_bytes = 2 * 34816;
  swprog::AggregationSwitch sw(sim, 1, "sw", cfg);
  swprog::JobParams p;
  p.pool_size = 128;
  ASSERT_TRUE(sw.admit_job(1, p));
  ASSERT_FALSE(sw.admit_job(2, p));
  sw.evict_job(1);
  EXPECT_FALSE(sw.has_job(1));
  EXPECT_TRUE(sw.admit_job(2, p)); // freed SRAM is reusable
}

TEST(Tenancy, UnknownJobPacketsAreDropped) {
  MultiJobConfig cfg;
  cfg.n_jobs = 1;
  cfg.workers_per_job = 2;
  cfg.pool_size = 8;
  MultiJobCluster cluster(cfg);
  // Evict job 0, then try to reduce: packets must be counted as unknown-job
  // drops and the reduction never completes.
  cluster.agg_switch().evict_job(0);
  std::vector<std::int32_t> u(64, 1), out(64);
  cluster.worker(0, 0).start_reduction(u, out, nullptr);
  cluster.simulation().run_until(msec(5));
  EXPECT_GT(cluster.agg_switch().counters().unknown_job_drops, 0u);
}

TEST(Tenancy, SwitchConstructorRejectsOversizedJob0) {
  sim::Simulation sim;
  swprog::AggregationConfig cfg;
  cfg.pool_size = 1 << 20; // 34 MB of registers > 4 MiB budget
  EXPECT_THROW(swprog::AggregationSwitch(sim, 1, "sw", cfg), std::invalid_argument);
}

} // namespace
} // namespace switchml::core
