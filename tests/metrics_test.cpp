// MetricsRegistry: the pull-based counter registry every component registers
// into at construction, plus the fabric-level guarantees the registry relies
// on (one ambient registry per cluster, loss knobs reaching every link).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "collectives/streaming_ps.hpp"
#include "common/metrics.hpp"
#include "core/cluster.hpp"

namespace switchml {
namespace {

TEST(MetricsRegistry, CountersAreSampledLazily) {
  MetricsRegistry reg;
  std::uint64_t x = 0;
  reg.add_counter("a.count", [&] { return x; });
  EXPECT_EQ(reg.size(), 1u);

  x = 7;
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("a.count"), 7u);
  x = 11; // snapshot is a copy, not a view
  EXPECT_EQ(snap.counter("a.count"), 7u);
  EXPECT_EQ(reg.snapshot().counter("a.count"), 11u);
}

TEST(MetricsRegistry, SnapshotLookupAndSuffixSum) {
  MetricsRegistry reg;
  reg.add_counter("w0.retransmissions", [] { return std::uint64_t{3}; });
  reg.add_counter("w1.retransmissions", [] { return std::uint64_t{4}; });
  reg.add_counter("w1.timeouts", [] { return std::uint64_t{9}; });

  auto snap = reg.snapshot();
  EXPECT_TRUE(snap.has_counter("w0.retransmissions"));
  EXPECT_FALSE(snap.has_counter("w2.retransmissions"));
  EXPECT_THROW((void)snap.counter("missing"), std::out_of_range);
  EXPECT_EQ(snap.sum(".retransmissions"), 7u);
  EXPECT_EQ(snap.sum(".timeouts"), 9u);
  EXPECT_EQ(snap.sum(".nothing"), 0u);
}

TEST(MetricsRegistry, JsonIsSortedAndEscaped) {
  MetricsRegistry reg;
  reg.add_counter("b.second", [] { return std::uint64_t{2}; });
  reg.add_counter("a.\"first\"", [] { return std::uint64_t{1}; });
  const std::string json = reg.snapshot().json();
  // Sorted by name, quotes escaped, summaries block present even when empty.
  const auto first = json.find("a.\\\"first\\\"");
  const auto second = json.find("b.second");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_NE(json.find("\"summaries\""), std::string::npos);
}

TEST(MetricsRegistry, GaugesAreSampledAndExported) {
  MetricsRegistry reg;
  std::int64_t depth = -3;
  reg.add_gauge("q.depth", [&] { return depth; });
  reg.add_counter("q.items", [] { return std::uint64_t{1}; });
  EXPECT_EQ(reg.size(), 2u); // gauges count toward size

  auto snap = reg.snapshot();
  EXPECT_TRUE(snap.has_gauge("q.depth"));
  EXPECT_FALSE(snap.has_gauge("q.items")); // counters and gauges are distinct
  EXPECT_EQ(snap.gauge("q.depth"), -3);
  EXPECT_THROW((void)snap.gauge("missing"), std::out_of_range);
  depth = 5; // snapshot is a copy
  EXPECT_EQ(snap.gauge("q.depth"), -3);
  EXPECT_EQ(reg.snapshot().gauge("q.depth"), 5);
  EXPECT_NE(snap.json().find("\"gauges\""), std::string::npos);
  EXPECT_NE(snap.json().find("\"q.depth\":-3"), std::string::npos);
}

TEST(MetricsRegistry, DuplicateNamesAreRejectedAcrossKinds) {
  MetricsRegistry reg;
  Summary s;
  reg.add_counter("x", [] { return std::uint64_t{0}; });
  reg.add_gauge("g", [] { return std::int64_t{0}; });
  reg.add_summary("s", &s);
  // Same-kind duplicates.
  EXPECT_THROW(reg.add_counter("x", [] { return std::uint64_t{0}; }),
               std::invalid_argument);
  EXPECT_THROW(reg.add_gauge("g", [] { return std::int64_t{0}; }), std::invalid_argument);
  EXPECT_THROW(reg.add_summary("s", &s), std::invalid_argument);
  // Cross-kind duplicates: one flat namespace.
  EXPECT_THROW(reg.add_gauge("x", [] { return std::int64_t{0}; }), std::invalid_argument);
  EXPECT_THROW(reg.add_counter("s", [] { return std::uint64_t{0}; }),
               std::invalid_argument);
  EXPECT_EQ(reg.size(), 3u); // failed registrations left no residue
}

TEST(MetricsRegistry, SummaryStatsAreExported) {
  MetricsRegistry reg;
  Summary s;
  s.add(1.0);
  s.add(3.0);
  reg.add_summary("rtt_us", &s);
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.summaries.size(), 1u);
  EXPECT_EQ(snap.summaries[0].second.count, 2u);
  EXPECT_DOUBLE_EQ(snap.summaries[0].second.mean, 2.0);
  EXPECT_NE(snap.json().find("\"rtt_us\""), std::string::npos);
}

TEST(MetricsRegistry, ScopeNestsAndRestores) {
  EXPECT_EQ(MetricsRegistry::current(), nullptr);
  MetricsRegistry outer, inner;
  {
    MetricsRegistry::Scope a(&outer);
    EXPECT_EQ(MetricsRegistry::current(), &outer);
    {
      MetricsRegistry::Scope b(&inner);
      EXPECT_EQ(MetricsRegistry::current(), &inner);
    }
    EXPECT_EQ(MetricsRegistry::current(), &outer);
  }
  EXPECT_EQ(MetricsRegistry::current(), nullptr);
}

// ---- cluster integration ---------------------------------------------------

TEST(MetricsCluster, RegistryMatchesWorkerCountersUnderLoss) {
  core::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.loss_prob = 0.02;
  cfg.pool_size = 16;
  core::Cluster cluster(cfg);

  std::vector<std::vector<std::int32_t>> updates(4, std::vector<std::int32_t>(4096, 1));
  auto r = cluster.reduce_i32(updates);
  ASSERT_EQ(r.outputs[0][0], 4);

  auto snap = cluster.metrics().snapshot();
  std::uint64_t total_retx = 0;
  for (int w = 0; w < 4; ++w) {
    const auto& c = cluster.worker(w).counters();
    const std::string p = "worker-" + std::to_string(w) + ".";
    EXPECT_EQ(snap.counter(p + "retransmissions"), c.retransmissions);
    EXPECT_EQ(snap.counter(p + "updates_sent"), c.updates_sent);
    EXPECT_EQ(snap.counter(p + "results_received"), c.results_received);
    total_retx += c.retransmissions;
  }
  // 2% loss on 4 workers x 4096 elems guarantees some retransmissions, and
  // the suffix sum must agree with the workers' own counters.
  EXPECT_GT(total_retx, 0u);
  EXPECT_EQ(snap.sum(".retransmissions"), total_retx);
  // The switch registered too, and it saw every worker's traffic.
  EXPECT_GT(snap.counter("switch.updates_received"), 0u);
  EXPECT_GT(snap.counter("switch.duplicate_updates"), 0u);
}

TEST(MetricsCluster, EachClusterOwnsItsOwnRegistry) {
  core::ClusterConfig cfg;
  cfg.n_workers = 2;
  core::Cluster a(cfg), b(cfg);
  // Registration happened inside each constructor's scope; nothing leaked
  // into an ambient registry after construction.
  EXPECT_EQ(MetricsRegistry::current(), nullptr);
  EXPECT_EQ(a.metrics().size(), b.metrics().size());
  EXPECT_GT(a.metrics().size(), 0u);

  std::vector<std::vector<std::int32_t>> updates(2, std::vector<std::int32_t>(256, 1));
  a.reduce_i32(updates);
  auto sa = a.metrics().snapshot();
  auto sb = b.metrics().snapshot();
  EXPECT_GT(sa.sum(".updates_sent"), 0u);
  EXPECT_EQ(sb.sum(".updates_sent"), 0u); // b never ran
}

TEST(MetricsCluster, StreamingPsRegistersShardCounters) {
  collectives::StreamingPsConfig cfg;
  cfg.n_workers = 2;
  collectives::StreamingPsCluster ps(cfg);
  std::vector<std::vector<std::int32_t>> updates(2, std::vector<std::int32_t>(256, 2));
  ps.reduce_i32(updates);
  auto snap = ps.metrics().snapshot();
  EXPECT_GT(snap.sum(".updates_sent"), 0u); // workers
  EXPECT_GT(snap.sum(".updates"), 0u);      // shard aggregators
}

// ---- loss knob coverage ----------------------------------------------------

TEST(MetricsCluster, TreeSetLossProbReachesEveryLevel) {
  core::TreeConfig cfg;
  cfg.levels = 3;
  cfg.branching = 2;
  cfg.workers_per_rack = 2;
  core::TreeCluster tree(cfg);
  // root + 2 internal + 4 racks, 8 workers; links: 8 worker links + 6 uplinks.
  ASSERT_EQ(tree.n_switches(), 7);
  ASSERT_EQ(tree.fabric().n_links(), 14u);

  for (std::size_t i = 0; i < tree.fabric().n_links(); ++i)
    ASSERT_EQ(tree.fabric().link(i).config().loss_prob, 0.0) << i;
  tree.set_loss_prob(0.05);
  for (std::size_t i = 0; i < tree.fabric().n_links(); ++i)
    EXPECT_EQ(tree.fabric().link(i).config().loss_prob, 0.05) << i;
}

} // namespace
} // namespace switchml
