// Scenario engine tests: strict-loader semantics (unknown keys, JSON-path
// errors, eager FaultPlan validation), normalized round-trips, shape_counts
// vs built fabrics, the IrregularSpec build path — and the corpus contract:
// every scenarios/*.json is pinned byte-for-byte to its in-code definition,
// and every ported bench configuration reproduces its committed baseline
// metric bit-identically (BenchReport::kSimTol).
//
// Regenerating the corpus after an intentional schema or baseline change:
//   SWITCHML_REGEN_CORPUS=1 ./tests/scenario_test --gtest_filter='*Regenerate*'
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "core/cluster.hpp"
#include "core/fault.hpp"
#include "scenario/fuzz.hpp"

namespace switchml::scenario {
namespace {

std::string scenario_dir() { return SWITCHML_SCENARIO_DIR; }
std::string baseline_dir() { return SWITCHML_BASELINE_DIR; }

// --- loader semantics --------------------------------------------------------

Scenario minimal(const std::string& topo = R"({"kind": "rack", "workers": 4})") {
  return load_string(R"({"schema_version": 1, "name": "t", "topology": )" + topo + "}");
}

void expect_load_error(const std::string& text, const std::string& needle) {
  try {
    (void)load_string(text);
    FAIL() << "loaded: " << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error \"" << e.what() << "\" lacks \"" << needle << "\"";
  }
}

TEST(ScenarioLoader, MinimalScenarioGetsDefaults) {
  const Scenario s = minimal();
  EXPECT_EQ(s.fabric.pool_size, 128u); // for_rate rule at the default 10G
  EXPECT_EQ(s.fabric.link_rate, gbps(10));
  EXPECT_EQ(s.fabric.elems_per_packet, net::kDefaultElemsPerPacket);
  EXPECT_EQ(s.fabric.transport, net::kDefaultTransport);
  EXPECT_TRUE(s.workload.timing);
  EXPECT_EQ(s.workload.tensor_elems, 256u * 1024u);
  EXPECT_EQ(std::get<core::RackSpec>(s.topology).n_workers, 4);
}

TEST(ScenarioLoader, RateDerivedDefaults) {
  const Scenario s = load_string(R"({"schema_version": 1, "name": "t",
    "topology": {"kind": "rack"},
    "fabric": {"link_rate_gbps": 100, "mtu_emulation": true}})");
  EXPECT_EQ(s.fabric.pool_size, 512u); // >= 100G rule
  EXPECT_EQ(s.fabric.elems_per_packet, net::kMtuElemsPerPacket);
  EXPECT_EQ(s.fabric.nic.per_packet_tx, core::switchml_worker_nic(gbps(100)).per_packet_tx);
}

TEST(ScenarioLoader, UnknownKeysRejectedWithPathAndValidKeys) {
  expect_load_error(R"({"schema_version": 1, "name": "t",
                        "topology": {"kind": "rack"}, "wokload": {}})",
                    "$.wokload: unknown key");
  expect_load_error(R"({"schema_version": 1, "name": "t",
                        "topology": {"kind": "rack", "wrokers": 4}})",
                    "$.topology.wrokers: unknown key");
  expect_load_error(R"({"schema_version": 1, "name": "t",
                        "topology": {"kind": "rack"},
                        "fabric": {"pool_sze": 8}})",
                    "valid keys here");
}

TEST(ScenarioLoader, TypeErrorsNameThePath) {
  expect_load_error(R"({"schema_version": 1, "name": "t",
                        "topology": {"kind": "rack", "workers": "eight"}})",
                    "$.topology.workers: expected an integer, got string");
  expect_load_error(R"({"schema_version": 1, "name": "t", "topology": []})",
                    "$.topology: expected an object, got array");
  expect_load_error(R"({"schema_version": 1, "name": 7, "topology": {"kind": "rack"}})",
                    "$.name");
}

TEST(ScenarioLoader, SchemaVersionAndNameRequired) {
  expect_load_error(R"({"name": "t", "topology": {"kind": "rack"}})", "schema_version");
  expect_load_error(R"({"schema_version": 2, "name": "t", "topology": {"kind": "rack"}})",
                    "unsupported version 2");
  expect_load_error(R"({"schema_version": 1, "topology": {"kind": "rack"}})",
                    "missing required key \"name\"");
}

TEST(ScenarioLoader, BadTopologyRejected) {
  expect_load_error(R"({"schema_version": 1, "name": "t", "topology": {"kind": "ring"}})",
                    "unknown topology kind \"ring\"");
  // IrregularSpec structural errors surface under $.topology.
  expect_load_error(R"({"schema_version": 1, "name": "t",
                        "topology": {"kind": "irregular",
                                     "switch_parent": [0],
                                     "worker_switch": [0, 0]}})",
                    "$.topology");
}

TEST(ScenarioLoader, FaultPlanValidatedEagerlyWithPath) {
  // PR 5 message text, behind the $.faults prefix — no fabric was built.
  expect_load_error(R"({"schema_version": 1, "name": "t",
                        "topology": {"kind": "rack", "workers": 4},
                        "faults": {"stragglers": [
                          {"worker": 9, "factor": 4.0}]}})",
                    "$.faults: FaultPlan: stragglers[0]");
  expect_load_error(R"({"schema_version": 1, "name": "t",
                        "topology": {"kind": "rack", "workers": 4},
                        "faults": {"flap_cycles": [
                          {"link": 0, "period_ns": 1000, "duty_down": 1.5}]}})",
                    "duty_down in (0, 1)");
  expect_load_error(R"({"schema_version": 1, "name": "t",
                        "topology": {"kind": "rack", "workers": 4},
                        "faults": {"flaps": [
                          {"link": 2, "down_ns": 100, "up_ns": 900},
                          {"link": 2, "down_ns": 500, "up_ns": 1500}]}})",
                    "overlaps flaps[0]");
  // Lossless fabrics reject loss-inducing classes at load time too.
  expect_load_error(R"({"schema_version": 1, "name": "t",
                        "topology": {"kind": "rack", "workers": 4},
                        "fabric": {"lossless": true},
                        "faults": {"bursts": [
                          {"p_enter": 0.01, "p_exit": 0.3, "loss_bad": 0.5}]}})",
                    "$.faults: FaultPlan:");
}

// Satellite (b): the gaps are now caught eagerly by validate_fault_plan
// itself, independent of the loader and of injector arming.
TEST(FaultPlanValidation, DutyAndOverlapCaughtBeforeArming) {
  const core::FaultTargets t{4, 4, 1};
  core::FaultPlan bad_duty;
  bad_duty.flap_cycles.push_back({0, usec(700), 1.5, 0, 0});
  EXPECT_THROW(core::validate_fault_plan(bad_duty, t, false), std::invalid_argument);
  bad_duty.flap_cycles[0].duty_down = 0.0;
  EXPECT_THROW(core::validate_fault_plan(bad_duty, t, false), std::invalid_argument);

  core::FaultPlan overlap;
  overlap.flaps.push_back({1, 100, 1000});
  overlap.flaps.push_back({1, 999, 2000});
  try {
    core::validate_fault_plan(overlap, t, false);
    FAIL() << "overlapping one-shot flaps accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("flaps[1]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("overlaps flaps[0]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("idempotent"), std::string::npos) << msg;
  }
  // Back-to-back windows ([100,1000) then [1000,2000)) are fine.
  overlap.flaps[1].down_at = 1000;
  EXPECT_NO_THROW(core::validate_fault_plan(overlap, t, false));
  // Same windows on different links are fine.
  overlap.flaps[1] = {2, 999, 2000};
  EXPECT_NO_THROW(core::validate_fault_plan(overlap, t, false));
}

// --- round trips -------------------------------------------------------------

TEST(ScenarioRoundTrip, NormalizedFormIsAFixedPoint) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Scenario s = fuzz_scenario(seed);
    fuzz_faults(s, seed, msec(1));
    const std::string once = to_json(s).dump(true);
    const Scenario loaded = load_string(once);
    EXPECT_EQ(to_json(loaded).dump(true), once) << "seed " << seed;
  }
}

// --- shape_counts vs built fabrics -------------------------------------------

TEST(ScenarioShapes, CountsMatchBuiltFabric) {
  const core::TopologySpec shapes[] = {
      core::RackSpec{5},
      core::MultiJobSpec{3, 2},
      core::HierarchySpec{3, 4},
      core::TreeSpec{3, 2, 2},
      core::TreeSpec{2, 3, 4},
      core::IrregularSpec{{-1, 0, 0, 1}, {2, 2, 3, 3, 3}},
      core::IrregularSpec{{-1}, {0, 0, 0}},
  };
  for (const auto& topo : shapes) {
    const core::FaultTargets t = shape_counts(topo);
    core::FabricParams p;
    p.timing_only = true;
    core::Fabric f(core::FabricConfig(p, topo));
    EXPECT_EQ(t.n_workers, f.n_workers());
    EXPECT_EQ(t.n_links, f.n_links());
    EXPECT_EQ(t.n_switches, f.n_switches());
  }
}

TEST(ScenarioShapes, IrregularReducesBitExact) {
  Scenario s;
  s.name = "irr";
  s.topology = core::IrregularSpec{{-1, 0, 0, 1}, {2, 2, 3, 3, 3}};
  s.fabric.pool_size = 8;
  s.workload.timing = false;
  s.workload.tensor_elems = 2048;
  s.workload.reductions = 2;
  const RunResult r = run(s);
  EXPECT_TRUE(r.data_checked);
  EXPECT_TRUE(r.data_bit_exact);
  EXPECT_FALSE(r.fallback_engaged);
}

TEST(ScenarioShapes, IrregularSingleSwitchMatchesRack) {
  // A 1-switch irregular fabric and a rack are the same wiring; same seed,
  // same TATs.
  core::FabricParams p;
  p.timing_only = true;
  core::Fabric rack(core::FabricConfig(p, core::RackSpec{3}));
  core::Fabric irr(core::FabricConfig(p, core::IrregularSpec{{-1}, {0, 0, 0}}));
  EXPECT_EQ(rack.reduce_timing(4096), irr.reduce_timing(4096));
}

// --- the committed corpus ----------------------------------------------------

enum class Stat { kTatMaxMs, kTatMedianMs };

struct CorpusEntry {
  std::string file;          // scenarios/<file>
  Scenario def;              // the in-code ancestor configuration
  std::string baseline_file; // results/baselines/<file>; empty = no baseline
  std::string metric;        // guarded metric in that baseline
  Stat stat = Stat::kTatMaxMs;
};

Scenario rack_base(const std::string& name, const std::string& description) {
  Scenario s;
  s.name = name;
  s.description = description;
  s.topology = core::RackSpec{8};
  s.fabric.transport = net::TransportKind::kUdp; // baselines were recorded on UDP
  return s;
}

Scenario hierarchy_base(const std::string& name, const std::string& description) {
  Scenario s = rack_base(name, description);
  s.topology = core::HierarchySpec{2, 4};
  return s;
}

// Fault times derived at runtime by the ancestor benches (restart/kill
// placement at fractions of a measured clean/burst TAT) are baked in as the
// absolute sim ns the --fast benches compute; the committed baselines pin the
// same values (e.g. clean.tat_max_ms 1.189264 == 1189264 ns).
constexpr Time kRackKillAt = 594632;          // clean_max / 2
constexpr Time kRestart25At = 8914156;        // 0.25 * burst_max
constexpr Time kRestart50At = 17828312;       // 0.50 * burst_max
constexpr Time kRestart75At = 26742468;       // 0.75 * burst_max
constexpr Time kHierRestartAt = 1181648;      // fault_sweep straggled clean_max / 2
constexpr Time kHierKillAt = 595676;          // recovery_sweep clean_h_max / 2

std::vector<CorpusEntry> corpus() {
  std::vector<CorpusEntry> out;
  const std::string fs = "BENCH_fault_sweep.json";
  const std::string rs = "BENCH_recovery_sweep.json";

  {
    Scenario s = rack_base("fault-clean", "fault_sweep reference run: no faults");
    out.push_back({"fault_clean.json", s, fs, "clean.tat_max_ms"});
  }
  for (double factor : {4.0, 16.0, 64.0}) {
    const std::string tag = std::to_string(static_cast<int>(factor));
    Scenario s = rack_base("fault-straggler-" + tag + "x",
                           "fault_sweep straggler sweep: worker 0's NIC " + tag + "x slower");
    s.fabric.faults.stragglers.push_back({0, factor, 0, -1});
    out.push_back({"fault_straggler_" + tag + "x.json", s, fs,
                   "straggler-" + tag + "x.tat_max_ms"});
  }
  for (int duty_pct : {5, 10, 20}) {
    const std::string tag = std::to_string(duty_pct);
    Scenario s = rack_base("fault-flap-" + tag + "pct",
                           "fault_sweep duty sweep: link 0 down " + tag + "% of each 700 us period");
    s.fabric.faults.flap_cycles.push_back({0, usec(700), duty_pct / 100.0, usec(50), 0});
    out.push_back({"fault_flap_" + tag + "pct.json", s, fs, "flap-" + tag + "pct.tat_max_ms"});
  }
  for (int period_us : {350, 1400}) {
    const std::string tag = std::to_string(period_us);
    Scenario s = rack_base("fault-flap-period-" + tag + "us",
                           "fault_sweep period sweep: link 0 at 10% duty, " + tag + " us period");
    s.fabric.faults.flap_cycles.push_back({0, usec(period_us), 0.10, usec(50), 0});
    out.push_back({"fault_flap_period_" + tag + "us.json", s, fs,
                   "flap-period-" + tag + "us.tat_max_ms"});
  }
  {
    Scenario s = rack_base("fault-bernoulli-matched",
                           "fault_sweep burstiness control: Bernoulli loss matched to the "
                           "Gilbert-Elliott stationary average");
    s.fabric.loss_prob = 0.25 * 0.002 / 0.102;
    out.push_back({"fault_bernoulli_matched.json", s, fs, "bernoulli-matched.tat_ms",
                   Stat::kTatMedianMs});
  }
  {
    Scenario s = rack_base("fault-gilbert-elliott",
                           "fault_sweep burst loss: Gilbert-Elliott on every link");
    s.fabric.faults.bursts.push_back({-1, net::BurstLossConfig{0.002, 0.1, 0.0, 0.25}});
    out.push_back({"fault_gilbert_elliott.json", s, fs, "gilbert-elliott.tat_ms",
                   Stat::kTatMedianMs});
  }
  {
    Scenario s = hierarchy_base("fault-hierarchy-clean",
                                "fault_sweep failover comparator: 2x4 hierarchy, 16x straggler");
    s.fabric.faults.stragglers.push_back({0, 16.0, 0, -1});
    out.push_back({"fault_hierarchy_clean.json", s, fs, "hierarchy-clean.tat_max_ms"});
  }
  {
    Scenario s = hierarchy_base("fault-hierarchy-restart",
                                "fault_sweep failover: leaf-0 restart at half the straggled TAT");
    s.fabric.faults.stragglers.push_back({0, 16.0, 0, -1});
    s.fabric.faults.switch_restarts.push_back({1, kHierRestartAt});
    out.push_back({"fault_hierarchy_restart.json", s, fs, "hierarchy-restart.tat_max_ms"});
  }

  core::FaultPlan burst_plan;
  burst_plan.bursts.push_back({-1, net::BurstLossConfig{0.005, 0.25, 0.0, 0.5}});
  {
    Scenario s = rack_base("recovery-burst-only",
                           "recovery_sweep timescale run: Gilbert-Elliott bursts on every link");
    s.fabric.faults = burst_plan;
    out.push_back({"recovery_burst_only.json", s, rs, "burst-only.tat_max_ms"});
  }
  const std::pair<int, Time> restarts[] = {{25, kRestart25At}, {50, kRestart50At},
                                           {75, kRestart75At}};
  for (const auto& [pct, at] : restarts) {
    const std::string tag = std::to_string(pct);
    Scenario s = rack_base("recovery-restart-" + tag + "pct",
                           "recovery_sweep restart placement: switch wiped at " + tag +
                               "% of the burst-only TAT, bursts still active");
    s.fabric.faults = burst_plan;
    s.fabric.faults.switch_restarts.push_back({0, at});
    out.push_back({"recovery_restart_" + tag + "pct.json", s, rs,
                   "restart-" + tag + "pct.tat_max_ms"});
  }
  {
    Scenario s = rack_base("recovery-kill-rack",
                           "recovery_sweep degradation: switch killed at half the clean TAT; "
                           "the run finishes on the streaming-PS fallback");
    s.fabric.faults.switch_kills.push_back({0, kRackKillAt});
    out.push_back({"recovery_kill_rack.json", s, rs, "kill-rack.tat_max_ms"});
  }
  {
    Scenario s = hierarchy_base("recovery-kill-root",
                                "recovery_sweep degradation: hierarchy root killed at half the "
                                "clean TAT");
    s.fabric.faults.switch_kills.push_back({0, kHierKillAt});
    out.push_back({"recovery_kill_root.json", s, rs, "kill-root.tat_max_ms"});
  }

  {
    // examples/custom_scenario.cpp --strategy switchml --tensor-mb 1
    //   --loss 0.001 --adaptive-rto  (compared in-code, no committed baseline)
    Scenario s = rack_base("custom-rack-lossy",
                           "custom_scenario example: 8 workers at 10G, 1 MB tensor, 0.1% loss, "
                           "adaptive RTO");
    s.fabric.loss_prob = 0.001;
    s.fabric.adaptive_rto = true;
    s.workload.tensor_elems = 250000;
    out.push_back({"custom_rack_lossy.json", s, "", ""});
  }

  // Showcases: shapes and fault mixes no parametric bench covers. Data mode —
  // the guarded invariant is bit-exact convergence, not a TAT baseline.
  {
    Scenario s;
    s.name = "showcase-irregular";
    s.description = "asymmetric explicit-adjacency fabric: 2 leaf switches under a root chain, "
                    "uneven racks, straggler + one-shot flap";
    s.topology = core::IrregularSpec{{-1, 0, 0, 1}, {2, 2, 3, 3, 3}};
    s.fabric.transport = net::TransportKind::kUdp;
    s.fabric.pool_size = 8;
    s.fabric.sync_after = 2;
    s.fabric.dead_after = 12;
    s.fabric.faults.stragglers.push_back({1, 8.0, 0, -1});
    s.fabric.faults.flaps.push_back({0, usec(20), usec(80)});
    s.workload.timing = false;
    s.workload.tensor_elems = 4096;
    s.workload.reductions = 2;
    out.push_back({"showcase_irregular.json", s, "", ""});
  }
  {
    Scenario s;
    s.name = "showcase-multi-job";
    s.description = "two jobs sharing one switch; job 0 runs under a straggler and a bounded "
                    "flap cycle (dead_after disabled: multi-job fabrics have no fallback)";
    s.topology = core::MultiJobSpec{2, 4};
    s.fabric.transport = net::TransportKind::kUdp;
    s.fabric.pool_size = 2;
    s.fabric.sync_after = 2;
    s.fabric.dead_after = 0;
    s.fabric.faults.stragglers.push_back({2, 16.0, 0, -1});
    s.fabric.faults.flap_cycles.push_back({1, usec(100), 0.2, 0, 3});
    s.workload.timing = false;
    s.workload.tensor_elems = 2048;
    out.push_back({"showcase_multi_job.json", s, "", ""});
  }
  {
    Scenario s;
    s.name = "showcase-tree-flaps";
    s.description = "3-level binary tree under a bounded flap cycle and light bursts on every "
                    "link";
    s.topology = core::TreeSpec{3, 2, 2};
    s.fabric.transport = net::TransportKind::kUdp;
    s.fabric.pool_size = 8;
    s.fabric.sync_after = 2;
    s.fabric.dead_after = 12;
    s.fabric.faults.flap_cycles.push_back({3, usec(150), 0.1, usec(10), 4});
    s.fabric.faults.bursts.push_back({-1, net::BurstLossConfig{0.003, 0.3, 0.0, 0.3}});
    s.workload.timing = false;
    s.workload.tensor_elems = 2048;
    out.push_back({"showcase_tree_flaps.json", s, "", ""});
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return in ? ss.str() : std::string{};
}

// Not a test of anything: rewrites the corpus from the in-code definitions
// when explicitly requested (see the file header).
TEST(ScenarioCorpus, RegenerateWhenRequested) {
  if (std::getenv("SWITCHML_REGEN_CORPUS") == nullptr)
    GTEST_SKIP() << "set SWITCHML_REGEN_CORPUS=1 to rewrite scenarios/";
  for (const CorpusEntry& e : corpus()) {
    std::ofstream out(scenario_dir() + "/" + e.file, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << e.file;
    out << to_json(e.def).dump(true) << "\n";
  }
}

TEST(ScenarioCorpus, FilesMatchDefinitionsByteForByte) {
  for (const CorpusEntry& e : corpus()) {
    const std::string path = scenario_dir() + "/" + e.file;
    const std::string want = to_json(e.def).dump(true) + "\n";
    EXPECT_EQ(read_file(path), want) << e.file << " drifted from its in-code definition";
  }
}

TEST(ScenarioCorpus, EveryFileLoadsAndRoundTrips) {
  for (const CorpusEntry& e : corpus()) {
    SCOPED_TRACE(e.file);
    Scenario s;
    ASSERT_NO_THROW(s = load_file(scenario_dir() + "/" + e.file));
    EXPECT_EQ(to_json(s).dump(true), to_json(e.def).dump(true));
  }
}

double run_stat(const Scenario& s, Stat stat) {
  const RunResult r = run(s);
  if (stat == Stat::kTatMaxMs) {
    Time max_tat = 0;
    for (const auto& rep : r.tats)
      for (Time t : rep) max_tat = std::max(max_tat, t);
    return to_msec(max_tat);
  }
  Summary ms; // the benches take the median over one rep's workers
  for (const auto& rep : r.tats)
    for (Time t : rep) ms.add(to_msec(t));
  return ms.median();
}

double baseline_value(const std::string& file, const std::string& metric) {
  const json::Value doc = json::parse_file(baseline_dir() + "/" + file);
  const json::Value* metrics = doc.find("metrics");
  if (metrics == nullptr) throw std::runtime_error(file + ": no metrics");
  const json::Value* m = metrics->find(metric);
  if (m == nullptr) throw std::runtime_error(file + ": no metric " + metric);
  return m->find("value")->as_double();
}

// One ctest entry per corpus file so the (real) simulations run in parallel.
class CorpusReproduction : public testing::TestWithParam<CorpusEntry> {};

TEST_P(CorpusReproduction, GuardedMetricMatchesBaseline) {
  const CorpusEntry& e = GetParam();
  const Scenario s = load_file(scenario_dir() + "/" + e.file);
  if (e.baseline_file.empty()) {
    // Showcases + the example port: the contract is explicit convergence.
    const RunResult r = run(s);
    if (s.workload.timing) {
      EXPECT_FALSE(r.tats.empty());
    } else {
      EXPECT_TRUE(r.data_checked);
      EXPECT_TRUE(r.data_bit_exact);
    }
    return;
  }
  const double want = baseline_value(e.baseline_file, e.metric);
  const double got = run_stat(s, e.stat);
  EXPECT_NEAR(got, want, std::abs(want) * 1e-9) << e.metric;
}

INSTANTIATE_TEST_SUITE_P(AllFiles, CorpusReproduction, testing::ValuesIn(corpus()),
                         [](const testing::TestParamInfo<CorpusEntry>& info) {
                           std::string n = info.param.file;
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

// The custom_scenario port must be the SAME simulation as the in-code
// ClusterConfig the example builds — every worker's TAT identical, not just a
// summary statistic.
TEST(ScenarioCorpus, CustomScenarioPortMatchesInCodeConfig) {
  const Scenario s = load_file(scenario_dir() + "/custom_rack_lossy.json");
  core::ClusterConfig cfg = core::ClusterConfig::for_rate(gbps(10), 8);
  cfg.timing_only = true;
  cfg.loss_prob = 0.001;
  cfg.adaptive_rto = true;
  cfg.transport = net::TransportKind::kUdp;
  core::Cluster cluster(cfg);
  const auto want = cluster.reduce_timing(250000);
  const RunResult r = run(s);
  ASSERT_EQ(r.tats.size(), 1u);
  EXPECT_EQ(r.tats[0], want);
}

} // namespace
} // namespace switchml::scenario
