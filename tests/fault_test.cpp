// Fault-injection tests: the link down/up and rate-change semantics, the
// Gilbert-Elliott burst process, NIC straggler slowdowns, switch restarts,
// and the FaultPlan/FaultInjector path through the unified fabric — plus the
// determinism contracts (same seed + same plan => bit-identical runs; unused
// fault hooks never perturb the RNG streams).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "common/tracing.hpp"
#include "core/cluster.hpp"
#include "core/fault.hpp"
#include "net/link.hpp"
#include "net/nic.hpp"

namespace switchml {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::FaultPlan;
using core::HierarchicalCluster;
using core::HierarchyConfig;

// ---- serialization_time guard (the rate-0 "infinitely fast link" bug) ------

TEST(Units, SerializationTimeRejectsNonPositiveRate) {
  EXPECT_THROW(serialization_time(100, 0), std::invalid_argument);
  EXPECT_THROW(serialization_time(100, -gbps(10)), std::invalid_argument);
  EXPECT_THROW(wire_time_bits(8, 0), std::invalid_argument);
  // Zero bytes still serialize in zero time regardless of rate.
  EXPECT_EQ(serialization_time(0, gbps(10)), 0);
  EXPECT_EQ(serialization_time(1, gbps(10)), 1); // round-up survives
}

// ---- link-level fixtures ----------------------------------------------------

class SinkNode : public net::Node {
public:
  using Node::Node;
  void receive(net::Packet&& p, int port) override {
    arrivals.emplace_back(sim_.now(), port, std::move(p));
  }
  std::vector<std::tuple<Time, int, net::Packet>> arrivals;
};

net::Packet raw_packet(std::uint32_t len) {
  net::Packet p;
  p.kind = net::PacketKind::Segment;
  p.seg_len = len;
  return p;
}

class FaultLinkFixture : public ::testing::Test {
protected:
  sim::Simulation sim;
  SinkNode a{sim, 0, "a"};
  SinkNode b{sim, 1, "b"};
  net::LinkConfig cfg;
};

TEST_F(FaultLinkFixture, SetRateRejectsNonPositiveRate) {
  net::Link link(sim, cfg, a, 0, b, 0, 1);
  EXPECT_THROW(link.set_rate(0), std::invalid_argument);
  EXPECT_THROW(link.set_rate(-1), std::invalid_argument);
}

TEST_F(FaultLinkFixture, DownedLinkDeliversNothing) {
  cfg.rate = gbps(1);
  cfg.propagation = usec(1);
  net::Link link(sim, cfg, a, 0, b, 0, 1);
  const std::int64_t wire = raw_packet(946).wire_bytes(); // 1000 B => 8 us at 1 Gbps

  // One packet in flight when the link goes down, one sent while down, one
  // after it comes back: only the last may arrive.
  link.send_from(a, raw_packet(946));
  sim.schedule_at(usec(2), [&] { link.set_down(); }); // mid-serialization
  sim.schedule_at(usec(4), [&] { link.send_from(a, raw_packet(946)); });
  sim.schedule_at(usec(20), [&] { link.set_up(); });
  sim.schedule_at(usec(21), [&] { link.send_from(a, raw_packet(946)); });
  sim.run();

  ASSERT_EQ(b.arrivals.size(), 1u);
  const Time ser = serialization_time(wire, cfg.rate);
  EXPECT_EQ(std::get<0>(b.arrivals[0]), usec(21) + ser + cfg.propagation);
  const net::Link::Counters& c = link.counters_from(a);
  EXPECT_EQ(c.dropped_down, 2u); // the in-flight kill + the while-down send
  EXPECT_EQ(c.delivered_packets, 1u);
  EXPECT_EQ(c.tx_packets, 2u); // the while-down send never reached the port
}

TEST_F(FaultLinkFixture, DownKillsPacketsInBothDirections) {
  cfg.propagation = usec(5);
  net::Link link(sim, cfg, a, 0, b, 0, 1);
  link.send_from(a, raw_packet(100));
  link.send_from(b, raw_packet(100));
  sim.schedule_at(usec(1), [&] { link.set_down(); });
  sim.run();
  EXPECT_TRUE(b.arrivals.empty());
  EXPECT_TRUE(a.arrivals.empty());
  EXPECT_EQ(link.counters_from(a).dropped_down, 1u);
  EXPECT_EQ(link.counters_from(b).dropped_down, 1u);
  EXPECT_TRUE(link.is_down());
}

TEST_F(FaultLinkFixture, MidRunSlowdownReplansLedger) {
  cfg.rate = gbps(8); // 1 ns per byte
  cfg.propagation = 0;
  net::Link link(sim, cfg, a, 0, b, 0, 1); // raw_packet(946) = 1000 B => 1000 ns

  // A starts at t=0, B queues behind it. Halve the rate at t=500: A has 500 B
  // left (=> finishes at 500 + 1000), B's 1000 B take 2000 ns after that.
  link.send_from(a, raw_packet(946));
  link.send_from(a, raw_packet(946));
  sim.schedule_at(500, [&] { link.set_rate(gbps(4)); });
  sim.run();

  ASSERT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(std::get<0>(b.arrivals[0]), 1500);
  EXPECT_EQ(std::get<0>(b.arrivals[1]), 3500);
  EXPECT_EQ(link.counters_from(a).delivered_packets, 2u);
  // Post-change sends start from the re-planned busy_until, not a stale one.
  link.send_from(a, raw_packet(946));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 3u);
  EXPECT_EQ(std::get<0>(b.arrivals[2]), 3500 + 2000);
}

TEST_F(FaultLinkFixture, MidRunSpeedupDeliversEarlierExactlyOnce) {
  cfg.rate = gbps(4); // 2 ns per byte
  cfg.propagation = nsec(100);
  net::Link link(sim, cfg, a, 0, b, 0, 1);

  // 1000 B => 2000 ns at 4 Gbps. Double the rate at t=1000: 500 B remain,
  // now taking 500 ns => finish 1500, delivery 1600 (vs the original 2100).
  link.send_from(a, raw_packet(946));
  sim.schedule_at(1000, [&] { link.set_rate(gbps(8)); });
  sim.run();

  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(std::get<0>(b.arrivals[0]), 1600);
  // The originally-scheduled (now stale) delivery event must not double-fire.
  EXPECT_EQ(link.counters_from(a).delivered_packets, 1u);
}

TEST_F(FaultLinkFixture, RateChangeBeforeTrafficIsPlainConfigChange) {
  net::Link link(sim, cfg, a, 0, b, 0, 1);
  link.set_rate(gbps(1));
  const std::int64_t wire = raw_packet(946).wire_bytes();
  link.send_from(a, raw_packet(946));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(std::get<0>(b.arrivals[0]),
            serialization_time(wire, gbps(1)) + cfg.propagation);
}

TEST_F(FaultLinkFixture, BurstLossDropsAndCountsDeterministically) {
  net::Link link(sim, cfg, a, 0, b, 0, 1);
  net::BurstLossConfig ge;
  ge.p_enter = 1.0; // bad from the first packet on
  ge.p_exit = 0.0;
  ge.loss_bad = 1.0;
  link.set_burst_loss(ge);
  for (int i = 0; i < 5; ++i) link.send_from(a, raw_packet(100));
  sim.run();
  EXPECT_TRUE(b.arrivals.empty());
  EXPECT_EQ(link.counters_from(a).dropped_burst, 5u);
  EXPECT_EQ(link.counters_from(a).burst_entries, 1u);
  EXPECT_THROW(link.set_burst_loss(net::BurstLossConfig{1.5, 0, 0, 0}), std::invalid_argument);
}

TEST_F(FaultLinkFixture, IdleBurstProcessDoesNotPerturbBernoulliStream) {
  cfg.loss_prob = 0.3;
  // Two identical links, one with a never-entering burst chain: the Bernoulli
  // draws must be unaffected (separate RNG streams), so the same packets drop.
  net::Link plain(sim, cfg, a, 0, b, 0, 7);
  SinkNode c{sim, 2, "a"}, d{sim, 3, "b"}; // same names => same RNG stream labels
  net::Link bursty(sim, cfg, c, 0, d, 0, 7);
  bursty.set_burst_loss(net::BurstLossConfig{0.0, 0.1, 0.0, 1.0});
  for (int i = 0; i < 200; ++i) {
    plain.send_from(a, raw_packet(100));
    bursty.send_from(c, raw_packet(100));
  }
  sim.run();
  EXPECT_EQ(plain.counters_from(a).dropped_loss, bursty.counters_from(c).dropped_loss);
  EXPECT_EQ(b.arrivals.size(), d.arrivals.size());
  EXPECT_EQ(bursty.counters_from(c).dropped_burst, 0u);
}

TEST(HostNic, SlowdownStretchesCostsAndUnitFactorIsNeutral) {
  sim::Simulation sim;
  net::NicConfig nc;
  net::HostNic fast(sim, nc), stretched(sim, nc), neutral(sim, nc);
  stretched.set_slowdown(4.0);
  neutral.set_slowdown(1.0);
  const Time t_fast = fast.tx_ready(0, 180);
  const Time t_slow = stretched.tx_ready(0, 180);
  const Time t_neutral = neutral.tx_ready(0, 180);
  EXPECT_EQ(t_neutral, t_fast);
  EXPECT_EQ(t_slow - nc.tx_latency, (t_fast - nc.tx_latency) * 4);
  EXPECT_THROW(fast.set_slowdown(0.0), std::invalid_argument);
}

// ---- mid-run mutation hooks vs determinism ---------------------------------

std::vector<Time> run_with_midrun_loss_change(std::uint64_t elems) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
  cfg.timing_only = true;
  Cluster cluster(cfg);
  cluster.simulation().schedule_at(usec(50), [&cluster] {
    cluster.link(0).set_loss_prob(0.01);
    cluster.link(1).set_rate(gbps(10) / 2);
  });
  return cluster.reduce_timing(elems);
}

TEST(MutationHooks, MidRunMutationsAreDeterministic) {
  const auto first = run_with_midrun_loss_change(64 * 1024);
  const auto second = run_with_midrun_loss_change(64 * 1024);
  EXPECT_EQ(first, second);
}

TEST(MutationHooks, NeverMatchingDropFilterDoesNotPerturbLossDraws) {
  auto run = [](bool with_filter) {
    ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
    cfg.timing_only = true;
    cfg.loss_prob = 0.001;
    Cluster cluster(cfg);
    if (with_filter)
      for (int i = 0; i < 4; ++i)
        cluster.link(i).set_drop_filter(
            [](const net::Node&, const net::Packet&) { return false; });
    return cluster.reduce_timing(64 * 1024);
  };
  // The Bernoulli draw happens before (and short-circuits) the filter, so a
  // pass-through filter must leave the loss pattern bit-identical.
  EXPECT_EQ(run(false), run(true));
}

// ---- FaultPlan through the fabric ------------------------------------------

TEST(FaultPlanTest, ValidationRejectsBadSpecs) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
  cfg.timing_only = true;
  {
    ClusterConfig bad = cfg;
    bad.faults.stragglers.push_back({9, 2.0, 0, -1});
    EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  }
  {
    ClusterConfig bad = cfg;
    bad.faults.flaps.push_back({99, usec(1), usec(2)});
    EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  }
  {
    ClusterConfig bad = cfg;
    bad.faults.flap_cycles.push_back({0, msec(1), 1.5, 0, 0});
    EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  }
  {
    ClusterConfig bad = cfg;
    bad.faults.switch_restarts.push_back({5, usec(1)});
    EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  }
}

TEST(FaultPlanTest, UnitFactorStragglerIsBitIdenticalToClean) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
  cfg.timing_only = true;
  Cluster clean(cfg);
  cfg.faults.stragglers.push_back({0, 1.0, 0, -1});
  Cluster faulted(cfg);
  EXPECT_EQ(clean.reduce_timing(64 * 1024), faulted.reduce_timing(64 * 1024));
}

TEST(FaultPlanTest, SameSeedSamePlanIsBitIdentical) {
  auto run = [] {
    ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
    cfg.timing_only = true;
    cfg.faults.stragglers.push_back({1, 3.0, usec(20), usec(400)});
    cfg.faults.flap_cycles.push_back({0, usec(700), 0.1, usec(50), 0});
    cfg.faults.bursts.push_back({-1, net::BurstLossConfig{0.002, 0.1, 0.0, 0.25}});
    Cluster cluster(cfg);
    auto tats = cluster.reduce_timing(64 * 1024);
    auto* inj = cluster.fabric().fault_injector();
    return std::make_tuple(tats, inj->counters().flaps_applied,
                           inj->counters().straggler_windows);
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultPlanTest, StragglerInflatesBoundedAndRestores) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
  cfg.timing_only = true;
  Cluster clean(cfg);
  const auto clean_tats = clean.reduce_timing(64 * 1024);
  const Time clean_max = *std::max_element(clean_tats.begin(), clean_tats.end());

  cfg.faults.stragglers.push_back({0, 8.0, 0, -1});
  Cluster slow(cfg);
  const auto slow_tats = slow.reduce_timing(64 * 1024);
  const Time slow_max = *std::max_element(slow_tats.begin(), slow_tats.end());
  EXPECT_GT(slow_max, clean_max);        // a straggler hurts...
  EXPECT_LT(slow_max, clean_max * 16);   // ...but inflation stays bounded
  EXPECT_EQ(slow.fabric().fault_injector()->active_stragglers(), 1);
  // Self-clocking drags everyone to the straggler's pace (§6).
  const Time slow_min = *std::min_element(slow_tats.begin(), slow_tats.end());
  EXPECT_GT(slow_min * 10, slow_max * 9);
}

TEST(FaultPlanTest, FlapCycleCompletesWithBoundedInflation) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
  cfg.timing_only = true;
  Cluster clean(cfg);
  const auto clean_tats = clean.reduce_timing(64 * 1024);
  const Time clean_max = *std::max_element(clean_tats.begin(), clean_tats.end());

  // Period 700 us does not divide the 1 ms RTO, so retransmissions cannot
  // resonate with the down windows.
  cfg.faults.flap_cycles.push_back({0, usec(700), 0.1, usec(50), 0});
  Cluster flapped(cfg);
  const auto tats = flapped.reduce_timing(64 * 1024); // must terminate
  const Time max_tat = *std::max_element(tats.begin(), tats.end());
  EXPECT_LT(max_tat, clean_max * 100); // no livelock / unbounded stall
  EXPECT_GE(flapped.fabric().fault_injector()->counters().flaps_applied, 1u);
  EXPECT_FALSE(flapped.link(0).is_down()); // the run always quiesces link-up
  const auto& c = flapped.link(0).counters_from(flapped.worker(0));
  EXPECT_GT(c.dropped_down, 0u); // the flap really dropped traffic
}

TEST(FaultPlanTest, OneShotFlapAfterWorkloadStillRestoresLink) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
  cfg.timing_only = true;
  cfg.faults.flaps.push_back({0, msec(50), msec(51)}); // long after the reduction
  Cluster cluster(cfg);
  cluster.reduce_timing(16 * 1024);
  EXPECT_FALSE(cluster.link(0).is_down());
}

TEST(FaultPlanTest, SwitchRestartMidReductionRecoversTiming) {
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
  cfg.timing_only = true;
  Cluster clean(cfg);
  const auto clean_tats = clean.reduce_timing(64 * 1024);
  const Time clean_max = *std::max_element(clean_tats.begin(), clean_tats.end());

  cfg.faults.switch_restarts.push_back({0, clean_max / 2});
  Cluster faulted(cfg);
  const auto tats = faulted.reduce_timing(64 * 1024); // must terminate
  EXPECT_EQ(faulted.agg_switch().counters().restarts, 1u);
  const Time max_tat = *std::max_element(tats.begin(), tats.end());
  EXPECT_GE(max_tat, clean_max);      // a wipe can only cost time
  EXPECT_LT(max_tat, clean_max * 50); // recovery via RTO, not livelock
}

TEST(FaultPlanTest, HierarchyLeafRestartKeepsDataModeExact) {
  HierarchyConfig cfg;
  cfg.racks = 2;
  cfg.workers_per_rack = 2;
  cfg.pool_size = 16;

  const std::size_t d = 4096;
  std::vector<std::vector<std::int32_t>> updates(4, std::vector<std::int32_t>(d));
  for (int w = 0; w < 4; ++w)
    for (std::size_t i = 0; i < d; ++i)
      updates[static_cast<std::size_t>(w)][i] = static_cast<std::int32_t>(i % 97) + w;
  std::vector<std::int32_t> expect(d);
  for (std::size_t i = 0; i < d; ++i)
    expect[i] = static_cast<std::int32_t>(4 * (i % 97) + 0 + 1 + 2 + 3);

  // Clean run pins down the reduction's duration so the restart provably
  // lands mid-flight.
  HierarchicalCluster clean(cfg);
  const auto clean_result = clean.reduce_i32(updates);
  const Time clean_max =
      *std::max_element(clean_result.tat.begin(), clean_result.tat.end());

  // Restart leaf 0 (switch_at(1)) mid-reduction: shadow copies + version
  // bits + worker RTOs must re-drive the wiped slots without double-counting.
  cfg.faults.switch_restarts.push_back({1, clean_max / 2});
  HierarchicalCluster cluster(cfg);
  const auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(cluster.leaf(0).counters().restarts, 1u);
  for (int w = 0; w < 4; ++w) ASSERT_EQ(result.outputs[static_cast<std::size_t>(w)], expect) << w;
}

TEST(FaultPlanTest, FaultEventsAppearInTraceSink) {
  trace::TraceSink sink(1u << 16, trace::kCatAll);
  trace::TraceSink::Scope scope(&sink);
  ClusterConfig cfg = ClusterConfig::for_rate(gbps(10), 4);
  cfg.timing_only = true;
  cfg.faults.stragglers.push_back({0, 2.0, usec(10), usec(200)});
  // Restarts may land anywhere relative to loss windows: the epoch/resync
  // protocol recovers even a restart that races a lost result packet (see
  // DESIGN.md "Switch restarts" and recovery_test.cpp).
  cfg.faults.switch_restarts.push_back({0, usec(15)});
  cfg.faults.flaps.push_back({1, usec(20), usec(120)});
  Cluster cluster(cfg);
  cluster.reduce_timing(16 * 1024);

  int down = 0, up = 0, s_on = 0, s_off = 0, restart = 0;
  for (const trace::Event& e : sink.events()) {
    if (e.cat != trace::kCatFault) continue;
    const std::string name = e.name;
    down += name == "link_down";
    up += name == "link_up";
    s_on += name == "straggler_on";
    s_off += name == "straggler_off";
    restart += name == "switch_restart";
  }
  EXPECT_EQ(down, 1);
  EXPECT_EQ(up, 1);
  EXPECT_EQ(s_on, 1);
  EXPECT_EQ(s_off, 1);
  EXPECT_EQ(restart, 1);
}

} // namespace
} // namespace switchml
