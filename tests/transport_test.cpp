// Transport-layer conformance: the same SwitchML protocol guarantees must
// hold over BOTH host channel models (DPDK/UDP and RDMA-UC), the RDMA
// framing must account wire bytes honestly (including on-wire telemetry),
// and the reliable baseline transport's counters/RTO must behave exactly —
// the retransmission counter counts segments actually resent, duplicate
// out-of-order segments buffer once, and the adaptive RTO converges to the
// measured RTT instead of the configured initial.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/int_telemetry.hpp"
#include "core/cluster.hpp"
#include "net/channel.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/reliable.hpp"
#include "sim/rng.hpp"

namespace switchml {
namespace {

using namespace net;

// --- RDMA-UC wire accounting -------------------------------------------------

Packet update_packet(std::uint32_t elems, TransportKind t) {
  Packet p;
  p.kind = PacketKind::SmlUpdate;
  p.elem_count = elems;
  p.elem_bytes = 4;
  p.transport = t;
  return p;
}

TEST(RdmaFraming, SingleSegmentMessage) {
  // 32 elements: UDP is the paper's 180-byte packet; RDMA-UC is one RoCEv2
  // segment of 10 (app header) + 128 (payload) + 58 (framing) bytes.
  EXPECT_EQ(update_packet(32, TransportKind::kUdp).wire_bytes(), 180u);
  EXPECT_EQ(update_packet(32, TransportKind::kRdmaUc).wire_bytes(),
            kRdmaAppHeaderBytes + 128 + kRdmaSegmentHeaderBytes);
}

TEST(RdmaFraming, MessageSegmentsAtPathMtu) {
  // 1024 elements: 4106-byte message > 4096-byte path MTU -> two segments,
  // each carrying the 58-byte RoCEv2 framing; the app header rides once.
  const std::uint32_t payload = kRdmaAppHeaderBytes + kRdmaElemsPerMessage * 4;
  ASSERT_GT(payload, kRdmaMtuBytes);
  EXPECT_EQ(update_packet(kRdmaElemsPerMessage, TransportKind::kRdmaUc).wire_bytes(),
            payload + 2 * kRdmaSegmentHeaderBytes);
}

TEST(RdmaFraming, SyncPacketsAreHeaderOnlyMessages) {
  Packet q;
  q.kind = PacketKind::SmlSyncQuery;
  q.transport = TransportKind::kUdp;
  EXPECT_EQ(q.wire_bytes(), kAckWireBytes);
  q.transport = TransportKind::kRdmaUc;
  EXPECT_EQ(q.wire_bytes(), kRdmaAppHeaderBytes + kRdmaSegmentHeaderBytes);
}

TEST(RdmaFraming, ComposesWithOnWireTelemetry) {
  if constexpr (!inttel::kCompiledIn) GTEST_SKIP() << "INT compiled out";
  Packet p = update_packet(32, TransportKind::kRdmaUc);
  p.int_mode = inttel::kModeOnWire;
  inttel::IntHopRecord rec;
  rec.hop_id = 7;
  ASSERT_TRUE(inttel::append_record(p.int_stack, rec));
  ASSERT_TRUE(inttel::append_record(p.int_stack, rec));
  const std::uint32_t int_bytes = p.int_wire_bytes();
  ASSERT_EQ(int_bytes, inttel::kShimBytes + 2 * inttel::kRecordBytes);
  // The telemetry stack is part of the message payload, inside the RDMA
  // segmentation — not bolted on after framing.
  EXPECT_EQ(p.wire_bytes(),
            kRdmaAppHeaderBytes + 128 + int_bytes + kRdmaSegmentHeaderBytes);
}

// --- protocol conformance over both channels --------------------------------

core::ClusterConfig transport_config(TransportKind kind, double loss, int workers = 4) {
  core::ClusterConfig cfg;
  cfg.n_workers = workers;
  cfg.pool_size = 16;
  cfg.loss_prob = loss;
  cfg.transport = kind;
  cfg.retransmit_timeout = usec(200);
  return cfg;
}

std::vector<std::vector<std::int32_t>> random_updates(int n, std::size_t d, std::uint64_t seed) {
  sim::Rng rng = sim::Rng::stream(seed, "updates");
  std::vector<std::vector<std::int32_t>> u(static_cast<std::size_t>(n));
  for (auto& v : u) {
    v.resize(d);
    for (auto& e : v) e = static_cast<std::int32_t>(rng.uniform_int(-1'000'000, 1'000'000));
  }
  return u;
}

std::vector<std::int32_t> exact_sum(const std::vector<std::vector<std::int32_t>>& u) {
  std::vector<std::int32_t> s(u.front().size(), 0);
  for (const auto& v : u)
    for (std::size_t i = 0; i < v.size(); ++i)
      s[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(s[i]) +
                                       static_cast<std::uint32_t>(v[i]));
  return s;
}

class TransportConformance : public ::testing::TestWithParam<TransportKind> {};

TEST_P(TransportConformance, TimingReductionCompletesUnderLoss) {
  auto cfg = transport_config(GetParam(), /*loss=*/0.02);
  cfg.timing_only = true;
  core::Cluster cluster(cfg);
  auto tats = cluster.reduce_timing(16 * 1024);
  ASSERT_EQ(tats.size(), 4u);
  for (Time t : tats) EXPECT_GT(t, 0);
  // Loss repair ran through the slot protocol on both channels.
  std::uint64_t retx = 0;
  for (int w = 0; w < 4; ++w) retx += cluster.worker(w).counters().retransmissions;
  EXPECT_GT(retx, 0u);
}

TEST_P(TransportConformance, DataModeSumsAreExactUnderLoss) {
  auto cfg = transport_config(GetParam(), /*loss=*/0.01);
  core::Cluster cluster(cfg);
  auto updates = random_updates(4, 4096, 11);
  auto result = cluster.reduce_i32(updates);
  const auto expect = exact_sum(updates);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(result.outputs[static_cast<std::size_t>(w)], expect);
}

INSTANTIATE_TEST_SUITE_P(BothChannels, TransportConformance,
                         ::testing::Values(TransportKind::kUdp, TransportKind::kRdmaUc),
                         [](const auto& info) {
                           return info.param == TransportKind::kUdp ? "Udp" : "RdmaUc";
                         });

// --- RDMA-UC channel specifics -----------------------------------------------

TEST(RdmaChannel, CountersAreExactOnLosslessRun) {
  auto cfg = transport_config(TransportKind::kRdmaUc, /*loss=*/0.0, /*workers=*/2);
  cfg.timing_only = true;
  core::Cluster cluster(cfg);
  ASSERT_EQ(cluster.worker(0).channel().kind(), TransportKind::kRdmaUc);
  cluster.reduce_timing(32 * 32); // 32 chunks per worker at k = 32
  const auto snap = cluster.metrics().snapshot();
  for (int w = 0; w < 2; ++w) {
    const std::string p = "worker-" + std::to_string(w) + ".rdma.";
    // One WQE per update sent, one CQE per result received, doorbells
    // amortized over batches of 8; every 138-byte message fits one segment.
    EXPECT_EQ(snap.counter(p + "wqes_posted"), 32u);
    EXPECT_EQ(snap.counter(p + "cqes_polled"), 32u);
    EXPECT_EQ(snap.counter(p + "doorbells"), 4u);
    EXPECT_EQ(snap.counter(p + "wire_segments"), 32u);
    EXPECT_EQ(snap.counter(p + "payload_bytes"), 32u * (kRdmaAppHeaderBytes + 128));
  }
}

TEST(RdmaChannel, LossRepairRidesTheSlotProtocol) {
  // UC has no transport-level ACK/RTO: every repair is a worker slot-protocol
  // retransmission, and each one posts a fresh WQE through the channel.
  auto cfg = transport_config(TransportKind::kRdmaUc, /*loss=*/0.05);
  cfg.timing_only = true;
  core::Cluster cluster(cfg);
  auto tats = cluster.reduce_timing(8 * 1024);
  for (Time t : tats) EXPECT_GT(t, 0);
  const auto snap = cluster.metrics().snapshot();
  const std::uint64_t chunks = 8 * 1024 / 32;
  for (int w = 0; w < 4; ++w) {
    const auto& c = cluster.worker(w).counters();
    EXPECT_GT(c.retransmissions, 0u);
    const auto wqes =
        snap.counter("worker-" + std::to_string(w) + ".rdma.wqes_posted");
    // All updates (first sends AND repairs) went through the channel...
    EXPECT_GE(wqes, c.updates_sent);
    // ...and the repairs are visible as extra messages beyond the chunk count.
    EXPECT_GT(wqes, chunks);
  }
}

// --- reliable transport: counters, duplicates, adaptive RTO ------------------

struct TransportPair {
  sim::Simulation sim;
  L2Switch sw{sim, 100, "sw", nsec(400)};
  NicConfig nic_cfg;
  std::unique_ptr<TransportHost> a;
  std::unique_ptr<TransportHost> b;
  std::unique_ptr<Link> la;
  std::unique_ptr<Link> lb;

  TransportPair() {
    nic_cfg.per_packet_tx = nsec(100);
    nic_cfg.per_packet_rx = nsec(100);
    nic_cfg.per_batch_overhead = 0;
    nic_cfg.tx_latency = nsec(500);
    nic_cfg.rx_latency = nsec(500);
    a = std::make_unique<TransportHost>(sim, 1, "a", nic_cfg);
    b = std::make_unique<TransportHost>(sim, 2, "b", nic_cfg);
    LinkConfig lc;
    lc.rate = gbps(10);
    la = std::make_unique<Link>(sim, lc, *a, 0, sw, 0, 11);
    lb = std::make_unique<Link>(sim, lc, *b, 0, sw, 1, 12);
    a->set_uplink(*la);
    b->set_uplink(*lb);
    sw.attach(0, *la);
    sw.attach(1, *lb);
  }
};

TEST(ReliableCounters, RtoRetransmissionCountsSegmentsActuallyResent) {
  // Eight-segment window, first segment dropped, fast retransmit disabled
  // (dupack_threshold above the window): recovery must go through the RTO.
  // The receiver buffered the other seven segments, so the single resend of
  // segment 0 completes the transfer — the counter must say 1, not the whole
  // outstanding window the RTO handler used to credit up front.
  TransportPair t;
  TransportProfile prof;
  prof.rto_initial = msec(1);
  prof.window_bytes = 8 * 1460;
  prof.dupack_threshold = 100;
  bool dropped = false;
  t.la->set_drop_filter([&](const Node& sender, const Packet& p) {
    if (!dropped && p.kind == PacketKind::Segment && p.seq == 0 && sender.id() == 1) {
      dropped = true;
      return true;
    }
    return false;
  });
  bool done = false;
  ReliableReceiver rx(*t.b, 1, 3, 8 * 1460, nullptr, [&] { done = true; });
  ReliableSender tx(*t.a, 2, 3, prof, nullptr);
  tx.start(8 * 1460);
  t.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(tx.counters().timeouts, 1u);
  EXPECT_EQ(tx.counters().fast_retransmits, 0u);
  EXPECT_EQ(tx.counters().retransmissions, 1u);
  EXPECT_EQ(tx.counters().segments_sent, 9u); // 8 new + 1 resend
  EXPECT_EQ(t.a->transport_counters().retransmissions, 1u);
}

TEST(ReliableReceiverDup, DuplicateOutOfOrderSegmentsBufferOnce) {
  TransportPair t;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> delivered;
  int completions = 0;
  ReliableReceiver rx(*t.b, 1, 5, 3 * 1460,
                      [&](std::uint64_t seq, std::uint32_t len, std::span<const float>) {
                        delivered.emplace_back(seq, len);
                      },
                      [&] { ++completions; });
  auto seg = [](std::uint64_t seq) {
    Packet p;
    p.kind = PacketKind::Segment;
    p.src = 1;
    p.dst = 2;
    p.stream = 5;
    p.seq = seq;
    p.seg_len = 1460;
    return p;
  };
  // The same out-of-order segment twice: reassembly must hold ONE copy.
  rx.on_segment(seg(1460));
  rx.on_segment(seg(1460));
  EXPECT_EQ(rx.buffered_segments(), 1u);
  rx.on_segment(seg(2 * 1460));
  EXPECT_EQ(rx.buffered_segments(), 2u);
  // Filling the hole drains the buffer in order, each byte delivered once.
  rx.on_segment(seg(0));
  t.sim.run();
  ASSERT_TRUE(rx.done());
  EXPECT_EQ(rx.buffered_segments(), 0u);
  const std::vector<std::pair<std::uint64_t, std::uint32_t>> expect = {
      {0, 1460}, {1460, 1460}, {2 * 1460, 1460}};
  EXPECT_EQ(delivered, expect);
  EXPECT_EQ(completions, 1);
  // A stale retransmission of delivered data just re-acks.
  rx.on_segment(seg(0));
  t.sim.run();
  EXPECT_EQ(delivered, expect);
  EXPECT_EQ(completions, 1);
}

// One blackout recovery with the RTO policy under test: drops a mid-stream
// segment after the RTT estimator has converged, forces the RTO path (window
// of two segments -> a single dup-ACK), returns the completion time.
Time blackout_completion(bool adaptive, ReliableSender::Counters& out) {
  TransportPair t;
  TransportProfile prof;
  prof.rto_initial = msec(20); // deliberately far above the ~us-scale RTT
  prof.window_bytes = 2 * 1460;
  prof.adaptive_rto = adaptive;
  bool dropped = false;
  t.la->set_drop_filter([&](const Node& sender, const Packet& p) {
    if (!dropped && p.kind == PacketKind::Segment && p.seq == 32 * 1460 && sender.id() == 1) {
      dropped = true;
      return true;
    }
    return false;
  });
  bool done = false;
  ReliableReceiver rx(*t.b, 1, 6, 64 * 1460, nullptr, [&] { done = true; });
  ReliableSender tx(*t.a, 2, 6, prof, nullptr);
  tx.start(64 * 1460);
  t.sim.run();
  EXPECT_TRUE(done);
  out = tx.counters();
  return t.sim.now();
}

TEST(AdaptiveRto, ConvergesToMeasuredRttInsteadOfInitial) {
  ReliableSender::Counters legacy{}, adaptive{};
  const Time legacy_t = blackout_completion(false, legacy);
  const Time adaptive_t = blackout_completion(true, adaptive);
  // Same single loss, same repair work in both modes (go-back-N redrives the
  // two-segment window identically)...
  EXPECT_EQ(legacy.timeouts, 1u);
  EXPECT_EQ(adaptive.timeouts, 1u);
  EXPECT_EQ(legacy.retransmissions, adaptive.retransmissions);
  EXPECT_GE(legacy.retransmissions, 1u);
  // ...but the legacy policy stalls the full 20 ms initial RTO while the
  // adaptive one fires near SRTT + 4*RTTVAR (clamped at rto_min = 100 us).
  EXPECT_GE(legacy_t, msec(20));
  EXPECT_LT(adaptive_t, msec(5));
  EXPECT_LT(adaptive_t, legacy_t);
}

TEST(AdaptiveRto, DefaultsOffForBitIdenticalBaselines) {
  EXPECT_FALSE(TransportProfile{}.adaptive_rto);
  EXPECT_FALSE(core::ClusterConfig{}.adaptive_rto);
}

} // namespace
} // namespace switchml
