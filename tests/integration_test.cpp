// Cross-module integration and property tests: protocol correctness swept
// across cluster shapes, determinism, cross-strategy agreement on the same
// tensors, and straggler behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "collectives/baseline_cluster.hpp"
#include "collectives/ring.hpp"
#include "core/allreduce.hpp"
#include "core/cluster.hpp"
#include "quant/fixed_point.hpp"
#include "sim/rng.hpp"

namespace switchml {
namespace {

std::vector<std::vector<std::int32_t>> random_updates(int n, std::size_t d, std::uint64_t seed) {
  sim::Rng rng = sim::Rng::stream(seed, "integ");
  std::vector<std::vector<std::int32_t>> u(static_cast<std::size_t>(n),
                                           std::vector<std::int32_t>(d));
  for (auto& v : u)
    for (auto& e : v) e = static_cast<std::int32_t>(rng.uniform_int(-1'000'000, 1'000'000));
  return u;
}

std::vector<std::int32_t> exact_sum(const std::vector<std::vector<std::int32_t>>& u) {
  std::vector<std::int32_t> s(u.front().size(), 0);
  for (const auto& v : u)
    for (std::size_t i = 0; i < v.size(); ++i) s[i] += v[i];
  return s;
}

// ---- property sweep: correctness over (n_workers, pool_size) --------------

class ShapeSweep : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(ShapeSweep, AggregationExactForAllShapes) {
  const auto [n, pool] = GetParam();
  core::ClusterConfig cfg;
  cfg.n_workers = n;
  cfg.pool_size = pool;
  core::Cluster cluster(cfg);
  // A tensor size that exercises partial tails for every shape.
  auto updates = random_updates(n, 32 * pool * 2 + 13, 100 + static_cast<std::uint64_t>(n));
  auto result = cluster.reduce_i32(updates);
  const auto expect = exact_sum(updates);
  for (int w = 0; w < n; ++w)
    ASSERT_EQ(result.outputs[static_cast<std::size_t>(w)], expect)
        << "n=" << n << " pool=" << pool;
}

INSTANTIATE_TEST_SUITE_P(WorkersAndPools, ShapeSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16, 32),
                                            ::testing::Values(1u, 2u, 7u, 64u)));

// ---- property sweep: correctness under loss x pool interplay ---------------

class LossPoolSweep : public ::testing::TestWithParam<std::tuple<double, std::uint32_t>> {};

TEST_P(LossPoolSweep, LossRecoveryIndependentOfPoolSize) {
  const auto [loss, pool] = GetParam();
  core::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.pool_size = pool;
  cfg.loss_prob = loss;
  core::Cluster cluster(cfg);
  auto updates = random_updates(4, 4096, 200);
  auto result = cluster.reduce_i32(updates);
  ASSERT_EQ(result.outputs[0], exact_sum(updates)) << "loss=" << loss << " pool=" << pool;
}

INSTANTIATE_TEST_SUITE_P(LossAndPool, LossPoolSweep,
                         ::testing::Combine(::testing::Values(0.005, 0.05),
                                            ::testing::Values(1u, 4u, 32u)));

// ---- determinism ------------------------------------------------------------

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  auto run = [] {
    core::ClusterConfig cfg;
    cfg.n_workers = 4;
    cfg.pool_size = 16;
    cfg.loss_prob = 0.01;
    cfg.seed = 777;
    core::Cluster cluster(cfg);
    auto updates = random_updates(4, 8192, 300);
    auto r = cluster.reduce_i32(updates);
    return std::make_pair(r.tat, cluster.worker(0).counters().retransmissions);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);   // bit-identical timing
  EXPECT_EQ(a.second, b.second); // and identical loss pattern
}

TEST(Determinism, DifferentSeedsChangeLossPattern) {
  auto retx = [](std::uint64_t seed) {
    core::ClusterConfig cfg;
    cfg.n_workers = 4;
    cfg.pool_size = 16;
    cfg.loss_prob = 0.02;
    cfg.seed = seed;
    core::Cluster cluster(cfg);
    auto updates = random_updates(4, 8192, 301);
    cluster.reduce_i32(updates);
    std::uint64_t total = 0;
    for (int w = 0; w < 4; ++w) total += cluster.worker(w).counters().retransmissions;
    return total;
  };
  EXPECT_NE(retx(1), retx(2)); // overwhelmingly likely with ~2k packets at 2%
}

// ---- cross-strategy agreement ----------------------------------------------

TEST(CrossStrategy, SwitchMlAndRingAgreeOnTheSameTensors) {
  const int n = 4;
  const std::size_t d = 4096;
  sim::Rng rng = sim::Rng::stream(42, "xstrat");
  std::vector<std::vector<float>> inputs(n, std::vector<float>(d));
  for (auto& t : inputs)
    for (auto& v : t) v = static_cast<float>(rng.normal(0.0, 1.0));

  // SwitchML (quantized, through the switch).
  core::ClusterConfig ccfg;
  ccfg.n_workers = n;
  ccfg.pool_size = 16;
  core::Cluster cluster(ccfg);
  const auto sml = core::all_reduce(cluster, inputs);

  // Ring all-reduce (exact floats, through the TCP-like fabric).
  collectives::BaselineClusterConfig bcfg;
  bcfg.n_hosts = n;
  bcfg.nic = core::gloo_tcp(gbps(10)).nic;
  collectives::BaselineCluster baseline(bcfg);
  auto ring_buffers = inputs;
  collectives::RingAllReduce ring(baseline, core::gloo_tcp(gbps(10)).transport);
  ring.run(ring_buffers);

  const double bound = quant::aggregation_error_bound(n, sml.scaling_factor) + 1e-3;
  for (std::size_t i = 0; i < d; ++i)
    ASSERT_NEAR(sml.outputs[0][i], ring_buffers[0][i], bound) << i;
}

// ---- stragglers -------------------------------------------------------------

TEST(Straggler, SelfClockingSlowsEveryoneToTheSlowestWorker) {
  // §6: degrade one worker's link; all workers' TATs converge to it.
  core::ClusterConfig cfg = core::ClusterConfig::for_rate(gbps(10), 4);
  cfg.timing_only = true;
  core::Cluster cluster(cfg);
  cluster.link(2).set_rate(gbps(10) / 4);
  auto tats = cluster.reduce_timing(256 * 1024);
  const double slow = to_msec(tats[2]);
  for (int w = 0; w < 4; ++w) {
    EXPECT_GT(to_msec(tats[static_cast<std::size_t>(w)]), slow * 0.9) << w;
    EXPECT_LT(to_msec(tats[static_cast<std::size_t>(w)]), slow * 1.1) << w;
  }
  // ... and the whole job runs ~4x slower than a clean one.
  core::ClusterConfig clean_cfg = core::ClusterConfig::for_rate(gbps(10), 4);
  clean_cfg.timing_only = true;
  core::Cluster clean(clean_cfg);
  const double fast = to_msec(clean.reduce_timing(256 * 1024)[0]);
  EXPECT_NEAR(slow / fast, 4.0, 0.5);
}

// ---- hierarchy loss injection -----------------------------------------------

TEST(HierarchyLoss, HeavyUniformLossIncludingUplinksIsRepaired) {
  // §6: losses on the leaf->root uplinks are repaired because a worker
  // retransmission that hits a completed leaf slot regenerates the partial
  // aggregate upstream. Uniform loss on EVERY link (uplinks included)
  // exercises exactly that path.
  core::HierarchyConfig cfg;
  cfg.racks = 2;
  cfg.workers_per_rack = 2;
  cfg.pool_size = 4;
  cfg.loss_prob = 0.03;
  core::HierarchicalCluster h(cfg);
  auto updates = random_updates(4, 2048, 400);
  auto result = h.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], exact_sum(updates));
  // The uplink repairs show up as extra partials beyond one per chunk.
  const std::uint64_t chunks = 2048 / 32;
  EXPECT_GT(h.leaf(0).counters().upstream_partials + h.leaf(1).counters().upstream_partials,
            2 * chunks);
}

} // namespace
} // namespace switchml
