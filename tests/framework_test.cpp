// Framework-substrate tests: layer synthesis invariants and the event-driven
// training simulation's emergent properties (overlap, fusion, orderings).
#include <gtest/gtest.h>

#include <numeric>

#include "core/profiles.hpp"
#include "core/timing_stream.hpp"
#include "framework/training_sim.hpp"

namespace switchml::framework {
namespace {

TEST(LayerModel, ParamsAndSharesSumExactly) {
  for (const auto& spec : perf::model_zoo()) {
    const auto layers = synthesize_layers(spec);
    EXPECT_EQ(layers.size(), static_cast<std::size_t>(spec.n_tensors)) << spec.name;
    std::uint64_t params = 0;
    double share = 0;
    for (const auto& l : layers) {
      params += l.params;
      share += l.bwd_share;
    }
    EXPECT_EQ(params, spec.parameters) << spec.name;
    EXPECT_NEAR(share, 1.0, 1e-9) << spec.name;
  }
}

TEST(LayerModel, VggConcentratesParamsInClassifier) {
  const auto layers = synthesize_layers(perf::model("vgg16"));
  std::uint64_t tail = 0, total = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    total += layers[i].params;
    if (i >= layers.size() - 3) tail += layers[i].params;
  }
  EXPECT_GT(static_cast<double>(tail) / static_cast<double>(total), 0.8);
}

TEST(LayerModel, ResnetSpreadsParams) {
  const auto layers = synthesize_layers(perf::model("resnet50"));
  std::uint64_t tail = 0, total = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    total += layers[i].params;
    if (i >= layers.size() - 3) tail += layers[i].params;
  }
  EXPECT_LT(static_cast<double>(tail) / static_cast<double>(total), 0.2);
}

// ---------------------------------------------------------- timing stream

TEST(TimingStream, RunsTensorsBackToBackInOrder) {
  core::ClusterConfig cfg;
  cfg.n_workers = 2;
  cfg.pool_size = 8;
  cfg.timing_only = true;
  core::Cluster cluster(cfg);
  core::TimingStreamManager m0(cluster.worker(0));
  core::TimingStreamManager m1(cluster.worker(1));
  std::vector<int> order;
  for (int t = 0; t < 3; ++t) {
    m0.submit(1000, [&order, t] { order.push_back(t); });
    m1.submit(1000, nullptr);
  }
  cluster.simulation().run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(m0.idle());
  EXPECT_EQ(m0.tensors_completed(), 3u);
}

TEST(TimingStream, RejectsDataModeWorker) {
  core::ClusterConfig cfg;
  cfg.n_workers = 2;
  core::Cluster cluster(cfg);
  EXPECT_THROW(core::TimingStreamManager m(cluster.worker(0)), std::invalid_argument);
}

// ------------------------------------------------------------ training sim

TrainingSimConfig quick_cfg(BitsPerSecond rate = gbps(10)) {
  TrainingSimConfig cfg;
  cfg.rate = rate;
  cfg.batch = 64; // Table 1's setting: halves compute, keeps comm constant
  cfg.iterations = 2;
  cfg.size_scale = 1.0 / 64;
  return cfg;
}

TEST(TrainingSim, IterationNeverFasterThanCompute) {
  const auto r = simulate_switchml_training(perf::model("googlenet"), quick_cfg());
  EXPECT_GE(r.iteration_ms, r.compute_ms * 0.999);
  EXPECT_GE(r.exposed_comm_ms, -1e-6);
  EXPECT_GT(r.images_per_s, 0);
}

TEST(TrainingSim, ComputeBoundModelHidesCommunicationOnSwitchMl) {
  // inception4: tiny comm relative to compute; SwitchML hides nearly all.
  const auto r = simulate_switchml_training(perf::model("inception4"), quick_cfg());
  EXPECT_LT(r.exposed_comm_ms / r.iteration_ms, 0.10);
}

TEST(TrainingSim, VggIsCommunicationBoundEvenOnSwitchMl) {
  const auto r = simulate_switchml_training(perf::model("vgg16"), quick_cfg());
  EXPECT_GT(r.exposed_comm_ms / r.iteration_ms, 0.30);
}

TEST(TrainingSim, SwitchMlBeatsNcclForEveryModel) {
  for (const char* name : {"googlenet", "resnet50", "vgg16"}) {
    const auto& spec = perf::model(name);
    const auto sml = simulate_switchml_training(spec, quick_cfg());
    const auto nccl = simulate_ring_training(spec, quick_cfg(), core::nccl_tcp(gbps(10)));
    EXPECT_GE(sml.images_per_s, nccl.images_per_s * 0.999) << name;
  }
}

TEST(TrainingSim, SpeedupOrderingMatchesFig3) {
  // vgg16 (comm-bound) must gain much more than googlenet (compute-bound).
  // Use the bench's 1/16 scale: at tiny scales the unscaled per-round ring
  // latency dominates small models and distorts the comparison.
  auto speedup = [&](const char* name) {
    TrainingSimConfig cfg = quick_cfg();
    cfg.size_scale = 1.0 / 16;
    const auto& spec = perf::model(name);
    const auto sml = simulate_switchml_training(spec, cfg);
    const auto nccl = simulate_ring_training(spec, cfg, core::nccl_tcp(gbps(10)));
    return sml.images_per_s / nccl.images_per_s;
  };
  EXPECT_GT(speedup("vgg16"), speedup("googlenet") + 0.3);
}

TEST(TrainingSim, FasterNetworkHelpsCommBoundModels) {
  const auto& spec = perf::model("vgg16");
  const auto g10 = simulate_switchml_training(spec, quick_cfg(gbps(10)));
  const auto g100 = simulate_switchml_training(spec, quick_cfg(gbps(100)));
  EXPECT_GT(g100.images_per_s, g10.images_per_s * 1.3);
}

TEST(TrainingSim, FusionReducesRingLaunchLatency) {
  // With a tiny fusion buffer every tensor pays the 2(n-1)-round launch
  // latency; the 64 MB default amortizes it. resnet101 has 314 tensors,
  // so the difference is large.
  const auto& spec = perf::model("resnet101");
  TrainingSimConfig small = quick_cfg();
  small.fusion_bytes = 1; // effectively one tensor per launch
  TrainingSimConfig fused = quick_cfg();
  const auto unfused = simulate_ring_training(spec, small, core::nccl_tcp(gbps(10)));
  const auto with_fusion = simulate_ring_training(spec, fused, core::nccl_tcp(gbps(10)));
  EXPECT_GT(with_fusion.images_per_s, unfused.images_per_s * 1.5);
}

TEST(TrainingSim, InvalidScaleThrows) {
  TrainingSimConfig cfg = quick_cfg();
  cfg.size_scale = 0.0;
  EXPECT_THROW(simulate_switchml_training(perf::model("vgg16"), cfg), std::invalid_argument);
}

} // namespace
} // namespace switchml::framework
