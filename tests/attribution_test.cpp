// SpanLedger: state-machine semantics (clamp rules, offset matching,
// contributor lists, restart sweeps), the conservation invariant on full
// cluster runs under clean / lossy / straggler / restart / kill fault plans,
// same-seed bit-identical determinism, JSONL export shape, and the
// zero-event / zero-allocation guarantee when no ledger is installed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "common/attribution.hpp"
#include "core/cluster.hpp"
#include "core/fault.hpp"

// --- allocation counting -----------------------------------------------------
// Replacing global operator new lets the no-ledger test assert that the
// instrumentation helpers perform no heap allocation. The counter covers the
// whole binary; tests read deltas around the calls under test.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace switchml {
namespace {

using attr::Component;

std::uint64_t record_sum(const attr::ChunkRecord& r) {
  std::uint64_t sum = 0;
  for (std::uint64_t v : r.ns) sum += v;
  return sum;
}

// The invariant the whole subsystem exists to uphold: every recorded chunk's
// components partition [start, end] exactly, and the rollups agree.
void expect_conserved(const attr::SpanLedger& ledger) {
  EXPECT_EQ(ledger.max_residual_ns(), 0u);
  std::uint64_t span_sum = 0;
  for (const attr::ChunkRecord& r : ledger.records()) {
    ASSERT_GE(r.end, r.start);
    const auto span = static_cast<std::uint64_t>(r.end - r.start);
    EXPECT_EQ(record_sum(r), span)
        << "node " << r.node << " slot " << r.slot << " off " << r.off;
    span_sum += span;
  }
  if (ledger.records_dropped() == 0) EXPECT_EQ(ledger.total_ns(), span_sum);
}

TEST(Attribution, OpenTransitionCloseConservesExactly) {
  attr::SpanLedger ledger;
  ledger.open(3, 0, 4096, 100);
  ledger.transition(3, 0, Component::kWire, 150);
  ledger.transition(3, 0, Component::kProp, 170);
  ledger.close(3, 0, 200);

  EXPECT_EQ(ledger.chunks_closed(), 1u);
  EXPECT_EQ(ledger.total(Component::kHostTx), 50u);
  EXPECT_EQ(ledger.total(Component::kWire), 20u);
  EXPECT_EQ(ledger.total(Component::kProp), 30u);
  EXPECT_EQ(ledger.total_ns(), 100u);
  EXPECT_EQ(ledger.node_total(3, Component::kWire), 20u);

  ASSERT_EQ(ledger.records().size(), 1u);
  const attr::ChunkRecord& r = ledger.records()[0];
  EXPECT_EQ(r.node, 3u);
  EXPECT_EQ(r.slot, 0u);
  EXPECT_EQ(r.off, 4096u);
  EXPECT_EQ(r.start, 100);
  EXPECT_EQ(r.end, 200);
  expect_conserved(ledger);
}

TEST(Attribution, StaleTimestampsClampToZeroLengthSegments) {
  // Transitions may carry timestamps computed ahead of (or behind) the last
  // segment boundary; a stale one must switch state without going backwards.
  attr::SpanLedger ledger;
  ledger.open(0, 0, 0, 100);
  ledger.transition(0, 0, Component::kWire, 160);
  ledger.transition(0, 0, Component::kRtoStall, 140); // stale: zero-length wire->stall
  ledger.close(0, 0, 180);
  EXPECT_EQ(ledger.total(Component::kHostTx), 60u);
  EXPECT_EQ(ledger.total(Component::kWire), 0u);      // clamped
  EXPECT_EQ(ledger.total(Component::kRtoStall), 20u); // 160 -> 180
  expect_conserved(ledger);

  // Closing before the last transition clamps the same way: end = since.
  ledger.open(0, 0, 64, 200);
  ledger.transition(0, 0, Component::kProp, 250);
  ledger.close(0, 0, 210);
  ASSERT_EQ(ledger.records().size(), 2u);
  EXPECT_EQ(ledger.records()[1].end, 250);
  expect_conserved(ledger);
}

TEST(Attribution, TransitionMatchingIgnoresStaleOffsets) {
  // A duplicate result for the slot's PREVIOUS chunk must not relabel the
  // successor chunk now occupying the same (node, slot) key.
  attr::SpanLedger ledger;
  ledger.open(1, 7, 128, 0);
  ledger.transition_matching(1, 7, 999, Component::kRtoStall, 50); // stale off: ignored
  ledger.transition_matching(1, 7, 128, Component::kWire, 60);     // matches
  ledger.close(1, 7, 100);
  EXPECT_EQ(ledger.total(Component::kRtoStall), 0u);
  EXPECT_EQ(ledger.total(Component::kHostTx), 60u);
  EXPECT_EQ(ledger.total(Component::kWire), 40u);
  expect_conserved(ledger);
}

TEST(Attribution, ReopenResetsInPlaceWithoutRecording) {
  attr::SpanLedger ledger;
  ledger.open(0, 0, 0, 10);
  ledger.open(0, 0, 64, 20); // same key re-opened: the partial chunk vanishes
  EXPECT_EQ(ledger.reopened(), 1u);
  EXPECT_EQ(ledger.chunks_closed(), 0u);
  ledger.close(0, 0, 50);
  EXPECT_EQ(ledger.chunks_closed(), 1u);
  EXPECT_EQ(ledger.total_ns(), 30u); // only the second chunk's span
  EXPECT_EQ(ledger.records()[0].off, 64u);
}

TEST(Attribution, ContributorListsMoveEveryWaiterOnSlotCompletion) {
  attr::SpanLedger ledger;
  for (std::uint32_t n : {1u, 2u, 3u}) ledger.open(n, 5, 256, 0);
  ledger.contribute(/*switch=*/0, /*job=*/1, /*ver=*/0, /*idx=*/5, 1, 256, 10);
  ledger.contribute(0, 1, 0, 5, 2, 256, 20);
  ledger.contribute(0, 1, 0, 5, 3, 256, 30);
  ledger.complete_slot(0, 1, 0, 5, 256, 40);
  for (std::uint32_t n : {1u, 2u, 3u}) ledger.close(n, 5, 50);
  // Each contributor waited in kSwitchWait from its contribution to the
  // completion, then rode kSwitchReady to its close.
  EXPECT_EQ(ledger.node_total(1, Component::kSwitchWait), 30u);
  EXPECT_EQ(ledger.node_total(2, Component::kSwitchWait), 20u);
  EXPECT_EQ(ledger.node_total(3, Component::kSwitchWait), 10u);
  EXPECT_EQ(ledger.total(Component::kSwitchReady), 30u);
  expect_conserved(ledger);
}

TEST(Attribution, ContributorListsAreJobLocal) {
  // Two jobs share a switch; their slot indices overlap but their contributor
  // lists must not (each job owns its own pool registers).
  attr::SpanLedger ledger;
  ledger.open(1, 0, 0, 0);
  ledger.open(2, 0, 0, 0);
  ledger.contribute(/*switch=*/9, /*job=*/0, 0, /*idx=*/0, 1, 0, 10);
  ledger.contribute(9, /*job=*/1, 0, 0, 2, 0, 10);
  ledger.complete_slot(9, /*job=*/0, 0, 0, 0, 30); // only job 0's list moves
  ledger.close(1, 0, 50);
  ledger.close(2, 0, 50);
  EXPECT_EQ(ledger.node_total(1, Component::kSwitchReady), 20u);
  EXPECT_EQ(ledger.node_total(2, Component::kSwitchReady), 0u);
  EXPECT_EQ(ledger.node_total(2, Component::kSwitchWait), 40u);
  expect_conserved(ledger);
}

TEST(Attribution, SweepSwitchMovesEveryJobsContributors) {
  attr::SpanLedger ledger;
  ledger.open(1, 0, 0, 0);
  ledger.open(2, 3, 0, 0);
  ledger.contribute(9, /*job=*/0, 0, 0, 1, 0, 10);
  ledger.contribute(9, /*job=*/1, 1, 3, 2, 0, 10);
  ledger.sweep_switch(9, Component::kRecovery, 20); // dataplane wipe: all jobs
  ledger.close(1, 0, 50);
  ledger.close(2, 3, 50);
  EXPECT_EQ(ledger.node_total(1, Component::kRecovery), 30u);
  EXPECT_EQ(ledger.node_total(2, Component::kRecovery), 30u);
  expect_conserved(ledger);
}

TEST(Attribution, RecordBufferIsBoundedButRollupsAreNot) {
  attr::SpanLedger ledger(/*record_capacity=*/2);
  for (std::uint32_t i = 0; i < 5; ++i) {
    ledger.open(0, i, i * 64, 0);
    ledger.close(0, i, 10);
  }
  EXPECT_EQ(ledger.records().size(), 2u);
  EXPECT_EQ(ledger.records_dropped(), 3u);
  EXPECT_EQ(ledger.chunks_closed(), 5u);
  EXPECT_EQ(ledger.total_ns(), 50u); // totals kept accumulating past capacity
  // Truncation is visible in the export, never silent.
  EXPECT_NE(ledger.jsonl().find("{\"records_dropped\":3}"), std::string::npos);
}

TEST(Attribution, JsonlRecordsCarryEveryComponent) {
  attr::SpanLedger ledger;
  ledger.open(4, 2, 512, 100);
  ledger.transition(4, 2, Component::kFallback, 130);
  ledger.close(4, 2, 150);
  const std::string line = ledger.jsonl();
  EXPECT_NE(line.find("\"node\":4"), std::string::npos);
  EXPECT_NE(line.find("\"slot\":2"), std::string::npos);
  EXPECT_NE(line.find("\"off\":512"), std::string::npos);
  EXPECT_NE(line.find("\"start_ns\":100"), std::string::npos);
  EXPECT_NE(line.find("\"end_ns\":150"), std::string::npos);
  EXPECT_NE(line.find("\"host_tx\":30"), std::string::npos);
  EXPECT_NE(line.find("\"fallback\":20"), std::string::npos);
  // All ten component keys appear even when zero — scripts/critical_path.py
  // sums fixed columns.
  for (std::size_t c = 0; c < attr::kComponentCount; ++c)
    EXPECT_NE(line.find(std::string("\"") + attr::to_string(static_cast<Component>(c)) + "\":"),
              std::string::npos)
        << attr::to_string(static_cast<Component>(c));
}

TEST(Attribution, ScopesNestAndNullMasks) {
  EXPECT_EQ(attr::SpanLedger::current(), nullptr);
  attr::SpanLedger outer;
  {
    attr::SpanLedger::Scope s1(&outer);
    EXPECT_EQ(attr::SpanLedger::current(), &outer);
    {
      // Scope(nullptr) masks the outer ledger — the fabric uses this to keep
      // the PS-fallback inner cluster (colliding node ids) out of the ledger.
      attr::SpanLedger::Scope mask(nullptr);
      EXPECT_EQ(attr::SpanLedger::current(), nullptr);
      attr::open(7, 0, 0, 0);
      attr::close(7, 0, 10);
    }
    EXPECT_EQ(attr::SpanLedger::current(), &outer);
  }
  EXPECT_EQ(attr::SpanLedger::current(), nullptr);
  EXPECT_EQ(outer.chunks_closed(), 0u); // the masked calls went nowhere
}

// --- full cluster runs -------------------------------------------------------

core::ClusterConfig small_cfg(int workers) {
  core::ClusterConfig cfg = core::ClusterConfig::for_rate(gbps(10), workers);
  cfg.timing_only = true;
  return cfg;
}

constexpr std::uint64_t kElems = 128 * 1024;

TEST(Attribution, CleanRunConservesWithNoStallComponents) {
  if (!attr::kCompiledIn) GTEST_SKIP() << "attribution compiled out";
  attr::SpanLedger ledger;
  attr::SpanLedger::Scope scope(&ledger);
  core::Cluster cluster(small_cfg(4));
  cluster.reduce_timing(kElems);

  EXPECT_GT(ledger.chunks_closed(), 0u);
  EXPECT_EQ(ledger.records_dropped(), 0u);
  expect_conserved(ledger);
  // No faults, no loss: the pathological components must be exactly zero.
  EXPECT_EQ(ledger.total(Component::kRtoStall), 0u);
  EXPECT_EQ(ledger.total(Component::kRecovery), 0u);
  EXPECT_EQ(ledger.total(Component::kFallback), 0u);
  // The happy-path ones all saw time.
  for (Component c : {Component::kHostTx, Component::kWire, Component::kProp,
                      Component::kSwitchReady, Component::kHostRx})
    EXPECT_GT(ledger.total(c), 0u) << attr::to_string(c);
}

TEST(Attribution, LossyRunConservesAndChargesRtoStall) {
  if (!attr::kCompiledIn) GTEST_SKIP() << "attribution compiled out";
  attr::SpanLedger ledger;
  attr::SpanLedger::Scope scope(&ledger);
  core::ClusterConfig cfg = small_cfg(4);
  cfg.loss_prob = 0.01;
  cfg.adaptive_rto = true;
  core::Cluster cluster(cfg);
  cluster.reduce_timing(kElems);

  expect_conserved(ledger);
  EXPECT_GT(ledger.total(Component::kRtoStall), 0u);
  // Lost chunks stall their peers in the aggregator too.
  EXPECT_GT(ledger.total(Component::kSwitchWait), 0u);
}

TEST(Attribution, StragglerRunConservesAndChargesSwitchWait) {
  if (!attr::kCompiledIn) GTEST_SKIP() << "attribution compiled out";
  attr::SpanLedger ledger;
  attr::SpanLedger::Scope scope(&ledger);
  core::ClusterConfig cfg = small_cfg(4);
  cfg.faults.stragglers.push_back({0, 16.0, 0, -1});
  core::Cluster cluster(cfg);
  cluster.reduce_timing(kElems);

  expect_conserved(ledger);
  // The fast workers' chunks park in the slot waiting for the straggler.
  EXPECT_GT(ledger.total(Component::kSwitchWait), 0u);
  EXPECT_EQ(ledger.total(Component::kFallback), 0u);
}

TEST(Attribution, SwitchRestartRunConservesAndChargesRecovery) {
  if (!attr::kCompiledIn) GTEST_SKIP() << "attribution compiled out";
  // Clean run first to place the restart mid-flight; the straggler keeps
  // slots partially aggregated (and thus vulnerable) when the wipe hits,
  // mirroring the fault_sweep hierarchy scenario.
  Time clean_max = 0;
  {
    core::ClusterConfig cfg = small_cfg(4);
    cfg.faults.stragglers.push_back({0, 16.0, 0, -1});
    core::Cluster cluster(cfg);
    for (Time t : cluster.reduce_timing(kElems)) clean_max = std::max(clean_max, t);
  }
  attr::SpanLedger ledger;
  attr::SpanLedger::Scope scope(&ledger);
  core::ClusterConfig cfg = small_cfg(4);
  cfg.faults.stragglers.push_back({0, 16.0, 0, -1});
  cfg.faults.switch_restarts.push_back({0, clean_max / 2});
  core::Cluster cluster(cfg);
  cluster.reduce_timing(kElems);

  expect_conserved(ledger);
  EXPECT_GT(ledger.total(Component::kRecovery), 0u);
  EXPECT_EQ(ledger.total(Component::kFallback), 0u);
}

TEST(Attribution, SwitchKillFallbackConservesAndChargesFallback) {
  if (!attr::kCompiledIn) GTEST_SKIP() << "attribution compiled out";
  Time clean_max = 0;
  {
    core::Cluster cluster(small_cfg(4));
    for (Time t : cluster.reduce_timing(kElems)) clean_max = std::max(clean_max, t);
  }
  attr::SpanLedger ledger;
  attr::SpanLedger::Scope scope(&ledger);
  core::ClusterConfig cfg = small_cfg(4);
  cfg.faults.switch_kills.push_back({0, clean_max / 2});
  core::Cluster cluster(cfg);
  cluster.reduce_timing(kElems);

  ASSERT_TRUE(cluster.fabric().fallback_engaged());
  expect_conserved(ledger);
  // The kill burns the retry budget (recovery) and the surviving chunks are
  // replayed on the streaming-PS fallback.
  EXPECT_GT(ledger.total(Component::kRecovery), 0u);
  EXPECT_GT(ledger.total(Component::kFallback), 0u);
}

TEST(Attribution, SameSeedRunsAreBitIdentical) {
  auto run = [] {
    auto ledger = std::make_unique<attr::SpanLedger>();
    attr::SpanLedger::Scope scope(ledger.get());
    core::ClusterConfig cfg = small_cfg(4);
    cfg.loss_prob = 0.01;
    cfg.adaptive_rto = true;
    core::Cluster cluster(cfg);
    cluster.reduce_timing(kElems);
    return ledger;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a->chunks_closed(), b->chunks_closed());
  EXPECT_EQ(a->total_ns(), b->total_ns());
  for (std::size_t c = 0; c < attr::kComponentCount; ++c)
    EXPECT_EQ(a->total(static_cast<Component>(c)), b->total(static_cast<Component>(c)))
        << attr::to_string(static_cast<Component>(c));
  ASSERT_EQ(a->records().size(), b->records().size());
  for (std::size_t i = 0; i < a->records().size(); ++i) {
    EXPECT_EQ(a->records()[i].node, b->records()[i].node);
    EXPECT_EQ(a->records()[i].off, b->records()[i].off);
    EXPECT_EQ(a->records()[i].start, b->records()[i].start);
    EXPECT_EQ(a->records()[i].end, b->records()[i].end);
    EXPECT_EQ(a->records()[i].ns, b->records()[i].ns);
  }
}

TEST(Attribution, AttributionDoesNotPerturbTiming) {
  // Pure observation: the same run with and without a ledger must produce
  // bit-identical TATs.
  auto run = [](bool with_ledger) {
    attr::SpanLedger ledger;
    attr::SpanLedger::Scope scope(with_ledger ? &ledger : nullptr);
    core::ClusterConfig cfg = small_cfg(4);
    cfg.loss_prob = 0.01;
    cfg.adaptive_rto = true;
    core::Cluster cluster(cfg);
    return cluster.reduce_timing(kElems);
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Attribution, RegistryRollupsOnlyExistWhenLedgerInstalled) {
  {
    attr::SpanLedger ledger;
    attr::SpanLedger::Scope scope(&ledger);
    core::Cluster cluster(small_cfg(4));
    cluster.reduce_timing(64 * 1024);
    const std::string json = cluster.metrics().snapshot().json();
    EXPECT_NE(json.find("attr.total.host_tx_ns"), std::string::npos);
    EXPECT_NE(json.find("attr.worker-0.host_rx_ns"), std::string::npos);
    EXPECT_NE(json.find("attr.max_residual_ns"), std::string::npos);
  }
  {
    // No ledger at construction: the registry must look exactly as before
    // the attribution subsystem existed.
    core::Cluster cluster(small_cfg(4));
    cluster.reduce_timing(64 * 1024);
    EXPECT_EQ(cluster.metrics().snapshot().json().find("attr."), std::string::npos);
  }
}

TEST(Attribution, NoLedgerEmitsNothingAndAllocatesNothing) {
  ASSERT_EQ(attr::SpanLedger::current(), nullptr);
  const std::uint64_t before = g_allocations.load();
  for (std::uint32_t i = 0; i < 1000; ++i) {
    attr::open(3, i & 63, i * 64, i);
    attr::transition(3, i & 63, Component::kWire, i + 1);
    attr::transition_matching(3, i & 63, i * 64, Component::kProp, i + 2);
    attr::contribute(0, 0, 0, i & 63, 3, i * 64, i + 3);
    attr::complete_slot(0, 0, 0, i & 63, i * 64, i + 4);
    attr::close(3, i & 63, i + 5);
  }
  EXPECT_EQ(g_allocations.load(), before);
}

#if !SWITCHML_ATTRIBUTION
TEST(Attribution, CompiledOutIsInertEvenWithALedgerInstalled) {
  attr::SpanLedger ledger;
  attr::SpanLedger::Scope scope(&ledger);
  EXPECT_FALSE(attr::enabled());
  attr::open(0, 0, 0, 0);
  attr::close(0, 0, 10);
  // The free helpers constant-folded away; only direct method calls record.
  EXPECT_EQ(ledger.chunks_closed(), 0u);
  EXPECT_EQ(ledger.total_ns(), 0u);
}
#endif

} // namespace
} // namespace switchml
