// Multi-level hierarchical composition (§6, H > 2): correctness, loss
// recovery through every tier, and the per-level bandwidth reduction.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "sim/rng.hpp"

namespace switchml::core {
namespace {

std::vector<std::vector<std::int32_t>> updates_for(int n, std::size_t d, std::uint64_t seed) {
  sim::Rng rng = sim::Rng::stream(seed, "tree");
  std::vector<std::vector<std::int32_t>> u(static_cast<std::size_t>(n),
                                           std::vector<std::int32_t>(d));
  for (auto& v : u)
    for (auto& e : v) e = static_cast<std::int32_t>(rng.uniform_int(-5000, 5000));
  return u;
}

std::vector<std::int32_t> sum_of(const std::vector<std::vector<std::int32_t>>& u) {
  std::vector<std::int32_t> s(u.front().size(), 0);
  for (const auto& v : u)
    for (std::size_t i = 0; i < v.size(); ++i) s[i] += v[i];
  return s;
}

TEST(Tree, ThreeLevelAggregationIsExact) {
  // root -> 2 internal switches -> 2 racks each -> 3 workers per rack.
  TreeConfig cfg;
  cfg.levels = 3;
  cfg.branching = 2;
  cfg.workers_per_rack = 3;
  TreeCluster tree(cfg);
  EXPECT_EQ(tree.n_workers(), 2 * 2 * 3);
  EXPECT_EQ(tree.n_switches(), 1u + 2u + 4u);

  auto updates = updates_for(tree.n_workers(), 4096, 1);
  auto r = tree.reduce_i32(updates);
  const auto expect = sum_of(updates);
  for (int w = 0; w < tree.n_workers(); ++w)
    ASSERT_EQ(r.outputs[static_cast<std::size_t>(w)], expect) << w;
}

TEST(Tree, FourLevelAggregationIsExact) {
  TreeConfig cfg;
  cfg.levels = 4;
  cfg.branching = 2;
  cfg.workers_per_rack = 2;
  cfg.pool_size = 8;
  TreeCluster tree(cfg);
  EXPECT_EQ(tree.n_workers(), 2 * 2 * 2 * 2); // 2^3 racks x 2 workers
  auto updates = updates_for(tree.n_workers(), 1024, 2);
  auto r = tree.reduce_i32(updates);
  EXPECT_EQ(r.outputs[5], sum_of(updates));
}

TEST(Tree, TwoLevelMatchesHierarchicalCluster) {
  TreeConfig cfg;
  cfg.levels = 2;
  cfg.branching = 3; // root with 3 bottom switches
  cfg.workers_per_rack = 2;
  TreeCluster tree(cfg);
  EXPECT_EQ(tree.n_workers(), 6);
  auto updates = updates_for(6, 2048, 3);
  auto r = tree.reduce_i32(updates);
  EXPECT_EQ(r.outputs[0], sum_of(updates));
}

TEST(Tree, SurvivesLossAtEveryTier) {
  TreeConfig cfg;
  cfg.levels = 3;
  cfg.branching = 2;
  cfg.workers_per_rack = 2;
  cfg.pool_size = 8;
  cfg.loss_prob = 0.02; // every link, including both switch tiers
  TreeCluster tree(cfg);
  auto updates = updates_for(tree.n_workers(), 4096, 4);
  auto r = tree.reduce_i32(updates);
  EXPECT_EQ(r.outputs[0], sum_of(updates));
}

TEST(Tree, EveryTierReducesBandwidth) {
  TreeConfig cfg;
  cfg.levels = 3;
  cfg.branching = 2;
  cfg.workers_per_rack = 4;
  cfg.timing_only = true;
  TreeCluster tree(cfg);
  const std::uint64_t elems = 32 * 512;
  tree.reduce_timing(elems);
  const std::uint64_t chunks = elems / 32;
  // Root (switch 0) completes every chunk once; each internal/bottom switch
  // forwards exactly one partial per chunk upstream.
  EXPECT_EQ(tree.root().counters().completions, chunks);
  for (std::size_t s = 1; s < tree.n_switches(); ++s)
    EXPECT_EQ(tree.switch_at(s).counters().upstream_partials, chunks) << s;
}

TEST(Tree, RejectsDegenerateShapes) {
  TreeConfig cfg;
  cfg.levels = 1;
  EXPECT_THROW(TreeCluster{cfg}, std::invalid_argument);
}

} // namespace
} // namespace switchml::core
