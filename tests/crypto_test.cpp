// Crypto substrate tests (Appendix D): big-integer arithmetic identities,
// known-value checks, Miller-Rabin behaviour, and the Paillier homomorphic
// properties the encrypted-aggregation deployment relies on.
#include <gtest/gtest.h>

#include "crypto/bigint.hpp"
#include "crypto/paillier.hpp"

namespace switchml::crypto {
namespace {

TEST(BigInt, ConstructionAndHexRoundtrip) {
  EXPECT_EQ(BigInt(0).to_hex(), "0");
  EXPECT_EQ(BigInt(255).to_hex(), "ff");
  const std::string hex = "123456789abcdef0fedcba9876543210deadbeef";
  EXPECT_EQ(BigInt::from_hex(hex).to_hex(), hex);
  EXPECT_EQ(BigInt::from_hex("0x10").low64(), 16u);
}

TEST(BigInt, ComparisonOrdering) {
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_GT(BigInt::from_hex("10000000000000000"), BigInt(UINT64_MAX));
  EXPECT_EQ(BigInt(42), BigInt(42));
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a(UINT64_MAX);
  EXPECT_EQ(a.add(BigInt(1)).to_hex(), "10000000000000000");
  EXPECT_EQ(a.add(a).to_hex(), "1fffffffffffffffe");
}

TEST(BigInt, SubtractionBorrowsAcrossLimbs) {
  const BigInt a = BigInt::from_hex("10000000000000000");
  EXPECT_EQ(a.sub(BigInt(1)).low64(), UINT64_MAX);
  EXPECT_THROW(BigInt(1).sub(BigInt(2)), std::invalid_argument);
}

TEST(BigInt, MultiplicationKnownValues) {
  EXPECT_EQ(BigInt(1000000007).mul(BigInt(998244353)).low64(), 1000000007ull * 998244353ull);
  const BigInt a = BigInt::from_hex("ffffffffffffffff"); // 2^64-1
  EXPECT_EQ(a.mul(a).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigInt, ShiftsAreInverse) {
  const BigInt a = BigInt::from_hex("deadbeefcafebabe1234");
  EXPECT_EQ(a.shifted_left(77).shifted_right(77), a);
  EXPECT_EQ(a.shifted_right(200).to_hex(), "0");
}

TEST(BigInt, DivModSmallDivisor) {
  const auto dm = BigInt::from_hex("ffffffffffffffffffffffffffffffff").divmod(BigInt(10));
  EXPECT_EQ(dm.remainder.low64(), 5u); // 2^128-1 = ...5 mod 10
}

TEST(BigInt, DivModPropertyRandomized) {
  sim::Rng rng = sim::Rng::stream(1, "divmod");
  for (int i = 0; i < 200; ++i) {
    const auto abits = static_cast<std::size_t>(rng.uniform_int(1, 512));
    const auto bbits = static_cast<std::size_t>(rng.uniform_int(1, 512));
    const BigInt a = BigInt::random_bits(abits, rng);
    const BigInt b = BigInt::random_bits(bbits, rng);
    const auto dm = a.divmod(b);
    // a == q*b + r and r < b: the defining identity, checked with
    // independent mul/add.
    EXPECT_EQ(dm.quotient.mul(b).add(dm.remainder), a);
    EXPECT_LT(dm.remainder, b);
  }
}

TEST(BigInt, DivByZeroThrows) { EXPECT_THROW(BigInt(1).divmod(BigInt(0)), std::invalid_argument); }

TEST(BigInt, PowmodMatchesSmallIntegers) {
  // 7^13 mod 1000 = 96889010407 mod 1000 = 407.
  EXPECT_EQ(BigInt(7).powmod(BigInt(13), BigInt(1000)).low64(), 407u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const BigInt p(1000000007);
  EXPECT_EQ(BigInt(123456).powmod(p.sub(BigInt(1)), p).low64(), 1u);
}

TEST(BigInt, GcdLcmKnownValues) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)).low64(), 12u);
  EXPECT_EQ(BigInt::lcm(BigInt(4), BigInt(6)).low64(), 12u);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).low64(), 1u);
}

TEST(BigInt, ModInverseProperty) {
  sim::Rng rng = sim::Rng::stream(2, "inv");
  const BigInt m = BigInt::from_hex("fffffffb"); // prime 2^32-5
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_below(m, rng);
    if (a.is_zero()) continue;
    const BigInt inv = BigInt::modinv(a, m);
    EXPECT_EQ(a.mulmod(inv, m).low64(), 1u);
  }
  EXPECT_THROW(BigInt::modinv(BigInt(6), BigInt(9)), std::invalid_argument);
}

TEST(BigInt, MillerRabinKnownPrimesAndComposites) {
  sim::Rng rng = sim::Rng::stream(3, "mr");
  for (std::uint64_t p : {2ull, 3ull, 17ull, 1000000007ull, 2147483647ull})
    EXPECT_TRUE(BigInt(p).is_probable_prime(rng)) << p;
  // 561 is a Carmichael number (fools Fermat, not Miller-Rabin).
  for (std::uint64_t c : {1ull, 4ull, 561ull, 1000000008ull, 1000000007ull * 3ull})
    EXPECT_FALSE(BigInt(c).is_probable_prime(rng)) << c;
  // A known 128-bit prime: 2^127 - 1 (Mersenne).
  const BigInt m127 = BigInt(1).shifted_left(127).sub(BigInt(1));
  EXPECT_TRUE(m127.is_probable_prime(rng));
  // ... and 2^128 - 1 = (2^64-1)(2^64+1) is composite.
  EXPECT_FALSE(BigInt(1).shifted_left(128).sub(BigInt(1)).is_probable_prime(rng));
}

TEST(BigInt, RandomPrimeHasRequestedSize) {
  sim::Rng rng = sim::Rng::stream(4, "prime");
  const BigInt p = BigInt::random_prime(96, rng);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(p.is_probable_prime(rng));
}

// Differential testing against native 128-bit arithmetic: every operation on
// random small operands must agree exactly with __int128 math.
TEST(BigInt, DifferentialAgainstNative128) {
  sim::Rng rng = sim::Rng::stream(77, "diff");
  auto to_u128 = [](const BigInt& v) {
    unsigned __int128 r = 0;
    for (int limb = 1; limb >= 0; --limb)
      r = (r << 64) | v.shifted_right(static_cast<std::size_t>(limb) * 64)
                          .mod(BigInt::from_hex("10000000000000000"))
                          .low64();
    return r;
  };
  auto from_u128 = [](unsigned __int128 v) {
    BigInt hi(static_cast<std::uint64_t>(v >> 64));
    return hi.shifted_left(64).add(BigInt(static_cast<std::uint64_t>(v)));
  };
  for (int i = 0; i < 500; ++i) {
    const auto abits = static_cast<std::size_t>(rng.uniform_int(1, 100));
    const auto bbits = static_cast<std::size_t>(rng.uniform_int(1, 100));
    const BigInt a = BigInt::random_bits(abits, rng);
    const BigInt b = BigInt::random_bits(bbits, rng);
    const auto na = to_u128(a);
    const auto nb = to_u128(b);
    ASSERT_EQ(a.add(b), from_u128(na + nb));
    if (na >= nb) ASSERT_EQ(a.sub(b), from_u128(na - nb));
    if (abits + bbits <= 120) ASSERT_EQ(a.mul(b), from_u128(na * nb));
    const auto dm = a.divmod(b);
    ASSERT_EQ(dm.quotient, from_u128(na / nb));
    ASSERT_EQ(dm.remainder, from_u128(na % nb));
    ASSERT_EQ(BigInt::gcd(a, b), from_u128(std::__gcd(na, nb)));
  }
}

// ------------------------------------------------------------------ Paillier

struct PaillierFixture : public ::testing::Test {
  PaillierFixture() : rng(sim::Rng::stream(5, "paillier")), kp(paillier_keygen(256, rng)) {}
  sim::Rng rng;
  PaillierKeyPair kp;
};

TEST_F(PaillierFixture, EncryptDecryptRoundtrip) {
  for (std::uint64_t m : {0ull, 1ull, 42ull, 123456789ull}) {
    const BigInt c = kp.pub.encrypt(BigInt(m), rng);
    EXPECT_EQ(kp.priv.decrypt(c, kp.pub).low64(), m);
  }
}

TEST_F(PaillierFixture, EncryptionIsRandomized) {
  const BigInt c1 = kp.pub.encrypt(BigInt(7), rng);
  const BigInt c2 = kp.pub.encrypt(BigInt(7), rng);
  EXPECT_NE(c1, c2); // semantic security: same plaintext, fresh randomness
  EXPECT_EQ(kp.priv.decrypt(c1, kp.pub).low64(), 7u);
  EXPECT_EQ(kp.priv.decrypt(c2, kp.pub).low64(), 7u);
}

TEST_F(PaillierFixture, HomomorphicAdditionIsTheAppendixDIdentity) {
  // E(x) * E(y) = E(x + y) — the property that lets a modular-multiply
  // dataplane aggregate without decrypting.
  const BigInt cx = kp.pub.encrypt(BigInt(1234), rng);
  const BigInt cy = kp.pub.encrypt(BigInt(8766), rng);
  const BigInt csum = kp.pub.add_ciphertexts(cx, cy);
  EXPECT_EQ(kp.priv.decrypt(csum, kp.pub).low64(), 10000u);
}

TEST_F(PaillierFixture, ScalarMultiplication) {
  const BigInt c = kp.pub.encrypt(BigInt(21), rng);
  const BigInt c2 = kp.pub.scale_ciphertext(c, BigInt(2));
  EXPECT_EQ(kp.priv.decrypt(c2, kp.pub).low64(), 42u);
}

TEST_F(PaillierFixture, SignedEncodingSumsCorrectly) {
  // Quantized gradients are signed; wraparound encoding must survive sums.
  const std::int64_t xs[] = {1500, -700, -1200, 900};
  BigInt acc = kp.pub.encrypt_signed(xs[0], rng);
  for (int i = 1; i < 4; ++i)
    acc = kp.pub.add_ciphertexts(acc, kp.pub.encrypt_signed(xs[i], rng));
  EXPECT_EQ(kp.priv.decrypt_signed(acc, kp.pub), 500);
}

TEST_F(PaillierFixture, AggregatorSumsWorkerVectors) {
  EncryptedAggregator agg(kp.pub);
  const int n_workers = 4;
  const std::size_t d = 8;
  auto acc = agg.zero(d);
  std::vector<std::int64_t> expect(d, 0);
  sim::Rng vals = sim::Rng::stream(6, "vals");
  for (int w = 0; w < n_workers; ++w) {
    std::vector<BigInt> update(d);
    for (std::size_t i = 0; i < d; ++i) {
      const std::int64_t v = vals.uniform_int(-100000, 100000);
      expect[i] += v;
      update[i] = kp.pub.encrypt_signed(v, rng);
    }
    agg.accumulate(acc, update);
  }
  for (std::size_t i = 0; i < d; ++i)
    EXPECT_EQ(kp.priv.decrypt_signed(acc[i], kp.pub), expect[i]);
}

TEST_F(PaillierFixture, PlaintextOutOfRangeThrows) {
  EXPECT_THROW(kp.pub.encrypt(kp.pub.n, rng), std::invalid_argument);
}

TEST(Paillier, KeygenRejectsTinyModulus) {
  sim::Rng rng = sim::Rng::stream(7, "tiny");
  EXPECT_THROW(paillier_keygen(8, rng), std::invalid_argument);
}

} // namespace
} // namespace switchml::crypto
