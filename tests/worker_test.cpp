// Worker protocol unit tests: error handling, RTT sampling (Karn's rule),
// timeline sampling, destination resolver, wire-format effects.
#include <gtest/gtest.h>

#include "common/timeline.hpp"
#include "core/cluster.hpp"

namespace switchml::core {
namespace {

ClusterConfig cfg4() {
  ClusterConfig c;
  c.n_workers = 4;
  c.pool_size = 8;
  return c;
}

TEST(Worker, StartWhileActiveThrows) {
  Cluster cluster(cfg4());
  cluster.worker(0).start_reduction(1024, nullptr);
  EXPECT_THROW(cluster.worker(0).start_reduction(1024, nullptr), std::logic_error);
}

TEST(Worker, ZeroElementReductionCompletesImmediately) {
  Cluster cluster(cfg4());
  bool done = false;
  cluster.worker(0).start_reduction(0, [&] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_FALSE(cluster.worker(0).reduction_active());
}

TEST(Worker, DataReductionOnTimingOnlyWorkerThrows) {
  ClusterConfig c = cfg4();
  c.timing_only = true;
  Cluster cluster(c);
  std::vector<std::int32_t> u(64, 1), out(64);
  EXPECT_THROW(cluster.worker(0).start_reduction(u, out, nullptr), std::logic_error);
}

TEST(Worker, MismatchedSpansThrow) {
  Cluster cluster(cfg4());
  std::vector<std::int32_t> u(64, 1), out(32);
  EXPECT_THROW(cluster.worker(0).start_reduction(u, out, nullptr), std::invalid_argument);
}

TEST(Worker, RttSamplesArePlausible) {
  ClusterConfig c = cfg4();
  // The RTT ceiling below is calibrated for the UDP datapath; pin it so the
  // bound holds under -DSWITCHML_RDMA_DEFAULT=ON.
  c.transport = net::TransportKind::kUdp;
  c.timing_only = true;
  Cluster cluster(c);
  cluster.reduce_timing(32 * 8 * 10);
  const auto& rtt = cluster.worker(0).rtt();
  ASSERT_FALSE(rtt.empty());
  // RTT must be at least the two NIC latencies plus wire time, and
  // single-digit-to-tens of microseconds in this configuration.
  EXPECT_GT(rtt.min(), to_usec(c.nic.tx_latency + c.nic.rx_latency));
  EXPECT_LT(rtt.max(), 100.0);
}

TEST(Worker, KarnsRuleExcludesRetransmittedPackets) {
  // With a too-short RTO every packet times out before its (normal-latency)
  // result arrives; Karn's rule must discard all those samples.
  ClusterConfig c = cfg4();
  c.timing_only = true;
  c.retransmit_timeout = usec(2); // well under the ~10 us RTT
  Cluster cluster(c);
  cluster.reduce_timing(32 * 8);
  EXPECT_GT(cluster.worker(0).counters().retransmissions, 0u);
  // Every in-flight packet was retransmitted at least once -> no clean samples.
  EXPECT_EQ(cluster.worker(0).rtt().count(), 0u);
}

TEST(Worker, TimelineDeltasCountAllSentPackets) {
  ClusterConfig c = cfg4();
  c.timing_only = true;
  Cluster cluster(c);
  TimelineRecorder::Config tc;
  tc.period = usec(100);
  TimelineRecorder timeline(cluster.simulation(), cluster.metrics(), tc);
  timeline.start();
  cluster.reduce_timing(32 * 256);
  timeline.finish();
  const auto deltas = timeline.deltas("worker-0.updates_sent");
  std::uint64_t total = 0;
  for (auto d : deltas) total += d;
  EXPECT_EQ(total, cluster.worker(0).counters().updates_sent);
  EXPECT_GT(deltas.size(), 1u); // the run spans several sampling periods
}

TEST(Worker, InvalidTimelinePeriodThrows) {
  Cluster cluster(cfg4());
  TimelineRecorder::Config tc;
  tc.period = 0;
  EXPECT_THROW(TimelineRecorder(cluster.simulation(), cluster.metrics(), tc),
               std::invalid_argument);
}

TEST(Worker, Fp16WireHalvesAggregationTime) {
  ClusterConfig c32 = cfg4();
  c32.timing_only = true;
  c32.pool_size = 128;
  ClusterConfig c16 = c32;
  c16.wire_elem_bytes = 2;
  Time t32, t16;
  {
    Cluster cluster(c32);
    t32 = cluster.reduce_timing(1 << 18)[0];
  }
  {
    Cluster cluster(c16);
    t16 = cluster.reduce_timing(1 << 18)[0];
  }
  EXPECT_LT(to_msec(t16), to_msec(t32) * 0.75);
  EXPECT_GT(to_msec(t16), to_msec(t32) * 0.4);
}

TEST(Worker, SelfClockingKeepsInFlightBounded) {
  // The number of update packets a worker ever sends (absent loss) is
  // exactly the chunk count: one per result, no more — the protocol is
  // strictly self-clocked after the initial window.
  ClusterConfig c = cfg4();
  c.timing_only = true;
  c.pool_size = 16;
  Cluster cluster(c);
  const std::uint64_t chunks = 1000;
  cluster.reduce_timing(32 * chunks);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(cluster.worker(w).counters().updates_sent, chunks);
    EXPECT_EQ(cluster.worker(w).counters().retransmissions, 0u);
  }
}

TEST(Worker, AdaptiveRtoTracksMeasuredRtt) {
  ClusterConfig c = cfg4();
  c.timing_only = true;
  c.adaptive_rto = true;
  Cluster cluster(c);
  cluster.reduce_timing(32 * 8 * 50);
  // RTT ~ 10 us here; the Jacobson estimate clamps at rto_min (150 us),
  // far below the 1 ms fixed default.
  EXPECT_LT(cluster.worker(0).current_rto(), usec(300));
  EXPECT_GE(cluster.worker(0).current_rto(), usec(150));
}

TEST(Worker, AdaptiveRtoAvoidsSpuriousRetransmissionsUnderLoad) {
  // Clean network, adaptive timers: even across many phases no retransmission
  // should ever fire (RTO stays safely above the stable RTT).
  ClusterConfig c = cfg4();
  c.timing_only = true;
  c.adaptive_rto = true;
  c.pool_size = 64;
  Cluster cluster(c);
  cluster.reduce_timing(32 * 64 * 20);
  for (int w = 0; w < 4; ++w)
    EXPECT_EQ(cluster.worker(w).counters().retransmissions, 0u) << w;
}

TEST(Worker, MtuModeUsesLargePackets) {
  ClusterConfig c = cfg4();
  c.timing_only = true;
  c.elems_per_packet = net::kMtuElemsPerPacket;
  c.mtu_emulation = true;
  Cluster cluster(c);
  const std::uint64_t elems = 366 * 100;
  cluster.reduce_timing(elems);
  EXPECT_EQ(cluster.worker(0).counters().updates_sent, 100u);
}

} // namespace
} // namespace switchml::core
