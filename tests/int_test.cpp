// In-band telemetry tests: wire format roundtrip + fuzz against a reference
// decoder, honest header accounting (incl. the fig7 MTU goodput ratios),
// O(1) link queue-depth accessors, passivity of the phantom mode, loss-free
// equivalence of the on-wire mode, and the fault localizer's verdict rules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/int_telemetry.hpp"
#include "common/metrics.hpp"
#include "core/cluster.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace switchml {
namespace {

using inttel::HopKey;
using inttel::IntHopRecord;

IntHopRecord sample_record(std::uint32_t i) {
  IntHopRecord rec;
  rec.hop_id = i;
  rec.next_hop = i + 1;
  rec.hop_latency_ns = 1000 + i;
  rec.queue_bytes = 77 * i;
  rec.queue_pkts = static_cast<std::uint16_t>(3 * i);
  rec.flags = static_cast<std::uint16_t>(i % 3);
  rec.drops = i * i;
  rec.pool_occupancy = 128 - i;
  rec.fanin = static_cast<std::uint16_t>(8 + i);
  rec.epoch = static_cast<std::uint16_t>(i);
  return rec;
}

TEST(IntWire, RoundtripPreservesEveryField) {
  std::vector<std::uint8_t> stack;
  for (std::uint32_t i = 0; i < 3; ++i) ASSERT_TRUE(inttel::append_record(stack, sample_record(i)));
  EXPECT_EQ(stack.size(), inttel::kShimBytes + 3 * inttel::kRecordBytes);
  EXPECT_EQ(inttel::stack_wire_bytes(stack), stack.size());
  EXPECT_EQ(inttel::last_hop_id(stack), 2u);

  const inttel::ParsedStack parsed = inttel::parse_stack(stack);
  ASSERT_TRUE(parsed.ok);
  EXPECT_FALSE(parsed.truncated);
  ASSERT_EQ(parsed.hops.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(parsed.hops[i], sample_record(i));
}

TEST(IntWire, TruncatesAtMaxHopsAndSetsShimFlag) {
  std::vector<std::uint8_t> stack;
  for (std::uint32_t i = 0; i < inttel::kMaxHops; ++i)
    ASSERT_TRUE(inttel::append_record(stack, sample_record(i)));
  // Hop kMaxHops does not fit: the stack stops growing and is flagged.
  EXPECT_FALSE(inttel::append_record(stack, sample_record(99)));
  EXPECT_EQ(stack.size(), inttel::kShimBytes + inttel::kMaxHops * inttel::kRecordBytes);
  const inttel::ParsedStack parsed = inttel::parse_stack(stack);
  ASSERT_TRUE(parsed.ok);
  EXPECT_TRUE(parsed.truncated);
  EXPECT_EQ(parsed.hops.size(), static_cast<std::size_t>(inttel::kMaxHops));
}

TEST(IntWire, ParseRejectsMalformedStacks) {
  std::vector<std::uint8_t> stack;
  ASSERT_TRUE(inttel::append_record(stack, sample_record(1)));

  EXPECT_FALSE(inttel::parse_stack(std::vector<std::uint8_t>{}).ok); // empty is not a stack
  auto bad_magic = stack;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(inttel::parse_stack(bad_magic).ok);
  auto bad_version = stack;
  bad_version[1] = inttel::kVersion + 1;
  EXPECT_FALSE(inttel::parse_stack(bad_version).ok);
  auto bad_count = stack;
  bad_count[2] = 2; // claims 2 hops, carries 1
  EXPECT_FALSE(inttel::parse_stack(bad_count).ok);
  auto short_tail = stack;
  short_tail.pop_back();
  EXPECT_FALSE(inttel::parse_stack(short_tail).ok);
}

// Independent reference decoder: reads the documented little-endian layout
// byte by byte, sharing no code with inttel::parse_stack.
std::optional<std::vector<IntHopRecord>> reference_decode(const std::vector<std::uint8_t>& b,
                                                          bool* truncated) {
  auto u16 = [&](std::size_t o) {
    return static_cast<std::uint16_t>(b[o] | (b[o + 1] << 8));
  };
  auto u32 = [&](std::size_t o) {
    return static_cast<std::uint32_t>(b[o]) | (static_cast<std::uint32_t>(b[o + 1]) << 8) |
           (static_cast<std::uint32_t>(b[o + 2]) << 16) |
           (static_cast<std::uint32_t>(b[o + 3]) << 24);
  };
  if (b.size() < 4 || b[0] != 0xA7 || b[1] != 1) return std::nullopt;
  const std::size_t hops = b[2];
  if (hops > 8 || b.size() != 4 + hops * 32) return std::nullopt;
  *truncated = (b[3] & 1) != 0;
  std::vector<IntHopRecord> out(hops);
  for (std::size_t h = 0; h < hops; ++h) {
    const std::size_t o = 4 + h * 32;
    out[h].hop_id = u32(o);
    out[h].next_hop = u32(o + 4);
    out[h].hop_latency_ns = u32(o + 8);
    out[h].queue_bytes = u32(o + 12);
    out[h].queue_pkts = u16(o + 16);
    out[h].flags = u16(o + 18);
    out[h].drops = u32(o + 20);
    out[h].pool_occupancy = u32(o + 24);
    out[h].fanin = u16(o + 28);
    out[h].epoch = u16(o + 30);
  }
  return out;
}

TEST(IntWire, FuzzAgreesWithReferenceDecoder) {
  sim::Rng rng = sim::Rng::stream(7, "int-fuzz");
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> buf;
    if (rng.uniform_int(0, 3) == 0) {
      // Raw random buffer (usually malformed).
      buf.resize(static_cast<std::size_t>(rng.uniform_int(0, 300)));
      for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    } else {
      // Valid stack, then a few random byte flips.
      const int hops = static_cast<int>(rng.uniform_int(1, inttel::kMaxHops));
      for (int h = 0; h < hops; ++h)
        inttel::append_record(buf, sample_record(static_cast<std::uint32_t>(
                                       rng.uniform_int(0, 1'000'000))));
      const int flips = static_cast<int>(rng.uniform_int(0, 3));
      for (int f = 0; f < flips; ++f) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1));
        buf[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
    }
    bool ref_trunc = false;
    const auto ref = reference_decode(buf, &ref_trunc);
    const inttel::ParsedStack got = inttel::parse_stack(buf);
    ASSERT_EQ(got.ok, ref.has_value()) << "iter " << iter;
    if (ref.has_value()) {
      EXPECT_EQ(got.truncated, ref_trunc);
      ASSERT_EQ(got.hops.size(), ref->size());
      for (std::size_t h = 0; h < ref->size(); ++h) EXPECT_EQ(got.hops[h], (*ref)[h]);
    }
  }
}

// Satellite 2: every header byte is accounted for. The SwitchML wire format
// is 52 bytes of headers (Ethernet + IP + UDP + SwitchML) plus the payload;
// INT adds its shim + records ONLY in on-wire mode.
TEST(IntWire, HeaderAccountingIsHonest) {
  net::Packet p;
  p.kind = net::PacketKind::SmlUpdate;
  p.elem_count = 32;
  p.elem_bytes = 4;
  EXPECT_EQ(p.wire_bytes(), 180u); // §3.4 baseline packet
  p.elem_count = 366;
  EXPECT_EQ(p.wire_bytes(), 1516u); // §5.5 MTU packet

  if (!inttel::kCompiledIn) GTEST_SKIP() << "telemetry compiled out (SWITCHML_INT=0)";

  // Phantom mode: records ride the packet object, zero bytes on the wire.
  p.int_mode = inttel::kModePhantom;
  inttel::append_record(p.int_stack, sample_record(1));
  EXPECT_EQ(p.int_wire_bytes(), 0u);
  EXPECT_EQ(p.wire_bytes(), 1516u);

  // On-wire mode: shim + every record is real bytes, MTU accounting included.
  p.int_mode = inttel::kModeOnWire;
  EXPECT_EQ(p.int_wire_bytes(), inttel::kShimBytes + inttel::kRecordBytes);
  EXPECT_EQ(p.wire_bytes(), 1516u + inttel::kShimBytes + inttel::kRecordBytes);
  inttel::append_record(p.int_stack, sample_record(2));
  EXPECT_EQ(p.wire_bytes(), 1516u + inttel::kShimBytes + 2 * inttel::kRecordBytes);

  // Fig 7 goodput ratios: payload / wire for the two MTU points, and the
  // honest INT-on-wire degradation of each (one full 3-hop rack stack).
  const double base_small = 128.0 / 180.0;
  const double base_mtu = 1464.0 / 1516.0;
  EXPECT_NEAR(base_small, 0.7111, 1e-3);
  EXPECT_NEAR(base_mtu, 0.9657, 1e-3);
  const double int_bytes = inttel::kShimBytes + 3.0 * inttel::kRecordBytes;
  EXPECT_NEAR(128.0 / (180.0 + int_bytes), 0.4571, 1e-3);  // small packets pay dearly
  EXPECT_NEAR(1464.0 / (1516.0 + int_bytes), 0.9059, 1e-3); // MTU absorbs INT well
}

// --- O(1) queue accessors ----------------------------------------------------

class QueueProbeNode : public net::Node {
public:
  using Node::Node;
  void receive(net::Packet&&, int) override {}
};

net::Packet seg_packet(std::uint32_t wire, net::NodeId src, net::NodeId dst) {
  net::Packet p;
  p.kind = net::PacketKind::Segment;
  p.seg_len = wire - net::kSegmentHeaderBytes;
  p.src = src;
  p.dst = dst;
  return p;
}

TEST(IntLink, QueueDepthAccessorsTrackTheBacklogExactly) {
  sim::Simulation sim;
  QueueProbeNode a(sim, 0, "a");
  QueueProbeNode b(sim, 1, "b");
  net::LinkConfig cfg;
  cfg.rate = gbps(10);
  cfg.propagation = 0;
  net::Link link(sim, cfg, a, 0, b, 0, 1);

  const Time ser = serialization_time(1000, cfg.rate); // 800 ns per packet
  for (int i = 0; i < 3; ++i) link.send_from(a, seg_packet(1000, 0, 1));
  EXPECT_EQ(link.queue_depth_bytes(a), 3000);
  EXPECT_EQ(link.queue_depth_pkts(a), 3);
  EXPECT_EQ(link.queue_depth_bytes(b), 0); // full duplex: other direction empty

  // Sample mid-drain: at 1.5 ser the first packet has finished serializing.
  sim.schedule_timer(ser + ser / 2, [&] {
    EXPECT_EQ(link.queue_depth_bytes(a), 2000);
    EXPECT_EQ(link.queue_depth_pkts(a), 2);
  });
  sim.run();
  EXPECT_EQ(link.queue_depth_bytes(a), 0);
  EXPECT_EQ(link.queue_depth_pkts(a), 0);
}

TEST(IntLink, StampsOneRecordPerTraversal) {
  if (!inttel::kCompiledIn) GTEST_SKIP() << "telemetry compiled out (SWITCHML_INT=0)";
  sim::Simulation sim;
  class Catcher : public net::Node {
  public:
    using Node::Node;
    void receive(net::Packet&& p, int) override { got.push_back(std::move(p)); }
    std::vector<net::Packet> got;
  };
  Catcher a(sim, 0, "a");
  Catcher b(sim, 1, "b");
  net::LinkConfig cfg;
  cfg.rate = gbps(10);
  cfg.propagation = nsec(500);
  net::Link link(sim, cfg, a, 0, b, 0, 1);

  net::Packet p;
  p.kind = net::PacketKind::SmlUpdate;
  p.elem_count = 32;
  p.elem_bytes = 4;
  p.src = 0;
  p.dst = 1;
  p.int_mode = inttel::kModeOnWire;
  p.seal();
  link.send_from(a, std::move(p));
  sim.run();
  ASSERT_EQ(b.got.size(), 1u);
  const inttel::ParsedStack parsed = inttel::parse_stack(b.got[0].int_stack);
  ASSERT_TRUE(parsed.ok);
  ASSERT_EQ(parsed.hops.size(), 1u);
  const IntHopRecord& rec = parsed.hops[0];
  EXPECT_EQ(rec.hop_id, 0u);
  EXPECT_EQ(rec.next_hop, 1u);
  // Idle link: hop latency is serialization (INT bytes included) + propagation.
  const auto wire = 180u + inttel::kShimBytes + inttel::kRecordBytes;
  EXPECT_EQ(rec.hop_latency_ns,
            static_cast<std::uint32_t>(serialization_time(wire, cfg.rate) + cfg.propagation));
  EXPECT_EQ(rec.queue_pkts, 0u);
  EXPECT_EQ(rec.drops, 0u);
  // The checksum ignores the (hop-mutated) INT fields but still guards the
  // SwitchML header/payload.
  EXPECT_TRUE(b.got[0].verify());
}

// --- mode passivity / equivalence -------------------------------------------

core::ClusterConfig int_config(int workers, std::uint8_t mode, bool timing) {
  core::ClusterConfig c = core::ClusterConfig::for_rate(gbps(10), workers);
  c.timing_only = timing;
  c.int_mode = mode;
  return c;
}

TEST(IntModes, PhantomModeIsBitIdenticalToOff) {
  // Same seed, same tensor: phantom telemetry must not move a single event.
  std::vector<Time> tats_off;
  std::uint64_t completions_off = 0;
  std::uint64_t sent_off = 0;
  {
    core::Cluster cluster(int_config(4, inttel::kModeOff, true));
    tats_off = cluster.reduce_timing(64 * 1024);
    completions_off = cluster.agg_switch().counters().completions;
    sent_off = cluster.worker(0).counters().updates_sent;
  }
  core::Cluster cluster(int_config(4, inttel::kModePhantom, true));
  const auto tats = cluster.reduce_timing(64 * 1024);
  EXPECT_EQ(tats, tats_off);
  EXPECT_EQ(cluster.agg_switch().counters().completions, completions_off);
  EXPECT_EQ(cluster.worker(0).counters().updates_sent, sent_off);
  // ... while the telemetry itself flowed: every result carried a stack.
  // (Compiled out, the identity above still holds — with no stamping at all.)
  if (inttel::kCompiledIn) {
    const inttel::IntCollector* col = cluster.worker(0).int_collector();
    ASSERT_NE(col, nullptr);
    EXPECT_GT(col->records_parsed(), 0u);
    EXPECT_EQ(col->parse_errors(), 0u);
  }
}

TEST(IntModes, OnWireKeepsLossFreeProtocolAndDataExact) {
  // Loss-free fabric: on-wire INT shifts timing (honest extra bytes) but no
  // packet is created, dropped, or reordered — protocol counts and the
  // aggregated values stay identical.
  auto updates = [] {
    sim::Rng rng = sim::Rng::stream(11, "int-updates");
    std::vector<std::vector<std::int32_t>> u(4);
    for (auto& v : u) {
      v.resize(4096);
      for (auto& e : v) e = static_cast<std::int32_t>(rng.uniform_int(-1'000'000, 1'000'000));
    }
    return u;
  }();

  core::Cluster off(int_config(4, inttel::kModeOff, false));
  const auto r_off = off.reduce_i32(updates);
  core::Cluster wire(int_config(4, inttel::kModeOnWire, false));
  const auto r_wire = wire.reduce_i32(updates);

  EXPECT_EQ(r_off.outputs, r_wire.outputs);
  EXPECT_EQ(off.agg_switch().counters().completions, wire.agg_switch().counters().completions);
  EXPECT_EQ(off.worker(0).counters().updates_sent, wire.worker(0).counters().updates_sent);
  EXPECT_EQ(wire.worker(0).counters().retransmissions, 0u);
  // The extra bytes are real: the on-wire run cannot be faster.
  for (std::size_t i = 0; i < r_off.tat.size(); ++i) EXPECT_GE(r_wire.tat[i], r_off.tat[i]);
}

TEST(IntModes, DisabledFabricRegistersNoIntSeries) {
  core::Cluster off(int_config(2, inttel::kModeOff, true));
  EXPECT_EQ(off.metrics().snapshot().json().find("\"int."), std::string::npos);
  EXPECT_EQ(off.worker(0).int_collector(), nullptr);
  EXPECT_EQ(off.fabric().int_localizer(), nullptr);

  if (!inttel::kCompiledIn) return; // compiled out: no fabric ever builds the stack
  core::Cluster on(int_config(2, inttel::kModePhantom, true));
  EXPECT_NE(on.metrics().snapshot().json().find("\"int."), std::string::npos);
  EXPECT_NE(on.worker(0).int_collector(), nullptr);
  EXPECT_NE(on.fabric().int_localizer(), nullptr);
}

// --- localizer rules ---------------------------------------------------------

IntHopRecord link_record(std::uint32_t from, std::uint32_t to, std::uint32_t drops) {
  IntHopRecord rec;
  rec.hop_id = from;
  rec.next_hop = to;
  rec.hop_latency_ns = 1000;
  rec.drops = drops;
  return rec;
}

TEST(Localizer, EpochBumpIsSwitchRestarted) {
  inttel::FaultLocalizer loc;
  IntHopRecord rec;
  rec.hop_id = 50;
  rec.flags = inttel::kHopFlagSwitch;
  rec.epoch = 0;
  loc.on_record(1, inttel::key_of(rec), rec, 10);
  EXPECT_EQ(loc.count(inttel::FaultLocalizer::Verdict::Kind::kSwitchRestarted), 0u);
  rec.epoch = 1;
  loc.on_record(1, inttel::key_of(rec), rec, 20);
  loc.on_record(2, inttel::key_of(rec), rec, 30); // same epoch seen again: no re-fire
  EXPECT_EQ(loc.count(inttel::FaultLocalizer::Verdict::Kind::kSwitchRestarted), 1u);
  ASSERT_EQ(loc.verdicts().size(), 1u);
  EXPECT_EQ(loc.verdicts()[0].a, 50u);
  EXPECT_EQ(loc.verdicts()[0].detail, 1u);
  rec.epoch = 2;
  loc.on_record(1, inttel::key_of(rec), rec, 40);
  EXPECT_EQ(loc.count(inttel::FaultLocalizer::Verdict::Kind::kSwitchRestarted), 2u);
}

TEST(Localizer, DropsAfterSilenceGapAreSlowLink) {
  inttel::FaultLocalizer loc;
  const HopKey key{3, 9, HopKey::kLink};
  Time now = 0;
  for (int i = 0; i < 20; ++i) { // steady 1 us cadence, no drops: baseline
    now += usec(1);
    loc.on_record(3, key, link_record(3, 9, 0), now);
  }
  now += usec(500); // silence ≫ max(8 × 1 us, 50 us), then drops surface
  loc.on_record(3, key, link_record(3, 9, 7), now);
  ASSERT_EQ(loc.verdicts().size(), 1u);
  EXPECT_EQ(loc.verdicts()[0].kind, inttel::FaultLocalizer::Verdict::Kind::kSlowLink);
  EXPECT_EQ(loc.verdicts()[0].a, 3u);
  EXPECT_EQ(loc.verdicts()[0].b, 9u);
  EXPECT_EQ(loc.verdicts()[0].detail, 7u);
  // The reverse direction's drops dedup onto the same undirected link.
  const HopKey rev{9, 3, HopKey::kLink};
  Time rnow = 0;
  for (int i = 0; i < 20; ++i) {
    rnow += usec(1);
    loc.on_record(3, rev, link_record(9, 3, 0), rnow);
  }
  loc.on_record(3, rev, link_record(9, 3, 4), rnow + usec(1));
  EXPECT_EQ(loc.verdicts().size(), 1u);
}

TEST(Localizer, DropsUnderSteadyTrafficAreCongestion) {
  inttel::FaultLocalizer loc;
  const HopKey key{4, 9, HopKey::kLink};
  Time now = 0;
  for (int i = 0; i < 20; ++i) {
    now += usec(1);
    loc.on_record(4, key, link_record(4, 9, 0), now);
  }
  now += usec(1); // records kept flowing: load shedding, not an outage
  loc.on_record(4, key, link_record(4, 9, 3), now);
  ASSERT_EQ(loc.verdicts().size(), 1u);
  EXPECT_EQ(loc.verdicts()[0].kind, inttel::FaultLocalizer::Verdict::Kind::kCongestedHop);
}

TEST(Localizer, ResidualOutlierIsStraggler) {
  inttel::FaultLocalizer loc;
  Time now = 0;
  // 4 workers; worker 0's host residual is 40x the fleet's.
  for (int round = 0; round < 30; ++round) {
    now += usec(10);
    loc.on_residual(100, 40'000, now);
    for (std::uint32_t w = 1; w < 4; ++w) loc.on_residual(100 + w, 1'000, now);
  }
  EXPECT_EQ(loc.count(inttel::FaultLocalizer::Verdict::Kind::kStraggler), 1u);
  ASSERT_GE(loc.verdicts().size(), 1u);
  EXPECT_EQ(loc.verdicts()[0].a, 100u);
  const std::string json = loc.json();
  EXPECT_NE(json.find("straggler"), std::string::npos);
}

TEST(Localizer, HealthyFleetStaysQuiet) {
  inttel::FaultLocalizer loc;
  Time now = 0;
  for (int round = 0; round < 50; ++round) {
    now += usec(10);
    for (std::uint32_t w = 0; w < 4; ++w) loc.on_residual(100 + w, 1'000 + w * 50, now);
    loc.on_record(1, HopKey{1, 9, HopKey::kLink}, link_record(1, 9, 0), now);
  }
  EXPECT_TRUE(loc.verdicts().empty());
}

TEST(Collector, CountsParseErrorsAndTruncation) {
  MetricsRegistry reg;
  MetricsRegistry::Scope scope(&reg);
  inttel::IntCollector col("int.test.");
  col.observe(1, std::vector<std::uint8_t>{0xDE, 0xAD}, 0, -1);
  EXPECT_EQ(col.parse_errors(), 1u);

  std::vector<std::uint8_t> full;
  for (std::uint32_t i = 0; i < inttel::kMaxHops; ++i)
    inttel::append_record(full, sample_record(i));
  inttel::append_record(full, sample_record(9)); // sets the truncated flag
  col.observe(1, full, 0, -1);
  EXPECT_EQ(col.truncated_stacks(), 1u);
  EXPECT_EQ(col.records_parsed(), static_cast<std::uint64_t>(inttel::kMaxHops));
  EXPECT_EQ(reg.snapshot().counter("int.test.parse_errors"), 1);
}

} // namespace
} // namespace switchml
