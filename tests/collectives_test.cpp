// Baseline-collective tests: data correctness of ring, halving-doubling and
// both parameter-server implementations (bulk and streaming), loss recovery,
// and the timing relationships Fig 4 is built on.
#include <gtest/gtest.h>

#include <cmath>

#include "collectives/baseline_cluster.hpp"
#include "collectives/bounds.hpp"
#include "collectives/halving_doubling.hpp"
#include "collectives/ps.hpp"
#include "collectives/ring.hpp"
#include "collectives/streaming_ps.hpp"
#include "core/profiles.hpp"
#include "sim/rng.hpp"

namespace switchml::collectives {
namespace {

std::vector<std::vector<float>> random_buffers(int n, std::size_t d, std::uint64_t seed) {
  sim::Rng rng = sim::Rng::stream(seed, "collective");
  std::vector<std::vector<float>> b(static_cast<std::size_t>(n), std::vector<float>(d));
  for (auto& v : b)
    for (auto& e : v) e = static_cast<float>(rng.uniform_int(-1000, 1000));
  return b;
}

std::vector<float> float_sum(const std::vector<std::vector<float>>& b) {
  std::vector<float> s(b.front().size(), 0.0f);
  for (const auto& v : b)
    for (std::size_t i = 0; i < v.size(); ++i) s[i] += v[i];
  return s;
}

BaselineClusterConfig small_cfg(int hosts) {
  BaselineClusterConfig cfg;
  cfg.n_hosts = hosts;
  cfg.nic = core::gloo_tcp(gbps(10)).nic;
  return cfg;
}

// --------------------------------------------------------------------- ring

TEST(Ring, ComputesExactSums) {
  BaselineCluster cluster(small_cfg(4));
  auto buffers = random_buffers(4, 4096, 1);
  const auto expect = float_sum(buffers);
  RingAllReduce ring(cluster, core::gloo_tcp(gbps(10)).transport);
  const Time t = ring.run(buffers);
  EXPECT_GT(t, 0);
  for (int h = 0; h < 4; ++h) EXPECT_EQ(buffers[static_cast<std::size_t>(h)], expect);
}

TEST(Ring, WorksWithNonDivisibleSizes) {
  BaselineCluster cluster(small_cfg(4));
  auto buffers = random_buffers(4, 4097, 2); // not divisible by n
  const auto expect = float_sum(buffers);
  RingAllReduce ring(cluster, core::gloo_tcp(gbps(10)).transport);
  ring.run(buffers);
  EXPECT_EQ(buffers[3], expect);
}

TEST(Ring, TwoHostsDegenerate) {
  BaselineCluster cluster(small_cfg(2));
  auto buffers = random_buffers(2, 1024, 3);
  const auto expect = float_sum(buffers);
  RingAllReduce ring(cluster, core::gloo_tcp(gbps(10)).transport);
  ring.run(buffers);
  EXPECT_EQ(buffers[0], expect);
}

TEST(Ring, SurvivesUniformLoss) {
  auto cfg = small_cfg(4);
  cfg.loss_prob = 0.01;
  BaselineCluster cluster(cfg);
  auto buffers = random_buffers(4, 8192, 4);
  const auto expect = float_sum(buffers);
  RingAllReduce ring(cluster, core::gloo_tcp(gbps(10)).transport);
  ring.run(buffers);
  EXPECT_EQ(buffers[0], expect);
  EXPECT_GT(ring.counters().retransmissions, 0u);
}

TEST(Ring, LossInflatesCompletionTime) {
  Time clean, lossy;
  {
    BaselineCluster cluster(small_cfg(4));
    RingAllReduce ring(cluster, core::gloo_tcp(gbps(10)).transport);
    clean = ring.run(static_cast<std::int64_t>(4) * 1024 * 1024);
  }
  {
    auto cfg = small_cfg(4);
    cfg.loss_prob = 0.005;
    BaselineCluster cluster(cfg);
    RingAllReduce ring(cluster, core::gloo_tcp(gbps(10)).transport);
    lossy = ring.run(static_cast<std::int64_t>(4) * 1024 * 1024);
  }
  EXPECT_GT(lossy, clean);
}

// ---------------------------------------------------------- halving-doubling

TEST(HalvingDoubling, ComputesExactSums) {
  BaselineCluster cluster(small_cfg(8));
  auto buffers = random_buffers(8, 4096, 5);
  const auto expect = float_sum(buffers);
  HalvingDoublingAllReduce hd(cluster, core::gloo_tcp(gbps(10)).transport);
  hd.run(buffers);
  for (int h = 0; h < 8; ++h) EXPECT_EQ(buffers[static_cast<std::size_t>(h)], expect);
}

TEST(HalvingDoubling, OddSizesAndSmallVectors) {
  BaselineCluster cluster(small_cfg(4));
  auto buffers = random_buffers(4, 37, 6);
  const auto expect = float_sum(buffers);
  HalvingDoublingAllReduce hd(cluster, core::gloo_tcp(gbps(10)).transport);
  hd.run(buffers);
  EXPECT_EQ(buffers[2], expect);
}

TEST(HalvingDoubling, RejectsNonPowerOfTwo) {
  BaselineCluster cluster(small_cfg(6));
  HalvingDoublingAllReduce hd(cluster, core::gloo_tcp(gbps(10)).transport);
  EXPECT_THROW(hd.run(static_cast<std::int64_t>(4096)), std::invalid_argument);
}

TEST(HalvingDoubling, FewerRoundsThanRingForSmallTensors) {
  // log2(n) vs 2(n-1) rounds: for latency-bound (tiny) tensors HD wins.
  auto cfg = small_cfg(8);
  Time t_ring, t_hd;
  {
    BaselineCluster cluster(cfg);
    RingAllReduce ring(cluster, core::gloo_tcp(gbps(10)).transport);
    t_ring = ring.run(static_cast<std::int64_t>(1024));
  }
  {
    BaselineCluster cluster(cfg);
    HalvingDoublingAllReduce hd(cluster, core::gloo_tcp(gbps(10)).transport);
    t_hd = hd.run(static_cast<std::int64_t>(1024));
  }
  EXPECT_LT(t_hd, t_ring);
}

// ------------------------------------------------------------------- bulk PS

TEST(BulkPs, DedicatedComputesExactSums) {
  BaselineClusterConfig cfg = small_cfg(8); // 4 workers + 4 PS
  cfg.nic = core::ps_host_nic(gbps(10));
  BaselineCluster cluster(cfg);
  auto buffers = random_buffers(4, 4096, 7);
  const auto expect = float_sum(buffers);
  ParameterServerAllReduce ps(cluster, 4, PsPlacement::Dedicated, core::ps_transport_mtu());
  ps.run(buffers);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(buffers[static_cast<std::size_t>(w)], expect);
}

TEST(BulkPs, ColocatedComputesExactSums) {
  BaselineClusterConfig cfg = small_cfg(4);
  cfg.nic = core::ps_host_nic(gbps(10));
  BaselineCluster cluster(cfg);
  auto buffers = random_buffers(4, 4096, 8);
  const auto expect = float_sum(buffers);
  ParameterServerAllReduce ps(cluster, 4, PsPlacement::Colocated, core::ps_transport_mtu());
  ps.run(buffers);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(buffers[static_cast<std::size_t>(w)], expect);
}

TEST(BulkPs, TooSmallClusterThrows) {
  BaselineCluster cluster(small_cfg(4));
  EXPECT_THROW(
      ParameterServerAllReduce(cluster, 4, PsPlacement::Dedicated, core::ps_transport_mtu()),
      std::invalid_argument);
}

// -------------------------------------------------------------- streaming PS

StreamingPsConfig sps_cfg(int n, StreamingPsPlacement placement, double loss = 0.0) {
  StreamingPsConfig cfg;
  cfg.n_workers = n;
  cfg.placement = placement;
  cfg.pool_size = 16;
  cfg.loss_prob = loss;
  cfg.nic = core::ps_host_nic(gbps(10));
  return cfg;
}

std::vector<std::vector<std::int32_t>> random_i32(int n, std::size_t d, std::uint64_t seed) {
  sim::Rng rng = sim::Rng::stream(seed, "sps");
  std::vector<std::vector<std::int32_t>> u(static_cast<std::size_t>(n),
                                           std::vector<std::int32_t>(d));
  for (auto& v : u)
    for (auto& e : v) e = static_cast<std::int32_t>(rng.uniform_int(-100000, 100000));
  return u;
}

std::vector<std::int32_t> i32_sum(const std::vector<std::vector<std::int32_t>>& u) {
  std::vector<std::int32_t> s(u.front().size(), 0);
  for (const auto& v : u)
    for (std::size_t i = 0; i < v.size(); ++i) s[i] += v[i];
  return s;
}

TEST(StreamingPs, DedicatedComputesExactSums) {
  StreamingPsCluster cluster(sps_cfg(4, StreamingPsPlacement::Dedicated));
  auto updates = random_i32(4, 8192, 9);
  auto result = cluster.reduce_i32(updates);
  const auto expect = i32_sum(updates);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(result.outputs[static_cast<std::size_t>(w)], expect);
}

TEST(StreamingPs, ColocatedComputesExactSums) {
  StreamingPsCluster cluster(sps_cfg(4, StreamingPsPlacement::Colocated));
  auto updates = random_i32(4, 8192, 10);
  auto result = cluster.reduce_i32(updates);
  const auto expect = i32_sum(updates);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(result.outputs[static_cast<std::size_t>(w)], expect);
}

TEST(StreamingPs, DedicatedSurvivesLoss) {
  StreamingPsCluster cluster(sps_cfg(4, StreamingPsPlacement::Dedicated, 0.02));
  auto updates = random_i32(4, 8192, 11);
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], i32_sum(updates));
}

TEST(StreamingPs, ColocatedSurvivesLoss) {
  StreamingPsCluster cluster(sps_cfg(3, StreamingPsPlacement::Colocated, 0.02));
  auto updates = random_i32(3, 8192, 12);
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[2], i32_sum(updates));
}

TEST(StreamingPs, ConsecutiveReductions) {
  StreamingPsCluster cluster(sps_cfg(4, StreamingPsPlacement::Dedicated));
  for (int round = 0; round < 3; ++round) {
    auto updates = random_i32(4, 2048, 13 + static_cast<std::uint64_t>(round));
    auto result = cluster.reduce_i32(updates);
    ASSERT_EQ(result.outputs[0], i32_sum(updates)) << "round " << round;
  }
}

// -------------------------------------------------- software aggregator unit

TEST(SoftwareAggregator, MirrorsAlgorithm3Semantics) {
  SoftwareAggregator agg(2, 4, /*timing_only=*/false);
  net::Packet p;
  p.kind = net::PacketKind::SmlUpdate;
  p.idx = 1;
  p.ver = 0;
  p.elem_count = 2;
  p.values = {10, 20};

  p.wid = 0;
  auto r0 = agg.process(p);
  EXPECT_EQ(r0.kind, SoftwareAggregator::Outcome::Kind::Absorbed);

  // Duplicate before completion: ignored.
  auto dup = agg.process(p);
  EXPECT_EQ(dup.kind, SoftwareAggregator::Outcome::Kind::Ignored);

  p.wid = 1;
  p.values = {1, 2};
  auto r1 = agg.process(p);
  ASSERT_EQ(r1.kind, SoftwareAggregator::Outcome::Kind::Completed);
  EXPECT_EQ(r1.values, (std::vector<std::int32_t>{11, 22}));

  // Duplicate after completion: replies with the stored aggregate.
  p.wid = 0;
  p.values = {10, 20};
  auto replay = agg.process(p);
  ASSERT_EQ(replay.kind, SoftwareAggregator::Outcome::Kind::ReplyStored);
  EXPECT_EQ(replay.values, (std::vector<std::int32_t>{11, 22}));

  EXPECT_EQ(agg.counters().completions, 1u);
  EXPECT_EQ(agg.counters().duplicates, 2u);
}

TEST(SoftwareAggregator, RejectsInvalidConfiguration) {
  EXPECT_THROW(SoftwareAggregator(0, 4, true), std::invalid_argument);
  EXPECT_THROW(SoftwareAggregator(65, 4, true), std::invalid_argument);
  SoftwareAggregator agg(2, 4, true);
  net::Packet p;
  p.idx = 4; // out of range
  EXPECT_THROW(agg.process(p), std::runtime_error);
}

// ------------------------------------------------------------ Fig 4 relations

TEST(Fig4Relations, ColocatedPsIsRoughlyHalfOfDedicated) {
  const std::uint64_t elems = 256 * 1024;
  auto run = [&](StreamingPsPlacement p) {
    StreamingPsConfig cfg = sps_cfg(4, p);
    cfg.pool_size = 128;
    cfg.timing_only = true;
    StreamingPsCluster cluster(cfg);
    auto tats = cluster.reduce_timing(elems);
    return static_cast<double>(elems) / to_sec(tats[0]);
  };
  const double dedicated = run(StreamingPsPlacement::Dedicated);
  const double colocated = run(StreamingPsPlacement::Colocated);
  EXPECT_GT(dedicated, colocated * 1.5);
  EXPECT_LT(dedicated, colocated * 2.5);
}

TEST(Fig4Relations, LineRateBoundsAreOrdered) {
  // SwitchML's bound beats the ring bound for every n > 2 at equal rate.
  for (int n : {4, 8, 16})
    EXPECT_GT(switchml_ate_rate(gbps(10), 32), ring_ate_rate(gbps(10), n));
  // The ring bound decreases with n toward half the link's element rate.
  EXPECT_GT(ring_ate_rate(gbps(10), 4), ring_ate_rate(gbps(10), 16));
  // Colocated PS bound is about half the dedicated bound for large n.
  EXPECT_NEAR(colocated_ps_ate_rate(gbps(10), 16, 128) * 2,
              dedicated_ps_ate_rate(gbps(10), 128) * 16.0 / 15.0 * 31.0 / 32.0,
              dedicated_ps_ate_rate(gbps(10), 128) * 0.1);
}

TEST(Fig4Relations, TatAtLineRateMatchesHandComputation) {
  // 25e6 elements (100 MB) at 10 Gbps with 180-byte packets: 222.2e6 elem/s.
  const double rate = switchml_ate_rate(gbps(10), 32);
  EXPECT_NEAR(rate, 10e9 / 8.0 * (128.0 / 180.0) / 4.0, 1.0);
  EXPECT_NEAR(tat_seconds_at(rate, 25'000'000), 0.1125, 0.001);
}

} // namespace
} // namespace switchml::collectives
