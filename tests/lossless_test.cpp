// §3.2 lossless mode: literal Algorithms 1/2 for Infiniband/RoCE fabrics.
// No bitmaps, shadow copies, version bits or timers — and about half the
// dataplane SRAM — but only correct when the network never drops.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "sim/rng.hpp"

namespace switchml::core {
namespace {

ClusterConfig lossless_cfg(int n) {
  ClusterConfig c;
  c.n_workers = n;
  c.pool_size = 16;
  c.lossless = true;
  return c;
}

std::vector<std::vector<std::int32_t>> updates_for(int n, std::size_t d) {
  sim::Rng rng = sim::Rng::stream(555, "lossless");
  std::vector<std::vector<std::int32_t>> u(static_cast<std::size_t>(n),
                                           std::vector<std::int32_t>(d));
  for (auto& v : u)
    for (auto& e : v) e = static_cast<std::int32_t>(rng.uniform_int(-10000, 10000));
  return u;
}

TEST(Lossless, Algorithm1AggregatesExactly) {
  Cluster cluster(lossless_cfg(4));
  auto updates = updates_for(4, 8192);
  auto result = cluster.reduce_i32(updates);
  std::vector<std::int32_t> expect(8192, 0);
  for (const auto& v : updates)
    for (std::size_t i = 0; i < v.size(); ++i) expect[i] += v[i];
  for (int w = 0; w < 4; ++w) EXPECT_EQ(result.outputs[static_cast<std::size_t>(w)], expect);
  // Algorithm 2 sends exactly one packet per chunk: no timers ever fire.
  EXPECT_EQ(cluster.worker(0).counters().timeouts, 0u);
  EXPECT_EQ(cluster.worker(0).counters().retransmissions, 0u);
}

TEST(Lossless, ConsecutiveReductionsReuseSlots) {
  Cluster cluster(lossless_cfg(3));
  for (int round = 0; round < 3; ++round) {
    auto updates = updates_for(3, 2048 + 32 * round);
    auto result = cluster.reduce_i32(updates);
    std::vector<std::int32_t> expect(updates[0].size(), 0);
    for (const auto& v : updates)
      for (std::size_t i = 0; i < v.size(); ++i) expect[i] += v[i];
    ASSERT_EQ(result.outputs[0], expect) << "round " << round;
  }
}

TEST(Lossless, UsesRoughlyHalfTheSram) {
  ClusterConfig full_cfg = lossless_cfg(8);
  full_cfg.lossless = false;
  Cluster full(full_cfg);
  Cluster lossless(lossless_cfg(8));
  const auto full_bytes = full.agg_switch().register_bytes();
  const auto ll_bytes = lossless.agg_switch().register_bytes();
  // (2 + k) 64-bit words vs (1 + k) 32-bit words per slot.
  EXPECT_LT(ll_bytes * 2, full_bytes);
  EXPECT_GT(ll_bytes * 3, full_bytes);
}

TEST(Lossless, MatchesLossTolerantThroughput) {
  ClusterConfig a = lossless_cfg(8);
  a.timing_only = true;
  a.pool_size = 128;
  ClusterConfig b = a;
  b.lossless = false;
  Time ta, tb;
  {
    Cluster c(a);
    ta = c.reduce_timing(256 * 1024)[0];
  }
  {
    Cluster c(b);
    tb = c.reduce_timing(256 * 1024)[0];
  }
  // The recovery state costs SRAM, not throughput (§3.5).
  EXPECT_NEAR(static_cast<double>(ta) / static_cast<double>(tb), 1.0, 0.01);
}

TEST(Lossless, RefusesLossyConfiguration) {
  ClusterConfig cfg = lossless_cfg(2);
  cfg.loss_prob = 0.01;
  EXPECT_THROW(Cluster{cfg}, std::invalid_argument);
}

TEST(Lossless, DeadlocksIfTheFabricLiesAboutLosslessness) {
  // Motivation for Algorithm 3: inject one drop into a "lossless" run and
  // the aggregation can never complete (no timers to repair it).
  Cluster cluster(lossless_cfg(2));
  bool dropped = false;
  cluster.link(1).set_drop_filter([&](const net::Node& sender, const net::Packet& p) {
    if (!dropped && p.kind == net::PacketKind::SmlUpdate && sender.id() == 1) {
      dropped = true;
      return true;
    }
    return false;
  });
  std::vector<std::int32_t> u0(64, 1), u1(64, 2), o0(64), o1(64);
  int done = 0;
  cluster.worker(0).start_reduction(u0, o0, [&] { ++done; });
  cluster.worker(1).start_reduction(u1, o1, [&] { ++done; });
  cluster.simulation().run_until(msec(100));
  EXPECT_TRUE(dropped);
  EXPECT_EQ(done, 0);
}

} // namespace
} // namespace switchml::core
