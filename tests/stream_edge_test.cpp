// Additional edge-case coverage for the stream buffer manager and the
// multi-tensor pipeline: error paths, tiny/huge tensor mixes, averaging,
// and repeated flush cycles with loss.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/stream_manager.hpp"
#include "sim/rng.hpp"

namespace switchml::core {
namespace {

ClusterConfig cfg(int n, double loss = 0.0) {
  ClusterConfig c;
  c.n_workers = n;
  c.pool_size = 8;
  c.loss_prob = loss;
  return c;
}

TEST(StreamManagerEdge, RejectsBadSubmissions) {
  Cluster cluster(cfg(2));
  StreamManager m(cluster.worker(0));
  std::vector<float> in(8), out(4);
  EXPECT_THROW(m.submit(in, out, 1.0, nullptr), std::invalid_argument);
  std::vector<float> out8(8);
  EXPECT_THROW(m.submit(in, out8, 0.0, nullptr), std::invalid_argument);
  EXPECT_THROW(m.submit(in, out8, -2.0, nullptr), std::invalid_argument);
}

TEST(StreamManagerEdge, FlushWithNothingQueuedIsANoop) {
  Cluster cluster(cfg(2));
  StreamManager m(cluster.worker(0));
  m.flush();
  EXPECT_TRUE(m.idle());
}

TEST(StreamManagerEdge, SingleElementTensors) {
  Cluster cluster(cfg(2));
  std::vector<float> a = {3.0f}, b = {4.0f}, oa(1), ob(1);
  StreamManager m0(cluster.worker(0)), m1(cluster.worker(1));
  m0.submit(a, oa, 1e6, nullptr);
  m1.submit(b, ob, 1e6, nullptr);
  m0.flush();
  m1.flush();
  cluster.simulation().run();
  EXPECT_NEAR(oa[0], 7.0f, 1e-4f);
  EXPECT_NEAR(ob[0], 7.0f, 1e-4f);
}

TEST(StreamManagerEdge, AveragingOption) {
  Cluster cluster(cfg(4));
  std::vector<std::vector<float>> in(4, std::vector<float>(64, 8.0f));
  std::vector<std::vector<float>> out(4, std::vector<float>(64));
  std::vector<std::unique_ptr<StreamManager>> ms;
  for (int w = 0; w < 4; ++w) {
    StreamOptions opt;
    opt.average = true;
    auto m = std::make_unique<StreamManager>(cluster.worker(w), opt);
    m->submit(in[static_cast<std::size_t>(w)], out[static_cast<std::size_t>(w)], 1e5, nullptr);
    m->flush();
    ms.push_back(std::move(m));
  }
  cluster.simulation().run();
  for (float v : out[0]) EXPECT_NEAR(v, 8.0f, 1e-3f);
}

TEST(StreamManagerEdge, InPlaceAliasedBuffers) {
  // out may alias in: the framework overwrites gradients with aggregates.
  Cluster cluster(cfg(2));
  std::vector<float> a(128, 1.5f), b(128, 2.5f);
  StreamManager m0(cluster.worker(0)), m1(cluster.worker(1));
  m0.submit(a, a, 1e6, nullptr);
  m1.submit(b, b, 1e6, nullptr);
  m0.flush();
  m1.flush();
  cluster.simulation().run();
  for (float v : a) EXPECT_NEAR(v, 4.0f, 1e-4f);
  for (float v : b) EXPECT_NEAR(v, 4.0f, 1e-4f);
}

TEST(StreamManagerEdge, ManyTensorsUnderLoss) {
  Cluster cluster(cfg(3, 0.01));
  const int tensors = 12;
  sim::Rng rng = sim::Rng::stream(9, "many");
  std::vector<std::vector<std::vector<float>>> in(3), out(3);
  std::vector<std::unique_ptr<StreamManager>> ms;
  int completions = 0;
  for (int w = 0; w < 3; ++w) {
    in[static_cast<std::size_t>(w)].resize(tensors);
    out[static_cast<std::size_t>(w)].resize(tensors);
    auto m = std::make_unique<StreamManager>(cluster.worker(w));
    for (int t = 0; t < tensors; ++t) {
      auto& v = in[static_cast<std::size_t>(w)][static_cast<std::size_t>(t)];
      v.resize(97 + 31 * t);
      for (auto& e : v) e = static_cast<float>(rng.uniform_int(-100, 100));
      out[static_cast<std::size_t>(w)][static_cast<std::size_t>(t)].resize(v.size());
      m->submit(v, out[static_cast<std::size_t>(w)][static_cast<std::size_t>(t)], 1e5,
                [&completions] { ++completions; });
    }
    m->flush();
    ms.push_back(std::move(m));
  }
  cluster.simulation().run();
  EXPECT_EQ(completions, 3 * tensors);
  for (int t = 0; t < tensors; ++t) {
    for (std::size_t i = 0; i < out[0][static_cast<std::size_t>(t)].size(); ++i) {
      const float ref = in[0][static_cast<std::size_t>(t)][i] +
                        in[1][static_cast<std::size_t>(t)][i] +
                        in[2][static_cast<std::size_t>(t)][i];
      ASSERT_NEAR(out[2][static_cast<std::size_t>(t)][i], ref, 0.01f) << "t=" << t;
    }
  }
}

TEST(StreamManagerEdge, ChunkAlignedTensorBoundaries) {
  // Padding guarantees no packet spans two tensors: a 1-element tensor
  // followed by a large one must still produce exact per-tensor sums.
  Cluster cluster(cfg(2));
  std::vector<float> tiny0 = {1.0f}, tiny1 = {2.0f}, big0(1000, 3.0f), big1(1000, 4.0f);
  std::vector<float> to0(1), to1(1), bo0(1000), bo1(1000);
  StreamManager m0(cluster.worker(0)), m1(cluster.worker(1));
  m0.submit(tiny0, to0, 1e6, nullptr);
  m0.submit(big0, bo0, 1e6, nullptr);
  m1.submit(tiny1, to1, 1e6, nullptr);
  m1.submit(big1, bo1, 1e6, nullptr);
  m0.flush();
  m1.flush();
  cluster.simulation().run();
  EXPECT_NEAR(to0[0], 3.0f, 1e-4f);
  for (float v : bo0) ASSERT_NEAR(v, 7.0f, 1e-4f);
}

} // namespace
} // namespace switchml::core
