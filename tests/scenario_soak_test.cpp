// Randomized chaos soak: seeded scenario fuzzing across all five topology
// shapes x fault classes. Every iteration pins the whole contract chain:
//
//   1. the fuzzed scenario round-trips through JSON losslessly (the run below
//      executes the RELOADED scenario, so the serialization path is on the
//      invariant's critical path, not beside it);
//   2. the run terminates (the PR 5 contract: converge, or degrade
//      explicitly) and data mode is bit-exact against expected_sum;
//   3. a switch kill always engages the streaming-PS fallback and at least
//      one worker declares the switch dead;
//   4. the span ledger conserves exactly (max_residual_ns == 0) — fault
//      churn, wipes, and fallback handoffs never leak attributed time;
//   5. one-shot-flapped links deliver ZERO packets inside the down window.
//
// Iteration count defaults low for developer ctest; CI soaks with
// SWITCHML_SOAK_ITERS=200 (see .github/workflows/ci.yml), also under
// ASan/UBSan.
#include "scenario/fuzz.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/attribution.hpp"
#include "net/trace.hpp"
#include "scenario/scenario.hpp"

namespace switchml::scenario {
namespace {

int soak_iters() {
  if (const char* env = std::getenv("SWITCHML_SOAK_ITERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 10;
}

Time max_tat(const RunResult& r) {
  Time m = 0;
  for (const auto& rep : r.tats)
    for (Time t : rep) m = std::max(m, t);
  return m;
}

void soak_one(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));

  // The faultless twin both smoke-checks the fuzzed base scenario and sets
  // the time horizon the fault plan is laid out against.
  Scenario s = fuzz_scenario(seed);
  const RunResult clean = run(s);
  ASSERT_TRUE(clean.data_checked);
  ASSERT_TRUE(clean.data_bit_exact);
  ASSERT_FALSE(clean.fallback_engaged);
  ASSERT_GT(max_tat(clean), 0);

  fuzz_faults(s, seed ^ 0x5DEECE66Dull, max_tat(clean));
  ASSERT_FALSE(s.fabric.faults.empty());

  // Serialization sits on the critical path: the faulted run executes the
  // scenario as RELOADED from its own emission, which must be a fixed point.
  const std::string doc = to_json(s).dump(true);
  Scenario loaded;
  ASSERT_NO_THROW(loaded = load_string(doc)) << doc;
  EXPECT_EQ(to_json(loaded).dump(true), doc);

  // Per-link delivery tracers on every one-shot-flapped link. fuzz_faults
  // never stacks a second flap spec on the same link, so each window is the
  // whole truth about that link's downtime.
  std::vector<std::unique_ptr<net::Tracer>> tracers;
  RunHooks hooks;
  hooks.on_built = [&](core::Fabric& f) {
    for (const core::LinkFlapSpec& spec : loaded.fabric.faults.flaps) {
      auto tracer = std::make_unique<net::Tracer>();
      tracer->set_filter(
          [](const net::TraceEvent& e) { return e.kind == net::TraceEventKind::Deliver; });
      f.link(spec.link).set_tracer(tracer.get());
      tracers.push_back(std::move(tracer));
    }
  };

  attr::SpanLedger ledger;
  RunResult faulted;
  {
    attr::SpanLedger::Scope scope(&ledger);
    faulted = run(loaded, hooks);
  }

  // Termination + correctness: the run came back, every reduction's outputs
  // matched the wrapping int32 expected_sum bit-exactly.
  ASSERT_EQ(faulted.tats.size(), static_cast<std::size_t>(loaded.workload.reductions));
  for (const auto& rep : faulted.tats) EXPECT_FALSE(rep.empty());
  ASSERT_TRUE(faulted.data_checked);
  EXPECT_TRUE(faulted.data_bit_exact);

  // A kill is unsurvivable by design: the fabric must degrade explicitly.
  if (!loaded.fabric.faults.switch_kills.empty()) {
    EXPECT_TRUE(faulted.fallback_engaged);
    EXPECT_GE(faulted.dead_declared, 1u);
  }

  // Attribution conservation: zero by construction, so zero it stays — even
  // across wipes, RTO churn, and the fallback handoff.
  EXPECT_EQ(ledger.max_residual_ns(), 0u);
  EXPECT_GT(ledger.chunks_closed(), 0u);

  // Downed links deliver nothing: no Deliver event strictly inside any
  // one-shot window (endpoints excluded — a delivery scheduled for the same
  // instant as the down edge may legally land first).
  for (std::size_t i = 0; i < loaded.fabric.faults.flaps.size(); ++i) {
    const core::LinkFlapSpec& spec = loaded.fabric.faults.flaps[i];
    for (const net::TraceEvent& e : tracers[i]->events())
      EXPECT_FALSE(e.at > spec.down_at && e.at < spec.up_at)
          << "link " << spec.link << " delivered a packet at t=" << e.at
          << " ns inside its down window [" << spec.down_at << ", " << spec.up_at << ")";
    EXPECT_EQ(tracers[i]->dropped_records(), 0u);
  }
}

TEST(ScenarioSoak, RandomizedFaultedRunsHoldEveryInvariant) {
  const int iters = soak_iters();
  for (int i = 0; i < iters; ++i) {
    soak_one(static_cast<std::uint64_t>(i));
    if (HasFatalFailure()) break;
  }
}

// The fuzzer must exercise all five topology shapes — a regression that
// collapses its shape selector would silently gut the soak's coverage.
TEST(ScenarioSoak, FuzzerCoversEveryTopologyShape) {
  bool seen[5] = {};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Scenario s = fuzz_scenario(seed);
    seen[s.topology.index()] = true;
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(ScenarioSoak, FuzzedPlansAlwaysValidate) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Scenario s = fuzz_scenario(seed);
    fuzz_faults(s, seed, msec(1));
    EXPECT_FALSE(s.fabric.faults.empty()) << "seed " << seed;
    EXPECT_NO_THROW(core::validate_fault_plan(s.fabric.faults, shape_counts(s.topology),
                                              s.fabric.lossless))
        << "seed " << seed;
  }
}

} // namespace
} // namespace switchml::scenario
