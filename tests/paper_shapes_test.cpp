// Executable versions of the paper's headline experimental claims, at
// reduced scale so they run in CI time. Each test asserts the SHAPE of a
// table/figure (orderings, ratios, crossovers) — the full bench binaries
// print the complete series.
#include <gtest/gtest.h>

#include "collectives/baseline_cluster.hpp"
#include "collectives/bounds.hpp"
#include "collectives/ring.hpp"
#include "collectives/streaming_ps.hpp"
#include "core/cluster.hpp"
#include "core/profiles.hpp"

namespace switchml {
namespace {

constexpr std::uint64_t kElems = 256 * 1024; // 1 MB tensor

double switchml_ate(BitsPerSecond rate, int workers, std::uint32_t pool = 0,
                    double loss = 0.0, std::uint8_t elem_bytes = 4, bool mtu = false,
                    bool adaptive_rto = false) {
  core::ClusterConfig cfg = core::ClusterConfig::for_rate(rate, workers);
  // These shapes are calibrated against the paper's DPDK/UDP datapath; pin it
  // so the suite holds under -DSWITCHML_RDMA_DEFAULT=ON.
  cfg.transport = net::TransportKind::kUdp;
  cfg.timing_only = true;
  cfg.loss_prob = loss;
  cfg.wire_elem_bytes = elem_bytes;
  cfg.adaptive_rto = adaptive_rto;
  if (pool) cfg.pool_size = pool;
  if (mtu) {
    cfg.elems_per_packet = net::kMtuElemsPerPacket;
    cfg.mtu_emulation = true;
  }
  core::Cluster cluster(cfg);
  auto tats = cluster.reduce_timing(kElems);
  return static_cast<double>(kElems) / to_sec(tats[static_cast<std::size_t>(workers / 2)]);
}

double ring_ate(const core::BaselineProfile& profile, BitsPerSecond rate, int workers,
                double loss = 0.0) {
  collectives::BaselineClusterConfig cfg;
  cfg.n_hosts = workers;
  cfg.link_rate = rate;
  cfg.loss_prob = loss;
  cfg.nic = profile.nic;
  collectives::BaselineCluster cluster(cfg);
  collectives::RingAllReduce ring(cluster, profile.transport);
  const Time t = ring.run(static_cast<std::int64_t>(kElems) * 4);
  return static_cast<double>(kElems) / to_sec(t);
}

double ps_ate(collectives::StreamingPsPlacement placement, BitsPerSecond rate, int workers) {
  collectives::StreamingPsConfig cfg;
  cfg.n_workers = workers;
  cfg.placement = placement;
  cfg.link_rate = rate;
  cfg.nic = core::ps_host_nic(rate);
  cfg.pool_size = rate >= gbps(100) ? 512 : 128;
  cfg.timing_only = true;
  collectives::StreamingPsCluster cluster(cfg);
  auto tats = cluster.reduce_timing(kElems);
  return static_cast<double>(kElems) / to_sec(tats[0]);
}

// ---- Fig 4 ------------------------------------------------------------------

TEST(PaperShapes, Fig4SwitchMlSaturates10GbpsWithFourCores) {
  const double line = collectives::switchml_ate_rate(gbps(10), 32);
  EXPECT_GT(switchml_ate(gbps(10), 8), 0.97 * line);
}

TEST(PaperShapes, Fig4SwitchMlBelowLineAt100GbpsIsTheFourCoreBound) {
  // §5.1: 4 cores cannot sustain 100 Gbps line rate; the paper calls its
  // 100G numbers a lower bound. We land at 70-90% of line.
  const double line = collectives::switchml_ate_rate(gbps(100), 32);
  const double ate = switchml_ate(gbps(100), 8);
  EXPECT_GT(ate, 0.65 * line);
  EXPECT_LT(ate, 0.95 * line);
}

TEST(PaperShapes, Fig4SwitchMlRateIndependentOfWorkerCount) {
  const double a4 = switchml_ate(gbps(10), 4);
  const double a16 = switchml_ate(gbps(10), 16);
  EXPECT_NEAR(a16 / a4, 1.0, 0.02);
}

TEST(PaperShapes, Fig4StrategyOrderingAt10Gbps) {
  const double sml = switchml_ate(gbps(10), 8);
  const double nccl = ring_ate(core::nccl_tcp(gbps(10)), gbps(10), 8);
  const double gloo = ring_ate(core::gloo_tcp(gbps(10)), gbps(10), 8);
  EXPECT_GT(sml, 1.5 * nccl); // SwitchML well ahead of the best baseline
  EXPECT_GT(nccl, 1.3 * gloo);
}

TEST(PaperShapes, Fig4DedicatedPsMatchesSwitchMlColocatedHalves) {
  const double sml = switchml_ate(gbps(10), 8);
  const double dedicated = ps_ate(collectives::StreamingPsPlacement::Dedicated, gbps(10), 8);
  const double colocated = ps_ate(collectives::StreamingPsPlacement::Colocated, gbps(10), 8);
  EXPECT_GT(dedicated, 0.85 * sml); // "matches, with 2x the machines"
  EXPECT_LT(colocated, 0.65 * dedicated);
  EXPECT_GT(colocated, 0.40 * dedicated);
}

TEST(PaperShapes, Sec54RdmaSpeedsUpGlooSeveralFold) {
  const double tcp = ring_ate(core::gloo_tcp(gbps(100)), gbps(100), 8);
  const double rdma = ring_ate(core::gloo_rdma(gbps(100)), gbps(100), 8);
  EXPECT_GT(rdma / tcp, 3.0);
  EXPECT_LT(rdma / tcp, 10.0);
}

// ---- Fig 2 ------------------------------------------------------------------

TEST(PaperShapes, Fig2TatDropsUntilBdpThenFlat) {
  const double tiny_pool = switchml_ate(gbps(10), 8, 32);
  const double paper_pool = switchml_ate(gbps(10), 8, 128);
  const double big_pool = switchml_ate(gbps(10), 8, 1024);
  EXPECT_GT(paper_pool, 1.5 * tiny_pool);          // below BDP: starved
  EXPECT_NEAR(big_pool / paper_pool, 1.0, 0.03);   // beyond BDP: flat
}

TEST(PaperShapes, Fig2RttGrowsWithPoolSizeBeyondBdp) {
  auto rtt_at = [](std::uint32_t pool) {
    core::ClusterConfig cfg = core::ClusterConfig::for_rate(gbps(10), 8);
    cfg.timing_only = true;
    cfg.pool_size = pool;
    core::Cluster cluster(cfg);
    cluster.reduce_timing(kElems);
    return cluster.worker(0).rtt().median();
  };
  EXPECT_GT(rtt_at(1024), 3.0 * rtt_at(64));
}

TEST(PaperShapes, Sec36RecommendedPoolSizeMatchesDeployment) {
  // The paper uses 128 at 10 Gbps and 512 at 100 Gbps.
  EXPECT_EQ(core::recommended_pool_size(gbps(10), usec(10), 180), 128u);
  EXPECT_EQ(core::recommended_pool_size(gbps(100), nsec(6'700), 180), 512u);
}

// ---- Fig 5 ------------------------------------------------------------------

TEST(PaperShapes, Fig5SwitchMlInflatesLessThanGlooUnderLoss) {
  // SwitchML with the §6 adaptive RTO (recovery in ~4 RTTs per slot) vs the
  // TCP baseline whose AIMD window collapses under random loss.
  const double loss = 0.005;
  const double sml_inflation = switchml_ate(gbps(10), 4, 0, 0.0, 4, false, true) /
                               switchml_ate(gbps(10), 4, 0, loss, 4, false, true);
  const double gloo_clean = ring_ate(core::gloo_tcp(gbps(10)), gbps(10), 4);
  const double gloo_lossy = ring_ate(core::gloo_tcp(gbps(10)), gbps(10), 4, loss);
  const double gloo_inflation = gloo_clean / gloo_lossy;
  EXPECT_GT(gloo_inflation, 1.5 * sml_inflation);
  EXPECT_LT(sml_inflation, 2.0); // SwitchML barely notices 0.5% loss
}

// ---- Fig 7 ------------------------------------------------------------------

TEST(PaperShapes, Fig7MtuPacketsImproveTatByHeaderRatio) {
  const double small_pkt = switchml_ate(gbps(10), 8);
  const double mtu = switchml_ate(gbps(10), 8, 0, 0.0, 4, /*mtu=*/true);
  // §5.5: the MTU variant cuts header overhead 28.9% -> 3.4%, improving TAT
  // by ~31.6% (i.e., rate by ~1.36x).
  EXPECT_NEAR(mtu / small_pkt, 1.36, 0.05);
}

// ---- Fig 8 ------------------------------------------------------------------

// ---- §6 ----------------------------------------------------------------

TEST(PaperShapes, Sec6HierarchyHoldsLineRateAcrossRacks) {
  core::HierarchyConfig cfg;
  cfg.racks = 2;
  cfg.workers_per_rack = 8;
  cfg.transport = net::TransportKind::kUdp; // line-rate claim is UDP-calibrated
  cfg.timing_only = true;
  cfg.nic = core::switchml_worker_nic_10g();
  core::HierarchicalCluster h(cfg);
  auto tats = h.reduce_timing(kElems);
  const double ate = static_cast<double>(kElems) / to_sec(tats[0]);
  EXPECT_GT(ate, 0.97 * collectives::switchml_ate_rate(gbps(10), 32));
}

TEST(PaperShapes, Sec6ConcurrentJobsKeepFullRate) {
  core::MultiJobConfig cfg;
  cfg.n_jobs = 4;
  cfg.workers_per_job = 4;
  cfg.transport = net::TransportKind::kUdp; // line-rate claim is UDP-calibrated
  cfg.timing_only = true;
  core::MultiJobCluster cluster(cfg);
  auto tats = cluster.reduce_timing_all(kElems);
  for (const auto& job : tats)
    for (Time t : job) {
      const double ate = static_cast<double>(kElems) / to_sec(t);
      EXPECT_GT(ate, 0.97 * collectives::switchml_ate_rate(gbps(10), 32));
    }
}

// ---- Fig 8 -----------------------------------------------------------------

TEST(PaperShapes, Fig8Float16CutsWireTimeByThePayloadRatio) {
  const double f32 = switchml_ate(gbps(10), 8);
  const double f16 = switchml_ate(gbps(10), 8, 0, 0.0, /*elem_bytes=*/2);
  // 32 elements travel in 180 B (f32) vs 116 B (f16): rate ratio 180/116.
  EXPECT_NEAR(f16 / f32, 180.0 / 116.0, 0.05);
}

} // namespace
} // namespace switchml
