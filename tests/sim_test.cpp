// Unit tests for the discrete-event engine: ordering, timers, cancellation,
// EventFn closure semantics, determinism of named RNG streams, and a
// randomized fuzz that cross-checks the slab/4-ary-heap engine against a
// std::priority_queue reference implementation.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <utility>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace switchml::sim {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulation, SameTimeEventsRunFifo) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_at(5, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation s;
  Time seen = -1;
  s.schedule_at(100, [&] { s.schedule_after(50, [&] { seen = s.now(); }); });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation s;
  s.schedule_at(100, [&] {
    EXPECT_THROW(s.schedule_at(50, [] {}), std::invalid_argument);
  });
  s.run();
}

TEST(Simulation, NestedEventsFromHandlers) {
  Simulation s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99);
}

TEST(Simulation, TimerCancellationPreventsExecution) {
  Simulation s;
  bool fired = false;
  TimerHandle t = s.schedule_timer(100, [&] { fired = true; });
  s.schedule_at(50, [&] { t.cancel(); });
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(t.armed());
}

TEST(Simulation, TimerFiresWhenNotCancelled) {
  Simulation s;
  bool fired = false;
  TimerHandle t = s.schedule_timer(100, [&] { fired = true; });
  EXPECT_TRUE(t.armed());
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulation, CancelAfterFireIsHarmless) {
  Simulation s;
  TimerHandle t = s.schedule_timer(10, [] {});
  s.run();
  t.cancel(); // no-op
  EXPECT_FALSE(t.armed());
}

TEST(Simulation, DefaultTimerHandleIsInert) {
  TimerHandle t;
  EXPECT_FALSE(t.armed());
  t.cancel(); // must not crash
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) s.schedule_at(i * 10, [&] { ++count; });
  s.run_until(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 50);
  s.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulation, RunUntilAdvancesClockWhenIdle) {
  Simulation s;
  s.run_until(1234);
  EXPECT_EQ(s.now(), 1234);
}

TEST(Simulation, StopHaltsTheLoop) {
  Simulation s;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    s.schedule_at(i, [&] {
      if (++count == 3) s.stop();
    });
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending_events(), 7u);
}

TEST(Simulation, CountsExecutedEvents) {
  Simulation s;
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulation, StaleHandleCannotCancelRecycledSlot) {
  // After a timer fires, its slab slot is recycled. A stale handle to the
  // fired timer must not be able to cancel whatever new timer now occupies
  // that slot (generation check).
  Simulation s;
  TimerHandle stale = s.schedule_timer(1, [] {});
  s.run();
  bool fired = false;
  TimerHandle fresh = s.schedule_timer(1, [&] { fired = true; });
  stale.cancel();
  EXPECT_FALSE(stale.armed());
  EXPECT_TRUE(fresh.armed());
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulation, DaemonTimersAreNotLiveWork) {
  Simulation s;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (s.live_pending_events() > 0) s.schedule_daemon_timer(10, tick);
  };
  s.schedule_daemon_timer(10, tick);
  s.schedule_at(35, [] {});
  EXPECT_EQ(s.live_pending_events(), 1u);
  EXPECT_EQ(s.pending_events(), 2u);
  s.run();
  // Ticks at 10, 20, 30 see the live event pending; the tick at 40 sees no
  // live work and does not re-arm, so the run drains.
  EXPECT_EQ(ticks, 4);
}

TEST(EventFn, InvokesAndClearsOnReset) {
  int calls = 0;
  EventFn fn([&] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
  fn.reset();
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFn, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(42);
  int seen = 0;
  EventFn fn([&seen, p = std::move(p)] { seen = *p; });
  EventFn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn)); // NOLINT(bugprone-use-after-move): empty-after-move is the contract
  ASSERT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(seen, 42);
}

TEST(EventFn, CaptureDestructorRunsExactlyOnce) {
  // `live` counts constructions minus destructions of the capture. Relocation
  // on move plus destruction of the EventFn must balance out to zero — a
  // double-destroy would drive it negative, a leak would leave it positive.
  static int live;
  live = 0;
  struct Probe {
    Probe() { ++live; }
    Probe(Probe&&) noexcept { ++live; }
    Probe(const Probe&) { ++live; }
    ~Probe() { --live; }
  };
  {
    EventFn fn([p = Probe{}] { (void)p; });
    EXPECT_GT(live, 0);
    EventFn moved = std::move(fn);
    EventFn target;
    target = std::move(moved);
    target(); // invoking does not destroy the capture
    EXPECT_GT(live, 0);
  }
  EXPECT_EQ(live, 0);
}

TEST(EventFn, EmplaceDestroysPreviousCapture) {
  auto first = std::make_shared<int>(1);
  std::weak_ptr<int> watch = first;
  EventFn fn([keep = std::move(first)] { (void)keep; });
  EXPECT_FALSE(watch.expired());
  fn.emplace([] {});
  EXPECT_TRUE(watch.expired());
}

TEST(EventFn, CompileTimeCapacityGate) {
  const auto small = [] {};
  static_assert(EventFn::fits<decltype(small)>());
  static_assert(std::is_constructible_v<EventFn, decltype(small)>);

  // Exactly at the inline capacity: still fits.
  struct AtCapacity {
    char data[EventFn::kInlineBytes];
    void operator()() {}
  };
  static_assert(EventFn::fits<AtCapacity>());

  // One byte over: rejected at compile time, not silently heap-allocated.
  struct Oversized {
    char data[EventFn::kInlineBytes + 1];
    void operator()() {}
  };
  static_assert(!EventFn::fits<Oversized>());
  static_assert(!std::is_constructible_v<EventFn, Oversized>);

  // Over-aligned or potentially-throwing-move callables are rejected too.
  struct Overaligned {
    alignas(2 * EventFn::kInlineAlign) char c;
    void operator()() {}
  };
  static_assert(!std::is_constructible_v<EventFn, Overaligned>);
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) {}
    void operator()() {}
  };
  static_assert(!std::is_constructible_v<EventFn, ThrowingMove>);

  // EventFn itself is move-only.
  static_assert(!std::is_copy_constructible_v<EventFn>);
  static_assert(std::is_move_constructible_v<EventFn>);
  SUCCEED();
}

// --------------------------------------------------------------------------
// Randomized fuzz: cross-check the slab engine against a reference engine
// built the way the simulator used to be built — a std::priority_queue of
// whole events with std::function closures and shared_ptr cancellation
// flags. Both engines execute the same generated script; execution order,
// live_pending_events at every step, and post-run handle state must match.
// --------------------------------------------------------------------------

// Reference engine (behavioural oracle). Deliberately simple and obviously
// correct; mirrors the pre-slab Simulation semantics exactly.
class RefSim {
public:
  struct Handle {
    std::shared_ptr<bool> armed;
    bool daemon = false;
    RefSim* sim = nullptr;
  };

  [[nodiscard]] Time now() const { return now_; }

  void schedule_at(Time at, std::function<void()> fn) {
    queue_.push(Ev{at, next_seq_++, std::move(fn), nullptr, false});
  }

  Handle schedule_timer(Time delay, std::function<void()> fn, bool daemon = false) {
    auto armed = std::make_shared<bool>(true);
    queue_.push(Ev{now_ + delay, next_seq_++, std::move(fn), armed, daemon});
    if (daemon) ++inert_;
    return Handle{std::move(armed), daemon, this};
  }

  static void cancel(Handle& h) {
    if (h.armed == nullptr || !*h.armed) return;
    *h.armed = false;
    if (!h.daemon) ++h.sim->inert_;
  }

  [[nodiscard]] std::uint64_t live_pending_events() const {
    return queue_.size() - inert_;
  }

  void run() {
    while (!queue_.empty()) {
      Ev ev = std::move(const_cast<Ev&>(queue_.top()));
      queue_.pop();
      const bool cancelled = ev.armed != nullptr && !*ev.armed;
      inert_ -= static_cast<std::uint64_t>(cancelled || ev.daemon);
      if (ev.armed != nullptr) *ev.armed = false;
      if (cancelled) continue;
      now_ = ev.at;
      ev.fn();
    }
  }

private:
  struct Ev {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> armed;
    bool daemon;
    bool operator<(const Ev& o) const { // inverted: priority_queue is a max-heap
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::priority_queue<Ev> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t inert_ = 0;
  Time now_ = 0;
};

// A generated script: event `id` (in creation order), when it fires, first
// tries to cancel `cancel_target[id]` (if >= 0), then spawns `children[id]`
// new events. Ids beyond the table spawn nothing, bounding the run.
struct FuzzScript {
  struct Child {
    int kind; // 0 = plain, 1 = timer, 2 = daemon timer
    Time delay;
  };
  std::vector<Time> root_times;
  std::vector<std::vector<Child>> children;
  std::vector<int> cancel_target;
};

FuzzScript make_script(std::uint32_t seed, int n_ids) {
  std::mt19937 rng(seed);
  // Narrow time range on purpose: forces same-time collisions so FIFO
  // tie-breaking is exercised, not just time ordering.
  std::uniform_int_distribution<Time> time_dist(0, 40);
  std::uniform_int_distribution<int> kind_dist(0, 2);
  std::uniform_int_distribution<int> fanout_dist(0, 3);

  FuzzScript sc;
  const int n_roots = 8;
  for (int i = 0; i < n_roots; ++i) sc.root_times.push_back(time_dist(rng));
  sc.children.resize(static_cast<std::size_t>(n_ids));
  sc.cancel_target.resize(static_cast<std::size_t>(n_ids), -1);
  std::uniform_int_distribution<int> target_dist(-3 * n_ids, n_ids - 1);
  for (int id = 0; id < n_ids; ++id) {
    // Mostly no cancel; when there is one, any id is fair game — plain
    // events (no handle), not-yet-created timers, already-fired timers, even
    // the running event itself. All must be no-ops or act identically.
    const int t = target_dist(rng);
    sc.cancel_target[static_cast<std::size_t>(id)] = t >= 0 ? t : -1;
    const int fanout = fanout_dist(rng);
    for (int c = 0; c < fanout; ++c)
      sc.children[static_cast<std::size_t>(id)].push_back(
          FuzzScript::Child{kind_dist(rng), time_dist(rng)});
  }
  return sc;
}

struct FuzzTrace {
  std::vector<int> order;          // event ids in execution order
  std::vector<std::uint64_t> live; // live_pending_events at each execution
  Time final_now = 0;
};

// Runs the script on either engine. `SimT` needs schedule_at /
// schedule_timer / schedule_daemon-style entry points, which differ slightly
// between the two — adapted via if constexpr on the handle type.
template <typename SimT, typename HandleT>
FuzzTrace run_script(const FuzzScript& sc) {
  SimT s;
  const auto n_ids = static_cast<int>(sc.children.size());
  std::vector<HandleT> handles(sc.children.size());
  FuzzTrace trace;
  int next_id = static_cast<int>(sc.root_times.size());

  std::function<void(int)> fire = [&](int id) {
    trace.order.push_back(id);
    trace.live.push_back(s.live_pending_events());
    if (id >= n_ids) return;
    const int target = sc.cancel_target[static_cast<std::size_t>(id)];
    if (target >= 0) {
      if constexpr (std::is_same_v<HandleT, TimerHandle>) {
        handles[static_cast<std::size_t>(target)].cancel();
      } else {
        RefSim::cancel(handles[static_cast<std::size_t>(target)]);
      }
    }
    for (const FuzzScript::Child& c : sc.children[static_cast<std::size_t>(id)]) {
      if (next_id >= n_ids) break;
      const int cid = next_id++;
      const auto slot = static_cast<std::size_t>(cid);
      switch (c.kind) {
        case 0: s.schedule_at(s.now() + c.delay, [&fire, cid] { fire(cid); }); break;
        case 1: handles[slot] = s.schedule_timer(c.delay, [&fire, cid] { fire(cid); }); break;
        default:
          if constexpr (std::is_same_v<HandleT, TimerHandle>) {
            handles[slot] = s.schedule_daemon_timer(c.delay, [&fire, cid] { fire(cid); });
          } else {
            handles[slot] = s.schedule_timer(c.delay, [&fire, cid] { fire(cid); }, true);
          }
      }
    }
  };

  for (int i = 0; i < static_cast<int>(sc.root_times.size()); ++i)
    s.schedule_at(sc.root_times[static_cast<std::size_t>(i)], [&fire, i] { fire(i); });
  s.run();
  trace.final_now = s.now();
  return trace;
}

TEST(SimulationFuzz, MatchesPriorityQueueOracle) {
  for (std::uint32_t seed = 0; seed < 25; ++seed) {
    const FuzzScript sc = make_script(seed, 400);
    const FuzzTrace real = run_script<Simulation, TimerHandle>(sc);
    const FuzzTrace ref = run_script<RefSim, RefSim::Handle>(sc);
    ASSERT_EQ(real.order, ref.order) << "execution order diverged, seed " << seed;
    ASSERT_EQ(real.live, ref.live) << "live accounting diverged, seed " << seed;
    ASSERT_EQ(real.final_now, ref.final_now) << "final clock diverged, seed " << seed;
    ASSERT_GT(real.order.size(), 8u) << "degenerate script, seed " << seed;
  }
}

TEST(SimulationFuzz, SlotRecyclingKeepsHandlesIndependent) {
  // Heavy schedule/cancel churn through a deliberately tiny id space so slab
  // slots are recycled many times over; every armed() answer must match what
  // an independent shadow of "which timers actually ran / were cancelled"
  // predicts (generation reuse must not resurrect or kill the wrong timer).
  std::mt19937 rng(1234);
  Simulation s;
  constexpr int kTimers = 64;
  constexpr Time kNever = -1;
  std::vector<TimerHandle> handles(kTimers);
  // Independent shadow: a handle is armed iff its timer was scheduled, not
  // cancelled, and its deadline has not been reached yet.
  std::vector<Time> deadline(kTimers, kNever);
  std::uniform_int_distribution<int> idx_dist(0, kTimers - 1);
  std::uniform_int_distribution<Time> delay_dist(1, 20);
  for (int round = 0; round < 2000; ++round) {
    const int i = idx_dist(rng);
    const auto ui = static_cast<std::size_t>(i);
    switch (rng() % 3) {
      case 0: { // (re)arm: old handle goes stale, slot may be recycled
        const Time d = delay_dist(rng);
        handles[ui] = s.schedule_timer(d, [] {});
        deadline[ui] = s.now() + d;
        break;
      }
      case 1:
        handles[ui].cancel();
        deadline[ui] = kNever;
        break;
      default: // advance time; every timer due by then fires and goes stale
        s.run_until(s.now() + delay_dist(rng));
        break;
    }
    for (int j = 0; j < kTimers; ++j) {
      const auto uj = static_cast<std::size_t>(j);
      const bool expect = deadline[uj] != kNever && deadline[uj] > s.now();
      ASSERT_EQ(handles[uj].armed(), expect) << "handle " << j << " round " << round;
    }
  }
  s.run();
  for (int j = 0; j < kTimers; ++j)
    EXPECT_FALSE(handles[static_cast<std::size_t>(j)].armed());
}

TEST(Rng, NamedStreamsAreDeterministic) {
  Rng a = Rng::stream(1, "loss");
  Rng b = Rng::stream(1, "loss");
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentLabelsGiveDifferentStreams) {
  Rng a = Rng::stream(1, "loss-a");
  Rng b = Rng::stream(1, "loss-b");
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, DifferentSeedsGiveDifferentStreams) {
  Rng a = Rng::stream(1, "x");
  Rng b = Rng::stream(2, "x");
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(11);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.01)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.01, 0.003);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(3);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    lo |= v == 0;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

} // namespace
} // namespace switchml::sim
