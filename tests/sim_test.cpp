// Unit tests for the discrete-event engine: ordering, timers, cancellation,
// determinism of named RNG streams.
#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace switchml::sim {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulation, SameTimeEventsRunFifo) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_at(5, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation s;
  Time seen = -1;
  s.schedule_at(100, [&] { s.schedule_after(50, [&] { seen = s.now(); }); });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation s;
  s.schedule_at(100, [&] {
    EXPECT_THROW(s.schedule_at(50, [] {}), std::invalid_argument);
  });
  s.run();
}

TEST(Simulation, NestedEventsFromHandlers) {
  Simulation s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99);
}

TEST(Simulation, TimerCancellationPreventsExecution) {
  Simulation s;
  bool fired = false;
  TimerHandle t = s.schedule_timer(100, [&] { fired = true; });
  s.schedule_at(50, [&] { t.cancel(); });
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(t.armed());
}

TEST(Simulation, TimerFiresWhenNotCancelled) {
  Simulation s;
  bool fired = false;
  TimerHandle t = s.schedule_timer(100, [&] { fired = true; });
  EXPECT_TRUE(t.armed());
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Simulation, CancelAfterFireIsHarmless) {
  Simulation s;
  TimerHandle t = s.schedule_timer(10, [] {});
  s.run();
  t.cancel(); // no-op
  EXPECT_FALSE(t.armed());
}

TEST(Simulation, DefaultTimerHandleIsInert) {
  TimerHandle t;
  EXPECT_FALSE(t.armed());
  t.cancel(); // must not crash
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) s.schedule_at(i * 10, [&] { ++count; });
  s.run_until(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 50);
  s.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulation, RunUntilAdvancesClockWhenIdle) {
  Simulation s;
  s.run_until(1234);
  EXPECT_EQ(s.now(), 1234);
}

TEST(Simulation, StopHaltsTheLoop) {
  Simulation s;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    s.schedule_at(i, [&] {
      if (++count == 3) s.stop();
    });
  s.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending_events(), 7u);
}

TEST(Simulation, CountsExecutedEvents) {
  Simulation s;
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Rng, NamedStreamsAreDeterministic) {
  Rng a = Rng::stream(1, "loss");
  Rng b = Rng::stream(1, "loss");
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentLabelsGiveDifferentStreams) {
  Rng a = Rng::stream(1, "loss-a");
  Rng b = Rng::stream(1, "loss-b");
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, DifferentSeedsGiveDifferentStreams) {
  Rng a = Rng::stream(1, "x");
  Rng b = Rng::stream(2, "x");
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(11);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.01)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.01, 0.003);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(3);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    lo |= v == 0;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

} // namespace
} // namespace switchml::sim
