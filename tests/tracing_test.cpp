// TraceSink: recording, category masks, bounded-buffer drop accounting,
// Chrome trace-event export well-formedness (validated with a strict mini
// JSON parser), actor registration through Node construction, and the
// zero-event / zero-allocation guarantee when tracing is disabled.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>

#include "common/tracing.hpp"
#include "core/cluster.hpp"

// --- allocation counting -----------------------------------------------------
// Replacing global operator new lets the disabled-tracing test assert that
// emit() performs no heap allocation. The counter covers the whole binary;
// tests read deltas around the calls under test.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace switchml {
namespace {

// --- strict mini JSON parser -------------------------------------------------
// Enough of RFC 8259 to reject anything Perfetto would choke on.
class JsonChecker {
public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_; // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_; // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (static_cast<unsigned char>(s_[pos_]) < 0x20) return false; // raw control char
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) == std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_; // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(Tracing, RecordsEventsWithArgsInsideScope) {
  trace::TraceSink sink(128);
  trace::TraceSink::Scope scope(&sink);
  ASSERT_TRUE(trace::enabled(trace::kCatWorker));
  trace::emit(trace::kCatWorker, usec(3), 7, "send", {"slot", 5}, {"off", 1024});
  ASSERT_EQ(sink.events().size(), 1u);
  const trace::Event& e = sink.events()[0];
  EXPECT_EQ(e.ts, usec(3));
  EXPECT_EQ(e.node, 7u);
  EXPECT_EQ(e.cat, trace::kCatWorker);
  EXPECT_STREQ(e.name, "send");
  EXPECT_STREQ(e.a0.key, "slot");
  EXPECT_EQ(e.a0.value, 5);
  EXPECT_EQ(e.a2.key, nullptr);
}

TEST(Tracing, RuntimeMaskFiltersCategories) {
  trace::TraceSink sink(128, trace::kCatWorker);
  trace::TraceSink::Scope scope(&sink);
  EXPECT_TRUE(trace::enabled(trace::kCatWorker));
  EXPECT_FALSE(trace::enabled(trace::kCatSwitch));
  trace::emit(trace::kCatSwitch, 0, 1, "claim");
  trace::emit(trace::kCatWorker, 0, 1, "send");
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_STREQ(sink.events()[0].name, "send");
  // Filtered-by-mask events are not "drops": the buffer never saw them.
  EXPECT_EQ(sink.total_drops(), 0u);
}

TEST(Tracing, FullBufferDropsAreCountedPerCategory) {
  trace::TraceSink sink(4);
  trace::TraceSink::Scope scope(&sink);
  for (int i = 0; i < 10; ++i) trace::emit(trace::kCatLink, i, 1, "enqueue");
  trace::emit(trace::kCatSwitch, 11, 2, "claim");
  EXPECT_EQ(sink.events().size(), 4u);
  EXPECT_EQ(sink.drops(trace::kCatLink), 6u);
  EXPECT_EQ(sink.drops(trace::kCatSwitch), 1u);
  EXPECT_EQ(sink.total_drops(), 7u);
  // Truncation is visible in the export.
  const std::string json = sink.chrome_json();
  EXPECT_NE(json.find("\"dropped_link\":6"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_switch\":1"), std::string::npos);
}

TEST(Tracing, ScopesNestAndRestore) {
  EXPECT_EQ(trace::TraceSink::current(), nullptr);
  trace::TraceSink outer(16);
  {
    trace::TraceSink::Scope s1(&outer);
    EXPECT_EQ(trace::TraceSink::current(), &outer);
    trace::TraceSink inner(16);
    {
      trace::TraceSink::Scope s2(&inner);
      EXPECT_EQ(trace::TraceSink::current(), &inner);
    }
    EXPECT_EQ(trace::TraceSink::current(), &outer);
  }
  EXPECT_EQ(trace::TraceSink::current(), nullptr);
}

TEST(Tracing, DisabledTracingEmitsNothingAndAllocatesNothing) {
  // No sink installed: the emit path must not touch the heap.
  ASSERT_EQ(trace::TraceSink::current(), nullptr);
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i)
    trace::emit(trace::kCatWorker, i, 3, "send", {"slot", i}, {"off", i * 64}, {"ver", i & 1});
  EXPECT_EQ(g_allocations.load(), before);

  // Sink installed but category runtime-masked out: still zero allocations,
  // zero events.
  trace::TraceSink sink(64, trace::kCatSwitch);
  trace::TraceSink::Scope scope(&sink);
  const std::uint64_t before2 = g_allocations.load();
  for (int i = 0; i < 1000; ++i) trace::emit(trace::kCatWorker, i, 3, "send", {"slot", i});
  EXPECT_EQ(g_allocations.load(), before2);
  EXPECT_TRUE(sink.events().empty());

  // Recording within capacity is also allocation-free: the buffer was
  // reserved at construction and event payloads are PODs.
  trace::TraceSink hot(2048, trace::kCatAll);
  trace::TraceSink::Scope hot_scope(&hot);
  trace::emit(trace::kCatWorker, 0, 3, "warm"); // fault in the thread_local
  const std::uint64_t before3 = g_allocations.load();
  for (int i = 0; i < 1000; ++i) trace::emit(trace::kCatWorker, i, 3, "send", {"slot", i});
  EXPECT_EQ(g_allocations.load(), before3);
  EXPECT_EQ(hot.events().size(), 1001u);
}

TEST(Tracing, CompiledMaskConstantFoldsDisabledCategories) {
  // The build compiles all categories in by default; `enabled` must still be
  // false for a bit outside the compiled mask even with a permissive sink.
  trace::TraceSink sink(16);
  trace::TraceSink::Scope scope(&sink);
  constexpr unsigned kUnknownCat = 1u << 30; // never compiled in
  static_assert((trace::kCompiledMask & kUnknownCat) == 0);
  EXPECT_FALSE(trace::enabled(kUnknownCat));
  trace::emit(kUnknownCat, 0, 1, "ghost");
  EXPECT_TRUE(sink.events().empty());
}

TEST(Tracing, ParseMaskAcceptsCategoryNamesAndAll) {
  EXPECT_EQ(trace::parse_mask("switch"), trace::kCatSwitch);
  EXPECT_EQ(trace::parse_mask("switch,worker,link"),
            trace::kCatSwitch | trace::kCatWorker | trace::kCatLink);
  EXPECT_EQ(trace::parse_mask("transport,fault,flow"),
            trace::kCatTransport | trace::kCatFault | trace::kCatFlow);
  EXPECT_EQ(trace::parse_mask("all"), trace::kCatAll);
  EXPECT_EQ(trace::parse_mask("fault,all"), trace::kCatAll);
  EXPECT_EQ(trace::parse_mask(""), 0u);
  EXPECT_EQ(trace::parse_mask("worker,,worker"), trace::kCatWorker); // empty tokens skipped
}

TEST(Tracing, ParseMaskRejectsUnknownNamesWithGuidance) {
  EXPECT_THROW(trace::parse_mask("wrker"), std::invalid_argument);
  try {
    trace::parse_mask("switch,bogus");
    FAIL() << "must throw";
  } catch (const std::invalid_argument& e) {
    // The message names the offender and the valid alternatives.
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("transport"), std::string::npos);
  }
}

TEST(Tracing, FlowEventsExportChromeFlowPhases) {
  trace::TraceSink sink(64);
  trace::TraceSink::Scope scope(&sink);
  const std::uint64_t id = trace::chunk_flow_id(3, 4096);
  trace::emit_flow(usec(1), 3, "chunk", id, trace::FlowPhase::kStart);
  trace::emit_flow(usec(2), 9, "chunk", id, trace::FlowPhase::kStep);
  trace::emit_flow(usec(3), 3, "chunk", id, trace::FlowPhase::kEnd);
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.events()[0].flow, trace::FlowPhase::kStart);
  EXPECT_EQ(sink.events()[1].flow_id, id);

  const std::string json = sink.chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Chrome flow semantics: start 's', step 't', finish 'f' with "bp":"e",
  // all bound by the same id.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":" + std::to_string(id)), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
}

TEST(Tracing, ChunkFlowIdSeparatesNodesAndOffsets) {
  EXPECT_NE(trace::chunk_flow_id(0, 64), trace::chunk_flow_id(1, 64));
  EXPECT_NE(trace::chunk_flow_id(0, 64), trace::chunk_flow_id(0, 128));
  static_assert(trace::chunk_flow_id(2, 0) == (2ull << 40));
}

TEST(Tracing, LossyClusterRunExportsValidChromeJson) {
  // A fig6-style lossy run: every instrumentation point fires (sends,
  // retransmits, timeouts, claims, dups, shadow replies, link drops).
  trace::TraceSink sink(1u << 16);
  trace::TraceSink::Scope scope(&sink);
  core::ClusterConfig cfg = core::ClusterConfig::for_rate(gbps(10), 4);
  cfg.timing_only = true;
  cfg.loss_prob = 0.01;
  cfg.adaptive_rto = true;
  core::Cluster cluster(cfg);
  cluster.reduce_timing(128 * 1024);

  ASSERT_GT(sink.events().size(), 1000u);
  const std::string json = sink.chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  // Node construction registered actor names for the Perfetto rows.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"worker-0\""), std::string::npos);
  // All active categories appear, including the per-chunk flow arrows
  // (send -> claim/aggregate -> deliver).
  EXPECT_NE(json.find("\"cat\":\"worker\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"switch\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"link\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(Tracing, ChromeJsonEscapesHostileActorNames) {
  trace::TraceSink sink(16);
  sink.register_actor(1, "evil\"name\\with\ncontrol\tchars");
  sink.record(trace::kCatLink, 0, 1, "enqueue");
  const std::string json = sink.chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

} // namespace
} // namespace switchml
