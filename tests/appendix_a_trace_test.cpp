// Deterministic replay of the paper's Appendix A execution: three workers,
// one slot (x = 1), an update packet lost on the upstream path and a result
// packet lost on the downstream path. Asserts the exact sequence of protocol
// reactions: duplicate retransmissions ignored via the seen bitmap, the late
// retransmission completing the slot, the shadow copy serving a unicast
// reply, and the slot's safe reuse for the next phase.
#include <gtest/gtest.h>

#include "core/cluster.hpp"

namespace switchml::core {
namespace {

class AppendixATrace : public ::testing::Test {
protected:
  static constexpr std::uint32_t kSlot = 1;
  static constexpr std::uint64_t kOff = 32; // slot 1, first phase (off = k * idx)

  ClusterConfig make_config() {
    ClusterConfig cfg;
    cfg.n_workers = 3;
    cfg.pool_size = 4;
    cfg.retransmit_timeout = msec(1);
    return cfg;
  }

  // Tensor with 3 phases per slot, so slot 1 is reused after the loss.
  std::vector<std::vector<std::int32_t>> make_updates() {
    std::vector<std::vector<std::int32_t>> u(3, std::vector<std::int32_t>(32 * 4 * 3));
    for (int w = 0; w < 3; ++w)
      for (std::size_t i = 0; i < u[0].size(); ++i)
        u[static_cast<std::size_t>(w)][i] = static_cast<std::int32_t>((w + 1) * 1000 + i);
    return u;
  }

  std::vector<std::int32_t> expected_sum(const std::vector<std::vector<std::int32_t>>& u) {
    std::vector<std::int32_t> s(u[0].size(), 0);
    for (const auto& v : u)
      for (std::size_t i = 0; i < v.size(); ++i) s[i] += v[i];
    return s;
  }
};

TEST_F(AppendixATrace, UpstreamLossRecoveredByRetransmission) {
  // t2/t3: worker 3's (here: worker 2's) update for slot x is lost upstream.
  Cluster cluster(make_config());
  bool dropped = false;
  cluster.link(2).set_drop_filter([&](const net::Node& sender, const net::Packet& p) {
    if (!dropped && p.kind == net::PacketKind::SmlUpdate && p.idx == kSlot && p.off == kOff &&
        sender.id() == 2) {
      dropped = true;
      return true;
    }
    return false;
  });

  auto updates = make_updates();
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], expected_sum(updates));

  const auto& sw = cluster.agg_switch().counters();
  // t4/t5: workers 0 and 1 retransmit; both are recognized as duplicates.
  EXPECT_EQ(sw.duplicate_updates, 2u);
  // t6: worker 2's retransmission is NOT a duplicate — it completes the slot.
  EXPECT_EQ(sw.unicast_replies, 0u);
  // Every worker timed out exactly once (self-clocking stalls them together).
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(cluster.worker(w).counters().timeouts, 1u) << "worker " << w;
    EXPECT_EQ(cluster.worker(w).counters().retransmissions, 1u) << "worker " << w;
  }
}

TEST_F(AppendixATrace, DownstreamLossServedFromShadowCopy) {
  // t7: the multicast result for worker 1 (here: worker 0) is lost downstream.
  Cluster cluster(make_config());
  bool dropped = false;
  cluster.link(0).set_drop_filter([&](const net::Node& sender, const net::Packet& p) {
    if (!dropped && p.kind == net::PacketKind::SmlResult && p.idx == kSlot && p.off == kOff &&
        sender.id() >= 100) {
      dropped = true;
      return true;
    }
    return false;
  });

  auto updates = make_updates();
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], expected_sum(updates));

  const auto& sw = cluster.agg_switch().counters();
  // t8: worker 0's retransmission hits a COMPLETE slot -> unicast reply from
  // the shadow copy (t11). (Workers 1 and 2 moved on to the next phase; their
  // phase-2 packets stall on the same slot until worker 0 recovers, so their
  // own timers may also fire once — self-clocking keeps everyone within one
  // phase, and every such retransmission is absorbed as a duplicate or
  // answered from the shadow copy.)
  EXPECT_GE(sw.unicast_replies, 1u);
  EXPECT_GE(sw.duplicate_updates, 1u);
  EXPECT_GE(cluster.worker(0).counters().timeouts, 1u);
  // Nobody retransmits more than once per phase here.
  for (int w = 0; w < 3; ++w) EXPECT_LE(cluster.worker(w).counters().retransmissions, 2u);
}

TEST_F(AppendixATrace, CombinedLossesMatchPaperNarrative) {
  // Both losses in one run, as in Figure 9's full trace.
  Cluster cluster(make_config());
  bool up = false, down = false;
  cluster.link(2).set_drop_filter([&](const net::Node& sender, const net::Packet& p) {
    if (!up && p.kind == net::PacketKind::SmlUpdate && p.idx == kSlot && p.off == kOff &&
        sender.id() == 2) {
      up = true;
      return true;
    }
    return false;
  });
  cluster.link(0).set_drop_filter([&](const net::Node& sender, const net::Packet& p) {
    if (!down && p.kind == net::PacketKind::SmlResult && p.idx == kSlot && p.off == kOff &&
        sender.id() >= 100) {
      down = true;
      return true;
    }
    return false;
  });

  auto updates = make_updates();
  auto result = cluster.reduce_i32(updates);
  for (int w = 0; w < 3; ++w)
    EXPECT_EQ(result.outputs[static_cast<std::size_t>(w)], expected_sum(updates));
  EXPECT_TRUE(up);
  EXPECT_TRUE(down);
  const auto& sw = cluster.agg_switch().counters();
  EXPECT_EQ(sw.unicast_replies, 1u);
  EXPECT_GE(sw.duplicate_updates, 3u); // w0+w1 phase-1 dups, w0's shadow query, ...
  // No worker ever lags more than one phase behind (the §3.5 invariant):
  // after completion all slots agree on their phase count.
  for (std::uint32_t s = 0; s < 4; ++s)
    for (int w = 1; w < 3; ++w)
      EXPECT_EQ(cluster.worker(w).slot_phase(s), cluster.worker(0).slot_phase(s));
}

TEST_F(AppendixATrace, RepeatedUpstreamLossEventuallyRecovers) {
  // The same packet lost 3 times in a row: exponential persistence of the
  // worker timer still repairs it.
  Cluster cluster(make_config());
  int drops = 0;
  cluster.link(2).set_drop_filter([&](const net::Node& sender, const net::Packet& p) {
    if (drops < 3 && p.kind == net::PacketKind::SmlUpdate && p.idx == kSlot && p.off == kOff &&
        sender.id() == 2) {
      ++drops;
      return true;
    }
    return false;
  });
  auto updates = make_updates();
  auto result = cluster.reduce_i32(updates);
  EXPECT_EQ(result.outputs[0], expected_sum(updates));
  EXPECT_EQ(drops, 3);
  EXPECT_GE(cluster.worker(2).counters().retransmissions, 3u);
}

} // namespace
} // namespace switchml::core
