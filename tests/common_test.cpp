// Tests for the shared utilities: summary statistics, table rendering,
// time/bandwidth unit math.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace switchml {
namespace {

TEST(Units, SerializationTimeMatchesHandMath) {
  // 180 bytes at 10 Gbps = 144 ns.
  EXPECT_EQ(serialization_time(180, gbps(10)), 144);
  // 1514 bytes at 10 Gbps = 1211.2 -> 1212 ns (rounded up).
  EXPECT_EQ(serialization_time(1514, gbps(10)), 1212);
  // 180 bytes at 100 Gbps = 14.4 -> 15 ns.
  EXPECT_EQ(serialization_time(180, gbps(100)), 15);
  EXPECT_EQ(serialization_time(0, gbps(10)), 0);
}

TEST(Units, Conversions) {
  EXPECT_EQ(usec(3), 3000);
  EXPECT_EQ(msec(2), 2'000'000);
  EXPECT_EQ(sec(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_usec(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_msec(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(to_sec(500'000'000), 0.5);
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  for (int i = 1; i <= 4; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 4.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.5);
  EXPECT_NEAR(s.percentile(25), 1.75, 1e-12);
}

TEST(Summary, MedianOfEvenCount) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.median(), std::logic_error);
  EXPECT_EQ(s.str(), "(no samples)");
}

TEST(Summary, AddAllAndInterleavedReads) {
  Summary s;
  s.add_all({3.0, 1.0});
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5); // must re-sort lazily
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
}

TEST(Summary, StddevMatchesHandComputation) {
  Summary s;
  s.add_all({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.stddev(), 2.138, 0.001); // sample stddev
}

TEST(Summary, EmptyIsTotalForStrAndStddev) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0); // total, unlike min/median
  EXPECT_EQ(s.str(), "(no samples)");
  EXPECT_THROW((void)s.max(), std::logic_error);
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

TEST(Summary, SingleSampleIsWellDefinedEverywhere) {
  Summary s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(1), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(99), 7.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.str(), "7.50 [7.50, 7.50] (n=1)");
}

TEST(Summary, PercentileClampsOutOfRangeP) {
  Summary s;
  s.add_all({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(s.percentile(-5), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(250), 30.0);
}

TEST(Summary, SortedInvariantCachedAcrossMixedReads) {
  Summary s;
  s.add_all({9.0, 1.0, 5.0});
  // Mixed order-statistic reads between mutations all see a consistent view.
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  s.add_all({}); // empty batch must not disturb the cached sort
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5); // re-sorted lazily after the mutation
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Summary, AddAllReservesOnce) {
  Summary s;
  s.add(1.0);
  std::vector<double> batch(1000, 2.0);
  s.add_all(batch);
  EXPECT_GE(s.samples().capacity(), 1001u);
  EXPECT_EQ(s.count(), 1001u);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Every line has the same structure: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

} // namespace
} // namespace switchml
